/**
 * @file
 * Regenerates paper Table I: the extent of visibility into specific
 * performance events across processor vendors — the portability gap the
 * paper's method is designed around.
 */

#include <cstdio>

#include "counters/vendor_matrix.hh"
#include "util/table.hh"

int
main()
{
    using namespace lll;
    Table t({"Processor", "Breakdown of stalls", "L1-MSHRQ-full stalls",
             "L2-MSHRQ-full stalls", "Memory latency", "Memory traffic"});
    t.setCaption("Table I — Visibility into events across vendors "
                 "(memory-traffic column added: the portable subset)");
    for (const counters::VendorSummary &v : counters::vendorSummaries()) {
        t.addRow({platforms::vendorName(v.vendor),
                  counters::visibilityName(v.stallBreakdown),
                  counters::visibilityName(v.l1MshrFullStalls),
                  counters::visibilityName(v.l2MshrFullStalls),
                  counters::visibilityName(v.memoryLatency),
                  counters::visibilityName(v.memoryTraffic)});
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
