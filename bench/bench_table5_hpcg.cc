/**
 * @file
 * Regenerates paper Table V: the hpcg optimization walk on SKL, KNL
 * and A64FX (summary of program optimizations).
 */

#include "bench_common.hh"

int
main()
{
    lll::bench::runPaperTable("hpcg", "Table V — HPCG (ComputeSPMV_ref)");
    return 0;
}
