/**
 * @file
 * Ablation: stream-prefetcher table size (DESIGN.md §6).
 *
 * The paper explains HPCG's small 4-way-SMT gain on KNL by the L2
 * prefetcher tracking only 16 streams while four hyperthreads bring
 * 8-10 streams each [39].  Sweeping the table size on the simulated KNL
 * shows the coverage cliff directly: with enough entries the 4-way
 * configuration keeps its prefetch coverage and bandwidth; with 16 it
 * saturates.
 */

#include <cstdio>

#include "bench_common.hh"
#include "platforms/platform.hh"
#include "sim/system.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace lll;
    using workloads::Opt;
    using workloads::OptSet;

    platforms::Platform knl = platforms::knl();
    workloads::WorkloadPtr hpcg = bench::workloadFor("hpcg");

    Table t({"pf table", "SMT", "BW (GB/s)", "demand frac of mem reads",
             "hw prefetches to mem"});
    t.setCaption("Ablation — prefetcher stream-table size "
                 "(HPCG +vect on KNL)");

    OptSet vect = OptSet{}.with(Opt::Vectorize);
    for (unsigned table : {8u, 16u, 32u, 64u}) {
        for (unsigned smt : {2u, 4u}) {
            OptSet opts = vect.with(smt == 2 ? Opt::Smt2 : Opt::Smt4);
            sim::KernelSpec spec = hpcg->spec(knl, opts);
            sim::SystemParams sp = knl.sysParams(knl.totalCores, smt);
            sp.pf.tableSize = table;
            sim::System sys(sp, spec);
            sim::RunResult r = sys.run(15.0, 40.0);
            t.addRow({std::to_string(table), std::to_string(smt) + "-way",
                      fmtDouble(r.totalGBs, 1),
                      fmtDouble(r.demandFraction, 2),
                      std::to_string(r.memHwPrefetchLines)});
        }
        t.addSeparator();
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
