/**
 * @file
 * Regenerates paper Table VI: the pennant optimization walk on SKL, KNL
 * and A64FX (summary of program optimizations).
 */

#include "bench_common.hh"

int
main()
{
    lll::bench::runPaperTable("pennant", "Table VI — PENNANT (setCornerDiv)");
    return 0;
}
