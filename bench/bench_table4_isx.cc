/**
 * @file
 * Regenerates paper Table IV: the isx optimization walk on SKL, KNL
 * and A64FX (summary of program optimizations).
 */

#include "bench_common.hh"

int
main()
{
    lll::bench::runPaperTable("isx", "Table IV — ISx (count_local_keys)");
    return 0;
}
