/**
 * @file
 * Ablation: what happens if the analyzer uses the *idle* latency
 * (vendor-datasheet style) instead of the loaded latency from the X-Mem
 * profile — the mistake the paper explicitly warns about ("idle memory
 * latency cannot be used for this purpose").
 *
 * With idle latency, n_avg is underestimated at load, so routines that
 * are in fact pinned at an MSHR queue look like they still have
 * headroom, and the recipe would keep recommending MLP-raising
 * optimizations that cannot help.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/littles_law.hh"

int
main()
{
    using namespace lll;

    Table t({"Proc", "Routine", "BW (GB/s)", "n_avg (loaded)",
             "n_avg (idle)", "limit", "verdict flips?"});
    t.setCaption("Ablation — loaded vs idle latency in Equation 2");

    for (const platforms::Platform &p : platforms::allPlatforms()) {
        xmem::LatencyProfile profile = bench::profileFor(p);
        for (const workloads::WorkloadPtr &w : workloads::allWorkloads()) {
            core::Experiment exp(p, *w, profile);
            const core::StageMetrics &m = exp.stage({});
            double idle = profile.idleLatencyNs();
            double n_idle = core::mlpPerCore(m.analysis.bwGBs, idle,
                                             p.lineBytes, exp.coresUsed());
            bool full_loaded =
                m.analysis.nAvg >= 0.88 * m.analysis.limitingMshrs;
            bool full_idle =
                n_idle >= 0.88 * m.analysis.limitingMshrs;
            t.addRow({p.name, w->routine(),
                      fmtDouble(m.analysis.bwGBs, 1),
                      fmtDouble(m.analysis.nAvg, 2),
                      fmtDouble(n_idle, 2),
                      std::to_string(m.analysis.limitingMshrs),
                      full_loaded != full_idle ? "YES" : "no"});
        }
        t.addSeparator();
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
