/**
 * @file
 * Prints the X-Mem-style bandwidth→latency profiles for the three
 * platforms (the paper's once-per-processor characterization input —
 * §IV preamble).  Measures and caches them on first run.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace lll;
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        xmem::LatencyProfile profile = bench::profileFor(p);
        Table t({"BW (GB/s)", "% of peak", "loaded latency (ns)"});
        t.setCaption("X-Mem profile — " + p.description +
                     " (idle " + fmtDouble(profile.idleLatencyNs(), 0) +
                     " ns, peak achievable " +
                     fmtDouble(profile.maxMeasuredGBs(), 0) + " GB/s)");
        for (const xmem::LatencyProfile::Point &pt : profile.points()) {
            t.addRow({fmtDouble(pt.bwGBs, 1),
                      fmtDouble(pt.bwGBs / p.peakGBs * 100.0, 0) + "%",
                      fmtDouble(pt.latencyNs, 1)});
        }
        std::fputs(t.render().c_str(), stdout);
        std::printf("\n");
    }
    return 0;
}
