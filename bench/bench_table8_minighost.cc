/**
 * @file
 * Regenerates paper Table VIII: the minighost optimization walk on SKL, KNL
 * and A64FX (summary of program optimizations).
 */

#include "bench_common.hh"

int
main()
{
    lll::bench::runPaperTable("minighost", "Table VIII — MiniGhost (mg_stencil_3d27pt)");
    return 0;
}
