/**
 * @file
 * Regenerates paper Table III: the experiment platforms, plus the
 * calibrated simulator facts behind them (idle latency, peak FLOPs).
 */

#include <cstdio>

#include "platforms/platform.hh"
#include "util/table.hh"

int
main()
{
    using namespace lll;
    Table t({"Platform", "# Cores @ Rate", "Peak BW", "L1 MSHRs/core",
             "L2 MSHRs/core", "Line", "SMT", "Peak DP"});
    t.setCaption("Table III — Platforms used in experiments");
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        t.addRow({p.description,
                  std::to_string(p.totalCores) + " @ " +
                      fmtDouble(p.freqGHz, 1) + "GHz",
                  fmtDouble(p.peakGBs, 0) + " GB/s",
                  std::to_string(p.l1Mshrs),
                  (p.name == "a64fx" ? "~" : "") +
                      std::to_string(p.l2Mshrs),
                  std::to_string(p.lineBytes) + "B",
                  std::to_string(p.maxSmtWays) + "-way",
                  fmtDouble(p.peakGFlops / 1000.0, 2) + " TF"});
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
