/**
 * @file
 * Shared plumbing for the table/figure reproduction benches.
 */

#ifndef LLL_BENCH_BENCH_COMMON_HH
#define LLL_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hh"
#include "obs/span.hh"
#include "obs/timer.hh"
#include "platforms/platform.hh"
#include "util/status.hh"
#include "util/table.hh"
#include "workloads/workload.hh"
#include "xmem/latency_profile.hh"
#include "xmem/xmem_harness.hh"

namespace lll::bench
{

/** Fetch (measuring and caching on first use) a platform's profile.
 *  Benches have no recovery path, so a profile error exits loudly. */
inline xmem::LatencyProfile
profileFor(const platforms::Platform &platform)
{
    // Bench timing rides the obs span/timer clock (obs/timer.hh), the
    // same source the profiler and `lll bench` trials read, so a bench
    // run profiled with `lll profile` attributes consistently.
    LLL_SPAN("bench.profile[" + platform.name + "]");
    xmem::XMemHarness harness;
    util::Result<xmem::LatencyProfile> profile =
        harness.measureCachedChecked(
            platform, xmem::defaultProfilePath(platform));
    if (!profile.ok()) {
        std::fprintf(stderr, "bench: %s\n",
                     profile.status().toString().c_str());
        std::exit(1);
    }
    return profile.take();
}

/** Named-workload lookup for benches; exits on an unknown name. */
inline workloads::WorkloadPtr
workloadFor(const std::string &name)
{
    util::Result<workloads::WorkloadPtr> w = workloads::findWorkload(name);
    if (!w.ok()) {
        std::fprintf(stderr, "bench: %s\n",
                     w.status().toString().c_str());
        std::exit(1);
    }
    return w.take();
}

/** Platform lookup for benches; exits on an unknown name. */
inline platforms::Platform
platformFor(const std::string &name)
{
    util::Result<platforms::Platform> p = platforms::findPlatform(name);
    if (!p.ok()) {
        std::fprintf(stderr, "bench: %s\n",
                     p.status().toString().c_str());
        std::exit(1);
    }
    return p.take();
}

/**
 * Reproduce one paper table (IV–IX): run the workload's optimization
 * walk on all three platforms and print rows in the paper's format,
 * with the paper's reported speedups alongside and — the paper's core
 * claim — whether the recipe recommended the optimization that was
 * tried.  A trailing summary counts recommendation/outcome agreement
 * (recommended & helped, or not recommended & did not help).
 */
inline void
runPaperTable(const std::string &workload_name, const char *caption)
{
    // One wall timer + per-platform spans from the obs clock; the
    // summary goes to stderr so the stdout table stays byte-stable.
    obs::WallTimer wall;
    LLL_SPAN("bench.table[" + workload_name + "]");
    workloads::WorkloadPtr w = workloadFor(workload_name);

    Table t({"Proc", "Source", "BW_obs (GB/s)", "lat_avg (ns)", "n_avg",
             "Opt: measured", "paper", "recipe"});
    t.setCaption(caption);

    int agree = 0, total = 0;
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        LLL_SPAN("bench.platform[" + p.name + "]");
        core::Experiment exp(p, *w, profileFor(p));
        core::Recipe recipe(p);
        const auto rows = exp.paperTable();
        const auto specs = w->paperRows(p);
        for (size_t i = 0; i < rows.size(); ++i) {
            const core::TableRow &row = rows[i];
            std::string opt_col = row.optLabel;
            std::string paper_col = "-";
            std::string rec_col = "-";
            if (row.speedup > 0.0) {
                opt_col += ": " + fmtSpeedup(row.speedup);
                if (row.paperSpeedup > 0.0)
                    paper_col = fmtSpeedup(row.paperSpeedup);
                // Was the tried optimization on the recipe's list at
                // the source state?
                const workloads::ExperimentRow &er = specs[i];
                core::RecipeDecision d =
                    recipe.advise(exp.stage(er.source).analysis,
                                  er.source);
                bool recommended = false;
                if (er.applied) {
                    for (workloads::Opt o : d.recommendedOpts()) {
                        for (workloads::Opt got : er.applied->opts()) {
                            if (got == o && !er.source.has(got))
                                recommended = true;
                        }
                    }
                }
                // The paper counts its 1.02-1.03x SMT rows as wins; match that.
                bool helped = row.speedup >= 1.03;
                rec_col = recommended ? "rec" : "not-rec";
                ++total;
                if (recommended == helped)
                    ++agree;
            }
            t.addRow({p.name, row.source,
                      fmtBwPct(row.bwGBs, p.peakGBs),
                      fmtDouble(row.latencyNs, 0),
                      fmtDouble(row.nAvg, 2), opt_col, paper_col,
                      rec_col});
        }
        t.addSeparator();
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("recipe/outcome agreement: %d of %d tried "
                "optimizations (recommended<->helped)\n",
                agree, total);
    std::fprintf(stderr, "bench: %s reproduced in %.1f ms\n",
                 workload_name.c_str(), wall.elapsedNs() / 1e6);
}

} // namespace lll::bench

#endif // LLL_BENCH_BENCH_COMMON_HH
