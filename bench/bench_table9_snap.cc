/**
 * @file
 * Regenerates paper Table IX: the snap optimization walk on SKL, KNL
 * and A64FX (summary of program optimizations).
 */

#include "bench_common.hh"

int
main()
{
    lll::bench::runPaperTable("snap", "Table IX — SNAP (dim3_sweep)");
    return 0;
}
