/**
 * @file
 * Exercises paper Figure 1: the recipe flowchart, traced over all six
 * workloads' base variants on all three platforms.  For each case the
 * bench prints the analysis (observed BW → loaded latency → n_avg →
 * limiting MSHRQ), the recipe's verdict, and whether the recommended
 * next optimization actually pays off in simulation — the recipe
 * validating itself.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/recipe.hh"

int
main()
{
    using namespace lll;
    using workloads::OptSet;

    Table t({"Proc", "Routine", "n_avg", "limit", "situation",
             "top recommendation", "tried", "speedup"});
    t.setCaption("Figure 1 — recipe decision trace (base variants)");

    for (const platforms::Platform &p : platforms::allPlatforms()) {
        xmem::LatencyProfile profile = bench::profileFor(p);
        core::Recipe recipe(p);
        for (const workloads::WorkloadPtr &w : workloads::allWorkloads()) {
            core::Experiment exp(p, *w, profile);
            OptSet base;
            const core::StageMetrics &m = exp.stage(base);
            core::RecipeDecision d = recipe.advise(m.analysis, base);

            // Validate: apply the top recommendation (if any) and
            // measure.
            std::string tried = "-";
            std::string speedup = "-";
            auto recs = d.recommendedOpts();
            if (!recs.empty()) {
                OptSet next = base.with(recs.front());
                tried = workloads::optShortName(recs.front());
                speedup = fmtSpeedup(exp.speedup(base, next));
            }

            std::string limit =
                std::string(core::mshrLevelName(m.analysis.limitingLevel)) +
                " (" + std::to_string(m.analysis.limitingMshrs) + ")";
            std::string situation =
                m.analysis.nearBandwidthLimit ? "bandwidth wall"
                : m.analysis.nearMshrLimit   ? "MSHRQ full"
                                             : "MLP headroom";
            t.addRow({p.name, w->routine(), fmtDouble(m.analysis.nAvg, 2),
                      limit, situation,
                      recs.empty() ? "(reduce traffic / stop)" : tried,
                      tried, speedup});
        }
        t.addSeparator();
    }
    std::fputs(t.render().c_str(), stdout);

    // One full narrative trace, the paper's ISx walk on KNL.
    platforms::Platform knl = bench::platformFor("knl");
    xmem::LatencyProfile profile = bench::profileFor(knl);
    core::Recipe recipe(knl);
    workloads::WorkloadPtr isx = bench::workloadFor("isx");
    core::Experiment exp(knl, *isx, profile);

    std::printf("\nRecipe walk: ISx on KNL\n");
    OptSet state;
    for (int step = 0; step < 6; ++step) {
        const core::StageMetrics &m = exp.stage(state);
        core::RecipeDecision d = recipe.advise(m.analysis, state);
        std::printf("  [%s] n_avg=%.2f of %u (%s): %s\n",
                    state.label().c_str(), m.analysis.nAvg,
                    m.analysis.limitingMshrs,
                    core::mshrLevelName(m.analysis.limitingLevel),
                    d.summary.c_str());
        auto recs = d.recommendedOpts();
        if (recs.empty() || d.stop) {
            std::printf("  -> stop.\n");
            break;
        }
        OptSet next = state.with(recs.front());
        double s = exp.speedup(state, next);
        std::printf("  -> try %s: %.2fx%s\n",
                    workloads::optName(recs.front()), s,
                    s >= 1.02 ? " (kept)" : " (reverted)");
        if (s >= 1.02)
            state = next;
        else
            break;
    }
    return 0;
}
