/**
 * @file
 * Ablation: memory-controller bank parallelism (DESIGN.md §5.3).
 *
 * The loaded-latency curve that drives the whole method *emerges* from
 * queueing at the banks; sweeping the bank count (at constant peak
 * bandwidth, i.e. scaling per-bank service time with it) shows how the
 * curve's steepness — and with it the ISx equilibrium — depends on that
 * design choice.
 */

#include <cstdio>

#include "bench_common.hh"
#include "platforms/platform.hh"
#include "sim/system.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace lll;

    platforms::Platform skl = platforms::skl();
    workloads::WorkloadPtr isx = bench::workloadFor("isx");
    sim::KernelSpec spec = isx->spec(skl, {});

    Table t({"banks", "service (ns)", "BW (GB/s)", "true loaded lat (ns)",
             "true L1 occupancy"});
    t.setCaption("Ablation — bank parallelism at constant 128 GB/s peak "
                 "(ISx base on SKL)");

    for (unsigned banks : {14u, 28u, 56u, 112u, 224u}) {
        sim::SystemParams sp = skl.sysParams(skl.totalCores, 1);
        // Hold peak bandwidth fixed: service = banks * line / peak.
        sp.mem.banksOverride = banks;
        sp.mem.bankServiceNs =
            banks * sp.lineBytes / skl.peakGBs;
        sim::System sys(sp, spec);
        sim::RunResult r = sys.run(15.0, 40.0);
        t.addRow({std::to_string(banks),
                  fmtDouble(sp.mem.bankServiceNs, 1),
                  fmtDouble(r.totalGBs, 1),
                  fmtDouble(r.avgMemLatencyNs, 1),
                  fmtDouble(r.avgL1MshrOccupancy, 2)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nAt constant peak bandwidth, many slow banks mean a "
                "longer per-access service time and higher loaded "
                "latency; with the L1 MSHR queue pinned (occupancy ~10 "
                "in every row), Little's law turns that latency directly "
                "into lost bandwidth.  The bank design choice shapes the "
                "whole profile the method depends on.\n");
    return 0;
}
