/**
 * @file
 * Regenerates paper Table VII: the comd optimization walk on SKL, KNL
 * and A64FX (summary of program optimizations).
 */

#include "bench_common.hh"

int
main()
{
    lll::bench::runPaperTable("comd", "Table VII — CoMD (eamForce)");
    return 0;
}
