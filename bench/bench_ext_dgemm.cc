/**
 * @file
 * Extension experiment: the §III-C/§IV-G DGEMM arc — cache tiling, then
 * unroll-and-jam (register tiling), then vectorization — with the MSHR
 * occupancy column showing why the recipe keeps green-lighting
 * compute-side optimizations: "we determine an application to be
 * compute bound in the first place if it utilizes less than peak
 * bandwidth and its MSHRQ is not full" (§IV-G).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/roofline.hh"

int
main()
{
    using namespace lll;
    workloads::WorkloadPtr dgemm = bench::workloadFor("dgemm");

    Table t({"Proc", "Source", "BW_obs (GB/s)", "lat_avg (ns)", "n_avg",
             "Opt: measured", "paper"});
    t.setCaption("Extension — DGEMM: tiling + unroll-and-jam + "
                 "vectorization (no paper reference numbers)");
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        core::Experiment exp(p, *dgemm, bench::profileFor(p));
        for (const core::TableRow &row : exp.paperTable()) {
            std::string opt_col = row.optLabel;
            if (row.speedup > 0.0)
                opt_col += ": " + fmtSpeedup(row.speedup);
            t.addRow({p.name, row.source,
                      fmtBwPct(row.bwGBs, p.peakGBs),
                      fmtDouble(row.latencyNs, 0),
                      fmtDouble(row.nAvg, 2), opt_col, "-"});
        }
        t.addSeparator();
    }
    std::fputs(t.render().c_str(), stdout);

    // The §IV-G verdict: after the walk, bandwidth is far from peak and
    // the MSHRQ nearly empty -> genuinely compute (FLOP) bound.
    platforms::Platform skl = bench::platformFor("skl");
    core::Experiment exp(skl, *dgemm, bench::profileFor(skl));
    workloads::OptSet full = workloads::OptSet{}
                                 .with(workloads::Opt::Tiling)
                                 .with(workloads::Opt::UnrollJam)
                                 .with(workloads::Opt::Vectorize);
    const core::StageMetrics &m = exp.stage(full);
    std::printf("\nSKL fully-optimized DGEMM: %.0f%% of peak BW, n_avg "
                "%.2f of %u -> compute bound by the SIV-G test "
                "(MSHRQ far from full at low bandwidth).\n",
                m.analysis.pctPeak * 100.0, m.analysis.nAvg,
                m.analysis.limitingMshrs);
    return 0;
}
