/**
 * @file
 * Ablation: applying Little's law to a whole program instead of a single
 * routine (the paper's footnote 1 stationarity caveat and §III-D's
 * "averaging counter data from multiple routines ... usually provides
 * misleading guidance").
 *
 * A real two-phase program is simulated — threads alternate between
 * ISx's count_local_keys (random, L1-MSHR pinned) and CoMD's eamForce
 * (compute bound, idle memory) — and analyzed both per-routine and as
 * one aggregate window.  The aggregate bandwidth maps through the
 * profile to a latency and occupancy that describe *neither* phase, so
 * the recipe's verdict is wrong for both.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/littles_law.hh"
#include "sim/tracer.hh"

int
main()
{
    using namespace lll;

    platforms::Platform skl = bench::platformFor("skl");
    xmem::LatencyProfile profile = bench::profileFor(skl);

    workloads::WorkloadPtr isx = bench::workloadFor("isx");
    workloads::WorkloadPtr comd = bench::workloadFor("comd");

    // Per-routine references (the paper's prescribed methodology).
    core::Experiment e1(skl, *isx, profile);
    core::Experiment e2(skl, *comd, profile);
    const core::StageMetrics &m1 = e1.stage({});
    const core::StageMetrics &m2 = e2.stage({});

    // One real program alternating both phases; op counts chosen so the
    // two routines get comparable shares of wall-clock time.
    std::vector<sim::PhaseSpec> phases;
    phases.push_back({isx->spec(skl, {}), 6000});
    phases.push_back({comd->spec(skl, {}), 2000});
    sim::SystemParams sp = skl.sysParams(skl.totalCores, 1);
    sim::System sys(sp, phases);
    sim::RunResult mixed = sys.run(120.0, 240.0);

    double lat_mix = profile.latencyAt(mixed.totalGBs);
    double n_mix = core::mlpPerCore(mixed.totalGBs, lat_mix,
                                    skl.lineBytes, skl.totalCores);

    Table t({"scope", "BW (GB/s)", "lat (ns)", "n_avg",
             "verdict vs L1 MSHRQ (10)"});
    t.setCaption("Ablation — per-routine vs whole-program analysis "
                 "(SKL, alternating ISx and CoMD phases)");
    auto verdict = [](double n) {
        return n >= 8.8 ? std::string("full — stop raising MLP")
                        : std::string("headroom — raise MLP");
    };
    t.addRow({"routine: " + isx->routine(),
              fmtDouble(m1.analysis.bwGBs, 1),
              fmtDouble(m1.analysis.latencyNs, 0),
              fmtDouble(m1.analysis.nAvg, 2), verdict(m1.analysis.nAvg)});
    t.addRow({"routine: " + comd->routine(),
              fmtDouble(m2.analysis.bwGBs, 1),
              fmtDouble(m2.analysis.latencyNs, 0),
              fmtDouble(m2.analysis.nAvg, 2), verdict(m2.analysis.nAvg)});
    t.addRow({"whole program (simulated)", fmtDouble(mixed.totalGBs, 1),
              fmtDouble(lat_mix, 0), fmtDouble(n_mix, 2),
              verdict(n_mix)});
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nThe whole-program row blends a phase pinned at the "
                "L1 MSHRQ with an idle-memory phase into a verdict "
                "that is wrong for both — the paper's footnote-1 "
                "stationarity caveat, measured.  (True time-weighted "
                "L1 occupancy of the mixed run: %.2f; true average "
                "memory latency: %.0f ns.)\n",
                mixed.avgL1MshrOccupancy, mixed.avgMemLatencyNs);
    return 0;
}
