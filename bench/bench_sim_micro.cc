/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: event
 * queue throughput, cache lookup/insert, MSHR allocate/deallocate,
 * stateless op generation, and a small end-to-end system step.  These
 * guard the simulation rate the table benches depend on.
 */

#include <benchmark/benchmark.h>

#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "platforms/platform.hh"
#include "sim/cache.hh"
#include "sim/event_queue.hh"
#include "sim/mshr_queue.hh"
#include "sim/op_stream.hh"
#include "sim/system.hh"
#include "util/rng.hh"

using namespace lll;

static void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue eq;
    uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(static_cast<Tick>(i * 7 % 97), [&] { ++fired; });
        eq.runUntil(eq.now() + 100);
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueue);

static void
BM_MshrAllocate(benchmark::State &state)
{
    sim::MshrQueue q("bench", 16);
    Tick now = 0;
    uint64_t line = 0;
    for (auto _ : state) {
        for (int i = 0; i < 12; ++i)
            q.allocate(line + i, sim::ReqType::DemandLoad, now++);
        for (int i = 0; i < 12; ++i)
            q.deallocate(q.lookup(line + i), now++);
        line += 64;
    }
    state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_MshrAllocate);

static void
BM_OpStream(benchmark::State &state)
{
    sim::KernelSpec spec;
    sim::StreamDesc a;
    a.kind = sim::StreamDesc::Kind::Random;
    a.footprintLines = 1 << 20;
    spec.streams.push_back(a);
    sim::StreamDesc b;
    b.kind = sim::StreamDesc::Kind::Sequential;
    b.footprintLines = 1 << 18;
    b.weight = 0.4;
    spec.streams.push_back(b);
    sim::OpStream ops(spec, 1, 1);
    uint64_t n = 0;
    uint64_t sum = 0;
    for (auto _ : state) {
        sum += ops.at(n++).lineAddr;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpStream);

static void
BM_CacheAccessHit(benchmark::State &state)
{
    sim::EventQueue eq;
    sim::RequestPool pool;
    sim::Cache::Params cp;
    cp.sets = 64;
    cp.ways = 8;
    cp.mshrs = 10;
    sim::Cache l2(cp, eq, pool);
    sim::Cache l1(cp, eq, pool);
    sim::MemCtrl::Params mp;
    sim::MemCtrl mem(mp, eq, pool);
    l1.setDownstream(&l2);
    l2.setDownstream(&mem);

    // Warm a small set of lines via writebacks (installs directly).
    for (uint64_t line = 0; line < 256; ++line) {
        sim::MemRequest *wb = pool.alloc();
        wb->lineAddr = line;
        wb->type = sim::ReqType::Writeback;
        l1.tryAccess(wb);
    }

    uint64_t line = 0;
    for (auto _ : state) {
        sim::MemRequest *req = pool.alloc();
        req->lineAddr = line;
        req->type = sim::ReqType::DemandLoad;
        benchmark::DoNotOptimize(l1.tryAccess(req));
        line = (line + 1) % 256;
        eq.runUntil(eq.now() + 10000);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessHit);

static void
BM_SystemMicrostep(benchmark::State &state)
{
    platforms::Platform p = platforms::skl();
    sim::KernelSpec spec;
    sim::StreamDesc s;
    s.kind = sim::StreamDesc::Kind::Random;
    s.footprintLines = 1 << 18;
    spec.streams.push_back(s);
    spec.window = 8;
    spec.computeCyclesPerOp = 4.0;
    sim::SystemParams sp = p.sysParams(4, 1);
    sim::System sys(sp, spec);
    sys.run(2.0, 2.0);   // warm start
    for (auto _ : state) {
        benchmark::DoNotOptimize(sys.run(0.0001, 1.0).opsIssued);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemMicrostep);

// The same microstep with the observability sampler attached at its
// default 250 ns cadence; the delta against BM_SystemMicrostep is the
// telemetry overhead (budget: < 5%).
static void
BM_SystemMicrostepSampled(benchmark::State &state)
{
    platforms::Platform p = platforms::skl();
    sim::KernelSpec spec;
    sim::StreamDesc s;
    s.kind = sim::StreamDesc::Kind::Random;
    s.footprintLines = 1 << 18;
    spec.streams.push_back(s);
    spec.window = 8;
    spec.computeCyclesPerOp = 4.0;
    sim::SystemParams sp = p.sysParams(4, 1);
    sim::System sys(sp, spec);
    obs::MetricRegistry registry;
    sys.attachObservability(registry);
    sys.run(2.0, 2.0);   // warm start
    for (auto _ : state) {
        benchmark::DoNotOptimize(sys.run(0.0001, 1.0).opsIssued);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemMicrostepSampled);

BENCHMARK_MAIN();
