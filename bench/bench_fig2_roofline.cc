/**
 * @file
 * Regenerates paper Figure 2: the roofline for ISx on KNL with the
 * additional ceiling imposed by the L1 MSHR queue.
 *
 * The paper draws a second bandwidth roof at 256 GB/s — the most the 64
 * cores' 12 L1 MSHRs can sustain at the loaded latency — and shows the
 * baseline point O pinned under it while the L2-prefetch-optimized point
 * O1 breaks through toward the 400 GB/s MCDRAM roof.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/roofline.hh"

int
main()
{
    using namespace lll;
    using workloads::Opt;
    using workloads::OptSet;

    platforms::Platform knl = bench::platformFor("knl");
    xmem::LatencyProfile profile = bench::profileFor(knl);
    core::Roofline roof(knl, profile);

    const int cores = knl.totalCores;
    double l1_bw = roof.mshrCeilingGBs(core::MshrLevel::L1, cores);
    double l2_bw = roof.mshrCeilingGBs(core::MshrLevel::L2, cores);

    std::printf("Figure 2 — roofline, ISx on KNL\n");
    std::printf("  peak performance        : %.0f GFlop/s (paper: 2867)\n",
                roof.peakGFlops());
    std::printf("  memory roof             : %.0f GB/s   (paper: 400)\n",
                roof.peakGBs());
    std::printf("  L1-MSHR ceiling         : %.0f GB/s   (paper: ~256)\n",
                l1_bw);
    std::printf("  L2-MSHR ceiling         : %.0f GB/s\n", l2_bw);
    std::printf("  ridge intensity         : %.2f flop/byte\n\n",
                roof.ridgeIntensity());

    // The measured application points.  ISx does little floating-point
    // work; like the paper we place the points by achieved bandwidth at
    // a nominal intensity (flops per byte moved).
    workloads::WorkloadPtr isx = bench::workloadFor("isx");
    core::Experiment exp(knl, *isx, profile);
    OptSet base;
    OptSet opt = base.with(Opt::Vectorize).with(Opt::Smt2)
                     .with(Opt::SwPrefetchL2);
    const core::StageMetrics &o = exp.stage(base);
    const core::StageMetrics &o1 = exp.stage(opt);
    const double intensity = 0.25;   // nominal flops/byte for ISx
    std::printf("  point O  (base)         : BW %.0f GB/s -> %.1f "
                "GFlop/s at %.2f flop/byte (n_avg %.2f)\n",
                o.analysis.bwGBs, o.analysis.bwGBs * intensity, intensity,
                o.analysis.nAvg);
    std::printf("  point O1 (+vect,2ht,pref): BW %.0f GB/s -> %.1f "
                "GFlop/s at %.2f flop/byte (n_avg %.2f)\n\n",
                o1.analysis.bwGBs, o1.analysis.bwGBs * intensity,
                intensity, o1.analysis.nAvg);

    Table t({"intensity (flop/B)", "classic roof (GF/s)",
             "L1-MSHR roof (GF/s)", "L2-MSHR roof (GF/s)"});
    t.setCaption("Roofline series (log-spaced)");
    for (const core::Roofline::SeriesPoint &pt :
         roof.series(1.0 / 16.0, 64.0, 23, cores)) {
        t.addRow({fmtDouble(pt.intensity, 3),
                  fmtDouble(pt.classicGFlops, 1),
                  fmtDouble(pt.l1CeilingGFlops, 1),
                  fmtDouble(pt.l2CeilingGFlops, 1)});
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
