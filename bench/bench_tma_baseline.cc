/**
 * @file
 * Reproduces the paper's §I/§II TMA baseline anecdotes:
 *
 *  - SNAP on a full SKL socket: TMA splits memory-bound time into
 *    comparable "bandwidth bound" and "latency bound" buckets (paper:
 *    27% / 23%) and reports a small average load latency, leaving the
 *    user without direction — while the MLP metric points straight at
 *    software prefetching headroom.
 *  - hpcg on SKL: at ~peak bandwidth the load-latency facility reports
 *    ~32 cycles because prefetched streaming loads dominate the mean,
 *    although the true loaded memory latency is ~180 ns.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/tma.hh"

static void
report(const char *name, const lll::core::TmaReport &r,
       const lll::core::Analysis &a)
{
    std::printf("%s\n", name);
    std::printf("  TMA: retiring %.0f%%  frontend %.0f%%  badspec %.0f%%  "
                "backend %.0f%%\n",
                r.retiringPct, r.frontendPct, r.badSpeculationPct,
                r.backendPct);
    std::printf("       memory bound %.0f%% (bandwidth %.0f%% / latency "
                "%.0f%%)  core bound %.0f%%\n",
                r.memoryBoundPct, r.bandwidthBoundPct, r.latencyBoundPct,
                r.coreBoundPct);
    std::printf("       avg load latency: %.0f cycles (facility view)\n",
                r.avgLoadLatencyCycles);
    std::printf("  MLP: BW %.1f GB/s -> loaded latency %.0f ns -> "
                "n_avg %.2f of %u %s MSHRs\n\n",
                a.bwGBs, a.latencyNs, a.nAvg, a.limitingMshrs,
                lll::core::mshrLevelName(a.limitingLevel));
}

int
main()
{
    using namespace lll;

    platforms::Platform skl = bench::platformFor("skl");
    xmem::LatencyProfile profile = bench::profileFor(skl);
    core::Tma tma(skl);

    {
        workloads::WorkloadPtr snap = bench::workloadFor("snap");
        core::Experiment exp(skl, *snap, profile);
        const core::StageMetrics &m = exp.stage({});
        report("SNAP dim3_sweep on SKL (paper: TMA 27% bw / 23% lat "
               "bound; prefetching still helps)",
               tma.analyze(m.run), m.analysis);
    }
    {
        workloads::WorkloadPtr hpcg = bench::workloadFor("hpcg");
        core::Experiment exp(skl, *hpcg, profile);
        const core::StageMetrics &m = exp.stage({});
        core::TmaReport r = tma.analyze(m.run);
        report("hpcg on SKL (paper: facility reports ~32 cycles at full "
               "bandwidth; true loaded latency ~378 cycles)",
               r, m.analysis);
        std::printf("  contrast: facility mean %.0f cycles vs true loaded "
                    "latency %.0f cycles\n",
                    r.avgLoadLatencyCycles,
                    m.analysis.latencyNs * skl.freqGHz);
    }
    return 0;
}
