file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_isx.dir/bench_table4_isx.cc.o"
  "CMakeFiles/bench_table4_isx.dir/bench_table4_isx.cc.o.d"
  "bench_table4_isx"
  "bench_table4_isx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_isx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
