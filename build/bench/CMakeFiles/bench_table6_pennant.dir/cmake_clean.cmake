file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_pennant.dir/bench_table6_pennant.cc.o"
  "CMakeFiles/bench_table6_pennant.dir/bench_table6_pennant.cc.o.d"
  "bench_table6_pennant"
  "bench_table6_pennant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_pennant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
