# Empty compiler generated dependencies file for bench_ablation_whole_program.
# This may be replaced when dependencies are built.
