file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_whole_program.dir/bench_ablation_whole_program.cc.o"
  "CMakeFiles/bench_ablation_whole_program.dir/bench_ablation_whole_program.cc.o.d"
  "bench_ablation_whole_program"
  "bench_ablation_whole_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_whole_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
