file(REMOVE_RECURSE
  "CMakeFiles/bench_tma_baseline.dir/bench_tma_baseline.cc.o"
  "CMakeFiles/bench_tma_baseline.dir/bench_tma_baseline.cc.o.d"
  "bench_tma_baseline"
  "bench_tma_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tma_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
