# Empty compiler generated dependencies file for bench_tma_baseline.
# This may be replaced when dependencies are built.
