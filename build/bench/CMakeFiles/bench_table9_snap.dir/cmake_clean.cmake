file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_snap.dir/bench_table9_snap.cc.o"
  "CMakeFiles/bench_table9_snap.dir/bench_table9_snap.cc.o.d"
  "bench_table9_snap"
  "bench_table9_snap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_snap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
