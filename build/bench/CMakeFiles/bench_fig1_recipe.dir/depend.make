# Empty dependencies file for bench_fig1_recipe.
# This may be replaced when dependencies are built.
