file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_recipe.dir/bench_fig1_recipe.cc.o"
  "CMakeFiles/bench_fig1_recipe.dir/bench_fig1_recipe.cc.o.d"
  "bench_fig1_recipe"
  "bench_fig1_recipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_recipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
