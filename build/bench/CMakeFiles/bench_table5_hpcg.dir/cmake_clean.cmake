file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_hpcg.dir/bench_table5_hpcg.cc.o"
  "CMakeFiles/bench_table5_hpcg.dir/bench_table5_hpcg.cc.o.d"
  "bench_table5_hpcg"
  "bench_table5_hpcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_hpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
