file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_counters.dir/bench_table1_counters.cc.o"
  "CMakeFiles/bench_table1_counters.dir/bench_table1_counters.cc.o.d"
  "bench_table1_counters"
  "bench_table1_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
