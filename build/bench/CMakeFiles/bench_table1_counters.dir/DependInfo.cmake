
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_counters.cc" "bench/CMakeFiles/bench_table1_counters.dir/bench_table1_counters.cc.o" "gcc" "bench/CMakeFiles/bench_table1_counters.dir/bench_table1_counters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lll_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/xmem/CMakeFiles/lll_xmem.dir/DependInfo.cmake"
  "/root/repo/build/src/counters/CMakeFiles/lll_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/lll_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lll_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
