# Empty dependencies file for bench_table7_comd.
# This may be replaced when dependencies are built.
