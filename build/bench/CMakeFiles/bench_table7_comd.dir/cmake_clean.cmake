file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_comd.dir/bench_table7_comd.cc.o"
  "CMakeFiles/bench_table7_comd.dir/bench_table7_comd.cc.o.d"
  "bench_table7_comd"
  "bench_table7_comd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_comd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
