file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_profiles.dir/bench_latency_profiles.cc.o"
  "CMakeFiles/bench_latency_profiles.dir/bench_latency_profiles.cc.o.d"
  "bench_latency_profiles"
  "bench_latency_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
