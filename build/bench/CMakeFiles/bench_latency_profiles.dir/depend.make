# Empty dependencies file for bench_latency_profiles.
# This may be replaced when dependencies are built.
