file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_minighost.dir/bench_table8_minighost.cc.o"
  "CMakeFiles/bench_table8_minighost.dir/bench_table8_minighost.cc.o.d"
  "bench_table8_minighost"
  "bench_table8_minighost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_minighost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
