file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dgemm.dir/bench_ext_dgemm.cc.o"
  "CMakeFiles/bench_ext_dgemm.dir/bench_ext_dgemm.cc.o.d"
  "bench_ext_dgemm"
  "bench_ext_dgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
