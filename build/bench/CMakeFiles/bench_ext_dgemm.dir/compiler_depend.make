# Empty compiler generated dependencies file for bench_ext_dgemm.
# This may be replaced when dependencies are built.
