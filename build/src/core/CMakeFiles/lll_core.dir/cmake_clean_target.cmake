file(REMOVE_RECURSE
  "liblll_core.a"
)
