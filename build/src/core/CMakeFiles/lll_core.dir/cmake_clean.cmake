file(REMOVE_RECURSE
  "CMakeFiles/lll_core.dir/analyzer.cc.o"
  "CMakeFiles/lll_core.dir/analyzer.cc.o.d"
  "CMakeFiles/lll_core.dir/experiment.cc.o"
  "CMakeFiles/lll_core.dir/experiment.cc.o.d"
  "CMakeFiles/lll_core.dir/littles_law.cc.o"
  "CMakeFiles/lll_core.dir/littles_law.cc.o.d"
  "CMakeFiles/lll_core.dir/recipe.cc.o"
  "CMakeFiles/lll_core.dir/recipe.cc.o.d"
  "CMakeFiles/lll_core.dir/roofline.cc.o"
  "CMakeFiles/lll_core.dir/roofline.cc.o.d"
  "CMakeFiles/lll_core.dir/tma.cc.o"
  "CMakeFiles/lll_core.dir/tma.cc.o.d"
  "liblll_core.a"
  "liblll_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
