# Empty dependencies file for lll_core.
# This may be replaced when dependencies are built.
