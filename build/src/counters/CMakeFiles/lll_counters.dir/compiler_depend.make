# Empty compiler generated dependencies file for lll_counters.
# This may be replaced when dependencies are built.
