file(REMOVE_RECURSE
  "liblll_counters.a"
)
