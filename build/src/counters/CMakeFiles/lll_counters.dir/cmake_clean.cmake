file(REMOVE_RECURSE
  "CMakeFiles/lll_counters.dir/counter_bank.cc.o"
  "CMakeFiles/lll_counters.dir/counter_bank.cc.o.d"
  "CMakeFiles/lll_counters.dir/vendor_matrix.cc.o"
  "CMakeFiles/lll_counters.dir/vendor_matrix.cc.o.d"
  "liblll_counters.a"
  "liblll_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
