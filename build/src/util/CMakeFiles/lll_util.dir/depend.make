# Empty dependencies file for lll_util.
# This may be replaced when dependencies are built.
