file(REMOVE_RECURSE
  "CMakeFiles/lll_util.dir/logging.cc.o"
  "CMakeFiles/lll_util.dir/logging.cc.o.d"
  "CMakeFiles/lll_util.dir/table.cc.o"
  "CMakeFiles/lll_util.dir/table.cc.o.d"
  "liblll_util.a"
  "liblll_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
