file(REMOVE_RECURSE
  "liblll_util.a"
)
