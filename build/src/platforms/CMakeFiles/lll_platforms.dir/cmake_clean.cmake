file(REMOVE_RECURSE
  "CMakeFiles/lll_platforms.dir/platform.cc.o"
  "CMakeFiles/lll_platforms.dir/platform.cc.o.d"
  "liblll_platforms.a"
  "liblll_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
