# Empty dependencies file for lll_platforms.
# This may be replaced when dependencies are built.
