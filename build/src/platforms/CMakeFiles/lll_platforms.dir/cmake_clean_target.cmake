file(REMOVE_RECURSE
  "liblll_platforms.a"
)
