# Empty dependencies file for lll_xmem.
# This may be replaced when dependencies are built.
