file(REMOVE_RECURSE
  "CMakeFiles/lll_xmem.dir/latency_profile.cc.o"
  "CMakeFiles/lll_xmem.dir/latency_profile.cc.o.d"
  "CMakeFiles/lll_xmem.dir/xmem_harness.cc.o"
  "CMakeFiles/lll_xmem.dir/xmem_harness.cc.o.d"
  "liblll_xmem.a"
  "liblll_xmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_xmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
