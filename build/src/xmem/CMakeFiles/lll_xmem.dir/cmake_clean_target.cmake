file(REMOVE_RECURSE
  "liblll_xmem.a"
)
