
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/comd.cc" "src/workloads/CMakeFiles/lll_workloads.dir/comd.cc.o" "gcc" "src/workloads/CMakeFiles/lll_workloads.dir/comd.cc.o.d"
  "/root/repo/src/workloads/dgemm.cc" "src/workloads/CMakeFiles/lll_workloads.dir/dgemm.cc.o" "gcc" "src/workloads/CMakeFiles/lll_workloads.dir/dgemm.cc.o.d"
  "/root/repo/src/workloads/hpcg.cc" "src/workloads/CMakeFiles/lll_workloads.dir/hpcg.cc.o" "gcc" "src/workloads/CMakeFiles/lll_workloads.dir/hpcg.cc.o.d"
  "/root/repo/src/workloads/isx.cc" "src/workloads/CMakeFiles/lll_workloads.dir/isx.cc.o" "gcc" "src/workloads/CMakeFiles/lll_workloads.dir/isx.cc.o.d"
  "/root/repo/src/workloads/minighost.cc" "src/workloads/CMakeFiles/lll_workloads.dir/minighost.cc.o" "gcc" "src/workloads/CMakeFiles/lll_workloads.dir/minighost.cc.o.d"
  "/root/repo/src/workloads/optimization.cc" "src/workloads/CMakeFiles/lll_workloads.dir/optimization.cc.o" "gcc" "src/workloads/CMakeFiles/lll_workloads.dir/optimization.cc.o.d"
  "/root/repo/src/workloads/pennant.cc" "src/workloads/CMakeFiles/lll_workloads.dir/pennant.cc.o" "gcc" "src/workloads/CMakeFiles/lll_workloads.dir/pennant.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/lll_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/lll_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/snap.cc" "src/workloads/CMakeFiles/lll_workloads.dir/snap.cc.o" "gcc" "src/workloads/CMakeFiles/lll_workloads.dir/snap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platforms/CMakeFiles/lll_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lll_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
