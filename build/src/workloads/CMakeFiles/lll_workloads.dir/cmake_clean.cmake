file(REMOVE_RECURSE
  "CMakeFiles/lll_workloads.dir/comd.cc.o"
  "CMakeFiles/lll_workloads.dir/comd.cc.o.d"
  "CMakeFiles/lll_workloads.dir/dgemm.cc.o"
  "CMakeFiles/lll_workloads.dir/dgemm.cc.o.d"
  "CMakeFiles/lll_workloads.dir/hpcg.cc.o"
  "CMakeFiles/lll_workloads.dir/hpcg.cc.o.d"
  "CMakeFiles/lll_workloads.dir/isx.cc.o"
  "CMakeFiles/lll_workloads.dir/isx.cc.o.d"
  "CMakeFiles/lll_workloads.dir/minighost.cc.o"
  "CMakeFiles/lll_workloads.dir/minighost.cc.o.d"
  "CMakeFiles/lll_workloads.dir/optimization.cc.o"
  "CMakeFiles/lll_workloads.dir/optimization.cc.o.d"
  "CMakeFiles/lll_workloads.dir/pennant.cc.o"
  "CMakeFiles/lll_workloads.dir/pennant.cc.o.d"
  "CMakeFiles/lll_workloads.dir/registry.cc.o"
  "CMakeFiles/lll_workloads.dir/registry.cc.o.d"
  "CMakeFiles/lll_workloads.dir/snap.cc.o"
  "CMakeFiles/lll_workloads.dir/snap.cc.o.d"
  "liblll_workloads.a"
  "liblll_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
