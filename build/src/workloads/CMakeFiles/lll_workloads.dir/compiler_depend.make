# Empty compiler generated dependencies file for lll_workloads.
# This may be replaced when dependencies are built.
