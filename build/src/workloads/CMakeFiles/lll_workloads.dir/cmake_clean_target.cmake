file(REMOVE_RECURSE
  "liblll_workloads.a"
)
