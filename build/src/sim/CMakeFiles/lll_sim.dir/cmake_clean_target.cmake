file(REMOVE_RECURSE
  "liblll_sim.a"
)
