# Empty compiler generated dependencies file for lll_sim.
# This may be replaced when dependencies are built.
