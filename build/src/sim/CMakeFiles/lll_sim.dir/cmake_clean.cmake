file(REMOVE_RECURSE
  "CMakeFiles/lll_sim.dir/cache.cc.o"
  "CMakeFiles/lll_sim.dir/cache.cc.o.d"
  "CMakeFiles/lll_sim.dir/core_model.cc.o"
  "CMakeFiles/lll_sim.dir/core_model.cc.o.d"
  "CMakeFiles/lll_sim.dir/mem_ctrl.cc.o"
  "CMakeFiles/lll_sim.dir/mem_ctrl.cc.o.d"
  "CMakeFiles/lll_sim.dir/mshr_queue.cc.o"
  "CMakeFiles/lll_sim.dir/mshr_queue.cc.o.d"
  "CMakeFiles/lll_sim.dir/op_stream.cc.o"
  "CMakeFiles/lll_sim.dir/op_stream.cc.o.d"
  "CMakeFiles/lll_sim.dir/request.cc.o"
  "CMakeFiles/lll_sim.dir/request.cc.o.d"
  "CMakeFiles/lll_sim.dir/stream_prefetcher.cc.o"
  "CMakeFiles/lll_sim.dir/stream_prefetcher.cc.o.d"
  "CMakeFiles/lll_sim.dir/system.cc.o"
  "CMakeFiles/lll_sim.dir/system.cc.o.d"
  "CMakeFiles/lll_sim.dir/thread_context.cc.o"
  "CMakeFiles/lll_sim.dir/thread_context.cc.o.d"
  "CMakeFiles/lll_sim.dir/tracer.cc.o"
  "CMakeFiles/lll_sim.dir/tracer.cc.o.d"
  "liblll_sim.a"
  "liblll_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
