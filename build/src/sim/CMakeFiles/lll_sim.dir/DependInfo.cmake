
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/lll_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/core_model.cc" "src/sim/CMakeFiles/lll_sim.dir/core_model.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/core_model.cc.o.d"
  "/root/repo/src/sim/mem_ctrl.cc" "src/sim/CMakeFiles/lll_sim.dir/mem_ctrl.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/mem_ctrl.cc.o.d"
  "/root/repo/src/sim/mshr_queue.cc" "src/sim/CMakeFiles/lll_sim.dir/mshr_queue.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/mshr_queue.cc.o.d"
  "/root/repo/src/sim/op_stream.cc" "src/sim/CMakeFiles/lll_sim.dir/op_stream.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/op_stream.cc.o.d"
  "/root/repo/src/sim/request.cc" "src/sim/CMakeFiles/lll_sim.dir/request.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/request.cc.o.d"
  "/root/repo/src/sim/stream_prefetcher.cc" "src/sim/CMakeFiles/lll_sim.dir/stream_prefetcher.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/stream_prefetcher.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/lll_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/system.cc.o.d"
  "/root/repo/src/sim/thread_context.cc" "src/sim/CMakeFiles/lll_sim.dir/thread_context.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/thread_context.cc.o.d"
  "/root/repo/src/sim/tracer.cc" "src/sim/CMakeFiles/lll_sim.dir/tracer.cc.o" "gcc" "src/sim/CMakeFiles/lll_sim.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
