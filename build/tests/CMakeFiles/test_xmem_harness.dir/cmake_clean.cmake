file(REMOVE_RECURSE
  "CMakeFiles/test_xmem_harness.dir/test_xmem_harness.cc.o"
  "CMakeFiles/test_xmem_harness.dir/test_xmem_harness.cc.o.d"
  "test_xmem_harness"
  "test_xmem_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xmem_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
