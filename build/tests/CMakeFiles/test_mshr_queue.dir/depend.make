# Empty dependencies file for test_mshr_queue.
# This may be replaced when dependencies are built.
