file(REMOVE_RECURSE
  "CMakeFiles/test_mshr_queue.dir/test_mshr_queue.cc.o"
  "CMakeFiles/test_mshr_queue.dir/test_mshr_queue.cc.o.d"
  "test_mshr_queue"
  "test_mshr_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mshr_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
