# Empty compiler generated dependencies file for test_op_stream.
# This may be replaced when dependencies are built.
