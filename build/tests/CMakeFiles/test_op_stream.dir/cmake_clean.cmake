file(REMOVE_RECURSE
  "CMakeFiles/test_op_stream.dir/test_op_stream.cc.o"
  "CMakeFiles/test_op_stream.dir/test_op_stream.cc.o.d"
  "test_op_stream"
  "test_op_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
