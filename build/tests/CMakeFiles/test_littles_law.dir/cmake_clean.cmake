file(REMOVE_RECURSE
  "CMakeFiles/test_littles_law.dir/test_littles_law.cc.o"
  "CMakeFiles/test_littles_law.dir/test_littles_law.cc.o.d"
  "test_littles_law"
  "test_littles_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_littles_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
