# Empty compiler generated dependencies file for test_littles_law.
# This may be replaced when dependencies are built.
