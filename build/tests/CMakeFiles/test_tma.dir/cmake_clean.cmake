file(REMOVE_RECURSE
  "CMakeFiles/test_tma.dir/test_tma.cc.o"
  "CMakeFiles/test_tma.dir/test_tma.cc.o.d"
  "test_tma"
  "test_tma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
