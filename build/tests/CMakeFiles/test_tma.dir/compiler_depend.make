# Empty compiler generated dependencies file for test_tma.
# This may be replaced when dependencies are built.
