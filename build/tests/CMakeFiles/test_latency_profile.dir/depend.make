# Empty dependencies file for test_latency_profile.
# This may be replaced when dependencies are built.
