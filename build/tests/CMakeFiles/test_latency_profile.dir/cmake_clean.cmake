file(REMOVE_RECURSE
  "CMakeFiles/test_latency_profile.dir/test_latency_profile.cc.o"
  "CMakeFiles/test_latency_profile.dir/test_latency_profile.cc.o.d"
  "test_latency_profile"
  "test_latency_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
