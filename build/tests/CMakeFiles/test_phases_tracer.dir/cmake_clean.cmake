file(REMOVE_RECURSE
  "CMakeFiles/test_phases_tracer.dir/test_phases_tracer.cc.o"
  "CMakeFiles/test_phases_tracer.dir/test_phases_tracer.cc.o.d"
  "test_phases_tracer"
  "test_phases_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phases_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
