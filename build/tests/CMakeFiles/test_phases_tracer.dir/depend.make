# Empty dependencies file for test_phases_tracer.
# This may be replaced when dependencies are built.
