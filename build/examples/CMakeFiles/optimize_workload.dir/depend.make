# Empty dependencies file for optimize_workload.
# This may be replaced when dependencies are built.
