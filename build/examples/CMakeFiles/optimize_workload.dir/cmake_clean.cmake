file(REMOVE_RECURSE
  "CMakeFiles/optimize_workload.dir/optimize_workload.cpp.o"
  "CMakeFiles/optimize_workload.dir/optimize_workload.cpp.o.d"
  "optimize_workload"
  "optimize_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
