# Empty compiler generated dependencies file for trace_memory.
# This may be replaced when dependencies are built.
