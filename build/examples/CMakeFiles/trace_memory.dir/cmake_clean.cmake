file(REMOVE_RECURSE
  "CMakeFiles/trace_memory.dir/trace_memory.cpp.o"
  "CMakeFiles/trace_memory.dir/trace_memory.cpp.o.d"
  "trace_memory"
  "trace_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
