file(REMOVE_RECURSE
  "CMakeFiles/lll.dir/lll_cli.cc.o"
  "CMakeFiles/lll.dir/lll_cli.cc.o.d"
  "lll"
  "lll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
