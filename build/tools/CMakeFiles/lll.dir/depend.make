# Empty dependencies file for lll.
# This may be replaced when dependencies are built.
