/**
 * @file
 * The `lll` command-line driver: the library's capabilities behind one
 * binary, the way a user of the paper's method would consume them.
 *
 *   lll platforms                         list platforms (Table III)
 *   lll workloads                         list workload models (Table II)
 *   lll characterize <plat> [--fresh]     X-Mem profile (cached)
 *   lll analyze <wl> <plat> [opts...]     one variant: analysis + recipe
 *   lll trace <wl> <plat> [opts...]       run with telemetry + tracer
 *   lll walk <wl> <plat>                  recipe loop to convergence
 *   lll table <wl>                        the paper-table rows for <wl>
 *   lll roofline <plat>                   roofs + MSHR ceilings
 *   lll vendors                           counter visibility (Table I)
 *
 * Variant opts: vect 2-ht 4-ht l2-pref tiling unroll-jam fusion distr
 * analyze/trace also accept `--json FILE` (full metric export, "-" for
 * stdout) and `--metrics FILE` (sampled time series as CSV).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/tracer.hh"

#include "counters/vendor_matrix.hh"
#include "lll/lll.hh"

using namespace lll;
using workloads::Opt;
using workloads::OptSet;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: lll <command> [args]\n"
        "  platforms | workloads | vendors\n"
        "  characterize <platform|all> [--fresh]\n"
        "  analyze <workload> <platform> [vect|2-ht|4-ht|l2-pref|tiling|"
        "unroll-jam|fusion|distr ...]\n"
        "          [--json FILE] [--metrics FILE]\n"
        "  trace <workload> <platform> [opts ...] [--json FILE] "
        "[--metrics FILE]\n"
        "  walk <workload> <platform>\n"
        "  table <workload>\n"
        "  roofline <platform>\n");
    return 2;
}

/**
 * Pull `flag FILE` out of @p args (destructively); empty string when the
 * flag is absent.  Keeps optimization names clean for parseOpts().
 */
std::string
takeFlag(std::vector<std::string> &args, const std::string &flag)
{
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] != flag)
            continue;
        if (i + 1 >= args.size())
            lll_fatal("%s needs a file argument", flag.c_str());
        std::string value = args[i + 1];
        args.erase(args.begin() + static_cast<long>(i),
                   args.begin() + static_cast<long>(i) + 2);
        return value;
    }
    return "";
}

OptSet
parseOpts(const std::vector<std::string> &args)
{
    OptSet set;
    for (const std::string &s : args) {
        if (s == "vect")
            set = set.with(Opt::Vectorize);
        else if (s == "2-ht")
            set = set.with(Opt::Smt2);
        else if (s == "4-ht")
            set = set.with(Opt::Smt4);
        else if (s == "l2-pref")
            set = set.with(Opt::SwPrefetchL2);
        else if (s == "tiling")
            set = set.with(Opt::Tiling);
        else if (s == "unroll-jam")
            set = set.with(Opt::UnrollJam);
        else if (s == "fusion")
            set = set.with(Opt::Fusion);
        else if (s == "distr")
            set = set.with(Opt::Distribution);
        else
            lll_fatal("unknown optimization '%s'", s.c_str());
    }
    return set;
}

xmem::LatencyProfile
profileFor(const platforms::Platform &p)
{
    return xmem::XMemHarness().measureCached(
        p, xmem::defaultProfilePath(p));
}

int
cmdPlatforms()
{
    Table t({"id", "description", "cores", "peak BW", "L1/L2 MSHRs",
             "line", "SMT"});
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        t.addRow({p.name, p.description, std::to_string(p.totalCores),
                  fmtDouble(p.peakGBs, 0) + " GB/s",
                  std::to_string(p.l1Mshrs) + "/" +
                      std::to_string(p.l2Mshrs),
                  std::to_string(p.lineBytes) + "B",
                  std::to_string(p.maxSmtWays) + "-way"});
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}

int
cmdWorkloads()
{
    Table t({"id", "description", "routine", "problem size", "pattern"});
    for (const workloads::WorkloadPtr &w : workloads::allWorkloads()) {
        t.addRow({w->name(), w->description(), w->routine(),
                  w->problemSize(),
                  w->randomDominated() ? "random" : "streaming"});
    }
    t.addRow({"dgemm", "Dense matrix multiply (extension)",
              "dgemm_kernel", "m=n=k=2048", "streaming"});
    std::fputs(t.render().c_str(), stdout);
    return 0;
}

int
cmdVendors()
{
    Table t({"vendor", "stall breakdown", "L1-MSHRQ-full",
             "L2-MSHRQ-full", "mem latency", "mem traffic"});
    for (const counters::VendorSummary &v :
         counters::vendorSummaries()) {
        t.addRow({platforms::vendorName(v.vendor),
                  counters::visibilityName(v.stallBreakdown),
                  counters::visibilityName(v.l1MshrFullStalls),
                  counters::visibilityName(v.l2MshrFullStalls),
                  counters::visibilityName(v.memoryLatency),
                  counters::visibilityName(v.memoryTraffic)});
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}

int
cmdCharacterize(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    bool fresh = argc > 3 && std::strcmp(argv[3], "--fresh") == 0;
    std::vector<platforms::Platform> plats;
    if (std::string(argv[2]) == "all")
        plats = platforms::allPlatforms();
    else
        plats.push_back(platforms::byName(argv[2]));
    for (const platforms::Platform &p : plats) {
        std::string path = xmem::defaultProfilePath(p);
        if (fresh)
            std::remove(path.c_str());
        xmem::LatencyProfile prof =
            xmem::XMemHarness().measureCached(p, path);
        std::printf("%s: idle %.0f ns, peak achievable %.0f GB/s "
                    "(profile: %s)\n",
                    p.name.c_str(), prof.idleLatencyNs(),
                    prof.maxMeasuredGBs(), path.c_str());
    }
    return 0;
}

int
cmdAnalyze(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    workloads::WorkloadPtr w = workloads::workloadByName(argv[2]);
    platforms::Platform p = platforms::byName(argv[3]);
    std::vector<std::string> args(argv + 4, argv + argc);
    std::string json_path = takeFlag(args, "--json");
    std::string metrics_path = takeFlag(args, "--metrics");
    OptSet opts = parseOpts(args);

    obs::MetricRegistry registry;
    core::Experiment::Params ep;
    if (!json_path.empty() || !metrics_path.empty())
        ep.registry = &registry;

    // When an export goes to stdout the human report moves to stderr so
    // `lll analyze ... --json - | jq` stays parseable.
    FILE *rep = (json_path == "-" || metrics_path == "-") ? stderr
                                                          : stdout;
    core::Experiment exp(p, *w, profileFor(p), ep);
    const core::StageMetrics &m = exp.stage(opts);
    const core::Analysis &a = m.analysis;
    std::fprintf(rep, "%s [%s] on %s:\n", w->routine().c_str(),
                 opts.label().c_str(), p.name.c_str());
    std::fprintf(rep,
                 "  BW %.1f GB/s (%.0f%% of peak), loaded latency %.0f "
                 "ns\n",
                 a.bwGBs, a.pctPeak * 100.0, a.latencyNs);
    std::fprintf(rep, "  n_avg %.2f of %u %s MSHRs (%s accesses)\n",
                 a.nAvg, a.limitingMshrs,
                 core::mshrLevelName(a.limitingLevel),
                 core::accessClassName(a.accessClass));
    core::Recipe recipe(p);
    core::RecipeDecision d = recipe.advise(a, opts);
    std::fprintf(rep, "  %s\n", d.summary.c_str());
    for (const core::Recommendation &r : d.recommendations) {
        std::fprintf(rep, "    [%s] %-22s %s\n",
                     r.recommended ? "TRY " : "skip",
                     workloads::optName(r.opt), r.rationale.c_str());
    }

    if (!json_path.empty() &&
        !obs::writeExport(json_path,
                          obs::exportJson(registry,
                                          &obs::SpanTracker::global()))) {
        lll_fatal("cannot write '%s'", json_path.c_str());
    }
    if (!metrics_path.empty() &&
        !obs::writeExport(metrics_path, obs::exportCsv(registry))) {
        lll_fatal("cannot write '%s'", metrics_path.c_str());
    }
    return 0;
}

int
cmdTrace(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    workloads::WorkloadPtr w = workloads::workloadByName(argv[2]);
    platforms::Platform p = platforms::byName(argv[3]);
    std::vector<std::string> args(argv + 4, argv + argc);
    std::string json_path = takeFlag(args, "--json");
    std::string metrics_path = takeFlag(args, "--metrics");
    OptSet opts = parseOpts(args);

    obs::MetricRegistry registry;
    sim::RunResult run;
    sim::RequestTracer tracer;
    {
        obs::ScopedSpan span("trace[" + w->name() + "/" + opts.label() +
                             "]");
        sim::KernelSpec spec = w->spec(p, opts);
        sim::SystemParams sp = p.sysParams(p.totalCores, opts.smtWays());
        sim::System sys(sp, spec);
        sys.mem().setTracer(&tracer);
        sys.attachObservability(registry);
        run = sys.run(w->warmupUs(), w->measureUs());
    }

    FILE *rep = (json_path == "-" || metrics_path == "-") ? stderr
                                                          : stdout;
    std::fprintf(rep, "%s [%s] on %s: %.1f GB/s over %.0f us\n",
                 w->routine().c_str(), opts.label().c_str(),
                 p.name.c_str(), run.totalGBs, w->measureUs());
    std::fprintf(rep, "  telemetry: %llu snapshots of %zu time series\n",
                 static_cast<unsigned long long>(registry.snapshots()),
                 registry.allSeries().size());
    std::fprintf(rep,
                 "  trace window: %zu of %llu memory requests, locality "
                 "%.2f\n",
                 tracer.size(),
                 static_cast<unsigned long long>(tracer.total()),
                 tracer.localityScore());
    if (json_path.empty() && metrics_path.empty())
        std::fprintf(rep, "  (use --json FILE / --metrics FILE to "
                          "export)\n");

    if (!json_path.empty()) {
        std::vector<obs::JsonSection> extra{{"trace", tracer.toJson()}};
        if (!obs::writeExport(json_path,
                              obs::exportJson(registry,
                                              &obs::SpanTracker::global(),
                                              extra))) {
            lll_fatal("cannot write '%s'", json_path.c_str());
        }
    }
    if (!metrics_path.empty() &&
        !obs::writeExport(metrics_path, obs::exportCsv(registry))) {
        lll_fatal("cannot write '%s'", metrics_path.c_str());
    }
    return 0;
}

int
cmdWalk(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    workloads::WorkloadPtr w = workloads::workloadByName(argv[2]);
    platforms::Platform p = platforms::byName(argv[3]);
    core::Experiment exp(p, *w, profileFor(p));
    core::Recipe recipe(p);

    OptSet state;
    double base = exp.stage(state).throughput;
    for (int step = 0; step < 8; ++step) {
        const core::StageMetrics &m = exp.stage(state);
        core::RecipeDecision d = recipe.advise(m.analysis, state);
        std::printf("[%s] n_avg %.2f/%u, BW %.0f%%, cum %.2fx — %s\n",
                    state.label().c_str(), m.analysis.nAvg,
                    m.analysis.limitingMshrs, m.analysis.pctPeak * 100.0,
                    m.throughput / base, d.summary.c_str());
        bool moved = false;
        for (Opt opt : d.recommendedOpts()) {
            double s = exp.speedup(state, state.with(opt));
            std::printf("  %s -> %.2fx\n", workloads::optName(opt), s);
            if (s >= 1.02) {
                state = state.with(opt);
                moved = true;
                break;
            }
        }
        if (!moved || d.stop)
            break;
    }
    std::printf("final: [%s] %.2fx\n", state.label().c_str(),
                exp.stage(state).throughput / base);
    return 0;
}

int
cmdTable(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    workloads::WorkloadPtr w = workloads::workloadByName(argv[2]);
    Table t({"Proc", "Source", "BW_obs (GB/s)", "lat_avg (ns)", "n_avg",
             "Opt: measured", "paper"});
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        core::Experiment exp(p, *w, profileFor(p));
        for (const core::TableRow &row : exp.paperTable()) {
            std::string opt = row.optLabel;
            std::string paper = "-";
            if (row.speedup > 0.0) {
                opt += ": " + fmtSpeedup(row.speedup);
                if (row.paperSpeedup > 0.0)
                    paper = fmtSpeedup(row.paperSpeedup);
            }
            t.addRow({p.name, row.source,
                      fmtBwPct(row.bwGBs, p.peakGBs),
                      fmtDouble(row.latencyNs, 0),
                      fmtDouble(row.nAvg, 2), opt, paper});
        }
        t.addSeparator();
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}

int
cmdRoofline(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    platforms::Platform p = platforms::byName(argv[2]);
    core::Roofline roof(p, profileFor(p));
    std::printf("%s: peak %.0f GFlop/s, BW roof %.0f GB/s, L1-MSHR "
                "ceiling %.0f GB/s, L2-MSHR ceiling %.0f GB/s, ridge "
                "%.2f flop/B\n",
                p.name.c_str(), roof.peakGFlops(), roof.peakGBs(),
                roof.mshrCeilingGBs(core::MshrLevel::L1, p.totalCores),
                roof.mshrCeilingGBs(core::MshrLevel::L2, p.totalCores),
                roof.ridgeIntensity());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "platforms")
        return cmdPlatforms();
    if (cmd == "workloads")
        return cmdWorkloads();
    if (cmd == "vendors")
        return cmdVendors();
    if (cmd == "characterize")
        return cmdCharacterize(argc, argv);
    if (cmd == "analyze")
        return cmdAnalyze(argc, argv);
    if (cmd == "trace")
        return cmdTrace(argc, argv);
    if (cmd == "walk")
        return cmdWalk(argc, argv);
    if (cmd == "table")
        return cmdTable(argc, argv);
    if (cmd == "roofline")
        return cmdRoofline(argc, argv);
    return usage();
}
