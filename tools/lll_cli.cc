/**
 * @file
 * The `lll` command-line driver: the library's capabilities behind one
 * binary, the way a user of the paper's method would consume them.
 *
 *   lll platforms                         list platforms (Table III)
 *   lll workloads                         list workload models (Table II)
 *   lll characterize <plat> [--fresh]     X-Mem profile (cached)
 *   lll analyze <wl> <plat> [opts...]     one variant: analysis + recipe
 *   lll trace <wl> <plat> [opts...]       run with telemetry + tracer
 *   lll walk <wl> <plat>                  recipe loop to convergence
 *   lll table <wl>                        the paper-table rows for <wl>
 *   lll sweep                             every workload x platform walk
 *   lll reproduce                         the paper's Tables IV-IX
 *   lll roofline <plat>                   roofs + MSHR ceilings
 *   lll vendors                           counter visibility (Table I)
 *   lll selftest [--iterations N]         fault-injection harness
 *   lll lint [<wl> <plat> [opts...]]      static analyzer (+ determinism)
 *   lll audit [--fix-plan]                source auditor (layering, names)
 *   lll serve [--batch FILE]              batched JSON-lines run service
 *   lll serve --listen HOST:PORT          socket front-end (DESIGN §14)
 *   lll bench-serve --connect HOST:PORT   load generator for --listen
 *   lll search <wl> <plat> --axis ...     design-space autotuner (§17)
 *   lll profile <cmd> [args...]           self-profile any subcommand
 *   lll bench                             microbenchmark harness + ratchet
 *
 * Variant opts: vect 2-ht 4-ht l2-pref tiling unroll-jam fusion distr
 * analyze/trace also accept `--cores N` (drive the load with fewer
 * cores), `--json FILE` (machine-readable report, "-" for stdout) and
 * `--metrics FILE` (sampled time series as CSV).
 * lint accepts `--json FILE` and `--determinism` (event-order race
 * check; `--seeds A,B,...` picks the nonzero tie-break seeds to sweep);
 * without a workload/platform it scans the whole registry;
 * `--profile FILE` lints a cached X-Mem latency profile instead.
 * table/sweep/reproduce run through the parallel SweepRunner: `--jobs N`
 * fans units out to N workers (output is byte-identical for any N) and
 * `--cache-dir DIR` spills the result cache to disk so warm reruns skip
 * simulation entirely.  `--max-entries N` caps the in-process memo
 * (LRU) and `--spill-budget BYTES` caps the spill dir (oldest first).
 * serve reads one JSON request per line (stdin or `--batch FILE`),
 * coalesces duplicates, and answers one JSON response per line on
 * stdout, in request order — see DESIGN.md §12 for the schema.
 *
 * Every `--json FILE` export is wrapped in the same envelope:
 *   {"schema_version": 1, "command": ..., "status": {code, exit,
 *    message}, "data": ..., "telemetry": ...}
 * so consumers parse one shape and never re-derive exit semantics.
 *
 * Flag parsing is shared (util::ArgParser): repeated flags, missing
 * values and unknown leftovers fail the same way on every subcommand,
 * and `lll <cmd> --help` renders the one generated usage format (every
 * registered flag listed) and exits 0.
 *
 * Exit codes (see README "Robustness"): 0 success, 2 usage error,
 * 3 bad input data (including lint errors and failed serve requests),
 * 4 simulation failure (including determinism divergence), 1 anything
 * else.
 */

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/tracer.hh"

#include "analysis/determinism.hh"
#include "analysis/spec_lint.hh"
#include "audit/audit.hh"
#include "counters/vendor_matrix.hh"
#include "faultinject/faultinject.hh"
#include "lll/api.hh"
#include "lll/lll.hh"
#include "net/listener.hh"
#include "net/loadgen.hh"
#include "net/serve_handler.hh"
#include "obs/profiler.hh"
#include "obs/timer.hh"
#include "perf/bench_report.hh"
#include "perf/microbench.hh"
#include "search/axes.hh"
#include "search/search.hh"
#include "util/argparse.hh"
#include "util/diagnostic.hh"
#include "util/names.hh"
#include "util/status.hh"

using namespace lll;
using util::ArgParser;
using util::ErrorCode;
using util::Status;
using workloads::Opt;
using workloads::OptSet;

namespace
{

void
usageText(FILE *to)
{
    std::fprintf(
        to,
        "usage: lll <command> [args]\n"
        "  platforms | workloads | vendors\n"
        "  characterize <platform|all> [--fresh]\n"
        "  analyze <workload> <platform> [vect|2-ht|4-ht|l2-pref|tiling|"
        "unroll-jam|fusion|distr ...]\n"
        "          [--cores N] [--json FILE] [--metrics FILE]\n"
        "  trace <workload> <platform> [opts ...] [--cores N] "
        "[--json FILE] [--metrics FILE]\n"
        "  walk <workload> <platform>\n"
        "  table <workload> [--jobs N] [--cache-dir DIR]\n"
        "  sweep [--jobs N] [--cache-dir DIR] [--json FILE]\n"
        "  reproduce [--jobs N] [--cache-dir DIR]\n"
        "  roofline <platform>\n"
        "  selftest [--iterations N] [--seed S] [--verbose]\n"
        "  lint [<workload> <platform> [opts ...]] [--json FILE] "
        "[--determinism]\n"
        "       [--seeds A,B,...]\n"
        "  lint --profile FILE [--json FILE]\n"
        "  audit [--root DIR] [--json FILE] [--fix-plan]\n"
        "  serve [--batch FILE] [--jobs N] [--cache-dir DIR] "
        "[--max-entries N]\n"
        "        [--spill-budget BYTES] [--json FILE] "
        "[--stats-interval N]\n"
        "        [--request-telemetry]\n"
        "  serve --listen HOST:PORT | --listen-unix PATH "
        "[--jobs N]\n"
        "        [--max-inflight N] [--max-pipelined N] "
        "[--max-conns N]\n"
        "        [--max-line-bytes N] [--max-write-buffer BYTES]\n"
        "        [--idle-timeout-ms MS] [--read-timeout-ms MS]\n"
        "        [--watchdog-ms MS] [--drain-grace-ms MS] "
        "[--json FILE]\n"
        "  bench-serve --connect HOST:PORT | --connect-unix PATH\n"
        "        [--connections N] [--pipeline N] [--qps RATE] "
        "[--duration-s S]\n"
        "        [--requests FILE] [--drain-timeout-ms MS] "
        "[--json FILE]\n"
        "  search <workload> <platform> [opts ...] --axis name=spec "
        "...\n"
        "        [--point name=v,...] [--list-axes] [--jobs N] "
        "[--cache-dir DIR]\n"
        "        [--cores N] [--bank-weight W] [--max-candidates N]\n"
        "        [--no-prune] [--all] [--json FILE] [--seed S]\n"
        "        [--warmup-us X] [--measure-us X]\n"
        "  profile [--out FILE] [--top N] <command> [args ...]\n"
        "  bench [--trials N] [--warmup-ms MS] [--measure-ms MS] "
        "[--kernel NAME]\n"
        "        [--rev REV] [--json FILE] [--compare BASELINE] "
        "[--tolerance FRAC]\n"
        "`lll <command> --help` lists every flag of that command.\n");
}

int
usage()
{
    usageText(stderr);
    return 2;
}

/**
 * The shared `--help` exit: when @p ap latched `--help`, print the
 * generated help (usage tail + every flag the command registered) to
 * stdout and tell the caller to return 0.  Must run after all of the
 * command's flag accessors so the listing is complete.
 */
bool
helpOut(const ArgParser &ap, const char *tail, const char *summary)
{
    if (!ap.helpRequested())
        return false;
    std::fputs(ap.helpText(tail, summary).c_str(), stdout);
    return true;
}

/** Report @p status on stderr and map it to the process exit code. */
int
failWith(const Status &status)
{
    std::fprintf(stderr, "lll: %s\n", status.toString().c_str());
    return util::exitCodeFor(status.code());
}

util::Result<OptSet>
parseOpts(const std::vector<std::string> &args)
{
    OptSet set;
    for (const std::string &s : args) {
        if (s == "vect")
            set = set.with(Opt::Vectorize);
        else if (s == "2-ht")
            set = set.with(Opt::Smt2);
        else if (s == "4-ht")
            set = set.with(Opt::Smt4);
        else if (s == "l2-pref")
            set = set.with(Opt::SwPrefetchL2);
        else if (s == "tiling")
            set = set.with(Opt::Tiling);
        else if (s == "unroll-jam")
            set = set.with(Opt::UnrollJam);
        else if (s == "fusion")
            set = set.with(Opt::Fusion);
        else if (s == "distr")
            set = set.with(Opt::Distribution);
        else if (!s.empty() && s[0] == '-')
            return Status::error(ErrorCode::InvalidArgument,
                                 "unknown flag '%s'", s.c_str());
        else
            return Status::error(ErrorCode::InvalidArgument,
                                 "unknown optimization '%s'", s.c_str());
    }
    return set;
}

util::Result<xmem::LatencyProfile>
profileFor(const platforms::Platform &p)
{
    return xmem::XMemHarness().measureCachedChecked(
        p, xmem::defaultProfilePath(p));
}

int
cmdPlatforms(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    if (helpOut(ap, "platforms", "List the modeled platforms "
                                 "(paper Table III)."))
        return 0;
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);
    Table t({"id", "description", "cores", "peak BW", "L1/L2 MSHRs",
             "line", "SMT"});
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        t.addRow({p.name, p.description, std::to_string(p.totalCores),
                  fmtDouble(p.peakGBs, 0) + " GB/s",
                  std::to_string(p.l1Mshrs) + "/" +
                      std::to_string(p.l2Mshrs),
                  std::to_string(p.lineBytes) + "B",
                  std::to_string(p.maxSmtWays) + "-way"});
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}

int
cmdWorkloads(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    if (helpOut(ap, "workloads", "List the workload models "
                                 "(paper Table II)."))
        return 0;
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);
    Table t({"id", "description", "routine", "problem size", "pattern"});
    for (const workloads::WorkloadPtr &w : workloads::allWorkloads()) {
        t.addRow({w->name(), w->description(), w->routine(),
                  w->problemSize(),
                  w->randomDominated() ? "random" : "streaming"});
    }
    t.addRow({"dgemm", "Dense matrix multiply (extension)",
              "dgemm_kernel", "m=n=k=2048", "streaming"});
    std::fputs(t.render().c_str(), stdout);
    return 0;
}

int
cmdVendors(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    if (helpOut(ap, "vendors", "Counter visibility by vendor "
                               "(paper Table I)."))
        return 0;
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);
    Table t({"vendor", "stall breakdown", "L1-MSHRQ-full",
             "L2-MSHRQ-full", "mem latency", "mem traffic"});
    for (const counters::VendorSummary &v :
         counters::vendorSummaries()) {
        t.addRow({platforms::vendorName(v.vendor),
                  counters::visibilityName(v.stallBreakdown),
                  counters::visibilityName(v.l1MshrFullStalls),
                  counters::visibilityName(v.l2MshrFullStalls),
                  counters::visibilityName(v.memoryLatency),
                  counters::visibilityName(v.memoryTraffic)});
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}

int
cmdCharacterize(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    util::Result<bool> fresh =
        ap.boolFlag("--fresh", "re-measure even when a profile exists");
    if (!fresh.ok())
        return failWith(fresh.status());
    if (helpOut(ap, "characterize <platform|all> [--fresh]",
                "Measure (or load) a platform's X-Mem latency "
                "profile."))
        return 0;
    if (ap.rest().empty())
        return usage();
    const std::string which = ap.rest().front();
    ap.consumePositional(1);
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    std::vector<platforms::Platform> plats;
    if (which == "all") {
        plats = platforms::allPlatforms();
    } else {
        util::Result<platforms::Platform> p =
            platforms::findPlatform(which);
        if (!p.ok())
            return failWith(p.status());
        plats.push_back(p.take());
    }
    for (const platforms::Platform &p : plats) {
        std::string path = xmem::defaultProfilePath(p);
        if (*fresh)
            (void)std::remove(path.c_str()); // absent file is fine
        util::Result<xmem::LatencyProfile> prof =
            xmem::XMemHarness().measureCachedChecked(p, path);
        if (!prof.ok())
            return failWith(prof.status());
        std::printf("%s: idle %.0f ns, peak achievable %.0f GB/s "
                    "(profile: %s)\n",
                    p.name.c_str(), prof->idleLatencyNs(),
                    prof->maxMeasuredGBs(), path.c_str());
    }
    return 0;
}

/** Shared argv parsing of analyze/trace: workload platform [opts/flags]. */
struct VariantArgs
{
    workloads::WorkloadPtr workload;
    platforms::Platform platform;
    OptSet opts;
    std::string jsonPath;
    std::string metricsPath;
    int cores = 0; //!< 0 = all of the platform's cores
};

util::Result<VariantArgs>
parseVariantArgs(ArgParser &ap, const char *command)
{
    VariantArgs va;
    util::Result<std::string> json = ap.stringFlag("--json");
    if (!json.ok())
        return json.status();
    va.jsonPath = json.take();
    util::Result<std::string> metrics = ap.stringFlag("--metrics");
    if (!metrics.ok())
        return metrics.status();
    va.metricsPath = metrics.take();
    util::Result<int> cores = ap.intFlag("--cores", 0);
    if (!cores.ok())
        return cores.status();
    va.cores = *cores;

    // Help mode: flags are registered; the command prints and exits
    // before touching the (possibly absent) operands.
    if (ap.helpRequested())
        return va;

    if (ap.rest().size() < 2) {
        return Status::error(ErrorCode::InvalidArgument,
                             "%s needs a workload and a platform",
                             command);
    }
    util::Result<workloads::WorkloadPtr> w =
        workloads::findWorkload(ap.rest()[0]);
    if (!w.ok())
        return w.status();
    va.workload = w.take();
    util::Result<platforms::Platform> p =
        platforms::findPlatform(ap.rest()[1]);
    if (!p.ok())
        return p.status();
    va.platform = p.take();
    ap.consumePositional(2);

    util::Result<OptSet> opts = parseOpts(ap.rest());
    if (!opts.ok())
        return opts.status();
    va.opts = opts.take();
    return va;
}

Status
writeExportChecked(const std::string &path, const std::string &content)
{
    if (!obs::writeExport(path, content)) {
        return Status::error(ErrorCode::IoError, "cannot write '%s'",
                             path.c_str());
    }
    return Status::okStatus();
}

int
cmdAnalyze(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    util::Result<VariantArgs> parsed = parseVariantArgs(ap, "analyze");
    if (!parsed.ok())
        return failWith(parsed.status());
    if (helpOut(ap, "analyze <workload> <platform> [opts ...] [flags]",
                "Analyze one variant: Little's-law analysis plus the "
                "optimization recipe."))
        return 0;
    VariantArgs &va = *parsed;

    obs::MetricRegistry registry;
    core::Experiment::Params ep;
    ep.coresUsed = va.cores;
    if (!va.jsonPath.empty() || !va.metricsPath.empty())
        ep.registry = &registry;

    util::Result<xmem::LatencyProfile> prof = profileFor(va.platform);
    if (!prof.ok())
        return failWith(prof.status());

    // When an export goes to stdout the human report moves to stderr so
    // `lll analyze ... --json - | jq` stays parseable.
    FILE *rep = (va.jsonPath == "-" || va.metricsPath == "-") ? stderr
                                                              : stdout;
    util::Result<core::Experiment> exp = core::Experiment::create(
        va.platform, *va.workload, prof.take(), ep);
    if (!exp.ok())
        return failWith(exp.status());
    const core::StageMetrics &m = exp->stage(va.opts);
    const core::Analysis &a = m.analysis;
    std::fprintf(rep, "%s [%s] on %s:\n", va.workload->routine().c_str(),
                 va.opts.label().c_str(), va.platform.name.c_str());
    std::fprintf(rep,
                 "  BW %.1f GB/s (%.0f%% of peak), loaded latency %.0f "
                 "ns\n",
                 a.bwGBs, a.pctPeak * 100.0, a.latencyNs);
    std::fprintf(rep, "  n_avg %.2f of %u %s MSHRs (%s accesses)\n",
                 a.nAvg, a.limitingMshrs,
                 core::mshrLevelName(a.limitingLevel),
                 core::accessClassName(a.accessClass));
    for (const std::string &warning : a.warnings)
        std::fprintf(rep, "  warning: %s\n", warning.c_str());
    core::Recipe recipe(va.platform);
    core::RecipeDecision d = recipe.advise(a, va.opts);
    std::fprintf(rep, "  %s\n", d.summary.c_str());
    for (const core::Recommendation &r : d.recommendations) {
        std::fprintf(rep, "    [%s] %-22s %s\n",
                     r.recommended ? "TRY " : "skip",
                     workloads::optName(r.opt), r.rationale.c_str());
    }

    if (!va.jsonPath.empty()) {
        const std::string data = service::stageDataJson(
            m, va.platform.name, va.workload->name(),
            va.opts.label());
        const std::string telemetry =
            obs::exportJson(registry, &obs::SpanTracker::global());
        Status s = writeExportChecked(
            va.jsonPath, obs::jsonEnvelope("analyze",
                                           Status::okStatus(), 0, data,
                                           telemetry));
        if (!s.ok())
            return failWith(s);
    }
    if (!va.metricsPath.empty()) {
        Status s = writeExportChecked(va.metricsPath,
                                      obs::exportCsv(registry));
        if (!s.ok())
            return failWith(s);
    }
    return 0;
}

int
cmdTrace(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    util::Result<VariantArgs> parsed = parseVariantArgs(ap, "trace");
    if (!parsed.ok())
        return failWith(parsed.status());
    if (helpOut(ap, "trace <workload> <platform> [opts ...] [flags]",
                "Run one variant with telemetry and the request "
                "tracer attached."))
        return 0;
    VariantArgs &va = *parsed;
    workloads::WorkloadPtr &w = va.workload;
    platforms::Platform &p = va.platform;

    obs::MetricRegistry registry;
    sim::RunResult run;
    sim::RequestTracer tracer;
    {
        obs::ScopedSpan span("trace[" + w->name() + "/" +
                             va.opts.label() + "]");
        sim::KernelSpec spec = w->spec(p, va.opts);
        util::Result<sim::SystemParams> sp = p.trySysParams(
            va.cores > 0 ? va.cores : p.totalCores, va.opts.smtWays());
        if (!sp.ok())
            return failWith(sp.status());
        sim::System sys(*sp, spec);
        sys.mem().setTracer(&tracer);
        sys.attachObservability(registry);
        util::Result<sim::RunResult> r =
            sys.runChecked(w->warmupUs(), w->measureUs());
        if (!r.ok())
            return failWith(r.status());
        run = r.take();
    }

    FILE *rep = (va.jsonPath == "-" || va.metricsPath == "-") ? stderr
                                                              : stdout;
    std::fprintf(rep, "%s [%s] on %s: %.1f GB/s over %.0f us\n",
                 w->routine().c_str(), va.opts.label().c_str(),
                 p.name.c_str(), run.totalGBs, w->measureUs());
    std::fprintf(rep, "  telemetry: %llu snapshots of %zu time series\n",
                 static_cast<unsigned long long>(registry.snapshots()),
                 registry.allSeries().size());
    std::fprintf(rep,
                 "  trace window: %zu of %llu memory requests, locality "
                 "%.2f\n",
                 tracer.size(),
                 static_cast<unsigned long long>(tracer.total()),
                 tracer.localityScore());
    if (va.jsonPath.empty() && va.metricsPath.empty())
        std::fprintf(rep, "  (use --json FILE / --metrics FILE to "
                          "export)\n");

    if (!va.jsonPath.empty()) {
        const std::string telemetry =
            obs::exportJson(registry, &obs::SpanTracker::global());
        Status s = writeExportChecked(
            va.jsonPath, obs::jsonEnvelope("trace", Status::okStatus(),
                                           0, tracer.toJson(),
                                           telemetry));
        if (!s.ok())
            return failWith(s);
    }
    if (!va.metricsPath.empty()) {
        Status s = writeExportChecked(va.metricsPath,
                                      obs::exportCsv(registry));
        if (!s.ok())
            return failWith(s);
    }
    return 0;
}

int
cmdWalk(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    if (helpOut(ap, "walk <workload> <platform>",
                "Follow the optimization recipe to convergence."))
        return 0;
    if (ap.rest().size() < 2)
        return usage();
    util::Result<workloads::WorkloadPtr> w =
        workloads::findWorkload(ap.rest()[0]);
    if (!w.ok())
        return failWith(w.status());
    util::Result<platforms::Platform> p =
        platforms::findPlatform(ap.rest()[1]);
    if (!p.ok())
        return failWith(p.status());
    ap.consumePositional(2);
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);
    util::Result<xmem::LatencyProfile> prof = profileFor(*p);
    if (!prof.ok())
        return failWith(prof.status());
    util::Result<core::Experiment> exp =
        core::Experiment::create(*p, **w, prof.take());
    if (!exp.ok())
        return failWith(exp.status());
    core::Recipe recipe(*p);

    OptSet state;
    double base = exp->stage(state).throughput;
    for (int step = 0; step < 8; ++step) {
        const core::StageMetrics &m = exp->stage(state);
        core::RecipeDecision d = recipe.advise(m.analysis, state);
        std::printf("[%s] n_avg %.2f/%u, BW %.0f%%, cum %.2fx — %s\n",
                    state.label().c_str(), m.analysis.nAvg,
                    m.analysis.limitingMshrs, m.analysis.pctPeak * 100.0,
                    m.throughput / base, d.summary.c_str());
        bool moved = false;
        for (Opt opt : d.recommendedOpts()) {
            double s = exp->speedup(state, state.with(opt));
            std::printf("  %s -> %.2fx\n", workloads::optName(opt), s);
            if (s >= 1.02) {
                state = state.with(opt);
                moved = true;
                break;
            }
        }
        if (!moved || d.stop)
            break;
    }
    std::printf("final: [%s] %.2fx\n", state.label().c_str(),
                exp->stage(state).throughput / base);
    return 0;
}

/**
 * Apply the shared cache-capacity knobs to @p cache: `--max-entries N`
 * (in-process LRU cap), `--spill-budget BYTES` (on-disk cap, oldest
 * spill evicted first) and `--cache-dir DIR`.  Policy flags are
 * applied *before* the spill dir attaches so a pre-existing dir is
 * GC'd against the budget immediately.
 */
Status
applyCacheFlags(ArgParser &ap, core::ResultCache &cache)
{
    util::Result<int> max_entries = ap.intFlag("--max-entries", 0);
    if (!max_entries.ok())
        return max_entries.status();
    if (*max_entries > 0)
        cache.setMaxEntries(static_cast<size_t>(*max_entries));
    util::Result<uint64_t> budget = ap.uint64Flag("--spill-budget", 0);
    if (!budget.ok())
        return budget.status();
    if (*budget > 0)
        cache.setSpillBudget(*budget);
    util::Result<std::string> dir = ap.stringFlag("--cache-dir");
    if (!dir.ok())
        return dir.status();
    if (!dir->empty())
        return cache.setSpillDir(*dir);
    return Status::okStatus();
}

/**
 * Pull the SweepRunner knobs (`--jobs N` plus the cache-capacity
 * flags) out of @p ap.  The global ResultCache is always engaged — a
 * sweep revisiting a stage must never pay for it twice — and
 * `--cache-dir` additionally spills it to disk so the *next process*
 * is warm too.
 */
util::Result<core::SweepRunner::Params>
parseSweepFlags(ArgParser &ap)
{
    core::SweepRunner::Params sp;
    sp.cache = &core::ResultCache::global();
    util::Result<int> jobs = ap.intFlag("--jobs", 1);
    if (!jobs.ok())
        return jobs.status();
    sp.jobs = *jobs;
    Status cache = applyCacheFlags(ap, *sp.cache);
    if (!cache.ok())
        return cache;
    return sp;
}

/** Append one unit's paper rows to @p t (no trailing separator). */
void
addUnitRows(Table &t, const core::SweepRunner::UnitResult &u,
            bool lead_with_workload)
{
    double peak = 0.0;
    util::Result<platforms::Platform> p =
        platforms::findPlatform(u.platform);
    if (p.ok())
        peak = p->peakGBs;
    for (const core::TableRow &row : u.rows) {
        std::string opt = row.optLabel;
        std::string paper = "-";
        if (row.speedup > 0.0) {
            opt += ": " + fmtSpeedup(row.speedup);
            if (row.paperSpeedup > 0.0)
                paper = fmtSpeedup(row.paperSpeedup);
        }
        std::vector<std::string> cells;
        if (lead_with_workload)
            cells.push_back(u.workload);
        cells.insert(cells.end(),
                     {u.platform, row.source, fmtBwPct(row.bwGBs, peak),
                      fmtDouble(row.latencyNs, 0),
                      fmtDouble(row.nAvg, 2), opt, paper});
        t.addRow(cells);
    }
}

/** The ResultCache counters as a JSON object (shared by sweep/serve). */
std::string
cacheStatsJson(const core::ResultCache::Stats &cs)
{
    std::ostringstream out;
    out << "{\"hits\": " << cs.hits << ", \"misses\": " << cs.misses
        << ", \"disk_loads\": " << cs.diskLoads << ", \"spills\": "
        << cs.spills << ", \"evictions\": " << cs.evictions
        << ", \"spill_evictions\": " << cs.spillEvictions << "}";
    return out.str();
}

int
cmdTable(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    util::Result<core::SweepRunner::Params> sp = parseSweepFlags(ap);
    if (!sp.ok())
        return failWith(sp.status());
    if (helpOut(ap, "table <workload> [flags]",
                "One workload's paper-table rows across every "
                "platform."))
        return 0;
    if (ap.rest().empty())
        return usage();
    util::Result<workloads::WorkloadPtr> w =
        workloads::findWorkload(ap.rest().front());
    if (!w.ok())
        return failWith(w.status());
    ap.consumePositional(1);
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    std::vector<workloads::WorkloadPtr> wls;
    wls.push_back(w.take());
    const std::vector<core::SweepUnit> units =
        core::sweepUnits(platforms::allPlatforms(), wls);
    core::SweepRunner runner(*sp);
    util::Result<std::vector<core::SweepRunner::UnitResult>> res =
        runner.run(units);
    if (!res.ok())
        return failWith(res.status());

    Table t({"Proc", "Source", "BW_obs (GB/s)", "lat_avg (ns)", "n_avg",
             "Opt: measured", "paper"});
    for (const core::SweepRunner::UnitResult &u : *res) {
        addUnitRows(t, u, false);
        t.addSeparator();
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    util::Result<std::string> json = ap.stringFlag("--json");
    if (!json.ok())
        return failWith(json.status());
    util::Result<core::SweepRunner::Params> sp = parseSweepFlags(ap);
    if (!sp.ok())
        return failWith(sp.status());
    if (helpOut(ap, "sweep [flags]",
                "Every workload x platform walk through the parallel "
                "sweep runner."))
        return 0;
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    obs::MetricRegistry registry;
    if (!json->empty())
        sp->registry = &registry;

    const std::vector<workloads::WorkloadPtr> wls =
        workloads::allWorkloadsAndExtensions();
    const std::vector<core::SweepUnit> units =
        core::sweepUnits(platforms::allPlatforms(), wls);
    core::SweepRunner runner(*sp);
    util::Result<std::vector<core::SweepRunner::UnitResult>> res =
        runner.run(units);
    if (!res.ok())
        return failWith(res.status());

    FILE *rep = *json == "-" ? stderr : stdout;
    Table t({"Workload", "Proc", "Source", "BW_obs (GB/s)",
             "lat_avg (ns)", "n_avg", "Opt: measured", "paper"});
    size_t rows = 0;
    std::string last_workload;
    for (const core::SweepRunner::UnitResult &u : *res) {
        if (!last_workload.empty() && u.workload != last_workload)
            t.addSeparator();
        last_workload = u.workload;
        addUnitRows(t, u, true);
        rows += u.rows.size();
    }
    std::fputs(t.render().c_str(), rep);
    // Note: no worker count here — `sweep --jobs 4` must stay
    // byte-identical to `--jobs 1`.
    const core::ResultCache::Stats cs = sp->cache->stats();
    std::fprintf(rep,
                 "sweep: %zu units, %zu rows — cache: %llu hits, %llu "
                 "misses, %llu disk loads, %llu spills\n",
                 res->size(), rows,
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 static_cast<unsigned long long>(cs.diskLoads),
                 static_cast<unsigned long long>(cs.spills));

    if (!json->empty()) {
        std::ostringstream out;
        out.precision(17);
        out << "{\n  \"units\": [";
        bool first_unit = true;
        for (const core::SweepRunner::UnitResult &u : *res) {
            out << (first_unit ? "" : ",") << "\n    {\"workload\": \""
                << u.workload << "\", \"platform\": \"" << u.platform
                << "\", \"rows\": [";
            bool first_row = true;
            for (const core::TableRow &row : u.rows) {
                out << (first_row ? "" : ",")
                    << "\n      {\"source\": \"" << row.source
                    << "\", \"bw_gbs\": " << row.bwGBs
                    << ", \"pct_peak\": " << row.pctPeak
                    << ", \"latency_ns\": " << row.latencyNs
                    << ", \"n_avg\": " << row.nAvg << ", \"opt\": \""
                    << row.optLabel << "\", \"speedup\": " << row.speedup
                    << ", \"paper_speedup\": " << row.paperSpeedup
                    << "}";
                first_row = false;
            }
            out << (first_row ? "" : "\n    ") << "]}";
            first_unit = false;
        }
        out << (first_unit ? "" : "\n  ") << "],\n  \"cache\": "
            << cacheStatsJson(cs) << "\n}";
        const std::string telemetry =
            obs::exportJson(registry, &obs::SpanTracker::global());
        Status s = writeExportChecked(
            *json, obs::jsonEnvelope("sweep", Status::okStatus(), 0,
                                     out.str(), telemetry));
        if (!s.ok())
            return failWith(s);
    }
    return 0;
}

int
cmdReproduce(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    util::Result<core::SweepRunner::Params> sp = parseSweepFlags(ap);
    if (!sp.ok())
        return failWith(sp.status());
    if (helpOut(ap, "reproduce [flags]",
                "Reproduce the paper's Tables IV-IX."))
        return 0;
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    const std::vector<workloads::WorkloadPtr> wls =
        workloads::allWorkloads();
    const std::vector<core::SweepUnit> units =
        core::sweepUnits(platforms::allPlatforms(), wls);
    core::SweepRunner runner(*sp);
    util::Result<std::vector<core::SweepRunner::UnitResult>> res =
        runner.run(units);
    if (!res.ok())
        return failWith(res.status());

    // sweepUnits() is workload-major, so each paper table's units are a
    // contiguous run of the result vector.
    size_t i = 0;
    for (const workloads::WorkloadPtr &w : wls) {
        std::printf("== %s: %s ==\n", w->name().c_str(),
                    w->routine().c_str());
        Table t({"Proc", "Source", "BW_obs (GB/s)", "lat_avg (ns)",
                 "n_avg", "Opt: measured", "paper"});
        for (; i < res->size() && (*res)[i].workload == w->name(); ++i) {
            addUnitRows(t, (*res)[i], false);
            t.addSeparator();
        }
        std::fputs(t.render().c_str(), stdout);
        std::printf("\n");
    }
    return 0;
}

/**
 * `lll search <workload> <platform> [opts ...] --axis name=spec ...`:
 * the bounds-pruned design-space autotuner (DESIGN.md §17).  The cross
 * product of the axes (plus any explicit `--point`s) is enumerated,
 * candidates whose analytic Little's-law ceiling proves them dominated
 * by a strictly cheaper simulated point are pruned before they cost a
 * simulation, and the survivors' Pareto frontier (bandwidth vs
 * MSHR+bank cost) is reported.  Output is byte-identical for any
 * `--jobs N` and across warm `--cache-dir` reruns.
 */
int
cmdSearch(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    search::SearchSpec spec;

    util::Result<std::vector<std::string>> axis_flags = ap.stringList(
        "--axis", "one axis: name=lo:hi:*k | lo:hi:+s | a,b,c");
    if (!axis_flags.ok())
        return failWith(axis_flags.status());
    util::Result<std::vector<std::string>> point_flags = ap.stringList(
        "--point", "one explicit extra point: name=v,name=v,...");
    if (!point_flags.ok())
        return failWith(point_flags.status());
    util::Result<bool> list_axes =
        ap.boolFlag("--list-axes", "list the known axes and exit");
    if (!list_axes.ok())
        return failWith(list_axes.status());
    util::Result<std::string> json = ap.stringFlag(
        "--json", "write the envelope report to FILE (\"-\" = stdout)");
    if (!json.ok())
        return failWith(json.status());
    util::Result<int> cores = ap.intFlag(
        "--cores", 0, "cores driving the load (default: all)");
    if (!cores.ok())
        return failWith(cores.status());
    spec.cores = *cores;
    util::Result<core::SweepRunner::Params> sp = parseSweepFlags(ap);
    if (!sp.ok())
        return failWith(sp.status());
    util::Result<uint64_t> seed =
        ap.uint64Flag("--seed", spec.seed, "simulation tie-break seed");
    if (!seed.ok())
        return failWith(seed.status());
    spec.seed = *seed;
    util::Result<double> warmup = ap.doubleFlag(
        "--warmup-us", 0.0, "warmup window (default: workload's)");
    if (!warmup.ok())
        return failWith(warmup.status());
    spec.warmupUs = *warmup;
    util::Result<double> measure = ap.doubleFlag(
        "--measure-us", 0.0, "measure window (default: workload's)");
    if (!measure.ok())
        return failWith(measure.status());
    spec.measureUs = *measure;
    util::Result<double> bank_weight = ap.doubleFlag(
        "--bank-weight", spec.bankWeight,
        "cost = L1 + L2 MSHRs + W x banks");
    if (!bank_weight.ok())
        return failWith(bank_weight.status());
    spec.bankWeight = *bank_weight;
    util::Result<int> max_candidates =
        ap.intFlag("--max-candidates", int(spec.maxCandidates),
                   "refuse larger spaces up front");
    if (!max_candidates.ok())
        return failWith(max_candidates.status());
    spec.maxCandidates = size_t(*max_candidates);
    util::Result<bool> all = ap.boolFlag(
        "--all", "print every candidate row, not just the frontier");
    if (!all.ok())
        return failWith(all.status());
    util::Result<bool> no_prune = ap.boolFlag(
        "--no-prune", "simulate everything (skip analytic pruning)");
    if (!no_prune.ok())
        return failWith(no_prune.status());
    spec.disablePruning = *no_prune;

    if (helpOut(ap,
                "search <workload> <platform> [opts ...] --axis "
                "name=spec ... [flags]",
                "Design-space autotuner: enumerate axes, prune by "
                "Little's-law ceiling, report the Pareto frontier."))
        return 0;

    if (*list_axes) {
        Table t({"axis", "values"});
        for (const search::AxisDef &def : search::knownAxes())
            t.addRow({def.name, def.help});
        std::fputs(t.render().c_str(), stdout);
        return 0;
    }

    if (ap.rest().size() < 2) {
        return failWith(Status::error(
            ErrorCode::InvalidArgument,
            "search needs a workload and a platform"));
    }
    spec.workloadName = ap.rest()[0];
    spec.platformName = ap.rest()[1];
    ap.consumePositional(2);
    util::Result<OptSet> opts = parseOpts(ap.rest());
    if (!opts.ok())
        return failWith(opts.status());
    spec.opts = opts.take();

    for (const std::string &text : *axis_flags) {
        util::Result<search::Axis> axis = search::parseAxis(text);
        if (!axis.ok())
            return failWith(axis.status());
        spec.axes.push_back(axis.take());
    }
    for (const std::string &text : *point_flags) {
        util::Result<search::Assignment> point =
            search::parsePoint(text);
        if (!point.ok())
            return failWith(point.status());
        spec.points.push_back(point.take());
    }
    if (spec.axes.empty() && spec.points.empty()) {
        return failWith(Status::error(
            ErrorCode::InvalidArgument,
            "search needs at least one --axis (or --point); see "
            "--list-axes"));
    }

    obs::MetricRegistry registry;
    search::Searcher::Params pp;
    pp.jobs = sp->jobs;
    pp.cache = sp->cache;
    pp.registry = &registry;
    search::Searcher searcher(pp);
    util::Result<search::SearchResult> result = searcher.run(spec);
    if (!result.ok())
        return failWith(result.status());

    FILE *rep = *json == "-" ? stderr : stdout;
    std::fputs(search::renderSearchText(*result, *all).c_str(), rep);

    if (!json->empty()) {
        const std::string telemetry =
            obs::exportJson(registry, &obs::SpanTracker::global());
        Status s = writeExportChecked(
            *json,
            obs::jsonEnvelope("search", Status::okStatus(), 0,
                              search::searchDataJson(*result, true),
                              telemetry));
        if (!s.ok())
            return failWith(s);
    }
    return 0;
}

net::Listener *g_serveListener = nullptr;

extern "C" void
serveSignalHandler(int)
{
    // requestShutdown is async-signal-safe (atomic bump + pipe write);
    // the second signal abandons the drain and exits immediately.
    if (g_serveListener != nullptr)
        g_serveListener->requestShutdown();
}

/** p50/p90/p99 of @p h (nanosecond samples) as "a/b/c" in ms. */
std::string
fmtPercentilesMs(const obs::Log2Histogram &h)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f/%.2f/%.2f",
                  h.percentile(0.50) / 1e6, h.percentile(0.90) / 1e6,
                  h.percentile(0.99) / 1e6);
    return buf;
}

/** The same percentiles as a JSON object (ms). */
std::string
percentilesMsJson(const obs::Log2Histogram &h)
{
    std::ostringstream out;
    out << "{\"p50\": " << h.percentile(0.50) / 1e6
        << ", \"p90\": " << h.percentile(0.90) / 1e6
        << ", \"p99\": " << h.percentile(0.99) / 1e6
        << ", \"samples\": " << h.total() << "}";
    return out.str();
}

/**
 * `lll serve --listen`: the socket front-end (DESIGN.md §14).  One
 * poll() event loop multiplexes persistent TCP/unix connections onto
 * `--jobs` workers behind a bounded admission gate: at most
 * `--max-inflight` requests run or queue at once and the excess is
 * answered immediately with a structured `unavailable` response
 * instead of being buffered toward collapse.  SIGTERM/SIGINT drain:
 * admitted work finishes and flushes, then the process exits 0.
 */
int
cmdServeListen(ArgParser &ap, const std::string &listen,
               const std::string &listen_unix, int jobs,
               int stats_interval, bool request_telemetry,
               const std::string &json_path, core::ResultCache &cache)
{
    net::ListenerParams lp;
    if (!listen.empty()) {
        Status hp = net::parseHostPort(listen, &lp.tcpHost, &lp.tcpPort);
        if (!hp.ok())
            return failWith(hp);
    }
    lp.unixPath = listen_unix;
    lp.workers = jobs < 1 ? 1 : jobs;
    lp.statsIntervalResponses = stats_interval;

    util::Result<int> max_inflight =
        ap.intFlag("--max-inflight", int(lp.maxInflight));
    if (!max_inflight.ok())
        return failWith(max_inflight.status());
    lp.maxInflight = size_t(*max_inflight < 0 ? 0 : *max_inflight);
    util::Result<int> max_pipelined =
        ap.intFlag("--max-pipelined", int(lp.maxPipelined));
    if (!max_pipelined.ok())
        return failWith(max_pipelined.status());
    lp.maxPipelined = size_t(*max_pipelined < 1 ? 1 : *max_pipelined);
    util::Result<int> max_conns =
        ap.intFlag("--max-conns", int(lp.maxConns));
    if (!max_conns.ok())
        return failWith(max_conns.status());
    lp.maxConns = size_t(*max_conns < 1 ? 1 : *max_conns);
    util::Result<uint64_t> max_line =
        ap.uint64Flag("--max-line-bytes", lp.maxFrameBytes);
    if (!max_line.ok())
        return failWith(max_line.status());
    lp.maxFrameBytes = size_t(*max_line);
    util::Result<uint64_t> max_write =
        ap.uint64Flag("--max-write-buffer", lp.maxWriteBuffer);
    if (!max_write.ok())
        return failWith(max_write.status());
    lp.maxWriteBuffer = size_t(*max_write);
    util::Result<int> idle_ms =
        ap.intFlag("--idle-timeout-ms", lp.idleTimeoutMs);
    if (!idle_ms.ok())
        return failWith(idle_ms.status());
    lp.idleTimeoutMs = *idle_ms;
    util::Result<int> read_ms =
        ap.intFlag("--read-timeout-ms", lp.readTimeoutMs);
    if (!read_ms.ok())
        return failWith(read_ms.status());
    lp.readTimeoutMs = *read_ms;
    util::Result<int> watchdog_ms =
        ap.intFlag("--watchdog-ms", lp.watchdogMs);
    if (!watchdog_ms.ok())
        return failWith(watchdog_ms.status());
    lp.watchdogMs = *watchdog_ms;
    util::Result<int> drain_ms =
        ap.intFlag("--drain-grace-ms", lp.drainGraceMs);
    if (!drain_ms.ok())
        return failWith(drain_ms.status());
    lp.drainGraceMs = *drain_ms;
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    net::ServeHandlerParams hp;
    hp.cache = &cache;
    hp.requestTelemetry = request_telemetry;
    lp.handler = net::ServeHandler(hp);
    obs::MetricRegistry registry;
    lp.registry = &registry;

    // Warm every platform's X-Mem profile once, up front: worker
    // threads must never race to measure + write the same profile
    // file on their first request.
    for (const platforms::Platform &p : platforms::allPlatforms())
        (void)profileFor(p);

    const std::string tcp_host = lp.tcpHost;
    net::Listener listener(std::move(lp));
    Status started = listener.start();
    if (!started.ok())
        return failWith(started);

    g_serveListener = &listener;
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGTERM, serveSignalHandler);
    std::signal(SIGINT, serveSignalHandler);
    if (!listen.empty()) {
        // Parseable by scripts that bind port 0 (the CI smoke does).
        std::fprintf(stderr, "serve: listening on %s:%d\n",
                     tcp_host.c_str(), listener.tcpPort());
    }
    if (!listen_unix.empty()) {
        std::fprintf(stderr, "serve: listening on unix:%s\n",
                     listen_unix.c_str());
    }
    std::fflush(stderr);

    Status ran = listener.run();
    g_serveListener = nullptr;
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);

    auto count = [&registry](const char *name) {
        return static_cast<unsigned long long>(
            registry.counter(name).value());
    };
    std::fprintf(
        stderr,
        "serve: %llu requests on %llu connections — %llu admitted, "
        "%llu shed, %llu malformed, %llu failed; request p50/p90/p99 "
        "%s ms, queue wait %s ms\n",
        count(util::names::kNetRequestsReceivedTotal),
        count(util::names::kNetConnsAcceptedTotal),
        count(util::names::kNetRequestsAdmittedTotal),
        count(util::names::kNetRequestsShedTotal),
        count(util::names::kNetRequestsMalformedTotal),
        count(util::names::kNetRequestsFailedTotal),
        fmtPercentilesMs(registry.histogram(util::names::kNetLatencyRequestNs))
            .c_str(),
        fmtPercentilesMs(
            registry.histogram(util::names::kNetLatencyQueueWaitNs))
            .c_str());

    const int exit_code = ran.ok() ? 0 : util::exitCodeFor(ran.code());
    if (!json_path.empty()) {
        std::ostringstream data;
        data << "{\n  \"requests\": "
             << count(util::names::kNetRequestsReceivedTotal)
             << ",\n  \"admitted\": "
             << count(util::names::kNetRequestsAdmittedTotal)
             << ",\n  \"shed\": " << count(util::names::kNetRequestsShedTotal)
             << ",\n  \"malformed\": "
             << count(util::names::kNetRequestsMalformedTotal)
             << ",\n  \"failed\": "
             << count(util::names::kNetRequestsFailedTotal)
             << ",\n  \"responses\": " << count(util::names::kNetResponsesTotal)
             << ",\n  \"connections\": {\"accepted\": "
             << count(util::names::kNetConnsAcceptedTotal) << ", \"rejected\": "
             << count(util::names::kNetConnsRejectedTotal) << ", \"closed\": "
             << count(util::names::kNetConnsClosedTotal) << "}"
             << ",\n  \"watchdog_trips\": "
             << count(util::names::kNetWatchdogTripsTotal)
             << ",\n  \"latency_ms\": {\"request\": "
             << percentilesMsJson(
                    registry.histogram(util::names::kNetLatencyRequestNs))
             << ", \"queue_wait\": "
             << percentilesMsJson(
                    registry.histogram(util::names::kNetLatencyQueueWaitNs))
             << ", \"handler\": "
             << percentilesMsJson(
                    registry.histogram(util::names::kNetLatencyHandlerNs))
             << "}"
             << ",\n  \"cache\": " << cacheStatsJson(cache.stats())
             << "\n}";
        const std::string telemetry =
            obs::exportJson(registry, &obs::SpanTracker::global());
        Status s = writeExportChecked(
            json_path, obs::jsonEnvelope("serve", ran, exit_code,
                                         data.str(), telemetry));
        if (!s.ok())
            return failWith(s);
    }
    if (!ran.ok())
        return failWith(ran);
    return 0;
}

int
cmdServe(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    util::Result<std::string> batch = ap.stringFlag("--batch");
    if (!batch.ok())
        return failWith(batch.status());
    util::Result<std::string> json = ap.stringFlag("--json");
    if (!json.ok())
        return failWith(json.status());
    util::Result<int> jobs = ap.intFlag("--jobs", 1);
    if (!jobs.ok())
        return failWith(jobs.status());
    util::Result<int> stats_interval = ap.intFlag("--stats-interval", 0);
    if (!stats_interval.ok())
        return failWith(stats_interval.status());
    util::Result<bool> request_telemetry =
        ap.boolFlag("--request-telemetry");
    if (!request_telemetry.ok())
        return failWith(request_telemetry.status());
    util::Result<std::string> listen = ap.stringFlag("--listen");
    if (!listen.ok())
        return failWith(listen.status());
    util::Result<std::string> listen_unix =
        ap.stringFlag("--listen-unix");
    if (!listen_unix.ok())
        return failWith(listen_unix.status());
    core::ResultCache &cache = core::ResultCache::global();
    Status cache_flags = applyCacheFlags(ap, cache);
    if (!cache_flags.ok())
        return failWith(cache_flags);
    if (ap.helpRequested()) {
        // Register the --listen-mode flags too, so the one help page
        // covers both serve modes (they normally register inside
        // cmdServeListen, which only runs with --listen given).
        (void)ap.intFlag("--max-inflight", 1);
        (void)ap.intFlag("--max-pipelined", 1);
        (void)ap.intFlag("--max-conns", 1);
        (void)ap.uint64Flag("--max-line-bytes", 0);
        (void)ap.uint64Flag("--max-write-buffer", 0);
        (void)ap.intFlag("--idle-timeout-ms", 1);
        (void)ap.intFlag("--read-timeout-ms", 1);
        (void)ap.intFlag("--watchdog-ms", 1);
        (void)ap.intFlag("--drain-grace-ms", 1);
        if (helpOut(ap,
                    "serve [--batch FILE] [flags]  |  serve --listen "
                    "HOST:PORT | --listen-unix PATH [flags]",
                    "Batched JSON-lines run service; --listen serves "
                    "the same protocol over sockets."))
            return 0;
    }
    if (!listen->empty() || !listen_unix->empty()) {
        if (!batch->empty()) {
            return failWith(Status::error(
                ErrorCode::InvalidArgument,
                "--batch and --listen are mutually exclusive"));
        }
        return cmdServeListen(ap, *listen, *listen_unix, *jobs,
                              *stats_interval, *request_telemetry,
                              *json, cache);
    }
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    std::vector<std::string> lines;
    std::string line;
    if (!batch->empty()) {
        std::ifstream in(*batch);
        if (!in) {
            return failWith(Status::error(ErrorCode::IoError,
                                          "cannot read '%s'",
                                          batch->c_str()));
        }
        while (std::getline(in, line))
            lines.push_back(line);
    } else {
        while (std::getline(std::cin, line))
            lines.push_back(line);
    }

    obs::MetricRegistry registry;
    service::RunService::Params sp;
    sp.jobs = *jobs;
    sp.cache = &cache;
    sp.registry = &registry;
    service::RunService svc(sp);
    const std::vector<service::RunResponse> responses =
        svc.serveLines(lines);

    // stdout carries exactly one response line per request — nothing
    // else — so a warm rerun is byte-identical and pipeable; the human
    // summary goes to stderr.  --request-telemetry adds the wall-clock
    // "timing" object per line and therefore opts out of byte
    // identity; --stats-interval N prints a cumulative p50/p90/p99
    // stat line to stderr every N responses.
    size_t failed = 0;
    size_t written = 0;
    obs::Log2Histogram stat_total, stat_queue, stat_sim;
    for (const service::RunResponse &r : responses) {
        if (!r.status.ok())
            ++failed;
        const std::string rendered =
            service::renderRunResponse(r, *request_telemetry);
        std::fwrite(rendered.data(), 1, rendered.size(), stdout);
        std::fputc('\n', stdout);
        ++written;
        if (*stats_interval > 0) {
            stat_total.sample(r.timing.totalNs);
            stat_queue.sample(r.timing.queueWaitNs);
            stat_sim.sample(r.timing.simulateNs);
            if (written % static_cast<size_t>(*stats_interval) == 0) {
                std::fprintf(
                    stderr,
                    "serve stats: %zu responses — total p50/p90/p99 "
                    "%.2f/%.2f/%.2f ms, queue %.2f/%.2f/%.2f ms, "
                    "simulate %.2f/%.2f/%.2f ms\n",
                    written, stat_total.percentile(0.50) / 1e6,
                    stat_total.percentile(0.90) / 1e6,
                    stat_total.percentile(0.99) / 1e6,
                    stat_queue.percentile(0.50) / 1e6,
                    stat_queue.percentile(0.90) / 1e6,
                    stat_queue.percentile(0.99) / 1e6,
                    stat_sim.percentile(0.50) / 1e6,
                    stat_sim.percentile(0.90) / 1e6,
                    stat_sim.percentile(0.99) / 1e6);
            }
        }
    }

    const uint64_t units =
        registry.counter(util::names::kServiceUnitsTotal).value();
    const uint64_t coalesced =
        registry.counter(util::names::kServiceCoalescedRequestsTotal).value();
    const core::ResultCache::Stats cs = cache.stats();
    std::fprintf(stderr,
                 "serve: %zu requests (%zu failed), %llu units "
                 "simulated, %llu coalesced — cache: %llu hits, %llu "
                 "misses, %llu evictions, %llu spill evictions\n",
                 responses.size(), failed,
                 static_cast<unsigned long long>(units),
                 static_cast<unsigned long long>(coalesced),
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 static_cast<unsigned long long>(cs.evictions),
                 static_cast<unsigned long long>(cs.spillEvictions));

    Status verdict = Status::okStatus();
    if (failed) {
        verdict = Status::error(ErrorCode::FailedPrecondition,
                                "%zu of %zu requests failed", failed,
                                responses.size());
    }
    const int exit_code =
        verdict.ok() ? 0 : util::exitCodeFor(verdict.code());

    if (!json->empty()) {
        std::ostringstream data;
        data << "{\n  \"requests\": " << responses.size()
             << ",\n  \"failed\": " << failed << ",\n  \"units\": "
             << units << ",\n  \"coalesced\": " << coalesced
             << ",\n  \"cache\": " << cacheStatsJson(cs) << "\n}";
        const std::string telemetry =
            obs::exportJson(registry, &obs::SpanTracker::global());
        Status s = writeExportChecked(
            *json, obs::jsonEnvelope("serve", verdict, exit_code,
                                     data.str(), telemetry));
        if (!s.ok())
            return failWith(s);
    }
    return exit_code;
}

/**
 * `lll bench-serve`: the load generator for the socket front-end.
 * Drives `--connections` persistent clients, each keeping up to
 * `--pipeline` requests in flight, at `--qps` aggregate (0 floods) for
 * `--duration-s`, then reports achieved throughput and latency
 * percentiles split by response class — admitted (`ok`) vs shed
 * (`unavailable`).  Shedding is the server working as designed, so it
 * never fails the run; request-level failures or connection errors
 * exit 3.
 */
int
cmdBenchServe(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    net::LoadGenParams lg;
    util::Result<std::string> connect = ap.stringFlag("--connect");
    if (!connect.ok())
        return failWith(connect.status());
    util::Result<std::string> connect_unix =
        ap.stringFlag("--connect-unix");
    if (!connect_unix.ok())
        return failWith(connect_unix.status());
    util::Result<int> connections =
        ap.intFlag("--connections", lg.connections);
    if (!connections.ok())
        return failWith(connections.status());
    util::Result<int> pipeline = ap.intFlag("--pipeline", lg.pipeline);
    if (!pipeline.ok())
        return failWith(pipeline.status());
    util::Result<double> qps = ap.doubleFlag("--qps", lg.qps);
    if (!qps.ok())
        return failWith(qps.status());
    util::Result<double> duration =
        ap.doubleFlag("--duration-s", lg.durationS);
    if (!duration.ok())
        return failWith(duration.status());
    util::Result<int> drain_ms =
        ap.intFlag("--drain-timeout-ms", lg.drainTimeoutMs);
    if (!drain_ms.ok())
        return failWith(drain_ms.status());
    util::Result<std::string> requests = ap.stringFlag("--requests");
    if (!requests.ok())
        return failWith(requests.status());
    util::Result<std::string> json = ap.stringFlag("--json");
    if (!json.ok())
        return failWith(json.status());
    if (helpOut(ap,
                "bench-serve --connect HOST:PORT | --connect-unix "
                "PATH [flags]",
                "Load generator for the serve socket front-end."))
        return 0;
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    if (connect->empty() && connect_unix->empty()) {
        return failWith(Status::error(
            ErrorCode::InvalidArgument,
            "bench-serve needs --connect HOST:PORT or --connect-unix "
            "PATH"));
    }
    if (!connect->empty()) {
        Status hp = net::parseHostPort(*connect, &lg.host, &lg.port);
        if (!hp.ok())
            return failWith(hp);
    }
    lg.unixPath = *connect_unix;
    lg.connections = *connections;
    lg.pipeline = *pipeline;
    lg.qps = *qps;
    lg.durationS = *duration;
    lg.drainTimeoutMs = *drain_ms;
    if (!requests->empty()) {
        std::ifstream in(*requests);
        if (!in) {
            return failWith(Status::error(ErrorCode::IoError,
                                          "cannot read '%s'",
                                          requests->c_str()));
        }
        std::string line;
        while (std::getline(in, line)) {
            if (line.find_first_not_of(" \t\r") != std::string::npos)
                lg.requestLines.push_back(line);
        }
        if (lg.requestLines.empty()) {
            return failWith(Status::error(ErrorCode::InvalidArgument,
                                          "'%s' has no request lines",
                                          requests->c_str()));
        }
    } else {
        // A small, fast request so the default run exercises the
        // server rather than one giant simulation.
        lg.requestLines = {
            "{\"schema_version\": 1, \"platform\": \"skl\", "
            "\"workload\": \"isx\", \"cores\": 6, \"warmup_us\": 5, "
            "\"measure_us\": 10}"};
    }

    std::signal(SIGPIPE, SIG_IGN);
    util::Result<net::LoadGenReport> rep = net::runLoadGen(lg);
    if (!rep.ok())
        return failWith(rep.status());

    std::printf("bench-serve: %llu sent, %llu received in %.2f s — "
                "%.1f req/s achieved\n",
                static_cast<unsigned long long>(rep->sent),
                static_cast<unsigned long long>(rep->received),
                rep->wallS, rep->achievedQps);
    std::printf("  ok          %8llu  p50/p90/p99 %s ms\n",
                static_cast<unsigned long long>(rep->ok),
                fmtPercentilesMs(rep->okLatencyNs).c_str());
    std::printf("  unavailable %8llu  p50/p90/p99 %s ms\n",
                static_cast<unsigned long long>(rep->unavailable),
                fmtPercentilesMs(rep->shedLatencyNs).c_str());
    std::printf("  failed      %8llu\n",
                static_cast<unsigned long long>(rep->failed));
    for (const std::string &e : rep->errors)
        std::fprintf(stderr, "bench-serve: %s\n", e.c_str());

    Status verdict = Status::okStatus();
    if (rep->failed > 0 || rep->connectionErrors > 0) {
        verdict = Status::error(
            ErrorCode::IoError,
            "%llu failed responses, %llu connection errors",
            static_cast<unsigned long long>(rep->failed),
            static_cast<unsigned long long>(rep->connectionErrors));
    }
    const int exit_code =
        verdict.ok() ? 0 : util::exitCodeFor(verdict.code());

    if (!json->empty()) {
        std::ostringstream data;
        data << "{\n  \"sent\": " << rep->sent << ",\n  \"received\": "
             << rep->received << ",\n  \"ok\": " << rep->ok
             << ",\n  \"unavailable\": " << rep->unavailable
             << ",\n  \"failed\": " << rep->failed
             << ",\n  \"connection_errors\": " << rep->connectionErrors
             << ",\n  \"wall_s\": " << rep->wallS
             << ",\n  \"achieved_qps\": " << rep->achievedQps
             << ",\n  \"latency_ms\": {\"all\": "
             << percentilesMsJson(rep->latencyNs)
             << ", \"ok\": " << percentilesMsJson(rep->okLatencyNs)
             << ", \"unavailable\": "
             << percentilesMsJson(rep->shedLatencyNs) << "}\n}";
        Status s = writeExportChecked(
            *json, obs::jsonEnvelope("bench-serve", verdict, exit_code,
                                     data.str(), "null"));
        if (!s.ok())
            return failWith(s);
    }
    if (!verdict.ok())
        return failWith(verdict);
    return 0;
}

/**
 * `lll bench`: run the perf microbenchmark kernels (src/perf) for
 * repeated trials and report events/sec (min/median/IQR across trials)
 * plus per-item latency quantiles.  `--json FILE` writes the versioned
 * BENCH report in the standard envelope; `--compare BASELINE` applies
 * the perf ratchet and exits 3 on regression beyond `--tolerance`.
 */
int
cmdBench(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    perf::TrialParams tp;
    util::Result<int> trials = ap.intFlag("--trials", tp.trials);
    if (!trials.ok())
        return failWith(trials.status());
    tp.trials = *trials;
    util::Result<double> warmup = ap.doubleFlag("--warmup-ms",
                                                tp.warmupMs);
    if (!warmup.ok())
        return failWith(warmup.status());
    tp.warmupMs = *warmup;
    util::Result<double> measure = ap.doubleFlag("--measure-ms",
                                                 tp.measureMs);
    if (!measure.ok())
        return failWith(measure.status());
    tp.measureMs = *measure;
    util::Result<std::string> kernel = ap.stringFlag("--kernel");
    if (!kernel.ok())
        return failWith(kernel.status());
    util::Result<std::string> rev = ap.stringFlag("--rev");
    if (!rev.ok())
        return failWith(rev.status());
    util::Result<std::string> json = ap.stringFlag("--json");
    if (!json.ok())
        return failWith(json.status());
    util::Result<std::string> compare = ap.stringFlag("--compare");
    if (!compare.ok())
        return failWith(compare.status());
    util::Result<double> tolerance = ap.doubleFlag("--tolerance", 0.15);
    if (!tolerance.ok())
        return failWith(tolerance.status());
    if (helpOut(ap, "bench [flags]",
                "Microbenchmark harness; --compare applies the perf "
                "ratchet."))
        return 0;
    if (*tolerance >= 1.0) {
        return failWith(Status::error(ErrorCode::InvalidArgument,
                                      "--tolerance wants a fraction "
                                      "below 1 (e.g. 0.15)"));
    }
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    std::vector<const perf::KernelInfo *> selected;
    if (kernel->empty()) {
        for (const perf::KernelInfo &k : perf::kernels())
            selected.push_back(&k);
    } else {
        const perf::KernelInfo *k = perf::findKernel(*kernel);
        if (!k) {
            return failWith(Status::error(ErrorCode::InvalidArgument,
                                          "unknown bench kernel '%s'",
                                          kernel->c_str()));
        }
        selected.push_back(k);
    }

    perf::BenchReport report;
    report.rev = rev->empty() ? "dev" : *rev;
    report.trials = tp.trials;
    report.warmupMs = tp.warmupMs;
    report.measureMs = tp.measureMs;

    // Per-kernel latency histograms land in a registry so the envelope
    // telemetry shares the exporter schema with every other command.
    obs::MetricRegistry registry;
    FILE *rep = *json == "-" ? stderr : stdout;
    std::fprintf(rep, "%-12s %12s %12s %12s %8s %8s %8s\n", "kernel",
                 "median ev/s", "min ev/s", "IQR ev/s", "p50 ns",
                 "p90 ns", "p99 ns");
    for (const perf::KernelInfo *k : selected) {
        obs::ScopedSpan span(util::names::kBenchSpanPrefix + k->name);
        perf::KernelStats stats = perf::runKernel(*k, tp);
        std::fprintf(rep,
                     "%-12s %12.4g %12.4g %12.4g %8.1f %8.1f %8.1f\n",
                     stats.name.c_str(), stats.medianEps, stats.minEps,
                     stats.iqrEps, stats.p50ItemNs, stats.p90ItemNs,
                     stats.p99ItemNs);
        registry.histogram(util::names::kPerfKernelPrefix + k->name + ".item_ns")
            .merge(stats.itemNs);
        report.kernels.push_back(std::move(stats));
    }

    Status verdict = Status::okStatus();
    if (!compare->empty()) {
        util::Result<perf::BenchReport> baseline =
            perf::parseBenchReportFile(*compare);
        if (!baseline.ok())
            return failWith(baseline.status());
        if (!kernel->empty()) {
            // A single-kernel run gates only that kernel: drop the
            // other baseline entries so they do not read as lost
            // coverage (CI uses this for a dedicated tighter ratchet
            // on the event-queue kernel).
            std::vector<perf::KernelStats> &ks = baseline->kernels;
            ks.erase(std::remove_if(ks.begin(), ks.end(),
                                    [&](const perf::KernelStats &s) {
                                        return s.name != *kernel;
                                    }),
                     ks.end());
            if (ks.empty()) {
                return failWith(Status::error(
                    ErrorCode::InvalidArgument,
                    "baseline %s has no entry for kernel '%s'",
                    compare->c_str(), kernel->c_str()));
            }
        }
        perf::BenchComparison cmp = perf::compareBenchReports(
            *baseline, report, *tolerance);
        std::fputs(cmp.render().c_str(), rep);
        if (!cmp.ok()) {
            verdict = Status::error(
                ErrorCode::FailedPrecondition,
                "events/sec regressed beyond %.0f%% of baseline %s",
                *tolerance * 100.0, compare->c_str());
        }
    }
    const int exit_code =
        verdict.ok() ? 0 : util::exitCodeFor(verdict.code());

    if (!json->empty()) {
        const std::string telemetry =
            obs::exportJson(registry, &obs::SpanTracker::global());
        Status s = writeExportChecked(
            *json, obs::jsonEnvelope("bench", verdict, exit_code,
                                     perf::benchReportJson(report),
                                     telemetry));
        if (!s.ok())
            return failWith(s);
    }
    return exit_code;
}

int
cmdRoofline(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    if (helpOut(ap, "roofline <platform>",
                "Roofline roofs plus the MSHR bandwidth ceilings."))
        return 0;
    if (ap.rest().empty())
        return usage();
    util::Result<platforms::Platform> p =
        platforms::findPlatform(ap.rest().front());
    if (!p.ok())
        return failWith(p.status());
    ap.consumePositional(1);
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);
    util::Result<xmem::LatencyProfile> prof = profileFor(*p);
    if (!prof.ok())
        return failWith(prof.status());
    core::Roofline roof(*p, prof.take());
    std::printf("%s: peak %.0f GFlop/s, BW roof %.0f GB/s, L1-MSHR "
                "ceiling %.0f GB/s, L2-MSHR ceiling %.0f GB/s, ridge "
                "%.2f flop/B\n",
                p->name.c_str(), roof.peakGFlops(), roof.peakGBs(),
                roof.mshrCeilingGBs(core::MshrLevel::L1, p->totalCores),
                roof.mshrCeilingGBs(core::MshrLevel::L2, p->totalCores),
                roof.ridgeIntensity());
    return 0;
}

int
cmdSelftest(int argc, char **argv)
{
    faultinject::Options opts;
    ArgParser ap(argc, argv, 2);
    util::Result<int> iters =
        ap.intFlag("--iterations", opts.fuzzIterations);
    if (!iters.ok())
        return failWith(iters.status());
    opts.fuzzIterations = *iters;
    util::Result<uint64_t> seed = ap.uint64Flag("--seed", opts.seed);
    if (!seed.ok())
        return failWith(seed.status());
    opts.seed = *seed;
    util::Result<bool> verbose = ap.boolFlag("--verbose");
    if (!verbose.ok())
        return failWith(verbose.status());
    opts.verbose = *verbose;
    if (helpOut(ap, "selftest [flags]",
                "Run the fault-injection self-test harness."))
        return 0;
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    faultinject::Report report = faultinject::runAll(opts);
    std::fputs(report.render(opts.verbose).c_str(), stdout);
    return report.allPassed() ? 0 : 1;
}

/** One platform x workload x variant the linter examines. */
struct LintJob
{
    platforms::Platform platform;
    workloads::WorkloadPtr workload;
    OptSet opts;
};

void
printDiags(FILE *rep, const util::DiagnosticList &diags)
{
    for (const util::Diagnostic &d : diags.all())
        std::fprintf(rep, "%s\n", d.toString().c_str());
}

int
cmdLint(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    util::Result<std::string> json = ap.stringFlag("--json");
    if (!json.ok())
        return failWith(json.status());

    // `lint --profile FILE` lints a cached latency-profile file instead
    // of workload configs; the two modes do not mix.
    util::Result<std::string> profile = ap.stringFlag("--profile");
    if (!profile.ok())
        return failWith(profile.status());
    if (!profile->empty()) {
        Status extra = ap.finish();
        if (!extra.ok())
            return failWith(extra);
        util::DiagnosticList diags =
            analysis::lintProfileFile(*profile);
        FILE *rep = *json == "-" ? stderr : stdout;
        printDiags(rep, diags);
        std::fprintf(rep,
                     "profile lint: %s — %zu errors, %zu warnings, %zu "
                     "notes\n",
                     profile->c_str(), diags.errorCount(),
                     diags.warningCount(), diags.noteCount());

        Status verdict = Status::okStatus();
        if (diags.errorCount()) {
            verdict = Status::error(ErrorCode::FailedPrecondition,
                                    "%zu profile lint error(s)",
                                    diags.errorCount());
        }
        const int exit_code =
            verdict.ok() ? 0 : util::exitCodeFor(verdict.code());
        if (!json->empty()) {
            std::ostringstream out;
            out << "{\n  \"profiles\": [\n    {\"path\": \"" << *profile
                << "\", \"diagnostics\": " << diags.renderJson(4)
                << "}\n  ],\n  \"summary\": {\"errors\": "
                << diags.errorCount() << ", \"warnings\": "
                << diags.warningCount() << ", \"notes\": "
                << diags.noteCount() << "}\n}";
            Status s = writeExportChecked(
                *json, obs::jsonEnvelope("lint", verdict, exit_code,
                                         out.str(), std::string()));
            if (!s.ok())
                return failWith(s);
        }
        return exit_code;
    }

    util::Result<bool> determinism = ap.boolFlag("--determinism");
    if (!determinism.ok())
        return failWith(determinism.status());

    // `--seeds A,B,...` overrides the alternate tie-break seeds the
    // determinism check runs against.  The baseline (seed 0, insertion
    // order) is always prepended; the listed seeds must be nonzero so
    // every comparison is baseline-vs-permuted.
    util::Result<std::string> seeds_flag = ap.stringFlag("--seeds");
    if (!seeds_flag.ok())
        return failWith(seeds_flag.status());
    analysis::DeterminismOptions det_opts;
    if (!seeds_flag->empty()) {
        if (!*determinism) {
            return failWith(Status::error(
                ErrorCode::InvalidArgument,
                "--seeds requires --determinism"));
        }
        det_opts.seeds.assign(1, 0);
        std::stringstream ss(*seeds_flag);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            char *end = nullptr;
            errno = 0;
            const uint64_t seed = std::strtoull(tok.c_str(), &end, 0);
            if (tok.empty() || end == nullptr || *end != '\0' ||
                errno == ERANGE) {
                return failWith(Status::error(
                    ErrorCode::InvalidArgument,
                    "--seeds: '%s' is not a valid seed", tok.c_str()));
            }
            if (seed == 0) {
                return failWith(Status::error(
                    ErrorCode::InvalidArgument,
                    "--seeds: seed 0 is the implicit baseline; list "
                    "only nonzero tie-break seeds"));
            }
            det_opts.seeds.push_back(seed);
        }
        if (det_opts.seeds.size() < 2) {
            return failWith(Status::error(
                ErrorCode::InvalidArgument,
                "--seeds: expected at least one nonzero seed"));
        }
    }

    if (helpOut(ap,
                "lint [<workload> <platform> [opts ...]] [flags]  |  "
                "lint --profile FILE [--json FILE]",
                "Static spec/config analyzer; --determinism adds the "
                "event-order race check."))
        return 0;

    // Operands: none (scan the whole registry) or workload platform
    // [opts...].  Unlike analyze/trace, an *infeasible* variant is a
    // valid lint request — that is the point of linting — so opts are
    // parsed but never pre-checked against the platform.
    std::vector<LintJob> jobs;
    if (ap.rest().empty()) {
        for (const platforms::Platform &p : platforms::allPlatforms()) {
            for (workloads::WorkloadPtr &w :
                 workloads::allWorkloadsAndExtensions()) {
                jobs.push_back({p, std::move(w), OptSet()});
            }
        }
    } else if (ap.rest().size() == 1) {
        return usage();
    } else {
        util::Result<workloads::WorkloadPtr> w =
            workloads::findWorkload(ap.rest()[0]);
        if (!w.ok())
            return failWith(w.status());
        util::Result<platforms::Platform> p =
            platforms::findPlatform(ap.rest()[1]);
        if (!p.ok())
            return failWith(p.status());
        ap.consumePositional(2);
        util::Result<OptSet> opts = parseOpts(ap.rest());
        if (!opts.ok())
            return failWith(opts.status());
        jobs.push_back({p.take(), w.take(), opts.take()});
    }

    FILE *rep = *json == "-" ? stderr : stdout;
    size_t errors = 0, warnings = 0, notes = 0, det_failures = 0;
    std::ostringstream jplat, jconf, jdet;

    // Platform-level findings once per distinct platform, in job order.
    std::vector<std::string> seen_platforms;
    bool first_jplat = true;
    for (const LintJob &job : jobs) {
        const std::string &name = job.platform.name;
        if (std::find(seen_platforms.begin(), seen_platforms.end(),
                      name) != seen_platforms.end()) {
            continue;
        }
        seen_platforms.push_back(name);
        util::DiagnosticList diags =
            analysis::lintRecipeReachability(job.platform);
        printDiags(rep, diags);
        errors += diags.errorCount();
        warnings += diags.warningCount();
        notes += diags.noteCount();
        jplat << (first_jplat ? "" : ",") << "\n    {\"name\": \""
              << name << "\", \"diagnostics\": "
              << diags.renderJson(4) << "}";
        first_jplat = false;
    }

    bool first_jconf = true;
    for (const LintJob &job : jobs) {
        analysis::ConfigLint cl = analysis::lintConfig(
            job.platform, *job.workload, job.opts);
        printDiags(rep, cl.diagnostics);
        std::fprintf(rep, "%s: %s (%zu errors, %zu warnings, %zu "
                          "notes)\n",
                     cl.subject.c_str(),
                     cl.feasible() ? "ok" : "INFEASIBLE",
                     cl.diagnostics.errorCount(),
                     cl.diagnostics.warningCount(),
                     cl.diagnostics.noteCount());
        errors += cl.diagnostics.errorCount();
        warnings += cl.diagnostics.warningCount();
        notes += cl.diagnostics.noteCount();
        jconf << (first_jconf ? "" : ",") << "\n    {\"subject\": \""
              << cl.subject << "\", \"feasible\": "
              << (cl.feasible() ? "true" : "false") << ", \"bounds\": "
              << (cl.boundsValid ? analysis::boundsJson(cl.bounds, 4)
                                 : std::string("null"))
              << ", \"diagnostics\": " << cl.diagnostics.renderJson(4)
              << "}";
        first_jconf = false;
    }

    bool first_jdet = true;
    if (*determinism) {
        for (const LintJob &job : jobs) {
            // A variant the platform cannot even build was already
            // reported as infeasible above; nothing to run.
            if (!job.platform
                     .trySysParams(job.platform.totalCores,
                                   job.opts.smtWays())
                     .ok()) {
                continue;
            }
            util::Result<analysis::DeterminismReport> r =
                analysis::checkRunDeterminism(job.platform,
                                              *job.workload, job.opts,
                                              det_opts);
            if (!r.ok())
                return failWith(r.status());
            const std::string subject =
                job.platform.name + "/" + job.workload->name() + " [" +
                job.opts.label() + "]";
            printDiags(rep, r->diagnostics);
            std::fprintf(rep,
                         "%s: determinism %s (%zu seeds, %zu metrics)\n",
                         subject.c_str(),
                         r->deterministic ? "ok" : "FAILED",
                         r->seedsRun, r->metricsCompared);
            if (!r->deterministic)
                ++det_failures;
            jdet << (first_jdet ? "" : ",") << "\n    {\"subject\": \""
                 << subject << "\", \"deterministic\": "
                 << (r->deterministic ? "true" : "false")
                 << ", \"seeds\": " << r->seedsRun << ", \"metrics\": "
                 << r->metricsCompared << ", \"diagnostics\": "
                 << r->diagnostics.renderJson(4) << "}";
            first_jdet = false;
        }
    }

    std::fprintf(rep,
                 "lint: %zu configs on %zu platforms — %zu errors, %zu "
                 "warnings, %zu notes",
                 jobs.size(), seen_platforms.size(), errors, warnings,
                 notes);
    if (*determinism)
        std::fprintf(rep, ", %zu determinism failures", det_failures);
    std::fprintf(rep, "\n");

    // The exit decision is made *before* the envelope is written so
    // the export carries the authoritative status/exit pair.
    Status verdict = Status::okStatus();
    if (det_failures) {
        verdict = Status::error(ErrorCode::Internal,
                                "%zu determinism failure(s)",
                                det_failures);
    } else if (errors) {
        verdict = Status::error(ErrorCode::FailedPrecondition,
                                "%zu lint error(s)", errors);
    }
    const int exit_code =
        verdict.ok() ? 0 : util::exitCodeFor(verdict.code());

    if (!json->empty()) {
        std::ostringstream out;
        out << "{\n  \"platforms\": [" << jplat.str()
            << (jplat.str().empty() ? "" : "\n  ") << "],\n"
            << "  \"configs\": [" << jconf.str()
            << (jconf.str().empty() ? "" : "\n  ") << "],\n"
            << "  \"determinism\": [" << jdet.str()
            << (jdet.str().empty() ? "" : "\n  ") << "],\n"
            << "  \"summary\": {\"configs\": " << jobs.size()
            << ", \"errors\": " << errors << ", \"warnings\": "
            << warnings << ", \"notes\": " << notes
            << ", \"determinism_failures\": " << det_failures
            << "}\n}";
        Status s = writeExportChecked(
            *json, obs::jsonEnvelope("lint", verdict, exit_code,
                                     out.str(), std::string()));
        if (!s.ok())
            return failWith(s);
    }
    return exit_code;
}

/**
 * `lll audit [--root DIR] [--json FILE] [--fix-plan]`: run the in-tree
 * source auditor (src/audit, DESIGN.md §15) over the repo's src/ and
 * tools/ trees.  Without --root the repo root is found by walking up
 * from the working directory, so the command works from a build tree.
 * Exit 0 on a clean tree, 3 (bad input: the *source* is the input)
 * when any LLL-SRC-1xx error fires — the same verdict shape as lint.
 */
int
cmdAudit(int argc, char **argv)
{
    ArgParser ap(argc, argv, 2);
    util::Result<std::string> json = ap.stringFlag("--json");
    if (!json.ok())
        return failWith(json.status());
    util::Result<std::string> root = ap.stringFlag("--root");
    if (!root.ok())
        return failWith(root.status());
    util::Result<bool> fix_plan = ap.boolFlag("--fix-plan");
    if (!fix_plan.ok())
        return failWith(fix_plan.status());
    if (helpOut(ap, "audit [flags]",
                "Run the in-tree source auditor (layering, name "
                "registries, API hygiene)."))
        return 0;
    Status extra = ap.finish();
    if (!extra.ok())
        return failWith(extra);

    audit::AuditConfig config;
    if (root->empty()) {
        util::Result<std::string> found = audit::findRepoRoot(".");
        if (!found.ok())
            return failWith(found.status());
        config.root = found.take();
    } else {
        config.root = *root;
    }

    util::Result<audit::AuditReport> report = audit::runAudit(config);
    if (!report.ok())
        return failWith(report.status());

    FILE *rep = *json == "-" ? stderr : stdout;
    std::fputs(report->renderText().c_str(), rep);
    if (*fix_plan)
        std::fputs(report->renderFixPlan().c_str(), rep);

    Status verdict = Status::okStatus();
    if (report->diagnostics.errorCount()) {
        verdict = Status::error(ErrorCode::FailedPrecondition,
                                "%zu audit error(s)",
                                report->diagnostics.errorCount());
    }
    const int exit_code =
        verdict.ok() ? 0 : util::exitCodeFor(verdict.code());
    if (!json->empty()) {
        Status s = writeExportChecked(
            *json,
            obs::jsonEnvelope("audit", verdict, exit_code,
                              report->renderJson(), std::string()));
        if (!s.ok())
            return failWith(s);
    }
    return exit_code;
}

/**
 * Dispatch @p cmd with argv[1] == cmd.  Factored out of main() so
 * cmdProfile can run any subcommand under a root span; -1 means the
 * command is unknown (main turns that into usage()).
 */
int
runCommand(const std::string &cmd, int argc, char **argv)
{
    if (cmd == "platforms")
        return cmdPlatforms(argc, argv);
    if (cmd == "workloads")
        return cmdWorkloads(argc, argv);
    if (cmd == "vendors")
        return cmdVendors(argc, argv);
    if (cmd == "characterize")
        return cmdCharacterize(argc, argv);
    if (cmd == "analyze")
        return cmdAnalyze(argc, argv);
    if (cmd == "trace")
        return cmdTrace(argc, argv);
    if (cmd == "walk")
        return cmdWalk(argc, argv);
    if (cmd == "table")
        return cmdTable(argc, argv);
    if (cmd == "sweep")
        return cmdSweep(argc, argv);
    if (cmd == "reproduce")
        return cmdReproduce(argc, argv);
    if (cmd == "roofline")
        return cmdRoofline(argc, argv);
    if (cmd == "selftest")
        return cmdSelftest(argc, argv);
    if (cmd == "lint")
        return cmdLint(argc, argv);
    if (cmd == "audit")
        return cmdAudit(argc, argv);
    if (cmd == "serve")
        return cmdServe(argc, argv);
    if (cmd == "search")
        return cmdSearch(argc, argv);
    if (cmd == "bench")
        return cmdBench(argc, argv);
    if (cmd == "bench-serve")
        return cmdBenchServe(argc, argv);
    return -1;
}

/**
 * `lll profile [--out FILE] [--top N] <command> [args ...]`: run the
 * wrapped command under a root span, then fold the span tracker into a
 * wall-clock attribution tree printed to stderr (stdout stays the inner
 * command's, so `lll profile sweep --json -` still pipes clean JSON).
 * The process exit code is the inner command's.
 */
int
cmdProfile(int argc, char **argv)
{
    // profile's own flags come before the wrapped command; everything
    // from the first non-flag token on belongs to the inner command and
    // is handed over untouched (so its own `--out`/`--top` still work).
    std::string out;
    size_t top = 10;
    int i = 2;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            // Hand-rolled loop (flags stop at the wrapped command), so
            // register the flags on a scratch parser to reuse the one
            // shared help renderer.
            ArgParser help_ap(std::vector<std::string>{});
            (void)help_ap.stringFlag("--out",
                                     "write the profile envelope to "
                                     "FILE");
            (void)help_ap.intFlag("--top", 10,
                                  "attribution tree rows to print");
            std::fputs(
                help_ap
                    .helpText("profile [--out FILE] [--top N] "
                              "<command> [args ...]",
                              "Self-profile any subcommand under a "
                              "wall-clock span tree.")
                    .c_str(),
                stdout);
            return 0;
        }
        if (arg != "--out" && arg != "--top") {
            if (!arg.empty() && arg[0] == '-') {
                return failWith(Status::error(ErrorCode::InvalidArgument,
                                              "unknown flag '%s'",
                                              arg.c_str()));
            }
            break;
        }
        if (i + 1 >= argc) {
            return failWith(Status::error(ErrorCode::InvalidArgument,
                                          "%s needs an argument",
                                          arg.c_str()));
        }
        const std::string value = argv[++i];
        if (arg == "--out") {
            out = value;
            continue;
        }
        char *end = nullptr;
        const long n = std::strtol(value.c_str(), &end, 10);
        if (*end != '\0' || n < 1) {
            return failWith(Status::error(
                ErrorCode::InvalidArgument,
                "--top wants a positive integer, got '%s'",
                value.c_str()));
        }
        top = static_cast<size_t>(n);
    }
    if (i >= argc)
        return usage();
    const std::string inner = argv[i];
    if (inner == "profile" || inner == "--profile") {
        return failWith(Status::error(ErrorCode::InvalidArgument,
                                      "profile does not nest"));
    }

    // Re-seat argv so the inner command sees itself at argv[1].
    std::vector<char *> inner_argv;
    inner_argv.push_back(argv[0]);
    for (int j = i; j < argc; ++j)
        inner_argv.push_back(argv[j]);

    obs::SpanTracker::global().reset();
    obs::WallTimer wall;
    int inner_exit;
    {
        obs::ScopedSpan root(util::names::kCmdSpanPrefix + inner);
        inner_exit = runCommand(inner,
                                static_cast<int>(inner_argv.size()),
                                inner_argv.data());
    }
    if (inner_exit < 0) {
        return failWith(Status::error(ErrorCode::InvalidArgument,
                                      "unknown command '%s'",
                                      inner.c_str()));
    }
    const double wall_ns = wall.elapsedNs();

    obs::Profiler::Report report = obs::Profiler::build(
        obs::SpanTracker::global().stats(), wall_ns);
    std::fprintf(stderr, "profile: %s (exit %d)\n", inner.c_str(),
                 inner_exit);
    std::fputs(obs::Profiler::renderText(report, top).c_str(), stderr);

    if (!out.empty()) {
        std::ostringstream data;
        data << "{\n  \"profiled_command\": \"" << obs::jsonEscape(inner)
             << "\",\n  \"inner_exit\": " << inner_exit
             << ",\n  \"profile\": "
             << obs::Profiler::renderJson(report, top) << "\n}";
        Status s = writeExportChecked(
            out, obs::jsonEnvelope("profile", Status::okStatus(),
                                   inner_exit, data.str(),
                                   std::string()));
        if (!s.ok())
            return failWith(s);
    }
    return inner_exit;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        usageText(stdout);
        return 0;
    }
    // `lll --profile <cmd>` is an alias for `lll profile <cmd>`.
    if (cmd == "profile" || cmd == "--profile")
        return cmdProfile(argc, argv);
    const int code = runCommand(cmd, argc, argv);
    if (code >= 0)
        return code;
    std::fprintf(stderr, "lll: unknown command '%s'\n", cmd.c_str());
    return usage();
}
