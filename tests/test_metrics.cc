/**
 * @file
 * Unit tests for the observability primitives (src/obs): counters,
 * gauges in all three modes, log2 histograms, time-series rings, the
 * registry, span nesting, and the sampler driven by a real simulated
 * System.
 */

#include <gtest/gtest.h>

#include "obs/metric.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "test_common.hh"

using namespace lll;

TEST(CounterMetric, IncrementsAndResets)
{
    obs::CounterMetric c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c.increment(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeMetric, ValueMode)
{
    obs::GaugeMetric g;
    EXPECT_DOUBLE_EQ(g.read(), 0.0);
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.read(), 3.5);
}

TEST(GaugeMetric, CallbackModeAppliesScale)
{
    double level = 10.0;
    obs::GaugeMetric g([&] { return level; }, obs::GaugeMode::Callback,
                       2.0);
    EXPECT_DOUBLE_EQ(g.read(), 20.0);
    level = 7.0;
    EXPECT_DOUBLE_EQ(g.read(), 14.0);
}

TEST(GaugeMetric, RateModeDerivesPerNs)
{
    double bytes = 0.0;
    obs::GaugeMetric g([&] { return bytes; }, obs::GaugeMode::Rate);

    g.advance(0);                    // establishes the baseline
    EXPECT_DOUBLE_EQ(g.read(), 0.0);

    bytes = 1000.0;
    g.advance(10 * ticksPerNs);      // 1000 bytes over 10 ns
    EXPECT_DOUBLE_EQ(g.read(), 100.0);

    bytes = 1000.0;                  // flat interval
    g.advance(20 * ticksPerNs);
    EXPECT_DOUBLE_EQ(g.read(), 0.0);
}

TEST(GaugeMetric, RateModeClampsDropToZero)
{
    double level = 500.0;
    obs::GaugeMetric g([&] { return level; }, obs::GaugeMode::Rate);
    g.advance(0);
    level = 100.0;                   // stats reset between snapshots
    g.advance(10 * ticksPerNs);
    EXPECT_DOUBLE_EQ(g.read(), 0.0);
    level = 200.0;                   // recovers from the new baseline
    g.advance(20 * ticksPerNs);
    EXPECT_DOUBLE_EQ(g.read(), 10.0);
}

TEST(Log2Histogram, BucketsByPowerOfTwo)
{
    obs::Log2Histogram h;
    h.sample(0.5);    // bucket 0: < 1
    h.sample(1.0);    // bucket 1: [1, 2)
    h.sample(3.0);    // bucket 2: [2, 4)
    h.sample(3.9);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_DOUBLE_EQ(obs::Log2Histogram::bucketUpper(2), 4.0);
    EXPECT_NEAR(h.mean(), (0.5 + 1.0 + 3.0 + 3.9) / 4.0, 1e-9);
    EXPECT_LE(h.percentile(0.5), 4.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
}

TEST(Log2Histogram, PercentileEmptyAndSingleSample)
{
    obs::Log2Histogram h;
    // Empty: every percentile is a defined 0.0, never a 0-division.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);

    // A single sample answers every percentile with the exact value,
    // not a bucket boundary (42 sits in [32, 64)).
    h.sample(42.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
}

TEST(Log2Histogram, PercentileInterpolatesWithinBucket)
{
    // 100 samples spread inside one bucket [64, 128): interpolation
    // must move monotonically through the bucket instead of answering
    // the same boundary for every rank.
    obs::Log2Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(64.0 + 0.63 * i);
    const double p10 = h.percentile(0.10);
    const double p50 = h.percentile(0.50);
    const double p90 = h.percentile(0.90);
    EXPECT_LT(p10, p50);
    EXPECT_LT(p50, p90);
    // Within-bucket error bound: the answer stays inside the bucket,
    // so it is within one bucket width of the true value.
    EXPECT_GE(p10, h.min());
    EXPECT_LE(p90, h.max());
    EXPECT_NEAR(p50, 64.0 + 0.63 * 50, 64.0);
}

TEST(Log2Histogram, PercentileOverflowTopBucketClampsToMax)
{
    // Values past 2^62 land in the overflow top bucket, whose nominal
    // upper bound is 2^63; the observed-max clamp keeps the answer a
    // value that actually occurred.
    obs::Log2Histogram h;
    const double huge = 8.0e18;    // > 2^62
    h.sample(huge);
    h.sample(huge * 1.1);
    h.sample(1.0);
    EXPECT_EQ(h.bucket(obs::Log2Histogram::kBuckets - 1), 2u);
    EXPECT_LE(h.percentile(0.99), h.max());
    EXPECT_DOUBLE_EQ(h.percentile(1.0), huge * 1.1);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
}

TEST(Log2Histogram, PercentileZeroAndOneAreExactMinMax)
{
    obs::Log2Histogram h;
    h.sample(3.0);
    h.sample(5.0);
    h.sample(900.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 900.0);
    // Out-of-range fractions behave like the endpoints.
    EXPECT_DOUBLE_EQ(h.percentile(-0.5), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(2.0), 900.0);
}

TEST(Log2Histogram, MergeCombinesMinMaxAndRanks)
{
    obs::Log2Histogram a, b;
    a.sample(2.0);
    a.sample(4.0);
    b.sample(1000.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 1000.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 1000.0);

    // Merging an empty histogram is a no-op on the observed range.
    obs::Log2Histogram empty;
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 1000.0);
}

TEST(TimeSeries, RingWrapKeepsNewestInOrder)
{
    obs::TimeSeries ts(4);
    for (int i = 0; i < 10; ++i)
        ts.push(static_cast<Tick>(i) * ticksPerNs, i * 1.0);
    EXPECT_EQ(ts.size(), 4u);
    EXPECT_EQ(ts.total(), 10u);
    std::vector<obs::TimeSeries::Sample> s = ts.samples();
    ASSERT_EQ(s.size(), 4u);
    // Oldest-first and strictly the last four pushed.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(s[i].when, static_cast<Tick>(6 + i) * ticksPerNs);
        EXPECT_DOUBLE_EQ(s[i].value, 6.0 + i);
    }
    ts.clear();
    EXPECT_EQ(ts.size(), 0u);
    EXPECT_EQ(ts.total(), 0u);
}

TEST(MetricRegistry, CounterAndGaugeByName)
{
    obs::MetricRegistry reg;
    ++reg.counter("a.events");
    ++reg.counter("a.events");
    EXPECT_EQ(reg.counter("a.events").value(), 2u);

    reg.setGauge("a.level", 5.0);
    EXPECT_DOUBLE_EQ(reg.gauges().at("a.level").read(), 5.0);
    reg.setGauge("a.level", 6.0);
    EXPECT_DOUBLE_EQ(reg.gauges().at("a.level").read(), 6.0);

    reg.annotate("a.kind", "demo");
    EXPECT_EQ(reg.annotations().at("a.kind"), "demo");
}

TEST(MetricRegistry, SampleAllSnapshotsSampledGaugesOnly)
{
    obs::MetricRegistry reg;
    double level = 1.0;
    obs::GaugeOptions sampled;
    sampled.sampled = true;
    reg.registerGauge("s.live", [&] { return level; },
                      obs::GaugeMode::Callback, sampled);
    reg.registerGauge("s.quiet", [&] { return level; },
                      obs::GaugeMode::Callback);

    reg.sampleAll(1 * ticksPerNs);
    level = 2.0;
    reg.sampleAll(2 * ticksPerNs);

    ASSERT_NE(reg.series("s.live"), nullptr);
    EXPECT_EQ(reg.series("s.live")->size(), 2u);
    EXPECT_EQ(reg.series("s.quiet"), nullptr);
    EXPECT_EQ(reg.snapshots(), 2u);

    std::vector<obs::TimeSeries::Sample> s =
        reg.series("s.live")->samples();
    EXPECT_DOUBLE_EQ(s[0].value, 1.0);
    EXPECT_DOUBLE_EQ(s[1].value, 2.0);
}

TEST(MetricRegistry, FreezeGaugeKeepsLastValue)
{
    obs::MetricRegistry reg;
    {
        double local = 9.0;
        obs::GaugeOptions opt;
        opt.sampled = true;
        reg.registerGauge("f.g", [&] { return local; },
                          obs::GaugeMode::Callback, opt);
        EXPECT_DOUBLE_EQ(reg.gauges().at("f.g").read(), 9.0);
        reg.freezeGauge("f.g");
    }
    // The reader's captured reference is gone; the value must survive.
    EXPECT_DOUBLE_EQ(reg.gauges().at("f.g").read(), 9.0);
    EXPECT_TRUE(reg.gauges().at("f.g").sampled());
    // Sampling a frozen gauge is safe.
    reg.sampleAll(1 * ticksPerNs);
    EXPECT_DOUBLE_EQ(reg.series("f.g")->samples().back().value, 9.0);
}

TEST(MetricRegistry, ClearDropsEverything)
{
    obs::MetricRegistry reg;
    ++reg.counter("x");
    reg.setGauge("y", 1.0);
    reg.histogram("z").sample(2.0);
    reg.clear();
    EXPECT_TRUE(reg.counters().empty());
    EXPECT_TRUE(reg.gauges().empty());
    EXPECT_TRUE(reg.histograms().empty());
    EXPECT_TRUE(reg.allSeries().empty());
}

TEST(SpanTracker, NestingAggregatesByPath)
{
    obs::SpanTracker t;
    for (int i = 0; i < 3; ++i) {
        obs::ScopedSpan outer("outer", t);
        obs::ScopedSpan inner("inner", t);
    }
    {
        obs::ScopedSpan lone("outer", t);
    }
    EXPECT_EQ(t.depth(), 0u);

    std::vector<obs::SpanTracker::Stat> stats = t.stats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].path, "outer");
    EXPECT_EQ(stats[0].depth, 1u);
    EXPECT_EQ(stats[0].count, 4u);
    EXPECT_EQ(stats[1].path, "outer/inner");
    EXPECT_EQ(stats[1].depth, 2u);
    EXPECT_EQ(stats[1].count, 3u);
    EXPECT_GE(stats[0].wallNs, stats[1].wallNs);

    t.reset();
    EXPECT_TRUE(t.stats().empty());
}

TEST(SpanTracker, MacroUsesGlobalTracker)
{
    obs::SpanTracker::global().reset();
    {
        LLL_SPAN("macro.test");
    }
    std::vector<obs::SpanTracker::Stat> stats =
        obs::SpanTracker::global().stats();
    bool found = false;
    for (const obs::SpanTracker::Stat &s : stats)
        found = found || s.path == "macro.test";
    EXPECT_TRUE(found);
    obs::SpanTracker::global().reset();
}

TEST(Sampler, SystemDrivesPeriodicSnapshots)
{
    platforms::Platform p = test::tinyPlatform();
    sim::SystemParams sp = p.sysParams(2, 1);
    sim::KernelSpec spec = test::randomKernel(8, 4.0);

    obs::MetricRegistry reg;
    {
        sim::System sys(sp, spec);
        obs::Sampler::Params params;
        params.cadence = 100 * ticksPerNs;
        sys.attachObservability(reg, params);
        sys.run(2.0, 10.0);   // 12 us of simulated time, 100 ns cadence
    }

    // The acceptance bar: at least 10 MSHR occupancy samples.
    const obs::TimeSeries *occ = reg.series("sim.mshr.l1.0.occupancy");
    ASSERT_NE(occ, nullptr);
    EXPECT_GE(occ->size(), 10u);

    // Under random access with a window past the L1 MSHR count, the
    // occupancy snapshots should actually see queued misses.
    double peak = 0.0;
    for (const obs::TimeSeries::Sample &s : occ->samples())
        peak = std::max(peak, s.value);
    EXPECT_GT(peak, 0.0);

    // The bandwidth rate gauge must have produced positive samples.
    const obs::TimeSeries *bw = reg.series("sim.memctrl.bw_gbps");
    ASSERT_NE(bw, nullptr);
    double bw_peak = 0.0;
    for (const obs::TimeSeries::Sample &s : bw->samples())
        bw_peak = std::max(bw_peak, s.value);
    EXPECT_GT(bw_peak, 0.0);
    EXPECT_LT(bw_peak, 1000.0);

    // Core busy/stall fractions are per-interval fractions in [0, 1].
    const obs::TimeSeries *busy = reg.series("sim.core.0.busy_frac");
    ASSERT_NE(busy, nullptr);
    for (const obs::TimeSeries::Sample &s : busy->samples()) {
        EXPECT_GE(s.value, 0.0);
        EXPECT_LE(s.value, 1.0 + 1e-9);
    }

    // The System is destroyed: gauges are frozen but still readable.
    EXPECT_NO_THROW({
        for (const auto &[name, g] : reg.gauges())
            (void)g.read();
    });
}

TEST(Sampler, DisarmStopsSampling)
{
    obs::MetricRegistry reg;
    obs::Sampler::Params params;
    params.cadence = 10 * ticksPerNs;
    obs::Sampler s(reg, params);
    s.sample(10 * ticksPerNs);
    EXPECT_EQ(s.taken(), 1u);
    s.disarm();
    s.sample(20 * ticksPerNs);
    EXPECT_EQ(s.taken(), 1u);
}

TEST(Sampler, RecordsItsOwnOverhead)
{
    // Every snapshot charges its wall-clock cost to the
    // obs.self.overhead_ns counter, so `--json` telemetry always shows
    // what observability itself cost.
    obs::MetricRegistry reg;
    obs::Sampler::Params params;
    params.cadence = 10 * ticksPerNs;
    obs::Sampler s(reg, params);
    s.sample(10 * ticksPerNs);
    s.sample(20 * ticksPerNs);
    ASSERT_EQ(s.taken(), 2u);
    EXPECT_EQ(reg.counters().count(obs::kSelfOverheadCounter), 1u);
    // Wall-clock valued: present and non-decreasing, no exact value.
    const uint64_t after_two =
        reg.counter(obs::kSelfOverheadCounter).value();
    s.sample(30 * ticksPerNs);
    EXPECT_GE(reg.counter(obs::kSelfOverheadCounter).value(), after_two);
}

TEST(Sampler, AttachTwiceIsRejected)
{
    platforms::Platform p = test::tinyPlatform();
    sim::SystemParams sp = p.sysParams(1, 1);
    // The registry must be declared before (and so outlive) the System:
    // the System's destructor freezes its gauges into it.
    obs::MetricRegistry reg;
    sim::System sys(sp, test::randomKernel(4, 4.0));
    sys.attachObservability(reg);
    EXPECT_DEATH(sys.attachObservability(reg), "already attached");
}
