/**
 * @file
 * Tests for the recipe engine: the three branches of paper Figure 1 and
 * the platform-specific SMT handling.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/recipe.hh"
#include "test_common.hh"

namespace lll::core
{
namespace
{

using workloads::Opt;
using workloads::OptSet;

Analysis
makeAnalysis(const platforms::Platform &p, double n_avg, bool random,
             bool bw_wall)
{
    Analysis a;
    a.platform = p.name;
    a.coresUsed = p.totalCores;
    a.accessClass = random ? AccessClass::Random : AccessClass::Streaming;
    a.limitingLevel = random ? MshrLevel::L1 : MshrLevel::L2;
    a.limitingMshrs = random ? p.l1Mshrs : p.l2Mshrs;
    a.nAvg = n_avg;
    a.headroom = a.limitingMshrs - n_avg;
    a.nearMshrLimit = n_avg >= 0.88 * a.limitingMshrs;
    a.maxAchievableGBs = 0.9 * p.peakGBs;
    a.bwGBs = bw_wall ? 0.95 * a.maxAchievableGBs : 0.4 * p.peakGBs;
    a.pctPeak = a.bwGBs / p.peakGBs;
    a.nearBandwidthLimit = bw_wall;
    a.latencyNs = 150.0;
    return a;
}

bool
recommends(const RecipeDecision &d, Opt opt)
{
    auto recs = d.recommendedOpts();
    return std::find(recs.begin(), recs.end(), opt) != recs.end();
}

bool
mentions(const RecipeDecision &d, Opt opt)
{
    for (const Recommendation &r : d.recommendations) {
        if (r.opt == opt)
            return true;
    }
    return false;
}

class RecipeTest : public ::testing::Test
{
  protected:
    platforms::Platform skl_ = platforms::skl();
    platforms::Platform knl_ = platforms::knl();
    platforms::Platform a64fx_ = platforms::a64fx();
};

TEST_F(RecipeTest, HeadroomRecommendsVectorizationAndSmt)
{
    Recipe recipe(skl_);
    RecipeDecision d =
        recipe.advise(makeAnalysis(skl_, 2.0, false, false), OptSet{});
    EXPECT_TRUE(recommends(d, Opt::Vectorize));
    EXPECT_TRUE(recommends(d, Opt::Smt2));
    EXPECT_FALSE(d.stop);
    EXPECT_NE(d.summary.find("headroom"), std::string::npos);
}

TEST_F(RecipeTest, HeadroomDoesNotRepeatAppliedOpts)
{
    Recipe recipe(skl_);
    OptSet applied = OptSet{}.with(Opt::Vectorize);
    RecipeDecision d =
        recipe.advise(makeAnalysis(skl_, 3.0, false, false), applied);
    EXPECT_FALSE(recommends(d, Opt::Vectorize));
    EXPECT_TRUE(recommends(d, Opt::Smt2));
}

TEST_F(RecipeTest, SwPrefetchOnlyForRandomInHeadroom)
{
    Recipe recipe(knl_);
    RecipeDecision rnd =
        recipe.advise(makeAnalysis(knl_, 3.0, true, false), OptSet{});
    EXPECT_TRUE(recommends(rnd, Opt::SwPrefetchL2));
    RecipeDecision str =
        recipe.advise(makeAnalysis(knl_, 3.0, false, false), OptSet{});
    EXPECT_FALSE(recommends(str, Opt::SwPrefetchL2));
}

TEST_F(RecipeTest, UnrollJamOnlyAtVeryLowMlp)
{
    Recipe recipe(skl_);
    RecipeDecision low =
        recipe.advise(makeAnalysis(skl_, 0.3, false, false), OptSet{});
    EXPECT_TRUE(recommends(low, Opt::UnrollJam));
    RecipeDecision mid =
        recipe.advise(makeAnalysis(skl_, 5.0, false, false), OptSet{});
    EXPECT_FALSE(recommends(mid, Opt::UnrollJam));
}

TEST_F(RecipeTest, MshrFullForbidsMlpRaisers)
{
    Recipe recipe(skl_);
    RecipeDecision d =
        recipe.advise(makeAnalysis(skl_, 10.1, true, false), OptSet{});
    EXPECT_FALSE(recommends(d, Opt::Vectorize));
    EXPECT_FALSE(recommends(d, Opt::Smt2));
    EXPECT_NE(d.summary.find("full"), std::string::npos);
}

TEST_F(RecipeTest, IsxMoveL1FullRecommendsPrefetchToL2)
{
    // Random access, L1 pinned, L2 larger and bandwidth headroom: the
    // paper's signature ISx recommendation.
    Recipe recipe(knl_);
    RecipeDecision d =
        recipe.advise(makeAnalysis(knl_, 11.8, true, false), OptSet{});
    EXPECT_TRUE(recommends(d, Opt::SwPrefetchL2));
    // And tiling as the occupancy-reducing alternative.
    EXPECT_TRUE(recommends(d, Opt::Tiling));
}

TEST_F(RecipeTest, L2FullStreamingDoesNotRecommendPrefetch)
{
    Recipe recipe(skl_);
    RecipeDecision d =
        recipe.advise(makeAnalysis(skl_, 15.0, false, false), OptSet{});
    EXPECT_FALSE(recommends(d, Opt::SwPrefetchL2));
    EXPECT_TRUE(recommends(d, Opt::Tiling));
}

TEST_F(RecipeTest, BandwidthWallRecommendsTrafficReducersOnly)
{
    Recipe recipe(skl_);
    RecipeDecision d =
        recipe.advise(makeAnalysis(skl_, 12.0, false, true), OptSet{});
    EXPECT_TRUE(recommends(d, Opt::Tiling));
    EXPECT_TRUE(recommends(d, Opt::Fusion));
    EXPECT_FALSE(recommends(d, Opt::Vectorize));
    EXPECT_FALSE(recommends(d, Opt::Smt2));
    EXPECT_FALSE(recommends(d, Opt::SwPrefetchL2));
    EXPECT_NE(d.summary.find("bandwidth wall"), std::string::npos);
}

TEST_F(RecipeTest, BandwidthWallStopsWhenReducersExhausted)
{
    Recipe recipe(skl_);
    OptSet applied = OptSet{}.with(Opt::Tiling).with(Opt::Fusion);
    RecipeDecision d =
        recipe.advise(makeAnalysis(skl_, 12.0, false, true), applied);
    EXPECT_TRUE(d.stop);
    EXPECT_TRUE(d.recommendedOpts().empty());
}

TEST_F(RecipeTest, NoSmtOnA64fx)
{
    Recipe recipe(a64fx_);
    RecipeDecision d =
        recipe.advise(makeAnalysis(a64fx_, 2.0, false, false), OptSet{});
    EXPECT_FALSE(recommends(d, Opt::Smt2));
    EXPECT_TRUE(mentions(d, Opt::Smt2));   // mentioned with rationale
}

TEST_F(RecipeTest, Smt4AfterSmt2OnKnl)
{
    Recipe recipe(knl_);
    OptSet applied = OptSet{}.with(Opt::Vectorize).with(Opt::Smt2);
    RecipeDecision d =
        recipe.advise(makeAnalysis(knl_, 5.0, false, false), applied);
    EXPECT_TRUE(recommends(d, Opt::Smt4));
    EXPECT_FALSE(recommends(d, Opt::Smt2));
}

TEST_F(RecipeTest, SmtExhaustedOnSklAfter2Way)
{
    Recipe recipe(skl_);
    OptSet applied = OptSet{}.with(Opt::Smt2);
    RecipeDecision d =
        recipe.advise(makeAnalysis(skl_, 5.0, false, false), applied);
    EXPECT_FALSE(recommends(d, Opt::Smt4));
}

TEST_F(RecipeTest, EveryRecommendationHasRationale)
{
    Recipe recipe(knl_);
    for (bool random : {true, false}) {
        for (bool wall : {true, false}) {
            RecipeDecision d = recipe.advise(
                makeAnalysis(knl_, wall ? 12.0 : 4.0, random, wall),
                OptSet{});
            EXPECT_FALSE(d.summary.empty());
            for (const Recommendation &r : d.recommendations)
                EXPECT_FALSE(r.rationale.empty());
        }
    }
}

// The fusion/distribution dual near the MSHR limit (paper Fig. 1): with
// many concurrent streams contending for the queue, splitting the loop
// is the occupancy reducer; with few, fusing for reuse is.  Before this
// branch existed, Distribution was advertised by `lll lint` as a recipe
// output yet unreachable from advise() — LLL-RCP-002.

TEST_F(RecipeTest, MshrFullStreamHeavyRecommendsDistributionOverFusion)
{
    Recipe recipe(skl_);
    Analysis a = makeAnalysis(skl_, 15.0, false, false);
    a.activeStreams = Recipe::kStreamHeavy;
    a.activeStreamsKnown = true;
    RecipeDecision d = recipe.advise(a, OptSet{});
    EXPECT_TRUE(recommends(d, Opt::Distribution));
    EXPECT_FALSE(recommends(d, Opt::Fusion));
    EXPECT_TRUE(mentions(d, Opt::Fusion)); // skipped with rationale
}

TEST_F(RecipeTest, MshrFullFewStreamsRecommendsFusionOverDistribution)
{
    Recipe recipe(skl_);
    Analysis a = makeAnalysis(skl_, 15.0, false, false);
    a.activeStreams = Recipe::kStreamHeavy - 1;
    a.activeStreamsKnown = true;
    RecipeDecision d = recipe.advise(a, OptSet{});
    EXPECT_TRUE(recommends(d, Opt::Fusion));
    EXPECT_FALSE(recommends(d, Opt::Distribution));
    EXPECT_TRUE(mentions(d, Opt::Distribution));
}

TEST_F(RecipeTest, MshrFullUnknownStreamCountKeepsFusionDefault)
{
    // An Analysis built without stream attribution (activeStreamsKnown
    // false) must behave exactly as before the dual existed.
    Recipe recipe(skl_);
    RecipeDecision d =
        recipe.advise(makeAnalysis(skl_, 15.0, false, false), OptSet{});
    EXPECT_TRUE(recommends(d, Opt::Fusion));
    EXPECT_FALSE(recommends(d, Opt::Distribution));
}

TEST_F(RecipeTest, MshrFullDistributionNotReRecommendedOnceApplied)
{
    Recipe recipe(skl_);
    Analysis a = makeAnalysis(skl_, 15.0, false, false);
    a.activeStreams = Recipe::kStreamHeavy + 2;
    a.activeStreamsKnown = true;
    RecipeDecision d =
        recipe.advise(a, OptSet{}.with(Opt::Distribution));
    EXPECT_FALSE(recommends(d, Opt::Distribution));
    EXPECT_TRUE(mentions(d, Opt::Distribution));
}

TEST_F(RecipeTest, DistributionNeverTopRecommendationAtLowMlp)
{
    Recipe recipe(skl_);
    RecipeDecision d =
        recipe.advise(makeAnalysis(skl_, 1.0, false, false), OptSet{});
    EXPECT_FALSE(recommends(d, Opt::Distribution));
}

} // namespace
} // namespace lll::core
