/**
 * @file
 * Tests for the stateless op-sequence generator: weighted interleave,
 * per-kind address behaviour, reuse, region disjointness and the
 * random-access property software prefetching depends on.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/op_stream.hh"

namespace lll::sim
{
namespace
{

KernelSpec
twoStreamSpec()
{
    KernelSpec k;
    StreamDesc a;
    a.kind = StreamDesc::Kind::Sequential;
    a.footprintLines = 1024;
    a.weight = 3.0;
    k.streams.push_back(a);
    StreamDesc b;
    b.kind = StreamDesc::Kind::Random;
    b.footprintLines = 4096;
    b.weight = 1.0;
    k.streams.push_back(b);
    return k;
}

TEST(OpStreamTest, PatternRespectsWeights)
{
    OpStream ops(twoStreamSpec(), 1, 1);
    unsigned len = ops.patternLength();
    EXPECT_EQ(ops.countInPattern(0) + ops.countInPattern(1), len);
    double share0 = static_cast<double>(ops.countInPattern(0)) / len;
    EXPECT_NEAR(share0, 0.75, 0.02);
}

TEST(OpStreamTest, DeterministicAndStateless)
{
    OpStream a(twoStreamSpec(), 5, 2);
    OpStream b(twoStreamSpec(), 5, 2);
    // Same op at same index regardless of query order.
    EXPECT_EQ(a.at(1000).lineAddr, b.at(1000).lineAddr);
    for (uint64_t n = 0; n < 64; ++n)
        EXPECT_EQ(a.at(n).lineAddr, b.at(n).lineAddr);
    EXPECT_EQ(a.at(1000).lineAddr, b.at(1000).lineAddr);
}

TEST(OpStreamTest, SequentialAdvancesByOne)
{
    KernelSpec k;
    StreamDesc s;
    s.kind = StreamDesc::Kind::Sequential;
    s.footprintLines = 1 << 20;
    k.streams.push_back(s);
    OpStream ops(k, 1, 1);
    uint64_t first = ops.at(0).lineAddr;
    for (uint64_t n = 1; n < 100; ++n)
        EXPECT_EQ(ops.at(n).lineAddr, first + n);
}

TEST(OpStreamTest, SequentialWrapsAtFootprint)
{
    KernelSpec k;
    StreamDesc s;
    s.kind = StreamDesc::Kind::Sequential;
    s.footprintLines = 16;
    k.streams.push_back(s);
    OpStream ops(k, 1, 1);
    EXPECT_EQ(ops.at(0).lineAddr, ops.at(16).lineAddr);
    EXPECT_EQ(ops.at(3).lineAddr, ops.at(19).lineAddr);
}

TEST(OpStreamTest, StridedUsesStride)
{
    KernelSpec k;
    StreamDesc s;
    s.kind = StreamDesc::Kind::Strided;
    s.strideLines = 7;
    s.footprintLines = 1 << 20;
    k.streams.push_back(s);
    OpStream ops(k, 1, 1);
    uint64_t first = ops.at(0).lineAddr;
    EXPECT_EQ(ops.at(1).lineAddr, first + 7);
    EXPECT_EQ(ops.at(10).lineAddr, first + 70);
}

TEST(OpStreamTest, RandomStaysInFootprintAndSpreads)
{
    KernelSpec k;
    StreamDesc s;
    s.kind = StreamDesc::Kind::Random;
    s.footprintLines = 1 << 16;
    k.streams.push_back(s);
    OpStream ops(k, 1, 1);
    uint64_t base = ~0ULL, top = 0;
    std::set<uint64_t> distinct;
    for (uint64_t n = 0; n < 2000; ++n) {
        uint64_t a = ops.at(n).lineAddr;
        base = std::min(base, a);
        top = std::max(top, a);
        distinct.insert(a);
    }
    EXPECT_LT(top - base, 1u << 16);
    EXPECT_GT(distinct.size(), 1900u);   // collisions rare
}

TEST(OpStreamTest, StoreStreamsProduceStores)
{
    KernelSpec k;
    StreamDesc s;
    s.kind = StreamDesc::Kind::Sequential;
    s.footprintLines = 64;
    s.store = true;
    k.streams.push_back(s);
    OpStream ops(k, 1, 1);
    for (uint64_t n = 0; n < 16; ++n)
        EXPECT_EQ(ops.at(n).type, ReqType::DemandStore);
}

TEST(OpStreamTest, SwPrefetchableFlagPropagates)
{
    KernelSpec k = twoStreamSpec();
    k.streams[1].swPrefetchable = true;
    OpStream ops(k, 1, 1);
    bool saw_flagged = false, saw_unflagged = false;
    for (uint64_t n = 0; n < 64; ++n) {
        Op op = ops.at(n);
        (op.streamIdx == 1 ? saw_flagged : saw_unflagged) = true;
        EXPECT_EQ(op.swPrefetchable, op.streamIdx == 1);
    }
    EXPECT_TRUE(saw_flagged);
    EXPECT_TRUE(saw_unflagged);
}

TEST(OpStreamTest, DistinctThreadsGetDisjointPrivateRegions)
{
    KernelSpec k = twoStreamSpec();
    OpStream a(k, 1, 1), b(k, 2, 1);
    std::set<uint64_t> seen_a;
    for (uint64_t n = 0; n < 500; ++n)
        seen_a.insert(a.at(n).lineAddr);
    for (uint64_t n = 0; n < 500; ++n)
        EXPECT_EQ(seen_a.count(b.at(n).lineAddr), 0u);
}

TEST(OpStreamTest, SharedStreamSameAcrossThreadsOfCore)
{
    KernelSpec k;
    StreamDesc s;
    s.kind = StreamDesc::Kind::Sequential;
    s.footprintLines = 256;
    s.sharedAcrossThreads = true;
    k.streams.push_back(s);
    OpStream a(k, /*thread_seed=*/1, /*core_seed=*/9);
    OpStream b(k, /*thread_seed=*/2, /*core_seed=*/9);
    OpStream c(k, /*thread_seed=*/3, /*core_seed=*/8);
    EXPECT_EQ(a.at(0).lineAddr, b.at(0).lineAddr);
    EXPECT_NE(a.at(0).lineAddr, c.at(0).lineAddr);
}

TEST(OpStreamTest, ReuseRetouchesEarlierLines)
{
    KernelSpec k;
    StreamDesc s;
    s.kind = StreamDesc::Kind::Sequential;
    s.footprintLines = 1 << 18;
    s.reuseFraction = 0.5;
    s.reuseWindow = 32;
    k.streams.push_back(s);
    OpStream ops(k, 1, 1);
    // With 50% reuse, the number of *new* max addresses in N ops is
    // roughly N/2.
    uint64_t max_addr = 0;
    unsigned advances = 0;
    for (uint64_t n = 0; n < 2000; ++n) {
        uint64_t a = ops.at(n).lineAddr;
        if (a > max_addr) {
            max_addr = a;
            ++advances;
        }
    }
    EXPECT_NEAR(advances, 1000u, 120u);
}

TEST(OpStreamTest, ZeroReuseNeverRetreats)
{
    KernelSpec k;
    StreamDesc s;
    s.kind = StreamDesc::Kind::Sequential;
    s.footprintLines = 1 << 18;
    k.streams.push_back(s);
    OpStream ops(k, 1, 1);
    uint64_t prev = 0;
    for (uint64_t n = 0; n < 1000; ++n) {
        uint64_t a = ops.at(n).lineAddr;
        if (n) {
            EXPECT_GT(a, prev);
        }
        prev = a;
    }
}

TEST(OpStreamTest, InterleaveIsRegular)
{
    // A 3:1 weighted pattern should never put two rare-stream slots
    // adjacent (error-diffusion spreads them).
    OpStream ops(twoStreamSpec(), 1, 1);
    int prev = -1;
    for (uint64_t n = 0; n < 256; ++n) {
        int s = ops.at(n).streamIdx;
        if (s == 1) {
            EXPECT_NE(prev, 1);
        }
        prev = s;
    }
}

TEST(OpStreamDeathTest, EmptySpecPanics)
{
    KernelSpec k;
    EXPECT_DEATH(OpStream(k, 1, 1), "no streams");
}

TEST(OpStreamDeathTest, HugeFootprintPanics)
{
    KernelSpec k;
    StreamDesc s;
    s.footprintLines = 1ULL << 40;
    k.streams.push_back(s);
    EXPECT_DEATH(OpStream(k, 1, 1), "footprint");
}

} // namespace
} // namespace lll::sim
