/**
 * @file
 * Tests for the bandwidth→latency profile: interpolation, clamping,
 * isotonic cleanup, and (de)serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "xmem/latency_profile.hh"

namespace lll::xmem
{
namespace
{

LatencyProfile
simple()
{
    return LatencyProfile("tst", 100.0,
                          {{10.0, 80.0}, {50.0, 120.0}, {90.0, 240.0}});
}

TEST(LatencyProfileTest, ExactPoints)
{
    LatencyProfile p = simple();
    EXPECT_DOUBLE_EQ(p.latencyAt(10.0), 80.0);
    EXPECT_DOUBLE_EQ(p.latencyAt(50.0), 120.0);
    EXPECT_DOUBLE_EQ(p.latencyAt(90.0), 240.0);
}

TEST(LatencyProfileTest, LinearInterpolation)
{
    LatencyProfile p = simple();
    EXPECT_DOUBLE_EQ(p.latencyAt(30.0), 100.0);
    EXPECT_DOUBLE_EQ(p.latencyAt(70.0), 180.0);
}

TEST(LatencyProfileTest, ClampsOutsideRange)
{
    LatencyProfile p = simple();
    EXPECT_DOUBLE_EQ(p.latencyAt(0.0), 80.0);
    EXPECT_DOUBLE_EQ(p.latencyAt(500.0), 240.0);
}

TEST(LatencyProfileTest, LookupFlagsOutOfRangeQueries)
{
    LatencyProfile p = simple();
    LatencyProfile::Lookup below = p.lookup(0.5);
    EXPECT_TRUE(below.belowMeasuredRange);
    EXPECT_FALSE(below.aboveMeasuredRange);
    EXPECT_DOUBLE_EQ(below.latencyNs, 80.0);

    LatencyProfile::Lookup above = p.lookup(500.0);
    EXPECT_TRUE(above.aboveMeasuredRange);
    EXPECT_FALSE(above.belowMeasuredRange);
    EXPECT_DOUBLE_EQ(above.latencyNs, 240.0);

    LatencyProfile::Lookup inside = p.lookup(30.0);
    EXPECT_FALSE(inside.belowMeasuredRange);
    EXPECT_FALSE(inside.aboveMeasuredRange);
    EXPECT_DOUBLE_EQ(inside.latencyNs, 100.0);

    // The measured endpoints themselves are in range.
    EXPECT_FALSE(p.lookup(10.0).belowMeasuredRange);
    EXPECT_FALSE(p.lookup(90.0).aboveMeasuredRange);
}

TEST(LatencyProfileTest, SortsUnorderedPoints)
{
    LatencyProfile p("tst", 100.0,
                     {{90.0, 240.0}, {10.0, 80.0}, {50.0, 120.0}});
    EXPECT_DOUBLE_EQ(p.latencyAt(30.0), 100.0);
}

TEST(LatencyProfileTest, IsotonicCleanupOfNoise)
{
    // A dip in the measured curve is raised to the running maximum.
    LatencyProfile p("tst", 100.0,
                     {{10.0, 100.0}, {50.0, 90.0}, {90.0, 200.0}});
    EXPECT_DOUBLE_EQ(p.latencyAt(50.0), 100.0);
}

TEST(LatencyProfileTest, IdleAndMax)
{
    LatencyProfile p = simple();
    EXPECT_DOUBLE_EQ(p.idleLatencyNs(), 80.0);
    EXPECT_DOUBLE_EQ(p.maxMeasuredGBs(), 90.0);
    EXPECT_DOUBLE_EQ(p.peakGBs(), 100.0);
    EXPECT_EQ(p.platformName(), "tst");
}

TEST(LatencyProfileTest, SerializeRoundTrip)
{
    LatencyProfile p = simple();
    util::Result<LatencyProfile> q = LatencyProfile::parse(p.serialize());
    ASSERT_TRUE(q.ok()) << q.status().toString();
    EXPECT_EQ(q->platformName(), "tst");
    EXPECT_DOUBLE_EQ(q->peakGBs(), 100.0);
    ASSERT_EQ(q->points().size(), 3u);
    EXPECT_DOUBLE_EQ(q->latencyAt(30.0), 100.0);
}

TEST(LatencyProfileTest, SaveLoadRoundTrip)
{
    std::string path = ::testing::TempDir() + "/lll_profile_test.profile";
    ASSERT_TRUE(simple().save(path).ok());
    util::Result<LatencyProfile> q = LatencyProfile::load(path);
    ASSERT_TRUE(q.ok()) << q.status().toString();
    EXPECT_DOUBLE_EQ(q->latencyAt(70.0), 180.0);
    std::remove(path.c_str());
}

TEST(LatencyProfileTest, SaveCreatesParentDirectories)
{
    std::string dir = ::testing::TempDir() + "/lll_nested/a/b";
    std::string path = dir + "/p.profile";
    ASSERT_TRUE(simple().save(path).ok());
    EXPECT_TRUE(LatencyProfile::load(path).ok());
    std::filesystem::remove_all(::testing::TempDir() + "/lll_nested");
}

TEST(LatencyProfileTest, SaveToUnwritablePathIsIoError)
{
    util::Status s = simple().save("/proc/lll-cannot-write-here");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), util::ErrorCode::IoError);
}

TEST(LatencyProfileTest, LoadMissingFileIsNotFound)
{
    util::Result<LatencyProfile> p =
        LatencyProfile::load("/nonexistent/nope.profile");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), util::ErrorCode::NotFound);
}

TEST(LatencyProfileTest, MalformedTextIsCorruptData)
{
    util::Result<LatencyProfile> p =
        LatencyProfile::parse("garbage here\n");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), util::ErrorCode::CorruptData);
    EXPECT_NE(p.status().message().find("unknown profile key"),
              std::string::npos);
    // The offending line number is part of the message.
    EXPECT_NE(p.status().message().find("line 1"), std::string::npos);
}

TEST(LatencyProfileTest, IncompleteTextIsCorruptData)
{
    util::Result<LatencyProfile> p = LatencyProfile::parse("platform x\n");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), util::ErrorCode::CorruptData);
    EXPECT_NE(p.status().message().find("incomplete"), std::string::npos);
}

TEST(LatencyProfileTest, NegativePointIsCorruptData)
{
    util::Result<LatencyProfile> p = LatencyProfile::parse(
        "platform x\npeak_gbs 100\npoint 10 -5\n");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), util::ErrorCode::CorruptData);
}

TEST(LatencyProfileTest, LoadCorruptFileCarriesPathContext)
{
    std::string path = ::testing::TempDir() + "/lll_corrupt.profile";
    {
        std::ofstream out(path);
        out << "platform tst\npeak_gbs 100\npoint 10";
    }
    util::Result<LatencyProfile> p = LatencyProfile::load(path);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), util::ErrorCode::CorruptData);
    EXPECT_NE(p.status().message().find(path), std::string::npos);
    std::remove(path.c_str());
}

TEST(LatencyProfileDeathTest, EmptyQueriesPanic)
{
    LatencyProfile p;
    EXPECT_TRUE(p.empty());
    EXPECT_DEATH(p.latencyAt(10.0), "empty");
    EXPECT_DEATH(p.idleLatencyNs(), "empty");
}

} // namespace
} // namespace lll::xmem
