/**
 * @file
 * Tests for the bandwidth→latency profile: interpolation, clamping,
 * isotonic cleanup, and (de)serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "xmem/latency_profile.hh"

namespace lll::xmem
{
namespace
{

LatencyProfile
simple()
{
    return LatencyProfile("tst", 100.0,
                          {{10.0, 80.0}, {50.0, 120.0}, {90.0, 240.0}});
}

TEST(LatencyProfileTest, ExactPoints)
{
    LatencyProfile p = simple();
    EXPECT_DOUBLE_EQ(p.latencyAt(10.0), 80.0);
    EXPECT_DOUBLE_EQ(p.latencyAt(50.0), 120.0);
    EXPECT_DOUBLE_EQ(p.latencyAt(90.0), 240.0);
}

TEST(LatencyProfileTest, LinearInterpolation)
{
    LatencyProfile p = simple();
    EXPECT_DOUBLE_EQ(p.latencyAt(30.0), 100.0);
    EXPECT_DOUBLE_EQ(p.latencyAt(70.0), 180.0);
}

TEST(LatencyProfileTest, ClampsOutsideRange)
{
    LatencyProfile p = simple();
    EXPECT_DOUBLE_EQ(p.latencyAt(0.0), 80.0);
    EXPECT_DOUBLE_EQ(p.latencyAt(500.0), 240.0);
}

TEST(LatencyProfileTest, SortsUnorderedPoints)
{
    LatencyProfile p("tst", 100.0,
                     {{90.0, 240.0}, {10.0, 80.0}, {50.0, 120.0}});
    EXPECT_DOUBLE_EQ(p.latencyAt(30.0), 100.0);
}

TEST(LatencyProfileTest, IsotonicCleanupOfNoise)
{
    // A dip in the measured curve is raised to the running maximum.
    LatencyProfile p("tst", 100.0,
                     {{10.0, 100.0}, {50.0, 90.0}, {90.0, 200.0}});
    EXPECT_DOUBLE_EQ(p.latencyAt(50.0), 100.0);
}

TEST(LatencyProfileTest, IdleAndMax)
{
    LatencyProfile p = simple();
    EXPECT_DOUBLE_EQ(p.idleLatencyNs(), 80.0);
    EXPECT_DOUBLE_EQ(p.maxMeasuredGBs(), 90.0);
    EXPECT_DOUBLE_EQ(p.peakGBs(), 100.0);
    EXPECT_EQ(p.platformName(), "tst");
}

TEST(LatencyProfileTest, SerializeRoundTrip)
{
    LatencyProfile p = simple();
    LatencyProfile q = LatencyProfile::deserialize(p.serialize());
    EXPECT_EQ(q.platformName(), "tst");
    EXPECT_DOUBLE_EQ(q.peakGBs(), 100.0);
    ASSERT_EQ(q.points().size(), 3u);
    EXPECT_DOUBLE_EQ(q.latencyAt(30.0), 100.0);
}

TEST(LatencyProfileTest, SaveLoadRoundTrip)
{
    std::string path = ::testing::TempDir() + "/lll_profile_test.profile";
    simple().save(path);
    LatencyProfile q = LatencyProfile::load(path);
    ASSERT_FALSE(q.empty());
    EXPECT_DOUBLE_EQ(q.latencyAt(70.0), 180.0);
    std::remove(path.c_str());
}

TEST(LatencyProfileTest, SaveCreatesParentDirectories)
{
    std::string dir = ::testing::TempDir() + "/lll_nested/a/b";
    std::string path = dir + "/p.profile";
    simple().save(path);
    EXPECT_FALSE(LatencyProfile::load(path).empty());
    std::filesystem::remove_all(::testing::TempDir() + "/lll_nested");
}

TEST(LatencyProfileTest, LoadMissingFileIsEmpty)
{
    LatencyProfile p = LatencyProfile::load("/nonexistent/nope.profile");
    EXPECT_TRUE(p.empty());
}

TEST(LatencyProfileDeathTest, MalformedTextIsFatal)
{
    EXPECT_EXIT(LatencyProfile::deserialize("garbage here\n"),
                ::testing::ExitedWithCode(1), "unknown profile key");
}

TEST(LatencyProfileDeathTest, IncompleteTextIsFatal)
{
    EXPECT_EXIT(LatencyProfile::deserialize("platform x\n"),
                ::testing::ExitedWithCode(1), "incomplete");
}

TEST(LatencyProfileDeathTest, EmptyQueriesPanic)
{
    LatencyProfile p;
    EXPECT_TRUE(p.empty());
    EXPECT_DEATH(p.latencyAt(10.0), "empty");
    EXPECT_DEATH(p.idleLatencyNs(), "empty");
}

} // namespace
} // namespace lll::xmem
