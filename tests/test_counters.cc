/**
 * @file
 * Tests for the counters layer: the Table I vendor matrix, the
 * portability property, CounterBank reads and RoutineProfiler math.
 */

#include <gtest/gtest.h>

#include "counters/counter_bank.hh"
#include "counters/vendor_matrix.hh"
#include "platforms/platform.hh"

namespace lll::counters
{
namespace
{

using platforms::Vendor;

sim::RunResult
sampleRun()
{
    sim::RunResult r;
    r.measureSeconds = 50e-6;
    r.memReadLines = 100000;
    r.memWriteLines = 20000;
    r.memHwPrefetchLines = 60000;
    r.memSwPrefetchLines = 5000;
    r.l1DemandHits = 400000;
    r.l1DemandMisses = 120000;
    r.l2DemandMisses = 50000;
    r.l1FullStalls = 777;
    r.l2FullStalls = 33;
    r.avgMemLatencyNs = 160.0;
    return r;
}

TEST(VendorMatrixTest, TableIRows)
{
    // Paper Table I: L1-MSHRQ-full stalls Intel/AMD yes, Cavium/Fujitsu
    // no; L2-MSHRQ-full stalls nobody; memory latency Intel/AMD limited.
    EXPECT_EQ(visibility(Vendor::Intel, EventKind::L1MshrFullStalls),
              Visibility::Full);
    EXPECT_EQ(visibility(Vendor::Amd, EventKind::L1MshrFullStalls),
              Visibility::Full);
    EXPECT_EQ(visibility(Vendor::Cavium, EventKind::L1MshrFullStalls),
              Visibility::None);
    EXPECT_EQ(visibility(Vendor::Fujitsu, EventKind::L1MshrFullStalls),
              Visibility::None);

    for (Vendor v : {Vendor::Intel, Vendor::Amd, Vendor::Cavium,
                     Vendor::Fujitsu}) {
        EXPECT_EQ(visibility(v, EventKind::L2MshrFullStalls),
                  Visibility::None);
    }

    EXPECT_EQ(visibility(Vendor::Intel, EventKind::LoadLatencyAbove512),
              Visibility::Limited);
    EXPECT_EQ(visibility(Vendor::Fujitsu, EventKind::LoadLatencyAbove512),
              Visibility::None);
}

TEST(VendorMatrixTest, PortableEventsVisibleEverywhere)
{
    // The paper's portability claim, enforced by construction.
    for (Vendor v : {Vendor::Intel, Vendor::Amd, Vendor::Cavium,
                     Vendor::Fujitsu}) {
        for (EventKind e : {EventKind::Cycles, EventKind::MemReadLines,
                            EventKind::MemWriteLines}) {
            EXPECT_TRUE(isPortable(e));
            EXPECT_EQ(visibility(v, e), Visibility::Full);
        }
    }
}

TEST(VendorMatrixTest, NonPortableEventsAreMarked)
{
    EXPECT_FALSE(isPortable(EventKind::L1MshrFullStalls));
    EXPECT_FALSE(isPortable(EventKind::LoadLatencyAbove512));
    EXPECT_FALSE(isPortable(EventKind::HwPrefetchMemLines));
}

TEST(VendorMatrixTest, SummariesCoverFourVendors)
{
    auto rows = vendorSummaries();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].vendor, Vendor::Intel);
    EXPECT_EQ(rows[2].stallBreakdown, Visibility::VeryLimited); // Cavium
    for (const VendorSummary &s : rows)
        EXPECT_EQ(s.memoryTraffic, Visibility::Full);
}

TEST(VendorMatrixTest, EventNames)
{
    EXPECT_STREQ(eventName(EventKind::MemReadLines), "mem_read_lines");
    EXPECT_STREQ(eventName(EventKind::L2MshrFullStalls),
                 "l2_mshrq_full_stalls");
}

TEST(CounterBankTest, ReadsPortableEvents)
{
    CounterBank bank(sampleRun(), Vendor::Fujitsu, 1.8);
    EXPECT_EQ(bank.readOrDie(EventKind::MemReadLines), 100000u);
    EXPECT_EQ(bank.readOrDie(EventKind::MemWriteLines), 20000u);
    EXPECT_EQ(bank.readOrDie(EventKind::Cycles),
              static_cast<uint64_t>(50e-6 * 1.8e9));
}

TEST(CounterBankTest, HiddenEventReturnsNullopt)
{
    CounterBank bank(sampleRun(), Vendor::Fujitsu, 1.8);
    EXPECT_FALSE(bank.read(EventKind::L1MshrFullStalls).has_value());
    EXPECT_FALSE(bank.read(EventKind::L2MshrFullStalls).has_value());
}

TEST(CounterBankTest, IntelSeesMshrStalls)
{
    CounterBank bank(sampleRun(), Vendor::Intel, 2.1);
    EXPECT_EQ(bank.readOrDie(EventKind::L1MshrFullStalls), 777u);
}

TEST(CounterBankDeathTest, ReadOrDieOnHiddenEventIsFatal)
{
    CounterBank bank(sampleRun(), Vendor::Fujitsu, 1.8);
    EXPECT_EXIT(bank.readOrDie(EventKind::L1MshrFullStalls),
                ::testing::ExitedWithCode(1), "not exposed");
}

TEST(RoutineProfilerTest, BandwidthFromPortableCounters)
{
    platforms::Platform p = platforms::skl();
    RoutineProfiler profiler(p);
    RoutineProfile prof = profiler.profile(sampleRun(), "kernel_x");
    EXPECT_EQ(prof.routine, "kernel_x");
    // 100000 * 64B / 50us = 128 GB/s reads; writes 25.6.
    EXPECT_NEAR(prof.readGBs, 128.0, 0.01);
    EXPECT_NEAR(prof.writeGBs, 25.6, 0.01);
    EXPECT_NEAR(prof.totalGBs, 153.6, 0.01);
}

TEST(RoutineProfilerTest, DemandFractionWhenCountersExist)
{
    platforms::Platform p = platforms::skl();   // Intel: limited = exposed
    RoutineProfiler profiler(p);
    RoutineProfile prof = profiler.profile(sampleRun(), "k");
    ASSERT_TRUE(prof.demandFractionKnown);
    // (100000 - 65000) / 100000
    EXPECT_NEAR(prof.demandFraction, 0.35, 0.001);
}

TEST(RoutineProfilerTest, LineSizeMatters)
{
    platforms::Platform p = platforms::a64fx();   // 256B lines
    RoutineProfiler profiler(p);
    RoutineProfile prof = profiler.profile(sampleRun(), "k");
    EXPECT_NEAR(prof.readGBs, 512.0, 0.1);
}

} // namespace
} // namespace lll::counters
