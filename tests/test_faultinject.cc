/**
 * @file
 * Tests for the fault-injection harness: the corruptors actually break
 * profile text in ways the parser rejects as CorruptData, and a full
 * harness run passes every scenario without aborting the process.
 */

#include <gtest/gtest.h>

#include "faultinject/faultinject.hh"
#include "xmem/latency_profile.hh"

namespace lll::faultinject
{
namespace
{

std::string
goodText()
{
    return xmem::LatencyProfile(
               "tst", 100.0,
               {{10.0, 80.0}, {50.0, 120.0}, {90.0, 240.0}})
        .serialize();
}

TEST(CorruptorTest, TruncateMidLineBreaksParse)
{
    std::string bad = truncateMidLine(goodText());
    EXPECT_LT(bad.size(), goodText().size());
    util::Result<xmem::LatencyProfile> p = xmem::LatencyProfile::parse(bad);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), util::ErrorCode::CorruptData);
}

TEST(CorruptorTest, GarbageLineBreaksParse)
{
    Rng rng(99);
    std::string bad = injectGarbageLine(goodText(), rng);
    util::Result<xmem::LatencyProfile> p = xmem::LatencyProfile::parse(bad);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), util::ErrorCode::CorruptData);
}

TEST(CorruptorTest, NegatedPointBreaksParse)
{
    std::string bad = negatePoint(goodText());
    util::Result<xmem::LatencyProfile> p = xmem::LatencyProfile::parse(bad);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), util::ErrorCode::CorruptData);
}

TEST(CorruptorTest, ByteFlipsNeverCrashTheParser)
{
    Rng rng(7);
    for (int i = 0; i < 64; ++i) {
        std::string bad = flipRandomBytes(goodText(), rng, 1 + (i % 8));
        // Some flips yield still-valid text; the contract is only
        // "structured result, no crash".
        (void)xmem::LatencyProfile::parse(bad);
    }
    SUCCEED();
}

TEST(FaultInjectTest, AllScenariosPass)
{
    Options opts;
    opts.seed = 42;
    opts.fuzzIterations = 5; // keep the unit-test run fast
    Report report = runAll(opts);
    EXPECT_FALSE(report.entries.empty());
    EXPECT_EQ(report.failures(), 0) << report.render(true);
    EXPECT_TRUE(report.allPassed());
}

TEST(FaultInjectTest, ReportRenderListsScenarios)
{
    Options opts;
    opts.seed = 42;
    opts.fuzzIterations = 2;
    Report report = runAll(opts);
    std::string text = report.render(false);
    EXPECT_NE(text.find("PASS"), std::string::npos);
    EXPECT_NE(text.find("watchdog"), std::string::npos);
    EXPECT_NE(text.find("config-fuzz"), std::string::npos);
}

TEST(FaultInjectTest, DeterministicForFixedSeed)
{
    Options opts;
    opts.seed = 7;
    opts.fuzzIterations = 2;
    Report a = runAll(opts);
    Report b = runAll(opts);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].scenario, b.entries[i].scenario);
        EXPECT_EQ(a.entries[i].passed, b.entries[i].passed);
    }
}

} // namespace
} // namespace lll::faultinject
