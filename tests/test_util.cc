/**
 * @file
 * Tests for the util module: logging, RNG, statistics, table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "service/service.hh"
#include "util/argparse.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace lll
{
namespace
{

// --- logging ------------------------------------------------------------

std::vector<std::pair<LogLevel, std::string>> g_captured;

void
captureSink(LogLevel level, const std::string &msg)
{
    g_captured.emplace_back(level, msg);
}

class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        g_captured.clear();
        setLogSink(captureSink);
    }

    void TearDown() override { setLogSink(nullptr); }
};

TEST_F(LoggingTest, WarnGoesThroughSink)
{
    lll_warn("something odd: %d", 42);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Warn);
    EXPECT_EQ(g_captured[0].second, "something odd: 42");
}

TEST_F(LoggingTest, InformGoesThroughSink)
{
    lll_inform("status %s", "ok");
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Inform);
    EXPECT_EQ(g_captured[0].second, "status ok");
}

TEST_F(LoggingTest, WarnCountIncrements)
{
    unsigned long before = warnCount();
    lll_warn("one");
    lll_warn("two");
    EXPECT_EQ(warnCount(), before + 2);
}

TEST_F(LoggingTest, FormatHandlesLongStrings)
{
    std::string big(300, 'x');
    lll_warn("%s", big.c_str());
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].second.size(), 300u);
}

TEST_F(LoggingTest, DebugSilentWhenCategoryDisabled)
{
    LLL_DEBUG(mshr, "invisible %d", 1);
    EXPECT_TRUE(g_captured.empty());
}

TEST_F(LoggingTest, DebugEmitsWhenCategoryEnabled)
{
    setDebugCategory(DebugCat::mshr, true);
    LLL_DEBUG(mshr, "line %d allocated", 7);
    LLL_DEBUG(memctrl, "still off");
    setDebugCategory(DebugCat::mshr, false);
    LLL_DEBUG(mshr, "off again");
#ifdef LLL_DEBUG_DISABLED
    EXPECT_TRUE(g_captured.empty());
#else
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Debug);
    EXPECT_EQ(g_captured[0].second, "[mshr] line 7 allocated");
#endif
}

TEST_F(LoggingTest, DebugCategoryByName)
{
    setDebugCategory("prefetch", true);
    EXPECT_TRUE(debugEnabled(DebugCat::prefetch));
    EXPECT_FALSE(debugEnabled(DebugCat::memctrl));
    setDebugCategory("prefetch", false);
    EXPECT_FALSE(debugEnabled(DebugCat::prefetch));
}

TEST(LoggingDeathTest, UnknownDebugCategoryIsFatal)
{
    EXPECT_DEATH({ setDebugCategory("bogus", true); },
                 "unknown debug category");
}

TEST(LoggingDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH({ lll_assert(1 == 2, "impossible %d", 7); },
                 "assertion");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT({ lll_fatal("user error"); },
                ::testing::ExitedWithCode(1), "user error");
}

// --- rng ----------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(RngTest, DifferentStreamsDiffer)
{
    Rng a(1, 10), b(1, 11);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(RngTest, BelowRespectsBound)
{
    Rng r(7);
    for (uint32_t bound : {1u, 2u, 10u, 1000u}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(RngTest, BelowZeroIsZero)
{
    Rng r(7);
    EXPECT_EQ(r.below(0), 0u);
    EXPECT_EQ(r.below64(0), 0u);
}

TEST(RngTest, Below64RespectsBound)
{
    Rng r(9);
    uint64_t bound = 1ULL << 40;
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(r.below64(bound), bound);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BelowIsRoughlyUniform)
{
    Rng r(13);
    std::vector<int> buckets(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++buckets[r.below(10)];
    for (int c : buckets)
        EXPECT_NEAR(c, 1000, 150);
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits, 3000, 200);
}

// --- stats --------------------------------------------------------------

TEST(TickTest, NsRoundTrip)
{
    EXPECT_EQ(nsToTicks(1.0), 1000u);
    EXPECT_EQ(nsToTicks(0.5), 500u);
    EXPECT_DOUBLE_EQ(ticksToNs(2500), 2.5);
}

TEST(CounterTest, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(AverageTest, MeanMinMax)
{
    Average a;
    a.sample(1.0);
    a.sample(3.0);
    a.sample(5.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(AverageTest, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(TimeWeightedStatTest, ConstantLevel)
{
    TimeWeightedStat s;
    s.set(0, 4.0);
    EXPECT_DOUBLE_EQ(s.mean(0, 100), 4.0);
}

TEST(TimeWeightedStatTest, StepFunction)
{
    TimeWeightedStat s;
    s.set(0, 0.0);
    s.set(50, 10.0);       // 0 for 50 ticks, 10 for 50 ticks
    EXPECT_DOUBLE_EQ(s.mean(0, 100), 5.0);
}

TEST(TimeWeightedStatTest, AddDelta)
{
    TimeWeightedStat s;
    s.add(0, 2.0);
    s.add(10, 3.0);        // 2 for 10 ticks, 5 for 10 ticks
    EXPECT_DOUBLE_EQ(s.mean(0, 20), 3.5);
    EXPECT_DOUBLE_EQ(s.current(), 5.0);
}

TEST(TimeWeightedStatTest, ResetKeepsLevel)
{
    TimeWeightedStat s;
    s.set(0, 8.0);
    s.reset(100);
    EXPECT_DOUBLE_EQ(s.mean(100, 200), 8.0);
    EXPECT_DOUBLE_EQ(s.current(), 8.0);
}

TEST(TimeWeightedStatTest, MaxTracksPeak)
{
    TimeWeightedStat s;
    s.set(0, 1.0);
    s.set(5, 9.0);
    s.set(10, 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.reset(20);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);   // reset max to current level
}

TEST(HistogramTest, MeanAndTotal)
{
    Histogram h(10.0, 16);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(25.0);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(HistogramTest, PercentileBucketResolution)
{
    Histogram h(1.0, 128);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    double p50 = h.percentile(0.5);
    EXPECT_NEAR(p50, 50.0, 2.0);
    double p90 = h.percentile(0.9);
    EXPECT_NEAR(p90, 90.0, 2.0);
}

TEST(HistogramTest, OverflowGoesToLastBucket)
{
    Histogram h(1.0, 4);
    h.sample(1000.0);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_NEAR(h.percentile(1.0), 3.5, 0.6);
}

// --- table --------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns)
{
    Table t({"a", "bbbb"});
    t.addRow({"xx", "y"});
    std::string out = t.render();
    EXPECT_NE(out.find("| a  | bbbb |"), std::string::npos);
    EXPECT_NE(out.find("| xx | y    |"), std::string::npos);
}

TEST(TableTest, CaptionOnTop)
{
    Table t({"c"});
    t.setCaption("hello");
    EXPECT_EQ(t.render().rfind("hello\n", 0), 0u);
}

TEST(TableTest, SeparatorAddsRule)
{
    Table t({"c"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::string out = t.render();
    // header rule + top + separator + bottom = 4 rules
    size_t rules = 0, pos = 0;
    while ((pos = out.find("+--", pos)) != std::string::npos) {
        ++rules;
        pos += 3;
    }
    EXPECT_EQ(rules, 4u);
}

TEST(TableDeathTest, WrongArityPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(FmtTest, Double)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
}

TEST(FmtTest, BwPct)
{
    EXPECT_EQ(fmtBwPct(106.9, 128.0), "106.9 (84%)");
}

TEST(FmtTest, Speedup)
{
    EXPECT_EQ(fmtSpeedup(1.4), "1.40x");
}


// --- argparse -----------------------------------------------------------

TEST(ArgParserTest, ExtractsFlagsInAnyOrderLeavingPositionals)
{
    util::ArgParser ap({"isx", "--jobs", "4", "skl", "--json", "out",
                        "vect", "--cores", "8"});
    util::Result<std::string> json = ap.stringFlag("--json");
    ASSERT_TRUE(json.ok());
    EXPECT_EQ(*json, "out");
    util::Result<int> jobs = ap.intFlag("--jobs", 1);
    ASSERT_TRUE(jobs.ok());
    EXPECT_EQ(*jobs, 4);
    util::Result<int> cores = ap.intFlag("--cores", 0);
    ASSERT_TRUE(cores.ok());
    EXPECT_EQ(*cores, 8);
    ASSERT_EQ(ap.rest().size(), 3u);
    EXPECT_EQ(ap.rest()[0], "isx");
    EXPECT_EQ(ap.rest()[1], "skl");
    EXPECT_EQ(ap.rest()[2], "vect");
    ap.consumePositional(3);
    EXPECT_TRUE(ap.finish().ok());
}

TEST(ArgParserTest, AbsentFlagsFallBack)
{
    util::ArgParser ap({});
    util::Result<std::string> s = ap.stringFlag("--batch");
    ASSERT_TRUE(s.ok());
    EXPECT_TRUE(s->empty());
    util::Result<int> i = ap.intFlag("--jobs", 7);
    ASSERT_TRUE(i.ok());
    EXPECT_EQ(*i, 7);
    util::Result<uint64_t> u = ap.uint64Flag("--seed", 11);
    ASSERT_TRUE(u.ok());
    EXPECT_EQ(*u, 11u);
    util::Result<bool> b = ap.boolFlag("--json");
    ASSERT_TRUE(b.ok());
    EXPECT_FALSE(*b);
    EXPECT_TRUE(ap.finish().ok());
}

TEST(ArgParserTest, MissingValueRepeatsAndLeftoversAreUsageErrors)
{
    {
        util::ArgParser ap({"--json"});
        util::Result<std::string> r = ap.stringFlag("--json");
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), util::ErrorCode::InvalidArgument);
        EXPECT_NE(r.status().message().find("--json needs an argument"),
                  std::string::npos)
            << r.status().message();
    }
    {
        util::ArgParser ap({"--jobs", "2", "--jobs", "3"});
        util::Result<int> r = ap.intFlag("--jobs", 1);
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.status().message().find("given more than once"),
                  std::string::npos);
    }
    {
        util::ArgParser ap({"--jobs", "zero"});
        util::Result<int> r = ap.intFlag("--jobs", 1);
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.status().message().find("positive integer"),
                  std::string::npos);
    }
    {
        util::ArgParser ap({"--jobs", "0"});
        util::Result<int> r = ap.intFlag("--jobs", 1);
        EXPECT_FALSE(r.ok());
    }
    {
        util::ArgParser ap({"--bogus"});
        util::Status s = ap.finish();
        ASSERT_FALSE(s.ok());
        EXPECT_NE(s.message().find("unknown flag '--bogus'"),
                  std::string::npos);
    }
    {
        util::ArgParser ap({"stray"});
        util::Status s = ap.finish();
        ASSERT_FALSE(s.ok());
        EXPECT_NE(s.message().find("unexpected argument 'stray'"),
                  std::string::npos);
    }
}

// --- json parser --------------------------------------------------------

TEST(JsonParseTest, ParsesNestedDocuments)
{
    util::Result<util::JsonValue> doc = util::parseJson(
        "{\"a\": 1.5, \"b\": [true, null, \"x\\n\"], "
        "\"c\": {\"d\": -2e3}}");
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    ASSERT_TRUE(doc->isObject());
    util::Result<double> a = doc->getNumber("a");
    ASSERT_TRUE(a.ok());
    EXPECT_DOUBLE_EQ(*a, 1.5);
    const util::JsonValue *b = doc->find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_TRUE(b->array[0].isBool());
    EXPECT_TRUE(b->array[0].boolean);
    EXPECT_TRUE(b->array[1].isNull());
    EXPECT_EQ(b->array[2].string, "x\n");
    const util::JsonValue *c = doc->find("c");
    ASSERT_NE(c, nullptr);
    util::Result<double> d = c->getNumber("d");
    ASSERT_TRUE(d.ok());
    EXPECT_DOUBLE_EQ(*d, -2000.0);
}

TEST(JsonParseTest, ErrorsCarryByteOffsets)
{
    const char *bad[] = {
        "",
        "{\"a\": }",
        "{\"a\": 1,}",
        "[1, 2",
        "\"unterminated",
        "{\"a\": 1} trailing",
        "nul",
        "{\"a\" 1}",
    };
    for (const char *text : bad) {
        util::Result<util::JsonValue> doc = util::parseJson(text);
        ASSERT_FALSE(doc.ok()) << text;
        EXPECT_EQ(doc.status().code(), util::ErrorCode::CorruptData)
            << text;
        EXPECT_NE(doc.status().message().find("byte"),
                  std::string::npos)
            << doc.status().message();
    }
}

TEST(JsonParseTest, DepthLimitIsInvalidArgumentNotOverflow)
{
    // 2000 levels would recurse the parser off the stack without the
    // depth gate; with it, the rejection is a structured
    // InvalidArgument (a policy violation, not a syntax error).
    const int levels = 2000;
    std::string deep(size_t(levels), '[');
    deep.append(size_t(levels), ']');
    util::Result<util::JsonValue> doc = util::parseJson(deep);
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.status().code(), util::ErrorCode::InvalidArgument);
    EXPECT_NE(doc.status().message().find("nesting"),
              std::string::npos)
        << doc.status().message();

    // The same document passes once the limit allows it.
    util::JsonLimits deep_ok;
    deep_ok.maxDepth = levels + 1;
    EXPECT_TRUE(util::parseJson(deep, deep_ok).ok());
}

TEST(JsonParseTest, DepthLimitCountsObjectsAndArrays)
{
    util::JsonLimits limits;
    limits.maxDepth = 3;
    // The root is depth 0, so object > array > object > array ends at
    // depth 3 — exactly at the limit...
    EXPECT_TRUE(util::parseJson("{\"a\": [{\"b\": []}]}", limits).ok());
    // ...one more container level breaks it.
    util::Result<util::JsonValue> doc =
        util::parseJson("{\"a\": [{\"b\": [[]]}]}", limits);
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.status().code(), util::ErrorCode::InvalidArgument);
}

TEST(JsonParseTest, ByteLimitRejectsBeforeParsing)
{
    util::JsonLimits limits;
    limits.maxBytes = 16;
    // Oversized *and* malformed: the size gate must fire first, so
    // the code is InvalidArgument, not CorruptData.
    const std::string big =
        "{\"a\": \"" + std::string(64, 'x') + ""; // unterminated too
    util::Result<util::JsonValue> doc = util::parseJson(big, limits);
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.status().code(), util::ErrorCode::InvalidArgument);
    EXPECT_NE(doc.status().message().find("bytes"), std::string::npos)
        << doc.status().message();

    // At or under the limit parses normally.
    EXPECT_TRUE(util::parseJson("{\"a\": 1}", limits).ok());

    // maxBytes 0 keeps the historical unlimited behavior.
    util::JsonLimits unlimited;
    EXPECT_TRUE(
        util::parseJson("{\"a\": \"" + std::string(64, 'x') + "\"}",
                        unlimited)
            .ok());
}

TEST(JsonParseTest, ServiceRequestLimitsAreEnforcedPerLine)
{
    // The run service's own limits: a hostile request line fails as a
    // per-request InvalidArgument instead of taking the batch down.
    std::string deep = "{\"schema_version\": 1, \"spec\": ";
    deep.append(64, '[');
    deep.append(64, ']');
    deep += "}";
    util::Result<service::RunRequest> r =
        service::parseRunRequest(deep, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::ErrorCode::InvalidArgument);

    const std::string big(service::kMaxRequestBytes + 1, ' ');
    util::Result<service::RunRequest> r2 =
        service::parseRunRequest("{\"a\": 1}" + big, 2);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.status().code(), util::ErrorCode::InvalidArgument);
}

TEST(JsonParseTest, TypedAccessorsNameTheOffendingField)
{
    util::Result<util::JsonValue> doc =
        util::parseJson("{\"n\": \"oops\"}");
    ASSERT_TRUE(doc.ok());
    util::Result<double> n = doc->getNumber("n");
    ASSERT_FALSE(n.ok());
    EXPECT_NE(n.status().message().find("\"n\""), std::string::npos)
        << n.status().message();
    util::Result<std::string> missing = doc->getString("gone");
    ASSERT_FALSE(missing.ok());
    util::Result<std::string> fallback =
        doc->getStringOr("gone", "dflt");
    ASSERT_TRUE(fallback.ok());
    EXPECT_EQ(*fallback, "dflt");
    util::Result<bool> mismatch = doc->getBoolOr("n", false);
    EXPECT_FALSE(mismatch.ok());
}

} // namespace
} // namespace lll
