/**
 * @file
 * Tests for the design-space autotuner (DESIGN.md §17): the axis
 * grammar, candidate construction across both platform layers, the
 * Pareto extractor (against a brute-force oracle), and Searcher
 * end-to-end — accounting reconciliation, prune soundness (pruned
 * frontier == --no-prune frontier), and jobs/permutation invariance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "search/axes.hh"
#include "search/pareto.hh"
#include "search/search.hh"
#include "search/space.hh"
#include "test_common.hh"
#include "util/status.hh"

namespace lll::search
{
namespace
{

using util::ErrorCode;

TEST(ParseAxis, ExpandsGeometricRange)
{
    util::Result<Axis> a = parseAxis("l2_mshrs=4:64:*2");
    ASSERT_TRUE(a.ok()) << a.status().toString();
    EXPECT_EQ(a->name, "l2_mshrs");
    EXPECT_EQ(a->values, (std::vector<double>{4, 8, 16, 32, 64}));
}

TEST(ParseAxis, ExpandsArithmeticRange)
{
    util::Result<Axis> a = parseAxis("banks=4:20:+4");
    ASSERT_TRUE(a.ok()) << a.status().toString();
    EXPECT_EQ(a->values, (std::vector<double>{4, 8, 12, 16, 20}));
}

TEST(ParseAxis, ExplicitSetIsSortedCanonically)
{
    util::Result<Axis> a = parseAxis("pf_degree=8,2,4");
    ASSERT_TRUE(a.ok()) << a.status().toString();
    EXPECT_EQ(a->values, (std::vector<double>{2, 4, 8}));
}

TEST(ParseAxis, RejectsBadInput)
{
    const char *cases[] = {
        "l2_mshrs",              // no '='
        "warp_core=1,2",         // unknown axis
        "l2_mshrs=0,4",          // counts start at 1
        "l2_mshrs=4,4",          // duplicate value
        "l2_mshrs=2.5",          // counts are integers
        "l2_sets=3",             // power of two required
        "mem_front_ns=-5",       // latencies are positive
        "l2_mshrs=8:4:+2",       // empty range
        "l2_mshrs=4:8:2",        // step must be +N or *N
        "l2_mshrs=4:8:*1",       // factor must exceed 1
        "l2_mshrs=4:8:+2:9",     // too many ':'
    };
    for (const char *c : cases) {
        util::Result<Axis> a = parseAxis(c);
        ASSERT_FALSE(a.ok()) << c;
        EXPECT_EQ(a.status().code(), ErrorCode::InvalidArgument) << c;
    }
}

TEST(ParsePoint, CanonicalizesNameOrder)
{
    util::Result<Assignment> p = parsePoint("l2_mshrs=48,banks=10");
    ASSERT_TRUE(p.ok()) << p.status().toString();
    EXPECT_EQ(p->label(), "banks=10,l2_mshrs=48");
}

TEST(ParsePoint, RejectsUnknownAxisAndRepeats)
{
    EXPECT_FALSE(parsePoint("flux=3").ok());
    EXPECT_FALSE(parsePoint("banks=2,banks=4").ok());
    EXPECT_FALSE(parsePoint("").ok());
}

TEST(ApplyAssignment, MutatesBothPlatformLayersAndRenames)
{
    platforms::Platform base = test::tinyPlatform();
    Assignment a;
    a.values = {{"banks", 8}, {"l2_mshrs", 24}};
    util::Result<platforms::Platform> cand = applyAssignment(base, a);
    ASSERT_TRUE(cand.ok()) << cand.status().toString();
    EXPECT_EQ(cand->name, "tiny~banks=8,l2_mshrs=24");
    EXPECT_EQ(cand->baseName(), "tiny");
    // Simulator prototype and the paper-level metadata agree.
    EXPECT_EQ(cand->proto.l2.mshrs, 24u);
    EXPECT_EQ(cand->l2Mshrs, 24u);
    EXPECT_EQ(cand->proto.mem.banksOverride, 8u);
    // The base is untouched.
    EXPECT_EQ(base.name, "tiny");
    EXPECT_NE(base.proto.l2.mshrs, 24u);
}

/** O(n^2) reference: a point survives iff nothing dominates it and no
 *  equal (cost, perf) point has a lower index. */
std::vector<ParetoPoint>
bruteForceFrontier(const std::vector<ParetoPoint> &points)
{
    std::vector<ParetoPoint> out;
    for (const ParetoPoint &p : points) {
        bool keep = true;
        for (const ParetoPoint &q : points) {
            if (dominates(q, p) ||
                (q.cost == p.cost && q.perfGBs == p.perfGBs &&
                 q.index < p.index)) {
                keep = false;
                break;
            }
        }
        if (keep)
            out.push_back(p);
    }
    std::sort(out.begin(), out.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  if (a.cost != b.cost)
                      return a.cost < b.cost;
                  if (a.perfGBs != b.perfGBs)
                      return a.perfGBs > b.perfGBs;
                  return a.index < b.index;
              });
    return out;
}

std::vector<size_t>
indicesOf(const std::vector<ParetoPoint> &points)
{
    std::vector<size_t> out;
    for (const ParetoPoint &p : points)
        out.push_back(p.index);
    return out;
}

TEST(ParetoFrontier, RemovesDominatedPoints)
{
    std::vector<ParetoPoint> pts = {
        {"a", 1.0, 10.0, 0},
        {"b", 2.0, 9.0, 1},  // dominated by a (costlier, slower)
        {"c", 2.0, 12.0, 2},
        {"d", 3.0, 12.0, 3}, // dominated by c (costlier, equal perf)
        {"e", 4.0, 20.0, 4},
    };
    std::vector<size_t> got = indicesOf(paretoFrontier(pts));
    EXPECT_EQ(got, (std::vector<size_t>{0, 2, 4}));
}

TEST(ParetoFrontier, TiesKeepTheLowestIndexOnly)
{
    std::vector<ParetoPoint> pts = {
        {"twin-b", 1.0, 5.0, 7},
        {"twin-a", 1.0, 5.0, 3},
    };
    std::vector<size_t> got = indicesOf(paretoFrontier(pts));
    EXPECT_EQ(got, (std::vector<size_t>{3}));
}

TEST(ParetoFrontier, MatchesBruteForceUnderPermutation)
{
    // A deterministic pseudo-random cloud with deliberate ties.
    std::mt19937_64 rng(42);
    std::vector<ParetoPoint> pts;
    for (size_t i = 0; i < 200; ++i) {
        ParetoPoint p;
        p.index = i;
        p.cost = static_cast<double>(rng() % 20);
        p.perfGBs = static_cast<double>(rng() % 25);
        p.label = "p" + std::to_string(i);
        pts.push_back(p);
    }
    const std::vector<size_t> expected =
        indicesOf(bruteForceFrontier(pts));
    ASSERT_FALSE(expected.empty());
    for (int round = 0; round < 5; ++round) {
        std::shuffle(pts.begin(), pts.end(), rng);
        EXPECT_EQ(indicesOf(paretoFrontier(pts)), expected)
            << "permutation round " << round;
    }
}

/**
 * End-to-end fixture: a tiny 4-core platform, an inline streaming
 * kernel, and a profile directory under the test temp dir so candidate
 * characterization never touches the repo's data/profiles.
 */
class SearcherTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        static const std::string dir =
            ::testing::TempDir() + "/search-profiles";
        setenv("LLL_PROFILE_DIR", dir.c_str(), 1);
    }
    static void TearDownTestSuite() { unsetenv("LLL_PROFILE_DIR"); }

    /** l1_mshrs x mem_front_ns: the high-latency corners have low
     *  analytic ceilings at unchanged-or-higher cost, so the pruner
     *  provably retires them once a cheap fast point has simulated. */
    SearchSpec spec()
    {
        SearchSpec s;
        s.hasBasePlatform = true;
        s.basePlatform = test::tinyPlatform();
        s.platformName = s.basePlatform.name;
        s.hasSpec = true;
        s.spec = test::streamingKernel(4, 8, 2.0);
        s.randomDominated = false;
        Axis l1;
        l1.name = "l1_mshrs";
        l1.values = {1, 4, 10};
        Axis lat;
        lat.name = "mem_front_ns";
        lat.values = {20, 900};
        s.axes = {l1, lat};
        s.cores = 2;
        s.warmupUs = 5.0;
        s.measureUs = 10.0;
        return s;
    }

    SearchResult runOk(const SearchSpec &s, int jobs = 1)
    {
        Searcher::Params p;
        p.jobs = jobs;
        Searcher searcher(p);
        util::Result<SearchResult> r = searcher.run(s);
        EXPECT_TRUE(r.ok()) << r.status().toString();
        return r.take();
    }
};

TEST_F(SearcherTest, AccountingReconcilesAndPruningEngages)
{
    SearchResult r = runOk(spec());
    EXPECT_EQ(r.enumerated, 6u);
    EXPECT_EQ(r.enumerated, r.prunedAnalytic + r.prunedInfeasible +
                                r.simulated);
    EXPECT_EQ(r.rows.size(), r.enumerated);
    // The analytic pre-pass must retire at least one high-latency
    // corner; the frontier is never empty when anything simulated.
    EXPECT_GT(r.prunedAnalytic, 0u);
    EXPECT_LT(r.simulated, r.enumerated);
    ASSERT_FALSE(r.frontier.empty());
    // Frontier rows are flagged, cost-ascending, and within bounds.
    double prev_cost = -1.0;
    for (size_t index : r.frontier) {
        const SearchRow &row = r.rows[index];
        EXPECT_TRUE(row.onFrontier);
        EXPECT_EQ(row.fate, CandidateFate::Simulated);
        EXPECT_GT(row.cost, prev_cost);
        // The ceiling caps the sustained rate; a measurement window
        // may overshoot it within the pruner's slack (§17.2).
        EXPECT_LE(row.bwGBs, row.ceilingGBs * 1.02)
            << row.label << ": simulated above the proven ceiling";
        prev_cost = row.cost;
    }
}

TEST_F(SearcherTest, PrunedFrontierEqualsBruteForceFrontier)
{
    SearchSpec pruned = spec();
    SearchSpec brute = spec();
    brute.disablePruning = true;

    SearchResult rp = runOk(pruned);
    SearchResult rb = runOk(brute);
    EXPECT_EQ(rb.prunedAnalytic, 0u);
    EXPECT_EQ(rb.simulated + rb.prunedInfeasible, rb.enumerated);
    EXPECT_GT(rb.simulated, rp.simulated);

    // Pruning must not change the frontier: a pruned candidate's
    // ceiling is below a strictly cheaper simulated result, so it
    // could never have survived extraction.
    ASSERT_EQ(rp.frontier.size(), rb.frontier.size());
    for (size_t i = 0; i < rp.frontier.size(); ++i) {
        EXPECT_EQ(rp.rows[rp.frontier[i]].label,
                  rb.rows[rb.frontier[i]].label);
        EXPECT_DOUBLE_EQ(rp.rows[rp.frontier[i]].bwGBs,
                         rb.rows[rb.frontier[i]].bwGBs);
    }
}

TEST_F(SearcherTest, ParallelRunIsByteIdenticalToSerial)
{
    // Warm the on-disk candidate profiles once so every run below
    // loads identical inputs (a fresh measurement differs from its
    // disk round-trip in the last ulp).
    (void)runOk(spec());

    SearchResult serial = runOk(spec(), 1);
    SearchResult parallel = runOk(spec(), 4);
    EXPECT_EQ(searchDataJson(serial, true),
              searchDataJson(parallel, true));
    EXPECT_EQ(renderSearchText(serial, true),
              renderSearchText(parallel, true));
}

TEST_F(SearcherTest, ExplicitPointsJoinTheSpace)
{
    SearchSpec s = spec();
    Assignment extra;
    extra.values = {{"banks", 2}, {"l1_mshrs", 2}};
    s.points.push_back(extra);
    SearchResult r = runOk(s);
    EXPECT_EQ(r.enumerated, 7u);
    bool found = false;
    for (const SearchRow &row : r.rows)
        found = found || row.label.find("banks=2") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST_F(SearcherTest, DuplicatePointsCollapse)
{
    SearchSpec s = spec();
    Assignment dup; // already in the cross product
    dup.values = {{"l1_mshrs", 4}, {"mem_front_ns", 20}};
    s.points.push_back(dup);
    SearchResult r = runOk(s);
    EXPECT_EQ(r.enumerated, 6u);
}

TEST_F(SearcherTest, OversizedSpaceIsRefusedUpFront)
{
    SearchSpec s = spec();
    s.maxCandidates = 3;
    Searcher searcher(Searcher::Params{});
    util::Result<SearchResult> r = searcher.run(s);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
}

TEST_F(SearcherTest, UnknownPlatformAndEmptySpaceAreStructuralErrors)
{
    SearchSpec s = spec();
    s.hasBasePlatform = false;
    s.platformName = "nope";
    util::Result<SearchResult> r = Searcher(Searcher::Params{}).run(s);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::NotFound);

    SearchSpec empty = spec();
    empty.axes.clear();
    empty.points.clear();
    util::Result<SearchResult> e =
        Searcher(Searcher::Params{}).run(empty);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.status().code(), ErrorCode::InvalidArgument);
}

} // namespace
} // namespace lll::search
