/**
 * @file
 * End-to-end integration tests: the paper's headline behaviours must
 * hold on the full simulated platforms.  These run the real platform
 * sizes, so they are the slowest tests in the suite.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/littles_law.hh"
#include "core/recipe.hh"
#include "test_common.hh"
#include "workloads/workload.hh"
#include "xmem/xmem_harness.hh"

namespace lll::core
{
namespace
{

using workloads::Opt;
using workloads::OptSet;

/** Per-process cache of real platform profiles (measured once). */
const xmem::LatencyProfile &
profileFor(const platforms::Platform &p)
{
    static std::map<std::string, xmem::LatencyProfile> cache;
    auto it = cache.find(p.name);
    if (it == cache.end()) {
        xmem::XMemHarness::Params hp;
        hp.warmupUs = 8.0;
        hp.measureUs = 20.0;
        hp.windows = {1, 4, 8, 12};
        hp.delays = {256, 32};
        it = cache.emplace(p.name,
                           xmem::XMemHarness(hp).measure(p)).first;
    }
    return it->second;
}

Experiment::Params
fast()
{
    Experiment::Params ep;
    ep.warmupUs = 8.0;
    ep.measureUs = 20.0;
    return ep;
}

TEST(IntegrationTest, IsxSklPinnedAtL1Mshrs)
{
    platforms::Platform skl = platforms::findPlatform("skl").take();
    workloads::WorkloadPtr isx = workloads::findWorkload("isx").take();
    Experiment exp(skl, *isx, profileFor(skl), fast());
    const StageMetrics &m = exp.stage({});
    // Paper Table IV row 1: ~84% of peak, n_avg ~ 10 (the L1 MSHRs).
    EXPECT_GT(m.analysis.pctPeak, 0.75);
    EXPECT_NEAR(m.analysis.nAvg, 10.0, 2.5);
    EXPECT_TRUE(m.analysis.nearMshrLimit);
    // And vectorization indeed buys nothing.
    double s = exp.speedup({}, OptSet{Opt::Vectorize});
    EXPECT_NEAR(s, 1.0, 0.05);
}

TEST(IntegrationTest, IsxKnlPrefetchBreaksL1Ceiling)
{
    platforms::Platform knl = platforms::findPlatform("knl").take();
    workloads::WorkloadPtr isx = workloads::findWorkload("isx").take();
    Experiment exp(knl, *isx, profileFor(knl), fast());
    OptSet v2 = OptSet{Opt::Vectorize, Opt::Smt2};
    OptSet v2p = v2.with(Opt::SwPrefetchL2);
    double s = exp.speedup(v2, v2p);
    EXPECT_GT(s, 1.15);   // paper: 1.4x
    // Occupancy moves well past the 12 L1 MSHRs toward the paper's 20.
    EXPECT_GT(exp.stage(v2p).analysis.nAvg, 15.0);
}

TEST(IntegrationTest, HpcgSklIsBandwidthWall)
{
    platforms::Platform skl = platforms::findPlatform("skl").take();
    workloads::WorkloadPtr hpcg = workloads::findWorkload("hpcg").take();
    Experiment exp(skl, *hpcg, profileFor(skl), fast());
    const StageMetrics &m = exp.stage({});
    EXPECT_GT(m.analysis.pctPeak, 0.8);
    // MLP-raising optimizations are futile (paper: Vect 1x, HT 0.98x).
    EXPECT_NEAR(exp.speedup({}, OptSet{Opt::Vectorize}), 1.0, 0.06);
}

TEST(IntegrationTest, HpcgA64fxVectorizationPays)
{
    platforms::Platform a = platforms::findPlatform("a64fx").take();
    workloads::WorkloadPtr hpcg = workloads::findWorkload("hpcg").take();
    Experiment exp(a, *hpcg, profileFor(a), fast());
    double s = exp.speedup({}, OptSet{Opt::Vectorize});
    EXPECT_GT(s, 1.4);   // paper: 1.7x
}

TEST(IntegrationTest, ComdSmtLadderOnKnl)
{
    platforms::Platform knl = platforms::findPlatform("knl").take();
    workloads::WorkloadPtr comd = workloads::findWorkload("comd").take();
    Experiment exp(knl, *comd, profileFor(knl), fast());
    OptSet v = OptSet{Opt::Vectorize};
    double s2 = exp.speedup(v, v.with(Opt::Smt2));
    double s4 = exp.speedup(v.with(Opt::Smt2), v.with(Opt::Smt4));
    EXPECT_GT(s2, 1.3);            // paper: 1.52
    EXPECT_GT(s4, 1.1);            // paper: 1.25
    EXPECT_LT(s4, s2);             // diminishing returns
}

TEST(IntegrationTest, MinighostTilingReducesTrafficPerWork)
{
    platforms::Platform a = platforms::findPlatform("a64fx").take();
    workloads::WorkloadPtr mg = workloads::findWorkload("minighost").take();
    Experiment exp(a, *mg, profileFor(a), fast());
    const StageMetrics &base = exp.stage({});
    const StageMetrics &tiled = exp.stage(OptSet{Opt::Tiling});
    double traffic_per_work_base = base.run.totalGBs / base.throughput;
    double traffic_per_work_tiled = tiled.run.totalGBs / tiled.throughput;
    EXPECT_LT(traffic_per_work_tiled, traffic_per_work_base * 0.8);
    EXPECT_GT(exp.speedup({}, OptSet{Opt::Tiling}), 1.3);  // paper 1.51
}

TEST(IntegrationTest, RecipeEndorsesThePaperWalkForIsxKnl)
{
    platforms::Platform knl = platforms::findPlatform("knl").take();
    workloads::WorkloadPtr isx = workloads::findWorkload("isx").take();
    Experiment exp(knl, *isx, profileFor(knl), fast());
    Recipe recipe(knl);
    // At the 2-way-HT stage the L1 queue is effectively full and the
    // recipe must point at prefetch-to-L2 (the paper's key move).
    OptSet v2 = OptSet{Opt::Vectorize, Opt::Smt2};
    RecipeDecision d = recipe.advise(exp.stage(v2).analysis, v2);
    auto recs = d.recommendedOpts();
    ASSERT_FALSE(recs.empty());
    EXPECT_EQ(recs.front(), Opt::SwPrefetchL2);
}

TEST(IntegrationTest, DerivedMlpTracksTrueOutstandingAcrossWorkloads)
{
    // The methodology property on the real platforms: n_avg derived via
    // the measured profile stays within ~45% of the true per-core
    // outstanding-to-memory level (profile lookup adds error on top of
    // Little's law itself, mostly because one curve serves all access
    // patterns — a limitation the paper shares).
    platforms::Platform skl = platforms::findPlatform("skl").take();
    for (const char *name : {"isx", "hpcg", "minighost", "snap"}) {
        workloads::WorkloadPtr w = workloads::findWorkload(name).take();
        Experiment exp(skl, *w, profileFor(skl), fast());
        const StageMetrics &m = exp.stage({});
        double truth = m.run.avgMemOutstanding / exp.coresUsed();
        ASSERT_GT(truth, 0.0) << name;
        EXPECT_NEAR(m.analysis.nAvg / truth, 1.0, 0.45) << name;
    }
}

TEST(IntegrationTest, SnapA64fxDistributionBeatsFusion)
{
    platforms::Platform a = platforms::findPlatform("a64fx").take();
    workloads::WorkloadPtr snap = workloads::findWorkload("snap").take();
    Experiment exp(a, *snap, profileFor(a), fast());
    OptSet pref = OptSet{Opt::SwPrefetchL2};
    double s = exp.speedup(pref, pref.with(Opt::Distribution));
    EXPECT_GT(s, 1.1);   // paper: 1.2x overall
}

} // namespace
} // namespace lll::core
