/**
 * @file
 * Tests for the Little's-law arithmetic, plus the library's strongest
 * property test: the n_avg derived the paper's way (bandwidth × loaded
 * latency / line size) matches the simulator's ground-truth average
 * outstanding memory requests, across workload shapes — i.e., Little's
 * law actually holds in the simulated memory system.
 */

#include <gtest/gtest.h>

#include "core/littles_law.hh"
#include "sim/system.hh"
#include "test_common.hh"

namespace lll::core
{
namespace
{

TEST(LittlesLawTest, Equation2Units)
{
    // 106.9 GB/s at 145 ns and 64B lines: the paper's SKL ISx numbers.
    EXPECT_NEAR(littlesLaw(106.9, 145.0, 64), 242.2, 0.2);
    EXPECT_NEAR(mlpPerCore(106.9, 145.0, 64, 24), 10.09, 0.01);
}

TEST(LittlesLawTest, PaperTableRowsRecompute)
{
    // KNL ISx base: 233 GB/s, 180 ns, 64 cores -> 10.23.
    EXPECT_NEAR(mlpPerCore(233.0, 180.0, 64, 64), 10.24, 0.03);
    // A64FX ISx base: 649 GB/s, 188 ns, 256B lines, 48 cores -> 9.92.
    EXPECT_NEAR(mlpPerCore(649.0, 188.0, 256, 48), 9.93, 0.03);
    // KNL most-optimized ISx: 344 GB/s at 238 ns -> 20.
    EXPECT_NEAR(mlpPerCore(344.0, 238.0, 64, 64), 20.0, 0.05);
}

TEST(LittlesLawTest, Equation1MatchesEquation2)
{
    // R/T * lat == BW*lat/cls when BW = R*cls/T.
    double requests = 1e6;
    double seconds = 1e-3;
    double lat_ns = 150.0;
    double cls = 64.0;
    double bw_gbs = requests * cls / seconds * 1e-9;
    EXPECT_NEAR(littlesLawFromRate(requests, seconds, lat_ns),
                littlesLaw(bw_gbs, lat_ns, 64), 1e-9);
}

TEST(LittlesLawTest, ZeroBandwidthZeroMlp)
{
    EXPECT_DOUBLE_EQ(littlesLaw(0.0, 200.0, 64), 0.0);
}

TEST(LittlesLawDeathTest, BadArgsPanic)
{
    EXPECT_DEATH(littlesLaw(-1.0, 10.0, 64), "bad arguments");
    EXPECT_DEATH(mlpPerCore(10.0, 10.0, 64, 0), "no cores");
}

// --- the self-consistency property --------------------------------------

struct LawCase
{
    const char *name;
    unsigned window;
    double compute;
    bool streaming;
    int cores;
    unsigned smt;
};

class LittlesLawProperty : public ::testing::TestWithParam<LawCase>
{
};

TEST_P(LittlesLawProperty, DerivedMlpMatchesTrueOutstanding)
{
    const LawCase &c = GetParam();
    sim::KernelSpec spec = c.streaming
                               ? test::streamingKernel(4, c.window,
                                                       c.compute)
                               : test::randomKernel(c.window, c.compute);
    platforms::Platform plat = test::tinyPlatform();
    sim::SystemParams sp = plat.sysParams(c.cores, c.smt);
    sim::System sys(sp, spec);
    sim::RunResult r = sys.run(15.0, 40.0);

    // Derived the paper's way, but with the *true* average latency the
    // memory requests saw (isolating Little's law itself from profile
    // lookup error).
    double derived = littlesLaw(r.readGBs, r.avgMemLatencyNs,
                                plat.lineBytes);
    // Ground truth: time-integrated outstanding requests at the
    // controller (front+back path excluded => compare loosely).
    double truth = r.avgMemOutstanding;
    ASSERT_GT(truth, 0.0);
    EXPECT_NEAR(derived / truth, 1.0, 0.15)
        << c.name << ": derived " << derived << " truth " << truth;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LittlesLawProperty,
    ::testing::Values(
        LawCase{"random_latency_bound", 8, 2.0, false, 4, 1},
        LawCase{"random_compute_bound", 4, 60.0, false, 4, 1},
        LawCase{"random_single_core", 8, 4.0, false, 1, 1},
        LawCase{"streaming", 8, 4.0, true, 4, 1},
        LawCase{"streaming_light", 4, 24.0, true, 2, 1},
        LawCase{"random_smt", 6, 4.0, false, 2, 2}),
    [](const ::testing::TestParamInfo<LawCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace lll::core
