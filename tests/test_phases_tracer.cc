/**
 * @file
 * Tests for the multi-phase thread model, the request tracer, the
 * latency percentiles and the DGEMM extension workload.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hh"
#include "sim/system.hh"
#include "sim/tracer.hh"
#include "test_common.hh"
#include "workloads/workload.hh"

namespace lll::sim
{
namespace
{

SystemParams
tinyParams(int cores = 2)
{
    platforms::Platform p = test::tinyPlatform();
    SystemParams sp = p.sysParams(cores, 1);
    sp.seed = 5;
    return sp;
}

// --- phases ---------------------------------------------------------------

TEST(PhasedThreadTest, SinglePhaseMatchesPlainConstruction)
{
    KernelSpec k = test::randomKernel(8, 4.0);
    System plain(tinyParams(), k);
    System phased(tinyParams(), std::vector<PhaseSpec>{{k, 0}});
    RunResult a = plain.run(5.0, 10.0);
    RunResult b = phased.run(5.0, 10.0);
    EXPECT_EQ(a.opsIssued, b.opsIssued);
    EXPECT_EQ(a.memReadLines, b.memReadLines);
}

TEST(PhasedThreadTest, PhasesAlternate)
{
    KernelSpec fast = test::randomKernel(8, 2.0);
    fast.name = "fast";
    KernelSpec slow = test::randomKernel(2, 100.0);
    slow.name = "slow";
    System sys(tinyParams(1),
               std::vector<PhaseSpec>{{fast, 200}, {slow, 50}});
    sys.run(5.0, 10.0);
    // After enough ops the thread must have cycled phases at least once.
    // (ops in 15 us >> 250.)
    ThreadContext &t = sys.thread(0, 0);
    EXPECT_GT(t.opsIssued(), 0u);
    // Run more and observe the phase index moving.
    std::set<size_t> seen;
    for (int i = 0; i < 40; ++i) {
        sys.run(0.0, 2.0);
        seen.insert(t.currentPhase());
    }
    EXPECT_EQ(seen.size(), 2u);
}

TEST(PhasedThreadTest, MixedProgramBlendsBandwidth)
{
    KernelSpec heavy = test::randomKernel(8, 2.0);
    KernelSpec light = test::randomKernel(2, 300.0);
    System h(tinyParams(2), heavy);
    System l(tinyParams(2), light);
    System m(tinyParams(2),
             std::vector<PhaseSpec>{{heavy, 1000}, {light, 200}});
    double bw_h = h.run(10.0, 20.0).totalGBs;
    double bw_l = l.run(10.0, 20.0).totalGBs;
    double bw_m = m.run(20.0, 60.0).totalGBs;
    EXPECT_GT(bw_m, bw_l);
    EXPECT_LT(bw_m, bw_h);
}

TEST(PhasedThreadDeathTest, EmptyPhasesPanics)
{
    EXPECT_DEATH(System(tinyParams(), std::vector<PhaseSpec>{}),
                 "phase");
}

// --- tracer ---------------------------------------------------------------

TEST(TracerTest, RecordsMemoryRequests)
{
    KernelSpec k = test::randomKernel(8, 4.0);
    System sys(tinyParams(), k);
    RequestTracer tracer(1024);
    sys.mem().setTracer(&tracer);
    RunResult r = sys.run(5.0, 10.0);
    EXPECT_GT(tracer.total(), 100u);
    EXPECT_LE(tracer.size(), tracer.capacity());
    // Every recorded read carries a positive latency.
    for (const RequestTracer::Event &ev : tracer.events()) {
        if (ev.type != ReqType::Writeback) {
            EXPECT_GT(ev.latencyNs, 0.0);
        }
    }
    (void)r;
}

TEST(TracerTest, RingOverwritesOldest)
{
    RequestTracer tracer(4);
    for (uint64_t i = 0; i < 10; ++i)
        tracer.record(i, i, ReqType::DemandLoad, 0, 1.0);
    EXPECT_EQ(tracer.total(), 10u);
    EXPECT_EQ(tracer.size(), 4u);
    auto evs = tracer.events();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs.front().lineAddr, 6u);
    EXPECT_EQ(evs.back().lineAddr, 9u);
}

TEST(TracerTest, EventsInArrivalOrder)
{
    RequestTracer tracer(8);
    for (uint64_t i = 0; i < 6; ++i)
        tracer.record(i * 10, i, ReqType::DemandLoad, 0, 1.0);
    auto evs = tracer.events();
    for (size_t i = 1; i < evs.size(); ++i)
        EXPECT_GT(evs[i].when, evs[i - 1].when);
}

TEST(TracerTest, LocalitySeparatesRandomFromStreaming)
{
    RequestTracer rnd_tracer(4096), seq_tracer(4096);
    {
        System sys(tinyParams(2), test::randomKernel(8, 4.0,
                                                     1 << 20));
        sys.mem().setTracer(&rnd_tracer);
        sys.run(5.0, 10.0);
    }
    {
        System sys(tinyParams(2), test::streamingKernel(4, 8, 4.0));
        sys.mem().setTracer(&seq_tracer);
        sys.run(5.0, 10.0);
    }
    EXPECT_LT(rnd_tracer.localityScore(), 0.1);
    EXPECT_GT(seq_tracer.localityScore(), 0.6);
}

TEST(TracerTest, CsvHasHeaderAndRows)
{
    RequestTracer tracer(8);
    tracer.record(1000, 42, ReqType::HwPrefetch, 3, 99.5);
    std::string csv = tracer.toCsv();
    EXPECT_NE(csv.find("when_ns,line_addr,type,core,latency_ns"),
              std::string::npos);
    EXPECT_NE(csv.find("42,HwPrefetch,3,99.50"), std::string::npos);
}

TEST(TracerTest, ClearResets)
{
    RequestTracer tracer(8);
    tracer.record(1, 1, ReqType::DemandLoad, 0, 1.0);
    tracer.clear();
    EXPECT_EQ(tracer.total(), 0u);
    EXPECT_EQ(tracer.size(), 0u);
}

// --- latency percentiles ---------------------------------------------------

TEST(LatencyPercentileTest, OrderedAndNearMean)
{
    System sys(tinyParams(4), test::randomKernel(8, 2.0));
    RunResult r = sys.run(10.0, 20.0);
    EXPECT_GT(r.p50MemLatencyNs, 0.0);
    EXPECT_LE(r.p50MemLatencyNs, r.p95MemLatencyNs);
    EXPECT_LE(r.p95MemLatencyNs, r.p99MemLatencyNs);
    // The mean sits between the median and the p99 for this skew.
    EXPECT_GT(r.p99MemLatencyNs, r.avgMemLatencyNs);
}

} // namespace
} // namespace lll::sim

// --- dgemm extension --------------------------------------------------------

namespace lll::workloads
{
namespace
{

TEST(DgemmTest, RegisteredAsExtension)
{
    // Not part of the paper's six...
    auto all = allWorkloads();
    for (const WorkloadPtr &w : all)
        EXPECT_NE(w->name(), "dgemm");
    // ...but reachable by name.
    WorkloadPtr d = findWorkload("dgemm").take();
    EXPECT_EQ(d->routine(), "dgemm_kernel");
    EXPECT_FALSE(d->randomDominated());
}

TEST(DgemmTest, TilingCollapsesTraffic)
{
    WorkloadPtr d = findWorkload("dgemm").take();
    platforms::Platform skl = platforms::findPlatform("skl").take();
    sim::KernelSpec base = d->spec(skl, {});
    sim::KernelSpec tiled = d->spec(skl, OptSet{Opt::Tiling});
    // The B panel shrinks to a resident block.
    EXPECT_LT(tiled.streams[1].footprintLines,
              base.streams[1].footprintLines / 16);
    EXPECT_GT(tiled.workPerOp, base.workPerOp * 2.0);
}

TEST(DgemmTest, UnrollJamAndVectCompose)
{
    WorkloadPtr d = findWorkload("dgemm").take();
    platforms::Platform knl = platforms::findPlatform("knl").take();
    OptSet t{Opt::Tiling};
    OptSet tj = t.with(Opt::UnrollJam);
    OptSet tjv = tj.with(Opt::Vectorize);
    sim::KernelSpec a = d->spec(knl, t);
    sim::KernelSpec b = d->spec(knl, tj);
    sim::KernelSpec c = d->spec(knl, tjv);
    EXPECT_GT(b.workPerOp, a.workPerOp);
    EXPECT_LT(c.computeCyclesPerOp, b.computeCyclesPerOp);
}

TEST(DgemmTest, WalkEndsComputeBound)
{
    // The §IV-G check on the tiny platform: after the full walk the
    // MSHRQ is far from full at modest bandwidth.
    WorkloadPtr d = findWorkload("dgemm").take();
    platforms::Platform p = platforms::findPlatform("skl").take();
    core::Experiment::Params ep;
    ep.coresUsed = 6;
    ep.warmupUs = 20.0;
    ep.measureUs = 40.0;
    core::Experiment exp(p, *d,
                         lll::test::syntheticProfile("skl", p.peakGBs),
                         ep);
    OptSet full =
        OptSet{Opt::Tiling, Opt::UnrollJam, Opt::Vectorize};
    const core::StageMetrics &m = exp.stage(full);
    EXPECT_LT(m.analysis.nAvg, 0.7 * m.analysis.limitingMshrs);
    EXPECT_GT(exp.speedup(OptSet{Opt::Tiling}, full), 1.5);
}

} // namespace
} // namespace lll::workloads
