/**
 * @file
 * Tests for the cache: hit/miss flows, MSHR interplay, coalescing,
 * backpressure + retry, eviction/writeback, LRU, and the prefetch
 * outcome ladder (start / covered / deferred / chained / dropped).
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/event_queue.hh"
#include "sim/mem_ctrl.hh"

namespace lll::sim
{
namespace
{

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest()
    {
        Cache::Params l1p;
        l1p.name = "l1t";
        l1p.sets = 4;
        l1p.ways = 2;
        l1p.accessLat = nsToTicks(2.0);
        l1p.mshrs = 3;
        l1_ = std::make_unique<Cache>(l1p, eq_, pool_);

        Cache::Params l2p;
        l2p.name = "l2t";
        l2p.sets = 16;
        l2p.ways = 4;
        l2p.accessLat = nsToTicks(6.0);
        l2p.mshrs = 4;
        l2p.prefetchQueue = 2;
        l2_ = std::make_unique<Cache>(l2p, eq_, pool_);

        MemCtrl::Params mp;
        mp.peakGBs = 10.0;
        mp.frontLatencyNs = 20.0;
        mp.bankServiceNs = 12.0;
        mp.backLatencyNs = 3.0;
        mem_ = std::make_unique<MemCtrl>(mp, eq_, pool_);

        l1_->setDownstream(l2_.get());
        l2_->setDownstream(mem_.get());
    }

    /** Install a line without a fetch (arrives as a clean writeback). */
    void
    preload(Cache &c, uint64_t line)
    {
        MemRequest *wb = pool_.alloc();
        wb->lineAddr = line;
        wb->type = ReqType::Writeback;
        ASSERT_TRUE(c.tryAccess(wb));
        // Writeback installs dirty; overwrite flag via a re-fill is not
        // needed for these tests.
    }

    /** Fire a demand load with no owner (completion self-frees). */
    bool
    load(Cache &c, uint64_t line)
    {
        MemRequest *req = pool_.alloc();
        req->lineAddr = line;
        req->type = ReqType::DemandLoad;
        req->issued = eq_.now();
        bool ok = c.tryAccess(req);
        if (!ok)
            pool_.free(req);
        return ok;
    }

    bool
    store(Cache &c, uint64_t line)
    {
        MemRequest *req = pool_.alloc();
        req->lineAddr = line;
        req->type = ReqType::DemandStore;
        bool ok = c.tryAccess(req);
        if (!ok)
            pool_.free(req);
        return ok;
    }

    void settle() { eq_.runUntil(eq_.now() + nsToTicks(10000.0)); }

    EventQueue eq_;
    RequestPool pool_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<MemCtrl> mem_;
};

TEST_F(CacheTest, HitOnResidentLine)
{
    preload(*l1_, 100);
    EXPECT_TRUE(l1_->isResident(100));
    EXPECT_TRUE(load(*l1_, 100));
    settle();
    EXPECT_EQ(l1_->stats().demandHits.value(), 1u);
    EXPECT_EQ(l1_->stats().demandMisses.value(), 0u);
}

TEST_F(CacheTest, MissAllocatesMshrAndFills)
{
    EXPECT_TRUE(load(*l1_, 200));
    EXPECT_EQ(l1_->mshrs().used(), 1u);
    settle();
    EXPECT_EQ(l1_->mshrs().used(), 0u);
    EXPECT_TRUE(l1_->isResident(200));
    EXPECT_EQ(l1_->stats().demandMisses.value(), 1u);
    EXPECT_EQ(mem_->stats().readLines.value(), 1u);
}

TEST_F(CacheTest, MissFillsAllLevels)
{
    load(*l1_, 300);
    settle();
    EXPECT_TRUE(l1_->isResident(300));
    EXPECT_TRUE(l2_->isResident(300));
}

TEST_F(CacheTest, CoalescingSecondMissToSameLine)
{
    load(*l1_, 400);
    load(*l1_, 400);
    EXPECT_EQ(l1_->mshrs().used(), 1u);
    EXPECT_EQ(l1_->stats().demandMshrHits.value(), 1u);
    settle();
    // One memory read despite two demand ops.
    EXPECT_EQ(mem_->stats().readLines.value(), 1u);
}

TEST_F(CacheTest, MshrFullRefusesAndCountsStall)
{
    EXPECT_TRUE(load(*l1_, 1));
    EXPECT_TRUE(load(*l1_, 2));
    EXPECT_TRUE(load(*l1_, 3));
    EXPECT_FALSE(load(*l1_, 4));   // 3 MSHRs
    EXPECT_EQ(l1_->mshrs().fullStalls(), 1u);
}

TEST_F(CacheTest, RetryWaiterFiresWhenMshrFrees)
{
    load(*l1_, 1);
    load(*l1_, 2);
    load(*l1_, 3);
    EXPECT_FALSE(load(*l1_, 4));
    int fired = 0;
    l1_->addRetryWaiter([&] { ++fired; });
    settle();
    EXPECT_GE(fired, 1);
    // Retrying now succeeds.
    EXPECT_TRUE(load(*l1_, 4));
    settle();
    EXPECT_TRUE(l1_->isResident(4));
}

TEST_F(CacheTest, StoreMissMarksLineDirtyAndWritebackOnEviction)
{
    // l1 has 4 sets; lines k*4 map to set 0 (2 ways).
    EXPECT_TRUE(store(*l1_, 0));
    settle();
    EXPECT_TRUE(l1_->isResident(0));
    // Evict line 0 by filling set 0 with two more lines.
    load(*l1_, 4);
    settle();
    load(*l1_, 8);
    settle();
    EXPECT_FALSE(l1_->isResident(0));
    EXPECT_GE(l1_->stats().writebacksOut.value(), 1u);
    // The dirty line landed in L2 (still dirty there).
    EXPECT_TRUE(l2_->isResident(0));
}

TEST_F(CacheTest, LruEvictsLeastRecentlyUsed)
{
    // Fill set 0 (ways=2) with lines 0 and 4, touch 0, insert 8:
    // 4 must be the victim.
    load(*l1_, 0);
    settle();
    load(*l1_, 4);
    settle();
    load(*l1_, 0);   // refresh 0
    settle();
    load(*l1_, 8);
    settle();
    EXPECT_TRUE(l1_->isResident(0));
    EXPECT_FALSE(l1_->isResident(4));
    EXPECT_TRUE(l1_->isResident(8));
}

TEST_F(CacheTest, PrefetchStartsAndFills)
{
    EXPECT_EQ(l2_->tryPrefetch(500, ReqType::HwPrefetch, 0, 0),
              PrefetchOutcome::Started);
    EXPECT_EQ(l2_->mshrs().used(), 1u);
    settle();
    EXPECT_TRUE(l2_->isResident(500));
    EXPECT_EQ(l2_->stats().prefetchFills.value(), 1u);
    // L1 does not see prefetch fills.
    EXPECT_FALSE(l1_->isResident(500));
}

TEST_F(CacheTest, PrefetchCoveredWhenResidentOrInFlight)
{
    preload(*l2_, 600);
    EXPECT_EQ(l2_->tryPrefetch(600, ReqType::HwPrefetch, 0, 0),
              PrefetchOutcome::Covered);
    EXPECT_EQ(l2_->tryPrefetch(601, ReqType::SwPrefetch, 0, 0),
              PrefetchOutcome::Started);
    EXPECT_EQ(l2_->tryPrefetch(601, ReqType::SwPrefetch, 0, 0),
              PrefetchOutcome::Covered);
}

TEST_F(CacheTest, PrefetchDeferredUnderPressureThenServed)
{
    // Fill l2's 4 MSHRs minus reserve(1): 3 allocations allowed for
    // prefetch; the 4th defers.
    EXPECT_EQ(l2_->tryPrefetch(1, ReqType::HwPrefetch, 0, 0),
              PrefetchOutcome::Started);
    EXPECT_EQ(l2_->tryPrefetch(2, ReqType::HwPrefetch, 0, 0),
              PrefetchOutcome::Started);
    EXPECT_EQ(l2_->tryPrefetch(3, ReqType::HwPrefetch, 0, 0),
              PrefetchOutcome::Started);
    EXPECT_EQ(l2_->tryPrefetch(4, ReqType::HwPrefetch, 0, 0),
              PrefetchOutcome::Deferred);
    settle();
    // The deferred prefetch ran once capacity freed.
    EXPECT_TRUE(l2_->isResident(4));
}

TEST_F(CacheTest, PrefetchDroppedWhenQueueFullToo)
{
    for (uint64_t line = 1; line <= 3; ++line)
        l2_->tryPrefetch(line, ReqType::HwPrefetch, 0, 0);
    EXPECT_EQ(l2_->tryPrefetch(4, ReqType::HwPrefetch, 0, 0),
              PrefetchOutcome::Deferred);
    EXPECT_EQ(l2_->tryPrefetch(5, ReqType::HwPrefetch, 0, 0),
              PrefetchOutcome::Deferred);
    // prefetchQueue = 2 -> the next one drops.
    EXPECT_EQ(l2_->tryPrefetch(6, ReqType::HwPrefetch, 0, 0),
              PrefetchOutcome::Dropped);
    EXPECT_EQ(l2_->stats().prefetchDropped.value(), 1u);
    settle();
}

TEST_F(CacheTest, PrefetchChainsToDownstreamCacheUnderPressure)
{
    // Give L1 a downstream cache pointer (L2) and saturate L1 MSHRs.
    l1_->setDownstreamCache(l2_.get());
    load(*l1_, 11);
    load(*l1_, 12);
    EXPECT_TRUE(load(*l1_, 13));   // L1 MSHRs (3) now full
    PrefetchOutcome out = l1_->tryPrefetch(14, ReqType::HwPrefetch, 0, 0);
    EXPECT_EQ(out, PrefetchOutcome::Started);   // started at L2 instead
    settle();
    EXPECT_TRUE(l2_->isResident(14));
    EXPECT_FALSE(l1_->isResident(14));
}

TEST_F(CacheTest, DemandHitOnPrefetchedLineCountsUseful)
{
    l2_->tryPrefetch(700, ReqType::HwPrefetch, 0, 0);
    settle();
    // L1 miss -> L2 hit on the prefetched line.
    load(*l1_, 700);
    settle();
    EXPECT_EQ(l2_->stats().prefetchUseful.value(), 1u);
    EXPECT_TRUE(l1_->isResident(700));
}

TEST_F(CacheTest, DemandCoalescesOntoInFlightPrefetch)
{
    l2_->tryPrefetch(800, ReqType::HwPrefetch, 0, 0);
    // Demand arrives while the prefetch is still in flight.
    load(*l1_, 800);
    settle();
    EXPECT_EQ(mem_->stats().readLines.value(), 1u);   // fetched once
    EXPECT_TRUE(l1_->isResident(800));
    EXPECT_GE(l2_->stats().prefetchUseful.value(), 1u);   // late useful
}

TEST_F(CacheTest, NoRequestsLeak)
{
    for (uint64_t line = 0; line < 64; ++line)
        load(*l1_, line * 3);
    l2_->tryPrefetch(1000, ReqType::SwPrefetch, 0, 0);
    settle();
    EXPECT_EQ(pool_.outstanding(), 0);
}

TEST_F(CacheTest, HashedSetsStillFindLines)
{
    Cache::Params cp;
    cp.name = "hashed";
    cp.sets = 16;
    cp.ways = 2;
    cp.mshrs = 0;
    cp.hashedSets = true;
    Cache c(cp, eq_, pool_);
    c.setDownstream(mem_.get());
    for (uint64_t line = 0; line < 8; ++line) {
        MemRequest *wb = pool_.alloc();
        wb->lineAddr = line;
        wb->type = ReqType::Writeback;
        c.tryAccess(wb);
    }
    for (uint64_t line = 0; line < 8; ++line)
        EXPECT_TRUE(c.isResident(line));
}

TEST_F(CacheTest, StatsReset)
{
    load(*l1_, 5);
    settle();
    l1_->resetStats(eq_.now());
    EXPECT_EQ(l1_->stats().demandMisses.value(), 0u);
    EXPECT_EQ(l1_->mshrs().fullStalls(), 0u);
}

} // namespace
} // namespace lll::sim
