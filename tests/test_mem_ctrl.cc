/**
 * @file
 * Tests for the banked memory controller: idle latency, bandwidth cap,
 * emergent loaded latency, writeback handling, utilization accounting.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/event_queue.hh"
#include "sim/mem_ctrl.hh"

namespace lll::sim
{
namespace
{

class MemCtrlTest : public ::testing::Test
{
  protected:
    MemCtrlTest()
    {
        MemCtrl::Params mp;
        mp.peakGBs = 32.0;        // 0.5 Glines/s at 64B
        mp.frontLatencyNs = 20.0;
        mp.bankServiceNs = 16.0;  // -> 8 banks
        mp.backLatencyNs = 4.0;
        mem_ = std::make_unique<MemCtrl>(mp, eq_, pool_);

        Cache::Params cp;
        cp.name = "sink";
        cp.sets = 4096;
        cp.ways = 8;
        cp.mshrs = 0;
        sink_ = std::make_unique<Cache>(cp, eq_, pool_);
        sink_->setDownstream(mem_.get());
    }

    /** Issue a demand miss through the sink cache into the controller. */
    void
    read(uint64_t line)
    {
        MemRequest *dem = pool_.alloc();
        dem->lineAddr = line;
        dem->type = ReqType::DemandLoad;
        ASSERT_TRUE(sink_->tryAccess(dem));
    }

    void settle() { eq_.runUntil(eq_.now() + nsToTicks(1000000.0)); }

    EventQueue eq_;
    RequestPool pool_;
    std::unique_ptr<MemCtrl> mem_;
    std::unique_ptr<Cache> sink_;
};

TEST_F(MemCtrlTest, BanksDerivedFromPeak)
{
    // 32 GB/s * 16 ns / 64 B = 8 banks.
    EXPECT_EQ(mem_->banks(), 8u);
}

TEST_F(MemCtrlTest, BanksOverride)
{
    MemCtrl::Params mp;
    mp.banksOverride = 3;
    MemCtrl m(mp, eq_, pool_);
    EXPECT_EQ(m.banks(), 3u);
}

TEST_F(MemCtrlTest, IdleLatencyIsFrontPlusServicePlusBack)
{
    read(1);
    settle();
    EXPECT_NEAR(mem_->stats().readLatencyNs.mean(), 20.0 + 16.0 + 4.0,
                0.01);
}

TEST_F(MemCtrlTest, NeverRefuses)
{
    for (uint64_t i = 0; i < 200; ++i)
        read(i);
    // All accepted immediately (the sink cache never saw a refusal).
    EXPECT_EQ(sink_->mshrs().fullStalls(), 0u);
    settle();
}

TEST_F(MemCtrlTest, LatencyRisesUnderBurstLoad)
{
    for (uint64_t i = 0; i < 400; ++i)
        read(i);
    settle();
    // 400 requests over 8 banks: queueing must dominate.
    EXPECT_GT(mem_->stats().readLatencyNs.mean(), 100.0);
    EXPECT_GT(mem_->stats().readLatencyNs.max(),
              mem_->stats().readLatencyNs.min());
}

TEST_F(MemCtrlTest, ThroughputBoundedByPeak)
{
    const Tick t0 = eq_.now();
    for (uint64_t i = 0; i < 2000; ++i)
        read(i);
    settle();
    // Bandwidth measured over the busy interval cannot exceed peak.
    double gbs = 2000.0 * 64.0 /
                 ticksToNs(eq_.now() - t0 > 0 ? eq_.now() - t0 : 1);
    // The drain happens at <= peak; with the final runUntil padding this
    // is loose, so check the service accounting instead.
    EXPECT_LE(mem_->utilization(t0, eq_.now()), 1.0 + 1e-9);
    (void)gbs;
}

TEST_F(MemCtrlTest, WritebacksCountAndFree)
{
    MemRequest *wb = pool_.alloc();
    wb->lineAddr = 77;
    wb->type = ReqType::Writeback;
    EXPECT_TRUE(mem_->tryAccess(wb));
    settle();
    EXPECT_EQ(mem_->stats().writeLines.value(), 1u);
    EXPECT_EQ(mem_->stats().readLines.value(), 0u);
    EXPECT_EQ(pool_.outstanding(), 0);
}

TEST_F(MemCtrlTest, ReadTypeAttribution)
{
    MemRequest *pf = pool_.alloc();
    pf->lineAddr = 5;
    pf->type = ReqType::HwPrefetch;
    pf->origin = sink_.get();
    // Needs a matching MSHR at the sink for the fill.
    const_cast<MshrQueue &>(sink_->mshrs())
        .allocate(5, ReqType::HwPrefetch, eq_.now());
    mem_->tryAccess(pf);
    settle();
    EXPECT_EQ(mem_->stats().hwPrefetchLines.value(), 1u);
    EXPECT_EQ(mem_->stats().demandReadLines.value(), 0u);
}

TEST_F(MemCtrlTest, OutstandingIntegratesOverWindow)
{
    const Tick t0 = eq_.now();
    for (uint64_t i = 0; i < 16; ++i)
        read(i);
    settle();
    double avg = mem_->avgOutstanding(t0, eq_.now());
    EXPECT_GT(avg, 0.0);
}

TEST_F(MemCtrlTest, StatsReset)
{
    read(1);
    settle();
    mem_->resetStats(eq_.now());
    EXPECT_EQ(mem_->stats().readLines.value(), 0u);
    EXPECT_EQ(mem_->stats().readLatencyNs.count(), 0u);
    EXPECT_DOUBLE_EQ(mem_->utilization(eq_.now(), eq_.now() + 100), 0.0);
}

TEST_F(MemCtrlTest, AchievedBandwidthMath)
{
    const Tick t0 = eq_.now();
    for (uint64_t i = 0; i < 100; ++i)
        read(i);
    settle();
    const Tick t1 = eq_.now();
    double expect = 100.0 * 64.0 / ticksToNs(t1 - t0);
    EXPECT_NEAR(mem_->achievedGBs(t0, t1), expect, expect * 0.01);
}

} // namespace
} // namespace lll::sim
