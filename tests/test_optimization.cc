/**
 * @file
 * Tests for optimization sets: algebra, SMT-state exclusivity, labels,
 * and the MLP-direction taxonomy of paper §III-C.
 */

#include <gtest/gtest.h>

#include "workloads/optimization.hh"

namespace lll::workloads
{
namespace
{

TEST(OptSetTest, EmptyIsBase)
{
    OptSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.label(), "base");
    EXPECT_EQ(s.smtWays(), 1u);
}

TEST(OptSetTest, WithAddsInOrder)
{
    OptSet s = OptSet{}.with(Opt::Vectorize).with(Opt::Smt2);
    EXPECT_TRUE(s.has(Opt::Vectorize));
    EXPECT_TRUE(s.has(Opt::Smt2));
    EXPECT_FALSE(s.has(Opt::Tiling));
    EXPECT_EQ(s.label(), "+ vect, 2-ht");
}

TEST(OptSetTest, WithIsIdempotent)
{
    OptSet s = OptSet{}.with(Opt::Tiling).with(Opt::Tiling);
    EXPECT_EQ(s.opts().size(), 1u);
}

TEST(OptSetTest, SmtStatesReplaceEachOther)
{
    OptSet s2 = OptSet{}.with(Opt::Smt2);
    EXPECT_EQ(s2.smtWays(), 2u);
    OptSet s4 = s2.with(Opt::Smt4);
    EXPECT_EQ(s4.smtWays(), 4u);
    EXPECT_FALSE(s4.has(Opt::Smt2));
    OptSet back = s4.with(Opt::Smt2);
    EXPECT_EQ(back.smtWays(), 2u);
    EXPECT_FALSE(back.has(Opt::Smt4));
}

TEST(OptSetTest, InitializerList)
{
    OptSet s{Opt::Vectorize, Opt::SwPrefetchL2};
    EXPECT_TRUE(s.has(Opt::Vectorize));
    EXPECT_TRUE(s.has(Opt::SwPrefetchL2));
    EXPECT_EQ(s.label(), "+ vect, l2-pref");
}

TEST(OptSetTest, Equality)
{
    OptSet a{Opt::Vectorize, Opt::Smt2};
    OptSet b = OptSet{}.with(Opt::Vectorize).with(Opt::Smt2);
    EXPECT_TRUE(a == b);
    OptSet c{Opt::Smt2, Opt::Vectorize};   // order differs
    EXPECT_FALSE(a == c);
}

TEST(OptTest, MlpDirectionTaxonomy)
{
    // Paper §III-C: vectorization, SMT and sw prefetch raise MLP;
    // tiling, fusion and unroll-jam reduce occupancy.
    for (Opt o : {Opt::Vectorize, Opt::Smt2, Opt::Smt4,
                  Opt::SwPrefetchL2}) {
        EXPECT_TRUE(increasesMlp(o)) << optName(o);
        EXPECT_FALSE(reducesOccupancy(o)) << optName(o);
    }
    for (Opt o : {Opt::Tiling, Opt::Fusion, Opt::UnrollJam}) {
        EXPECT_FALSE(increasesMlp(o)) << optName(o);
        EXPECT_TRUE(reducesOccupancy(o)) << optName(o);
    }
    EXPECT_FALSE(increasesMlp(Opt::Distribution));
    EXPECT_FALSE(reducesOccupancy(Opt::Distribution));
}

TEST(OptTest, NamesAreDistinct)
{
    for (Opt a : {Opt::Vectorize, Opt::Smt2, Opt::Smt4, Opt::SwPrefetchL2,
                  Opt::Tiling, Opt::UnrollJam, Opt::Fusion,
                  Opt::Distribution}) {
        for (Opt b : {Opt::Vectorize, Opt::Smt2, Opt::Smt4,
                      Opt::SwPrefetchL2, Opt::Tiling, Opt::UnrollJam,
                      Opt::Fusion, Opt::Distribution}) {
            if (a != b) {
                EXPECT_STRNE(optName(a), optName(b));
                EXPECT_STRNE(optShortName(a), optShortName(b));
            }
        }
    }
}

} // namespace
} // namespace lll::workloads
