/**
 * @file
 * Shared helpers for the unit/integration tests: a scaled-down platform
 * that keeps simulations fast, synthetic latency profiles, and simple
 * kernel builders.
 */

#ifndef LLL_TESTS_TEST_COMMON_HH
#define LLL_TESTS_TEST_COMMON_HH

#include "platforms/platform.hh"
#include "sim/system.hh"
#include "xmem/latency_profile.hh"

namespace lll::test
{

/** A 4-core SKL-like platform for fast tests. */
inline platforms::Platform
tinyPlatform()
{
    platforms::Platform p = platforms::skl();
    p.name = "tiny";
    p.description = "4-core test platform";
    p.totalCores = 4;
    p.peakGBs = 24.0;
    p.peakGFlops = 268.8;
    p.proto.name = "tiny";
    p.proto.mem.peakGBs = 24.0;
    return p;
}

/** A plausible synthetic profile for analyzer/recipe tests. */
inline xmem::LatencyProfile
syntheticProfile(const std::string &platform_name = "tiny",
                 double peak_gbs = 24.0)
{
    std::vector<xmem::LatencyProfile::Point> pts;
    for (double frac : {0.05, 0.2, 0.4, 0.6, 0.75, 0.85, 0.92}) {
        xmem::LatencyProfile::Point pt;
        pt.bwGBs = frac * peak_gbs;
        pt.latencyNs = 80.0 + 120.0 * frac * frac;
        pts.push_back(pt);
    }
    return xmem::LatencyProfile(platform_name, peak_gbs, std::move(pts));
}

/** One random stream, configurable window/compute. */
inline sim::KernelSpec
randomKernel(unsigned window, double compute_cycles,
             uint64_t footprint_lines = 1 << 18)
{
    sim::KernelSpec k;
    k.name = "test-random";
    sim::StreamDesc s;
    s.kind = sim::StreamDesc::Kind::Random;
    s.footprintLines = footprint_lines;
    k.streams.push_back(s);
    k.window = window;
    k.computeCyclesPerOp = compute_cycles;
    return k;
}

/** N sequential streams, configurable window/compute. */
inline sim::KernelSpec
streamingKernel(int streams, unsigned window, double compute_cycles)
{
    sim::KernelSpec k;
    k.name = "test-streaming";
    for (int i = 0; i < streams; ++i) {
        sim::StreamDesc s;
        s.kind = sim::StreamDesc::Kind::Sequential;
        s.footprintLines = 1 << 18;
        k.streams.push_back(s);
    }
    k.window = window;
    k.computeCyclesPerOp = compute_cycles;
    return k;
}

} // namespace lll::test

#endif // LLL_TESTS_TEST_COMMON_HH
