/**
 * @file
 * Tests for the structured error types: code naming, CLI exit-code
 * mapping, printf-style construction, context chaining, and Result<T>
 * value/error semantics (including move-only payloads).
 */

#include <gtest/gtest.h>

#include <memory>

#include "util/status.hh"

namespace lll::util
{
namespace
{

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Ok);
    EXPECT_EQ(s.toString(), "ok");
    EXPECT_TRUE(Status::okStatus().ok());
}

TEST(StatusTest, ErrorCodeNames)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument),
                 "invalid-argument");
    EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "not-found");
    EXPECT_STREQ(errorCodeName(ErrorCode::CorruptData), "corrupt-data");
    EXPECT_STREQ(errorCodeName(ErrorCode::FailedPrecondition),
                 "failed-precondition");
    EXPECT_STREQ(errorCodeName(ErrorCode::OutOfRange), "out-of-range");
    EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io-error");
    EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded),
                 "deadline-exceeded");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

TEST(StatusTest, ExitCodeConvention)
{
    // README "Robustness": 2 usage, 3 bad input data, 4 sim failure.
    EXPECT_EQ(exitCodeFor(ErrorCode::Ok), 0);
    EXPECT_EQ(exitCodeFor(ErrorCode::InvalidArgument), 2);
    EXPECT_EQ(exitCodeFor(ErrorCode::NotFound), 3);
    EXPECT_EQ(exitCodeFor(ErrorCode::CorruptData), 3);
    EXPECT_EQ(exitCodeFor(ErrorCode::FailedPrecondition), 3);
    EXPECT_EQ(exitCodeFor(ErrorCode::OutOfRange), 3);
    EXPECT_EQ(exitCodeFor(ErrorCode::IoError), 3);
    EXPECT_EQ(exitCodeFor(ErrorCode::DeadlineExceeded), 4);
    EXPECT_EQ(exitCodeFor(ErrorCode::Internal), 4);
}

TEST(StatusTest, PrintfConstruction)
{
    Status s = Status::error(ErrorCode::NotFound, "no '%s' in %d places",
                             "thing", 3);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::NotFound);
    EXPECT_EQ(s.message(), "no 'thing' in 3 places");
    EXPECT_EQ(s.toString(), "not-found: no 'thing' in 3 places");
}

TEST(StatusTest, WithContextPrependsFrames)
{
    Status s = Status::error(ErrorCode::CorruptData, "malformed point");
    Status c = s.withContext("line %d", 7).withContext("loading '%s'",
                                                       "x.profile");
    EXPECT_EQ(c.code(), ErrorCode::CorruptData);
    EXPECT_EQ(c.message(), "loading 'x.profile': line 7: malformed point");
}

TEST(StatusTest, WithContextOnOkIsNoop)
{
    Status s = Status::okStatus().withContext("ignored %d", 1);
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.message(), "");
}

TEST(ResultTest, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(*r, 42);
    EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError)
{
    Result<int> r(Status::error(ErrorCode::OutOfRange, "nope"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::OutOfRange);
    EXPECT_EQ(r.valueOr(-1), -1);
}

TEST(ResultTest, ValueOrPassesThroughValue)
{
    Result<int> r(9);
    EXPECT_EQ(r.valueOr(-1), 9);
}

TEST(ResultTest, TakeMovesOutMoveOnlyPayload)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> p = r.take();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 5);
}

TEST(ResultTest, ArrowOperatorReachesMembers)
{
    Result<std::string> r(std::string("abc"));
    EXPECT_EQ(r->size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorPanics)
{
    Result<int> r(Status::error(ErrorCode::Internal, "boom"));
    EXPECT_DEATH(r.value(), "boom");
}

TEST(ResultDeathTest, OkStatusWithoutValuePanics)
{
    EXPECT_DEATH(Result<int>(Status::okStatus()),
                 "OK status without a value");
}

} // namespace
} // namespace lll::util
