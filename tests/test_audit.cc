/**
 * @file
 * The source auditor audited: lexer model, each LLL-SRC-1xx check on
 * the seeded-bad fixture tree (tests/golden/audit_tree), golden text
 * and JSON reports, and the self-test that the *actual* repo is clean.
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit.hh"
#include "audit/source_model.hh"

using namespace lll;
using audit::AuditConfig;
using audit::AuditReport;
using audit::Token;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The injected tables the fixture tree is audited against. */
AuditConfig
fixtureConfig()
{
    AuditConfig config;
    config.root = std::string(LLL_TEST_GOLDEN_DIR) + "/audit_tree";
    // `beta` declares no deps, so its include of alpha/ is the seeded
    // LLL-SRC-101; `gamma` is deliberately absent (LLL-SRC-103).
    config.layers = {{"alpha", {}}, {"beta", {}}};
    config.registeredNames = {"svc.requests_total"};
    config.diagIds = {{"LLL-TST-001", "reserved: test-only diagnostic"}};
    return config;
}

std::vector<std::string>
idsOf(const AuditReport &report)
{
    std::vector<std::string> ids;
    for (const util::Diagnostic &d : report.diagnostics.all())
        ids.push_back(d.id);
    return ids;
}

TEST(LexerTest, StripsCommentsKeepsStringsAndLines)
{
    const std::vector<Token> toks = audit::lexTokens(
        "// a \"comment\"\n/* multi\nline */ id \"lit\" 42 ::x\n");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_TRUE(toks[0].isIdent("id"));
    EXPECT_EQ(toks[0].line, 3);
    EXPECT_EQ(toks[1].kind, Token::Kind::String);
    EXPECT_EQ(toks[1].text, "lit");
    EXPECT_EQ(toks[2].kind, Token::Kind::Number);
    EXPECT_TRUE(toks[3].isPunct("::"));
    EXPECT_TRUE(toks[4].isIdent("x"));
}

TEST(LexerTest, RawStringsAndEscapes)
{
    const std::vector<Token> toks =
        audit::lexTokens("R\"(a \"b\" c)\" \"x\\\"y\"");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0].text, "a \"b\" c");
    EXPECT_EQ(toks[1].text, "x\\\"y");
}

TEST(LexerTest, UnterminatedStringDegradesGracefully)
{
    const std::vector<Token> toks =
        audit::lexTokens("\"open\nnext_line");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, Token::Kind::String);
    EXPECT_TRUE(toks[1].isIdent("next_line"));
}

TEST(LexerTest, ScanIncludes)
{
    const auto incs = audit::scanIncludes(
        "#include \"a/b.hh\"\n  #  include <vector>\n#include x\n");
    ASSERT_EQ(incs.size(), 2u);
    EXPECT_EQ(incs[0].path, "a/b.hh");
    EXPECT_FALSE(incs[0].angled);
    EXPECT_EQ(incs[0].line, 1);
    EXPECT_EQ(incs[1].path, "vector");
    EXPECT_TRUE(incs[1].angled);
}

TEST(AuditTest, FixtureTreeFiresEveryFileLevelCheck)
{
    util::Result<AuditReport> report = audit::runAudit(fixtureConfig());
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_FALSE(report->clean());

    const std::vector<std::string> all = idsOf(*report);
    const std::set<std::string> ids(all.begin(), all.end());
    for (const char *want :
         {"LLL-SRC-101", "LLL-SRC-103", "LLL-SRC-110", "LLL-SRC-111",
          "LLL-SRC-120", "LLL-SRC-121", "LLL-SRC-122"}) {
        EXPECT_TRUE(ids.count(want)) << "missing " << want;
    }
    // Fixture stats double as a lexer regression net.
    EXPECT_EQ(report->stats.files, 3u);
    EXPECT_EQ(report->stats.modules, 2u);
    EXPECT_EQ(report->stats.nameLiterals, 1u);
    EXPECT_EQ(report->stats.idLiterals, 1u);
    EXPECT_EQ(report->stats.declarations, 2u);
}

TEST(AuditTest, GoldenTextReport)
{
    util::Result<AuditReport> report = audit::runAudit(fixtureConfig());
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->renderText(),
              readFile(std::string(LLL_TEST_GOLDEN_DIR) +
                       "/audit_tree.txt"));
}

TEST(AuditTest, GoldenJsonReport)
{
    util::Result<AuditReport> report = audit::runAudit(fixtureConfig());
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->renderJson(),
              readFile(std::string(LLL_TEST_GOLDEN_DIR) +
                       "/audit_tree.json"));
}

TEST(AuditTest, GoldenFixPlan)
{
    util::Result<AuditReport> report = audit::runAudit(fixtureConfig());
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->renderFixPlan(),
              readFile(std::string(LLL_TEST_GOLDEN_DIR) +
                       "/audit_tree_fixplan.txt"));
}

TEST(AuditTest, LayerTableCycleIsReported)
{
    AuditReport report;
    audit::checkLayering({}, {{"a", {"b"}}, {"b", {"a"}}}, report);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics.all()[0].id, "LLL-SRC-102");
}

TEST(AuditTest, ConflictingDiagIdRegistrationIsReported)
{
    AuditConfig config;
    config.diagIds = {{"LLL-TST-001", "one meaning"},
                      {"LLL-TST-001", "another meaning"}};
    AuditReport report;
    audit::checkNameRegistry({}, config, report);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics.all()[0].id, "LLL-SRC-112");
}

TEST(AuditTest, DuplicateDiagIdWithSameMeaningIsFine)
{
    AuditConfig config;
    config.diagIds = {{"LLL-TST-001", "same"}, {"LLL-TST-001", "same"}};
    AuditReport report;
    audit::checkNameRegistry({}, config, report);
    EXPECT_TRUE(report.clean());
}

TEST(AuditTest, FindRepoRootWalksUp)
{
    util::Result<std::string> root =
        audit::findRepoRoot(std::string(LLL_REPO_ROOT) + "/src/util");
    ASSERT_TRUE(root.ok()) << root.status().toString();
    util::Result<std::string> direct = audit::findRepoRoot(LLL_REPO_ROOT);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*root, *direct);
}

TEST(AuditTest, MissingTreeIsAStatusNotAFinding)
{
    AuditConfig config;
    config.root = std::string(LLL_TEST_GOLDEN_DIR) + "/no_such_tree";
    util::Result<AuditReport> report = audit::runAudit(config);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), util::ErrorCode::NotFound);
}

// The teeth of the whole exercise: the repo's own tree must stay
// audit-clean under the default (checked-in) tables.  A regression
// here means a layering break, an unregistered name, or a hygiene
// slip landed in src/ or tools/.
TEST(AuditTest, ActualRepoIsClean)
{
    AuditConfig config;
    config.root = LLL_REPO_ROOT;
    util::Result<AuditReport> report = audit::runAudit(config);
    ASSERT_TRUE(report.ok()) << report.status().toString();
    EXPECT_TRUE(report->clean()) << report->renderText();
    EXPECT_GE(report->stats.files, 100u);
    EXPECT_GE(report->stats.includes, 300u);
    EXPECT_GE(report->stats.declarations, 50u);
}

} // namespace
