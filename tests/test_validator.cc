/**
 * @file
 * Tests for the configuration validator: every shipped platform must
 * self-validate, and each individually broken knob must be rejected
 * with FailedPrecondition and a message naming the knob.
 */

#include <gtest/gtest.h>

#include "sim/validator.hh"
#include "test_common.hh"

namespace lll::sim
{
namespace
{

SystemParams
good()
{
    return test::tinyPlatform().sysParams(2, 1);
}

void
expectRejected(const SystemParams &sp, const char *needle)
{
    util::Status s = validateSystemParams(sp);
    ASSERT_FALSE(s.ok()) << "expected rejection mentioning '" << needle
                         << "'";
    EXPECT_EQ(s.code(), util::ErrorCode::FailedPrecondition);
    EXPECT_NE(s.message().find(needle), std::string::npos)
        << "got: " << s.message();
}

TEST(ValidatorTest, ShippedPlatformsSelfValidate)
{
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        util::Status s = validateSystemParams(p.sysParams(p.totalCores, 1));
        EXPECT_TRUE(s.ok()) << p.name << ": " << s.toString();
    }
    EXPECT_TRUE(validateSystemParams(good()).ok());
}

TEST(ValidatorTest, RejectsBadCoreAndThreadCounts)
{
    SystemParams sp = good();
    sp.cores = 0;
    expectRejected(sp, "cores");

    sp = good();
    sp.threadsPerCore = 0;
    expectRejected(sp, "threadsPerCore");

    sp = good();
    sp.threadsPerCore = 3; // smtCapacity[3] == 0 on the tiny platform
    expectRejected(sp, "SMT");
}

TEST(ValidatorTest, RejectsBadClockAndLine)
{
    SystemParams sp = good();
    sp.freqGHz = 0.0;
    expectRejected(sp, "freqGHz");

    sp = good();
    sp.lineBytes = 48; // not a power of two
    expectRejected(sp, "lineBytes");

    sp = good();
    sp.lqSize = 0;
    expectRejected(sp, "load-queue");
}

TEST(ValidatorTest, RejectsBadCacheGeometry)
{
    SystemParams sp = good();
    sp.l1.sets = 48; // not a power of two
    expectRejected(sp, "sets");

    sp = good();
    sp.l2.ways = 0;
    expectRejected(sp, "ways");

    sp = good();
    sp.l1.mshrs = 0;
    expectRejected(sp, "MSHR");

    sp = good();
    sp.l2.prefetchReserve = sp.l2.mshrs;
    expectRejected(sp, "prefetchReserve");
}

TEST(ValidatorTest, SharedLlcMayHaveUnboundedMshrs)
{
    Cache::Params llc;
    llc.sets = 4096;
    llc.ways = 16;
    llc.mshrs = 0; // legitimate for the LLC
    EXPECT_TRUE(validateCacheParams(llc, "l3", false).ok());
    EXPECT_FALSE(validateCacheParams(llc, "l1", true).ok());
}

TEST(ValidatorTest, RejectsBadPrefetcherKnobs)
{
    SystemParams sp = good();
    sp.l2PrefetcherEnabled = true;
    sp.pf.degree = 0;
    expectRejected(sp, "degree");

    // The same knob is fine when the prefetcher is off.
    sp.l2PrefetcherEnabled = false;
    EXPECT_TRUE(validateSystemParams(sp).ok());
}

TEST(ValidatorTest, RejectsBadMemoryController)
{
    SystemParams sp = good();
    sp.mem.peakGBs = -1.0;
    expectRejected(sp, "peakGBs");

    sp = good();
    sp.mem.bankServiceNs = 0.0;
    expectRejected(sp, "bankServiceNs");
}

TEST(ValidatorTest, RejectsBankMathBelowDeclaredPeak)
{
    // One bank serving a 64B line every bankServiceNs cannot sustain
    // the tiny platform's 24 GB/s peak.
    SystemParams sp = good();
    sp.mem.banksOverride = 1;
    expectRejected(sp, "banks");
}

TEST(ValidatorTest, RejectsBadWatchdogKnobs)
{
    SystemParams sp = good();
    sp.watchdog.cadenceUs = 0.0;
    expectRejected(sp, "watchdog");

    sp = good();
    sp.watchdog.maxStrikes = 0;
    expectRejected(sp, "maxStrikes");
}

TEST(ValidatorTest, AcceptsGoodKernels)
{
    EXPECT_TRUE(validateKernelSpec(test::randomKernel(8, 4.0)).ok());
    EXPECT_TRUE(validateKernelSpec(test::streamingKernel(3, 8, 4.0)).ok());
}

TEST(ValidatorTest, RejectsBadKernels)
{
    KernelSpec k = test::randomKernel(8, 4.0);
    k.streams.clear();
    EXPECT_EQ(validateKernelSpec(k).code(),
              util::ErrorCode::FailedPrecondition);

    k = test::randomKernel(8, 4.0);
    k.window = 0;
    EXPECT_FALSE(validateKernelSpec(k).ok());

    k = test::randomKernel(8, 4.0);
    k.computeCyclesPerOp = -1.0;
    EXPECT_FALSE(validateKernelSpec(k).ok());

    k = test::randomKernel(8, 4.0);
    k.streams[0].footprintLines = 0;
    EXPECT_FALSE(validateKernelSpec(k).ok());

    k = test::randomKernel(8, 4.0);
    k.streams[0].weight = 0.0;
    EXPECT_FALSE(validateKernelSpec(k).ok());

    k = test::randomKernel(8, 4.0);
    k.streams[0].kind = StreamDesc::Kind::Strided;
    k.streams[0].strideLines = 0;
    EXPECT_FALSE(validateKernelSpec(k).ok());

    k = test::randomKernel(8, 4.0);
    k.streams[0].reuseFraction = 1.5;
    EXPECT_FALSE(validateKernelSpec(k).ok());
}

} // namespace
} // namespace lll::sim
