/**
 * @file
 * Tests for the forward-progress watchdog: a healthy run is untouched,
 * a wedged event queue trips DeadlineExceeded with a diagnostic
 * snapshot (instead of hanging), and the trip is visible through the
 * metric registry as sim_errors_total.
 */

#include <gtest/gtest.h>

#include "obs/export.hh"
#include "sim/system.hh"
#include "test_common.hh"

namespace lll::sim
{
namespace
{

SystemParams
tinySys()
{
    SystemParams sp = test::tinyPlatform().sysParams(1, 1);
    sp.watchdog.cadenceUs = 1.0;
    sp.watchdog.maxStrikes = 2;
    return sp;
}

/** A kernel whose first compute phase outlasts the whole run: the
 *  event queue legitimately goes quiet — the wedge the watchdog exists
 *  to catch. */
KernelSpec
wedgedKernel()
{
    return test::randomKernel(4, 1e12, 1 << 14);
}

TEST(WatchdogTest, HealthyRunPassesUnchanged)
{
    System sys(tinySys(), test::randomKernel(4, 4.0, 1 << 14));
    util::Result<RunResult> r = sys.runChecked(2.0, 5.0);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_GT(r->throughput, 0.0);
    EXPECT_GT(r->eventsProcessed, 0u);
}

TEST(WatchdogTest, WedgedRunTripsDeadlineExceeded)
{
    System sys(tinySys(), wedgedKernel());
    util::Result<RunResult> r = sys.runChecked(2.0, 5.0);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::ErrorCode::DeadlineExceeded);
    // The error carries the diagnostic snapshot.
    EXPECT_NE(r.status().message().find("events="), std::string::npos);
    EXPECT_NE(r.status().message().find("mem_outstanding="),
              std::string::npos);
}

TEST(WatchdogTest, TripIncrementsSimErrorsTotal)
{
    obs::MetricRegistry reg;
    System sys(tinySys(), wedgedKernel());
    sys.attachObservability(reg);
    util::Result<RunResult> r = sys.runChecked(2.0, 5.0);
    ASSERT_FALSE(r.ok());
    EXPECT_GE(reg.counter("sim_errors_total").value(), 1u);
    // The stall annotation makes the trip visible in JSON exports.
    std::string json = obs::exportJson(reg);
    EXPECT_NE(json.find("sim_errors_total"), std::string::npos);
    EXPECT_NE(json.find("sim.watchdog.stall"), std::string::npos);
}

TEST(WatchdogTest, HealthyRunLeavesSimErrorsAtZero)
{
    obs::MetricRegistry reg;
    System sys(tinySys(), test::randomKernel(4, 4.0, 1 << 14));
    sys.attachObservability(reg);
    util::Result<RunResult> r = sys.runChecked(2.0, 5.0);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(reg.counter("sim_errors_total").value(), 0u);
}

TEST(WatchdogTest, DisabledWatchdogStillRunsHealthyKernels)
{
    SystemParams sp = tinySys();
    sp.watchdog.enabled = false;
    System sys(sp, test::randomKernel(4, 4.0, 1 << 14));
    util::Result<RunResult> r = sys.runChecked(2.0, 5.0);
    ASSERT_TRUE(r.ok()) << r.status().toString();
}

TEST(WatchdogTest, DiagnosticSnapshotShape)
{
    System sys(tinySys(), test::randomKernel(4, 4.0, 1 << 14));
    std::string snap = sys.diagnosticSnapshot();
    EXPECT_NE(snap.find("events="), std::string::npos);
    EXPECT_NE(snap.find("pending="), std::string::npos);
    EXPECT_NE(snap.find("l1_mshrs="), std::string::npos);
}

TEST(WatchdogTest, LegacyRunStillWorks)
{
    System sys(tinySys(), test::randomKernel(4, 4.0, 1 << 14));
    RunResult r = sys.run(2.0, 5.0);
    EXPECT_GT(r.throughput, 0.0);
}

} // namespace
} // namespace lll::sim
