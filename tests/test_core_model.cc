/**
 * @file
 * Tests for the core compute model: single-thread pipeline rate,
 * aggregate SMT capacity, the capacity curve, and ordering.
 */

#include <gtest/gtest.h>

#include "sim/core_model.hh"
#include "sim/event_queue.hh"

namespace lll::sim
{
namespace
{

CoreModel::Params
params(double st_rate, double cap2, unsigned threads, double freq = 1.0)
{
    CoreModel::Params p;
    p.freqGHz = freq;
    p.smtCapacity = {0.0, st_rate, cap2, 0.0, 0.0};
    p.threads = threads;
    return p;
}

TEST(CoreModelTest, PeriodFromFrequency)
{
    EventQueue eq;
    CoreModel c(params(1.0, 1.0, 1, 2.0), eq);
    EXPECT_EQ(c.period(), 500u);
}

TEST(CoreModelTest, ZeroCyclesCompletesImmediately)
{
    EventQueue eq;
    CoreModel c(params(1.0, 1.0, 1), eq);
    Tick done = 0;
    c.compute(0, 0.0, [&] { done = eq.now(); });
    eq.runUntil(10);
    EXPECT_EQ(done, 0u);
}

TEST(CoreModelTest, SingleThreadRateGovernsBackToBack)
{
    // stRate 0.5 at 1 GHz: 10 cycles of work take 20 ns each.
    EventQueue eq;
    CoreModel c(params(0.5, 1.0, 1), eq);
    std::vector<Tick> done;
    std::function<void()> next = [&] {
        done.push_back(eq.now());
        if (done.size() < 4)
            c.compute(0, 10.0, next);
    };
    c.compute(0, 10.0, next);
    eq.runUntil(nsToTicks(1000));
    ASSERT_EQ(done.size(), 4u);
    for (size_t i = 1; i < done.size(); ++i)
        EXPECT_EQ(done[i] - done[i - 1], nsToTicks(20.0));
}

TEST(CoreModelTest, TwoThreadsShareAggregateCapacity)
{
    // stRate 0.5, cap2 1.0 at 1 GHz: two threads each doing 10-cycle
    // blocks sustain 1.0 work/cycle combined -> 10 ns per block pair
    // member in steady state.
    EventQueue eq;
    CoreModel c(params(0.5, 1.0, 2), eq);
    int done0 = 0, done1 = 0;
    std::function<void()> loop0 = [&] {
        ++done0;
        c.compute(0, 10.0, loop0);
    };
    std::function<void()> loop1 = [&] {
        ++done1;
        c.compute(1, 10.0, loop1);
    };
    c.compute(0, 10.0, loop0);
    c.compute(1, 10.0, loop1);
    eq.runUntil(nsToTicks(2000));
    // Each thread: 2000ns / 20ns-per-block (its own 0.5 rate) = 100.
    EXPECT_NEAR(done0, 100, 3);
    EXPECT_NEAR(done1, 100, 3);
    // Combined throughput 200 blocks = the full 1.0 capacity.
    EXPECT_NEAR(done0 + done1, 200, 5);
}

TEST(CoreModelTest, CapacityBindsWhenBelowSumOfThreads)
{
    // stRate 0.5 but cap2 only 0.6: two threads can't double.
    EventQueue eq;
    CoreModel c(params(0.5, 0.6, 2), eq);
    int done = 0;
    std::function<void()> loop0 = [&] { ++done; c.compute(0, 10.0, loop0); };
    std::function<void()> loop1 = [&] { ++done; c.compute(1, 10.0, loop1); };
    c.compute(0, 10.0, loop0);
    c.compute(1, 10.0, loop1);
    eq.runUntil(nsToTicks(2000));
    // 0.6 work/cycle -> 120 blocks of 10 cycles in 2000 ns.
    EXPECT_NEAR(done, 120, 5);
}

TEST(CoreModelTest, CapacityCurveInheritsUnsetEntries)
{
    EventQueue eq;
    CoreModel::Params p;
    p.freqGHz = 1.0;
    p.smtCapacity = {0.0, 0.4, 0.0, 0.0, 0.0};   // only entry 1 given
    p.threads = 4;
    CoreModel c(p, eq);   // must not die: entries inherit 0.4
    int done = 0;
    std::function<void()> loop = [&] { ++done; c.compute(0, 4.0, loop); };
    c.compute(0, 4.0, loop);
    eq.runUntil(nsToTicks(100));
    EXPECT_GT(done, 0);
}

TEST(CoreModelTest, IdleThreadDoesNotBlockOthers)
{
    EventQueue eq;
    CoreModel c(params(0.5, 1.0, 2), eq);
    Tick done = 0;
    c.compute(1, 10.0, [&] { done = eq.now(); });
    eq.runUntil(nsToTicks(100));
    EXPECT_EQ(done, nsToTicks(20.0));   // thread-1 rate, no thread-0
}

TEST(CoreModelDeathTest, BadThreadIdPanics)
{
    EventQueue eq;
    CoreModel c(params(0.5, 1.0, 1), eq);
    EXPECT_DEATH(c.compute(3, 1.0, [] {}), "bad thread");
}

TEST(CoreModelDeathTest, TooManyThreadsPanics)
{
    EventQueue eq;
    EXPECT_DEATH(CoreModel(params(0.5, 1.0, 9), eq), "threads");
}

} // namespace
} // namespace lll::sim
