/**
 * @file
 * Tests for the six workload models: well-formed specs on every
 * platform, documented optimization effects, valid paper walks, and the
 * registry.
 */

#include <gtest/gtest.h>

#include "platforms/platform.hh"
#include "workloads/workload.hh"

namespace lll::workloads
{
namespace
{

struct Combo
{
    std::string workload;
    std::string platform;
};

class WorkloadSpecTest : public ::testing::TestWithParam<Combo>
{
  protected:
    WorkloadPtr w_ = findWorkload(GetParam().workload).take();
    platforms::Platform p_ =
        platforms::findPlatform(GetParam().platform).take();
};

TEST_P(WorkloadSpecTest, BaseSpecWellFormed)
{
    sim::KernelSpec k = w_->spec(p_, OptSet{});
    ASSERT_FALSE(k.streams.empty());
    double total_weight = 0.0;
    for (const sim::StreamDesc &s : k.streams) {
        EXPECT_GT(s.weight, 0.0);
        EXPECT_GT(s.footprintLines, 0u);
        EXPECT_LE(s.footprintLines, 1ULL << 23);
        EXPECT_GE(s.reuseFraction, 0.0);
        EXPECT_LE(s.reuseFraction, 1.0);
        total_weight += s.weight;
    }
    EXPECT_GT(total_weight, 0.0);
    EXPECT_GE(k.window, 1u);
    EXPECT_GT(k.computeCyclesPerOp, 0.0);
    EXPECT_GT(k.workPerOp, 0.0);
}

TEST_P(WorkloadSpecTest, AllPaperStagesWellFormed)
{
    for (const ExperimentRow &row : w_->paperRows(p_)) {
        sim::KernelSpec k = w_->spec(p_, row.source);
        EXPECT_FALSE(k.streams.empty()) << row.source.label();
        if (row.applied) {
            sim::KernelSpec k2 = w_->spec(p_, *row.applied);
            EXPECT_FALSE(k2.streams.empty());
        }
    }
}

TEST_P(WorkloadSpecTest, PaperWalkRespectsSmtLimits)
{
    for (const ExperimentRow &row : w_->paperRows(p_)) {
        EXPECT_LE(row.source.smtWays(), p_.maxSmtWays)
            << row.source.label();
        if (row.applied) {
            EXPECT_LE(row.applied->smtWays(), p_.maxSmtWays);
        }
    }
}

TEST_P(WorkloadSpecTest, AppliedExtendsSource)
{
    for (const ExperimentRow &row : w_->paperRows(p_)) {
        if (!row.applied)
            continue;
        // The applied variant contains everything the source had (SMT
        // levels may be swapped 2->4).
        for (Opt o : row.source.opts()) {
            if (o == Opt::Smt2 && row.applied->has(Opt::Smt4))
                continue;
            EXPECT_TRUE(row.applied->has(o))
                << row.source.label() << " -> " << row.applied->label();
        }
        EXPECT_FALSE(*row.applied == row.source);
    }
}

TEST_P(WorkloadSpecTest, SmtPartitionsPrivateFootprints)
{
    if (p_.maxSmtWays < 2)
        GTEST_SKIP() << "no SMT on " << p_.name;
    sim::KernelSpec base = w_->spec(p_, OptSet{});
    sim::KernelSpec smt = w_->spec(p_, OptSet{Opt::Smt2});
    for (size_t i = 0; i < base.streams.size(); ++i) {
        if (base.streams[i].sharedAcrossThreads)
            continue;
        if (base.streams[i].footprintLines <= 1024)
            continue;   // resident working sets are not partitioned
        EXPECT_LE(smt.streams[i].footprintLines,
                  base.streams[i].footprintLines);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, WorkloadSpecTest,
    ::testing::Values(
        Combo{"isx", "skl"}, Combo{"isx", "knl"}, Combo{"isx", "a64fx"},
        Combo{"hpcg", "skl"}, Combo{"hpcg", "knl"},
        Combo{"hpcg", "a64fx"}, Combo{"pennant", "skl"},
        Combo{"pennant", "knl"}, Combo{"pennant", "a64fx"},
        Combo{"comd", "skl"}, Combo{"comd", "knl"},
        Combo{"comd", "a64fx"}, Combo{"minighost", "skl"},
        Combo{"minighost", "knl"}, Combo{"minighost", "a64fx"},
        Combo{"snap", "skl"}, Combo{"snap", "knl"},
        Combo{"snap", "a64fx"}),
    [](const ::testing::TestParamInfo<Combo> &info) {
        return info.param.workload + "_" + info.param.platform;
    });

TEST(WorkloadRegistryTest, AllSixInPaperOrder)
{
    auto all = allWorkloads();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0]->name(), "isx");
    EXPECT_EQ(all[1]->name(), "hpcg");
    EXPECT_EQ(all[2]->name(), "pennant");
    EXPECT_EQ(all[3]->name(), "comd");
    EXPECT_EQ(all[4]->name(), "minighost");
    EXPECT_EQ(all[5]->name(), "snap");
}

TEST(WorkloadRegistryTest, RoutinesMatchTableII)
{
    EXPECT_EQ(findWorkload("isx").take()->routine(), "count_local_keys");
    EXPECT_EQ(findWorkload("hpcg").take()->routine(), "ComputeSPMV_ref");
    EXPECT_EQ(findWorkload("pennant").take()->routine(), "setCornerDiv");
    EXPECT_EQ(findWorkload("comd").take()->routine(), "eamForce");
    EXPECT_EQ(findWorkload("minighost").take()->routine(),
              "mg_stencil_3d27pt");
    EXPECT_EQ(findWorkload("snap").take()->routine(), "dim3_sweep");
}

TEST(WorkloadRegistryTest, AccessClassesMatchPaper)
{
    EXPECT_TRUE(findWorkload("isx").take()->randomDominated());
    EXPECT_TRUE(findWorkload("pennant").take()->randomDominated());
    EXPECT_TRUE(findWorkload("comd").take()->randomDominated());
    EXPECT_FALSE(findWorkload("hpcg").take()->randomDominated());
    EXPECT_FALSE(findWorkload("minighost").take()->randomDominated());
    EXPECT_FALSE(findWorkload("snap").take()->randomDominated());
}

TEST(WorkloadRegistryTest, UnknownNameIsNotFound)
{
    util::Result<WorkloadPtr> r = findWorkload("lulesh");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::ErrorCode::NotFound);
    EXPECT_NE(r.status().message().find("unknown workload"),
              std::string::npos);
}

TEST(WorkloadEffectTest, IsxVectorizationWidensWindow)
{
    WorkloadPtr w = findWorkload("isx").take();
    platforms::Platform skl = platforms::findPlatform("skl").take();
    sim::KernelSpec base = w->spec(skl, OptSet{});
    sim::KernelSpec vect = w->spec(skl, OptSet{Opt::Vectorize});
    EXPECT_GT(vect.window, base.window);
    EXPECT_LT(vect.computeCyclesPerOp, base.computeCyclesPerOp);
}

TEST(WorkloadEffectTest, IsxPrefetchTargetsRandomStream)
{
    WorkloadPtr w = findWorkload("isx").take();
    platforms::Platform knl = platforms::findPlatform("knl").take();
    sim::KernelSpec pref = w->spec(knl, OptSet{Opt::SwPrefetchL2});
    EXPECT_TRUE(pref.swPrefetchL2);
    bool random_flagged = false;
    for (const sim::StreamDesc &s : pref.streams) {
        if (s.kind == sim::StreamDesc::Kind::Random && !s.store)
            random_flagged |= s.swPrefetchable;
    }
    EXPECT_TRUE(random_flagged);
}

TEST(WorkloadEffectTest, MinighostTilingRaisesWorkPerOp)
{
    WorkloadPtr w = findWorkload("minighost").take();
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        sim::KernelSpec base = w->spec(p, OptSet{});
        sim::KernelSpec tiled = w->spec(p, OptSet{Opt::Tiling});
        EXPECT_GE(tiled.workPerOp, base.workPerOp) << p.name;
        EXPECT_LT(tiled.streams.size(), base.streams.size()) << p.name;
    }
}

TEST(WorkloadEffectTest, PennantVectorizationUnlocksMlpAndCoalesces)
{
    WorkloadPtr w = findWorkload("pennant").take();
    platforms::Platform knl = platforms::findPlatform("knl").take();
    sim::KernelSpec base = w->spec(knl, OptSet{});
    sim::KernelSpec vect = w->spec(knl, OptSet{Opt::Vectorize});
    EXPECT_GE(vect.window, base.window * 2);
    EXPECT_GT(vect.workPerOp, base.workPerOp);
}

TEST(WorkloadEffectTest, SnapDistributionOnlyHelpsA64fx)
{
    WorkloadPtr w = findWorkload("snap").take();
    platforms::Platform a = platforms::findPlatform("a64fx").take();
    sim::KernelSpec fused = w->spec(a, OptSet{});
    sim::KernelSpec distr = w->spec(a, OptSet{Opt::Distribution});
    EXPECT_LT(distr.computeCyclesPerOp, fused.computeCyclesPerOp);

    platforms::Platform skl = platforms::findPlatform("skl").take();
    sim::KernelSpec f2 = w->spec(skl, OptSet{});
    sim::KernelSpec d2 = w->spec(skl, OptSet{Opt::Distribution});
    EXPECT_DOUBLE_EQ(d2.computeCyclesPerOp, f2.computeCyclesPerOp);
}

TEST(WorkloadEffectTest, ComdIsComputeDominated)
{
    WorkloadPtr w = findWorkload("comd").take();
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        sim::KernelSpec k = w->spec(p, OptSet{});
        EXPECT_GT(k.computeCyclesPerOp, 20.0) << p.name;
        EXPECT_LE(k.window, 4u) << p.name;
    }
}

TEST(WorkloadEffectTest, DescriptionsMatchTableII)
{
    EXPECT_EQ(findWorkload("isx").take()->description(),
              "Scalable Integer Sort");
    EXPECT_EQ(findWorkload("hpcg").take()->problemSize(), "40^3");
    EXPECT_NE(findWorkload("snap").take()->problemSize().find("nang=48"),
              std::string::npos);
}

} // namespace
} // namespace lll::workloads
