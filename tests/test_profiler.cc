/**
 * @file
 * Unit tests for obs::Profiler: folding span-path aggregates into the
 * wall-clock attribution tree (inclusive/exclusive math, synthesized
 * parents, coverage, hot ranking) and the determinism contract — two
 * identical runs produce an identical tree shape.
 */

#include <gtest/gtest.h>

#include "obs/profiler.hh"
#include "obs/span.hh"

using namespace lll;

namespace
{

obs::SpanTracker::Stat
stat(const std::string &path, unsigned depth, uint64_t count,
     double wall_ns)
{
    obs::SpanTracker::Stat s;
    s.path = path;
    s.depth = depth;
    s.count = count;
    s.wallNs = wall_ns;
    return s;
}

/** Flatten the tree's paths in pre-order (the shape fingerprint). */
void
collectPaths(const obs::ProfileNode &node, std::vector<std::string> *out)
{
    out->push_back(node.path);
    for (const obs::ProfileNode &c : node.children)
        collectPaths(c, out);
}

const obs::ProfileNode *
findChild(const obs::ProfileNode &node, const std::string &name)
{
    for (const obs::ProfileNode &c : node.children) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

} // namespace

TEST(Profiler, InclusiveExclusiveMath)
{
    std::vector<obs::SpanTracker::Stat> stats = {
        stat("run", 1, 1, 1000.0),
        stat("run/simulate", 2, 4, 700.0),
        stat("run/respond", 2, 4, 100.0),
    };
    obs::Profiler::Report r = obs::Profiler::build(stats, 1200.0);

    EXPECT_DOUBLE_EQ(r.wallNs, 1200.0);
    EXPECT_DOUBLE_EQ(r.attributedNs, 1000.0);
    EXPECT_NEAR(r.coverage(), 1000.0 / 1200.0, 1e-12);

    // Root: synthetic "total", exclusive = wall - attributed.
    EXPECT_EQ(r.root.name, "total");
    EXPECT_DOUBLE_EQ(r.root.inclusiveNs, 1200.0);
    EXPECT_DOUBLE_EQ(r.root.exclusiveNs, 200.0);

    const obs::ProfileNode *run = findChild(r.root, "run");
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->count, 1u);
    EXPECT_DOUBLE_EQ(run->inclusiveNs, 1000.0);
    // run exclusive = 1000 - (700 + 100).
    EXPECT_DOUBLE_EQ(run->exclusiveNs, 200.0);
    ASSERT_EQ(run->children.size(), 2u);
    // Children ordered by path, not by time: respond < simulate.
    EXPECT_EQ(run->children[0].name, "respond");
    EXPECT_EQ(run->children[1].name, "simulate");
    EXPECT_DOUBLE_EQ(run->children[1].exclusiveNs, 700.0);
}

TEST(Profiler, SynthesizesMissingParents)
{
    // Only the leaf path was recorded; "a" and "a/b" must be
    // synthesized with zero count and their child's inclusive time.
    std::vector<obs::SpanTracker::Stat> stats = {
        stat("a/b/c", 3, 2, 500.0),
    };
    obs::Profiler::Report r = obs::Profiler::build(stats, 500.0);

    const obs::ProfileNode *a = findChild(r.root, "a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->count, 0u);
    EXPECT_DOUBLE_EQ(a->inclusiveNs, 500.0);
    EXPECT_DOUBLE_EQ(a->exclusiveNs, 0.0);
    const obs::ProfileNode *b = findChild(*a, "b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->count, 0u);
    const obs::ProfileNode *c = findChild(*b, "c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->count, 2u);
    EXPECT_DOUBLE_EQ(c->exclusiveNs, 500.0);
    EXPECT_DOUBLE_EQ(r.attributedNs, 500.0);
}

TEST(Profiler, ExclusiveClampsAtZero)
{
    // Children can aggregate more wall time than the parent measured
    // (clock granularity); exclusive clamps at zero instead of going
    // negative.
    std::vector<obs::SpanTracker::Stat> stats = {
        stat("p", 1, 1, 100.0),
        stat("p/q", 2, 1, 150.0),
    };
    obs::Profiler::Report r = obs::Profiler::build(stats, 100.0);
    const obs::ProfileNode *p = findChild(r.root, "p");
    ASSERT_NE(p, nullptr);
    EXPECT_DOUBLE_EQ(p->exclusiveNs, 0.0);
}

TEST(Profiler, HotPathsRankByExclusiveTime)
{
    std::vector<obs::SpanTracker::Stat> stats = {
        stat("fast", 1, 1, 10.0),
        stat("slow", 1, 1, 900.0),
        stat("slow/inner", 2, 3, 250.0),
    };
    obs::Profiler::Report r = obs::Profiler::build(stats, 1000.0);
    std::vector<const obs::ProfileNode *> hot = r.hotPaths(2);
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0]->path, "slow");             // 650 exclusive
    EXPECT_DOUBLE_EQ(hot[0]->exclusiveNs, 650.0);
    EXPECT_EQ(hot[1]->path, "slow/inner");       // 250 exclusive
    // The limit is honored even though "fast" has exclusive time too.
    EXPECT_GE(r.hotPaths(10).size(), 3u);
}

TEST(Profiler, TreeShapeIsDeterministic)
{
    // The determinism contract: two runs that execute the same spans
    // produce an identical tree shape (paths, order, counts), however
    // much the measured wall times differ between the runs.
    auto run_once = [] {
        obs::SpanTracker t;
        for (int i = 0; i < 3; ++i) {
            obs::ScopedSpan outer("outer", t);
            obs::ScopedSpan mid("mid", t);
            obs::ScopedSpan inner("inner", t);
        }
        {
            obs::ScopedSpan outer("outer", t);
            obs::ScopedSpan other("zeta", t);
        }
        return t.stats();
    };

    obs::Profiler::Report a = obs::Profiler::build(run_once(), 1.0);
    obs::Profiler::Report b = obs::Profiler::build(run_once(), 2.0);

    std::vector<std::string> paths_a, paths_b;
    collectPaths(a.root, &paths_a);
    collectPaths(b.root, &paths_b);
    EXPECT_EQ(paths_a, paths_b);

    // Counts are part of the shape too.
    const obs::ProfileNode *outer_a = findChild(a.root, "outer");
    const obs::ProfileNode *outer_b = findChild(b.root, "outer");
    ASSERT_NE(outer_a, nullptr);
    ASSERT_NE(outer_b, nullptr);
    EXPECT_EQ(outer_a->count, outer_b->count);
    ASSERT_EQ(outer_a->children.size(), 2u);
    // Ordered by path: "mid" before "zeta" regardless of entry order.
    EXPECT_EQ(outer_a->children[0].name, "mid");
    EXPECT_EQ(outer_a->children[1].name, "zeta");
}

TEST(Profiler, BuildRecordsItsOwnCost)
{
    obs::CounterMetric self;
    std::vector<obs::SpanTracker::Stat> stats = {stat("x", 1, 1, 5.0)};
    obs::Profiler::Report r = obs::Profiler::build(stats, 10.0, &self);
    EXPECT_GE(r.buildNs, 0.0);
    // The build cost was charged to the self-overhead counter.
    EXPECT_GE(self.value(), static_cast<uint64_t>(r.buildNs));
}

TEST(Profiler, RenderersAreWellFormed)
{
    std::vector<obs::SpanTracker::Stat> stats = {
        stat("run", 1, 1, 1000.0),
        stat("run/simulate", 2, 4, 700.0),
    };
    obs::Profiler::Report r = obs::Profiler::build(stats, 1000.0);

    const std::string text = obs::Profiler::renderText(r, 5);
    EXPECT_NE(text.find("total"), std::string::npos);
    EXPECT_NE(text.find("run/simulate"), std::string::npos);
    EXPECT_NE(text.find("hot paths"), std::string::npos);

    const std::string json = obs::Profiler::renderJson(r, 5);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"tree\""), std::string::npos);
    EXPECT_NE(json.find("\"hot\""), std::string::npos);
    // Balanced braces — renderJson output nests into the envelope.
    int depth = 0;
    for (char ch : json) {
        if (ch == '{')
            ++depth;
        if (ch == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}
