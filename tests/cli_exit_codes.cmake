# Asserts the CLI exit-code contract documented in README "Robustness":
#   2 = usage error (unknown command/flag/malformed request)
#   3 = bad input data (unknown workload/platform, corrupt profile)
# Run via: cmake -DLLL_BIN=<path-to-lll> -P cli_exit_codes.cmake

function(expect_exit code)
    execute_process(COMMAND ${LLL_BIN} ${ARGN}
                    RESULT_VARIABLE got
                    OUTPUT_QUIET ERROR_QUIET)
    if(NOT got EQUAL ${code})
        message(FATAL_ERROR
                "lll ${ARGN}: expected exit ${code}, got ${got}")
    endif()
endfunction()

expect_exit(2 frobnicate)                    # unknown command
expect_exit(2)                               # no command at all
expect_exit(2 analyze)                       # missing operands
expect_exit(2 analyze isx skl --bogus)       # unknown flag
expect_exit(2 analyze isx skl nonsense-opt)  # unknown optimization
expect_exit(2 selftest --iterations nope)    # malformed flag value
expect_exit(2 selftest --iterations)         # dangling flag
expect_exit(3 analyze isx nope)              # unknown platform
expect_exit(3 analyze nope skl)              # unknown workload
