# Asserts the CLI exit-code contract documented in README "Robustness":
#   2 = usage error (unknown command/flag/malformed request)
#   3 = bad input data (unknown workload/platform, corrupt profile)
# Run via: cmake -DLLL_BIN=<path-to-lll> -P cli_exit_codes.cmake

function(expect_exit code)
    execute_process(COMMAND ${LLL_BIN} ${ARGN}
                    RESULT_VARIABLE got
                    OUTPUT_QUIET ERROR_QUIET)
    if(NOT got EQUAL ${code})
        message(FATAL_ERROR
                "lll ${ARGN}: expected exit ${code}, got ${got}")
    endif()
endfunction()

expect_exit(2 frobnicate)                    # unknown command
expect_exit(2)                               # no command at all
expect_exit(2 analyze)                       # missing operands
expect_exit(2 analyze isx skl --bogus)       # unknown flag
expect_exit(2 analyze isx skl nonsense-opt)  # unknown optimization
expect_exit(2 selftest --iterations nope)    # malformed flag value
expect_exit(2 selftest --iterations)         # dangling flag
expect_exit(3 analyze isx nope)              # unknown platform
expect_exit(3 analyze nope skl)              # unknown workload

# Unknown flags/operands after a valid subcommand are usage errors on
# every subcommand, not just analyze.
expect_exit(2 platforms --bogus)
expect_exit(2 workloads --bogus)
expect_exit(2 vendors extra)
expect_exit(2 characterize skl --bogus)
expect_exit(2 walk isx skl --bogus)
expect_exit(2 table isx extra)
expect_exit(2 roofline skl --bogus)

# --cores: zero/garbage are usage errors; a config whose derived bounds
# are statically vacuous (one KNL core barely loads the memory system,
# LLL-LINT-102) is refused with exit 3 before any simulation runs.
expect_exit(2 analyze isx skl --cores 0)
expect_exit(2 analyze isx skl --cores nope)
expect_exit(2 trace isx skl --cores 0)
expect_exit(3 analyze isx knl --cores 1)

# table/sweep/reproduce share the SweepRunner flags.
expect_exit(2 sweep extra)
expect_exit(2 sweep --jobs 0)
expect_exit(2 sweep --jobs)
expect_exit(2 reproduce --jobs nope)
expect_exit(2 reproduce extra)
expect_exit(2 table isx --jobs 0)

# lint --profile: flag errors exit 2, an unreadable file is bad input
# data (LLL-PROF-101, exit 3).
expect_exit(2 lint --profile)
expect_exit(2 lint --profile file extra)
expect_exit(3 lint --profile /nonexistent/profile.txt)

# lint: usage errors exit 2, infeasible configs exit 3 with LLL-PLAT-001.
# serve: flag errors exit 2; an unreadable batch file and a batch with
# any failed request are bad input (exit 3); an empty batch is ok.
expect_exit(2 serve --bogus)
expect_exit(2 serve extra)
expect_exit(2 serve --jobs 0)
expect_exit(2 serve --jobs)
expect_exit(2 serve --max-entries 0)
expect_exit(2 serve --spill-budget nope)
expect_exit(2 serve --batch)
expect_exit(3 serve --batch /nonexistent/batch.jsonl)
set(_serve_dir "${CMAKE_CURRENT_BINARY_DIR}/serve_exit_codes")
file(MAKE_DIRECTORY "${_serve_dir}")
file(WRITE "${_serve_dir}/empty.jsonl" "")
expect_exit(0 serve --batch "${_serve_dir}/empty.jsonl")
file(WRITE "${_serve_dir}/bad.jsonl"
     "{\"schema_version\": 1, \"platform\": \"nope\", \"workload\": \"isx\"}\n")
expect_exit(3 serve --batch "${_serve_dir}/bad.jsonl")

expect_exit(2 lint isx)                      # platform missing
expect_exit(2 lint isx skl nonsense-opt)     # unknown optimization
expect_exit(2 lint --json)                   # dangling flag
expect_exit(2 lint isx skl --bogus)          # unknown flag
expect_exit(3 lint isx nope)                 # unknown platform
expect_exit(3 lint nope skl)                 # unknown workload
expect_exit(3 lint isx skl 4-ht)             # statically infeasible
expect_exit(0 lint isx skl)                  # feasible spec lints clean
