/**
 * @file
 * Tests for the simplified TMA baseline: slot percentages sum, the
 * occupancy-threshold bandwidth/latency split, and the misleading
 * averaged load latency the paper dissects.
 */

#include <gtest/gtest.h>

#include "core/tma.hh"
#include "test_common.hh"

namespace lll::core
{
namespace
{

sim::RunResult
run(double l1_occ, double util, uint64_t hits, uint64_t misses,
    uint64_t l2_hits, double mem_lat)
{
    sim::RunResult r;
    r.avgL1MshrOccupancy = l1_occ;
    r.memUtilization = util;
    r.l1DemandHits = hits;
    r.l1DemandMisses = misses;
    r.l2DemandHits = l2_hits;
    r.avgMemLatencyNs = mem_lat;
    return r;
}

class TmaTest : public ::testing::Test
{
  protected:
    TmaTest() : tma_(test::tinyPlatform()) {}
    Tma tma_;
};

TEST_F(TmaTest, TopLevelSumsToHundred)
{
    TmaReport r = tma_.analyze(run(5.0, 0.5, 1000, 500, 300, 150.0));
    EXPECT_NEAR(r.retiringPct + r.frontendPct + r.badSpeculationPct +
                    r.backendPct,
                100.0, 0.01);
}

TEST_F(TmaTest, BackendSplitsIntoCoreAndMemory)
{
    TmaReport r = tma_.analyze(run(5.0, 0.5, 1000, 500, 300, 150.0));
    EXPECT_NEAR(r.coreBoundPct + r.memoryBoundPct, r.backendPct, 0.01);
}

TEST_F(TmaTest, MemorySplitSumsToMemoryBound)
{
    TmaReport r = tma_.analyze(run(5.0, 0.5, 1000, 500, 300, 150.0));
    EXPECT_NEAR(r.bandwidthBoundPct + r.latencyBoundPct, r.memoryBoundPct,
                0.01);
}

TEST_F(TmaTest, HighUtilizationAttributesBandwidth)
{
    TmaReport hi = tma_.analyze(run(8.0, 0.9, 100, 900, 0, 180.0));
    EXPECT_GT(hi.bandwidthBoundPct, hi.latencyBoundPct);
    TmaReport lo = tma_.analyze(run(8.0, 0.15, 100, 900, 0, 180.0));
    EXPECT_GT(lo.latencyBoundPct, lo.bandwidthBoundPct);
}

TEST_F(TmaTest, MidUtilizationIsAmbiguous)
{
    // Near the threshold the split populates both buckets — the paper's
    // SNAP 27%/23% ambiguity.
    TmaReport r = tma_.analyze(run(4.0, 0.45, 500, 500, 200, 120.0));
    EXPECT_GT(r.bandwidthBoundPct, 5.0);
    EXPECT_GT(r.latencyBoundPct, 5.0);
}

TEST_F(TmaTest, ComputeBoundLooksRetiring)
{
    TmaReport r = tma_.analyze(run(0.2, 0.05, 10000, 100, 90, 85.0));
    EXPECT_GT(r.retiringPct, 50.0);
    EXPECT_LT(r.memoryBoundPct, 20.0);
}

TEST_F(TmaTest, MemoryPinnedLooksBackendBound)
{
    TmaReport r = tma_.analyze(run(10.0, 0.85, 0, 1000, 0, 160.0));
    EXPECT_GT(r.backendPct, 80.0);
    EXPECT_GT(r.memoryBoundPct, 80.0);
}

TEST_F(TmaTest, FacilityLatencyCollapsesForPrefetchedStreams)
{
    // All L1 misses hit the (prefetched) L2: the facility mean is tiny
    // even though memory latency is 180 ns — the hpcg anecdote.
    TmaReport r = tma_.analyze(run(2.0, 0.9, 0, 1000, 1000, 180.0));
    double true_cycles = 180.0 * test::tinyPlatform().freqGHz;
    EXPECT_LT(r.avgLoadLatencyCycles, true_cycles * 0.2);
}

TEST_F(TmaTest, FacilityLatencyHighForRandomMisses)
{
    TmaReport deep = tma_.analyze(run(9.0, 0.8, 0, 1000, 0, 180.0));
    TmaReport shallow = tma_.analyze(run(9.0, 0.8, 0, 1000, 1000, 180.0));
    EXPECT_GT(deep.avgLoadLatencyCycles,
              shallow.avgLoadLatencyCycles * 3.0);
}

TEST_F(TmaTest, UtilizationPassthrough)
{
    TmaReport r = tma_.analyze(run(1.0, 0.37, 10, 10, 5, 100.0));
    EXPECT_DOUBLE_EQ(r.memCtrlUtilization, 0.37);
}

} // namespace
} // namespace lll::core
