# Asserts the unified `--help` contract (DESIGN.md §17.5): every
# subcommand answers `lll <cmd> --help` with exit 0, the shared
# "usage: lll" header, and the flags it registered on its ArgParser —
# even when the surrounding arguments would otherwise be a usage error.
# Run via: cmake -DLLL_BIN=<path-to-lll> -P cli_help.cmake

# expect_help(<cmd> [needle ...]): `lll <cmd> --help` exits 0, prints
# the shared usage header, and mentions every needle.
function(expect_help cmd)
    execute_process(COMMAND ${LLL_BIN} ${cmd} --help
                    RESULT_VARIABLE got
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT got EQUAL 0)
        message(FATAL_ERROR
                "lll ${cmd} --help: expected exit 0, got ${got}\n"
                "${out}${err}")
    endif()
    if(NOT out MATCHES "usage: lll")
        message(FATAL_ERROR
                "lll ${cmd} --help: missing shared usage header:\n"
                "${out}")
    endif()
    foreach(needle ${ARGN})
        string(FIND "${out}" "${needle}" at)
        if(at EQUAL -1)
            message(FATAL_ERROR
                    "lll ${cmd} --help: registered flag "
                    "\"${needle}\" not documented:\n${out}")
        endif()
    endforeach()
endfunction()

# Every dispatched subcommand answers --help, with its registered
# flags present in the rendered text.
expect_help(platforms)
expect_help(workloads)
expect_help(vendors)
expect_help(characterize --fresh)
expect_help(analyze --cores --json --metrics)
expect_help(trace --cores --json --metrics)
expect_help(walk)
expect_help(table --jobs --cache-dir --spill-budget)
expect_help(sweep --jobs --cache-dir --max-entries --json)
expect_help(reproduce --jobs --cache-dir)
expect_help(roofline)
expect_help(selftest --iterations --seed --verbose)
expect_help(lint --profile --json --determinism --seeds)
expect_help(audit --root --json --fix-plan)
expect_help(serve --batch --jobs --listen --listen-unix
            --max-inflight --watchdog-ms)
expect_help(search --axis --point --list-axes --no-prune
            --bank-weight --max-candidates --jobs --json)
expect_help(bench --trials --json --compare)
expect_help(bench-serve --connect --qps --json)
expect_help(profile --out --top)

# -h is the short spelling, and help mode wins over what would
# otherwise be usage errors around it.
execute_process(COMMAND ${LLL_BIN} search -h
                RESULT_VARIABLE got OUTPUT_QUIET ERROR_QUIET)
if(NOT got EQUAL 0)
    message(FATAL_ERROR "lll search -h: expected exit 0, got ${got}")
endif()
execute_process(COMMAND ${LLL_BIN} analyze --help --bogus
                RESULT_VARIABLE got OUTPUT_QUIET ERROR_QUIET)
if(NOT got EQUAL 0)
    message(FATAL_ERROR
            "lll analyze --help --bogus: help must win (exit 0), "
            "got ${got}")
endif()

# The bare forms print the command index and exit 0.
foreach(form help --help -h)
    execute_process(COMMAND ${LLL_BIN} ${form}
                    RESULT_VARIABLE got
                    OUTPUT_VARIABLE out ERROR_QUIET)
    if(NOT got EQUAL 0)
        message(FATAL_ERROR
                "lll ${form}: expected exit 0, got ${got}")
    endif()
    if(NOT out MATCHES "search")
        message(FATAL_ERROR
                "lll ${form}: command index does not list search:\n"
                "${out}")
    endif()
endforeach()
