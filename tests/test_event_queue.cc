/**
 * @file
 * Tests for the DES kernel: ordering, tie-breaking, run-until limits.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/request.hh"

namespace lll::sim
{
namespace
{

TEST(EventQueueTest, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.processed(), 0u);
}

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(42, [&order, i] { order.push_back(i); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(200, [&] { ++fired; });
    bool more = eq.runUntil(100);
    EXPECT_TRUE(more);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueueTest, EventAtLimitIsProcessed)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, DrainedReturnsFalseAndAdvancesToLimit)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    bool more = eq.runUntil(50);
    EXPECT_FALSE(more);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueueTest, CallbacksCanSchedule)
{
    EventQueue eq;
    std::vector<Tick> times;
    std::function<void()> chain = [&] {
        times.push_back(eq.now());
        if (times.size() < 4)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.runUntil(1000);
    EXPECT_EQ(times, (std::vector<Tick>{0, 10, 20, 30}));
}

TEST(EventQueueTest, ZeroDelaySameTickRuns)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { eq.scheduleIn(0, [&] { ++fired; }); });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, ProcessedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.runUntil(100);
    EXPECT_EQ(eq.processed(), 7u);
}

TEST(EventQueueTest, PriorityOrdersSameTickAcrossBands)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(42, schedPrio(SchedBand::Housekeeping),
                [&] { order.push_back(4); });
    eq.schedule(42, schedPrio(SchedBand::Thread, schedThreadKey(0, 0)),
                [&] { order.push_back(3); });
    eq.schedule(42, schedPrio(SchedBand::Send), [&] { order.push_back(2); });
    eq.schedule(42, schedPrio(SchedBand::Fill), [&] { order.push_back(1); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueTest, PriorityNeverOutranksTime)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, schedPrio(SchedBand::Housekeeping),
                [&] { order.push_back(1); });
    eq.schedule(20, schedPrio(SchedBand::Fill), [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, ThreadKeysArbitrateLowestCoreAndThreadFirst)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(42, schedPrio(SchedBand::Thread, schedThreadKey(1, 0)),
                [&] { order.push_back(10); });
    eq.schedule(42, schedPrio(SchedBand::Thread, schedThreadKey(0, 1)),
                [&] { order.push_back(1); });
    eq.schedule(42, schedPrio(SchedBand::Thread, schedThreadKey(0, -1)),
                [&] { order.push_back(0); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10}));
}

TEST(EventQueueTest, TieBreakSeedPermutesOnlyEqualPriorityTies)
{
    // Within one (tick, priority) class the seeded permutation may
    // reorder; across priorities the pinned order must survive any seed.
    auto run = [](uint64_t seed) {
        EventQueue eq;
        eq.setTieBreakSeed(seed);
        std::vector<int> order;
        eq.schedule(42, schedPrio(SchedBand::Thread, 7),
                    [&] { order.push_back(100); });
        for (int i = 0; i < 6; ++i)
            eq.schedule(42, schedPrio(SchedBand::Fill),
                        [&order, i] { order.push_back(i); });
        eq.runUntil(100);
        return order;
    };

    std::vector<int> base = run(0);
    EXPECT_EQ(base.back(), 100);
    EXPECT_EQ(base, (std::vector<int>{0, 1, 2, 3, 4, 5, 100}));

    bool permuted = false;
    for (uint64_t seed : {0x9e3779b97f4a7c15ULL, 0xc0ffee42c0ffee42ULL}) {
        std::vector<int> got = run(seed);
        ASSERT_EQ(got.size(), base.size());
        EXPECT_EQ(got.back(), 100) << "priority order broken by seed";
        if (got != base)
            permuted = true;
    }
    EXPECT_TRUE(permuted) << "seeds failed to perturb equal-prio ties";
}

TEST(EventQueueTest, FarFutureEventsKeepTimeOrder)
{
    // Events beyond the near-future window ride the overflow heap and
    // must interleave with bucketed ones exactly by (tick, prio, seq).
    EventQueue eq;
    std::vector<Tick> times;
    const Tick far = 3 * EventQueue::kWheelTicks;
    eq.schedule(far + 5, [&] { times.push_back(eq.now()); });
    eq.schedule(7, [&] { times.push_back(eq.now()); });
    eq.schedule(far + 1, [&] { times.push_back(eq.now()); });
    eq.schedule(EventQueue::kWheelTicks + 3,
                [&] { times.push_back(eq.now()); });
    eq.runUntil(far + 100);
    EXPECT_EQ(times, (std::vector<Tick>{7, EventQueue::kWheelTicks + 3,
                                        far + 1, far + 5}));
}

TEST(EventQueueTest, FarFutureTiesKeepInsertionOrder)
{
    // The window refill must carry tie keys along: equal-(tick, prio)
    // events scheduled beyond the window still pop in insertion order.
    EventQueue eq;
    std::vector<int> order;
    const Tick when = 5 * EventQueue::kWheelTicks + 11;
    for (int i = 0; i < 5; ++i)
        eq.schedule(when, [&order, i] { order.push_back(i); });
    eq.runUntil(when);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, IdleGapsCostNothingPerTick)
{
    // A sparse schedule across many empty windows must still fire
    // every event (the window jumps, it never walks idle ticks).
    EventQueue eq;
    int fired = 0;
    for (Tick i = 0; i < 10; ++i)
        eq.schedule(i * 40 * EventQueue::kWheelTicks + 1, [&] { ++fired; });
    EXPECT_FALSE(eq.runUntil(400 * EventQueue::kWheelTicks));
    EXPECT_EQ(fired, 10);
}

TEST(EventQueueTest, StopDuringCallbackReturnsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.requestStop();
    });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(eq.runUntil(100));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    // The stop is consumed: the next run picks up where it left off.
    EXPECT_FALSE(eq.runUntil(100));
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, StopLatchesBetweenRuns)
{
    // Regression: a stop issued while no run was in flight used to be
    // discarded by runUntil's entry reset; it must latch instead.
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.requestStop();
    EXPECT_TRUE(eq.runUntil(100));
    EXPECT_EQ(fired, 0) << "latched stop must win before any dispatch";
    EXPECT_EQ(eq.pending(), 1u);
    // Consumed: the following run proceeds normally.
    EXPECT_FALSE(eq.runUntil(100));
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, StopMidTickPreservesRemainingEvents)
{
    // A stop in the middle of a same-tick batch may not drop the
    // uninvoked remainder, and the resumed order must be unchanged.
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 6; ++i) {
        eq.schedule(42, [&, i] {
            order.push_back(i);
            if (i == 2)
                eq.requestStop();
        });
    }
    EXPECT_TRUE(eq.runUntil(100));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_EQ(eq.now(), 42u);
    EXPECT_FALSE(eq.runUntil(100));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueueTest, SameTickBandsProgressDuringDispatch)
{
    // A fill-band handler may queue same-tick work in a later band;
    // it must run within the same tick, after the earlier bands.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(42, schedPrio(SchedBand::Fill), [&] {
        order.push_back(1);
        eq.scheduleIn(0, schedPrio(SchedBand::Thread, 3),
                      [&] { order.push_back(3); });
    });
    eq.schedule(42, schedPrio(SchedBand::Send), [&] { order.push_back(2); });
    eq.schedule(42, schedPrio(SchedBand::Housekeeping),
                [&] { order.push_back(4); });
    eq.runUntil(42);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueDeathTest, SeedAfterFirstEventPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    EXPECT_DEATH(eq.setTieBreakSeed(1), "before any event");
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.runUntil(50);
    EXPECT_DEATH(eq.schedule(10, [] {}), "past");
}

TEST(EventQueueDeathTest, ThreadKeyBeyondSmtCeilingPanics)
{
    // thread == kMaxSmtWays would land in the next core's stride-8 run
    // (slot 0 is the agent, 1..kMaxSmtWays the hw threads); the packing
    // bound must trip, not silently collide.
    EXPECT_EQ(schedThreadKey(0, kMaxSmtWays - 1),
              8 + static_cast<uint64_t>(kMaxSmtWays));
    EXPECT_DEATH(schedThreadKey(0, kMaxSmtWays), "collide");
    EXPECT_DEATH(schedThreadKey(0, -2), "outside");
    EXPECT_DEATH(schedThreadKey(-2, 0), "below -1");
}

// --- request pool -------------------------------------------------------

TEST(RequestPoolTest, AllocGivesZeroedRequest)
{
    RequestPool pool;
    MemRequest *a = pool.alloc();
    a->lineAddr = 99;
    a->core = 3;
    pool.free(a);
    MemRequest *b = pool.alloc();
    EXPECT_EQ(b->lineAddr, 0u);
    EXPECT_EQ(b->core, -1);
    pool.free(b);
}

TEST(RequestPoolTest, ReallocatedRequestIsFullyRezeroed)
{
    // Regression: a freed request with stale routing pointers and a
    // dirty issue tick must come back indistinguishable from fresh —
    // a leaked origin would route a fill into a dead cache.
    RequestPool pool;
    MemRequest *a = pool.alloc();
    a->lineAddr = 0xdeadbeef;
    a->type = ReqType::Writeback;
    a->core = 7;
    a->thread = 3;
    a->issued = 123456789;
    a->origin = reinterpret_cast<Cache *>(0x1);
    a->requester = reinterpret_cast<ThreadContext *>(0x2);
    pool.free(a);

    MemRequest *b = pool.alloc();
    ASSERT_EQ(a, b) << "free list should hand the same storage back";
    EXPECT_EQ(b->lineAddr, 0u);
    EXPECT_EQ(b->type, ReqType::DemandLoad);
    EXPECT_EQ(b->core, -1);
    EXPECT_EQ(b->thread, -1);
    EXPECT_EQ(b->issued, 0u);
    EXPECT_EQ(b->origin, nullptr);
    EXPECT_EQ(b->requester, nullptr);
    pool.free(b);
}

TEST(RequestPoolTest, ReusesFreedRequests)
{
    RequestPool pool;
    MemRequest *a = pool.alloc();
    pool.free(a);
    MemRequest *b = pool.alloc();
    EXPECT_EQ(a, b);
    pool.free(b);
}

TEST(RequestPoolTest, OutstandingTracksBalance)
{
    RequestPool pool;
    EXPECT_EQ(pool.outstanding(), 0);
    MemRequest *a = pool.alloc();
    MemRequest *b = pool.alloc();
    EXPECT_EQ(pool.outstanding(), 2);
    pool.free(a);
    EXPECT_EQ(pool.outstanding(), 1);
    pool.free(b);
    EXPECT_EQ(pool.outstanding(), 0);
}

TEST(RequestTest, TypeNamesAndDemandPredicate)
{
    EXPECT_STREQ(reqTypeName(ReqType::DemandLoad), "DemandLoad");
    EXPECT_STREQ(reqTypeName(ReqType::Writeback), "Writeback");
    EXPECT_TRUE(isDemand(ReqType::DemandLoad));
    EXPECT_TRUE(isDemand(ReqType::DemandStore));
    EXPECT_FALSE(isDemand(ReqType::HwPrefetch));
    EXPECT_FALSE(isDemand(ReqType::SwPrefetch));
}

} // namespace
} // namespace lll::sim
