/**
 * @file
 * Tests for the sweep runner and result cache (DESIGN.md §11): parallel
 * and serial runs must produce identical rows and identical merged
 * telemetry, memoized stages must skip the simulator, and the on-disk
 * spill format must round-trip byte-exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "obs/export.hh"
#include "obs/span.hh"
#include "test_common.hh"
#include "workloads/workload.hh"
#include "xmem/xmem_harness.hh"

namespace lll::core
{
namespace
{

using workloads::Opt;
using workloads::OptSet;

/** Short windows and a partial core count keep each unit fast while
 *  still exercising every stage of the paper walk. */
SweepRunner::Params
fastParams()
{
    SweepRunner::Params sp;
    sp.warmupUs = 5.0;
    sp.measureUs = 10.0;
    sp.coresUsed = 6;
    return sp;
}

/** Two high-bandwidth workloads: both stay non-vacuous (LLL-LINT-102)
 *  on every platform at the reduced fastParams() core count, unlike
 *  e.g. comd/pennant on knl. */
std::vector<workloads::WorkloadPtr>
twoWorkloads()
{
    std::vector<workloads::WorkloadPtr> wls;
    wls.push_back(workloads::findWorkload("isx").take());
    wls.push_back(workloads::findWorkload("hpcg").take());
    return wls;
}

std::vector<platforms::Platform>
twoPlatforms()
{
    return {platforms::skl(), platforms::knl()};
}

/** Ensure the on-disk profile cache exists before any run() under
 *  comparison.  Profile files store points as %.4f, so the very first
 *  measurement in a fresh directory hands the runner an in-memory
 *  profile that differs from its disk round-trip in the low digits —
 *  warming the cache here keeps every compared run on the loaded
 *  (truncated) profile. */
void
warmProfileCache()
{
    for (const platforms::Platform &p : twoPlatforms()) {
        util::Result<xmem::LatencyProfile> prof =
            xmem::XMemHarness().measureCachedChecked(
                p, xmem::defaultProfilePath(p));
        ASSERT_TRUE(prof.ok()) << prof.status().toString();
    }
}

void
expectSameRows(const std::vector<SweepRunner::UnitResult> &a,
               const std::vector<SweepRunner::UnitResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].platform, b[i].platform);
        EXPECT_EQ(a[i].workload, b[i].workload);
        ASSERT_EQ(a[i].rows.size(), b[i].rows.size());
        for (size_t j = 0; j < a[i].rows.size(); ++j) {
            const TableRow &x = a[i].rows[j];
            const TableRow &y = b[i].rows[j];
            EXPECT_EQ(x.source, y.source);
            EXPECT_EQ(x.optLabel, y.optLabel);
            EXPECT_DOUBLE_EQ(x.bwGBs, y.bwGBs);
            EXPECT_DOUBLE_EQ(x.pctPeak, y.pctPeak);
            EXPECT_DOUBLE_EQ(x.latencyNs, y.latencyNs);
            EXPECT_DOUBLE_EQ(x.nAvg, y.nAvg);
            EXPECT_DOUBLE_EQ(x.speedup, y.speedup);
            EXPECT_DOUBLE_EQ(x.paperSpeedup, y.paperSpeedup);
        }
    }
}

uint64_t
simulateSpanCount()
{
    uint64_t n = 0;
    for (const obs::SpanTracker::Stat &s :
         obs::SpanTracker::global().stats()) {
        if (s.path.find("simulate") != std::string::npos)
            n += s.count;
    }
    return n;
}

/** A StageMetrics with every serialized field set to a distinctive
 *  value, for spill round-trip checks. */
StageMetrics
distinctiveMetrics()
{
    StageMetrics m;
    m.opts = OptSet{}.with(Opt::Vectorize).with(Opt::Tiling);
    m.label = m.opts.label();
    m.throughput = 123.5e6;
    m.run.measureSeconds = 1.25e-5;
    m.run.totalGBs = 98.75;
    m.run.opsIssued = 987654321ULL;
    m.run.avgMemLatencyNs = 231.0625;
    m.run.l1FullStalls = 42;
    m.run.eventsProcessed = 1234567ULL;
    m.profile.routine = "test_routine";
    m.profile.totalGBs = 98.75;
    m.profile.demandFraction = 0.875;
    m.profile.demandFractionKnown = true;
    m.analysis.routine = "test_routine";
    m.analysis.platform = "skl";
    m.analysis.bwGBs = 98.75;
    m.analysis.pctPeak = 0.7715;
    m.analysis.latencyNs = 231.0625;
    m.analysis.nAvg = 8.921875;
    m.analysis.accessClass = AccessClass::Random;
    m.analysis.limitingLevel = MshrLevel::L1;
    m.analysis.limitingMshrs = 10;
    m.analysis.headroom = 1.078125;
    m.analysis.nearMshrLimit = true;
    m.analysis.activeStreams = 3;
    m.analysis.activeStreamsKnown = true;
    m.analysis.coresUsed = 6;
    m.analysis.warnings = {"first warning", "second \"quoted\" one"};
    return m;
}

TEST(SweepUnits, WorkloadMajorOrder)
{
    std::vector<workloads::WorkloadPtr> wls = twoWorkloads();
    std::vector<SweepUnit> units = sweepUnits(twoPlatforms(), wls);
    ASSERT_EQ(units.size(), 4u);
    EXPECT_EQ(units[0].workload->name(), units[1].workload->name());
    EXPECT_EQ(units[2].workload->name(), units[3].workload->name());
    EXPECT_NE(units[0].workload->name(), units[2].workload->name());
    EXPECT_EQ(units[0].platform.name, units[2].platform.name);
}

TEST(SweepRunner, ParallelRowsMatchSerial)
{
    ASSERT_NO_FATAL_FAILURE(warmProfileCache());
    std::vector<workloads::WorkloadPtr> wls = twoWorkloads();
    std::vector<SweepUnit> units = sweepUnits(twoPlatforms(), wls);

    SweepRunner::Params serial = fastParams();
    serial.jobs = 1;
    util::Result<std::vector<SweepRunner::UnitResult>> a =
        SweepRunner(serial).run(units);
    ASSERT_TRUE(a.ok()) << a.status().toString();

    SweepRunner::Params parallel = fastParams();
    parallel.jobs = 4;
    util::Result<std::vector<SweepRunner::UnitResult>> b =
        SweepRunner(parallel).run(units);
    ASSERT_TRUE(b.ok()) << b.status().toString();

    ASSERT_EQ(a->size(), units.size());
    expectSameRows(*a, *b);
}

TEST(SweepRunner, MergedTelemetryIsDeterministic)
{
    ASSERT_NO_FATAL_FAILURE(warmProfileCache());
    std::vector<workloads::WorkloadPtr> wls = twoWorkloads();
    std::vector<SweepUnit> units = sweepUnits(twoPlatforms(), wls);

    obs::MetricRegistry serial_reg;
    SweepRunner::Params serial = fastParams();
    serial.jobs = 1;
    serial.registry = &serial_reg;
    ASSERT_TRUE(SweepRunner(serial).run(units).ok());

    obs::MetricRegistry parallel_reg;
    SweepRunner::Params parallel = fastParams();
    parallel.jobs = 4;
    parallel.registry = &parallel_reg;
    ASSERT_TRUE(SweepRunner(parallel).run(units).ok());

    // Merge-after-join in unit order: the exporters must not be able to
    // tell the two runs apart, byte for byte.  (Span stats carry wall
    // time, so they stay out of this comparison — and the sampler's
    // obs.self.overhead_ns counter is wall-clock-valued by design, so
    // it is zeroed on both sides the same way span stats are excluded.)
    serial_reg.counter(obs::kSelfOverheadCounter).reset();
    parallel_reg.counter(obs::kSelfOverheadCounter).reset();
    EXPECT_EQ(obs::exportJson(serial_reg, nullptr),
              obs::exportJson(parallel_reg, nullptr));
    EXPECT_EQ(obs::exportCsv(serial_reg), obs::exportCsv(parallel_reg));
}

TEST(SweepRunner, ResultCacheSkipsResimulation)
{
    ASSERT_NO_FATAL_FAILURE(warmProfileCache());
    std::vector<workloads::WorkloadPtr> wls = twoWorkloads();
    std::vector<SweepUnit> units = sweepUnits(twoPlatforms(), wls);

    ResultCache cache;
    SweepRunner::Params sp = fastParams();
    sp.cache = &cache;

    obs::SpanTracker::global().reset();
    util::Result<std::vector<SweepRunner::UnitResult>> cold =
        SweepRunner(sp).run(units);
    ASSERT_TRUE(cold.ok()) << cold.status().toString();
    EXPECT_GT(simulateSpanCount(), 0u);

    const ResultCache::Stats after_cold = cache.stats();
    EXPECT_EQ(after_cold.hits, 0u);
    EXPECT_GT(after_cold.misses, 0u);
    EXPECT_EQ(cache.size(), after_cold.misses);

    // Warm run: every stage is served from the cache, so the simulate
    // span never opens and the miss count does not move.
    obs::SpanTracker::global().reset();
    util::Result<std::vector<SweepRunner::UnitResult>> warm =
        SweepRunner(sp).run(units);
    ASSERT_TRUE(warm.ok()) << warm.status().toString();
    EXPECT_EQ(simulateSpanCount(), 0u);

    const ResultCache::Stats after_warm = cache.stats();
    EXPECT_EQ(after_warm.misses, after_cold.misses);
    EXPECT_EQ(after_warm.hits, after_cold.misses);

    expectSameRows(*cold, *warm);
}

TEST(ResultCache, SpillJsonRoundTrips)
{
    const StageMetrics m = distinctiveMetrics();
    const std::string text = stageMetricsJson(m, "key-1");

    util::Result<StageMetrics> parsed =
        parseStageMetricsJson(text, "key-1");
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const StageMetrics &p = *parsed;

    EXPECT_EQ(p.label, m.label);
    EXPECT_EQ(p.opts.label(), m.opts.label());
    EXPECT_DOUBLE_EQ(p.throughput, m.throughput);
    EXPECT_DOUBLE_EQ(p.run.measureSeconds, m.run.measureSeconds);
    EXPECT_DOUBLE_EQ(p.run.totalGBs, m.run.totalGBs);
    EXPECT_EQ(p.run.opsIssued, m.run.opsIssued);
    EXPECT_DOUBLE_EQ(p.run.avgMemLatencyNs, m.run.avgMemLatencyNs);
    EXPECT_EQ(p.run.l1FullStalls, m.run.l1FullStalls);
    EXPECT_EQ(p.run.eventsProcessed, m.run.eventsProcessed);
    EXPECT_EQ(p.profile.routine, m.profile.routine);
    EXPECT_DOUBLE_EQ(p.profile.demandFraction,
                     m.profile.demandFraction);
    EXPECT_TRUE(p.profile.demandFractionKnown);
    EXPECT_EQ(p.analysis.platform, m.analysis.platform);
    EXPECT_DOUBLE_EQ(p.analysis.nAvg, m.analysis.nAvg);
    EXPECT_EQ(p.analysis.accessClass, m.analysis.accessClass);
    EXPECT_EQ(p.analysis.limitingLevel, m.analysis.limitingLevel);
    EXPECT_EQ(p.analysis.limitingMshrs, m.analysis.limitingMshrs);
    EXPECT_TRUE(p.analysis.nearMshrLimit);
    EXPECT_EQ(p.analysis.activeStreams, m.analysis.activeStreams);
    EXPECT_TRUE(p.analysis.activeStreamsKnown);
    EXPECT_EQ(p.analysis.coresUsed, m.analysis.coresUsed);
    EXPECT_EQ(p.analysis.warnings, m.analysis.warnings);

    // Serialize-parse-serialize is a fixed point: the spill format
    // loses nothing (%.17g doubles).
    EXPECT_EQ(stageMetricsJson(p, "key-1"), text);
}

TEST(ResultCache, SpillJsonRejectsMismatchAndCorruption)
{
    const StageMetrics m = distinctiveMetrics();
    const std::string text = stageMetricsJson(m, "key-1");

    util::Result<StageMetrics> wrong_key =
        parseStageMetricsJson(text, "key-2");
    ASSERT_FALSE(wrong_key.ok());
    EXPECT_EQ(wrong_key.status().code(),
              util::ErrorCode::FailedPrecondition);

    std::string wrong_version = text;
    wrong_version.replace(wrong_version.find("\"version\": 2"),
                          std::string("\"version\": 2").size(),
                          "\"version\": 99");
    util::Result<StageMetrics> bad_version =
        parseStageMetricsJson(wrong_version, "key-1");
    ASSERT_FALSE(bad_version.ok());
    EXPECT_EQ(bad_version.status().code(),
              util::ErrorCode::FailedPrecondition);

    util::Result<StageMetrics> truncated =
        parseStageMetricsJson(text.substr(0, text.size() / 2), "key-1");
    EXPECT_FALSE(truncated.ok());

    util::Result<StageMetrics> garbage =
        parseStageMetricsJson("not json at all", "key-1");
    ASSERT_FALSE(garbage.ok());
    EXPECT_EQ(garbage.status().code(), util::ErrorCode::CorruptData);
}

TEST(ResultCache, DiskSpillServesAFreshCache)
{
    const std::string dir =
        ::testing::TempDir() + "lll_sweep_spill_test";
    std::filesystem::remove_all(dir);

    const StageMetrics m = distinctiveMetrics();
    ResultCache writer;
    ASSERT_TRUE(writer.setSpillDir(dir).ok());
    writer.insert("key-1", m);
    EXPECT_EQ(writer.stats().spills, 1u);

    // A different cache instance (a second process, in effect) finds
    // the entry on disk without ever simulating.
    ResultCache reader;
    ASSERT_TRUE(reader.setSpillDir(dir).ok());
    StageMetrics out;
    ASSERT_TRUE(reader.lookup("key-1", &out));
    EXPECT_EQ(out.label, m.label);
    EXPECT_DOUBLE_EQ(out.throughput, m.throughput);
    EXPECT_EQ(reader.stats().hits, 1u);
    EXPECT_EQ(reader.stats().diskLoads, 1u);

    // Unknown keys are misses even with a spill dir.
    EXPECT_FALSE(reader.lookup("key-2", &out));
    EXPECT_EQ(reader.stats().misses, 1u);

    std::filesystem::remove_all(dir);
}

TEST(ResultCache, CorruptSpillFileIsAMissNotAnError)
{
    const std::string dir =
        ::testing::TempDir() + "lll_sweep_corrupt_test";
    std::filesystem::remove_all(dir);

    ResultCache writer;
    ASSERT_TRUE(writer.setSpillDir(dir).ok());
    writer.insert("key-1", distinctiveMetrics());

    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        std::ofstream out(entry.path(),
                          std::ios::out | std::ios::trunc);
        out << "{ \"version\": definitely not valid\n";
    }

    ResultCache reader;
    ASSERT_TRUE(reader.setSpillDir(dir).ok());
    StageMetrics out;
    EXPECT_FALSE(reader.lookup("key-1", &out));
    EXPECT_EQ(reader.stats().misses, 1u);

    std::filesystem::remove_all(dir);
}

TEST(HashKernelSpec, StableAndFieldSensitive)
{
    sim::KernelSpec a = test::randomKernel(64, 2.0);
    sim::KernelSpec b = test::randomKernel(64, 2.0);
    EXPECT_EQ(hashKernelSpec(a), hashKernelSpec(b));

    sim::KernelSpec wider = test::randomKernel(65, 2.0);
    EXPECT_NE(hashKernelSpec(a), hashKernelSpec(wider));

    sim::KernelSpec busier = test::randomKernel(64, 2.5);
    EXPECT_NE(hashKernelSpec(a), hashKernelSpec(busier));

    sim::KernelSpec more_streams = a;
    more_streams.streams.push_back(a.streams.front());
    EXPECT_NE(hashKernelSpec(a), hashKernelSpec(more_streams));
}

TEST(ResultCache, StageKeyCoversEveryInput)
{
    const platforms::Platform skl = platforms::skl();
    const platforms::Platform knl = platforms::knl();
    const sim::KernelSpec spec = test::randomKernel(64, 2.0);
    const std::string base =
        ResultCache::stageKey(skl, spec, OptSet{}, 7, 5.0, 10.0, 6);

    EXPECT_EQ(base, ResultCache::stageKey(skl, spec, OptSet{}, 7, 5.0,
                                          10.0, 6));
    EXPECT_NE(base, ResultCache::stageKey(knl, spec, OptSet{}, 7, 5.0,
                                          10.0, 6));
    EXPECT_NE(base,
              ResultCache::stageKey(skl, spec,
                                    OptSet{}.with(Opt::Vectorize), 7,
                                    5.0, 10.0, 6));
    EXPECT_NE(base, ResultCache::stageKey(skl, spec, OptSet{}, 8, 5.0,
                                          10.0, 6));
    EXPECT_NE(base, ResultCache::stageKey(skl, spec, OptSet{}, 7, 6.0,
                                          10.0, 6));
    EXPECT_NE(base, ResultCache::stageKey(skl, spec, OptSet{}, 7, 5.0,
                                          11.0, 6));
    EXPECT_NE(base, ResultCache::stageKey(skl, spec, OptSet{}, 7, 5.0,
                                          10.0, 8));
}

TEST(ResultCache, LruCapEvictsLeastRecentlyUsed)
{
    const StageMetrics m = distinctiveMetrics();
    ResultCache cache;
    cache.setMaxEntries(2);
    cache.insert("k1", m);
    cache.insert("k2", m);
    EXPECT_EQ(cache.size(), 2u);

    // Touch k1 so k2 becomes the least recently used...
    StageMetrics out;
    ASSERT_TRUE(cache.lookup("k1", &out));

    // ...and the third insert evicts k2, not k1.
    cache.insert("k3", m);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.lookup("k2", &out));
    EXPECT_TRUE(cache.lookup("k1", &out));
    EXPECT_TRUE(cache.lookup("k3", &out));

    // Shrinking below the current size evicts immediately; the last
    // lookup made k3 most recent, so k1 goes.
    cache.setMaxEntries(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_FALSE(cache.lookup("k1", &out));
    EXPECT_TRUE(cache.lookup("k3", &out));
}

TEST(ResultCache, LruEvictionIsMemoryOnlySpillStaysReloadable)
{
    const std::string dir =
        ::testing::TempDir() + "lll_sweep_lru_spill_test";
    std::filesystem::remove_all(dir);

    ResultCache cache;
    cache.setMaxEntries(1);
    ASSERT_TRUE(cache.setSpillDir(dir).ok());
    cache.insert("k1", distinctiveMetrics());
    cache.insert("k2", distinctiveMetrics());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    // k1 left memory but not disk: the lookup is a hit via disk load.
    StageMetrics out;
    ASSERT_TRUE(cache.lookup("k1", &out));
    EXPECT_EQ(cache.stats().diskLoads, 1u);

    std::filesystem::remove_all(dir);
}

/** The single .json file under @p dir not already in @p known. */
std::filesystem::path
newestSpillFile(const std::string &dir,
                const std::vector<std::filesystem::path> &known)
{
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (std::find(known.begin(), known.end(), entry.path()) ==
            known.end()) {
            return entry.path();
        }
    }
    return {};
}

TEST(ResultCache, SpillBudgetGcRemovesOldestFirst)
{
    const std::string dir =
        ::testing::TempDir() + "lll_sweep_gc_test";
    std::filesystem::remove_all(dir);

    ResultCache writer;
    ASSERT_TRUE(writer.setSpillDir(dir).ok());
    writer.insert("k1", distinctiveMetrics());
    const std::filesystem::path f1 = newestSpillFile(dir, {});
    writer.insert("k2", distinctiveMetrics());
    const std::filesystem::path f2 = newestSpillFile(dir, {f1});
    ASSERT_FALSE(f1.empty());
    ASSERT_FALSE(f2.empty());

    // Make the age order unambiguous: f1 is two hours older.
    const auto now = std::filesystem::last_write_time(f2);
    std::filesystem::last_write_time(
        f1, now - std::chrono::hours(2));

    // A budget of exactly one file forces the GC on attach; the
    // oldest-mtime file (f1) must be the one deleted.
    ResultCache reader;
    reader.setSpillBudget(std::filesystem::file_size(f2));
    ASSERT_TRUE(reader.setSpillDir(dir).ok());
    EXPECT_FALSE(std::filesystem::exists(f1));
    EXPECT_TRUE(std::filesystem::exists(f2));
    EXPECT_EQ(reader.stats().spillEvictions, 1u);
    EXPECT_LE(reader.spillBytes(), reader.spillBudget());

    // The survivor still serves; the GC'd key is now a plain miss.
    StageMetrics out;
    EXPECT_TRUE(reader.lookup("k2", &out));
    EXPECT_FALSE(reader.lookup("k1", &out));

    std::filesystem::remove_all(dir);
}

TEST(ResultCache, SpillBudgetCapsTheDirOnEveryInsert)
{
    const std::string dir =
        ::testing::TempDir() + "lll_sweep_gc_insert_test";
    std::filesystem::remove_all(dir);

    ResultCache cache;
    ASSERT_TRUE(cache.setSpillDir(dir).ok());
    cache.insert("probe", distinctiveMetrics());
    const uint64_t one_file = cache.spillBytes();
    ASSERT_GT(one_file, 0u);

    // Budget two files, insert five: the dir may never exceed budget.
    cache.setSpillBudget(2 * one_file);
    for (int i = 0; i < 5; ++i) {
        cache.insert("k" + std::to_string(i), distinctiveMetrics());
        EXPECT_LE(cache.spillBytes(), cache.spillBudget());
    }
    EXPECT_GE(cache.stats().spillEvictions, 3u);

    std::filesystem::remove_all(dir);
}

TEST(ResultCache, StaleFormatVersionReadsAsMissNotError)
{
    const std::string dir =
        ::testing::TempDir() + "lll_sweep_stale_test";
    std::filesystem::remove_all(dir);

    ResultCache writer;
    ASSERT_TRUE(writer.setSpillDir(dir).ok());
    writer.insert("k1", distinctiveMetrics());

    // Rewrite the spill as the previous on-disk format version.
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        std::ifstream in(entry.path());
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        in.close();
        const std::string current = "\"version\": 2";
        const size_t at = text.find(current);
        ASSERT_NE(at, std::string::npos);
        text.replace(at, current.size(), "\"version\": 1");
        std::ofstream out(entry.path(),
                          std::ios::out | std::ios::trunc);
        out << text;
    }

    ResultCache reader;
    ASSERT_TRUE(reader.setSpillDir(dir).ok());
    StageMetrics out;
    EXPECT_FALSE(reader.lookup("k1", &out));
    EXPECT_EQ(reader.stats().misses, 1u);
    EXPECT_EQ(reader.stats().hits, 0u);

    std::filesystem::remove_all(dir);
}

TEST(SweepRunner, EntryCapHonoredUnderSweepLargerThanCap)
{
    warmProfileCache();
    std::vector<workloads::WorkloadPtr> wls = twoWorkloads();
    const std::vector<SweepUnit> units = sweepUnits(twoPlatforms(), wls);

    ResultCache cache;
    cache.setMaxEntries(3);
    SweepRunner::Params sp = fastParams();
    sp.cache = &cache;
    SweepRunner runner(sp);
    util::Result<std::vector<SweepRunner::UnitResult>> res =
        runner.run(units);
    ASSERT_TRUE(res.ok()) << res.status().toString();

    // Each unit stages several variants, so the sweep saw far more
    // distinct stages than the cap: the table must have been pinned at
    // the cap with the overflow evicted (and counted).
    EXPECT_LE(cache.size(), 3u);
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.maxEntries(), 3u);
}

} // namespace
} // namespace lll::core
