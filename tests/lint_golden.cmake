# Golden-file test for `lll lint` text and JSON reports.  Lint is a pure
# function of the static platform/workload tables (no profile, no event
# queue), so its output is byte-reproducible and any drift is a
# deliberate diagnostic change — regenerate with:
#   lll lint isx skl            > tests/golden/lint_feasible.txt
#   lll lint isx skl 4-ht       > tests/golden/lint_infeasible.txt
#   lll lint isx skl --json tests/golden/lint_feasible.json
#   lll lint isx skl 4-ht --json tests/golden/lint_infeasible.json
# and (from inside tests/golden/ so the subject stays a relative path):
#   lll lint --profile profile_bad.txt > lint_profile.txt
#   lll lint --profile profile_bad.txt --json lint_profile.json
# Run via: cmake -DLLL_BIN=... -DGOLDEN_DIR=... -DWORK_DIR=... -P lint_golden.cmake

function(check_case name expected_exit)
    set(json "${WORK_DIR}/lint_golden_${name}.json")
    execute_process(COMMAND ${LLL_BIN} lint ${ARGN} --json ${json}
                    RESULT_VARIABLE got_exit
                    OUTPUT_VARIABLE got_text
                    ERROR_QUIET)
    if(NOT got_exit EQUAL ${expected_exit})
        message(FATAL_ERROR "lll lint ${ARGN}: expected exit "
                            "${expected_exit}, got ${got_exit}")
    endif()

    file(READ "${GOLDEN_DIR}/lint_${name}.txt" want_text)
    if(NOT got_text STREQUAL want_text)
        file(WRITE "${WORK_DIR}/lint_golden_${name}.txt" "${got_text}")
        message(FATAL_ERROR
            "lll lint ${ARGN}: text differs from golden "
            "${GOLDEN_DIR}/lint_${name}.txt (actual saved to "
            "${WORK_DIR}/lint_golden_${name}.txt)")
    endif()

    file(READ "${json}" got_json)
    file(READ "${GOLDEN_DIR}/lint_${name}.json" want_json)
    if(NOT got_json STREQUAL want_json)
        message(FATAL_ERROR
            "lll lint ${ARGN}: JSON differs from golden "
            "${GOLDEN_DIR}/lint_${name}.json (actual in ${json})")
    endif()
endfunction()

check_case(feasible 0 isx skl)
check_case(infeasible 3 isx skl 4-ht)

# Profile lint runs from inside GOLDEN_DIR so the diagnostics' subject
# stays the relative fixture path and the report is machine-independent.
function(check_profile_case name expected_exit fixture)
    set(json "${WORK_DIR}/lint_golden_${name}.json")
    execute_process(COMMAND ${LLL_BIN} lint --profile ${fixture}
                            --json ${json}
                    WORKING_DIRECTORY ${GOLDEN_DIR}
                    RESULT_VARIABLE got_exit
                    OUTPUT_VARIABLE got_text
                    ERROR_QUIET)
    if(NOT got_exit EQUAL ${expected_exit})
        message(FATAL_ERROR "lll lint --profile ${fixture}: expected "
                            "exit ${expected_exit}, got ${got_exit}")
    endif()

    file(READ "${GOLDEN_DIR}/lint_${name}.txt" want_text)
    if(NOT got_text STREQUAL want_text)
        file(WRITE "${WORK_DIR}/lint_golden_${name}.txt" "${got_text}")
        message(FATAL_ERROR
            "lll lint --profile ${fixture}: text differs from golden "
            "${GOLDEN_DIR}/lint_${name}.txt (actual saved to "
            "${WORK_DIR}/lint_golden_${name}.txt)")
    endif()

    file(READ "${json}" got_json)
    file(READ "${GOLDEN_DIR}/lint_${name}.json" want_json)
    if(NOT got_json STREQUAL want_json)
        message(FATAL_ERROR
            "lll lint --profile ${fixture}: JSON differs from golden "
            "${GOLDEN_DIR}/lint_${name}.json (actual in ${json})")
    endif()
endfunction()

check_profile_case(profile 0 profile_bad.txt)
