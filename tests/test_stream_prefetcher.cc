/**
 * @file
 * Tests for the stream prefetcher: training, direction, degree/distance
 * discipline, random-access immunity, confidence-protected eviction and
 * the stop-on-drop rule.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/event_queue.hh"
#include "sim/mem_ctrl.hh"
#include "sim/stream_prefetcher.hh"
#include "util/rng.hh"

namespace lll::sim
{
namespace
{

class PrefetcherTest : public ::testing::Test
{
  protected:
    PrefetcherTest()
    {
        Cache::Params cp;
        cp.name = "l2pf";
        cp.sets = 256;
        cp.ways = 8;
        cp.mshrs = 32;
        cp.accessLat = nsToTicks(5.0);
        cache_ = std::make_unique<Cache>(cp, eq_, pool_);

        MemCtrl::Params mp;
        mp.peakGBs = 50.0;
        mem_ = std::make_unique<MemCtrl>(mp, eq_, pool_);
        cache_->setDownstream(mem_.get());

        StreamPrefetcher::Params pp;
        pp.tableSize = 4;
        pp.matchWindow = 4;
        pp.distance = 8;
        pp.degree = 2;
        pp.trainThreshold = 2;
        pf_ = std::make_unique<StreamPrefetcher>(pp, *cache_);
    }

    void settle() { eq_.runUntil(eq_.now() + nsToTicks(100000.0)); }

    EventQueue eq_;
    RequestPool pool_;
    std::unique_ptr<Cache> cache_;
    std::unique_ptr<MemCtrl> mem_;
    std::unique_ptr<StreamPrefetcher> pf_;
};

TEST_F(PrefetcherTest, NoIssueBeforeTraining)
{
    pf_->observe(1000, 0);
    pf_->observe(1001, 0);   // confidence 1 < threshold 2
    EXPECT_EQ(pf_->stats().issued.value(), 0u);
}

TEST_F(PrefetcherTest, IssuesAfterTraining)
{
    pf_->observe(1000, 0);
    pf_->observe(1001, 0);
    pf_->observe(1002, 0);   // trained; issues up to degree=2
    EXPECT_EQ(pf_->stats().issued.value(), 2u);
    settle();
    EXPECT_TRUE(cache_->isResident(1003));
    EXPECT_TRUE(cache_->isResident(1004));
}

TEST_F(PrefetcherTest, RunsAheadUpToDistance)
{
    for (uint64_t i = 0; i < 20; ++i) {
        pf_->observe(1000 + i, 0);
        settle();
    }
    // After a long run, coverage extends `distance` past the head.
    EXPECT_TRUE(cache_->isResident(1019 + 8));
    EXPECT_FALSE(cache_->isResident(1019 + 9));
}

TEST_F(PrefetcherTest, DescendingStreamsWork)
{
    for (uint64_t i = 0; i < 12; ++i) {
        pf_->observe(5000 - i, 0);
        settle();
    }
    EXPECT_TRUE(cache_->isResident(5000 - 11 - 4));
}

TEST_F(PrefetcherTest, RandomAccessesNeverTrain)
{
    Rng rng(42);
    for (int i = 0; i < 500; ++i)
        pf_->observe(rng.next64() % (1ULL << 30), 0);
    settle();
    EXPECT_EQ(pf_->stats().issued.value(), 0u);
    EXPECT_GT(pf_->stats().allocations.value(), 400u);
}

TEST_F(PrefetcherTest, RetouchOfHeadOnlyRefreshes)
{
    pf_->observe(100, 0);
    uint64_t allocs = pf_->stats().allocations.value();
    pf_->observe(100, 0);   // same line again (coalesced miss pattern)
    EXPECT_EQ(pf_->stats().allocations.value(), allocs);
    EXPECT_EQ(pf_->stats().issued.value(), 0u);
}

TEST_F(PrefetcherTest, TrainedStreamsSurviveTablePressure)
{
    // Train stream A fully.
    for (uint64_t i = 0; i < 6; ++i) {
        pf_->observe(10000 + i, 0);
        settle();
    }
    uint64_t issued_before = pf_->stats().issued.value();
    EXPECT_GT(issued_before, 0u);

    // Blast 20 unrelated single-shot addresses (candidate streams) —
    // more than the 4-entry table.
    for (uint64_t i = 0; i < 20; ++i)
        pf_->observe(50000 + i * 1000, 0);

    // Stream A still advances (its entry was confidence-protected).
    pf_->observe(10006, 0);
    settle();
    EXPECT_GT(pf_->stats().issued.value(), issued_before);
}

TEST_F(PrefetcherTest, InterleavedStreamsBothCovered)
{
    for (uint64_t i = 0; i < 10; ++i) {
        pf_->observe(20000 + i, 0);
        pf_->observe(40000 + i, 0);
        settle();
    }
    EXPECT_TRUE(cache_->isResident(20009 + 4));
    EXPECT_TRUE(cache_->isResident(40009 + 4));
}

TEST_F(PrefetcherTest, StrideBeyondMatchWindowNeverTrains)
{
    for (uint64_t i = 0; i < 50; ++i)
        pf_->observe(70000 + i * 7, 0);   // stride 7 > matchWindow 4
    settle();
    EXPECT_EQ(pf_->stats().issued.value(), 0u);
}

TEST_F(PrefetcherTest, TriggerCountTracksObservations)
{
    for (uint64_t i = 0; i < 10; ++i)
        pf_->observe(90000 + i, 0);
    EXPECT_EQ(pf_->stats().triggers.value(), 10u);
    pf_->resetStats();
    EXPECT_EQ(pf_->stats().triggers.value(), 0u);
}

} // namespace
} // namespace lll::sim
