/**
 * @file
 * Tests for the platform definitions against paper Table III.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "platforms/platform.hh"

namespace lll::platforms
{
namespace
{

TEST(PlatformTest, SklMatchesTableIII)
{
    Platform p = skl();
    EXPECT_EQ(p.totalCores, 24);
    EXPECT_DOUBLE_EQ(p.freqGHz, 2.1);
    EXPECT_DOUBLE_EQ(p.peakGBs, 128.0);
    EXPECT_EQ(p.l1Mshrs, 10u);
    EXPECT_EQ(p.l2Mshrs, 16u);
    EXPECT_EQ(p.lineBytes, 64u);
    EXPECT_EQ(p.maxSmtWays, 2u);
    EXPECT_EQ(p.vendor, Vendor::Intel);
}

TEST(PlatformTest, KnlMatchesTableIII)
{
    Platform p = knl();
    EXPECT_EQ(p.totalCores, 64);   // paper uses 64 of the 68
    EXPECT_DOUBLE_EQ(p.freqGHz, 1.4);
    EXPECT_DOUBLE_EQ(p.peakGBs, 400.0);
    EXPECT_EQ(p.l1Mshrs, 12u);
    EXPECT_EQ(p.l2Mshrs, 32u);
    EXPECT_EQ(p.maxSmtWays, 4u);
    EXPECT_NEAR(p.peakGFlops, 2867.0, 1.0);   // paper Fig. 2
}

TEST(PlatformTest, A64fxMatchesTableIII)
{
    Platform p = a64fx();
    EXPECT_EQ(p.totalCores, 48);
    EXPECT_DOUBLE_EQ(p.freqGHz, 1.8);
    EXPECT_DOUBLE_EQ(p.peakGBs, 1024.0);
    EXPECT_EQ(p.l1Mshrs, 12u);
    EXPECT_EQ(p.l2Mshrs, 20u);
    EXPECT_EQ(p.lineBytes, 256u);
    EXPECT_EQ(p.maxSmtWays, 1u);   // no SMT
    EXPECT_EQ(p.vendor, Vendor::Fujitsu);
}

TEST(PlatformTest, AllPlatformsInPaperOrder)
{
    auto all = allPlatforms();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].name, "skl");
    EXPECT_EQ(all[1].name, "knl");
    EXPECT_EQ(all[2].name, "a64fx");
}

TEST(PlatformTest, FindPlatformFindsEach)
{
    EXPECT_EQ(findPlatform("skl").take().totalCores, 24);
    EXPECT_EQ(findPlatform("knl").take().totalCores, 64);
    EXPECT_EQ(findPlatform("a64fx").take().totalCores, 48);
}

TEST(PlatformTest, FindPlatformUnknownIsNotFound)
{
    util::Result<Platform> r = findPlatform("epyc");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::ErrorCode::NotFound);
    EXPECT_NE(r.status().message().find("unknown"), std::string::npos);
}

TEST(PlatformTest, SysParamsAppliesCoresAndSmt)
{
    Platform p = knl();
    sim::SystemParams sp = p.sysParams(16, 4);
    EXPECT_EQ(sp.cores, 16);
    EXPECT_EQ(sp.threadsPerCore, 4u);
    EXPECT_DOUBLE_EQ(sp.freqGHz, 1.4);
}

TEST(PlatformDeathTest, SysParamsValidatesSmt)
{
    Platform p = a64fx();
    EXPECT_DEATH(p.sysParams(48, 2), "SMT");
}

TEST(PlatformDeathTest, SysParamsValidatesCores)
{
    Platform p = skl();
    EXPECT_DEATH(p.sysParams(25, 1), "out of range");
    EXPECT_DEATH(p.sysParams(0, 1), "out of range");
}

TEST(PlatformTest, MemoryIdleLatencyCalibration)
{
    // Idle latency = cache path + front + service + back, within the
    // neighbourhood the paper's tables imply.
    auto idle = [](const Platform &p) {
        const sim::SystemParams &s = p.proto;
        double path = ticksToNs(s.l1.accessLat + s.l2.accessLat +
                                (s.hasL3 ? s.l3.accessLat : 0));
        return path + s.mem.frontLatencyNs + s.mem.bankServiceNs +
               s.mem.backLatencyNs;
    };
    EXPECT_NEAR(idle(skl()), 82.0, 8.0);
    EXPECT_NEAR(idle(knl()), 168.0, 10.0);
    EXPECT_NEAR(idle(a64fx()), 141.0, 10.0);
}

TEST(PlatformTest, DerivedBankCountGivesPeakBandwidth)
{
    for (const Platform &p : allPlatforms()) {
        const sim::MemCtrl::Params &m = p.proto.mem;
        double banks = p.peakGBs * m.bankServiceNs / p.lineBytes;
        double peak = std::round(banks) * p.lineBytes / m.bankServiceNs;
        EXPECT_NEAR(peak, p.peakGBs, p.peakGBs * 0.02) << p.name;
    }
}

TEST(PlatformTest, VendorNames)
{
    EXPECT_STREQ(vendorName(Vendor::Intel), "Intel");
    EXPECT_STREQ(vendorName(Vendor::Amd), "AMD");
    EXPECT_STREQ(vendorName(Vendor::Cavium), "Cavium");
    EXPECT_STREQ(vendorName(Vendor::Fujitsu), "Fujitsu");
}

TEST(PlatformTest, SmtCapacityCurvesAreMonotone)
{
    for (const Platform &p : allPlatforms()) {
        double last = 0.0;
        for (unsigned k = 1; k <= p.maxSmtWays; ++k) {
            double c = p.proto.smtCapacity[k];
            if (c <= 0.0)
                c = last;
            EXPECT_GE(c, last) << p.name << " ways " << k;
            last = c;
        }
    }
}

} // namespace
} // namespace lll::platforms
