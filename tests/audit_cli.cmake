# CLI contract for `lll audit`: exit 0 on the actual (clean) repo,
# exit 3 with LLL-SRC findings on the seeded-bad fixture tree, and the
# standard JSON envelope either way.
# Run via: cmake -DLLL_BIN=... -DREPO_ROOT=... -DGOLDEN_DIR=...
#                -DWORK_DIR=... -P audit_cli.cmake

execute_process(COMMAND ${LLL_BIN} audit --root ${REPO_ROOT}
                RESULT_VARIABLE clean_exit
                OUTPUT_VARIABLE clean_text
                ERROR_QUIET)
if(NOT clean_exit EQUAL 0)
    message(FATAL_ERROR "lll audit on the repo: expected exit 0, got "
                        "${clean_exit}:\n${clean_text}")
endif()
if(NOT clean_text MATCHES "0 errors")
    message(FATAL_ERROR "lll audit on the repo: summary line missing "
                        "from:\n${clean_text}")
endif()

set(json "${WORK_DIR}/audit_cli_bad.json")
execute_process(COMMAND ${LLL_BIN} audit
                        --root ${GOLDEN_DIR}/audit_tree --json ${json}
                RESULT_VARIABLE bad_exit
                OUTPUT_VARIABLE bad_text
                ERROR_QUIET)
if(NOT bad_exit EQUAL 3)
    message(FATAL_ERROR "lll audit on the fixture tree: expected exit "
                        "3 (bad input), got ${bad_exit}:\n${bad_text}")
endif()
if(NOT bad_text MATCHES "LLL-SRC-1")
    message(FATAL_ERROR "lll audit on the fixture tree: no LLL-SRC "
                        "finding in:\n${bad_text}")
endif()

file(READ ${json} envelope)
foreach(needle "\"command\": \"audit\"" "\"exit\": 3" "\"clean\": false")
    if(NOT envelope MATCHES "${needle}")
        message(FATAL_ERROR "audit JSON envelope missing ${needle}:\n"
                            "${envelope}")
    endif()
endforeach()
