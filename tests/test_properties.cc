/**
 * @file
 * Property-style parameterized sweeps over the simulator's invariants:
 * loaded-latency monotonicity, closed-loop bandwidth monotonicity, MSHR
 * conservation, cache geometry independence, prefetcher coverage vs
 * table size, and op-stream weight conservation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/system.hh"
#include "test_common.hh"

namespace lll::sim
{
namespace
{

SystemParams
tinyParams(int cores, unsigned smt = 1)
{
    platforms::Platform p = test::tinyPlatform();
    SystemParams sp = p.sysParams(cores, smt);
    sp.seed = 31;
    return sp;
}

// --- loaded latency rises monotonically with injected load ---------------

class LatencyMonotone : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LatencyMonotone, MoreConcurrencyNeverLowersLatency)
{
    unsigned window = GetParam();
    System lo(tinyParams(4), test::randomKernel(window, 4.0));
    System hi(tinyParams(4), test::randomKernel(window + 4, 4.0));
    double lat_lo = lo.run(10.0, 20.0).avgMemLatencyNs;
    double lat_hi = hi.run(10.0, 20.0).avgMemLatencyNs;
    EXPECT_GE(lat_hi, lat_lo * 0.97);   // small noise allowance
}

INSTANTIATE_TEST_SUITE_P(Windows, LatencyMonotone,
                         ::testing::Values(1u, 2u, 4u, 8u));

// --- closed-loop bandwidth is monotone in exposed MLP ---------------------

TEST(ClosedLoopProperty, BandwidthMonotoneInWindow)
{
    double last = 0.0;
    for (unsigned window : {1u, 2u, 4u, 8u}) {
        System sys(tinyParams(2), test::randomKernel(window, 4.0));
        double bw = sys.run(10.0, 20.0).totalGBs;
        EXPECT_GE(bw, last * 0.97) << "window " << window;
        last = bw;
    }
}

TEST(ClosedLoopProperty, BandwidthMonotoneDecreasingInComputeGap)
{
    double last = 1e18;
    for (double gap : {1.0, 8.0, 32.0, 128.0}) {
        System sys(tinyParams(2), test::randomKernel(6, gap));
        double bw = sys.run(10.0, 20.0).totalGBs;
        EXPECT_LE(bw, last * 1.03) << "gap " << gap;
        last = bw;
    }
}

// --- MSHR conservation: queues drain when the load stops ------------------

TEST(MshrConservation, QueuesDrainAfterRun)
{
    SystemParams sp = tinyParams(2);
    System sys(sp, test::randomKernel(8, 4.0));
    sys.run(5.0, 10.0);
    // Let everything in flight complete: no new work is created beyond
    // what threads keep injecting, so instead check the invariant that
    // occupancy never exceeds capacity and the pool balance stays
    // bounded by plausible in-flight state.
    EXPECT_LE(sys.l1(0).mshrs().used(), sp.l1.mshrs);
    EXPECT_LE(sys.l2(0).mshrs().used(), sp.l2.mshrs);
    EXPECT_LT(sys.pool().outstanding(), 2000);
}

// --- cache geometry: hit behaviour independent of shape for small sets ----

class CacheGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(CacheGeometry, ResidentSetBehaviour)
{
    auto [sets, ways] = GetParam();
    EventQueue eq;
    RequestPool pool;
    Cache::Params cp;
    cp.sets = sets;
    cp.ways = ways;
    cp.mshrs = 0;
    Cache c(cp, eq, pool);
    MemCtrl::Params mp;
    MemCtrl mem(mp, eq, pool);
    c.setDownstream(&mem);

    // Install exactly capacity lines spread across sets; all resident.
    const uint64_t cap = static_cast<uint64_t>(sets) * ways;
    for (uint64_t i = 0; i < cap; ++i) {
        MemRequest *wb = pool.alloc();
        wb->lineAddr = i;
        wb->type = ReqType::Writeback;
        c.tryAccess(wb);
    }
    for (uint64_t i = 0; i < cap; ++i)
        EXPECT_TRUE(c.isResident(i)) << sets << "x" << ways << " @" << i;
    // One more line per set evicts exactly one per set.
    for (uint64_t i = cap; i < cap + sets; ++i) {
        MemRequest *wb = pool.alloc();
        wb->lineAddr = i;
        wb->type = ReqType::Writeback;
        c.tryAccess(wb);
    }
    uint64_t still = 0;
    for (uint64_t i = 0; i < cap; ++i)
        still += c.isResident(i);
    EXPECT_EQ(still, cap - sets);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometry,
    ::testing::Values(std::make_pair(4u, 2u), std::make_pair(16u, 4u),
                      std::make_pair(64u, 8u), std::make_pair(8u, 16u)));

// --- prefetcher coverage is monotone in table size -------------------------

class PrefetcherCoverage : public ::testing::TestWithParam<int>
{
};

TEST_P(PrefetcherCoverage, MoreStreamsNeedBiggerTables)
{
    const int nstreams = GetParam();
    double last_demand_frac = 1.1;
    for (unsigned table : {2u, 8u, 32u}) {
        SystemParams sp = tinyParams(1);
        sp.pf.tableSize = table;
        System sys(sp, test::streamingKernel(nstreams, 10, 4.0));
        RunResult r = sys.run(10.0, 20.0);
        // Bigger tables never reduce coverage.
        EXPECT_LE(r.demandFraction, last_demand_frac + 0.05)
            << nstreams << " streams, table " << table;
        last_demand_frac = r.demandFraction;
    }
    EXPECT_LT(last_demand_frac, 0.6);   // 32 entries cover everything
}

INSTANTIATE_TEST_SUITE_P(StreamCounts, PrefetcherCoverage,
                         ::testing::Values(2, 4, 8));

// --- op-stream weight conservation across arbitrary mixes ------------------

class WeightMix : public ::testing::TestWithParam<std::vector<double>>
{
};

TEST_P(WeightMix, ObservedSharesMatchWeights)
{
    const std::vector<double> &weights = GetParam();
    KernelSpec k;
    for (double w : weights) {
        StreamDesc s;
        s.kind = StreamDesc::Kind::Sequential;
        s.footprintLines = 1 << 16;
        s.weight = w;
        k.streams.push_back(s);
    }
    OpStream ops(k, 1, 1);
    std::vector<unsigned> counts(weights.size(), 0);
    const uint64_t n = 6400;
    for (uint64_t i = 0; i < n; ++i)
        ++counts[ops.at(i).streamIdx];
    double total_w = 0.0;
    for (double w : weights)
        total_w += w;
    for (size_t s = 0; s < weights.size(); ++s) {
        double expect = weights[s] / total_w;
        double got = static_cast<double>(counts[s]) / n;
        EXPECT_NEAR(got, expect, 0.03) << "stream " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, WeightMix,
    ::testing::Values(std::vector<double>{1.0, 1.0},
                      std::vector<double>{3.0, 1.0},
                      std::vector<double>{0.7, 0.2, 0.1},
                      std::vector<double>{1.0, 1.0, 1.0, 1.0, 1.0},
                      std::vector<double>{5.0, 1.0, 1.0, 0.5}));

// --- SMT sharing: aggregate ops never fall when adding threads -------------

TEST(SmtProperty, AggregateThroughputMonotoneForComputeBound)
{
    double last = 0.0;
    for (unsigned smt : {1u, 2u}) {
        System sys(tinyParams(2, smt), test::randomKernel(2, 200.0));
        double thru = sys.run(10.0, 30.0).throughput;
        EXPECT_GE(thru, last * 0.98) << smt << " ways";
        last = thru;
    }
}

// --- determinism across phased construction -------------------------------

TEST(PhaseDeterminism, SameSeedSameMixedResult)
{
    auto build = [] {
        std::vector<PhaseSpec> phases;
        phases.push_back({test::randomKernel(6, 4.0), 500});
        phases.push_back({test::streamingKernel(3, 8, 8.0), 300});
        return phases;
    };
    System a(tinyParams(2), build());
    System b(tinyParams(2), build());
    RunResult ra = a.run(10.0, 20.0);
    RunResult rb = b.run(10.0, 20.0);
    EXPECT_EQ(ra.opsIssued, rb.opsIssued);
    EXPECT_EQ(ra.memReadLines, rb.memReadLines);
}

} // namespace
} // namespace lll::sim
