/**
 * @file
 * Tests for the roofline model with MSHR-derived ceilings (paper Fig 2).
 */

#include <gtest/gtest.h>

#include "core/roofline.hh"
#include "test_common.hh"

namespace lll::core
{
namespace
{

class RooflineTest : public ::testing::Test
{
  protected:
    RooflineTest()
        : plat_(test::tinyPlatform()),
          roof_(plat_, test::syntheticProfile())
    {
    }

    platforms::Platform plat_;
    Roofline roof_;
};

TEST_F(RooflineTest, ClassicRoofMinOfComputeAndBandwidth)
{
    // Low intensity: bandwidth slope.
    EXPECT_DOUBLE_EQ(roof_.attainableGFlops(1.0), 24.0);
    // High intensity: flat compute roof.
    EXPECT_DOUBLE_EQ(roof_.attainableGFlops(1000.0), plat_.peakGFlops);
}

TEST_F(RooflineTest, RidgeIntensity)
{
    EXPECT_DOUBLE_EQ(roof_.ridgeIntensity(),
                     plat_.peakGFlops / plat_.peakGBs);
}

TEST_F(RooflineTest, MshrCeilingBelowPeakForSmallQueues)
{
    double l1 = roof_.mshrCeilingGBs(MshrLevel::L1, plat_.totalCores);
    EXPECT_GT(l1, 0.0);
    EXPECT_LE(l1, plat_.peakGBs);
}

TEST_F(RooflineTest, CeilingScalesWithMshrsUntilPeak)
{
    int cores = plat_.totalCores;
    double small = roof_.mshrCeilingGBs(2, cores);
    double large = roof_.mshrCeilingGBs(10, cores);
    EXPECT_LT(small, large);
    double huge = roof_.mshrCeilingGBs(10000, cores);
    EXPECT_DOUBLE_EQ(huge, plat_.peakGBs);   // clamped to the roof
}

TEST_F(RooflineTest, CeilingFixedPointSelfConsistent)
{
    int cores = plat_.totalCores;
    double bw = roof_.mshrCeilingGBs(4, cores);
    if (bw < plat_.peakGBs) {
        xmem::LatencyProfile prof = test::syntheticProfile();
        double implied = 4.0 * cores * plat_.lineBytes /
                         prof.latencyAt(bw);
        EXPECT_NEAR(bw, implied, bw * 0.02);
    }
}

TEST_F(RooflineTest, CeilingCapsAttainable)
{
    double ceiling = roof_.mshrCeilingGBs(2, plat_.totalCores);
    double at = roof_.attainableGFlops(1.0, ceiling);
    EXPECT_DOUBLE_EQ(at, ceiling);
    EXPECT_LT(at, roof_.attainableGFlops(1.0));
}

TEST_F(RooflineTest, SeriesIsMonotoneAndOrdered)
{
    auto series = roof_.series(0.1, 100.0, 16, plat_.totalCores);
    ASSERT_EQ(series.size(), 16u);
    for (size_t i = 0; i < series.size(); ++i) {
        const auto &pt = series[i];
        EXPECT_LE(pt.l1CeilingGFlops, pt.classicGFlops + 1e-9);
        EXPECT_LE(pt.l2CeilingGFlops, pt.classicGFlops + 1e-9);
        EXPECT_LE(pt.l1CeilingGFlops, pt.l2CeilingGFlops + 1e-9);
        if (i > 0) {
            EXPECT_GT(pt.intensity, series[i - 1].intensity);
            EXPECT_GE(pt.classicGFlops, series[i - 1].classicGFlops);
        }
    }
}

TEST(RooflineKnlTest, L1CeilingReproducesPaper256)
{
    // The paper's Fig. 2 second roofline: 64 cores x 12 L1 MSHRs at
    // ~190 ns loaded latency -> ~256 GB/s.  Build a KNL-shaped profile.
    platforms::Platform knl = platforms::knl();
    std::vector<xmem::LatencyProfile::Point> pts = {
        {20.0, 170.0},  {100.0, 175.0}, {200.0, 185.0},
        {250.0, 195.0}, {344.0, 238.0}, {370.0, 300.0}};
    xmem::LatencyProfile prof("knl", 400.0, pts);
    Roofline roof(knl, prof);
    double l1 = roof.mshrCeilingGBs(MshrLevel::L1, 64);
    EXPECT_NEAR(l1, 256.0, 15.0);
    // And the L2 queue clears the way toward the 400 GB/s roof.
    double l2 = roof.mshrCeilingGBs(MshrLevel::L2, 64);
    EXPECT_GT(l2, 380.0);
}

TEST(RooflineDeathTest, BadQueriesPanic)
{
    platforms::Platform p = test::tinyPlatform();
    Roofline roof(p, test::syntheticProfile());
    EXPECT_DEATH(roof.attainableGFlops(0.0), "intensity");
    EXPECT_DEATH(roof.mshrCeilingGBs(0u, 4), "MSHR ceiling");
    EXPECT_DEATH(roof.series(1.0, 0.5, 8, 4), "series");
}

} // namespace
} // namespace lll::core
