// Seeded-bad fixture for test_audit.cc: every finding in this tree is
// deliberate and pinned by tests/golden/audit_tree.txt.
#ifndef DEMO_ALPHA_HH
#define DEMO_ALPHA_HH

#include <random>

namespace demo
{

struct Status
{
    bool ok = true;
};

// Missing [[nodiscard]] (LLL-SRC-120).
Status doThing();

[[nodiscard]] Status goodThing();

[[deprecated("use goodThing")]] void oldThing();

} // namespace demo

#endif // DEMO_ALPHA_HH
