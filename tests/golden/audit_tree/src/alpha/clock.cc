#include "alpha/alpha.hh"

namespace demo
{

long
ticks()
{
    // Raw clock outside src/obs/timer.hh (LLL-SRC-121).
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace demo
