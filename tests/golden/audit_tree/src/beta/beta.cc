#include "alpha/alpha.hh"
#include "gamma/widget.hh"

namespace demo
{

// Typo'd metric name (LLL-SRC-110) and unregistered ID (LLL-SRC-111).
const char *kCounter = "svc.requests_totl";
const char *kDiag = "LLL-TST-999";

void
shutDown()
{
    oldThing(); // cross-module deprecated reference (LLL-SRC-122)
    std::exit(3); // banned call (LLL-SRC-121)
}

} // namespace demo
