/**
 * @file
 * Tests for the X-Mem-style characterization harness on a small
 * platform: the sweep must produce a monotone curve spanning near-idle
 * to near-saturation, and the cache round-trip must work.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_common.hh"
#include "xmem/xmem_harness.hh"

namespace lll::xmem
{
namespace
{

XMemHarness::Params
fastParams()
{
    XMemHarness::Params p;
    p.warmupUs = 5.0;
    p.measureUs = 10.0;
    p.windows = {1, 4, 8, 12};
    p.delays = {256, 32};
    return p;
}

class XmemTest : public ::testing::Test
{
  protected:
    platforms::Platform plat_ = test::tinyPlatform();
};

TEST_F(XmemTest, SweepSpansLowToHighBandwidth)
{
    LatencyProfile prof = XMemHarness(fastParams()).measure(plat_);
    ASSERT_FALSE(prof.empty());
    EXPECT_LT(prof.points().front().bwGBs, 0.25 * plat_.peakGBs);
    EXPECT_GT(prof.maxMeasuredGBs(), 0.6 * plat_.peakGBs);
}

TEST_F(XmemTest, CurveIsMonotone)
{
    LatencyProfile prof = XMemHarness(fastParams()).measure(plat_);
    double last = 0.0;
    for (const LatencyProfile::Point &pt : prof.points()) {
        EXPECT_GE(pt.latencyNs, last);
        last = pt.latencyNs;
    }
}

TEST_F(XmemTest, IdleLatencyNearControllerIdle)
{
    LatencyProfile prof = XMemHarness(fastParams()).measure(plat_);
    const sim::SystemParams &s = plat_.proto;
    double idle = ticksToNs(s.l1.accessLat + s.l2.accessLat +
                            (s.hasL3 ? s.l3.accessLat : 0)) +
                  s.mem.frontLatencyNs + s.mem.bankServiceNs +
                  s.mem.backLatencyNs;
    EXPECT_NEAR(prof.idleLatencyNs(), idle, idle * 0.15);
}

TEST_F(XmemTest, LoadedLatencyExceedsIdle)
{
    LatencyProfile prof = XMemHarness(fastParams()).measure(plat_);
    double at_high = prof.latencyAt(prof.maxMeasuredGBs());
    EXPECT_GT(at_high, prof.idleLatencyNs() * 1.3);
}

TEST_F(XmemTest, MeasureCachedRoundTrip)
{
    std::string path = ::testing::TempDir() + "/tiny.profile";
    std::remove(path.c_str());
    XMemHarness h(fastParams());
    LatencyProfile fresh = h.measureCachedChecked(plat_, path).take();
    ASSERT_FALSE(fresh.empty());
    // Second call loads the identical profile from disk.
    LatencyProfile cached = h.measureCachedChecked(plat_, path).take();
    ASSERT_EQ(cached.points().size(), fresh.points().size());
    EXPECT_DOUBLE_EQ(cached.maxMeasuredGBs(), fresh.maxMeasuredGBs());
    std::remove(path.c_str());
}

TEST_F(XmemTest, WrongPlatformCacheIsRemeasured)
{
    std::string path = ::testing::TempDir() + "/wrong.profile";
    ASSERT_TRUE(
        LatencyProfile("otherbox", 10.0, {{1.0, 50.0}}).save(path).ok());
    LatencyProfile prof =
        XMemHarness(fastParams()).measureCachedChecked(plat_, path).take();
    EXPECT_EQ(prof.platformName(), plat_.name);
    std::remove(path.c_str());
}

TEST_F(XmemTest, MissingCacheIsMeasuredAndSaved)
{
    std::string path = ::testing::TempDir() + "/missing_cache.profile";
    std::remove(path.c_str());
    util::Result<LatencyProfile> prof =
        XMemHarness(fastParams()).measureCachedChecked(plat_, path);
    ASSERT_TRUE(prof.ok()) << prof.status().toString();
    EXPECT_FALSE(prof->empty());
    // The measurement was persisted for the next run.
    EXPECT_TRUE(LatencyProfile::load(path).ok());
    std::remove(path.c_str());
}

TEST_F(XmemTest, CorruptCacheIsAnErrorNotASilentRemeasure)
{
    std::string path = ::testing::TempDir() + "/corrupt_cache.profile";
    {
        std::ofstream out(path);
        out << "platform tiny\npeak_gbs 24\npoint 3 oops\n";
    }
    util::Result<LatencyProfile> prof =
        XMemHarness(fastParams()).measureCachedChecked(plat_, path);
    ASSERT_FALSE(prof.ok());
    EXPECT_EQ(prof.status().code(), util::ErrorCode::CorruptData);
    // The message tells the user how to recover.
    EXPECT_NE(prof.status().message().find("--fresh"), std::string::npos);
    // The corrupt file was left in place for inspection.
    std::ifstream still_there(path);
    EXPECT_TRUE(still_there.good());
    std::remove(path.c_str());
}

TEST(XmemPathTest, DefaultPathUsesEnvOrDefault)
{
    platforms::Platform p = platforms::skl();
    unsetenv("LLL_PROFILE_DIR");
    EXPECT_EQ(defaultProfilePath(p), "data/profiles/skl.profile");
    setenv("LLL_PROFILE_DIR", "/tmp/profdir", 1);
    EXPECT_EQ(defaultProfilePath(p), "/tmp/profdir/skl.profile");
    unsetenv("LLL_PROFILE_DIR");
}

} // namespace
} // namespace lll::xmem
