/**
 * @file
 * Tests for the machine-readable exporters (obs::exportJson /
 * obs::exportCsv) and the RequestTracer's CSV/JSON serialization,
 * including ring-wrap and empty-trace edge cases.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/export.hh"
#include "obs/registry.hh"
#include "obs/span.hh"
#include "sim/tracer.hh"
#include "test_common.hh"

using namespace lll;

namespace
{

/** Structural JSON sanity: balanced {} / [] outside string literals. */
bool
balancedJson(const std::string &s)
{
    int depth = 0;
    bool in_string = false, escaped = false;
    for (char c : s) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': case '[': ++depth; break;
          case '}': case ']': --depth; break;
          default: break;
        }
        if (depth < 0)
            return false;
    }
    return depth == 0 && !in_string;
}

obs::MetricRegistry
populatedRegistry()
{
    obs::MetricRegistry reg;
    reg.counter("c.events").increment(3);
    reg.setGauge("g.level", 2.5);
    reg.histogram("h.lat").sample(100.0);
    reg.histogram("h.lat").sample(200.0);
    obs::GaugeOptions opt;
    opt.sampled = true;
    double v = 1.0;
    reg.registerGauge("g.live", [&v] { return v; },
                      obs::GaugeMode::Callback, opt);
    reg.sampleAll(250 * ticksPerNs);
    v = 2.0;
    reg.sampleAll(500 * ticksPerNs);
    reg.freezeGauge("g.live");
    reg.annotate("meta.note", "hello \"world\"\n");
    return reg;
}

} // namespace

TEST(JsonEscape, HandlesSpecials)
{
    EXPECT_EQ(obs::jsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(obs::jsonNumber(1.5), "1.5");
    EXPECT_EQ(obs::jsonNumber(std::nan("")), "null");
    EXPECT_EQ(obs::jsonNumber(1.0 / 0.0), "null");
}

TEST(ExportJson, ContainsAllSections)
{
    obs::MetricRegistry reg = populatedRegistry();
    std::string json = obs::exportJson(reg);
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"c.events\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"g.level\": 2.5"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"series\""), std::string::npos);
    EXPECT_NE(json.find("\"annotations\""), std::string::npos);
    // The escaped annotation survived.
    EXPECT_NE(json.find("hello \\\"world\\\"\\n"), std::string::npos);
    // No spans argument: no spans section.
    EXPECT_EQ(json.find("\"spans\""), std::string::npos);
}

TEST(ExportJson, HistogramsCarryQuantileTrio)
{
    obs::MetricRegistry reg = populatedRegistry();
    std::string json = obs::exportJson(reg);
    // Serve latency reporting reads p50/p90/p99 from the same export.
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p90\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    // p90 sits between the other two in the serialized order.
    const size_t p50 = json.find("\"p50\"");
    const size_t p90 = json.find("\"p90\"");
    const size_t p99 = json.find("\"p99\"");
    EXPECT_LT(p50, p90);
    EXPECT_LT(p90, p99);
}

TEST(ExportJson, SeriesCarriesSamples)
{
    obs::MetricRegistry reg = populatedRegistry();
    std::string json = obs::exportJson(reg);
    // Sampled at 250 ns and 500 ns with values 1 and 2.
    EXPECT_NE(json.find("\"g.live\""), std::string::npos);
    EXPECT_NE(json.find("[250, 1]"), std::string::npos);
    EXPECT_NE(json.find("[500, 2]"), std::string::npos);
}

TEST(ExportJson, SpansAndExtraSections)
{
    obs::MetricRegistry reg;
    obs::SpanTracker spans;
    {
        obs::ScopedSpan a("phase.a", spans);
        obs::ScopedSpan b("phase.b", spans);
    }
    std::vector<obs::JsonSection> extra{
        {"trace", "{\"total\": 7, \"events\": []}"}};
    std::string json = obs::exportJson(reg, &spans, extra);
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"spans\""), std::string::npos);
    EXPECT_NE(json.find("\"phase.a\""), std::string::npos);
    EXPECT_NE(json.find("\"phase.a/phase.b\""), std::string::npos);
    EXPECT_NE(json.find("\"trace\": {\"total\": 7"), std::string::npos);
}

TEST(ExportCsv, LongFormRoundTrip)
{
    obs::MetricRegistry reg = populatedRegistry();
    std::string csv = obs::exportCsv(reg);

    std::istringstream in(csv);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "metric,when_ns,value");

    size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        // metric,when_ns,value — two commas, parseable fields.
        size_t c1 = line.find(',');
        size_t c2 = line.find(',', c1 + 1);
        ASSERT_NE(c1, std::string::npos) << line;
        ASSERT_NE(c2, std::string::npos) << line;
        EXPECT_EQ(line.substr(0, c1), "g.live");
        double when = std::stod(line.substr(c1 + 1, c2 - c1 - 1));
        double value = std::stod(line.substr(c2 + 1));
        EXPECT_DOUBLE_EQ(value, when == 250.0 ? 1.0 : 2.0);
    }
    EXPECT_EQ(rows, 2u);
}

TEST(WriteExport, WritesFileAndReportsFailure)
{
    std::string path = ::testing::TempDir() + "lll_export_test.json";
    EXPECT_TRUE(obs::writeExport(path, "{\"ok\": true}"));
    FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buf, n), "{\"ok\": true}");

    EXPECT_FALSE(obs::writeExport("/nonexistent-dir/x/y.json", "{}"));
}

TEST(RequestTracerCsv, EmptyTraceIsHeaderOnly)
{
    sim::RequestTracer t(8);
    EXPECT_EQ(t.toCsv(), "when_ns,line_addr,type,core,latency_ns\n");
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.total(), 0u);
    EXPECT_DOUBLE_EQ(t.localityScore(), 0.0);
}

TEST(RequestTracerCsv, RingWrapKeepsNewestInOrder)
{
    sim::RequestTracer t(4);
    for (int i = 0; i < 10; ++i) {
        t.record(static_cast<Tick>(i) * ticksPerNs,
                 100 + static_cast<uint64_t>(i), sim::ReqType::DemandLoad,
                 0, 50.0);
    }
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.total(), 10u);

    std::string csv = t.toCsv();
    std::istringstream in(csv);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));   // header
    // The four retained rows are the last four recorded, oldest first.
    for (int i = 6; i < 10; ++i) {
        ASSERT_TRUE(std::getline(in, line));
        std::ostringstream expect;
        expect << i << ".000," << 100 + i << ",DemandLoad,0,50.00";
        EXPECT_EQ(line, expect.str());
    }
    EXPECT_FALSE(std::getline(in, line));
}

TEST(RequestTracerJson, WindowSplicesIntoExport)
{
    sim::RequestTracer t(8);
    t.record(1 * ticksPerNs, 42, sim::ReqType::HwPrefetch, 1, 80.5);
    t.record(2 * ticksPerNs, 43, sim::ReqType::Writeback, 2, 0.0);

    std::string tj = t.toJson();
    EXPECT_TRUE(balancedJson(tj)) << tj;
    EXPECT_NE(tj.find("\"total\": 2"), std::string::npos);
    EXPECT_NE(tj.find("\"line_addr\": 42"), std::string::npos);
    EXPECT_NE(tj.find("\"type\": \"HwPrefetch\""), std::string::npos);
    EXPECT_NE(tj.find("\"type\": \"Writeback\""), std::string::npos);

    obs::MetricRegistry reg;
    std::vector<obs::JsonSection> extra{{"trace", tj}};
    std::string json = obs::exportJson(reg, nullptr, extra);
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

TEST(RequestTracerJson, EmptyTrace)
{
    sim::RequestTracer t(4);
    EXPECT_EQ(t.toJson(), "{\"total\": 0, \"events\": []}");
}

TEST(LocalityScore, StreamingVsScattered)
{
    sim::RequestTracer streaming(64);
    for (int i = 0; i < 32; ++i)
        streaming.record(i, 1000 + static_cast<uint64_t>(i),
                         sim::ReqType::DemandLoad, 0, 50.0);
    EXPECT_GT(streaming.localityScore(), 0.9);

    sim::RequestTracer scattered(64);
    for (int i = 0; i < 32; ++i)
        scattered.record(i, static_cast<uint64_t>(i) * 100003,
                         sim::ReqType::DemandLoad, 0, 50.0);
    EXPECT_LT(scattered.localityScore(), 0.1);
}

TEST(ExportIntegration, SimulatedRunProducesCompleteJson)
{
    platforms::Platform p = test::tinyPlatform();
    sim::SystemParams sp = p.sysParams(2, 1);

    obs::MetricRegistry reg;
    sim::RequestTracer tracer(1 << 10);
    {
        sim::System sys(sp, test::randomKernel(8, 4.0));
        sys.mem().setTracer(&tracer);
        obs::Sampler::Params params;
        params.cadence = 100 * ticksPerNs;
        sys.attachObservability(reg, params);
        sys.run(2.0, 10.0);
    }

    std::vector<obs::JsonSection> extra{{"trace", tracer.toJson()}};
    std::string json =
        obs::exportJson(reg, &obs::SpanTracker::global(), extra);
    EXPECT_TRUE(balancedJson(json));
    EXPECT_NE(json.find("sim.mshr.l1.0.occupancy"), std::string::npos);
    EXPECT_NE(json.find("sim.memctrl.bw_gbps"), std::string::npos);
    EXPECT_NE(json.find("\"trace\""), std::string::npos);

    std::string csv = obs::exportCsv(reg);
    EXPECT_NE(csv.find("sim.mshr.l1.0.occupancy,"), std::string::npos);
}

TEST(JsonEnvelope, WrapsDataAndTelemetryUnderOneSchema)
{
    std::string env = obs::jsonEnvelope(
        "analyze", util::Status::okStatus(), 0,
        "{\"throughput\": 1.5}", "{\"counters\": {}}");
    EXPECT_TRUE(balancedJson(env)) << env;
    EXPECT_NE(env.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(env.find("\"command\": \"analyze\""), std::string::npos);
    EXPECT_NE(env.find("\"status\": {\"code\": \"ok\", \"exit\": 0, "
                       "\"message\": \"\"}"),
              std::string::npos)
        << env;
    EXPECT_NE(env.find("\"data\": {\"throughput\": 1.5}"),
              std::string::npos);
    EXPECT_NE(env.find("\"telemetry\": {\"counters\": {}}"),
              std::string::npos);
}

TEST(JsonEnvelope, EmptySectionsBecomeNull)
{
    std::string env = obs::jsonEnvelope(
        "lint",
        util::Status::error(util::ErrorCode::FailedPrecondition,
                            "2 infeasible configs"),
        3, "", "  \n ");
    EXPECT_TRUE(balancedJson(env)) << env;
    EXPECT_NE(env.find("\"code\": \"failed-precondition\""),
              std::string::npos)
        << env;
    EXPECT_NE(env.find("\"exit\": 3"), std::string::npos);
    EXPECT_NE(env.find("\"message\": \"2 infeasible configs\""),
              std::string::npos);
    EXPECT_NE(env.find("\"data\": null"), std::string::npos);
    EXPECT_NE(env.find("\"telemetry\": null"), std::string::npos);
}

TEST(JsonEnvelope, EscapesStatusMessages)
{
    std::string env = obs::jsonEnvelope(
        "trace",
        util::Status::error(util::ErrorCode::CorruptData,
                            "bad \"quote\"\nand newline"),
        3, "");
    EXPECT_TRUE(balancedJson(env)) << env;
    EXPECT_NE(env.find("bad \\\"quote\\\"\\nand newline"),
              std::string::npos)
        << env;
}
