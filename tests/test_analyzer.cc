/**
 * @file
 * Tests for the analyzer: profile lookup, classification, limiting-queue
 * selection and the threshold predicates the recipe keys on.
 */

#include <gtest/gtest.h>

#include "core/analyzer.hh"
#include "obs/export.hh"
#include "test_common.hh"

namespace lll::core
{
namespace
{

counters::RoutineProfile
routine(double total_gbs, double demand_frac = 1.0, bool known = true)
{
    counters::RoutineProfile p;
    p.routine = "r";
    p.seconds = 1e-3;
    p.readGBs = total_gbs * 0.9;
    p.writeGBs = total_gbs * 0.1;
    p.totalGBs = total_gbs;
    p.demandFraction = demand_frac;
    p.demandFractionKnown = known;
    return p;
}

class AnalyzerTest : public ::testing::Test
{
  protected:
    AnalyzerTest()
        : plat_(test::tinyPlatform()),
          analyzer_(plat_, test::syntheticProfile())
    {
    }

    platforms::Platform plat_;
    Analyzer analyzer_;
};

TEST_F(AnalyzerTest, LatencyComesFromProfileAtObservedBw)
{
    Analysis a = analyzer_.analyze(routine(12.0), 4);
    // 12 GB/s is 50% of 24: between profile points, interpolated.
    EXPECT_GT(a.latencyNs, 80.0);
    EXPECT_LT(a.latencyNs, 200.0);
    EXPECT_NEAR(a.idleLatencyNs, 80.3, 0.001);
}

TEST_F(AnalyzerTest, MlpIsPerCore)
{
    Analysis a4 = analyzer_.analyze(routine(12.0), 4);
    Analysis a2 = analyzer_.analyze(routine(12.0), 2);
    EXPECT_NEAR(a2.nAvg / a4.nAvg, 2.0, 1e-9);
}

TEST_F(AnalyzerTest, RandomHintSelectsL1)
{
    Analysis a = analyzer_.analyze(routine(12.0), 4, true);
    EXPECT_EQ(a.accessClass, AccessClass::Random);
    EXPECT_EQ(a.limitingLevel, MshrLevel::L1);
    EXPECT_EQ(a.limitingMshrs, plat_.l1Mshrs);
}

TEST_F(AnalyzerTest, StreamingHintSelectsL2)
{
    Analysis a = analyzer_.analyze(routine(12.0), 4, false);
    EXPECT_EQ(a.accessClass, AccessClass::Streaming);
    EXPECT_EQ(a.limitingLevel, MshrLevel::L2);
    EXPECT_EQ(a.limitingMshrs, plat_.l2Mshrs);
}

TEST_F(AnalyzerTest, CounterFallbackClassification)
{
    // High demand fraction (prefetcher ineffective) -> random.
    Analysis hi = analyzer_.analyze(routine(12.0, 0.95), 4);
    EXPECT_EQ(hi.accessClass, AccessClass::Random);
    // Low demand fraction -> streaming.
    Analysis lo = analyzer_.analyze(routine(12.0, 0.2), 4);
    EXPECT_EQ(lo.accessClass, AccessClass::Streaming);
}

TEST_F(AnalyzerTest, UnknownCounterDefaultsStreaming)
{
    Analysis a = analyzer_.analyze(routine(12.0, 1.0, false), 4);
    EXPECT_EQ(a.accessClass, AccessClass::Streaming);
}

TEST_F(AnalyzerTest, HintOverridesCounter)
{
    Analysis a = analyzer_.analyze(routine(12.0, 0.1), 4, true);
    EXPECT_EQ(a.accessClass, AccessClass::Random);
}

TEST_F(AnalyzerTest, NearMshrLimitPredicate)
{
    // Construct a bandwidth whose nAvg lands near the L1 size (10).
    // bw such that bw * lat(bw) / 64 / 4 ~ 10 -> bw*lat ~ 2560.
    Analysis a = analyzer_.analyze(routine(16.0), 4, true);
    // 16 GB/s ~ 67% of peak -> lat ~ 133 -> n ~ 8.3 of 10.
    EXPECT_FALSE(a.nearBandwidthLimit);
    double n = a.nAvg;
    EXPECT_EQ(a.nearMshrLimit, n >= 0.88 * 10);
    EXPECT_NEAR(a.headroom, 10.0 - n, 1e-9);
}

TEST_F(AnalyzerTest, NearBandwidthLimitPredicate)
{
    double max_gbs = analyzer_.profile().maxMeasuredGBs();
    Analysis a = analyzer_.analyze(routine(max_gbs * 0.95), 4, false);
    EXPECT_TRUE(a.nearBandwidthLimit);
    Analysis b = analyzer_.analyze(routine(max_gbs * 0.5), 4, false);
    EXPECT_FALSE(b.nearBandwidthLimit);
}

TEST_F(AnalyzerTest, PctPeakUsesTheoreticalPeak)
{
    Analysis a = analyzer_.analyze(routine(12.0), 4);
    EXPECT_NEAR(a.pctPeak, 0.5, 1e-9);
}

TEST_F(AnalyzerTest, InRangeLookupHasNoWarnings)
{
    Analysis a = analyzer_.analyze(routine(12.0), 4);
    EXPECT_FALSE(a.bwBelowProfileRange);
    EXPECT_FALSE(a.bwAboveProfileRange);
    EXPECT_TRUE(a.warnings.empty());
}

TEST_F(AnalyzerTest, BwBelowProfileRangeClampsWithWarning)
{
    // The synthetic profile starts at 5% of peak (1.2 GB/s); a routine
    // below the idle-most measured point clamps to the idle latency.
    Analysis a = analyzer_.analyze(routine(0.5), 4);
    EXPECT_TRUE(a.bwBelowProfileRange);
    EXPECT_FALSE(a.bwAboveProfileRange);
    EXPECT_DOUBLE_EQ(a.latencyNs, analyzer_.profile().idleLatencyNs());
    ASSERT_EQ(a.warnings.size(), 1u);
    EXPECT_NE(a.warnings[0].find("below the measured"),
              std::string::npos);
    EXPECT_NE(a.warnings[0].find("clamped extrapolation"),
              std::string::npos);
}

TEST_F(AnalyzerTest, BwAboveProfileRangeClampsWithWarning)
{
    // Above the saturation point (92% of peak = 22.08 GB/s).
    Analysis a = analyzer_.analyze(routine(23.9), 4);
    EXPECT_TRUE(a.bwAboveProfileRange);
    EXPECT_FALSE(a.bwBelowProfileRange);
    double sat = analyzer_.profile().latencyAt(
        analyzer_.profile().maxMeasuredGBs());
    EXPECT_DOUBLE_EQ(a.latencyNs, sat);
    ASSERT_EQ(a.warnings.size(), 1u);
    EXPECT_NE(a.warnings[0].find("above the measured"),
              std::string::npos);
    EXPECT_NE(a.warnings[0].find("clamped extrapolation"),
              std::string::npos);
}

TEST_F(AnalyzerTest, NonFiniteBwDegradesToIdle)
{
    Analysis a =
        analyzer_.analyze(routine(-std::numeric_limits<double>::infinity()),
                          4);
    EXPECT_DOUBLE_EQ(a.bwGBs, 0.0);
    EXPECT_FALSE(a.warnings.empty());
}

TEST_F(AnalyzerTest, ClampWarningsReachRegistryAndJsonExport)
{
    obs::MetricRegistry reg;
    analyzer_.setRegistry(&reg);
    analyzer_.analyze(routine(23.9), 4);
    analyzer_.setRegistry(nullptr);

    EXPECT_GE(reg.counter("input_warnings_total").value(), 1u);
    std::string json = obs::exportJson(reg);
    EXPECT_NE(json.find("input_warnings_total"), std::string::npos);
    EXPECT_NE(json.find("clamped extrapolation"), std::string::npos);
}

TEST(AnalyzerCreateTest, RejectsMismatchedProfile)
{
    platforms::Platform p = test::tinyPlatform();
    util::Result<Analyzer> a =
        Analyzer::create(p, test::syntheticProfile("otherbox"));
    ASSERT_FALSE(a.ok());
    EXPECT_EQ(a.status().code(), util::ErrorCode::FailedPrecondition);
}

TEST(AnalyzerCreateTest, RejectsEmptyProfile)
{
    platforms::Platform p = test::tinyPlatform();
    util::Result<Analyzer> a = Analyzer::create(p, xmem::LatencyProfile());
    ASSERT_FALSE(a.ok());
    EXPECT_EQ(a.status().code(), util::ErrorCode::FailedPrecondition);
}

TEST(AnalyzerCreateTest, AcceptsMatchedProfile)
{
    platforms::Platform p = test::tinyPlatform();
    util::Result<Analyzer> a = Analyzer::create(p, test::syntheticProfile());
    ASSERT_TRUE(a.ok()) << a.status().toString();
    Analysis an = a->analyze(routine(12.0), 4);
    EXPECT_GT(an.nAvg, 0.0);
}

TEST(AnalyzerDeathTest, ProfilePlatformMismatchPanics)
{
    platforms::Platform p = test::tinyPlatform();
    EXPECT_DEATH(Analyzer(p, test::syntheticProfile("otherbox")),
                 "profile is for");
}

TEST(AnalyzerDeathTest, EmptyProfilePanics)
{
    platforms::Platform p = test::tinyPlatform();
    EXPECT_DEATH(Analyzer(p, xmem::LatencyProfile()), "latency profile");
}

TEST(AnalyzerNamesTest, EnumNames)
{
    EXPECT_STREQ(accessClassName(AccessClass::Random), "random");
    EXPECT_STREQ(accessClassName(AccessClass::Streaming), "streaming");
    EXPECT_STREQ(mshrLevelName(MshrLevel::L1), "L1");
    EXPECT_STREQ(mshrLevelName(MshrLevel::L2), "L2");
}

} // namespace
} // namespace lll::core
