/**
 * @file
 * Tests for the socket front-end (DESIGN.md §14): frame decoding,
 * admission control and shedding, per-connection pipelining caps,
 * concurrent-client byte-identity with the `serve --batch` path,
 * counter reconciliation, fault handling (malformed frames, oversized
 * lines, slow-loris, idle connections) and drain-on-shutdown.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/sweep.hh"
#include "net/client.hh"
#include "net/frame.hh"
#include "net/listener.hh"
#include "net/serve_handler.hh"
#include "obs/registry.hh"
#include "service/service.hh"
#include "util/status.hh"
#include "xmem/xmem_harness.hh"

namespace lll::net
{
namespace
{

using util::ErrorCode;
using util::Status;

// ---------------------------------------------------------------- frames

TEST(FrameDecoder, SplitsNewlineFrames)
{
    FrameDecoder d(1024);
    const std::string in = "{\"a\": 1}\n{\"b\": 2}\n";
    d.feed(in.data(), in.size());
    std::string frame;
    Status err;
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Frame);
    EXPECT_EQ(frame, "{\"a\": 1}");
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Frame);
    EXPECT_EQ(frame, "{\"b\": 2}");
    EXPECT_EQ(d.next(&frame, &err), FrameDecoder::Next::NeedMore);
}

TEST(FrameDecoder, StripsCarriageReturns)
{
    FrameDecoder d(1024);
    const std::string in = "{\"a\": 1}\r\n";
    d.feed(in.data(), in.size());
    std::string frame;
    Status err;
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Frame);
    EXPECT_EQ(frame, "{\"a\": 1}");
}

TEST(FrameDecoder, ReassemblesAcrossFeeds)
{
    FrameDecoder d(1024);
    std::string frame;
    Status err;
    const std::string part1 = "{\"a\":";
    d.feed(part1.data(), part1.size());
    EXPECT_EQ(d.next(&frame, &err), FrameDecoder::Next::NeedMore);
    EXPECT_TRUE(d.hasPartial());
    const std::string part2 = " 1}\n";
    d.feed(part2.data(), part2.size());
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Frame);
    EXPECT_EQ(frame, "{\"a\": 1}");
    EXPECT_FALSE(d.hasPartial());
}

TEST(FrameDecoder, AcceptsLengthPrefixedFrames)
{
    FrameDecoder d(1024);
    // A length-framed payload may contain raw newlines.
    const std::string in = "6:a\nb\ncd{\"x\": 1}\n";
    d.feed(in.data(), in.size());
    std::string frame;
    Status err;
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Frame);
    EXPECT_EQ(frame, "a\nb\ncd"); // 6 bytes, newlines included
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Frame);
    EXPECT_EQ(frame, "{\"x\": 1}");
}

TEST(FrameDecoder, SwallowsBlankKeepAlives)
{
    FrameDecoder d(1024);
    const std::string in = "\n\r\n   \n{\"a\": 1}\n\n";
    d.feed(in.data(), in.size());
    std::string frame;
    Status err;
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Frame);
    EXPECT_EQ(frame, "{\"a\": 1}");
    EXPECT_EQ(d.next(&frame, &err), FrameDecoder::Next::NeedMore);
    EXPECT_FALSE(d.hasPartial());
}

TEST(FrameDecoder, RejectsOversizedLines)
{
    FrameDecoder d(16);
    const std::string in(100, 'x'); // no newline yet — still too big
    d.feed(in.data(), in.size());
    std::string frame;
    Status err;
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Error);
    EXPECT_EQ(err.code(), ErrorCode::InvalidArgument);
    // Poisoned: the stream cannot recover.
    const std::string more = "{\"a\": 1}\n";
    d.feed(more.data(), more.size());
    EXPECT_EQ(d.next(&frame, &err), FrameDecoder::Next::Error);
}

TEST(FrameDecoder, RejectsOversizedLengthPrefix)
{
    FrameDecoder d(16);
    const std::string in = "4096:";
    d.feed(in.data(), in.size());
    std::string frame;
    Status err;
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Error);
    EXPECT_EQ(err.code(), ErrorCode::InvalidArgument);
}

TEST(FrameDecoder, RejectsMalformedLengthPrefix)
{
    FrameDecoder d(1024);
    const std::string in = "123xyz";
    d.feed(in.data(), in.size());
    std::string frame;
    Status err;
    ASSERT_EQ(d.next(&frame, &err), FrameDecoder::Next::Error);
    EXPECT_EQ(err.code(), ErrorCode::InvalidArgument);
}

// ------------------------------------------------------------ parseHostPort

TEST(ParseHostPort, SplitsHostAndPort)
{
    std::string host;
    int port = -1;
    ASSERT_TRUE(parseHostPort("127.0.0.1:8080", &host, &port).ok());
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8080);
}

TEST(ParseHostPort, RejectsGarbage)
{
    std::string host;
    int port = -1;
    EXPECT_FALSE(parseHostPort("nope", &host, &port).ok());
    EXPECT_FALSE(parseHostPort(":123", &host, &port).ok());
    EXPECT_FALSE(parseHostPort("h:", &host, &port).ok());
    EXPECT_FALSE(parseHostPort("h:99999", &host, &port).ok());
    EXPECT_FALSE(parseHostPort("h:12x", &host, &port).ok());
}

// --------------------------------------------------------------- listener

/** A fast request (short windows, few cores) — same shape as the
 *  test_service helper so stage results come from the shared cache. */
std::string
quickRequest(const std::string &id)
{
    return "{\"schema_version\": 1, \"id\": \"" + id +
           "\", \"platform\": \"skl\", \"workload\": \"isx\", "
           "\"cores\": 6, \"warmup_us\": 5, \"measure_us\": 10}";
}

/** The profile cache must be on disk before worker threads serve
 *  concurrently (they must never race to measure + write it). */
void
warmProfileCache()
{
    platforms::Platform skl = platforms::skl();
    util::Result<xmem::LatencyProfile> prof =
        xmem::XMemHarness().measureCachedChecked(
            skl, xmem::defaultProfilePath(skl));
    ASSERT_TRUE(prof.ok()) << prof.status().toString();
}

/** An in-process listener on an ephemeral loopback port, with run()
 *  on its own thread and the real ServeHandler behind it. */
class TestServer
{
  public:
    explicit TestServer(ListenerParams params)
    {
        ServeHandlerParams hp;
        hp.cache = &cache_;
        params.tcpPort = 0; // ephemeral
        if (!params.handler)
            params.handler = ServeHandler(hp);
        params.registry = &registry_;
        listener_ = std::make_unique<Listener>(std::move(params));
        Status s = listener_->start();
        EXPECT_TRUE(s.ok()) << s.toString();
        thread_ = std::thread([this] { runStatus_ = listener_->run(); });
    }

    ~TestServer()
    {
        if (thread_.joinable())
            stop();
    }

    Status stop()
    {
        listener_->requestShutdown();
        thread_.join();
        return runStatus_;
    }

    int port() const { return listener_->tcpPort(); }

    /** Only valid after stop() — the registry belongs to the event
     *  loop while it runs. */
    obs::MetricRegistry &registry() { return registry_; }

    uint64_t counter(const char *name)
    {
        return registry_.counter(name).value();
    }

  private:
    core::ResultCache cache_;
    obs::MetricRegistry registry_;
    std::unique_ptr<Listener> listener_;
    std::thread thread_;
    Status runStatus_;
};

TEST(Listener, ServesOneRequest)
{
    warmProfileCache();
    TestServer server(ListenerParams{});
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();
    ASSERT_TRUE(client->sendAll(quickRequest("r1") + "\n").ok());
    util::Result<std::string> line = client->recvLine(30000);
    ASSERT_TRUE(line.ok()) << line.status().toString();
    EXPECT_NE(line->find("\"id\": \"r1\""), std::string::npos);
    EXPECT_NE(line->find("\"code\": \"ok\""), std::string::npos);
}

TEST(Listener, V2SearchRequestMatchesTheBatchPathByteForByte)
{
    warmProfileCache();

    const std::string search_line =
        "{\"schema_version\": 2, \"kind\": \"search\", \"id\": "
        "\"s1\", \"platform\": \"skl\", \"workload\": \"isx\", "
        "\"cores\": 6, \"warmup_us\": 5, \"measure_us\": 10, "
        "\"axes\": [\"l2_mshrs=8,16\"]}";

    // Warm the candidate-profile cache (a fresh measurement and its
    // disk round-trip differ in the last ulp), then take the batch
    // path's rendering as the byte-exact expectation.
    std::string expected;
    {
        core::ResultCache warm_cache;
        service::RunService::Params sp;
        sp.cache = &warm_cache;
        service::RunService svc(sp);
        ASSERT_FALSE(svc.serveLines({search_line}).empty());
    }
    {
        core::ResultCache batch_cache;
        service::RunService::Params sp;
        sp.cache = &batch_cache;
        service::RunService svc(sp);
        std::vector<service::RunResponse> rs =
            svc.serveLines({search_line});
        ASSERT_EQ(rs.size(), 1u);
        ASSERT_TRUE(rs[0].status.ok()) << rs[0].status.toString();
        expected = service::renderRunResponse(rs[0]);
    }

    TestServer server(ListenerParams{});
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();
    ASSERT_TRUE(client->sendAll(search_line + "\n").ok());
    util::Result<std::string> line = client->recvLine(60000);
    ASSERT_TRUE(line.ok()) << line.status().toString();
    EXPECT_EQ(*line, expected);
    EXPECT_NE(line->find("\"schema_version\": 2"), std::string::npos);
    EXPECT_NE(line->find("\"frontier\": ["), std::string::npos);
}

TEST(Listener, ConcurrentClientsMatchTheBatchPathByteForByte)
{
    warmProfileCache();

    // The same 4-line batch every client will send.
    std::vector<std::string> lines;
    lines.push_back(quickRequest("a"));
    lines.push_back(
        "{\"schema_version\": 1, \"platform\": \"skl\", \"workload\": "
        "\"isx\", \"cores\": 6, \"warmup_us\": 5, \"measure_us\": "
        "10}"); // no id — defaults to the per-connection "#2"
    lines.push_back("this is not json");
    lines.push_back(quickRequest("a")); // coalesces with line 1

    // Expected responses straight from the service, exactly as the
    // --batch path renders them.
    core::ResultCache batch_cache;
    service::RunService::Params sp;
    sp.jobs = 1;
    sp.cache = &batch_cache;
    service::RunService svc(sp);
    std::vector<std::string> expected;
    for (const service::RunResponse &r : svc.serveLines(lines))
        expected.push_back(service::renderRunResponse(r));
    ASSERT_EQ(expected.size(), lines.size());

    ListenerParams params;
    params.workers = 3;
    params.maxInflight = 16;
    params.maxPipelined = 8;
    TestServer server(params);

    constexpr int kClients = 4;
    std::vector<std::vector<std::string>> got(kClients);
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            util::Result<BlockingClient> cl =
                BlockingClient::connectTcp("127.0.0.1", server.port());
            if (!cl.ok()) {
                errors[c] = cl.status().toString();
                return;
            }
            std::string payload;
            for (const std::string &l : lines)
                payload += l + "\n";
            Status s = cl->sendAll(payload);
            if (!s.ok()) {
                errors[c] = s.toString();
                return;
            }
            for (size_t i = 0; i < lines.size(); ++i) {
                util::Result<std::string> line = cl->recvLine(60000);
                if (!line.ok()) {
                    errors[c] = line.status().toString();
                    return;
                }
                got[c].push_back(*line);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (int c = 0; c < kClients; ++c) {
        ASSERT_TRUE(errors[c].empty()) << "client " << c << ": "
                                       << errors[c];
        EXPECT_EQ(got[c], expected) << "client " << c;
    }

    Status run = server.stop();
    EXPECT_TRUE(run.ok()) << run.toString();

    // Reconciliation: every received request was either admitted or
    // shed, and every one of them produced exactly one response.
    const uint64_t received =
        server.counter("net.requests_received_total");
    EXPECT_EQ(received, uint64_t(kClients) * lines.size());
    EXPECT_EQ(server.counter("net.requests_admitted_total") +
                  server.counter("net.requests_shed_total"),
              received);
    EXPECT_EQ(server.counter("net.responses_total"), received);
    EXPECT_EQ(server.counter("net.conns_accepted_total"),
              uint64_t(kClients));
}

TEST(Listener, PipeliningCapStillAnswersEverythingInOrder)
{
    warmProfileCache();
    ListenerParams params;
    params.workers = 2;
    params.maxInflight = 4;
    params.maxPipelined = 2; // forces pause/resume on the read side
    TestServer server(params);

    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();
    constexpr int kRequests = 12;
    std::string payload;
    for (int i = 0; i < kRequests; ++i)
        payload += quickRequest("q" + std::to_string(i)) + "\n";
    ASSERT_TRUE(client->sendAll(payload).ok());
    for (int i = 0; i < kRequests; ++i) {
        util::Result<std::string> line = client->recvLine(60000);
        ASSERT_TRUE(line.ok()) << i << ": " << line.status().toString();
        EXPECT_NE(line->find("\"id\": \"q" + std::to_string(i) + "\""),
                  std::string::npos)
            << *line;
    }
}

TEST(Listener, ShedsBeyondAdmissionCapacityWithStructuredUnavailable)
{
    // maxInflight 0 is degenerate but deterministic: every request is
    // shed, none ever reaches the service.
    ListenerParams params;
    params.maxInflight = 0;
    TestServer server(params);

    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();
    ASSERT_TRUE(client
                    ->sendAll(quickRequest("x1") + "\n" +
                              quickRequest("x2") + "\n")
                    .ok());
    for (int i = 1; i <= 2; ++i) {
        util::Result<std::string> line = client->recvLine(15000);
        ASSERT_TRUE(line.ok()) << line.status().toString();
        // Shed responses use the positional id (the request was never
        // parsed) and the standard status envelope with null data.
        EXPECT_NE(line->find("\"id\": \"#" + std::to_string(i) + "\""),
                  std::string::npos)
            << *line;
        EXPECT_NE(line->find("\"code\": \"unavailable\""),
                  std::string::npos)
            << *line;
        EXPECT_NE(line->find("\"data\": null"), std::string::npos)
            << *line;
    }

    Status run = server.stop();
    EXPECT_TRUE(run.ok()) << run.toString();
    EXPECT_EQ(server.counter("net.requests_shed_total"), 2u);
    EXPECT_EQ(server.counter("net.requests_admitted_total"), 0u);
}

TEST(Listener, MalformedFrameGetsOneErrorThenClose)
{
    TestServer server(ListenerParams{});
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();
    ASSERT_TRUE(client->sendAll("123xyz\n").ok());
    util::Result<std::string> line = client->recvLine(15000);
    ASSERT_TRUE(line.ok()) << line.status().toString();
    EXPECT_NE(line->find("\"code\": \"invalid-argument\""),
              std::string::npos)
        << *line;
    // The stream is unrecoverable, so the server closes it...
    util::Result<std::string> eof = client->recvLine(15000);
    ASSERT_FALSE(eof.ok());
    EXPECT_EQ(eof.status().code(), ErrorCode::IoError);

    // ...while new connections keep working.
    util::Result<BlockingClient> fresh =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(fresh.ok()) << fresh.status().toString();
    warmProfileCache();
    ASSERT_TRUE(fresh->sendAll(quickRequest("ok1") + "\n").ok());
    util::Result<std::string> fresh_line = fresh->recvLine(30000);
    ASSERT_TRUE(fresh_line.ok()) << fresh_line.status().toString();
    EXPECT_NE(fresh_line->find("\"id\": \"ok1\""), std::string::npos);

    Status run = server.stop();
    EXPECT_TRUE(run.ok()) << run.toString();
    EXPECT_EQ(server.counter("net.requests_malformed_total"), 1u);
}

TEST(Listener, OversizedLineIsRejectedNotBuffered)
{
    ListenerParams params;
    params.maxFrameBytes = 128;
    TestServer server(params);
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();
    const std::string huge(4096, 'x');
    ASSERT_TRUE(client->sendAll(huge + "\n").ok());
    util::Result<std::string> line = client->recvLine(15000);
    ASSERT_TRUE(line.ok()) << line.status().toString();
    EXPECT_NE(line->find("\"code\": \"invalid-argument\""),
              std::string::npos)
        << *line;
    EXPECT_NE(line->find("limit"), std::string::npos) << *line;
}

TEST(Listener, SlowLorisConnectionIsReaped)
{
    ListenerParams params;
    params.readTimeoutMs = 150;
    TestServer server(params);
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();
    // A frame that never completes.
    ASSERT_TRUE(client->sendAll("{\"schema_version\": 1").ok());
    util::Result<std::string> eof = client->recvLine(15000);
    ASSERT_FALSE(eof.ok());
    EXPECT_EQ(eof.status().code(), ErrorCode::IoError); // closed on us

    Status run = server.stop();
    EXPECT_TRUE(run.ok()) << run.toString();
    EXPECT_EQ(server.counter("net.conns_closed_read_timeout_total"),
              1u);
}

TEST(Listener, IdleConnectionIsReaped)
{
    ListenerParams params;
    params.idleTimeoutMs = 150;
    TestServer server(params);
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();
    util::Result<std::string> eof = client->recvLine(15000);
    ASSERT_FALSE(eof.ok());
    EXPECT_EQ(eof.status().code(), ErrorCode::IoError);

    Status run = server.stop();
    EXPECT_TRUE(run.ok()) << run.toString();
    EXPECT_EQ(server.counter("net.conns_closed_idle_total"), 1u);
}

TEST(Listener, MidRequestDisconnectDoesNotDisturbOthers)
{
    warmProfileCache();
    ListenerParams params;
    params.workers = 2;
    TestServer server(params);

    // One client sends a request and disconnects without reading.
    {
        util::Result<BlockingClient> rude =
            BlockingClient::connectTcp("127.0.0.1", server.port());
        ASSERT_TRUE(rude.ok()) << rude.status().toString();
        ASSERT_TRUE(rude->sendAll(quickRequest("gone") + "\n").ok());
        rude->close();
    }

    // A well-behaved client is still served.
    util::Result<BlockingClient> polite =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(polite.ok()) << polite.status().toString();
    ASSERT_TRUE(polite->sendAll(quickRequest("here") + "\n").ok());
    util::Result<std::string> line = polite->recvLine(30000);
    ASSERT_TRUE(line.ok()) << line.status().toString();
    EXPECT_NE(line->find("\"id\": \"here\""), std::string::npos);

    Status run = server.stop();
    EXPECT_TRUE(run.ok()) << run.toString();
}

TEST(Listener, DrainShutdownCompletesAdmittedWork)
{
    warmProfileCache();
    TestServer server(ListenerParams{});
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();
    ASSERT_TRUE(client->sendAll(quickRequest("d1") + "\n").ok());
    // Give the event loop a moment to admit it, then drain.
    util::Result<std::string> line = client->recvLine(30000);
    ASSERT_TRUE(line.ok()) << line.status().toString();
    EXPECT_NE(line->find("\"id\": \"d1\""), std::string::npos);

    Status run = server.stop();
    EXPECT_TRUE(run.ok()) << run.toString();
    EXPECT_EQ(server.counter("net.requests_admitted_total"), 1u);
    EXPECT_EQ(server.counter("net.responses_total"), 1u);
}

TEST(Listener, UnixSocketServes)
{
    warmProfileCache();
    const std::string path =
        "/tmp/lll_test_net_" + std::to_string(::getpid()) + ".sock";
    ListenerParams params;
    params.tcpPort = -1;
    params.unixPath = path;
    ServeHandlerParams hp;
    core::ResultCache cache;
    hp.cache = &cache;
    params.handler = ServeHandler(hp);
    obs::MetricRegistry registry;
    params.registry = &registry;
    Listener listener(std::move(params));
    ASSERT_TRUE(listener.start().ok());
    std::thread runner([&listener] { (void)listener.run(); });

    util::Result<BlockingClient> client =
        BlockingClient::connectUnix(path);
    ASSERT_TRUE(client.ok()) << client.status().toString();
    ASSERT_TRUE(client->sendAll(quickRequest("u1") + "\n").ok());
    util::Result<std::string> line = client->recvLine(30000);
    ASSERT_TRUE(line.ok()) << line.status().toString();
    EXPECT_NE(line->find("\"id\": \"u1\""), std::string::npos);

    listener.requestShutdown();
    runner.join();
    std::remove(path.c_str());
}

} // namespace
} // namespace lll::net
