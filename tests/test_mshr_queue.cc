/**
 * @file
 * Tests for the MSHR queue: capacity, coalescing index, occupancy
 * integration (the paper's n_avg ground truth) and stall accounting.
 */

#include <gtest/gtest.h>

#include "sim/mshr_queue.hh"

namespace lll::sim
{
namespace
{

TEST(MshrQueueTest, AllocateAndLookup)
{
    MshrQueue q("t", 4);
    EXPECT_EQ(q.lookup(7), nullptr);
    Mshr *m = q.allocate(7, ReqType::DemandLoad, 0);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->lineAddr, 7u);
    EXPECT_EQ(q.lookup(7), m);
    EXPECT_EQ(q.used(), 1u);
}

TEST(MshrQueueTest, FullAtCapacity)
{
    MshrQueue q("t", 2);
    q.allocate(1, ReqType::DemandLoad, 0);
    EXPECT_FALSE(q.full());
    q.allocate(2, ReqType::DemandLoad, 0);
    EXPECT_TRUE(q.full());
}

TEST(MshrQueueTest, DeallocateFrees)
{
    MshrQueue q("t", 2);
    Mshr *a = q.allocate(1, ReqType::DemandLoad, 0);
    q.allocate(2, ReqType::DemandLoad, 0);
    q.deallocate(a, 10);
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.lookup(1), nullptr);
    EXPECT_NE(q.lookup(2), nullptr);
    EXPECT_EQ(q.used(), 1u);
}

TEST(MshrQueueTest, ReallocateSameLineAfterFree)
{
    MshrQueue q("t", 2);
    Mshr *a = q.allocate(5, ReqType::DemandLoad, 0);
    q.deallocate(a, 1);
    Mshr *b = q.allocate(5, ReqType::HwPrefetch, 2);
    EXPECT_EQ(b->originType, ReqType::HwPrefetch);
    EXPECT_EQ(q.used(), 1u);
}

TEST(MshrQueueTest, UnboundedGrows)
{
    MshrQueue q("t", 0);
    for (uint64_t i = 0; i < 500; ++i)
        q.allocate(i, ReqType::DemandLoad, i);
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.used(), 500u);
    // All lines remain addressable after internal growth.
    for (uint64_t i = 0; i < 500; ++i)
        EXPECT_NE(q.lookup(i), nullptr);
}

TEST(MshrQueueTest, OccupancyIntegration)
{
    MshrQueue q("t", 8);
    // 0 until t=100, then 2 until t=200, then 1 until t=300.
    Mshr *a = q.allocate(1, ReqType::DemandLoad, 100);
    q.allocate(2, ReqType::DemandLoad, 100);
    q.deallocate(a, 200);
    // mean over [0,300] = (0*100 + 2*100 + 1*100)/300 = 1.0
    EXPECT_NEAR(q.avgOccupancy(0, 300), 1.0, 1e-9);
}

TEST(MshrQueueTest, OccupancyWindowedAfterReset)
{
    MshrQueue q("t", 8);
    q.allocate(1, ReqType::DemandLoad, 0);
    q.resetStats(1000);
    // level stays 1 across the reset
    EXPECT_NEAR(q.avgOccupancy(1000, 2000), 1.0, 1e-9);
}

TEST(MshrQueueTest, MaxOccupancy)
{
    MshrQueue q("t", 8);
    Mshr *a = q.allocate(1, ReqType::DemandLoad, 0);
    q.allocate(2, ReqType::DemandLoad, 5);
    q.allocate(3, ReqType::DemandLoad, 5);
    q.deallocate(a, 10);
    EXPECT_DOUBLE_EQ(q.maxOccupancy(), 3.0);
}

TEST(MshrQueueTest, FullStallAccounting)
{
    MshrQueue q("t", 1);
    q.allocate(1, ReqType::DemandLoad, 0);
    q.recordFullStall();
    q.recordFullStall();
    EXPECT_EQ(q.fullStalls(), 2u);
    q.resetStats(10);
    EXPECT_EQ(q.fullStalls(), 0u);
}

TEST(MshrQueueTest, AllocationCounter)
{
    MshrQueue q("t", 4);
    q.allocate(1, ReqType::DemandLoad, 0);
    q.allocate(2, ReqType::DemandLoad, 0);
    EXPECT_EQ(q.allocations(), 2u);
    q.resetStats(5);
    EXPECT_EQ(q.allocations(), 0u);
}

TEST(MshrQueueTest, TargetsParkOnEntry)
{
    MshrQueue q("t", 4);
    Mshr *m = q.allocate(9, ReqType::DemandLoad, 0);
    MemRequest r1, r2;
    m->targets.push_back(&r1);
    m->targets.push_back(&r2);
    EXPECT_EQ(q.lookup(9)->targets.size(), 2u);
    m->targets.clear();
    q.deallocate(m, 1);
}

TEST(MshrQueueDeathTest, AllocateWhenFullPanics)
{
    MshrQueue q("t", 1);
    q.allocate(1, ReqType::DemandLoad, 0);
    EXPECT_DEATH(q.allocate(2, ReqType::DemandLoad, 0), "full");
}

TEST(MshrQueueDeathTest, DuplicateAllocatePanics)
{
    MshrQueue q("t", 4);
    q.allocate(1, ReqType::DemandLoad, 0);
    EXPECT_DEATH(q.allocate(1, ReqType::DemandLoad, 0), "duplicate");
}

TEST(MshrQueueDeathTest, DeallocateWithTargetsPanics)
{
    MshrQueue q("t", 4);
    Mshr *m = q.allocate(1, ReqType::DemandLoad, 0);
    MemRequest r;
    m->targets.push_back(&r);
    EXPECT_DEATH(q.deallocate(m, 1), "targets");
    m->targets.clear();
    q.deallocate(m, 1);
}

} // namespace
} // namespace lll::sim
