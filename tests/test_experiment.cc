/**
 * @file
 * Tests for the experiment runner: stage caching, speedup math and
 * paper-table assembly, run on a reduced core count for speed.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "test_common.hh"
#include "workloads/workload.hh"

namespace lll::core
{
namespace
{

class ExperimentTest : public ::testing::Test
{
  protected:
    ExperimentTest()
        : plat_(platforms::findPlatform("skl").take()),
          isx_(workloads::findWorkload("isx").take())
    {
        params_.coresUsed = 6;
        params_.warmupUs = 5.0;
        params_.measureUs = 10.0;
        profile_ = test::syntheticProfile("skl", plat_.peakGBs);
    }

    platforms::Platform plat_;
    workloads::WorkloadPtr isx_;
    xmem::LatencyProfile profile_;
    Experiment::Params params_;
};

TEST_F(ExperimentTest, StageIsCachedByLabel)
{
    Experiment exp(plat_, *isx_, profile_, params_);
    const StageMetrics &a = exp.stage({});
    const StageMetrics &b = exp.stage({});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.label, "base");
}

TEST_F(ExperimentTest, SpeedupOfIdentityIsOne)
{
    Experiment exp(plat_, *isx_, profile_, params_);
    EXPECT_DOUBLE_EQ(exp.speedup({}, {}), 1.0);
}

TEST_F(ExperimentTest, StageCarriesAnalysisAndProfile)
{
    Experiment exp(plat_, *isx_, profile_, params_);
    const StageMetrics &m = exp.stage({});
    EXPECT_GT(m.run.totalGBs, 0.0);
    EXPECT_NEAR(m.profile.totalGBs, m.run.totalGBs, 0.01);
    EXPECT_GT(m.analysis.nAvg, 0.0);
    // ISx is random-dominated: the workload hint routes to L1.
    EXPECT_EQ(m.analysis.limitingLevel, MshrLevel::L1);
    EXPECT_EQ(m.analysis.coresUsed, 6);
}

TEST_F(ExperimentTest, PaperTableMatchesRows)
{
    Experiment exp(plat_, *isx_, profile_, params_);
    auto rows = exp.paperTable();
    auto expected = isx_->paperRows(plat_);
    ASSERT_EQ(rows.size(), expected.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].source, expected[i].source.label());
        EXPECT_EQ(rows[i].optLabel, expected[i].optLabel);
        EXPECT_DOUBLE_EQ(rows[i].paperSpeedup, expected[i].paperSpeedup);
        if (expected[i].applied)
            EXPECT_GT(rows[i].speedup, 0.0);
        else
            EXPECT_DOUBLE_EQ(rows[i].speedup, 0.0);
    }
}

TEST_F(ExperimentTest, CoresUsedDefaultsToAll)
{
    Experiment exp(plat_, *isx_, profile_);
    EXPECT_EQ(exp.coresUsed(), plat_.totalCores);
}

TEST_F(ExperimentTest, ThroughputBasisIsWorkUnits)
{
    Experiment exp(plat_, *isx_, profile_, params_);
    const StageMetrics &m = exp.stage({});
    EXPECT_NEAR(m.throughput, m.run.throughput, 1e-9);
    EXPECT_GT(m.throughput, 0.0);
}

TEST_F(ExperimentTest, CreateAcceptsNonVacuousConfig)
{
    auto exp = Experiment::create(plat_, *isx_, profile_, params_);
    EXPECT_TRUE(exp.ok()) << exp.status().toString();
}

TEST_F(ExperimentTest, CreateRefusesVacuousConfig)
{
    // One KNL core barely loads the memory system: deriveBounds() puts
    // the MLP ceiling under 5% of peak (LLL-LINT-102), so every
    // Little's-law conclusion would be noise.  create() must refuse
    // instead of simulating.
    platforms::Platform knl = platforms::findPlatform("knl").take();
    workloads::WorkloadPtr isx = workloads::findWorkload("isx").take();
    Experiment::Params params;
    params.coresUsed = 1;
    params.warmupUs = 5.0;
    params.measureUs = 10.0;
    auto exp = Experiment::create(
        knl, *isx, test::syntheticProfile("knl", knl.peakGBs), params);
    ASSERT_FALSE(exp.ok());
    EXPECT_EQ(exp.status().code(), util::ErrorCode::FailedPrecondition);
    EXPECT_NE(exp.status().message().find("LLL-LINT"),
              std::string::npos);
}

} // namespace
} // namespace lll::core
