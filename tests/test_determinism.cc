/**
 * @file
 * Tests for the event-order determinism checker (analysis/determinism):
 * a deliberately tie-break-sensitive toy handler must be caught, a
 * commuting one must pass, and the real simulator must be order-robust
 * under permuted equal-priority ties.
 */

#include <gtest/gtest.h>

#include "analysis/determinism.hh"
#include "sim/event_queue.hh"
#include "test_common.hh"
#include "workloads/workload.hh"

namespace lll::analysis
{
namespace
{

bool
hasDiagnostic(const util::DiagnosticList &diags, const std::string &id)
{
    for (const util::Diagnostic &d : diags.all()) {
        if (d.id == id)
            return true;
    }
    return false;
}

// A handler pair that does NOT commute: "double" then "add three" gives
// 2x+3, the swapped order gives 2(x+3).  Both events land at the same
// tick with the same (default) priority, so their pop order is exactly
// the tie-break freedom the checker perturbs.
MetricVector
racyRunner(uint64_t seed)
{
    sim::EventQueue eq;
    eq.setTieBreakSeed(seed);
    double value = 1.0;
    eq.schedule(100, [&] { value *= 2.0; });
    eq.schedule(100, [&] { value += 3.0; });
    eq.runUntil(1000);
    return {{"value", value}};
}

TEST(DeterminismCheckerTest, CatchesOrderSensitiveToyHandler)
{
    DeterminismReport rep = checkDeterminism(racyRunner, {}, "toy");
    EXPECT_FALSE(rep.deterministic);
    ASSERT_FALSE(rep.diffs.empty());
    EXPECT_EQ(rep.diffs[0].name, "value");
    EXPECT_TRUE(rep.diagnostics.hasErrors());
    EXPECT_TRUE(hasDiagnostic(rep.diagnostics, "LLL-DET-001"));
}

TEST(DeterminismCheckerTest, PassesCommutingHandlers)
{
    // Addition commutes, so any pop order yields the same sum.
    auto runner = [](uint64_t seed) -> MetricVector {
        sim::EventQueue eq;
        eq.setTieBreakSeed(seed);
        double value = 0.0;
        for (int i = 0; i < 8; ++i)
            eq.schedule(100, [&value, i] { value += i; });
        eq.runUntil(1000);
        return {{"sum", value}};
    };
    DeterminismReport rep = checkDeterminism(runner);
    EXPECT_TRUE(rep.deterministic);
    EXPECT_TRUE(rep.diffs.empty());
    EXPECT_FALSE(rep.diagnostics.hasErrors());
    EXPECT_EQ(rep.seedsRun, 3u);
}

TEST(DeterminismCheckerTest, PinnedPrioritiesAreNotPerturbed)
{
    // The same non-commuting pair, but with the order pinned by
    // distinct priorities: no longer a race, so the checker passes.
    auto runner = [](uint64_t seed) -> MetricVector {
        sim::EventQueue eq;
        eq.setTieBreakSeed(seed);
        double value = 1.0;
        eq.schedule(100, sim::schedPrio(sim::SchedBand::Fill),
                    [&] { value *= 2.0; });
        eq.schedule(100, sim::schedPrio(sim::SchedBand::Thread),
                    [&] { value += 3.0; });
        eq.runUntil(1000);
        return {{"value", value}};
    };
    DeterminismReport rep = checkDeterminism(runner);
    EXPECT_TRUE(rep.deterministic) << rep.diagnostics.renderText();
}

TEST(DeterminismCheckerTest, FlagsMetricSetMismatch)
{
    // A runner whose *metric list* changes shape under perturbation is
    // as broken as one whose values drift.
    auto runner = [](uint64_t seed) -> MetricVector {
        if (seed == 0)
            return {{"a", 1.0}};
        return {{"a", 1.0}, {"b", 2.0}};
    };
    DeterminismReport rep = checkDeterminism(runner);
    EXPECT_FALSE(rep.deterministic);
    EXPECT_TRUE(hasDiagnostic(rep.diagnostics, "LLL-DET-002"));
}

TEST(DeterminismCheckerTest, RespectsRelativeTolerance)
{
    auto runner = [](uint64_t seed) -> MetricVector {
        return {{"v", seed == 0 ? 100.0 : 100.0001}};
    };
    DeterminismOptions strict;
    EXPECT_FALSE(checkDeterminism(runner, strict).deterministic);

    DeterminismOptions loose;
    loose.relTolerance = 1e-3;
    EXPECT_TRUE(checkDeterminism(runner, loose).deterministic);
}

TEST(DeterminismCheckerTest, RealSimulatorIsOrderRobust)
{
    // The production simulator pins every order-dependent same-tick
    // interaction with scheduling priorities (see SchedBand), so the
    // full RunResult must be bit-identical under permuted ties.
    platforms::Platform skl = platforms::skl();
    workloads::WorkloadPtr isx = workloads::findWorkload("isx").take();
    DeterminismOptions opt;
    opt.warmupUs = 1.0;
    opt.measureUs = 3.0;
    util::Result<DeterminismReport> rep = checkRunDeterminism(
        skl, *isx, workloads::OptSet{}, opt);
    ASSERT_TRUE(rep.ok()) << rep.status().toString();
    EXPECT_TRUE(rep.value().deterministic)
        << rep.value().diagnostics.renderText();
    EXPECT_EQ(rep.value().seedsRun, 3u);
    EXPECT_GT(rep.value().metricsCompared, 20u);
}

TEST(DeterminismCheckerTest, RealSimulatorRejectsInfeasibleVariant)
{
    platforms::Platform skl = platforms::skl();
    workloads::WorkloadPtr isx = workloads::findWorkload("isx").take();
    workloads::OptSet opts{workloads::Opt::Smt4};
    util::Result<DeterminismReport> rep =
        checkRunDeterminism(skl, *isx, opts);
    EXPECT_FALSE(rep.ok());
}

} // namespace
} // namespace lll::analysis
