/**
 * @file
 * Tests for the batched run service (DESIGN.md §12): request parsing
 * and validation, response ordering, duplicate-unit coalescing (one
 * simulation per distinct stage key), per-request failure isolation,
 * warm-cache reruns, and the service telemetry counters.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/registry.hh"
#include "obs/span.hh"
#include "search/search.hh"
#include "service/service.hh"
#include "util/status.hh"
#include "xmem/xmem_harness.hh"

namespace lll::service
{
namespace
{

using util::ErrorCode;

/**
 * Stage simulations run so far on this thread (workers fold into it).
 * Counts only the `stage[...]/simulate` span itself, not the
 * sim.warmup/sim.measure phases nested inside it — one per stage.
 */
uint64_t
simulateSpanCount()
{
    const std::string leaf = "/simulate";
    uint64_t n = 0;
    for (const obs::SpanTracker::Stat &s :
         obs::SpanTracker::global().stats()) {
        if (s.path.size() >= leaf.size() &&
            s.path.compare(s.path.size() - leaf.size(), leaf.size(),
                           leaf) == 0)
            n += s.count;
    }
    return n;
}

/** A fast well-formed request line (short windows, few cores). */
std::string
quickRequest(const std::string &id, const std::string &workload,
             const std::string &extra = {})
{
    return "{\"schema_version\": 1, \"id\": \"" + id +
           "\", \"platform\": \"skl\", \"workload\": \"" + workload +
           "\", \"cores\": 6, \"warmup_us\": 5, \"measure_us\": 10" +
           extra + "}";
}

/** The on-disk profile cache must exist before timing-sensitive
 *  comparisons (first measurement differs from its disk round-trip). */
void
warmProfileCache()
{
    platforms::Platform skl = platforms::skl();
    util::Result<xmem::LatencyProfile> prof =
        xmem::XMemHarness().measureCachedChecked(
            skl, xmem::defaultProfilePath(skl));
    ASSERT_TRUE(prof.ok()) << prof.status().toString();
}

TEST(ParseRunRequest, AcceptsTheDocumentedShape)
{
    util::Result<RunRequest> r = parseRunRequest(
        "{\"schema_version\": 1, \"id\": \"r1\", \"platform\": "
        "\"bdx\", \"workload\": \"isx\", \"opts\": [\"vect\", "
        "\"2-ht\"], \"cores\": 4, \"seed\": 11, \"warmup_us\": 2.5, "
        "\"measure_us\": 7.5}",
        1);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->id, "r1");
    EXPECT_EQ(r->platformName, "bdx");
    EXPECT_EQ(r->workloadName, "isx");
    EXPECT_FALSE(r->hasSpec);
    EXPECT_TRUE(r->opts.has(workloads::Opt::Vectorize));
    EXPECT_TRUE(r->opts.has(workloads::Opt::Smt2));
    EXPECT_EQ(r->cores, 4);
    EXPECT_EQ(r->seed, 11u);
    EXPECT_DOUBLE_EQ(r->warmupUs, 2.5);
    EXPECT_DOUBLE_EQ(r->measureUs, 7.5);
}

TEST(ParseRunRequest, DefaultsIdToLineNumber)
{
    util::Result<RunRequest> r = parseRunRequest(
        "{\"schema_version\": 1, \"platform\": \"skl\", "
        "\"workload\": \"isx\"}",
        42);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->id, "#42");
    EXPECT_EQ(r->cores, 0);
    EXPECT_EQ(r->seed, 7u);
    EXPECT_DOUBLE_EQ(r->warmupUs, 0.0);
}

TEST(ParseRunRequest, RejectsMalformedInput)
{
    struct Case
    {
        const char *line;
        ErrorCode code;
    };
    const Case cases[] = {
        {"not json", ErrorCode::CorruptData},
        {"[1, 2]", ErrorCode::InvalidArgument},
        {"{\"platform\": \"skl\", \"workload\": \"isx\"}",
         ErrorCode::InvalidArgument}, // schema_version required
        {"{\"schema_version\": 9, \"platform\": \"skl\", "
         "\"workload\": \"isx\"}",
         ErrorCode::InvalidArgument},
        {"{\"schema_version\": 1, \"workload\": \"isx\"}",
         ErrorCode::InvalidArgument}, // platform required
        {"{\"schema_version\": 1, \"platform\": \"skl\"}",
         ErrorCode::InvalidArgument}, // workload xor spec
        {"{\"schema_version\": 1, \"platform\": \"skl\", "
         "\"workload\": \"isx\", \"spec\": {\"streams\": "
         "[{\"kind\": \"random\"}]}}",
         ErrorCode::InvalidArgument},
        {"{\"schema_version\": 1, \"platform\": \"skl\", "
         "\"workload\": \"isx\", \"frobnicate\": true}",
         ErrorCode::InvalidArgument}, // unknown field
        {"{\"schema_version\": 1, \"platform\": \"skl\", "
         "\"workload\": \"isx\", \"opts\": [\"warp-drive\"]}",
         ErrorCode::InvalidArgument},
        {"{\"schema_version\": 1, \"platform\": \"skl\", "
         "\"workload\": \"isx\", \"cores\": -2}",
         ErrorCode::InvalidArgument},
        {"{\"schema_version\": 1, \"platform\": \"skl\", "
         "\"workload\": \"isx\", \"warmup_us\": -1}",
         ErrorCode::InvalidArgument},
        {"{\"schema_version\": 1, \"platform\": \"skl\", "
         "\"spec\": {\"streams\": [{\"kind\": \"random\"}]}, "
         "\"opts\": [\"vect\"]}",
         ErrorCode::InvalidArgument}, // opts x inline spec
        {"{\"schema_version\": 1, \"platform\": \"skl\", "
         "\"spec\": {\"streams\": []}}",
         ErrorCode::InvalidArgument},
    };
    for (const Case &c : cases) {
        util::Result<RunRequest> r = parseRunRequest(c.line, 3);
        ASSERT_FALSE(r.ok()) << c.line;
        EXPECT_EQ(r.status().code(), c.code) << c.line;
        // Every parse error names the offending request line.
        EXPECT_NE(r.status().toString().find("request 3"),
                  std::string::npos)
            << r.status().toString();
    }
}

TEST(ParseRunRequest, ParsesInlineSpec)
{
    util::Result<RunRequest> r = parseRunRequest(
        "{\"schema_version\": 1, \"platform\": \"knl\", "
        "\"random_dominated\": true, \"spec\": {\"name\": \"mine\", "
        "\"window\": 12, \"compute_cycles_per_op\": 3.5, \"streams\": "
        "[{\"kind\": \"random\", \"footprint_lines\": 1000000, "
        "\"weight\": 0.9}, {\"kind\": \"strided\", \"stride_lines\": "
        "4}]}}",
        1);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_TRUE(r->hasSpec);
    EXPECT_TRUE(r->randomDominated);
    EXPECT_EQ(r->spec.name, "mine");
    EXPECT_EQ(r->spec.window, 12u);
    EXPECT_DOUBLE_EQ(r->spec.computeCyclesPerOp, 3.5);
    ASSERT_EQ(r->spec.streams.size(), 2u);
    EXPECT_EQ(r->spec.streams[0].kind, sim::StreamDesc::Kind::Random);
    EXPECT_EQ(r->spec.streams[0].footprintLines, 1000000u);
    EXPECT_EQ(r->spec.streams[1].kind, sim::StreamDesc::Kind::Strided);
    EXPECT_EQ(r->spec.streams[1].strideLines, 4);
}

TEST(ParseRunRequest, ParsesTheDocumentedV2SearchShape)
{
    util::Result<RunRequest> r = parseRunRequest(
        "{\"schema_version\": 2, \"kind\": \"search\", \"id\": "
        "\"s1\", \"platform\": \"skl\", \"workload\": \"isx\", "
        "\"cores\": 6, \"axes\": [\"l2_mshrs=8:64:*2\", "
        "\"banks=4:20:+4\"], \"points\": [\"l2_mshrs=48,banks=10\"], "
        "\"bank_weight\": 0.25, \"max_candidates\": 512, "
        "\"no_prune\": true}",
        1);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->schemaVersion, 2);
    EXPECT_TRUE(r->isSearch);
    EXPECT_EQ(r->id, "s1");

    // The shared fields are mirrored into the search spec so the
    // searcher sees one coherent object.
    const search::SearchSpec &s = r->search;
    EXPECT_EQ(s.platformName, "skl");
    EXPECT_EQ(s.workloadName, "isx");
    EXPECT_EQ(s.cores, 6);
    ASSERT_EQ(s.axes.size(), 2u);
    EXPECT_EQ(s.axes[0].name, "l2_mshrs");
    EXPECT_EQ(s.axes[0].values, (std::vector<double>{8, 16, 32, 64}));
    EXPECT_EQ(s.axes[1].name, "banks");
    EXPECT_EQ(s.axes[1].values,
              (std::vector<double>{4, 8, 12, 16, 20}));
    ASSERT_EQ(s.points.size(), 1u);
    EXPECT_EQ(s.points[0].label(), "banks=10,l2_mshrs=48");
    EXPECT_DOUBLE_EQ(s.bankWeight, 0.25);
    EXPECT_EQ(s.maxCandidates, 512u);
    EXPECT_TRUE(s.disablePruning);
}

TEST(ParseRunRequest, V2KindRunIsTheV1RequestUnchanged)
{
    util::Result<RunRequest> r = parseRunRequest(
        "{\"schema_version\": 2, \"kind\": \"run\", \"id\": \"r\", "
        "\"platform\": \"bdx\", \"workload\": \"isx\", \"cores\": 4}",
        1);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->schemaVersion, 2);
    EXPECT_FALSE(r->isSearch);
    EXPECT_EQ(r->platformName, "bdx");
    EXPECT_EQ(r->cores, 4);

    // kind defaults to "run" when absent.
    util::Result<RunRequest> d = parseRunRequest(
        "{\"schema_version\": 2, \"platform\": \"bdx\", "
        "\"workload\": \"isx\"}",
        1);
    ASSERT_TRUE(d.ok()) << d.status().toString();
    EXPECT_FALSE(d->isSearch);
}

TEST(ParseRunRequest, RejectsV2Abuses)
{
    struct Case
    {
        const char *line;
        const char *needle;
    };
    const Case cases[] = {
        // Unknown kind names itself and the kinds this build speaks.
        {"{\"schema_version\": 2, \"kind\": \"frobnicate\", "
         "\"platform\": \"skl\", \"workload\": \"isx\"}",
         "unknown request kind \"frobnicate\""},
        // Search-only fields on kind "run" are a shape error, not
        // silently ignored.
        {"{\"schema_version\": 2, \"kind\": \"run\", \"platform\": "
         "\"skl\", \"workload\": \"isx\", \"axes\": "
         "[\"l2_mshrs=8,16\"]}",
         "only valid on kind \"search\""},
        // A search needs a non-empty space.
        {"{\"schema_version\": 2, \"kind\": \"search\", "
         "\"platform\": \"skl\", \"workload\": \"isx\"}",
         "non-empty \"axes\""},
        // Axis entries go through the real grammar.
        {"{\"schema_version\": 2, \"kind\": \"search\", "
         "\"platform\": \"skl\", \"workload\": \"isx\", "
         "\"axes\": [\"warp_factor=1,2\"]}",
         "warp_factor"},
    };
    for (const Case &c : cases) {
        util::Result<RunRequest> r = parseRunRequest(c.line, 5);
        ASSERT_FALSE(r.ok()) << c.line;
        EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument)
            << c.line;
        EXPECT_NE(r.status().toString().find(c.needle),
                  std::string::npos)
            << r.status().toString();
    }
}

TEST(ParseRunRequest, V1LinesDoNotSpeakV2Fields)
{
    // A v1 line must behave exactly as on a v1-only build: the v2
    // vocabulary is an unknown field to it, not a silent no-op.
    for (const char *line :
         {"{\"schema_version\": 1, \"kind\": \"run\", \"platform\": "
          "\"skl\", \"workload\": \"isx\"}",
          "{\"schema_version\": 1, \"platform\": \"skl\", "
          "\"workload\": \"isx\", \"axes\": [\"l2_mshrs=8,16\"]}"}) {
        util::Result<RunRequest> r = parseRunRequest(line, 2);
        ASSERT_FALSE(r.ok()) << line;
        EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument)
            << line;
        EXPECT_NE(r.status().toString().find("unknown request field"),
                  std::string::npos)
            << r.status().toString();
    }
}

TEST(RunService, ResponsesComeBackInRequestOrder)
{
    warmProfileCache();
    core::ResultCache cache;
    obs::MetricRegistry registry;
    RunService::Params params;
    params.jobs = 2;
    params.cache = &cache;
    params.registry = &registry;
    RunService svc(params);

    // Mixed batch: two duplicates, one distinct, one unknown platform,
    // one unparseable, one infeasible variant, and a blank line.
    const std::vector<std::string> lines = {
        quickRequest("a", "isx"),
        "",
        quickRequest("b", "hpcg"),
        "{\"schema_version\": 1, \"id\": \"c\", \"platform\": "
        "\"nope\", \"workload\": \"isx\"}",
        quickRequest("d", "isx"), // duplicate of "a"
        "this is not json",
        quickRequest("e", "isx",
                     ", \"opts\": [\"4-ht\"]"), // skl is 2-way max
    };

    const uint64_t sims_before = simulateSpanCount();
    std::vector<RunResponse> rs = svc.serveLines(lines);
    const uint64_t sims_after = simulateSpanCount();

    // Blank line skipped; order preserved; ids echoed (line number for
    // the unparseable line — it is line 6 of the batch).
    ASSERT_EQ(rs.size(), 6u);
    EXPECT_EQ(rs[0].id, "a");
    EXPECT_EQ(rs[1].id, "b");
    EXPECT_EQ(rs[2].id, "c");
    EXPECT_EQ(rs[3].id, "d");
    EXPECT_EQ(rs[4].id, "#6");
    EXPECT_EQ(rs[5].id, "e");

    EXPECT_TRUE(rs[0].status.ok()) << rs[0].status.toString();
    EXPECT_TRUE(rs[1].status.ok()) << rs[1].status.toString();
    EXPECT_EQ(rs[2].status.code(), ErrorCode::NotFound);
    EXPECT_TRUE(rs[3].status.ok()) << rs[3].status.toString();
    EXPECT_EQ(rs[4].status.code(), ErrorCode::CorruptData);
    EXPECT_FALSE(rs[5].status.ok()); // infeasible smt pre-checked

    // "a" and "d" coalesced onto one unit: only two distinct stages
    // simulated for the whole batch.
    EXPECT_EQ(sims_after - sims_before, 2u);
    EXPECT_DOUBLE_EQ(rs[0].metrics.throughput,
                     rs[3].metrics.throughput);
    EXPECT_EQ(rs[0].platform, "skl");
    EXPECT_EQ(rs[0].workload, "isx");

    // Telemetry: the counters tell the same story.
    EXPECT_EQ(registry.counter("service.batches_total").value(), 1u);
    EXPECT_EQ(registry.counter("service.requests_total").value(), 6u);
    EXPECT_EQ(registry.counter("service.requests_failed_total").value(),
              3u);
    EXPECT_EQ(registry.counter("service.units_total").value(), 2u);
    EXPECT_EQ(
        registry.counter("service.coalesced_requests_total").value(),
        1u);
    EXPECT_EQ(registry.counter("service.cache_misses_total").value(),
              2u);
    EXPECT_EQ(registry.counter("service.cache_hits_total").value(), 0u);
}

TEST(RunService, WarmRerunServesEntirelyFromCacheByteIdentically)
{
    warmProfileCache();
    core::ResultCache cache;
    RunService::Params params;
    params.cache = &cache;
    RunService svc(params);

    const std::vector<std::string> lines = {
        quickRequest("x", "isx"),
        quickRequest("y", "hpcg"),
    };

    std::vector<RunResponse> cold = svc.serveLines(lines);
    const uint64_t sims_cold = simulateSpanCount();
    std::vector<RunResponse> warm = svc.serveLines(lines);
    const uint64_t sims_warm = simulateSpanCount();

    // No further simulation, and the rendered lines match exactly.
    EXPECT_EQ(sims_cold, sims_warm);
    ASSERT_EQ(cold.size(), warm.size());
    for (size_t i = 0; i < cold.size(); ++i) {
        ASSERT_TRUE(cold[i].status.ok()) << cold[i].status.toString();
        EXPECT_EQ(renderRunResponse(cold[i]),
                  renderRunResponse(warm[i]));
    }
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(RunService, InlineSpecRequestsAnalyzeLikeNamedWorkloads)
{
    warmProfileCache();
    RunService svc({});

    const std::string line =
        "{\"schema_version\": 1, \"id\": \"s\", \"platform\": "
        "\"skl\", \"cores\": 6, \"warmup_us\": 5, \"measure_us\": 10, "
        "\"random_dominated\": true, \"spec\": {\"name\": \"mykern\", "
        "\"streams\": [{\"kind\": \"random\", \"footprint_lines\": "
        "4000000}]}}";
    std::vector<RunResponse> rs = svc.serveLines({line});
    ASSERT_EQ(rs.size(), 1u);
    ASSERT_TRUE(rs[0].status.ok()) << rs[0].status.toString();
    EXPECT_EQ(rs[0].workload, "mykern");
    EXPECT_GT(rs[0].metrics.analysis.bwGBs, 0.0);
    EXPECT_EQ(rs[0].metrics.analysis.accessClass,
              core::AccessClass::Random);
}

TEST(RunService, EvictionCountersSurfaceCachePressure)
{
    warmProfileCache();
    core::ResultCache cache;
    cache.setMaxEntries(1);
    obs::MetricRegistry registry;
    RunService::Params params;
    params.cache = &cache;
    params.registry = &registry;
    RunService svc(params);

    std::vector<RunResponse> rs = svc.serveLines({
        quickRequest("a", "isx"),
        quickRequest("b", "hpcg"),
    });
    ASSERT_EQ(rs.size(), 2u);
    ASSERT_TRUE(rs[0].status.ok());
    ASSERT_TRUE(rs[1].status.ok());

    // Two distinct stages through a one-entry cache: at least one
    // in-memory eviction, and the counter rode out on the registry.
    EXPECT_LE(cache.size(), 1u);
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_EQ(
        registry.counter("service.cache_evictions_total").value(),
        cache.stats().evictions);
}

TEST(RunService, StageTimingsArePresentAndMonotonic)
{
    warmProfileCache();
    obs::MetricRegistry registry;
    RunService::Params params;
    params.jobs = 2;
    params.registry = &registry;
    RunService svc(params);

    std::vector<RunResponse> rs = svc.serveLines({
        quickRequest("a", "isx"),
        quickRequest("b", "hpcg"),
        quickRequest("c", "isx"), // coalesces with "a"
    });
    ASSERT_EQ(rs.size(), 3u);

    for (const RunResponse &r : rs) {
        ASSERT_TRUE(r.status.ok()) << r.status.toString();
        const StageTiming &t = r.timing;
        // Every stage is non-negative, simulation did real work, and
        // queue-wait can never exceed the end-to-end total.
        EXPECT_GE(t.parseNs, 0.0);
        EXPECT_GE(t.coalesceNs, 0.0);
        EXPECT_GE(t.queueWaitNs, 0.0);
        EXPECT_GT(t.simulateNs, 0.0);
        EXPECT_GE(t.respondNs, 0.0);
        EXPECT_GT(t.totalNs, 0.0);
        EXPECT_LE(t.queueWaitNs, t.totalNs);
        EXPECT_DOUBLE_EQ(t.totalNs, t.sum());
    }
    // Coalesced requests share their unit's simulate/queue-wait time.
    EXPECT_DOUBLE_EQ(rs[0].timing.simulateNs, rs[2].timing.simulateNs);

    // One latency sample per request per stage rode out on the
    // registry, and the percentile extraction is usable directly.
    const auto &hists = registry.histograms();
    ASSERT_EQ(hists.count("service.latency.total_ns"), 1u);
    ASSERT_EQ(hists.count("service.latency.queue_wait_ns"), 1u);
    const obs::Log2Histogram &total =
        hists.at("service.latency.total_ns");
    EXPECT_EQ(total.total(), 3u);
    EXPECT_GT(total.percentile(0.50), 0.0);
    EXPECT_LE(total.percentile(0.50), total.percentile(0.99));
    EXPECT_LE(hists.at("service.latency.queue_wait_ns").percentile(0.99),
              total.max());
}

TEST(RunService, V2SearchRidesTheBatchWithoutDisturbingV1)
{
    warmProfileCache();

    // Warm the candidate-profile cache first: a fresh measurement and
    // its disk round-trip differ in the last ulp, and this test
    // compares rendered bytes across runs.
    search::SearchSpec spec;
    spec.platformName = "skl";
    spec.workloadName = "isx";
    spec.axes.push_back(search::parseAxis("l2_mshrs=8,16").take());
    spec.cores = 6;
    spec.warmupUs = 5;
    spec.measureUs = 10;
    {
        core::ResultCache warm_cache;
        ASSERT_TRUE(search::Searcher({1, &warm_cache, nullptr})
                        .run(spec)
                        .ok());
    }

    core::ResultCache cache;
    RunService::Params params;
    params.cache = &cache;
    RunService svc(params);

    const std::string search_line =
        "{\"schema_version\": 2, \"kind\": \"search\", \"id\": "
        "\"s\", \"platform\": \"skl\", \"workload\": \"isx\", "
        "\"cores\": 6, \"warmup_us\": 5, \"measure_us\": 10, "
        "\"axes\": [\"l2_mshrs=8,16\"]}";
    const std::string bad_kind_line =
        "{\"schema_version\": 2, \"kind\": \"teleport\", \"id\": "
        "\"t\", \"platform\": \"skl\", \"workload\": \"isx\"}";
    const std::string v2_run_line =
        "{\"schema_version\": 2, \"kind\": \"run\", \"id\": \"a\", "
        "\"platform\": \"skl\", \"workload\": \"isx\", \"cores\": 6, "
        "\"warmup_us\": 5, \"measure_us\": 10}";

    std::vector<RunResponse> rs = svc.serveLines({
        quickRequest("a", "isx"),
        search_line,
        bad_kind_line,
        v2_run_line,
    });
    ASSERT_EQ(rs.size(), 4u);

    // The bad kind failed alone; everything around it is fine.
    EXPECT_TRUE(rs[0].status.ok()) << rs[0].status.toString();
    EXPECT_TRUE(rs[1].status.ok()) << rs[1].status.toString();
    EXPECT_EQ(rs[2].status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(rs[2].status.toString().find("unknown request kind"),
              std::string::npos);
    EXPECT_TRUE(rs[3].status.ok()) << rs[3].status.toString();

    // Responses echo the version their request spoke, and a v2
    // kind:"run" answer is the v1 answer modulo that echo.
    const std::string v1_line = renderRunResponse(rs[0]);
    const std::string v2_line = renderRunResponse(rs[3]);
    EXPECT_EQ(v1_line.find("{\"schema_version\": 1, \"id\": \"a\""),
              0u)
        << v1_line;
    EXPECT_EQ(v2_line.find("{\"schema_version\": 2, \"id\": \"a\""),
              0u)
        << v2_line;
    EXPECT_EQ(v1_line.substr(v1_line.find("\"status\"")),
              v2_line.substr(v2_line.find("\"status\"")));

    // The search answer's data is the same frontier a direct Searcher
    // run of the identical spec produces.
    ASSERT_TRUE(rs[1].isSearch);
    core::ResultCache direct_cache;
    util::Result<search::SearchResult> direct =
        search::Searcher({1, &direct_cache, nullptr}).run(spec);
    ASSERT_TRUE(direct.ok()) << direct.status().toString();
    EXPECT_EQ(search::searchDataJson(rs[1].search, false),
              search::searchDataJson(*direct, false));
    const std::string rendered = renderRunResponse(rs[1]);
    EXPECT_NE(rendered.find("\"frontier\": ["), std::string::npos)
        << rendered;
    EXPECT_NE(rendered.find("\"pruned_analytic\": "),
              std::string::npos)
        << rendered;
    EXPECT_EQ(rendered.find('\n'), std::string::npos) << rendered;
}

TEST(RenderRunResponse, TimingRenderedOnlyOnRequest)
{
    RunResponse r;
    r.id = "t";
    r.timing.parseNs = 1.0;
    r.timing.simulateNs = 5.0;
    r.timing.totalNs = r.timing.sum();

    // Default rendering must not mention timing at all: the serve
    // cold/warm byte-identity contract compares default renderings,
    // and wall-clock values would differ between the runs.
    const std::string plain = renderRunResponse(r);
    EXPECT_EQ(plain.find("timing"), std::string::npos) << plain;

    const std::string timed = renderRunResponse(r, true);
    EXPECT_NE(timed.find("\"timing\""), std::string::npos) << timed;
    EXPECT_NE(timed.find("\"parse_ns\": 1"), std::string::npos) << timed;
    EXPECT_NE(timed.find("\"queue_wait_ns\": 0"), std::string::npos)
        << timed;
    EXPECT_NE(timed.find("\"total_ns\": 6"), std::string::npos) << timed;
    EXPECT_EQ(timed.find('\n'), std::string::npos) << timed;
}

TEST(RenderRunResponse, FailedRequestsCarryNullDataAndExitCode)
{
    RunResponse r;
    r.id = "bad";
    r.status = util::Status::error(ErrorCode::NotFound,
                                   "unknown platform 'zzz'");
    const std::string line = renderRunResponse(r);
    EXPECT_NE(line.find("\"id\": \"bad\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"code\": \"not-found\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"exit\": 3"), std::string::npos) << line;
    EXPECT_NE(line.find("\"data\": null"), std::string::npos) << line;
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
}

} // namespace
} // namespace lll::service
