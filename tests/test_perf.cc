/**
 * @file
 * Unit tests for the `lll bench` layer (src/perf): kernel registry,
 * trial statistics, BENCH_*.json serialization (golden schema file,
 * round-trip) and the CI ratchet comparator.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "perf/bench_report.hh"
#include "perf/microbench.hh"

using namespace lll;

namespace
{

/** A fixed synthetic report: every number formats exactly in %.17g. */
perf::BenchReport
syntheticReport()
{
    perf::BenchReport report;
    report.rev = "golden";
    report.trials = 3;
    report.warmupMs = 1.5;
    report.measureMs = 2.5;

    perf::KernelStats k;
    k.name = "event_queue";
    k.trials = 3;
    k.batches = 10;
    k.items = 640;
    k.trialEventsPerSec = {1000000.0, 1500000.0, 2000000.0};
    k.minEps = 1000000.0;
    k.medianEps = 1500000.0;
    k.maxEps = 2000000.0;
    k.iqrEps = 500000.0;
    k.p50ItemNs = 64.0;
    k.p90ItemNs = 128.0;
    k.p99ItemNs = 256.0;
    report.kernels.push_back(std::move(k));
    return report;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

TEST(Microbench, RegistryHasTheSimMicroKernels)
{
    const std::vector<perf::KernelInfo> &ks = perf::kernels();
    ASSERT_EQ(ks.size(), 6u);
    EXPECT_EQ(ks[0].name, "event_queue");
    EXPECT_EQ(ks[1].name, "event_dispatch");
    EXPECT_EQ(ks[2].name, "mshr");
    EXPECT_EQ(ks[3].name, "op_stream");
    EXPECT_EQ(ks[4].name, "cache_hit");
    EXPECT_EQ(ks[5].name, "system_step");
    EXPECT_NE(perf::findKernel("mshr"), nullptr);
    EXPECT_EQ(perf::findKernel("nope"), nullptr);
}

TEST(Microbench, QuantileSortedInterpolates)
{
    EXPECT_DOUBLE_EQ(perf::quantileSorted({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(perf::quantileSorted({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(perf::quantileSorted({7.0}, 1.0), 7.0);
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(perf::quantileSorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(perf::quantileSorted(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(perf::quantileSorted(v, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(perf::quantileSorted(v, 0.25), 1.75);
}

TEST(Microbench, RunKernelCollectsTrialStats)
{
    const perf::KernelInfo *k = perf::findKernel("mshr");
    ASSERT_NE(k, nullptr);
    perf::TrialParams tp;
    tp.trials = 3;
    tp.warmupMs = 1.0;
    tp.measureMs = 2.0;
    perf::KernelStats stats = perf::runKernel(*k, tp);

    EXPECT_EQ(stats.name, "mshr");
    EXPECT_EQ(stats.trials, 3);
    ASSERT_EQ(stats.trialEventsPerSec.size(), 3u);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_GT(stats.items, stats.batches);    // >1 item per batch
    EXPECT_GT(stats.minEps, 0.0);
    EXPECT_GE(stats.medianEps, stats.minEps);
    EXPECT_GE(stats.maxEps, stats.medianEps);
    EXPECT_GE(stats.iqrEps, 0.0);
    // Latency quantiles come from the histogram and are ordered.
    EXPECT_GT(stats.p50ItemNs, 0.0);
    EXPECT_LE(stats.p50ItemNs, stats.p90ItemNs);
    EXPECT_LE(stats.p90ItemNs, stats.p99ItemNs);
    EXPECT_EQ(stats.itemNs.total(), stats.batches);
}

TEST(BenchReport, JsonMatchesGoldenSchemaFile)
{
    // Byte-for-byte golden: consumers (the CI ratchet, plotting) parse
    // this schema, so any change must be a conscious golden update.
    const std::string json = perf::benchReportJson(syntheticReport());
    const std::string golden =
        readFile(std::string(LLL_TEST_GOLDEN_DIR) + "/bench_schema.json");
    ASSERT_FALSE(golden.empty())
        << "missing golden file tests/golden/bench_schema.json";
    EXPECT_EQ(json, golden);
}

TEST(BenchReport, RoundTripsThroughJson)
{
    const perf::BenchReport report = syntheticReport();
    util::Result<perf::BenchReport> back =
        perf::parseBenchReport(perf::benchReportJson(report));
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back->schemaVersion, perf::kBenchSchemaVersion);
    EXPECT_EQ(back->rev, "golden");
    EXPECT_EQ(back->trials, 3);
    ASSERT_EQ(back->kernels.size(), 1u);
    const perf::KernelStats &k = back->kernels[0];
    EXPECT_EQ(k.name, "event_queue");
    EXPECT_DOUBLE_EQ(k.medianEps, 1500000.0);
    EXPECT_DOUBLE_EQ(k.minEps, 1000000.0);
    EXPECT_DOUBLE_EQ(k.iqrEps, 500000.0);
    ASSERT_EQ(k.trialEventsPerSec.size(), 3u);
    EXPECT_DOUBLE_EQ(k.trialEventsPerSec[2], 2000000.0);
    EXPECT_DOUBLE_EQ(k.p90ItemNs, 128.0);
}

TEST(BenchReport, ParsesFullEnvelopeToo)
{
    // `--compare` accepts a file produced by `lll bench --json`, which
    // wraps the report in the standard envelope under "data".
    std::ostringstream envelope;
    envelope << "{\"schema_version\": 1, \"command\": \"bench\", "
             << "\"status\": {\"code\": \"ok\", \"exit\": 0, "
             << "\"message\": \"\"}, \"data\": "
             << perf::benchReportJson(syntheticReport())
             << ", \"telemetry\": null}";
    util::Result<perf::BenchReport> back =
        perf::parseBenchReport(envelope.str());
    ASSERT_TRUE(back.ok()) << back.status().toString();
    ASSERT_EQ(back->kernels.size(), 1u);
    EXPECT_EQ(back->kernels[0].name, "event_queue");
}

TEST(BenchReport, ParseRejectsGarbage)
{
    EXPECT_FALSE(perf::parseBenchReport("not json").ok());
    EXPECT_FALSE(perf::parseBenchReport("{\"data\": 7}").ok());
}

TEST(BenchComparison, PassesWithinTolerance)
{
    perf::BenchReport base = syntheticReport();
    perf::BenchReport cur = syntheticReport();
    cur.kernels[0].medianEps = base.kernels[0].medianEps * 0.9;
    perf::BenchComparison cmp =
        perf::compareBenchReports(base, cur, 0.15);
    EXPECT_TRUE(cmp.ok());
    ASSERT_EQ(cmp.rows.size(), 1u);
    EXPECT_FALSE(cmp.rows[0].regressed);
    EXPECT_NEAR(cmp.rows[0].ratio, 0.9, 1e-12);
    EXPECT_NE(cmp.render().find("ratchet: ok"), std::string::npos);
}

TEST(BenchComparison, FailsOnInjectedTwoXSlowdown)
{
    // The acceptance demonstration: halving events/sec must trip the
    // 15% ratchet.
    perf::BenchReport base = syntheticReport();
    perf::BenchReport cur = syntheticReport();
    cur.kernels[0].medianEps = base.kernels[0].medianEps * 0.5;
    perf::BenchComparison cmp =
        perf::compareBenchReports(base, cur, 0.15);
    EXPECT_FALSE(cmp.ok());
    ASSERT_EQ(cmp.rows.size(), 1u);
    EXPECT_TRUE(cmp.rows[0].regressed);
    EXPECT_NE(cmp.render().find("REGRESSION"), std::string::npos);
}

TEST(BenchComparison, MissingKernelRegressesNewKernelIgnored)
{
    perf::BenchReport base = syntheticReport();
    perf::BenchReport cur = syntheticReport();

    // A kernel new in the current run must not fail the ratchet.
    perf::KernelStats fresh;
    fresh.name = "brand_new";
    fresh.medianEps = 1.0;
    cur.kernels.push_back(std::move(fresh));
    EXPECT_TRUE(perf::compareBenchReports(base, cur, 0.15).ok());

    // A baseline kernel missing from the current run is lost coverage.
    cur.kernels.erase(cur.kernels.begin());
    perf::BenchComparison cmp =
        perf::compareBenchReports(base, cur, 0.15);
    EXPECT_FALSE(cmp.ok());
    ASSERT_GE(cmp.rows.size(), 1u);
    EXPECT_TRUE(cmp.rows[0].missing);
    EXPECT_TRUE(cmp.rows[0].regressed);
}
