/**
 * @file
 * Tests for the spec/config static analyzer (analysis/spec_lint) and
 * the structured-diagnostic type it reports with: analytical bounds,
 * feasible/infeasible verdicts with stable IDs, recipe-reachability
 * probing, and the rendered text/JSON formats.
 */

#include <gtest/gtest.h>

#include "analysis/spec_lint.hh"
#include "test_common.hh"
#include "util/diagnostic.hh"
#include "workloads/workload.hh"

namespace lll::analysis
{
namespace
{

const util::Diagnostic *
find(const util::DiagnosticList &diags, const std::string &id)
{
    for (const util::Diagnostic &d : diags.all()) {
        if (d.id == id)
            return &d;
    }
    return nullptr;
}

// --- diagnostic type ----------------------------------------------------

TEST(DiagnosticTest, RendersSeverityIdSubjectMessage)
{
    util::DiagnosticList diags;
    diags.error("LLL-TST-001", "skl", "cores (%d) must be positive", -1);
    diags.note("LLL-TST-002", "skl", "all good");
    EXPECT_EQ(diags.all()[0].toString(),
              "error LLL-TST-001 [skl]: cores (-1) must be positive");
    EXPECT_EQ(diags.errorCount(), 1u);
    EXPECT_EQ(diags.noteCount(), 1u);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(DiagnosticTest, ToStatusSurfacesFirstError)
{
    util::DiagnosticList diags;
    diags.warning("LLL-TST-001", "x", "only a warning");
    EXPECT_TRUE(diags.toStatus().ok());
    diags.error("LLL-TST-002", "x", "broken");
    util::Status s = diags.toStatus();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), util::ErrorCode::FailedPrecondition);
    EXPECT_NE(s.message().find("LLL-TST-002"), std::string::npos);
}

TEST(DiagnosticTest, JsonEscapesAndListsFindings)
{
    util::DiagnosticList diags;
    diags.error("LLL-TST-001", "a\"b", "say \"hi\"\n");
    std::string json = diags.renderJson();
    EXPECT_NE(json.find("\"id\": \"LLL-TST-001\""), std::string::npos);
    EXPECT_NE(json.find("\\\"hi\\\"\\n"), std::string::npos);
}

// --- analytical bounds --------------------------------------------------

TEST(SpecLintTest, BoundsMatchLittlesLawArithmetic)
{
    platforms::Platform tiny = test::tinyPlatform();
    sim::SystemParams sys = tiny.sysParams(tiny.totalCores, 1);
    sim::KernelSpec spec = test::randomKernel(32, 4.0);

    SpecBounds b = deriveBounds(sys, spec);
    EXPECT_DOUBLE_EQ(b.exposedMlpPerThread,
                     std::min<double>(32, sys.lqSize));
    EXPECT_EQ(b.l1Mshrs, sys.l1.mshrs);
    EXPECT_EQ(b.l2Mshrs, sys.l2.mshrs);
    EXPECT_TRUE(b.randomDominated);
    EXPECT_GT(b.idleLatencyNs, 0.0);
    // Little's law: ceiling == n * cls / lat summed over cores.
    double expect_l1 = sys.cores * sys.l1.mshrs * sys.lineBytes /
                       b.idleLatencyNs;
    EXPECT_NEAR(b.l1CeilingGBs, expect_l1, 1e-9);
    // Random-dominated: the effective MLP is L1-MSHR-capped.
    EXPECT_LE(b.effectiveMlpPerCore, b.l1Mshrs);
}

TEST(SpecLintTest, StreamingWithPrefetcherUsesL2Queue)
{
    platforms::Platform tiny = test::tinyPlatform();
    sim::SystemParams sys = tiny.sysParams(tiny.totalCores, 1);
    ASSERT_TRUE(sys.l2PrefetcherEnabled);
    sim::KernelSpec spec = test::streamingKernel(4, 16, 8.0);

    SpecBounds b = deriveBounds(sys, spec);
    EXPECT_FALSE(b.randomDominated);
    EXPECT_TRUE(b.prefetcherCovers);
    EXPECT_DOUBLE_EQ(b.effectiveMlpPerCore,
                     static_cast<double>(b.l2Mshrs));
}

// --- lint verdicts ------------------------------------------------------

TEST(SpecLintTest, FeasibleSpecHasNoErrorsAndClassifiesRegime)
{
    platforms::Platform tiny = test::tinyPlatform();
    sim::SystemParams sys = tiny.sysParams(tiny.totalCores, 1);
    util::DiagnosticList diags =
        lintSpec(sys, test::randomKernel(32, 4.0), "tiny/test");
    EXPECT_FALSE(diags.hasErrors()) << diags.renderText();
    const util::Diagnostic *cls = find(diags, "LLL-LINT-104");
    ASSERT_NE(cls, nullptr);
    EXPECT_EQ(cls->severity, util::Severity::Note);
    EXPECT_EQ(cls->subject, "tiny/test");
}

TEST(SpecLintTest, BrokenSpecReportsStableValidatorIds)
{
    platforms::Platform tiny = test::tinyPlatform();
    sim::SystemParams sys = tiny.sysParams(tiny.totalCores, 1);
    sys.cores = 0;
    util::DiagnosticList diags =
        lintSpec(sys, test::randomKernel(32, 4.0), "tiny/test");
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(find(diags, "LLL-SPEC-001"), nullptr)
        << diags.renderText();
}

TEST(SpecLintTest, OverCommittedWindowWarns)
{
    platforms::Platform tiny = test::tinyPlatform();
    sim::SystemParams sys = tiny.sysParams(tiny.totalCores, 1);
    sim::KernelSpec spec =
        test::randomKernel(4 * sys.lqSize, 4.0);
    util::DiagnosticList diags = lintSpec(sys, spec, "tiny/test");
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_NE(find(diags, "LLL-LINT-101"), nullptr)
        << diags.renderText();
}

TEST(SpecLintTest, AllRegistryPairsAreFeasible)
{
    // Acceptance criterion: `lll lint` exits 0 over the whole registry,
    // which is exactly "no config produces an error diagnostic".
    for (const platforms::Platform &p : platforms::allPlatforms()) {
        for (const workloads::WorkloadPtr &w :
             workloads::allWorkloadsAndExtensions()) {
            ConfigLint lint = lintConfig(p, *w, workloads::OptSet{});
            EXPECT_TRUE(lint.feasible())
                << lint.subject << ":\n"
                << lint.diagnostics.renderText();
            EXPECT_TRUE(lint.boundsValid);
        }
    }
}

TEST(SpecLintTest, InfeasibleVariantIsAnErrorWithStableId)
{
    platforms::Platform skl = platforms::skl();
    workloads::WorkloadPtr isx = workloads::findWorkload("isx").take();
    ConfigLint lint =
        lintConfig(skl, *isx, workloads::OptSet{workloads::Opt::Smt4});
    EXPECT_FALSE(lint.feasible());
    EXPECT_FALSE(lint.boundsValid);
    const util::Diagnostic *err =
        find(lint.diagnostics, "LLL-PLAT-001");
    ASSERT_NE(err, nullptr) << lint.diagnostics.renderText();
    EXPECT_EQ(err->severity, util::Severity::Error);
}

TEST(SpecLintTest, BoundsJsonCarriesEveryField)
{
    platforms::Platform tiny = test::tinyPlatform();
    sim::SystemParams sys = tiny.sysParams(tiny.totalCores, 1);
    SpecBounds b = deriveBounds(sys, test::randomKernel(32, 4.0));
    std::string json = boundsJson(b);
    for (const char *key :
         {"exposed_mlp_per_core", "idle_latency_ns", "peak_gbs",
          "l1_ceiling_gbs", "l2_ceiling_gbs", "mlp_ceiling_gbs",
          "n_avg_at_peak_per_core", "random_dominated"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

// --- recipe reachability ------------------------------------------------

TEST(SpecLintTest, RecipeReachabilityFlagsImpossibleSmtStates)
{
    // skl caps SMT at 2 ways, so the recipe's "4-way HT" state can
    // never be recommended there; a64fx (no SMT) also loses "2-way HT".
    util::DiagnosticList skl =
        lintRecipeReachability(platforms::skl());
    ASSERT_NE(find(skl, "LLL-RCP-001"), nullptr) << skl.renderText();
    EXPECT_FALSE(skl.hasErrors());

    util::DiagnosticList a64fx =
        lintRecipeReachability(platforms::a64fx());
    size_t unreachable = 0;
    for (const util::Diagnostic &d : a64fx.all())
        unreachable += d.id == "LLL-RCP-001";
    EXPECT_EQ(unreachable, 2u) << a64fx.renderText();

    // knl supports 4-way SMT: every SMT state must be reachable.
    util::DiagnosticList knl =
        lintRecipeReachability(platforms::knl());
    EXPECT_EQ(find(knl, "LLL-RCP-001"), nullptr) << knl.renderText();
}

} // namespace
} // namespace lll::analysis
