/**
 * @file
 * System-level tests: closed-loop equilibria, determinism, MSHR bounds,
 * SMT sharing, prefetcher effects, stats windows, and the absence of
 * request leaks across full runs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "platforms/platform.hh"
#include "sim/system.hh"
#include "test_common.hh"

namespace lll::sim
{
namespace
{

SystemParams
tinyParams(int cores = 2, unsigned smt = 1)
{
    platforms::Platform p = test::tinyPlatform();
    SystemParams sp = p.sysParams(cores, smt);
    sp.seed = 99;
    return sp;
}

TEST(SystemTest, RunProducesTraffic)
{
    System sys(tinyParams(), test::randomKernel(8, 4.0));
    RunResult r = sys.run(5.0, 10.0);
    EXPECT_GT(r.opsIssued, 100u);
    EXPECT_GT(r.totalGBs, 0.0);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GT(r.eventsProcessed, 100u);
    EXPECT_NEAR(r.measureSeconds, 10e-6, 1e-9);
}

TEST(SystemTest, DeterministicForSameSeed)
{
    System a(tinyParams(), test::randomKernel(8, 4.0));
    System b(tinyParams(), test::randomKernel(8, 4.0));
    RunResult ra = a.run(5.0, 10.0);
    RunResult rb = b.run(5.0, 10.0);
    EXPECT_EQ(ra.opsIssued, rb.opsIssued);
    EXPECT_EQ(ra.memReadLines, rb.memReadLines);
    EXPECT_DOUBLE_EQ(ra.avgL1MshrOccupancy, rb.avgL1MshrOccupancy);
}

TEST(SystemTest, DifferentSeedsDiffer)
{
    SystemParams sp1 = tinyParams();
    SystemParams sp2 = tinyParams();
    sp2.seed = 1234;
    System a(sp1, test::randomKernel(8, 4.0));
    System b(sp2, test::randomKernel(8, 4.0));
    EXPECT_NE(a.run(5.0, 10.0).memReadLines,
              b.run(5.0, 10.0).memReadLines);
}

TEST(SystemTest, OccupancyNeverExceedsMshrCapacity)
{
    SystemParams sp = tinyParams();
    System sys(sp, test::randomKernel(32, 1.0));
    RunResult r = sys.run(5.0, 10.0);
    EXPECT_LE(r.maxL1MshrOccupancy, sp.l1.mshrs);
    EXPECT_LE(r.maxL2MshrOccupancy, sp.l2.mshrs);
    EXPECT_LE(r.avgL1MshrOccupancy, sp.l1.mshrs);
}

TEST(SystemTest, WindowBoundsOccupancyWhenSmall)
{
    // window=2 per thread, 1 thread: L1 occupancy can't exceed ~2 plus
    // store traffic (none here).
    System sys(tinyParams(1), test::randomKernel(2, 1.0));
    RunResult r = sys.run(5.0, 10.0);
    EXPECT_LE(r.maxL1MshrOccupancy, 3.0);
}

TEST(SystemTest, BandwidthBoundedByPeak)
{
    SystemParams sp = tinyParams(4);
    System sys(sp, test::streamingKernel(4, 16, 0.5));
    RunResult r = sys.run(10.0, 20.0);
    // Bank-count rounding can set the true service peak slightly above
    // the nominal figure; bound against the derived peak.
    double banks = std::round(sp.mem.peakGBs * sp.mem.bankServiceNs /
                              sp.lineBytes);
    double peak = banks * sp.lineBytes / sp.mem.bankServiceNs;
    EXPECT_LE(r.totalGBs, peak * 1.01);
}

TEST(SystemTest, RandomKernelIsDemandDominated)
{
    System sys(tinyParams(4), test::randomKernel(8, 4.0));
    RunResult r = sys.run(5.0, 15.0);
    EXPECT_GT(r.demandFraction, 0.9);
    EXPECT_EQ(r.hwPrefIssued, 0u);
}

TEST(SystemTest, StreamingKernelEngagesPrefetcher)
{
    System sys(tinyParams(4), test::streamingKernel(4, 10, 4.0));
    RunResult r = sys.run(10.0, 20.0);
    EXPECT_GT(r.hwPrefIssued, 100u);
    EXPECT_LT(r.demandFraction, 0.7);
    EXPECT_GT(r.hwPrefUseful, 0u);
}

TEST(SystemTest, MoreCoresMoreBandwidthUntilSaturation)
{
    System one(tinyParams(1), test::randomKernel(8, 4.0));
    System four(tinyParams(4), test::randomKernel(8, 4.0));
    double bw1 = one.run(5.0, 15.0).totalGBs;
    double bw4 = four.run(5.0, 15.0).totalGBs;
    EXPECT_GT(bw4, bw1 * 1.5);
}

TEST(SystemTest, SmtSharesL1Mshrs)
{
    // 2 threads x window 8 vs 10 L1 MSHRs: occupancy pegged near the
    // cap, never above.
    System sys(tinyParams(2, 2), test::randomKernel(8, 2.0));
    RunResult r = sys.run(5.0, 15.0);
    EXPECT_LE(r.maxL1MshrOccupancy, 10.0);
    EXPECT_GT(r.avgL1MshrOccupancy, 6.0);
    EXPECT_GT(r.l1FullStalls, 0u);
}

TEST(SystemTest, SwPrefetchReachesMemoryTyped)
{
    KernelSpec k = test::randomKernel(8, 4.0);
    k.streams[0].swPrefetchable = true;
    k.swPrefetchL2 = true;
    k.swPrefetchDistance = 16;
    System sys(tinyParams(2), k);
    RunResult r = sys.run(5.0, 15.0);
    EXPECT_GT(r.swPrefIssued, 50u);
    EXPECT_GT(r.memSwPrefetchLines, 50u);
}

TEST(SystemTest, SwPrefetchRaisesL2OccupancyAboveL1)
{
    KernelSpec base = test::randomKernel(8, 3.0);
    System a(tinyParams(4), base);
    RunResult ra = a.run(5.0, 15.0);

    KernelSpec pref = base;
    pref.streams[0].swPrefetchable = true;
    pref.swPrefetchL2 = true;
    System b(tinyParams(4), pref);
    RunResult rb = b.run(5.0, 15.0);

    // The paper's ISx mechanism: prefetch-to-L2 moves outstanding lines
    // from the L1 queue to the (larger) L2 queue.
    EXPECT_GT(rb.avgL2MshrOccupancy, ra.avgL2MshrOccupancy * 1.2);
    EXPECT_LT(rb.avgL1MshrOccupancy, ra.avgL1MshrOccupancy);
}

TEST(SystemTest, StoresGenerateWritebackTraffic)
{
    KernelSpec k = test::randomKernel(8, 4.0);
    k.streams[0].store = true;
    // Without a large LLC to absorb dirty evictions (as on KNL/A64FX),
    // store misses turn into memory writebacks; shrink the L2 so the
    // eviction steady state is reached within the short test window.
    SystemParams sp = tinyParams(2);
    sp.hasL3 = false;
    sp.l2.sets = 64;
    System sys(sp, k);
    RunResult r = sys.run(10.0, 20.0);
    EXPECT_GT(r.memWriteLines, 100u);
    EXPECT_GT(r.writeGBs, 0.0);
}

TEST(SystemTest, RepeatedWindowsAreConsistent)
{
    System sys(tinyParams(2), test::randomKernel(8, 4.0));
    RunResult r1 = sys.run(10.0, 10.0);
    RunResult r2 = sys.run(0.0, 10.0);
    // Steady state: consecutive windows agree within a few percent.
    EXPECT_NEAR(r2.totalGBs, r1.totalGBs, r1.totalGBs * 0.1);
}

TEST(SystemTest, NoRequestLeakAccumulation)
{
    System sys(tinyParams(2), test::randomKernel(8, 4.0));
    sys.run(5.0, 10.0);
    // Outstanding requests are bounded by in-flight state, not by run
    // length.
    int64_t after_one = sys.pool().outstanding();
    sys.run(0.0, 10.0);
    EXPECT_LE(sys.pool().outstanding(), after_one + 200);
}

TEST(SystemTest, MicrostepWindowsDoNotLeakRequests)
{
    // The system_step bench shape: the skl 4-core system driven by many
    // tiny measurement windows.  Windows can cut a request's lifetime
    // anywhere, so the checked-out population must stay pinned to
    // in-flight capacity (MSHRs + thread windows), never creep with the
    // number of windows.
    KernelSpec spec;
    StreamDesc s;
    s.kind = StreamDesc::Kind::Random;
    s.footprintLines = 1 << 18;
    spec.streams.push_back(s);
    spec.window = 8;
    spec.computeCyclesPerOp = 4.0;

    System sys(platforms::skl().sysParams(4, 1), spec);
    sys.run(2.0, 2.0); // warm start
    const int64_t after_warm = sys.pool().outstanding();
    EXPECT_GE(after_warm, 0);
    for (int i = 0; i < 50; ++i)
        sys.run(0.0001, 1.0);
    EXPECT_GE(sys.pool().outstanding(), 0);
    EXPECT_LE(sys.pool().outstanding(), after_warm + 200);
}

TEST(SystemTest, ThroughputScalesWithWorkPerOp)
{
    KernelSpec k1 = test::randomKernel(8, 4.0);
    KernelSpec k2 = k1;
    k2.workPerOp = 2.0;
    System a(tinyParams(2), k1);
    System b(tinyParams(2), k2);
    double t1 = a.run(5.0, 15.0).throughput;
    double t2 = b.run(5.0, 15.0).throughput;
    EXPECT_NEAR(t2 / t1, 2.0, 0.1);
}

TEST(SystemTest, ComputeBoundKernelHasLowOccupancy)
{
    System sys(tinyParams(4), test::randomKernel(2, 400.0));
    RunResult r = sys.run(20.0, 40.0);
    EXPECT_LT(r.avgL1MshrOccupancy, 1.0);
    EXPECT_LT(r.memUtilization, 0.3);
}

TEST(SystemTest, TrueLatencyNearIdleWhenUnloaded)
{
    System sys(tinyParams(1), test::randomKernel(1, 200.0));
    RunResult r = sys.run(10.0, 20.0);
    // Single in-flight request: the controller sees no queueing.
    MemCtrl::Params mp = test::tinyPlatform().proto.mem;
    double idle = mp.frontLatencyNs + mp.bankServiceNs + mp.backLatencyNs;
    EXPECT_NEAR(r.avgMemLatencyNs, idle, 4.0);
}

TEST(SystemDeathTest, ZeroMeasurePanics)
{
    System sys(tinyParams(), test::randomKernel(4, 4.0));
    EXPECT_DEATH(sys.run(1.0, 0.0), "positive");
}

} // namespace
} // namespace lll::sim
