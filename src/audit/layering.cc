/**
 * @file
 * Layering check: `src/` modules form a declared DAG and every local
 * `#include` follows a declared edge (LLL-SRC-101..103).
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "audit/audit.hh"

namespace lll::audit
{

std::vector<LayerSpec>
defaultLayers()
{
    // Bottom-up (DESIGN.md §15.2).  An entry lists the modules its
    // `#include`s may reach *directly*; transitive reach is whatever
    // the DAG induces.  Tightening an edge out of this table is how a
    // layering decision becomes enforceable.
    return {
        {"util", {}},
        {"obs", {"util"}},
        {"sim", {"util", "obs"}},
        {"platforms", {"util", "sim"}},
        {"counters", {"util", "sim", "platforms"}},
        {"xmem", {"util", "obs", "sim", "platforms"}},
        {"workloads", {"util", "obs", "sim", "platforms"}},
        {"perf", {"util", "obs", "sim", "platforms"}},
        {"core",
         {"util", "obs", "sim", "platforms", "counters", "workloads",
          "xmem"}},
        {"analysis",
         {"util", "sim", "platforms", "workloads", "xmem", "core"}},
        // The autotuner composes core's bounds/sweep machinery over
        // platform spaces; only service and the CLI may depend on it.
        {"search",
         {"util", "obs", "sim", "platforms", "workloads", "core"}},
        {"service",
         {"util", "obs", "sim", "platforms", "workloads", "core",
          "search"}},
        {"net", {"util", "obs", "core", "service"}},
        {"faultinject",
         {"util", "obs", "sim", "platforms", "counters", "workloads",
          "xmem", "core", "net"}},
        {"audit", {"util"}},
        {"lll",
         {"util", "obs", "sim", "platforms", "counters", "workloads",
          "xmem", "core", "analysis", "search", "service"}},
        // The CLI (tools/) is the top of the stack and may see it all.
        {"cli",
         {"util", "obs", "sim", "platforms", "counters", "workloads",
          "xmem", "perf", "core", "analysis", "search", "service",
          "net", "faultinject", "audit", "lll"}},
    };
}

void
checkLayering(const std::vector<SourceFile> &files,
              const std::vector<LayerSpec> &layers, AuditReport &report)
{
    std::map<std::string, std::set<std::string>> allowed;
    for (const LayerSpec &l : layers)
        allowed[l.module].insert(l.deps.begin(), l.deps.end());

    // The declared table must itself be a DAG: Kahn's algorithm over
    // module -> dep edges; whatever cannot be peeled off is a cycle.
    {
        std::map<std::string, size_t> out_degree;
        std::map<std::string, std::set<std::string>> dependants;
        for (const auto &[mod, deps] : allowed) {
            out_degree[mod] = deps.size();
            for (const std::string &d : deps)
                dependants[d].insert(mod);
        }
        std::vector<std::string> ready;
        for (const auto &[mod, deg] : out_degree)
            if (deg == 0)
                ready.push_back(mod);
        size_t peeled = 0;
        while (!ready.empty()) {
            const std::string mod = ready.back();
            ready.pop_back();
            ++peeled;
            for (const std::string &up : dependants[mod])
                if (--out_degree[up] == 0)
                    ready.push_back(up);
        }
        if (peeled != out_degree.size()) {
            std::string cycle;
            for (const auto &[mod, deg] : out_degree) {
                if (deg != 0)
                    cycle += (cycle.empty() ? "" : ", ") + mod;
            }
            report.add({"LLL-SRC-102", util::Severity::Error,
                        "layer table",
                        "declared layer table has a dependency cycle "
                        "through: " +
                            cycle},
                       "break the cycle in the layer table (audit/"
                       "layering.cc) and re-layer the includes it was "
                       "hiding");
        }
    }

    for (const SourceFile &f : files) {
        const auto self = allowed.find(f.module);
        bool self_known = self != allowed.end();
        bool self_reported = false;
        for (const IncludeDirective &inc : f.includes) {
            if (inc.angled)
                continue;
            const size_t slash = inc.path.find('/');
            if (slash == std::string::npos)
                continue; // same-directory include; same module
            ++report.stats.includes;
            const std::string target = inc.path.substr(0, slash);
            const std::string subject =
                f.relPath + ":" + std::to_string(inc.line);
            if (!self_known) {
                if (!self_reported) {
                    report.add(
                        {"LLL-SRC-103", util::Severity::Error, subject,
                         "module '" + f.module +
                             "' is missing from the layer table"},
                        "add '" + f.module +
                            "' and its allowed deps to the layer "
                            "table (audit/layering.cc, DESIGN \xc2\xa7"
                            "15.2)");
                    self_reported = true;
                }
                continue;
            }
            if (target == f.module)
                continue;
            if (allowed.find(target) == allowed.end()) {
                report.add({"LLL-SRC-103", util::Severity::Error,
                            subject,
                            "include \"" + inc.path +
                                "\" points at module '" + target +
                                "', which is missing from the layer "
                                "table"},
                           "add '" + target +
                               "' to the layer table or fix the "
                               "include path");
                continue;
            }
            if (self->second.count(target) == 0) {
                std::string deps;
                for (const std::string &d : self->second)
                    deps += (deps.empty() ? "" : ", ") + d;
                report.add(
                    {"LLL-SRC-101", util::Severity::Error, subject,
                     "include \"" + inc.path + "\" gives '" + f.module +
                         "' an undeclared edge to '" + target +
                         "' (declared deps: " +
                         (deps.empty() ? "none" : deps) + ")"},
                    "invert or remove the include, or declare the "
                    "edge '" +
                        f.module + "' -> '" + target +
                        "' in the layer table if the layering is "
                        "intended");
            }
        }
    }
}

} // namespace lll::audit
