/**
 * @file
 * The source auditor's view of a C++ file: a token stream.
 *
 * `lll audit` is deliberately dependency-free — no libclang, in the
 * spirit of the in-tree JSON parser and ArgParser — so its checks are
 * defined over a *token-level* model: comments are dropped, string and
 * character literals become single tokens carrying their value, and
 * everything else becomes identifier / number / punctuation tokens
 * with 1-based line numbers.  That is exactly enough to check include
 * edges, name literals, declaration attributes and banned calls
 * without ever parsing C++ for real.
 *
 * The lexer is total: malformed input (an unterminated string, a stray
 * byte) never fails the scan, it just degrades into punctuation
 * tokens, because the auditor must keep going to report everything
 * else about the tree.
 */

#ifndef LLL_AUDIT_SOURCE_MODEL_HH
#define LLL_AUDIT_SOURCE_MODEL_HH

#include <string>
#include <vector>

#include "util/status.hh"

namespace lll::audit
{

/** One lexed token. */
struct Token
{
    enum class Kind
    {
        Ident,  //!< identifier or keyword
        Number, //!< numeric literal (pp-number, good enough)
        String, //!< string literal; text is the *unquoted* value
        Char,   //!< character literal; text is the unquoted value
        Punct,  //!< one punctuation char, or "::" as one token
    };

    Kind kind = Kind::Punct;
    std::string text;
    int line = 1;

    bool is(Kind k, const char *t) const
    {
        return kind == k && text == t;
    }
    bool isIdent(const char *t) const { return is(Kind::Ident, t); }
    bool isPunct(const char *t) const { return is(Kind::Punct, t); }
};

/** One `#include` directive. */
struct IncludeDirective
{
    std::string path; //!< between the quotes/brackets
    bool angled = false; //!< <system> rather than "local"
    int line = 1;
};

/** One scanned file: identity plus its lexed content. */
struct SourceFile
{
    std::string relPath; //!< e.g. "src/net/listener.cc"
    std::string module;  //!< "net" for src/net/..., "cli" for tools/
    bool header = false; //!< .hh
    std::vector<Token> tokens;
    std::vector<IncludeDirective> includes;
};

/**
 * Lex @p text (see file comment for the model).  Handles //, C
 * comments, escapes, raw strings, digraph-free C++ — line numbers stay
 * exact across multi-line comments and raw strings.
 */
std::vector<Token> lexTokens(const std::string &text);

/** Every #include in @p text, in order. */
std::vector<IncludeDirective> scanIncludes(const std::string &text);

/**
 * Load and lex every *.cc / *.hh under @p root's `src/` and `tools/`
 * trees, sorted by relative path so reports are byte-deterministic.
 * `src/<m>/...` files get module `<m>`; `tools/...` files get module
 * "cli".  Fails only when @p root has no `src/` directory at all.
 */
[[nodiscard]] util::Result<std::vector<SourceFile>>
loadSourceTree(const std::string &root);

} // namespace lll::audit

#endif // LLL_AUDIT_SOURCE_MODEL_HH
