/**
 * @file
 * API-hygiene checks (LLL-SRC-120..122): [[nodiscard]] on every
 * Status/Result-returning header declaration, banned raw time/rand/exit
 * APIs, and no non-test references to [[deprecated]] symbols.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "audit/audit.hh"

namespace lll::audit
{

namespace
{

std::string
at(const SourceFile &f, int line)
{
    return f.relPath + ":" + std::to_string(line);
}

bool
isQualifierKeyword(const Token &t)
{
    return t.kind == Token::Kind::Ident &&
           (t.text == "inline" || t.text == "static" ||
            t.text == "virtual" || t.text == "constexpr" ||
            t.text == "friend" || t.text == "explicit" ||
            t.text == "extern");
}

/**
 * True when the five tokens ending just before index @p i spell
 * `[[nodiscard]]` (after walking back over declaration qualifiers).
 */
bool
hasNodiscardBefore(const std::vector<Token> &toks, size_t i)
{
    while (i > 0 && isQualifierKeyword(toks[i - 1]))
        --i;
    return i >= 5 && toks[i - 1].isPunct("]") &&
           toks[i - 2].isPunct("]") && toks[i - 3].isIdent("nodiscard") &&
           toks[i - 4].isPunct("[") && toks[i - 5].isPunct("[");
}

/**
 * [[nodiscard]] on Status/Result-returning declarations in headers.
 *
 * The token shape of a candidate declaration is
 *
 *   [util:: | lll::util:: | lll::] (Status | Result<...>) name (
 *
 * `Status::error(...)` (the type used as a scope), constructor calls
 * (`Status(...)`, no name between type and paren) and mentions inside
 * template arguments (`vector<Status>`) all fail the shape and are
 * skipped, so the check has no opinion about uses — only declarations.
 */
void
checkNodiscard(const SourceFile &f, AuditReport &report)
{
    const std::vector<Token> &toks = f.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].isIdent("Status") && !toks[i].isIdent("Result"))
            continue;
        // Walk back over `util::` / `lll::` qualifiers to where an
        // attribute would sit.
        size_t start = i;
        while (start >= 2 && toks[start - 1].isPunct("::") &&
               (toks[start - 2].isIdent("util") ||
                toks[start - 2].isIdent("lll")))
            start -= 2;
        size_t j = i + 1; // first token after the return type
        if (toks[i].isIdent("Result")) {
            if (j >= toks.size() || !toks[j].isPunct("<"))
                continue;
            int depth = 0;
            while (j < toks.size()) {
                if (toks[j].isPunct("<"))
                    ++depth;
                else if (toks[j].isPunct(">") && --depth == 0) {
                    ++j;
                    break;
                }
                ++j;
            }
            if (depth != 0)
                continue;
        } else {
            // `Status::error(...)` — a scope, not a return type.
            if (j < toks.size() && toks[j].isPunct("::"))
                continue;
        }
        if (j + 1 >= toks.size() ||
            toks[j].kind != Token::Kind::Ident ||
            !toks[j + 1].isPunct("("))
            continue;
        // `using X = Status;` / `operator` oddities never reach here:
        // the shape above already requires `<type> <name> (`.
        ++report.stats.declarations;
        if (!hasNodiscardBefore(toks, start)) {
            report.add(
                {"LLL-SRC-120", util::Severity::Error,
                 at(f, toks[i].line),
                 toks[i].text + "-returning declaration '" +
                     toks[j].text + "' is missing [[nodiscard]]"},
                "add [[nodiscard]] in front of '" + toks[j].text +
                    "' so dropped " + toks[i].text +
                    "es fail the -Wunused-result build");
        }
    }
}

const std::set<std::string> kClockIdents = {
    "steady_clock", "system_clock", "high_resolution_clock"};

const std::set<std::string> kRandIdents = {
    "rand",      "srand",         "drand48",
    "rand_r",    "random_device", "mt19937",
    "mt19937_64", "default_random_engine"};

const std::set<std::string> kCallOnlyIdents = {
    "time",      "clock",    "gettimeofday", "clock_gettime",
    "localtime", "gmtime",   "exit",         "abort",
};

const std::set<std::string> kBannedHeaders = {"random", "ctime",
                                              "time.h"};

/**
 * Banned-API scan.  Raw clocks live only in src/obs/timer.hh (that is
 * what obs::WallClock is *for*); the rand family is banned everywhere
 * in favour of the seeded lll::Rng; time/exit/abort are banned as
 * *calls* (member calls like `timer.time()` and unrelated identifiers
 * pass), with exit/abort allowed in the CLI and the fatal-log path.
 */
void
checkBannedApis(const SourceFile &f, AuditReport &report)
{
    const bool clock_home = f.relPath == "src/obs/timer.hh";
    const bool exit_home =
        f.module == "cli" || f.relPath == "src/util/logging.cc";

    for (const IncludeDirective &inc : f.includes) {
        if (inc.angled && kBannedHeaders.count(inc.path) != 0) {
            report.add({"LLL-SRC-121", util::Severity::Error,
                        at(f, inc.line),
                        "banned header <" + inc.path + ">"},
                       "use obs::WallClock (util/timer) or lll::Rng "
                       "(util/rng.hh) instead of <" +
                           inc.path + ">");
        }
    }

    const std::vector<Token> &toks = f.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident)
            continue;
        const std::string &id = toks[i].text;

        if (kClockIdents.count(id) != 0 && !clock_home) {
            report.add({"LLL-SRC-121", util::Severity::Error,
                        at(f, toks[i].line),
                        "raw std::chrono::" + id +
                            " outside src/obs/timer.hh"},
                       "go through obs::WallClock / obs::WallTimer so "
                       "time stays mockable and centralized");
            continue;
        }
        if (kRandIdents.count(id) != 0) {
            report.add({"LLL-SRC-121", util::Severity::Error,
                        at(f, toks[i].line), "banned RNG API '" + id +
                                                 "' (unseeded or "
                                                 "platform-varying)"},
                       "use the seeded lll::Rng (util/rng.hh) so runs "
                       "stay reproducible");
            continue;
        }
        if (kCallOnlyIdents.count(id) != 0) {
            if ((id == "exit" || id == "abort") && exit_home)
                continue;
            if (i + 1 >= toks.size() || !toks[i + 1].isPunct("("))
                continue; // not a call
            if (i > 0 &&
                (toks[i - 1].isPunct(".") || toks[i - 1].isPunct(">")))
                continue; // member call: x.time(), p->exit(...)
            if (i > 0 && toks[i - 1].isPunct("::")) {
                // Only `std::time(...)`-style qualification is the
                // banned libc call; `Foo::exit(...)` is someone
                // else's method.
                if (i < 2 || !toks[i - 2].isIdent("std"))
                    continue;
            }
            report.add(
                {"LLL-SRC-121", util::Severity::Error,
                 at(f, toks[i].line), "banned call '" + id + "()'"},
                id == "exit" || id == "abort"
                    ? "return a util::Status up to the CLI instead "
                      "of terminating from a library"
                    : "go through obs::WallClock so time stays "
                      "mockable and deterministic in tests");
        }
    }
}

/** A symbol marked [[deprecated]] and where it lives. */
struct DeprecatedSymbol
{
    std::string name;
    std::string module;
    std::string declaredIn;
    int line = 0;
};

/**
 * Find `[[deprecated...]] <decl>` sites: skip to the attribute's
 * closing `]]`, then take the first identifier that is immediately
 * followed by `(` — the declared function — within a short window
 * (return types like `Result<std::vector<T>>` sit in between).
 */
std::vector<DeprecatedSymbol>
findDeprecated(const std::vector<SourceFile> &files)
{
    std::vector<DeprecatedSymbol> out;
    for (const SourceFile &f : files) {
        const std::vector<Token> &toks = f.tokens;
        for (size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].isIdent("deprecated") || i < 2 ||
                !toks[i - 1].isPunct("[") || !toks[i - 2].isPunct("["))
                continue;
            size_t j = i + 1;
            while (j + 1 < toks.size() && !(toks[j].isPunct("]") &&
                                            toks[j + 1].isPunct("]")))
                ++j;
            j += 2; // past "]]"
            const size_t window = j + 24;
            for (; j + 1 < toks.size() && j < window; ++j) {
                if (toks[j].kind == Token::Kind::Ident &&
                    toks[j + 1].isPunct("(") &&
                    !toks[j].isIdent("decltype")) {
                    out.push_back({toks[j].text, f.module, f.relPath,
                                   toks[j].line});
                    break;
                }
            }
        }
    }
    return out;
}

/**
 * References to [[deprecated]] symbols from *other modules*
 * (LLL-SRC-122).  The declaring module keeps compiling its own
 * implementation and shims; everyone else must move to the
 * replacement.  Tests are outside the audit scan set entirely.
 */
void
checkDeprecatedRefs(const std::vector<SourceFile> &files,
                    AuditReport &report)
{
    const std::vector<DeprecatedSymbol> symbols = findDeprecated(files);
    if (symbols.empty())
        return;
    std::map<std::string, const DeprecatedSymbol *> bySymbol;
    for (const DeprecatedSymbol &s : symbols)
        bySymbol[s.name] = &s;
    for (const SourceFile &f : files) {
        for (const Token &t : f.tokens) {
            if (t.kind != Token::Kind::Ident)
                continue;
            const auto it = bySymbol.find(t.text);
            if (it == bySymbol.end() ||
                it->second->module == f.module)
                continue;
            report.add(
                {"LLL-SRC-122", util::Severity::Error, at(f, t.line),
                 "reference to [[deprecated]] symbol '" + t.text +
                     "' (declared at " + it->second->declaredIn + ")"},
                "migrate this call site off '" + t.text +
                    "' to its documented replacement");
        }
    }
}

} // namespace

void
checkApiHygiene(const std::vector<SourceFile> &files,
                AuditReport &report)
{
    for (const SourceFile &f : files) {
        if (f.header)
            checkNodiscard(f, report);
        checkBannedApis(f, report);
    }
    checkDeprecatedRefs(files, report);
}

} // namespace lll::audit
