#include "audit/source_model.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/status.hh"

namespace fs = std::filesystem;

namespace lll::audit
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Count newlines in [begin, end) into @p line. */
void
advanceLines(const std::string &s, size_t begin, size_t end, int &line)
{
    for (size_t i = begin; i < end && i < s.size(); ++i)
        if (s[i] == '\n')
            ++line;
}

} // namespace

std::vector<Token>
lexTokens(const std::string &text)
{
    std::vector<Token> out;
    const size_t n = text.size();
    size_t i = 0;
    int line = 1;
    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            while (i < n && text[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            size_t end = text.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            advanceLines(text, i, end, line);
            i = end;
            continue;
        }
        // Raw strings: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
            (i == 0 || !isIdentChar(text[i - 1]))) {
            const size_t open = text.find('(', i + 2);
            if (open != std::string::npos && open - (i + 2) <= 16) {
                const std::string delim =
                    text.substr(i + 2, open - (i + 2));
                const std::string closer = ")" + delim + "\"";
                size_t end = text.find(closer, open + 1);
                const int at = line;
                std::string value;
                if (end == std::string::npos) {
                    value = text.substr(open + 1);
                    advanceLines(text, i, n, line);
                    i = n;
                } else {
                    value = text.substr(open + 1, end - open - 1);
                    advanceLines(text, i, end + closer.size(), line);
                    i = end + closer.size();
                }
                out.push_back({Token::Kind::String, value, at});
                continue;
            }
        }
        // String and char literals (escape-aware).
        if (c == '"' || c == '\'') {
            const char quote = c;
            const int at = line;
            std::string value;
            ++i;
            while (i < n && text[i] != quote) {
                if (text[i] == '\\' && i + 1 < n) {
                    value.push_back(text[i]);
                    value.push_back(text[i + 1]);
                    if (text[i + 1] == '\n')
                        ++line;
                    i += 2;
                    continue;
                }
                if (text[i] == '\n') {
                    // Unterminated literal; stop at the line break so
                    // the rest of the file still lexes.
                    break;
                }
                value.push_back(text[i]);
                ++i;
            }
            if (i < n && text[i] == quote)
                ++i;
            out.push_back({quote == '"' ? Token::Kind::String
                                        : Token::Kind::Char,
                           value, at});
            continue;
        }
        // Identifiers / keywords.
        if (isIdentStart(c)) {
            const size_t start = i;
            while (i < n && isIdentChar(text[i]))
                ++i;
            out.push_back({Token::Kind::Ident,
                           text.substr(start, i - start), line});
            continue;
        }
        // pp-numbers (digits, dots, exponents — coarse but total).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            const size_t start = i;
            while (i < n && (isIdentChar(text[i]) || text[i] == '.'))
                ++i;
            out.push_back({Token::Kind::Number,
                           text.substr(start, i - start), line});
            continue;
        }
        // "::" is load-bearing for qualifier matching; keep it whole.
        if (c == ':' && i + 1 < n && text[i + 1] == ':') {
            out.push_back({Token::Kind::Punct, "::", line});
            i += 2;
            continue;
        }
        out.push_back({Token::Kind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

std::vector<IncludeDirective>
scanIncludes(const std::string &text)
{
    std::vector<IncludeDirective> out;
    std::istringstream in(text);
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
        ++line;
        size_t i = raw.find_first_not_of(" \t");
        if (i == std::string::npos || raw[i] != '#')
            continue;
        i = raw.find_first_not_of(" \t", i + 1);
        if (i == std::string::npos || raw.compare(i, 7, "include") != 0)
            continue;
        i = raw.find_first_not_of(" \t", i + 7);
        if (i == std::string::npos)
            continue;
        const char open = raw[i];
        if (open != '"' && open != '<')
            continue;
        const char close = open == '"' ? '"' : '>';
        const size_t end = raw.find(close, i + 1);
        if (end == std::string::npos)
            continue;
        out.push_back(
            {raw.substr(i + 1, end - i - 1), open == '<', line});
    }
    return out;
}

namespace
{

/** Collect *.cc / *.hh under @p dir into @p files (module = @p mod, or
 *  the first path component under @p dir when @p mod is empty). */
void
collectTree(const fs::path &root, const char *top, const char *mod,
            std::vector<SourceFile> &files)
{
    const fs::path dir = root / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const fs::path &p = it->path();
        const std::string ext = p.extension().string();
        if (ext != ".cc" && ext != ".hh")
            continue;
        SourceFile f;
        f.relPath = fs::relative(p, root, ec).generic_string();
        f.header = ext == ".hh";
        if (mod != nullptr) {
            f.module = mod;
        } else {
            const fs::path rel = fs::relative(p, dir, ec);
            f.module = rel.begin() != rel.end()
                           ? rel.begin()->string()
                           : std::string(top);
            if (f.module == p.filename().string())
                f.module = top; // file directly under src/
        }
        files.push_back(std::move(f));
    }
}

} // namespace

util::Result<std::vector<SourceFile>>
loadSourceTree(const std::string &root)
{
    std::error_code ec;
    if (!fs::is_directory(fs::path(root) / "src", ec)) {
        return util::Status::error(util::ErrorCode::NotFound,
                                   "no src/ directory under '%s'",
                                   root.c_str());
    }
    std::vector<SourceFile> files;
    collectTree(root, "src", nullptr, files);
    collectTree(root, "tools", "cli", files);
    std::sort(files.begin(), files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.relPath < b.relPath;
              });
    for (SourceFile &f : files) {
        std::ifstream in(fs::path(root) / f.relPath,
                         std::ios::binary);
        if (!in) {
            return util::Status::error(util::ErrorCode::IoError,
                                       "cannot read '%s'",
                                       f.relPath.c_str());
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string text = buf.str();
        f.tokens = lexTokens(text);
        f.includes = scanIncludes(text);
    }
    return files;
}

} // namespace lll::audit
