/**
 * @file
 * Name-registry check: every metric/span-shaped string literal and
 * every `LLL-XXX-NNN` diagnostic-ID literal in src/ and tools/ must
 * match util/names.hh exactly (LLL-SRC-110..112).
 */

#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "audit/audit.hh"
#include "util/names.hh"

namespace lll::audit
{

std::vector<std::string>
defaultRegisteredNames()
{
    std::vector<std::string> out;
    for (const char *name : util::names::kRegisteredNames)
        out.push_back(name);
    return out;
}

std::vector<util::names::DiagId>
defaultDiagIds()
{
    std::vector<util::names::DiagId> out;
    for (const util::names::DiagId &d : util::names::kDiagIds)
        out.push_back(d);
    return out;
}

namespace
{

/** "service.latency.parse_ns" -> "service"; "" when there is no dot. */
std::string
firstSegment(const std::string &name)
{
    const size_t dot = name.find('.');
    return dot == std::string::npos ? std::string() : name.substr(0, dot);
}

/**
 * A literal is metric-shaped when it is `<ns>.<suffix>` with `<ns>` a
 * namespace some registered name lives in and `<suffix>` (possibly
 * empty, for family prefixes) drawn from [a-z0-9_.].  Anchoring on the
 * registered namespaces keeps prose like "e.g. run.json" out of the
 * check while still catching every typo'd in-namespace name.
 */
bool
isMetricShaped(const std::string &lit,
               const std::set<std::string> &namespaces)
{
    const std::string ns = firstSegment(lit);
    if (ns.empty() || namespaces.count(ns) == 0)
        return false;
    for (size_t i = ns.size() + 1; i < lit.size(); ++i) {
        const char c = lit[i];
        if (!std::islower(static_cast<unsigned char>(c)) &&
            !std::isdigit(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.')
            return false;
    }
    return true;
}

/** Every "LLL-<GROUP>-<NNN>" substring of @p lit. */
std::vector<std::string>
extractDiagIds(const std::string &lit)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while ((pos = lit.find("LLL-", pos)) != std::string::npos) {
        size_t i = pos + 4;
        size_t letters = 0;
        while (i < lit.size() &&
               std::isupper(static_cast<unsigned char>(lit[i]))) {
            ++i;
            ++letters;
        }
        if (letters < 2 || letters > 6 || i >= lit.size() ||
            lit[i] != '-') {
            pos += 4;
            continue;
        }
        ++i;
        size_t digits = 0;
        while (i < lit.size() &&
               std::isdigit(static_cast<unsigned char>(lit[i]))) {
            ++i;
            ++digits;
        }
        if (digits != 3) {
            pos += 4;
            continue;
        }
        out.push_back(lit.substr(pos, i - pos));
        pos = i;
    }
    return out;
}

} // namespace

void
checkNameRegistry(const std::vector<SourceFile> &files,
                  const AuditConfig &config, AuditReport &report)
{
    // LLL-SRC-112 guards the registry itself: an ID entered twice with
    // different titles means two checks think they own it.
    std::map<std::string, std::string> idTitle;
    for (const util::names::DiagId &d : config.diagIds) {
        const auto [it, inserted] = idTitle.emplace(d.id, d.title);
        if (!inserted && it->second != d.title) {
            report.add({"LLL-SRC-112", util::Severity::Error,
                        std::string("registry: ") + d.id,
                        std::string("diagnostic ID registered twice "
                                    "with conflicting meanings: '") +
                            it->second + "' vs '" + d.title + "'"},
                       std::string("allocate a fresh ID for one of the "
                                   "two meanings of ") +
                           d.id + " (IDs are never reused)");
        }
    }

    std::set<std::string> registered(config.registeredNames.begin(),
                                     config.registeredNames.end());
    std::set<std::string> namespaces;
    for (const std::string &name : config.registeredNames) {
        const std::string ns = firstSegment(name);
        if (!ns.empty())
            namespaces.insert(ns);
    }
    const std::set<std::string> skip(config.registrySources.begin(),
                                     config.registrySources.end());

    for (const SourceFile &f : files) {
        if (skip.count(f.relPath) != 0)
            continue;
        for (const Token &t : f.tokens) {
            if (t.kind != Token::Kind::String)
                continue;
            const std::string subject =
                f.relPath + ":" + std::to_string(t.line);
            if (isMetricShaped(t.text, namespaces)) {
                ++report.stats.nameLiterals;
                if (registered.count(t.text) == 0) {
                    report.add(
                        {"LLL-SRC-110", util::Severity::Error, subject,
                         "metric/span literal \"" + t.text +
                             "\" is not in the name registry"},
                        "reference the name through a util/names.hh "
                        "constant (register \"" +
                            t.text + "\" there first if it is new)");
                }
            }
            for (const std::string &id : extractDiagIds(t.text)) {
                ++report.stats.idLiterals;
                if (idTitle.count(id) == 0) {
                    report.add(
                        {"LLL-SRC-111", util::Severity::Error, subject,
                         "diagnostic ID literal \"" + id +
                             "\" is not in the ID registry"},
                        "register " + id +
                            " in util/names.hh kDiagIds (or fix the "
                            "typo to an existing ID)");
                }
            }
        }
    }
}

} // namespace lll::audit
