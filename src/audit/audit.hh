/**
 * @file
 * The in-tree source auditor behind `lll audit` (DESIGN.md §15).
 *
 * PR 3 gave configurations the lint treatment; this module gives the
 * *source tree itself* the same treatment, because the paper's method
 * is only as trustworthy as the instrumentation: a typo'd metric
 * string or a dropped Status silently corrupts an analysis instead of
 * failing it.  Three check families, each with stable `LLL-SRC-1xx`
 * IDs in the standard Diagnostic machinery:
 *
 *  - layering (LLL-SRC-101..103): the `src/` modules form a declared
 *    DAG (util → obs → sim → … → net, `cli` on top); every local
 *    `#include` must follow a declared edge, and the declared table
 *    itself must stay acyclic and complete;
 *  - name registry (LLL-SRC-110..112): every metric/span-shaped string
 *    literal and every `LLL-XXX-NNN` diagnostic-ID literal must match
 *    the checked-in registry (util/names.hh) exactly;
 *  - API hygiene (LLL-SRC-120..122): Status/Result-returning header
 *    declarations must carry [[nodiscard]]; raw clocks, rand/time and
 *    exit are banned outside their one sanctioned home; [[deprecated]]
 *    symbols must not be referenced from non-test code.
 *
 * Everything is a pure function of the file bytes — no compiler, no
 * network, no environment — so audit output is byte-deterministic and
 * golden-testable, and the whole thing runs in milliseconds as a CI
 * wall.
 */

#ifndef LLL_AUDIT_AUDIT_HH
#define LLL_AUDIT_AUDIT_HH

#include <string>
#include <vector>

#include "audit/source_model.hh"
#include "util/diagnostic.hh"
#include "util/names.hh"
#include "util/status.hh"

namespace lll::audit
{

/** One module and the modules its includes may reach directly. */
struct LayerSpec
{
    std::string module;
    std::vector<std::string> deps;
};

/** The repo's declared layering DAG (DESIGN.md §15.2), bottom-up. */
std::vector<LayerSpec> defaultLayers();

/** The checked-in name registry as scan tables (util/names.hh). */
std::vector<std::string> defaultRegisteredNames();
std::vector<util::names::DiagId> defaultDiagIds();

/** What to audit and against which tables (defaults = this repo's). */
struct AuditConfig
{
    /** Repo root (the directory holding src/ and tools/). */
    std::string root = ".";
    std::vector<LayerSpec> layers = defaultLayers();
    std::vector<std::string> registeredNames = defaultRegisteredNames();
    std::vector<util::names::DiagId> diagIds = defaultDiagIds();
    /** Files the registry literal check skips (the registry itself). */
    std::vector<std::string> registrySources = {"src/util/names.hh"};
};

/** Scan-size counters for the report footer. */
struct AuditStats
{
    size_t files = 0;
    size_t modules = 0;
    size_t includes = 0;
    size_t nameLiterals = 0;
    size_t idLiterals = 0;
    size_t declarations = 0;
};

/** The audit verdict: findings plus what was examined. */
struct AuditReport
{
    util::DiagnosticList diagnostics;
    /** One imperative remediation per finding, index-aligned with
     *  diagnostics (the `--fix-plan` payload). */
    std::vector<std::string> fixHints;
    AuditStats stats;

    /** Append one finding plus its remediation. */
    void add(util::Diagnostic d, std::string hint);

    bool clean() const { return !diagnostics.hasErrors(); }

    /** One finding per line plus a one-line summary footer. */
    std::string renderText() const;
    /** The `--json` data object (diagnostics + stats + summary). */
    std::string renderJson() const;
    /** Suggested remediation, one imperative line per finding. */
    std::string renderFixPlan() const;
};

/**
 * Run every check over @p config.root.  Fails (as a Status) only when
 * the tree cannot be read; findings — however bad — are data.
 */
[[nodiscard]] util::Result<AuditReport> runAudit(const AuditConfig &config);

/**
 * Walk upward from @p start looking for a directory that contains
 * both `src/` and `tools/` (the repo root, when run from a build
 * tree); NotFound after @p maxHops parents.
 */
[[nodiscard]] util::Result<std::string> findRepoRoot(const std::string &start,
                                       int maxHops = 6);

// --- individual checks (exposed for focused tests) -------------------

void checkLayering(const std::vector<SourceFile> &files,
                   const std::vector<LayerSpec> &layers,
                   AuditReport &report);

void checkNameRegistry(const std::vector<SourceFile> &files,
                       const AuditConfig &config, AuditReport &report);

void checkApiHygiene(const std::vector<SourceFile> &files,
                     AuditReport &report);

} // namespace lll::audit

#endif // LLL_AUDIT_AUDIT_HH
