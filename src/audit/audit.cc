/**
 * @file
 * Audit orchestration and report rendering (`lll audit`).
 */

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.hh"

namespace fs = std::filesystem;

namespace lll::audit
{

void
AuditReport::add(util::Diagnostic d, std::string hint)
{
    diagnostics.add(std::move(d));
    fixHints.push_back(std::move(hint));
}

std::string
AuditReport::renderText() const
{
    std::ostringstream out;
    if (!diagnostics.empty())
        out << diagnostics.renderText();
    out << "audit: " << stats.files << " files in " << stats.modules
        << " modules -- " << stats.includes << " includes, "
        << stats.nameLiterals << " name literals, " << stats.idLiterals
        << " id literals, " << stats.declarations
        << " declarations checked; " << diagnostics.errorCount()
        << " errors, " << diagnostics.warningCount() << " warnings, "
        << diagnostics.noteCount() << " notes\n";
    return out.str();
}

std::string
AuditReport::renderJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"stats\": {\n";
    out << "    \"files\": " << stats.files << ",\n";
    out << "    \"modules\": " << stats.modules << ",\n";
    out << "    \"includes\": " << stats.includes << ",\n";
    out << "    \"name_literals\": " << stats.nameLiterals << ",\n";
    out << "    \"id_literals\": " << stats.idLiterals << ",\n";
    out << "    \"declarations\": " << stats.declarations << "\n";
    out << "  },\n";
    out << "  \"diagnostics\": " << diagnostics.renderJson(2) << ",\n";
    out << "  \"summary\": {\n";
    out << "    \"errors\": " << diagnostics.errorCount() << ",\n";
    out << "    \"warnings\": " << diagnostics.warningCount() << ",\n";
    out << "    \"notes\": " << diagnostics.noteCount() << ",\n";
    out << "    \"clean\": " << (clean() ? "true" : "false") << "\n";
    out << "  }\n";
    out << "}";
    return out.str();
}

std::string
AuditReport::renderFixPlan() const
{
    const std::vector<util::Diagnostic> &diags = diagnostics.all();
    if (diags.empty())
        return "fix plan: tree is clean; nothing to do\n";
    std::ostringstream out;
    out << "fix plan (" << diags.size() << " findings):\n";
    for (size_t i = 0; i < diags.size(); ++i) {
        out << "  " << (i + 1) << ". [" << diags[i].id << "] "
            << diags[i].subject << ": "
            << (i < fixHints.size() ? fixHints[i] : "see finding")
            << "\n";
    }
    return out.str();
}

util::Result<AuditReport>
runAudit(const AuditConfig &config)
{
    util::Result<std::vector<SourceFile>> tree =
        loadSourceTree(config.root);
    if (!tree.ok()) {
        return tree.status().withContext("auditing '%s'",
                                         config.root.c_str());
    }
    const std::vector<SourceFile> &files = tree.value();

    AuditReport report;
    report.stats.files = files.size();
    std::set<std::string> modules;
    for (const SourceFile &f : files)
        modules.insert(f.module);
    report.stats.modules = modules.size();

    checkLayering(files, config.layers, report);
    checkNameRegistry(files, config, report);
    checkApiHygiene(files, report);
    return report;
}

util::Result<std::string>
findRepoRoot(const std::string &start, int maxHops)
{
    std::error_code ec;
    fs::path p = fs::absolute(start, ec);
    if (ec)
        p = start;
    for (int hop = 0; hop <= maxHops; ++hop) {
        if (fs::is_directory(p / "src", ec) &&
            fs::is_directory(p / "tools", ec))
            return p.generic_string();
        const fs::path parent = p.parent_path();
        if (parent == p)
            break;
        p = parent;
    }
    return util::Status::error(
        util::ErrorCode::NotFound,
        "no repo root (a directory holding src/ and tools/) at or "
        "above '%s'",
        start.c_str());
}

} // namespace lll::audit
