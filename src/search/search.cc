#include "search/search.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/export.hh"
#include "util/names.hh"
#include "workloads/spec_workload.hh"

namespace lll::search
{

using util::ErrorCode;
using util::Status;

namespace
{

std::string
fmtG17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtFixed(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
pad(const std::string &s, size_t width)
{
    std::string out = s;
    while (out.size() < width)
        out += ' ';
    return out;
}

} // namespace

util::Result<SearchResult>
Searcher::run(const SearchSpec &spec)
{
    // Resolve the base platform and the workload.
    platforms::Platform base;
    if (spec.hasBasePlatform) {
        base = spec.basePlatform;
    } else {
        util::Result<platforms::Platform> p =
            platforms::findPlatform(spec.platformName);
        if (!p.ok())
            return p.status();
        base = p.take();
    }
    workloads::WorkloadPtr workload;
    if (spec.hasSpec) {
        workload = workloads::inlineSpecWorkload(spec.spec,
                                                 spec.randomDominated);
    } else {
        util::Result<workloads::WorkloadPtr> w =
            workloads::findWorkload(spec.workloadName);
        if (!w.ok())
            return w.status();
        workload = w.take();
    }

    util::Result<std::vector<Candidate>> enumerated =
        enumerateSpace(spec, base, *workload);
    if (!enumerated.ok())
        return enumerated.status();
    std::vector<Candidate> candidates = enumerated.take();

    SearchResult result;
    result.platform = base.name;
    result.workload = workload->name();
    result.optsLabel = spec.opts.label();
    result.bankWeight = spec.bankWeight;
    {
        std::vector<std::string> names;
        for (const Axis &axis : spec.axes)
            names.push_back(axis.name);
        std::sort(names.begin(), names.end());
        result.axisNames = std::move(names);
    }
    result.enumerated = candidates.size();
    result.rows.resize(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        SearchRow &row = result.rows[i];
        row.index = i;
        row.label = candidates[i].label;
        row.cost = candidates[i].cost;
        row.ceilingGBs = candidates[i].ceilingGBs;
        if (!candidates[i].feasible) {
            row.fate = CandidateFate::Infeasible;
            row.status = candidates[i].infeasibleWhy;
            ++result.prunedInfeasible;
        }
    }

    // Cost classes, cheapest first.  Within a class candidates keep
    // enumeration order; across classes the analytic prune compares
    // against *strictly* cheaper simulated performance only, so equal
    // cost can never prune equal cost and the result is independent
    // of intra-class completion order.
    std::map<double, std::vector<size_t>> classes;
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].feasible)
            classes[candidates[i].cost].push_back(i);
    }

    const double warmup = spec.warmupUs > 0.0 ? spec.warmupUs
                                              : workload->warmupUs();
    const double measure = spec.measureUs > 0.0 ? spec.measureUs
                                                : workload->measureUs();

    core::SweepRunner::Params rp;
    rp.jobs = params_.jobs;
    rp.cache = params_.cache;
    rp.registry = params_.registry;
    core::SweepRunner runner(rp);

    // Both ceiling terms (DESIGN.md §17.2) cap the *sustained* rate,
    // but a finite measurement window can overshoot them by a fraction
    // of a percent (requests in flight at the window edges are
    // attributed whole).  Pruning therefore demands this much headroom
    // above the ceiling before calling a candidate dominated, so a
    // config that could tie its ceiling is never retired by a lucky
    // window.
    constexpr double kCeilingSlack = 0.02;

    double best_perf = 0.0;
    bool best_any = false;
    for (const auto &[cost, members] : classes) {
        (void)cost;
        std::vector<size_t> to_run;
        for (size_t i : members) {
            if (!spec.disablePruning && best_any &&
                best_perf >=
                    candidates[i].ceilingGBs * (1.0 + kCeilingSlack)) {
                // A strictly cheaper config already achieved at least
                // everything this one's ceiling allows: dominated.
                result.rows[i].fate = CandidateFate::PrunedAnalytic;
                ++result.prunedAnalytic;
            } else {
                to_run.push_back(i);
            }
        }
        if (to_run.empty())
            continue;
        ++result.waves;
        std::vector<core::SweepRunner::StageUnit> units;
        units.reserve(to_run.size());
        for (size_t i : to_run) {
            units.push_back({candidates[i].platform, workload.get(),
                             spec.opts, warmup, measure, spec.cores,
                             spec.seed});
        }
        const std::vector<core::SweepRunner::StageOutcome> outcomes =
            runner.runStages(units);
        double class_best = 0.0;
        bool class_any = false;
        for (size_t u = 0; u < to_run.size(); ++u) {
            SearchRow &row = result.rows[to_run[u]];
            row.fate = CandidateFate::Simulated;
            ++result.simulated;
            const core::SweepRunner::StageOutcome &out = outcomes[u];
            row.status = out.status;
            if (!out.status.ok())
                continue;
            const core::Analysis &a = out.metrics.analysis;
            row.bwGBs = a.bwGBs;
            row.pctPeak = a.pctPeak;
            row.latencyNs = a.latencyNs;
            row.nAvg = a.nAvg;
            row.throughput = out.metrics.throughput;
            if (!class_any || row.bwGBs > class_best) {
                class_best = row.bwGBs;
                class_any = true;
            }
        }
        // Merge after the whole class so equal-cost members never see
        // each other's results.
        if (class_any && (!best_any || class_best > best_perf)) {
            best_perf = class_best;
            best_any = true;
        }
    }

    // Frontier over successful simulations only.
    std::vector<ParetoPoint> points;
    for (const SearchRow &row : result.rows) {
        if (row.fate == CandidateFate::Simulated && row.status.ok()) {
            points.push_back({row.label, row.cost, row.bwGBs,
                              row.index});
        }
    }
    for (const ParetoPoint &p : paretoFrontier(std::move(points))) {
        result.rows[p.index].onFrontier = true;
        result.frontier.push_back(p.index);
    }

    if (params_.registry) {
        obs::MetricRegistry &reg = *params_.registry;
        reg.counter(util::names::kSearchEnumeratedTotal)
            .increment(result.enumerated);
        reg.counter(util::names::kSearchPrunedAnalyticTotal)
            .increment(result.prunedAnalytic);
        reg.counter(util::names::kSearchPrunedInfeasibleTotal)
            .increment(result.prunedInfeasible);
        reg.counter(util::names::kSearchSimulatedTotal)
            .increment(result.simulated);
        reg.counter(util::names::kSearchWavesTotal)
            .increment(result.waves);
        reg.setGauge(util::names::kSearchFrontierSize,
                     static_cast<double>(result.frontier.size()));
    }
    return result;
}

std::string
searchDataJson(const SearchResult &r, bool include_rows)
{
    std::ostringstream out;
    out << "{\"platform\": \"" << obs::jsonEscape(r.platform)
        << "\", \"workload\": \"" << obs::jsonEscape(r.workload)
        << "\", \"opts\": \"" << obs::jsonEscape(r.optsLabel)
        << "\", \"axes\": [";
    for (size_t i = 0; i < r.axisNames.size(); ++i) {
        out << (i ? ", " : "") << "\"" << obs::jsonEscape(r.axisNames[i])
            << "\"";
    }
    out << "], \"bank_weight\": " << fmtG17(r.bankWeight)
        << ", \"enumerated\": " << r.enumerated
        << ", \"pruned_analytic\": " << r.prunedAnalytic
        << ", \"pruned_infeasible\": " << r.prunedInfeasible
        << ", \"simulated\": " << r.simulated
        << ", \"waves\": " << r.waves << ", \"frontier\": [";
    auto emitPoint = [&out, &r](size_t index, bool first) {
        const SearchRow &row = r.rows[index];
        out << (first ? "" : ", ") << "{\"config\": \""
            << obs::jsonEscape(row.label)
            << "\", \"cost\": " << fmtG17(row.cost)
            << ", \"bw_gbs\": " << fmtG17(row.bwGBs)
            << ", \"pct_peak\": " << fmtG17(row.pctPeak)
            << ", \"latency_ns\": " << fmtG17(row.latencyNs)
            << ", \"n_avg\": " << fmtG17(row.nAvg)
            << ", \"ceiling_gbs\": " << fmtG17(row.ceilingGBs) << "}";
    };
    for (size_t i = 0; i < r.frontier.size(); ++i)
        emitPoint(r.frontier[i], i == 0);
    out << "]";
    if (include_rows) {
        out << ", \"rows\": [";
        for (size_t i = 0; i < r.rows.size(); ++i) {
            const SearchRow &row = r.rows[i];
            out << (i ? ", " : "") << "{\"config\": \""
                << obs::jsonEscape(row.label)
                << "\", \"cost\": " << fmtG17(row.cost)
                << ", \"ceiling_gbs\": " << fmtG17(row.ceilingGBs)
                << ", \"fate\": \"" << candidateFateName(row.fate)
                << "\", \"status\": {\"code\": \""
                << util::errorCodeName(row.status.code())
                << "\", \"message\": \""
                << obs::jsonEscape(row.status.message())
                << "\"}, \"bw_gbs\": " << fmtG17(row.bwGBs)
                << ", \"n_avg\": " << fmtG17(row.nAvg)
                << ", \"on_frontier\": "
                << (row.onFrontier ? "true" : "false") << "}";
        }
        out << "]";
    }
    out << "}";
    return out.str();
}

std::string
renderSearchText(const SearchResult &r, bool all_rows)
{
    std::ostringstream out;
    out << "search: " << r.workload << " on " << r.platform << " (opts "
        << r.optsLabel << ")\n";
    out << "candidates: " << r.enumerated << " enumerated = "
        << r.simulated << " simulated + " << r.prunedAnalytic
        << " pruned (analytic) + " << r.prunedInfeasible
        << " infeasible; " << r.waves << " waves\n";
    out << "cost model: L1 MSHRs + L2 MSHRs + "
        << fmtFixed(r.bankWeight, 2) << " x banks\n\n";

    auto emitRow = [&out](const SearchRow &row) {
        out << "  " << pad(fmtFixed(row.cost, 1), 9)
            << pad(fmtFixed(row.bwGBs, 2), 12)
            << pad(fmtFixed(row.pctPeak * 100.0, 1), 8)
            << pad(fmtFixed(row.latencyNs, 0), 9)
            << pad(fmtFixed(row.nAvg, 2), 8)
            << pad(fmtFixed(row.ceilingGBs, 2), 10) << row.label
            << "\n";
    };
    const std::string header =
        "  " + pad("cost", 9) + pad("BW GB/s", 12) + pad("%peak", 8) +
        pad("lat ns", 9) + pad("n_avg", 8) + pad("ceiling", 10) +
        "config\n";
    out << "Pareto frontier (" << r.frontier.size() << " of "
        << r.simulated << " simulated):\n" << header;
    for (size_t index : r.frontier)
        emitRow(r.rows[index]);
    if (all_rows) {
        out << "\nall candidates:\n" << header;
        for (const SearchRow &row : r.rows) {
            if (row.fate == CandidateFate::Simulated &&
                row.status.ok()) {
                emitRow(row);
                continue;
            }
            out << "  " << pad(fmtFixed(row.cost, 1), 9)
                << pad(std::string("[") +
                           candidateFateName(row.fate) + "]",
                       47)
                << row.label << "\n";
        }
    }
    return out.str();
}

} // namespace lll::search
