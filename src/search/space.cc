#include "search/space.hh"

#include <algorithm>
#include <map>

#include "util/stats.hh"

namespace lll::search
{

using util::ErrorCode;
using util::Status;

const char *
candidateFateName(CandidateFate fate)
{
    switch (fate) {
      case CandidateFate::Simulated:
        return "simulated";
      case CandidateFate::PrunedAnalytic:
        return "pruned-analytic";
      case CandidateFate::Infeasible:
        return "infeasible";
    }
    return "?";
}

/** Mirror MemCtrl's constructor: an explicit override wins, else
 *  banks are derived so peak is (approximately) sustainable. */
static unsigned
effectiveBanks(const sim::SystemParams &sys)
{
    unsigned banks = sys.mem.banksOverride;
    if (banks == 0) {
        banks = static_cast<unsigned>(sys.mem.peakGBs *
                                          sys.mem.bankServiceNs /
                                          static_cast<double>(
                                              sys.mem.lineBytes) +
                                      0.5);
    }
    return banks;
}

double
candidateCost(const sim::SystemParams &sys, double bank_weight)
{
    return static_cast<double>(sys.l1.mshrs) +
           static_cast<double>(sys.l2.mshrs) +
           bank_weight * static_cast<double>(effectiveBanks(sys));
}

/**
 * The bandwidth the memory controller can physically stream: every
 * line serializes on one bank for the (tick-quantized) service
 * latency.  This — not the declared peak, which bank-count rounding
 * can land above or below — is the strict throughput cap the ceiling
 * must use for the pruner to be sound.
 */
static double
bankCapacityGBs(const sim::SystemParams &sys)
{
    const double service_ns =
        ticksToNs(nsToTicks(sys.mem.bankServiceNs));
    if (!(service_ns > 0.0))
        return sys.mem.peakGBs;
    return static_cast<double>(effectiveBanks(sys)) *
           static_cast<double>(sys.mem.lineBytes) / service_ns;
}

/** Lower bound on how long a line's L2 MSHR is held: the memory round
 *  trip alone (tick-quantized).  Queuing, L3 lookups and the fill path
 *  only lengthen the real hold, so dividing by this never understates
 *  the candidate's throughput cap. */
static double
memHoldNs(const sim::SystemParams &sys)
{
    return ticksToNs(nsToTicks(sys.mem.frontLatencyNs)) +
           ticksToNs(nsToTicks(sys.mem.bankServiceNs)) +
           ticksToNs(nsToTicks(sys.mem.backLatencyNs));
}

/**
 * Little's-law cap from the in-flight-line budget.  Every line headed
 * to memory — demand miss or prefetch — occupies one L2 MSHR from
 * before the request leaves the cache until its fill returns, so
 * cores x l2_mshrs lines at most are ever in flight, each for at
 * least memHoldNs().  This is a *provable* cap, unlike the analyzer's
 * effective-MLP estimate (core::deriveBounds), which models the MLP
 * the kernel is *expected* to expose — the paper's own ISx row
 * measures n_avg above the L1 MSHR count because the prefetcher keeps
 * extra lines in flight, so that estimate must not prune.  Only when
 * no prefetcher can add traffic (hardware prefetcher off and the
 * kernel issues no software prefetches) is demand the only issuer and
 * the L1 MSHR count a valid tighter budget.
 */
static double
lineCapacityGBs(const sim::SystemParams &sys,
                const sim::KernelSpec &spec)
{
    const double hold = memHoldNs(sys);
    if (!(hold > 0.0))
        return sys.mem.peakGBs;
    double lines = sys.l2.mshrs;
    if (!sys.l2PrefetcherEnabled && !spec.swPrefetchL2)
        lines = std::min(lines, static_cast<double>(sys.l1.mshrs));
    return static_cast<double>(sys.cores) * lines *
           static_cast<double>(sys.lineBytes) / hold;
}

namespace
{

/** Fill the cost/ceiling/feasibility fields of @p c. */
void
analyzeCandidate(const SearchSpec &spec,
                 const workloads::Workload &workload, Candidate &c)
{
    const int cores = spec.cores > 0 ? spec.cores
                                     : c.platform.totalCores;
    util::Result<sim::SystemParams> sp =
        c.platform.trySysParams(cores, spec.opts.smtWays());
    if (!sp.ok()) {
        c.feasible = false;
        c.infeasibleWhy = sp.status().withContext("candidate %s",
                                                  c.label.c_str());
        return;
    }
    const sim::KernelSpec kernel =
        workload.spec(c.platform, spec.opts);
    c.cost = candidateCost(*sp, spec.bankWeight);
    c.bounds = core::deriveBounds(*sp, kernel);
    c.ceilingGBs =
        std::min(lineCapacityGBs(*sp, kernel), bankCapacityGBs(*sp));
    if (c.bounds.vacuous()) {
        // Experiment::create would refuse it (LLL-LINT-102/106);
        // classify here so the wave runner never queues it.
        c.feasible = false;
        c.infeasibleWhy = Status::error(
            ErrorCode::FailedPrecondition,
            "candidate %s is statically vacuous "
            "(ceiling %.2f GB/s of %.2f peak, footprint %llu B vs "
            "L1 %llu B)",
            c.label.c_str(), c.bounds.mlpCeilingGBs, c.bounds.peakGBs,
            static_cast<unsigned long long>(c.bounds.footprintBytes),
            static_cast<unsigned long long>(c.bounds.l1CapacityBytes));
        return;
    }
    c.feasible = true;
}

} // namespace

util::Result<std::vector<Candidate>>
enumerateSpace(const SearchSpec &spec, const platforms::Platform &base,
               const workloads::Workload &workload)
{
    if (spec.axes.empty() && spec.points.empty()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "search space is empty: give at least "
                             "one axis or explicit point");
    }

    // Canonical axis order (by name), so the cross product — and every
    // downstream artifact — is independent of declaration order.
    std::vector<Axis> axes = spec.axes;
    std::sort(axes.begin(), axes.end(),
              [](const Axis &a, const Axis &b) { return a.name < b.name; });
    for (size_t i = 1; i < axes.size(); ++i) {
        if (axes[i].name == axes[i - 1].name) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "axis '%s' declared twice",
                                 axes[i].name.c_str());
        }
    }

    size_t total = axes.empty() ? 0 : 1;
    for (const Axis &axis : axes) {
        if (axis.values.empty()) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "axis '%s' has no values",
                                 axis.name.c_str());
        }
        if (total > spec.maxCandidates / axis.values.size() + 1)
            total = spec.maxCandidates + 1; // saturate, avoid overflow
        else
            total *= axis.values.size();
    }
    if (total + spec.points.size() > spec.maxCandidates) {
        return Status::error(ErrorCode::InvalidArgument,
                             "search space exceeds %zu candidates; "
                             "shrink an axis or raise the cap",
                             spec.maxCandidates);
    }

    std::vector<Assignment> assignments;
    if (!axes.empty()) {
        std::vector<size_t> idx(axes.size(), 0);
        for (;;) {
            Assignment a;
            for (size_t d = 0; d < axes.size(); ++d)
                a.values.emplace_back(axes[d].name,
                                      axes[d].values[idx[d]]);
            assignments.push_back(std::move(a));
            size_t d = axes.size();
            while (d > 0) {
                --d;
                if (++idx[d] < axes[d].values.size())
                    break;
                idx[d] = 0;
                if (d == 0)
                    idx.clear();
            }
            if (idx.empty())
                break;
        }
    }
    assignments.insert(assignments.end(), spec.points.begin(),
                       spec.points.end());

    std::vector<Candidate> out;
    std::map<std::string, size_t> seen; //!< label -> first index
    for (const Assignment &assign : assignments) {
        Candidate c;
        c.assign = assign;
        c.label = assign.label();
        if (seen.count(c.label))
            continue; // an explicit point restating a grid point
        util::Result<platforms::Platform> plat =
            applyAssignment(base, assign);
        if (!plat.ok())
            return plat.status();
        c.platform = plat.take();
        analyzeCandidate(spec, workload, c);
        seen.emplace(c.label, out.size());
        out.push_back(std::move(c));
    }
    return out;
}

} // namespace lll::search
