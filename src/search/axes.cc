#include "search/axes.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lll::search
{

using util::ErrorCode;
using util::Status;

namespace
{

/** How an axis value is validated before it reaches the simulator. */
enum class ValueKind
{
    Count,    //!< positive integer
    PowerOf2, //!< positive integer power of two
    Nanos,    //!< positive finite double
};

struct AxisImpl
{
    AxisDef def;
    ValueKind kind;
};

const std::vector<AxisImpl> &
axisImpls()
{
    static const std::vector<AxisImpl> impls = {
        {{"l1_mshrs", "per-core L1 MSHR entries"}, ValueKind::Count},
        {{"l2_mshrs", "per-core L2 MSHR entries"}, ValueKind::Count},
        {{"banks", "memory controller banks (0 = derive from peak)"},
         ValueKind::Count},
        {{"pf_degree", "L2 prefetcher max issues per trigger"},
         ValueKind::Count},
        {{"pf_distance", "L2 prefetcher run-ahead distance (lines)"},
         ValueKind::Count},
        {{"pf_table", "L2 prefetcher tracked-stream table size"},
         ValueKind::Count},
        {{"l2_sets", "L2 sets (power of two)"}, ValueKind::PowerOf2},
        {{"l2_ways", "L2 associativity"}, ValueKind::Count},
        {{"mem_front_ns", "memory request-path latency (ns)"},
         ValueKind::Nanos},
        {{"bank_service_ns", "per-line bank occupancy (ns)"},
         ValueKind::Nanos},
    };
    return impls;
}

const AxisImpl *
findAxis(const std::string &name)
{
    for (const AxisImpl &impl : axisImpls()) {
        if (name == impl.def.name)
            return &impl;
    }
    return nullptr;
}

Status
checkValue(const AxisImpl &impl, double v)
{
    switch (impl.kind) {
      case ValueKind::Count:
        if (!(v >= 1.0) || v != std::floor(v) || v > 1e9) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "axis %s wants a positive integer, "
                                 "got %g", impl.def.name, v);
        }
        return Status::okStatus();
      case ValueKind::PowerOf2: {
        const auto n = static_cast<uint64_t>(v);
        if (!(v >= 1.0) || v != std::floor(v) || v > 1e9 ||
            (n & (n - 1)) != 0) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "axis %s wants a power of two, got %g",
                                 impl.def.name, v);
        }
        return Status::okStatus();
      }
      case ValueKind::Nanos:
        if (!std::isfinite(v) || !(v > 0.0) || v > 1e9) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "axis %s wants a positive latency in "
                                 "ns, got %g", impl.def.name, v);
        }
        return Status::okStatus();
    }
    return Status::error(ErrorCode::Internal, "unreachable axis kind");
}

util::Result<double>
parseNumber(const AxisImpl &impl, const std::string &text)
{
    if (text.empty()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "axis %s: empty value", impl.def.name);
    }
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (*end != '\0') {
        return Status::error(ErrorCode::InvalidArgument,
                             "axis %s: '%s' is not a number",
                             impl.def.name, text.c_str());
    }
    LLL_RETURN_IF_ERROR(checkValue(impl, v));
    return v;
}

std::string
fmtValue(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/** Expand `lo:hi:+step` / `lo:hi:*factor` / `a,b,c` for @p impl. */
util::Result<std::vector<double>>
parseValues(const AxisImpl &impl, const std::string &spec)
{
    std::vector<double> out;
    const size_t c1 = spec.find(':');
    if (c1 != std::string::npos) {
        const size_t c2 = spec.find(':', c1 + 1);
        if (c2 == std::string::npos || spec.find(':', c2 + 1) !=
                                           std::string::npos) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "axis %s: ranges are lo:hi:+step or "
                                 "lo:hi:*factor, got '%s'",
                                 impl.def.name, spec.c_str());
        }
        util::Result<double> lo =
            parseNumber(impl, spec.substr(0, c1));
        if (!lo.ok())
            return lo.status();
        util::Result<double> hi =
            parseNumber(impl, spec.substr(c1 + 1, c2 - c1 - 1));
        if (!hi.ok())
            return hi.status();
        std::string step = spec.substr(c2 + 1);
        if (step.size() < 2 || (step[0] != '+' && step[0] != '*')) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "axis %s: step must be +N or *N, "
                                 "got '%s'", impl.def.name,
                                 step.c_str());
        }
        const bool geometric = step[0] == '*';
        char *end = nullptr;
        const double k = std::strtod(step.c_str() + 1, &end);
        if (*end != '\0' || !std::isfinite(k) ||
            (geometric ? k <= 1.0 : k <= 0.0)) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "axis %s: step '%s' must be a %s",
                                 impl.def.name, step.c_str(),
                                 geometric ? "factor > 1"
                                           : "positive increment");
        }
        if (*hi < *lo) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "axis %s: range %g:%g is empty",
                                 impl.def.name, *lo, *hi);
        }
        // Bounded by the 1e9 value cap, so this cannot spin forever.
        for (double v = *lo; v <= *hi;
             v = geometric ? v * k : v + k) {
            LLL_RETURN_IF_ERROR(checkValue(impl, v));
            out.push_back(v);
        }
        return out;
    }
    size_t start = 0;
    while (start <= spec.size()) {
        const size_t comma = spec.find(',', start);
        const std::string item =
            comma == std::string::npos ? spec.substr(start)
                                       : spec.substr(start, comma - start);
        util::Result<double> v = parseNumber(impl, item);
        if (!v.ok())
            return v.status();
        out.push_back(*v);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

const std::vector<AxisDef> &
knownAxes()
{
    static const std::vector<AxisDef> defs = [] {
        std::vector<AxisDef> d;
        for (const AxisImpl &impl : axisImpls())
            d.push_back(impl.def);
        return d;
    }();
    return defs;
}

util::Result<Axis>
parseAxis(const std::string &text)
{
    const size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "axis '%s' is not name=values",
                             text.c_str());
    }
    Axis axis;
    axis.name = text.substr(0, eq);
    const AxisImpl *impl = findAxis(axis.name);
    if (!impl) {
        std::string names;
        for (const AxisDef &d : knownAxes())
            names += std::string(names.empty() ? "" : ", ") + d.name;
        return Status::error(ErrorCode::InvalidArgument,
                             "unknown axis '%s' (known: %s)",
                             axis.name.c_str(), names.c_str());
    }
    util::Result<std::vector<double>> values =
        parseValues(*impl, text.substr(eq + 1));
    if (!values.ok())
        return values.status();
    axis.values = values.take();
    for (size_t i = 0; i < axis.values.size(); ++i) {
        for (size_t j = i + 1; j < axis.values.size(); ++j) {
            if (axis.values[i] == axis.values[j]) {
                return Status::error(ErrorCode::InvalidArgument,
                                     "axis %s lists value %s twice",
                                     axis.name.c_str(),
                                     fmtValue(axis.values[i]).c_str());
            }
        }
    }
    // Canonical value order: the cross product (and therefore the
    // output) must not depend on how the user wrote the range.
    std::sort(axis.values.begin(), axis.values.end());
    return axis;
}

std::string
Assignment::label() const
{
    std::string out;
    for (const auto &[name, value] : values) {
        if (!out.empty())
            out += ",";
        out += name + "=" + fmtValue(value);
    }
    return out;
}

util::Result<Assignment>
parsePoint(const std::string &text)
{
    Assignment a;
    size_t start = 0;
    while (start <= text.size()) {
        const size_t comma = text.find(',', start);
        const std::string item =
            comma == std::string::npos ? text.substr(start)
                                       : text.substr(start, comma - start);
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "point entry '%s' is not name=value",
                                 item.c_str());
        }
        const std::string name = item.substr(0, eq);
        const AxisImpl *impl = findAxis(name);
        if (!impl) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "point names unknown axis '%s'",
                                 name.c_str());
        }
        util::Result<double> v = parseNumber(*impl, item.substr(eq + 1));
        if (!v.ok())
            return v.status();
        for (const auto &[seen, val] : a.values) {
            (void)val;
            if (seen == name) {
                return Status::error(ErrorCode::InvalidArgument,
                                     "point assigns axis '%s' twice",
                                     name.c_str());
            }
        }
        a.values.emplace_back(name, *v);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (a.values.empty()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "empty point");
    }
    std::sort(a.values.begin(), a.values.end());
    return a;
}

util::Status
applyAxisValue(platforms::Platform &platform, const std::string &axis,
               double value)
{
    const AxisImpl *impl = findAxis(axis);
    if (!impl) {
        return Status::error(ErrorCode::InvalidArgument,
                             "unknown axis '%s'", axis.c_str());
    }
    LLL_RETURN_IF_ERROR(checkValue(*impl, value));
    const auto n = static_cast<unsigned>(value);
    sim::SystemParams &proto = platform.proto;
    if (axis == "l1_mshrs") {
        // Both layers: the analyzer reads the table-level count, the
        // simulator the prototype's.
        proto.l1.mshrs = n;
        platform.l1Mshrs = n;
    } else if (axis == "l2_mshrs") {
        proto.l2.mshrs = n;
        platform.l2Mshrs = n;
    } else if (axis == "banks") {
        proto.mem.banksOverride = n;
    } else if (axis == "pf_degree") {
        proto.pf.degree = n;
    } else if (axis == "pf_distance") {
        proto.pf.distance = n;
    } else if (axis == "pf_table") {
        proto.pf.tableSize = n;
    } else if (axis == "l2_sets") {
        proto.l2.sets = n;
    } else if (axis == "l2_ways") {
        proto.l2.ways = n;
    } else if (axis == "mem_front_ns") {
        proto.mem.frontLatencyNs = value;
    } else if (axis == "bank_service_ns") {
        proto.mem.bankServiceNs = value;
    } else {
        return Status::error(ErrorCode::Internal,
                             "axis '%s' registered but not applied",
                             axis.c_str());
    }
    return Status::okStatus();
}

util::Result<platforms::Platform>
applyAssignment(const platforms::Platform &base, const Assignment &assign)
{
    platforms::Platform candidate = base;
    for (const auto &[name, value] : assign.values)
        LLL_RETURN_IF_ERROR(applyAxisValue(candidate, name, value));
    candidate.name = base.name + "~" + assign.label();
    return candidate;
}

} // namespace lll::search
