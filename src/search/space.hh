/**
 * @file
 * Search-space specification and candidate enumeration (DESIGN.md §17).
 *
 * A SearchSpec names the base platform and workload, the axes whose
 * cross product spans the space, optional explicit points, and the
 * cost-model weights.  enumerateSpace() expands it into concrete
 * candidates, each a self-contained Platform with a canonical label,
 * its static cost, and its analytic Little's-law bandwidth ceiling —
 * everything the pruner compares before anything simulates.
 */

#ifndef LLL_SEARCH_SPACE_HH
#define LLL_SEARCH_SPACE_HH

#include <string>
#include <vector>

#include "core/bounds.hh"
#include "platforms/platform.hh"
#include "search/axes.hh"
#include "sim/kernel_spec.hh"
#include "util/status.hh"
#include "workloads/optimization.hh"
#include "workloads/workload.hh"

namespace lll::search
{

/** Everything `lll search` / a `kind:"search"` request needs. */
struct SearchSpec
{
    std::string platformName;

    /** Exactly one of workloadName / (hasSpec, spec) is set. */
    std::string workloadName;
    bool hasSpec = false;
    sim::KernelSpec spec;
    bool randomDominated = false;

    /** Tests inject a custom base platform here (hasBasePlatform);
     *  the CLI and the service always resolve platformName. */
    bool hasBasePlatform = false;
    platforms::Platform basePlatform;

    std::vector<Axis> axes;          //!< cross product
    std::vector<Assignment> points;  //!< explicit extra points

    workloads::OptSet opts;
    int cores = 0;       //!< 0 = all of the platform's cores
    uint64_t seed = 7;
    double warmupUs = 0.0;  //!< 0 = the workload's default window
    double measureUs = 0.0; //!< 0 = the workload's default window

    /** Cost model: cost = l1_mshrs + l2_mshrs + bankWeight * banks
     *  (per core MSHRs; banks as built by the memory controller). */
    double bankWeight = 0.5;

    /** Refuse spaces larger than this before any work happens. */
    size_t maxCandidates = 4096;

    /** Simulate everything (tests compare against this brute force;
     *  `--no-prune` exposes it on the CLI). */
    bool disablePruning = false;
};

/** How one candidate left the pipeline. */
enum class CandidateFate
{
    Simulated,      //!< fanned through SweepRunner::runStages
    PrunedAnalytic, //!< ceiling proves it dominated by a cheaper point
    Infeasible,     //!< cannot build/analyze (bad combo or vacuous)
};

const char *candidateFateName(CandidateFate fate);

/** One enumerated point of the space, pre-simulation. */
struct Candidate
{
    Assignment assign;
    std::string label;             //!< canonical "axis=value,..." form
    platforms::Platform platform;  //!< base + assignment, renamed
    double cost = 0.0;
    /** min(in-flight-line capacity, bank-serialization capacity): a
     *  proven upper bound on any bandwidth this candidate can simulate
     *  to.  Every line to memory holds an L2 MSHR for at least the
     *  idle memory round trip (Little's law; load only lengthens the
     *  hold), and every line serializes on one bank. */
    double ceilingGBs = 0.0;
    core::SpecBounds bounds;
    bool feasible = false;
    util::Status infeasibleWhy; //!< set when !feasible
};

/**
 * Expand the cross product of @p spec's axes plus its explicit points
 * into candidates (canonical order: label-lexicographic within the
 * name-sorted cross product; duplicates collapse to their first
 * occurrence).  Computes each candidate's cost and analytic ceiling
 * against @p workload's kernel under @p spec's opts.
 *
 * Fails only on structural problems (empty space, too many
 * candidates); per-candidate build failures come back as infeasible
 * candidates, not errors.
 */
[[nodiscard]] util::Result<std::vector<Candidate>>
enumerateSpace(const SearchSpec &spec, const platforms::Platform &base,
               const workloads::Workload &workload);

/** The cost model above, from a candidate's built system parameters. */
double candidateCost(const sim::SystemParams &sys, double bank_weight);

} // namespace lll::search

#endif // LLL_SEARCH_SPACE_HH
