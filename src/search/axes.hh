/**
 * @file
 * The design-space axis grammar behind `lll search` (DESIGN.md §17).
 *
 * An axis names one mutable dimension of a platform's memory system
 * (an MSHR count, the bank count, a prefetcher knob, a latency point)
 * and the values to try on it:
 *
 *   l2_mshrs=4:64:*2       geometric range: 4 8 16 32 64
 *   banks=4:20:+4          arithmetic range: 4 8 12 16 20
 *   pf_degree=2,4,8        explicit set
 *
 * A search space is the cross product of its axes, optionally extended
 * by explicit points ("l2_mshrs=6,banks=12").  Axis application keeps
 * the two layers of a Platform consistent — the paper-level metadata
 * (l1Mshrs/l2Mshrs the analyzer reads) and the simulator prototype —
 * so a candidate is a valid Platform in its own right, and its name
 * encodes the assignment ("skl~banks=8,l2_mshrs=16") so result-cache
 * stage keys and latency-profile files never collide across candidates.
 */

#ifndef LLL_SEARCH_AXES_HH
#define LLL_SEARCH_AXES_HH

#include <string>
#include <vector>

#include "platforms/platform.hh"
#include "util/status.hh"

namespace lll::search
{

/** One named dimension and the values to enumerate on it. */
struct Axis
{
    std::string name;
    std::vector<double> values;
};

/** One axis dimension the grammar understands. */
struct AxisDef
{
    const char *name;
    const char *help;
};

/** Every axis name parseAxis()/applyAxisValue() accept. */
const std::vector<AxisDef> &knownAxes();

/**
 * Parse "name=spec" where spec is `lo:hi:+step` (arithmetic),
 * `lo:hi:*factor` (geometric) or `a,b,c` (explicit set).  Values are
 * validated against the axis (counts must be positive integers, cache
 * sets a power of two, latencies positive).  Duplicate values are an
 * error — a repeated point would silently skew the cross product.
 */
[[nodiscard]] util::Result<Axis> parseAxis(const std::string &text);

/**
 * One point of the space: axis values in canonical (name-sorted)
 * order.  Canonical order makes the candidate label — and therefore
 * the enumeration, the cache keys and the output — independent of the
 * order the axes were declared in.
 */
struct Assignment
{
    std::vector<std::pair<std::string, double>> values;

    /** "banks=8,l2_mshrs=16" — canonical, name-sorted. */
    std::string label() const;
};

/**
 * Parse an explicit point "name=value,name=value" into a canonical
 * Assignment (axis names validated, values axis-checked).
 */
[[nodiscard]] util::Result<Assignment> parsePoint(const std::string &text);

/**
 * Apply one axis value to @p platform, mutating the simulator
 * prototype and whatever paper-level metadata mirrors it (MSHR counts)
 * so platforms::validatePlatform-level consistency is preserved.
 */
[[nodiscard]] util::Status applyAxisValue(platforms::Platform &platform,
                                          const std::string &axis,
                                          double value);

/**
 * Build the candidate platform for @p assign: copy @p base, apply
 * every axis value, and rename it "<base>~<label>" so stage keys and
 * profile caches distinguish candidates.
 */
[[nodiscard]] util::Result<platforms::Platform>
applyAssignment(const platforms::Platform &base, const Assignment &assign);

} // namespace lll::search

#endif // LLL_SEARCH_AXES_HH
