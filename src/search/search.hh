/**
 * @file
 * The bounds-pruned design-space autotuner behind `lll search`
 * (DESIGN.md §17).
 *
 * Searcher::run() enumerates a SearchSpec, prices every candidate with
 * the MSHR+bank cost model, derives each one's analytic Little's-law
 * bandwidth ceiling (core::deriveBounds at idle latency — a proven
 * upper bound on anything the candidate can simulate to), and then
 * simulates in cost-ascending waves through SweepRunner::runStages:
 * before a wave runs, any member whose ceiling is already met by a
 * strictly cheaper simulated point is pruned — it is provably
 * dominated (the cheaper point is no worse on perf and strictly
 * better on cost), so the frontier cannot contain it.
 *
 * Determinism: waves are ordered by cost class, prune decisions read
 * only completed waves (merged after join), and runStages itself is
 * jobs-invariant — so the whole result, frontier included, is
 * byte-identical for any --jobs N and across warm cache reruns.
 */

#ifndef LLL_SEARCH_SEARCH_HH
#define LLL_SEARCH_SEARCH_HH

#include <string>
#include <vector>

#include "core/sweep.hh"
#include "obs/registry.hh"
#include "search/pareto.hh"
#include "search/space.hh"
#include "util/status.hh"

namespace lll::search
{

/** One enumerated candidate's final state, in enumeration order. */
struct SearchRow
{
    size_t index = 0;
    std::string label;
    double cost = 0.0;
    double ceilingGBs = 0.0;
    CandidateFate fate = CandidateFate::Infeasible;
    /** ok for pruned/successful rows; the failure for infeasible
     *  candidates and failed simulations. */
    util::Status status;

    // Simulated outcomes (fate == Simulated and status ok).
    double bwGBs = 0.0;
    double pctPeak = 0.0;
    double latencyNs = 0.0;
    double nAvg = 0.0;
    double throughput = 0.0;
    bool onFrontier = false;
};

/** The whole search: accounting + rows + the frontier. */
struct SearchResult
{
    std::string platform; //!< base platform name
    std::string workload;
    std::string optsLabel;
    std::vector<std::string> axisNames; //!< canonical (sorted)
    double bankWeight = 0.5;

    /** enumerated == prunedAnalytic + prunedInfeasible + simulated. */
    size_t enumerated = 0;
    size_t prunedAnalytic = 0;
    size_t prunedInfeasible = 0;
    size_t simulated = 0;
    size_t waves = 0; //!< cost classes that reached the runner

    std::vector<SearchRow> rows;  //!< enumeration order
    std::vector<size_t> frontier; //!< row indices, cost-ascending
};

/**
 * Runs searches.  Construct once per jobs/cache/registry setup; run()
 * many specs (the service does exactly that).
 */
class Searcher
{
  public:
    struct Params
    {
        /** Worker threads within one wave (runStages fan-out). */
        int jobs = 1;

        /** Stage memo table; candidates key by their encoded name, so
         *  a warm cache serves repeated neighborhoods from memo. */
        core::ResultCache *cache = nullptr;

        /** Receives search.{enumerated,pruned_analytic,
         *  pruned_infeasible,simulated,waves}_total counters, the
         *  search.frontier_size gauge and the per-wave sweep
         *  telemetry. */
        obs::MetricRegistry *registry = nullptr;
    };

    explicit Searcher(Params params) : params_(params) {}

    /**
     * Enumerate, prune, simulate, extract the frontier.  Fails only on
     * structural errors (unknown platform/workload, malformed space);
     * per-candidate failures ride in the rows.
     */
    [[nodiscard]] util::Result<SearchResult> run(const SearchSpec &spec);

  private:
    Params params_;
};

/**
 * The "data" object for JSON output — deterministic (no wall-clock
 * values), shared by `lll search --json` and the v2 service response
 * so both surfaces speak one schema.  @p include_rows adds the full
 * per-candidate row array after the frontier.
 */
std::string searchDataJson(const SearchResult &r, bool include_rows);

/** Human-readable report: accounting line + frontier table
 *  (@p all_rows appends every simulated row). */
std::string renderSearchText(const SearchResult &r, bool all_rows);

} // namespace lll::search

#endif // LLL_SEARCH_SEARCH_HH
