/**
 * @file
 * Pareto-frontier extraction for `lll search` (DESIGN.md §17).
 *
 * Two objectives: maximize performance (bandwidth), minimize cost
 * (the MSHR+bank model).  A point is dominated when another point is
 * no worse on both objectives and strictly better on at least one.
 * Ordering and tie-breaking are deterministic: the frontier comes back
 * cost-ascending, and of points tied on both objectives only the
 * first by (enumeration index) survives — so permuting the input
 * changes nothing once candidates carry their canonical indices.
 */

#ifndef LLL_SEARCH_PARETO_HH
#define LLL_SEARCH_PARETO_HH

#include <cstddef>
#include <string>
#include <vector>

namespace lll::search
{

/** One candidate's two objectives plus its identity. */
struct ParetoPoint
{
    std::string label;
    double cost = 0.0;
    double perfGBs = 0.0;
    size_t index = 0; //!< enumeration index (the deterministic tie-break)
};

/**
 * The non-dominated subset of @p points, sorted by (cost asc, perf
 * desc, index asc).  Input order does not matter; duplicate
 * (cost, perf) pairs keep only the lowest-index point.
 */
std::vector<ParetoPoint> paretoFrontier(std::vector<ParetoPoint> points);

/** True when a dominates b (>= on both objectives, > on at least one;
 *  cost is minimized, perf maximized). */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

} // namespace lll::search

#endif // LLL_SEARCH_PARETO_HH
