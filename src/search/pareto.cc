#include "search/pareto.hh"

#include <algorithm>

namespace lll::search
{

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    return a.cost <= b.cost && a.perfGBs >= b.perfGBs &&
           (a.cost < b.cost || a.perfGBs > b.perfGBs);
}

std::vector<ParetoPoint>
paretoFrontier(std::vector<ParetoPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  if (a.cost != b.cost)
                      return a.cost < b.cost;
                  if (a.perfGBs != b.perfGBs)
                      return a.perfGBs > b.perfGBs;
                  return a.index < b.index;
              });
    // One cost-ascending skyline sweep: a point survives iff it
    // strictly improves on the best performance seen at any cheaper or
    // equal cost.  Equal (cost, perf) pairs: the sort put the lowest
    // index first, and the second fails the strict improvement test.
    std::vector<ParetoPoint> frontier;
    double best = 0.0;
    bool any = false;
    for (ParetoPoint &p : points) {
        if (any && !(p.perfGBs > best))
            continue;
        best = p.perfGBs;
        any = true;
        frontier.push_back(std::move(p));
    }
    return frontier;
}

} // namespace lll::search
