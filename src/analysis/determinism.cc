#include "analysis/determinism.hh"

#include <cmath>

#include "sim/validator.hh"

namespace lll::analysis
{

using util::DiagnosticList;

namespace
{

bool
valuesDiffer(double baseline, double value, double rel_tolerance)
{
    if (baseline == value)
        return false;
    if (std::isnan(baseline) && std::isnan(value))
        return false;
    if (rel_tolerance <= 0.0)
        return true;
    const double scale =
        std::max(std::fabs(baseline), std::fabs(value));
    return std::fabs(baseline - value) > rel_tolerance * scale;
}

} // namespace

DeterminismReport
checkDeterminism(const Runner &runner, const DeterminismOptions &options,
                 const std::string &subject)
{
    DeterminismReport report;
    lll_assert(options.seeds.size() >= 2,
               "determinism check needs a baseline and at least one "
               "perturbed seed");

    const MetricVector baseline = runner(options.seeds.front());
    report.metricsCompared = baseline.size();
    report.seedsRun = 1;

    for (size_t s = 1; s < options.seeds.size(); ++s) {
        const uint64_t seed = options.seeds[s];
        const MetricVector run = runner(seed);
        ++report.seedsRun;

        if (run.size() != baseline.size()) {
            report.deterministic = false;
            report.diagnostics.error(
                "LLL-DET-002", subject,
                "tie-break seed 0x%llx produced %zu metrics where the "
                "baseline produced %zu; the run's shape depends on "
                "same-tick event order",
                static_cast<unsigned long long>(seed), run.size(),
                baseline.size());
            continue;
        }
        for (size_t i = 0; i < run.size(); ++i) {
            if (run[i].name != baseline[i].name) {
                report.deterministic = false;
                report.diagnostics.error(
                    "LLL-DET-002", subject,
                    "metric %zu is '%s' under tie-break seed 0x%llx "
                    "but '%s' in the baseline",
                    i, run[i].name.c_str(),
                    static_cast<unsigned long long>(seed),
                    baseline[i].name.c_str());
                continue;
            }
            if (valuesDiffer(baseline[i].value, run[i].value,
                             options.relTolerance)) {
                report.deterministic = false;
                report.diffs.push_back({run[i].name, seed,
                                        baseline[i].value,
                                        run[i].value});
                report.diagnostics.error(
                    "LLL-DET-001", subject,
                    "metric '%s' depends on same-tick event pop order: "
                    "%.17g (insertion order) vs %.17g (tie-break seed "
                    "0x%llx) — simulator race",
                    run[i].name.c_str(), baseline[i].value,
                    run[i].value,
                    static_cast<unsigned long long>(seed));
            }
        }
    }
    return report;
}

MetricVector
runMetrics(const sim::RunResult &r)
{
    auto u = [](uint64_t v) { return static_cast<double>(v); };
    return {
        {"measure_seconds", r.measureSeconds},
        {"work_done", r.workDone},
        {"throughput", r.throughput},
        {"ops_issued", u(r.opsIssued)},
        {"read_gbs", r.readGBs},
        {"write_gbs", r.writeGBs},
        {"total_gbs", r.totalGBs},
        {"demand_fraction", r.demandFraction},
        {"mem_utilization", r.memUtilization},
        {"avg_mem_latency_ns", r.avgMemLatencyNs},
        {"p50_mem_latency_ns", r.p50MemLatencyNs},
        {"p95_mem_latency_ns", r.p95MemLatencyNs},
        {"p99_mem_latency_ns", r.p99MemLatencyNs},
        {"avg_mem_outstanding", r.avgMemOutstanding},
        {"avg_l1_mshr_occupancy", r.avgL1MshrOccupancy},
        {"avg_l2_mshr_occupancy", r.avgL2MshrOccupancy},
        {"max_l1_mshr_occupancy", r.maxL1MshrOccupancy},
        {"max_l2_mshr_occupancy", r.maxL2MshrOccupancy},
        {"l1_full_stalls", u(r.l1FullStalls)},
        {"l2_full_stalls", u(r.l2FullStalls)},
        {"l1_demand_misses", u(r.l1DemandMisses)},
        {"l1_demand_hits", u(r.l1DemandHits)},
        {"l2_demand_misses", u(r.l2DemandMisses)},
        {"l2_demand_hits", u(r.l2DemandHits)},
        {"hw_pref_issued", u(r.hwPrefIssued)},
        {"hw_pref_useful", u(r.hwPrefUseful)},
        {"sw_pref_issued", u(r.swPrefIssued)},
        {"l2_prefetch_dropped", u(r.l2PrefetchDropped)},
        {"mem_read_lines", u(r.memReadLines)},
        {"mem_write_lines", u(r.memWriteLines)},
        {"mem_hw_prefetch_lines", u(r.memHwPrefetchLines)},
        {"mem_sw_prefetch_lines", u(r.memSwPrefetchLines)},
    };
}

util::Result<DeterminismReport>
checkRunDeterminism(const platforms::Platform &platform,
                    const workloads::Workload &workload,
                    const workloads::OptSet &opts,
                    const DeterminismOptions &options)
{
    util::Result<sim::SystemParams> sys =
        platform.trySysParams(platform.totalCores, opts.smtWays());
    if (!sys.ok()) {
        return sys.status().withContext(
            "determinism check %s/%s [%s]", platform.name.c_str(),
            workload.name().c_str(), opts.label().c_str());
    }
    const sim::KernelSpec spec = workload.spec(platform, opts);
    LLL_RETURN_IF_ERROR(sim::validateKernelSpec(spec));

    const std::string subject = platform.name + "/" + workload.name() +
                                " [" + opts.label() + "]";

    util::Status run_error = util::Status::okStatus();
    Runner runner = [&](uint64_t seed) -> MetricVector {
        sim::SystemParams params = *sys;
        params.tieBreakSeed = seed;
        sim::System system(params, spec);
        util::Result<sim::RunResult> r =
            system.runChecked(options.warmupUs, options.measureUs);
        if (!r.ok()) {
            if (run_error.ok())
                run_error = r.status();
            return {};
        }
        return runMetrics(*r);
    };

    DeterminismReport report =
        checkDeterminism(runner, options, subject);
    if (!run_error.ok()) {
        return run_error.withContext(
            "determinism check %s", subject.c_str());
    }
    return report;
}

} // namespace lll::analysis
