#include "analysis/spec_lint.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/recipe.hh"
#include "sim/validator.hh"
#include "util/stats.hh"

namespace lll::analysis
{

using util::DiagnosticList;
using workloads::Opt;
using workloads::OptSet;

SpecBounds
deriveBounds(const sim::SystemParams &sys, const sim::KernelSpec &spec)
{
    SpecBounds b;
    b.l1Mshrs = sys.l1.mshrs;
    b.l2Mshrs = sys.l2.mshrs;

    b.exposedMlpPerThread = std::min<double>(spec.window, sys.lqSize);
    b.exposedMlpPerCore = b.exposedMlpPerThread * sys.threadsPerCore;

    double random_weight = 0.0, total_weight = 0.0;
    for (const sim::StreamDesc &s : spec.streams) {
        if (!(s.weight > 0.0) || !std::isfinite(s.weight))
            continue;
        total_weight += s.weight;
        if (s.kind == sim::StreamDesc::Kind::Random)
            random_weight += s.weight;
    }
    b.randomWeight = total_weight > 0.0 ? random_weight / total_weight
                                        : 0.0;
    b.randomDominated = b.randomWeight > 0.5;
    b.prefetcherCovers = !b.randomDominated && sys.l2PrefetcherEnabled;

    // Unloaded memory round trip: both private cache lookups plus the
    // controller's request path, one bank service and the response path.
    double idle = ticksToNs(sys.l1.accessLat + sys.l2.accessLat +
                            (sys.hasL3 ? sys.l3.accessLat : 0));
    idle += sys.mem.frontLatencyNs + sys.mem.bankServiceNs +
            sys.mem.backLatencyNs;
    b.idleLatencyNs = idle;

    // Which queue caps in-flight lines: random misses hold L1 MSHRs for
    // the full memory latency; prefetcher-covered streaming fills the
    // (larger) L2 queue independently of the demand MLP the code
    // exposes.
    if (b.randomDominated) {
        b.effectiveMlpPerCore =
            std::min(b.exposedMlpPerCore, static_cast<double>(b.l1Mshrs));
    } else if (b.prefetcherCovers || spec.swPrefetchL2) {
        b.effectiveMlpPerCore = b.l2Mshrs;
    } else {
        b.effectiveMlpPerCore = std::min(
            b.exposedMlpPerCore,
            static_cast<double>(std::min(b.l1Mshrs, b.l2Mshrs)));
    }

    // Little's law (Eq. 2) solved for bandwidth: BW = n * cls / lat.
    b.peakGBs = sys.mem.peakGBs;
    if (idle > 0.0) {
        const double per_line = sys.lineBytes / idle; // GB/s per request
        b.l1CeilingGBs = sys.cores * b.l1Mshrs * per_line;
        b.l2CeilingGBs = sys.cores * b.l2Mshrs * per_line;
        b.mlpCeilingGBs = sys.cores * b.effectiveMlpPerCore * per_line;
        if (sys.cores > 0) {
            b.nAvgAtPeakPerCore =
                b.peakGBs * idle / sys.lineBytes / sys.cores;
        }
    }
    return b;
}

DiagnosticList
lintSpec(const sim::SystemParams &sys, const sim::KernelSpec &spec,
         const std::string &subject)
{
    DiagnosticList out;
    out.append(sim::lintSystemParams(sys));
    out.append(sim::lintKernelSpec(spec));
    if (out.hasErrors()) {
        // The bounds below divide by quantities the validators just
        // rejected; an infeasible config gets no analytical findings.
        out.setSubjects(subject);
        return out;
    }

    const SpecBounds b = deriveBounds(sys, spec);

    if (spec.window > sys.lqSize) {
        out.warning("LLL-LINT-101", subject,
                    "kernel exposes window=%u independent loads but the "
                    "load queue holds only %u; exposed MLP is capped "
                    "before any MSHR limit applies",
                    spec.window, sys.lqSize);
    }

    if (b.mlpCeilingGBs < 0.05 * b.peakGBs) {
        out.warning("LLL-LINT-102", subject,
                    "effective MLP %.1f/core sustains at most %.1f GB/s "
                    "(%.1f%% of the %.0f GB/s peak) at idle latency "
                    "%.0f ns; the memory system is barely loaded and "
                    "Little's-law analysis of this config will be "
                    "vacuous",
                    b.effectiveMlpPerCore, b.mlpCeilingGBs,
                    100.0 * b.mlpCeilingGBs / b.peakGBs, b.peakGBs,
                    b.idleLatencyNs);
    }

    if (b.nAvgAtPeakPerCore > b.l2Mshrs) {
        out.warning("LLL-LINT-103", subject,
                    "sustaining the declared peak %.0f GB/s needs "
                    "n_avg %.1f lines in flight per core at idle "
                    "latency %.0f ns, but the L2 MSHRQ holds only %u; "
                    "cores can reach at most %.1f GB/s (loaded latency "
                    "only lowers this)",
                    b.peakGBs, b.nAvgAtPeakPerCore, b.idleLatencyNs,
                    b.l2Mshrs, b.l2CeilingGBs);
    }

    out.note("LLL-LINT-104", subject,
             "stream mix %.0f%% random by weight -> %s; predicted "
             "limiter: %s MSHRQ (n_avg <= %.1f/core, node ceiling "
             "%.1f GB/s)",
             100.0 * b.randomWeight,
             b.randomDominated ? "random-dominated" : "streaming",
             b.randomDominated ? "L1" : "L2", b.effectiveMlpPerCore,
             b.mlpCeilingGBs);

    if (spec.swPrefetchL2) {
        bool any_prefetchable = false;
        for (const sim::StreamDesc &s : spec.streams)
            any_prefetchable |= s.swPrefetchable;
        if (!any_prefetchable) {
            out.warning("LLL-LINT-105", subject,
                        "software L2 prefetch is enabled but no stream "
                        "is marked prefetchable; the optimization is "
                        "vacuous and only pays its overhead");
        }
    }

    uint64_t footprint_bytes = 0;
    for (const sim::StreamDesc &s : spec.streams)
        footprint_bytes += s.footprintLines * sys.lineBytes;
    const uint64_t l1_bytes = static_cast<uint64_t>(sys.l1.sets) *
                              sys.l1.ways * sys.lineBytes;
    const uint64_t l2_bytes = static_cast<uint64_t>(sys.l2.sets) *
                              sys.l2.ways * sys.lineBytes;
    if (footprint_bytes <= l1_bytes) {
        out.warning("LLL-LINT-106", subject,
                    "total stream footprint (%llu B) fits in the L1 "
                    "(%llu B); the kernel never exercises the memory "
                    "system it is meant to characterize",
                    static_cast<unsigned long long>(footprint_bytes),
                    static_cast<unsigned long long>(l1_bytes));
    } else if (footprint_bytes <= l2_bytes) {
        out.note("LLL-LINT-107", subject,
                 "total stream footprint (%llu B) fits in the L2 "
                 "(%llu B); expect cache-resident behaviour, not "
                 "memory-bound behaviour",
                 static_cast<unsigned long long>(footprint_bytes),
                 static_cast<unsigned long long>(l2_bytes));
    }

    out.setSubjects(subject);
    return out;
}

namespace
{

/** All Opt values, in enum order (for reachability accounting). */
constexpr Opt kAllOpts[] = {
    Opt::Vectorize,  Opt::Smt2,      Opt::Smt4,   Opt::SwPrefetchL2,
    Opt::Tiling,     Opt::UnrollJam, Opt::Fusion, Opt::Distribution,
};

} // namespace

DiagnosticList
lintRecipeReachability(const platforms::Platform &platform)
{
    // Probe the decision engine across its whole input space: both
    // bandwidth regimes x both MSHR regimes x both access classes x
    // representative occupancies, from both SMT starting states.  Any
    // recommendation that never fires in this sweep can never fire at
    // runtime either.
    const core::Recipe recipe(platform);
    bool fired[sizeof(kAllOpts) / sizeof(kAllOpts[0])] = {};

    const OptSet applied_states[] = {OptSet{}, OptSet{Opt::Smt2}};
    const double n_avgs[] = {0.5, 0.95 * platform.l1Mshrs,
                             0.6 * platform.l2Mshrs};
    for (bool near_bw : {false, true}) {
        for (bool near_mshr : {false, true}) {
            for (core::MshrLevel level :
                 {core::MshrLevel::L1, core::MshrLevel::L2}) {
                for (core::AccessClass cls :
                     {core::AccessClass::Random,
                      core::AccessClass::Streaming}) {
                    for (double n_avg : n_avgs) {
                        for (double demand : {0.2, 0.6}) {
                            for (double pct : {0.3, 0.6}) {
                                for (const OptSet &applied :
                                     applied_states) {
                                    core::Analysis a;
                                    a.platform = platform.name;
                                    a.nearBandwidthLimit = near_bw;
                                    a.nearMshrLimit = near_mshr;
                                    a.limitingLevel = level;
                                    a.limitingMshrs =
                                        level == core::MshrLevel::L1
                                            ? platform.l1Mshrs
                                            : platform.l2Mshrs;
                                    a.accessClass = cls;
                                    a.nAvg = n_avg;
                                    a.demandFraction = demand;
                                    a.demandFractionKnown = true;
                                    a.pctPeak = pct;
                                    a.bwGBs = pct * platform.peakGBs;
                                    a.maxAchievableGBs =
                                        0.8 * platform.peakGBs;
                                    core::RecipeDecision d =
                                        recipe.advise(a, applied);
                                    for (const core::Recommendation &r :
                                         d.recommendations) {
                                        if (!r.recommended)
                                            continue;
                                        for (size_t i = 0;
                                             i < std::size(kAllOpts);
                                             ++i) {
                                            if (kAllOpts[i] == r.opt)
                                                fired[i] = true;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    DiagnosticList out;
    for (size_t i = 0; i < std::size(kAllOpts); ++i) {
        if (fired[i])
            continue;
        const Opt opt = kAllOpts[i];
        const unsigned want_ways =
            opt == Opt::Smt2 ? 2 : (opt == Opt::Smt4 ? 4 : 0);
        if (want_ways != 0 && platform.maxSmtWays < want_ways) {
            out.note("LLL-RCP-001", platform.name,
                     "recipe state '%s' is statically unreachable: "
                     "%s supports at most %u-way SMT",
                     workloads::optName(opt), platform.name.c_str(),
                     platform.maxSmtWays);
        } else {
            out.note("LLL-RCP-002", platform.name,
                     "recipe never recommends '%s' on %s in any "
                     "analysis state (dead recommendation)",
                     workloads::optName(opt), platform.name.c_str());
        }
    }
    return out;
}

ConfigLint
lintConfig(const platforms::Platform &platform,
           const workloads::Workload &workload, const OptSet &opts)
{
    ConfigLint cl;
    cl.subject = platform.name + "/" + workload.name() + " [" +
                 opts.label() + "]";

    util::Result<sim::SystemParams> sys =
        platform.trySysParams(platform.totalCores, opts.smtWays());
    if (!sys.ok()) {
        cl.diagnostics.error("LLL-PLAT-001", cl.subject, "%s",
                             sys.status().message().c_str());
        return cl;
    }

    const sim::KernelSpec spec = workload.spec(platform, opts);
    cl.diagnostics = lintSpec(*sys, spec, cl.subject);
    if (cl.diagnostics.hasErrors())
        return cl;

    cl.bounds = deriveBounds(*sys, spec);
    cl.boundsValid = true;

    // The workload model's a-priori access-pattern hint must agree
    // with what its own stream mix implies, or the analyzer and the
    // simulator will reason about two different routines.
    if (workload.randomDominated() != cl.bounds.randomDominated) {
        cl.diagnostics.warning(
            "LLL-LINT-108", cl.subject,
            "workload model declares the routine %s but its stream mix "
            "is %.0f%% random by weight (%s); analyzer hint and "
            "simulated kernel disagree",
            workload.randomDominated() ? "random-dominated"
                                       : "streaming",
            100.0 * cl.bounds.randomWeight,
            cl.bounds.randomDominated ? "random-dominated"
                                      : "streaming");
    }
    return cl;
}

std::string
boundsJson(const SpecBounds &b, int indent)
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    std::ostringstream out;
    char buf[160];
    auto num = [&buf](double v) {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return std::string(buf);
    };
    out << "{\n"
        << pad << "  \"exposed_mlp_per_thread\": "
        << num(b.exposedMlpPerThread) << ",\n"
        << pad << "  \"exposed_mlp_per_core\": "
        << num(b.exposedMlpPerCore) << ",\n"
        << pad << "  \"l1_mshrs\": " << b.l1Mshrs << ",\n"
        << pad << "  \"l2_mshrs\": " << b.l2Mshrs << ",\n"
        << pad << "  \"effective_mlp_per_core\": "
        << num(b.effectiveMlpPerCore) << ",\n"
        << pad << "  \"idle_latency_ns\": " << num(b.idleLatencyNs)
        << ",\n"
        << pad << "  \"peak_gbs\": " << num(b.peakGBs) << ",\n"
        << pad << "  \"l1_ceiling_gbs\": " << num(b.l1CeilingGBs)
        << ",\n"
        << pad << "  \"l2_ceiling_gbs\": " << num(b.l2CeilingGBs)
        << ",\n"
        << pad << "  \"mlp_ceiling_gbs\": " << num(b.mlpCeilingGBs)
        << ",\n"
        << pad << "  \"n_avg_at_peak_per_core\": "
        << num(b.nAvgAtPeakPerCore) << ",\n"
        << pad << "  \"random_weight\": " << num(b.randomWeight) << ",\n"
        << pad << "  \"random_dominated\": "
        << (b.randomDominated ? "true" : "false") << ",\n"
        << pad << "  \"prefetcher_covers\": "
        << (b.prefetcherCovers ? "true" : "false") << "\n"
        << pad << "}";
    return out.str();
}

} // namespace lll::analysis
