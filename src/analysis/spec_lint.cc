#include "analysis/spec_lint.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/recipe.hh"
#include "sim/validator.hh"
#include "util/stats.hh"

namespace lll::analysis
{

using util::DiagnosticList;
using workloads::Opt;
using workloads::OptSet;

DiagnosticList
lintSpec(const sim::SystemParams &sys, const sim::KernelSpec &spec,
         const std::string &subject)
{
    DiagnosticList out;
    out.append(sim::lintSystemParams(sys));
    out.append(sim::lintKernelSpec(spec));
    if (out.hasErrors()) {
        // The bounds below divide by quantities the validators just
        // rejected; an infeasible config gets no analytical findings.
        out.setSubjects(subject);
        return out;
    }

    const SpecBounds b = deriveBounds(sys, spec);

    if (spec.window > sys.lqSize) {
        out.warning("LLL-LINT-101", subject,
                    "kernel exposes window=%u independent loads but the "
                    "load queue holds only %u; exposed MLP is capped "
                    "before any MSHR limit applies",
                    spec.window, sys.lqSize);
    }

    if (b.mlpCeilingGBs < 0.05 * b.peakGBs) {
        out.warning("LLL-LINT-102", subject,
                    "effective MLP %.1f/core sustains at most %.1f GB/s "
                    "(%.1f%% of the %.0f GB/s peak) at idle latency "
                    "%.0f ns; the memory system is barely loaded and "
                    "Little's-law analysis of this config will be "
                    "vacuous",
                    b.effectiveMlpPerCore, b.mlpCeilingGBs,
                    100.0 * b.mlpCeilingGBs / b.peakGBs, b.peakGBs,
                    b.idleLatencyNs);
    }

    if (b.nAvgAtPeakPerCore > b.l2Mshrs) {
        out.warning("LLL-LINT-103", subject,
                    "sustaining the declared peak %.0f GB/s needs "
                    "n_avg %.1f lines in flight per core at idle "
                    "latency %.0f ns, but the L2 MSHRQ holds only %u; "
                    "cores can reach at most %.1f GB/s (loaded latency "
                    "only lowers this)",
                    b.peakGBs, b.nAvgAtPeakPerCore, b.idleLatencyNs,
                    b.l2Mshrs, b.l2CeilingGBs);
    }

    out.note("LLL-LINT-104", subject,
             "stream mix %.0f%% random by weight -> %s; predicted "
             "limiter: %s MSHRQ (n_avg <= %.1f/core, node ceiling "
             "%.1f GB/s)",
             100.0 * b.randomWeight,
             b.randomDominated ? "random-dominated" : "streaming",
             b.randomDominated ? "L1" : "L2", b.effectiveMlpPerCore,
             b.mlpCeilingGBs);

    if (spec.swPrefetchL2) {
        bool any_prefetchable = false;
        for (const sim::StreamDesc &s : spec.streams)
            any_prefetchable |= s.swPrefetchable;
        if (!any_prefetchable) {
            out.warning("LLL-LINT-105", subject,
                        "software L2 prefetch is enabled but no stream "
                        "is marked prefetchable; the optimization is "
                        "vacuous and only pays its overhead");
        }
    }

    const uint64_t footprint_bytes = b.footprintBytes;
    const uint64_t l1_bytes = b.l1CapacityBytes;
    const uint64_t l2_bytes = b.l2CapacityBytes;
    if (footprint_bytes <= l1_bytes) {
        out.warning("LLL-LINT-106", subject,
                    "total stream footprint (%llu B) fits in the L1 "
                    "(%llu B); the kernel never exercises the memory "
                    "system it is meant to characterize",
                    static_cast<unsigned long long>(footprint_bytes),
                    static_cast<unsigned long long>(l1_bytes));
    } else if (footprint_bytes <= l2_bytes) {
        out.note("LLL-LINT-107", subject,
                 "total stream footprint (%llu B) fits in the L2 "
                 "(%llu B); expect cache-resident behaviour, not "
                 "memory-bound behaviour",
                 static_cast<unsigned long long>(footprint_bytes),
                 static_cast<unsigned long long>(l2_bytes));
    }

    out.setSubjects(subject);
    return out;
}

namespace
{

/** All Opt values, in enum order (for reachability accounting). */
constexpr Opt kAllOpts[] = {
    Opt::Vectorize,  Opt::Smt2,      Opt::Smt4,   Opt::SwPrefetchL2,
    Opt::Tiling,     Opt::UnrollJam, Opt::Fusion, Opt::Distribution,
};

} // namespace

DiagnosticList
lintRecipeReachability(const platforms::Platform &platform)
{
    // Probe the decision engine across its whole input space: both
    // bandwidth regimes x both MSHR regimes x both access classes x
    // representative occupancies x stream counts either side of the
    // fusion/distribution dual, from both SMT starting states.  Any
    // recommendation that never fires in this sweep can never fire at
    // runtime either.
    const core::Recipe recipe(platform);
    bool fired[sizeof(kAllOpts) / sizeof(kAllOpts[0])] = {};

    const OptSet applied_states[] = {OptSet{}, OptSet{Opt::Smt2}};
    const double n_avgs[] = {0.5, 0.95 * platform.l1Mshrs,
                             0.6 * platform.l2Mshrs};
    const unsigned stream_counts[] = {1, core::Recipe::kStreamHeavy + 2};
    for (bool near_bw : {false, true}) {
        for (bool near_mshr : {false, true}) {
            for (core::MshrLevel level :
                 {core::MshrLevel::L1, core::MshrLevel::L2}) {
                for (core::AccessClass cls :
                     {core::AccessClass::Random,
                      core::AccessClass::Streaming}) {
                    for (double n_avg : n_avgs) {
                        for (double demand : {0.2, 0.6}) {
                          for (double pct : {0.3, 0.6}) {
                            for (unsigned streams : stream_counts) {
                                for (const OptSet &applied :
                                     applied_states) {
                                    core::Analysis a;
                                    a.platform = platform.name;
                                    a.nearBandwidthLimit = near_bw;
                                    a.nearMshrLimit = near_mshr;
                                    a.limitingLevel = level;
                                    a.limitingMshrs =
                                        level == core::MshrLevel::L1
                                            ? platform.l1Mshrs
                                            : platform.l2Mshrs;
                                    a.accessClass = cls;
                                    a.nAvg = n_avg;
                                    a.demandFraction = demand;
                                    a.demandFractionKnown = true;
                                    a.activeStreams = streams;
                                    a.activeStreamsKnown = true;
                                    a.pctPeak = pct;
                                    a.bwGBs = pct * platform.peakGBs;
                                    a.maxAchievableGBs =
                                        0.8 * platform.peakGBs;
                                    core::RecipeDecision d =
                                        recipe.advise(a, applied);
                                    for (const core::Recommendation &r :
                                         d.recommendations) {
                                        if (!r.recommended)
                                            continue;
                                        for (size_t i = 0;
                                             i < std::size(kAllOpts);
                                             ++i) {
                                            if (kAllOpts[i] == r.opt)
                                                fired[i] = true;
                                        }
                                    }
                                }
                            }
                          }
                        }
                    }
                }
            }
        }
    }

    DiagnosticList out;
    for (size_t i = 0; i < std::size(kAllOpts); ++i) {
        if (fired[i])
            continue;
        const Opt opt = kAllOpts[i];
        const unsigned want_ways =
            opt == Opt::Smt2 ? 2 : (opt == Opt::Smt4 ? 4 : 0);
        if (want_ways != 0 && platform.maxSmtWays < want_ways) {
            out.note("LLL-RCP-001", platform.name,
                     "recipe state '%s' is statically unreachable: "
                     "%s supports at most %u-way SMT",
                     workloads::optName(opt), platform.name.c_str(),
                     platform.maxSmtWays);
        } else {
            out.note("LLL-RCP-002", platform.name,
                     "recipe never recommends '%s' on %s in any "
                     "analysis state (dead recommendation)",
                     workloads::optName(opt), platform.name.c_str());
        }
    }
    return out;
}

ConfigLint
lintConfig(const platforms::Platform &platform,
           const workloads::Workload &workload, const OptSet &opts)
{
    ConfigLint cl;
    cl.subject = platform.name + "/" + workload.name() + " [" +
                 opts.label() + "]";

    util::Result<sim::SystemParams> sys =
        platform.trySysParams(platform.totalCores, opts.smtWays());
    if (!sys.ok()) {
        cl.diagnostics.error("LLL-PLAT-001", cl.subject, "%s",
                             sys.status().message().c_str());
        return cl;
    }

    const sim::KernelSpec spec = workload.spec(platform, opts);
    cl.diagnostics = lintSpec(*sys, spec, cl.subject);
    if (cl.diagnostics.hasErrors())
        return cl;

    cl.bounds = deriveBounds(*sys, spec);
    cl.boundsValid = true;

    // The workload model's a-priori access-pattern hint must agree
    // with what its own stream mix implies, or the analyzer and the
    // simulator will reason about two different routines.
    if (workload.randomDominated() != cl.bounds.randomDominated) {
        cl.diagnostics.warning(
            "LLL-LINT-108", cl.subject,
            "workload model declares the routine %s but its stream mix "
            "is %.0f%% random by weight (%s); analyzer hint and "
            "simulated kernel disagree",
            workload.randomDominated() ? "random-dominated"
                                       : "streaming",
            100.0 * cl.bounds.randomWeight,
            cl.bounds.randomDominated ? "random-dominated"
                                      : "streaming");
    }
    return cl;
}

} // namespace lll::analysis
