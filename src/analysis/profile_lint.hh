/**
 * @file
 * Static validation of cached X-Mem latency-profile files
 * (`lll lint --profile FILE`).
 *
 * A LatencyProfile is measured once per processor and then trusted by
 * every analysis: Equation 2 reads lat_avg straight off the curve.  A
 * stale or hand-edited profile file therefore corrupts every n_avg
 * downstream, and the LatencyProfile constructor makes it worse by
 * silently sorting and isotonic-repairing non-monotone measurements —
 * the file loads fine and the damage is invisible.  This lint reads the
 * *raw* file, before the constructor's cleanup, and reports:
 *
 *   LLL-PROF-101 (error)    file missing, unreadable or corrupt
 *   LLL-PROF-102 (warning)  bandwidth→latency curve not monotone in the
 *                           raw points (the loader will silently repair)
 *   LLL-PROF-103 (warning)  idle latency disagrees with the platform's
 *                           SystemParams-derived round trip
 *   LLL-PROF-104 (warning)  declared peak_gbs differs from the platform
 *                           table's peak
 *   LLL-PROF-105 (note)     profile's platform unknown to the registry
 *                           (no cross-checks possible)
 */

#ifndef LLL_ANALYSIS_PROFILE_LINT_HH
#define LLL_ANALYSIS_PROFILE_LINT_HH

#include <string>

#include "util/diagnostic.hh"

namespace lll::analysis
{

/** Fraction by which the profile's idle latency may differ from the
 *  SystemParams-derived round trip before LLL-PROF-103 fires. */
inline constexpr double kIdleLatencyTolerance = 0.25;

/** Lint the latency-profile file at @p path; diagnostics carry @p path
 *  as their subject. */
util::DiagnosticList lintProfileFile(const std::string &path);

} // namespace lll::analysis

#endif // LLL_ANALYSIS_PROFILE_LINT_HH
