/**
 * @file
 * The spec/config static analyzer behind `lll lint`.
 *
 * Before any simulation runs, a KernelSpec + SystemParams pair already
 * determines hard analytical bounds: the MLP the code can expose versus
 * the MSHR capacity that will cap it, the bandwidth ceiling Little's
 * law implies for that capacity at the node's idle latency, and whether
 * the declared controller peak is even reachable from the cores.  A
 * config that violates these bounds — or one whose recipe states can
 * never fire on the given platform — corrupts every downstream
 * conclusion, so this module finds such configs *statically* and
 * reports them as structured diagnostics (util::Diagnostic, stable IDs
 * `LLL-LINT-1xx` / `LLL-RCP-0xx`; DESIGN.md §10 has the full table).
 *
 * Everything here is a pure function of the static tables — no X-Mem
 * profile, no event queue — so lint output is byte-deterministic and
 * golden-testable.
 */

#ifndef LLL_ANALYSIS_SPEC_LINT_HH
#define LLL_ANALYSIS_SPEC_LINT_HH

#include <string>
#include <vector>

#include "core/bounds.hh"
#include "platforms/platform.hh"
#include "sim/kernel_spec.hh"
#include "sim/system.hh"
#include "util/diagnostic.hh"
#include "workloads/workload.hh"

namespace lll::analysis
{

// The bounds derivation moved to core/bounds.hh so the experiment
// runner can refuse vacuous configs at create() time (analysis links
// core, not the other way around).  Re-exported here for source
// compatibility.
using SpecBounds = core::SpecBounds;
using core::boundsJson;
using core::deriveBounds;

/**
 * Static feasibility lint of one assembled config: the sim validators
 * (LLL-SPEC / LLL-KRN errors) plus the analytical checks
 * (LLL-LINT-1xx).  All findings are re-labelled with @p subject.
 */
util::DiagnosticList lintSpec(const sim::SystemParams &sys,
                              const sim::KernelSpec &spec,
                              const std::string &subject);

/**
 * Which recipe recommendations can ever fire on @p platform, probed by
 * driving core::Recipe::advise() across the whole analysis-state space
 * (both MSHR regimes x both access classes x bandwidth regimes).
 * Recommendations that never fire are reported as LLL-RCP-0xx notes —
 * statically unreachable recipe states.
 */
util::DiagnosticList
lintRecipeReachability(const platforms::Platform &platform);

/** The lint verdict for one platform x workload x variant config. */
struct ConfigLint
{
    std::string subject;    //!< "skl/isx [base]"
    util::DiagnosticList diagnostics;
    SpecBounds bounds;
    bool boundsValid = false; //!< false when the variant cannot even
                              //!< produce SystemParams (e.g. SMT ways)
    bool feasible() const { return !diagnostics.hasErrors(); }
};

/**
 * Lint one platform x workload x optimization-set config, including
 * variants that are infeasible on the platform (reported as
 * LLL-PLAT-001 errors rather than a Status failure, so `lll lint` can
 * keep scanning).
 */
ConfigLint lintConfig(const platforms::Platform &platform,
                      const workloads::Workload &workload,
                      const workloads::OptSet &opts);

} // namespace lll::analysis

#endif // LLL_ANALYSIS_SPEC_LINT_HH
