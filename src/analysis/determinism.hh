/**
 * @file
 * Event-order determinism checker — a race detector for the
 * discrete-event core, behind `lll lint --determinism`.
 *
 * A correct discrete-event simulation may schedule many events at the
 * same tick, but its *results* must not depend on which of those ties
 * pops first: any such dependence is a hidden ordering bug that makes
 * every reported metric an artifact of insertion order.  The checker
 * re-runs a workload with the equal-tick tie-break order permuted
 * (EventQueue::setTieBreakSeed — timing is untouched, only the pop
 * order of simultaneous events moves) and diffs the final metrics
 * exactly.  Divergence is reported as LLL-DET-0xx error diagnostics.
 *
 * The generic checkDeterminism() entry point takes any
 * seed -> metric-vector runner, so tests can inject deliberately
 * order-sensitive toy handlers and assert the checker catches them.
 */

#ifndef LLL_ANALYSIS_DETERMINISM_HH
#define LLL_ANALYSIS_DETERMINISM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "platforms/platform.hh"
#include "sim/system.hh"
#include "util/diagnostic.hh"
#include "util/status.hh"
#include "workloads/workload.hh"

namespace lll::analysis
{

/** One named scalar result of a run (flattened RunResult, or whatever
 *  a toy runner wants compared). */
struct Metric
{
    std::string name;
    double value = 0.0;
};

using MetricVector = std::vector<Metric>;

/** Runs the workload under test with the given tie-break seed and
 *  returns its final metrics. */
using Runner = std::function<MetricVector(uint64_t tie_break_seed)>;

struct DeterminismOptions
{
    /**
     * Tie-break seeds to compare; the first is the baseline.  0 is the
     * production insertion order; the others are arbitrary nonzero
     * perturbations (values chosen so that even a two-event tie at
     * sequence numbers 0/1 flips order under at least one of them).
     */
    std::vector<uint64_t> seeds{0, 0x9e3779b97f4a7c15ULL,
                                0xc0ffee42c0ffee42ULL};

    /** Relative tolerance when diffing metric values; 0 = bit-exact.
     *  A deterministic simulator passes at 0. */
    double relTolerance = 0.0;

    /** Simulated warmup/measure window for checkRunDeterminism (kept
     *  short: order sensitivity shows up within microseconds). */
    double warmupUs = 3.0;
    double measureUs = 8.0;
};

/** One metric that changed under a permuted tie-break order. */
struct MetricDiff
{
    std::string name;
    uint64_t seed = 0;      //!< perturbation that exposed it
    double baseline = 0.0;  //!< value under options.seeds[0]
    double value = 0.0;     //!< value under `seed`
};

struct DeterminismReport
{
    bool deterministic = true;
    size_t metricsCompared = 0;
    size_t seedsRun = 0;
    std::vector<MetricDiff> diffs;
    util::DiagnosticList diagnostics;
};

/**
 * Run @p runner once per seed and diff every metric against the
 * baseline seed.  @p subject labels the diagnostics.
 */
DeterminismReport
checkDeterminism(const Runner &runner,
                 const DeterminismOptions &options = {},
                 const std::string &subject = "run");

/** Flatten a RunResult into named metrics (every scalar field). */
MetricVector runMetrics(const sim::RunResult &result);

/**
 * The production entry point: simulate @p workload x @p platform x
 * @p opts once per tie-break seed and diff the full RunResult.
 * Returns an error Status when the config cannot run at all (bad
 * variant, watchdog trip); order-divergence is reported in the
 * DeterminismReport, not as a Status.
 */
[[nodiscard]] util::Result<DeterminismReport>
checkRunDeterminism(const platforms::Platform &platform,
                    const workloads::Workload &workload,
                    const workloads::OptSet &opts,
                    const DeterminismOptions &options = {});

} // namespace lll::analysis

#endif // LLL_ANALYSIS_DETERMINISM_HH
