#include "analysis/profile_lint.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/bounds.hh"
#include "platforms/platform.hh"
#include "xmem/latency_profile.hh"

namespace lll::analysis
{

using util::DiagnosticList;

DiagnosticList
lintProfileFile(const std::string &path)
{
    DiagnosticList out;

    std::ifstream in(path);
    if (!in) {
        out.error("LLL-PROF-101", path, "cannot read profile file");
        return out;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    util::Result<xmem::LatencyProfile> parsed =
        xmem::LatencyProfile::parse(text);
    if (!parsed.ok()) {
        out.error("LLL-PROF-101", path, "%s",
                  parsed.status().message().c_str());
        return out;
    }
    const xmem::LatencyProfile &profile = *parsed;

    // Monotonicity must be checked on the *raw* point lines: the
    // LatencyProfile constructor sorts by bandwidth and isotonically
    // repairs latency, so a non-monotone measurement survives loading
    // without a trace.  Re-scan the text for the points as written.
    std::vector<xmem::LatencyProfile::Point> raw;
    {
        std::istringstream lines(text);
        std::string line;
        while (std::getline(lines, line)) {
            std::istringstream ls(line);
            std::string key;
            ls >> key;
            if (key != "point")
                continue;
            xmem::LatencyProfile::Point pt{};
            ls >> pt.bwGBs >> pt.latencyNs;
            raw.push_back(pt);
        }
    }
    std::stable_sort(raw.begin(), raw.end(),
                     [](const xmem::LatencyProfile::Point &a,
                        const xmem::LatencyProfile::Point &b) {
                         return a.bwGBs < b.bwGBs;
                     });
    size_t inversions = 0;
    size_t first_inversion = 0;
    for (size_t i = 1; i < raw.size(); ++i) {
        if (raw[i].latencyNs < raw[i - 1].latencyNs) {
            if (inversions == 0)
                first_inversion = i;
            ++inversions;
        }
    }
    if (inversions > 0) {
        out.warning("LLL-PROF-102", path,
                    "latency is not monotone in bandwidth: %zu "
                    "inversion(s), first at %.2f GB/s (%.2f ns after "
                    "%.2f ns); the loader silently repairs this, so "
                    "lat_avg lookups will not match the measurement",
                    inversions, raw[first_inversion].bwGBs,
                    raw[first_inversion].latencyNs,
                    raw[first_inversion - 1].latencyNs);
    }

    util::Result<platforms::Platform> plat =
        platforms::findPlatform(profile.platformName());
    if (!plat.ok()) {
        out.note("LLL-PROF-105", path,
                 "profile's platform '%s' is not in the registry; idle "
                 "latency and peak cannot be cross-checked",
                 profile.platformName().c_str());
        return out;
    }

    // Idle-latency agreement: the profile's lowest-load latency must
    // match the unloaded round trip SystemParams implies (cache lookups
    // plus controller front/bank/back), or Equation 2 is being fed a
    // curve measured on a different memory system.
    util::Result<sim::SystemParams> sys =
        plat->trySysParams(plat->totalCores, 1);
    if (sys.ok()) {
        const core::SpecBounds b =
            core::deriveBounds(*sys, sim::KernelSpec{});
        const double idle = profile.idleLatencyNs();
        if (b.idleLatencyNs > 0.0 &&
            std::abs(idle - b.idleLatencyNs) >
                kIdleLatencyTolerance * b.idleLatencyNs) {
            out.warning("LLL-PROF-103", path,
                        "idle latency %.1f ns disagrees with the %.1f "
                        "ns round trip '%s' implies (tolerance "
                        "±%.0f%%); the profile was measured on a "
                        "different configuration or is stale",
                        idle, b.idleLatencyNs, plat->name.c_str(),
                        100.0 * kIdleLatencyTolerance);
        }
    }

    if (plat->peakGBs > 0.0 &&
        std::abs(profile.peakGBs() - plat->peakGBs) >
            0.01 * plat->peakGBs) {
        out.warning("LLL-PROF-104", path,
                    "declared peak %.1f GB/s differs from the platform "
                    "table's %.1f GB/s; pct-of-peak columns will be "
                    "wrong",
                    profile.peakGBs(), plat->peakGBs);
    }

    return out;
}

} // namespace lll::analysis
