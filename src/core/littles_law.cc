#include "core/littles_law.hh"

#include "util/logging.hh"

namespace lll::core
{

double
littlesLaw(double bw_gbs, double lat_ns, unsigned line_bytes)
{
    lll_assert(bw_gbs >= 0.0 && lat_ns >= 0.0 && line_bytes > 0,
               "littlesLaw: bad arguments");
    // GB/s is bytes/ns, so bw * lat is bytes in flight.
    return bw_gbs * lat_ns / static_cast<double>(line_bytes);
}

double
littlesLawFromRate(double requests, double seconds, double lat_ns)
{
    lll_assert(seconds > 0.0, "littlesLawFromRate: empty window");
    return requests / seconds * lat_ns * 1e-9;
}

double
mlpPerCore(double bw_gbs, double lat_ns, unsigned line_bytes,
           int cores_used)
{
    lll_assert(cores_used > 0, "mlpPerCore: no cores");
    return littlesLaw(bw_gbs, lat_ns, line_bytes) / cores_used;
}

} // namespace lll::core
