/**
 * @file
 * The performance analyzer: from a routine's measured bandwidth to its
 * observed MLP and the MSHR queue that limits it (paper §III-D, the
 * data-gathering half of Figure 1).
 *
 * Inputs are deliberately minimal and portable: the routine's bandwidth
 * (from memory-traffic counters every vendor exposes) and the
 * processor's bandwidth→latency profile (measured once with the X-Mem
 * harness).  Everything else is derived.
 */

#ifndef LLL_CORE_ANALYZER_HH
#define LLL_CORE_ANALYZER_HH

#include <optional>
#include <string>
#include <vector>

#include "counters/counter_bank.hh"
#include "obs/registry.hh"
#include "platforms/platform.hh"
#include "util/status.hh"
#include "xmem/latency_profile.hh"

namespace lll::core
{

/** Dominant access behaviour of a routine. */
enum class AccessClass
{
    Random,      //!< prefetcher ineffective; L1 MSHRQ is the limiter
    Streaming,   //!< prefetcher effective; L2 MSHRQ is the limiter
};

const char *accessClassName(AccessClass c);

/** Which MSHR queue bounds the routine's MLP. */
enum class MshrLevel
{
    L1,
    L2,
};

const char *mshrLevelName(MshrLevel level);

/**
 * Everything the recipe needs to know about one routine on one platform.
 */
struct Analysis
{
    std::string routine;
    std::string platform;

    double bwGBs = 0.0;
    double pctPeak = 0.0;           //!< of theoretical peak
    double latencyNs = 0.0;         //!< loaded latency at bwGBs (profile)
    double idleLatencyNs = 0.0;     //!< for contrast
    double nAvg = 0.0;              //!< observed MLP per core (Eq. 2)

    AccessClass accessClass = AccessClass::Streaming;
    MshrLevel limitingLevel = MshrLevel::L2;
    unsigned limitingMshrs = 0;     //!< size of the limiting queue
    double headroom = 0.0;          //!< limitingMshrs - nAvg

    bool nearMshrLimit = false;     //!< nAvg within margin of the size
    bool nearBandwidthLimit = false; //!< bw near peak achievable
    double maxAchievableGBs = 0.0;  //!< from the profile sweep

    double demandFraction = 1.0;
    bool demandFractionKnown = false;

    /** Concurrent access streams the routine drives (from the kernel
     *  spec when the analysis comes out of an Experiment stage); the
     *  recipe's fusion/distribution dual branches on it. */
    unsigned activeStreams = 0;
    bool activeStreamsKnown = false;

    int coresUsed = 0;

    /** Lookup left the measured profile range (latency was clamped to
     *  the nearest measured point rather than extrapolated). */
    bool bwBelowProfileRange = false;
    bool bwAboveProfileRange = false;

    /** Human-readable degradation notes ("clamped extrapolation", bad
     *  counter input...), also exported via the metric registry. */
    std::vector<std::string> warnings;
};

/**
 * Derives an Analysis from a routine profile.
 */
class Analyzer
{
  public:
    struct Params
    {
        /** nAvg >= mshrFullFraction * queue size counts as "full". */
        double mshrFullFraction = 0.88;
        /** bw >= bwWallFraction * max achievable counts as the wall. */
        double bwWallFraction = 0.92;
        /** Demand share above which a routine classifies as Random when
         *  no explicit hint is given. */
        double randomDemandFraction = 0.6;
    };

    Analyzer(const platforms::Platform &platform,
             xmem::LatencyProfile profile);
    Analyzer(const platforms::Platform &platform,
             xmem::LatencyProfile profile, Params params);

    /**
     * Check that @p profile can drive an analysis of @p platform: it
     * must be non-empty and measured on the same platform.
     */
    [[nodiscard]] static util::Status validateInputs(const platforms::Platform &platform,
                                       const xmem::LatencyProfile &profile);

    /** Checked factory: validateInputs() then construct. */
    [[nodiscard]] static util::Result<Analyzer>
    create(const platforms::Platform &platform,
           xmem::LatencyProfile profile);
    [[nodiscard]] static util::Result<Analyzer>
    create(const platforms::Platform &platform, xmem::LatencyProfile profile,
           Params params);

    /**
     * Analyze one routine.
     *
     * @param routine CrayPat-style per-routine bandwidth profile
     * @param cores_used cores that drove the load
     * @param random_hint user/a-priori knowledge of the access pattern
     *        (paper: "if the routine is dominated by random memory
     *        accesses"); falls back to the prefetch-fraction counter
     */
    Analysis analyze(const counters::RoutineProfile &routine,
                     int cores_used,
                     std::optional<bool> random_hint = std::nullopt) const;

    const xmem::LatencyProfile &profile() const { return profile_; }
    const platforms::Platform &platform() const { return platform_; }

    /**
     * Publish every subsequent analysis into @p registry (gauges
     * `analyzer.n_avg`, `analyzer.bw_gbps`, ... plus per-routine
     * annotations).  Pass nullptr to stop publishing.
     */
    void setRegistry(obs::MetricRegistry *registry)
    {
        registry_ = registry;
    }

  private:
    platforms::Platform platform_;
    xmem::LatencyProfile profile_;
    Params params_;
    obs::MetricRegistry *registry_ = nullptr;
};

} // namespace lll::core

#endif // LLL_CORE_ANALYZER_HH
