/**
 * @file
 * The parallel sweep runner and the process-wide result cache behind
 * `lll sweep` / `lll table` / `lll reproduce` (DESIGN.md §11).
 *
 * A sweep fans platform x workload experiment *units* out to a pool of
 * worker threads.  Workers share nothing mutable: each unit builds its
 * own Experiment (own System, event queue, RNG state) and, when the
 * caller wants telemetry, records into a private MetricRegistry and its
 * thread-local SpanTracker.  After join, the runner folds per-unit
 * registries and span stats into the caller's on the main thread, in
 * unit order — the merge-after-join contract — so a `--jobs 4` run is
 * byte-identical to `--jobs 1`, including every exporter.
 *
 * The ResultCache memoizes simulated stages across experiments and
 * processes: the key captures everything the simulation is a pure
 * function of (platform, kernel-spec hash, applied opts, seed, window
 * lengths, core count), and a hit returns the stored StageMetrics
 * without touching the event queue.  With a spill directory configured
 * the cache persists entries as flat JSON files, so a second process
 * re-renders every table without re-simulating anything.
 */

#ifndef LLL_CORE_SWEEP_HH
#define LLL_CORE_SWEEP_HH

#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "platforms/platform.hh"
#include "util/status.hh"
#include "workloads/workload.hh"

namespace lll::core
{

/** Stable FNV-1a hash of everything a KernelSpec tells the simulator;
 *  two specs with equal hashes simulate identically (cache key part). */
uint64_t hashKernelSpec(const sim::KernelSpec &spec);

/** Flat-JSON serialization of one StageMetrics (the cache spill
 *  format; one "section.field": value pair per line, version-tagged). */
std::string stageMetricsJson(const StageMetrics &m,
                             const std::string &key);

/** Parse the spill format back; CorruptData on any missing or
 *  malformed field, FailedPrecondition on a version/key mismatch
 *  (@p expect_key empty skips the key check). */
[[nodiscard]] util::Result<StageMetrics>
parseStageMetricsJson(const std::string &text,
                      const std::string &expect_key);

/**
 * Process-wide memo table for simulated stages.  Thread-safe; workers
 * of one sweep and sequential experiments in one process share it.
 *
 * Capacity policy (DESIGN.md §12): the in-memory table is LRU-bounded
 * by setMaxEntries() — an eviction drops the entry from memory only,
 * so a later lookup can still reload it from the spill dir — and the
 * spill dir is byte-bounded by setSpillBudget(), garbage-collected
 * oldest-mtime-first whenever a spill pushes it over budget.  Both
 * caps default to 0 (unbounded), preserving the one-shot CLI behavior;
 * the long-lived run service sets both.
 */
class ResultCache
{
  public:
    struct Stats
    {
        uint64_t hits = 0;      //!< lookups served (memory or disk)
        uint64_t misses = 0;    //!< lookups that had to simulate
        uint64_t diskLoads = 0; //!< hits satisfied from the spill dir
        uint64_t spills = 0;    //!< entries written to the spill dir
        uint64_t evictions = 0; //!< in-memory entries LRU-evicted
        uint64_t spillEvictions = 0; //!< spill files GC-deleted
    };

    /**
     * The memo key for one simulated stage: every input the simulated
     * StageMetrics is a pure function of.  Deterministic across runs.
     */
    static std::string stageKey(const platforms::Platform &platform,
                                const sim::KernelSpec &spec,
                                const workloads::OptSet &opts,
                                uint64_t seed, double warmupUs,
                                double measureUs, int coresUsed);

    /** Fetch @p key into @p out; false (and a miss counted) when the
     *  stage has to be simulated. */
    bool lookup(const std::string &key, StageMetrics *out);

    /** Memoize @p m under @p key (and spill it when configured). */
    void insert(const std::string &key, const StageMetrics &m);

    /**
     * Persist entries under @p dir (created if missing) and serve
     * lookups from files found there.  Empty disables spilling.
     */
    [[nodiscard]] util::Status setSpillDir(const std::string &dir);
    const std::string &spillDir() const { return spillDir_; }

    /** Cap the in-memory table at @p cap entries, evicting least-
     *  recently-used beyond it.  0 = unbounded.  Shrinking below the
     *  current size evicts immediately. */
    void setMaxEntries(size_t cap);
    size_t maxEntries() const;

    /** Cap the spill dir at @p bytes, deleting oldest-mtime files
     *  first when a spill pushes it over.  0 = unbounded. */
    void setSpillBudget(uint64_t bytes);
    uint64_t spillBudget() const;

    /** Bytes currently occupied by spill files (0 without a dir). */
    uint64_t spillBytes() const;

    Stats stats() const;
    size_t size() const;
    void clear();

    /** The process-wide cache every Experiment defaults to not using;
     *  opt in via Experiment::Params::resultCache. */
    static ResultCache &global();

  private:
    struct Entry
    {
        StageMetrics metrics;
        std::list<std::string>::iterator lruIt;
    };

    std::string spillPath(const std::string &key) const;
    void insertLocked(const std::string &key, const StageMetrics &m);
    void touchLocked(Entry &e);
    void enforceEntryCapLocked();
    void rescanSpillLocked();
    void gcSpillLocked();

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
    std::list<std::string> lru_; //!< front = most recently used
    std::string spillDir_;
    size_t maxEntries_ = 0;
    uint64_t spillBudget_ = 0;
    uint64_t spillBytes_ = 0;
    Stats stats_;
};

/** One experiment of a sweep. @p workload must outlive the runner. */
struct SweepUnit
{
    platforms::Platform platform;
    const workloads::Workload *workload = nullptr;
};

/**
 * Thread-pooled experiment fan-out with deterministic merge.
 */
class SweepRunner
{
  public:
    struct Params
    {
        /** Worker threads (clamped to [1, #units]).  Results and
         *  merged telemetry are identical for every value. */
        int jobs = 1;

        /** Forwarded to each unit's Experiment. */
        double warmupUs = 0.0;
        double measureUs = 0.0;
        int coresUsed = 0;
        uint64_t seed = 7;

        /** Stage memo table; nullptr runs uncached. */
        ResultCache *cache = nullptr;

        /**
         * When set, each unit records into a private registry and the
         * runner mergeFrom()s them into this one after join, in unit
         * order; worker span stats fold into the calling thread's
         * SpanTracker the same way.
         */
        obs::MetricRegistry *registry = nullptr;
        obs::Sampler::Params sampler;
    };

    /** The rendered paper walk of one unit. */
    struct UnitResult
    {
        std::string platform;
        std::string workload;
        std::vector<TableRow> rows;
    };

    /**
     * One *stage* of a sweep: a single (platform, workload, opts)
     * variant with its own windows/cores/seed.  This is the unit the
     * run service shards after coalescing duplicate requests — unlike
     * SweepUnit, which walks a whole paper table per entry.
     * @p workload must outlive the runner.
     */
    struct StageUnit
    {
        platforms::Platform platform;
        const workloads::Workload *workload = nullptr;
        workloads::OptSet opts;
        double warmupUs = 0.0;  //!< 0 = the workload's default window
        double measureUs = 0.0; //!< 0 = the workload's default window
        int coresUsed = 0;      //!< 0 = all of the platform's cores
        uint64_t seed = 7;
    };

    /** The per-unit result of runStages(): a Status *per unit*, so one
     *  bad request never fails the rest of the batch. */
    struct StageOutcome
    {
        util::Status status;
        StageMetrics metrics; //!< meaningful only when status.ok()

        /** Host wall time from fan-out start until a worker picked
         *  this unit up — the unit's time in the work queue. */
        double queueWaitNs = 0.0;
        /** Host wall time the worker spent running the unit
         *  (Experiment creation + simulated stage). */
        double simulateNs = 0.0;
    };

    explicit SweepRunner(Params params) : params_(params) {}

    /**
     * Run every unit and return results in unit order (never in
     * completion order).  Latency profiles are measured/loaded once
     * per distinct platform *before* the fan-out, so workers never
     * touch profile files concurrently.  Fails with the first failing
     * unit's Status, in unit order.
     */
    [[nodiscard]] util::Result<std::vector<UnitResult>>
    run(const std::vector<SweepUnit> &units);

    /**
     * Run one simulated stage per unit with the same share-nothing
     * fan-out and merge-after-join contract as run(), but report
     * failures *per unit*: a unit whose profile cannot be loaded or
     * whose Experiment fails gets its error in its StageOutcome while
     * the rest of the batch proceeds.  Results are in unit order.
     */
    std::vector<StageOutcome>
    runStages(const std::vector<StageUnit> &units);

  private:
    Params params_;
};

/** The registry-wide unit list (every workload x every platform,
 *  workload-major so each paper table's units are contiguous), shared
 *  by `lll sweep` and `lll reproduce`.  The units borrow the
 *  workloads: @p workloads must outlive the returned vector. */
std::vector<SweepUnit>
sweepUnits(const std::vector<platforms::Platform> &platforms,
           const std::vector<workloads::WorkloadPtr> &workloads);

} // namespace lll::core

#endif // LLL_CORE_SWEEP_HH
