/**
 * @file
 * Analytical bounds derived from one (SystemParams, KernelSpec) pair:
 * the MLP the code can expose versus the MSHR capacity that will cap
 * it, the bandwidth ceiling Little's law implies for that capacity at
 * the node's idle latency, and the stream-mix classification the
 * analyzer and the lint checks both reason from.
 *
 * This lives in core (not analysis) because the experiment runner
 * consumes the bounds too: Experiment::create refuses configs whose
 * bounds make every downstream conclusion vacuous (LLL-LINT-102/106),
 * and analysis already links core, so the derivation must sit below
 * both.  `lll::analysis` re-exports these names for source
 * compatibility (analysis/spec_lint.hh).
 *
 * Everything here is a pure function of the static tables — no X-Mem
 * profile, no event queue — so output is byte-deterministic.
 */

#ifndef LLL_CORE_BOUNDS_HH
#define LLL_CORE_BOUNDS_HH

#include <cstdint>
#include <string>

#include "sim/kernel_spec.hh"
#include "sim/system.hh"

namespace lll::core
{

/**
 * The numbers the lint checks compare, also exported in the JSON
 * report so downstream tooling can consume them without re-deriving.
 */
struct SpecBounds
{
    // MLP: what the code exposes vs what the hardware can hold.
    double exposedMlpPerThread = 0.0; //!< min(window, load-queue size)
    double exposedMlpPerCore = 0.0;   //!< per-thread * SMT ways
    unsigned l1Mshrs = 0;             //!< per-core L1 MSHR capacity
    unsigned l2Mshrs = 0;             //!< per-core L2 MSHR capacity
    /** MLP after the limiting MSHR queue caps it (prefetcher-covered
     *  streaming mixes can fill the L2 queue beyond the demand MLP). */
    double effectiveMlpPerCore = 0.0;

    /** Unloaded round trip to memory: cache lookups + controller
     *  front/bank/back latencies. */
    double idleLatencyNs = 0.0;

    // Bandwidth (GB/s): the declared peak vs Little's-law ceilings
    // (n * cls / lat, Equation 2 solved for BW) at idle latency —
    // optimistic, since loaded latency only grows.
    double peakGBs = 0.0;
    double l1CeilingGBs = 0.0;  //!< all L1 MSHRs busy, node-wide
    double l2CeilingGBs = 0.0;  //!< all L2 MSHRs busy, node-wide
    double mlpCeilingGBs = 0.0; //!< effective MLP busy, node-wide
    /** Per-core n_avg required to sustain the declared peak. */
    double nAvgAtPeakPerCore = 0.0;

    // Working-set size vs private cache capacity: a kernel whose
    // footprint fits in the L1 never exercises the memory system.
    uint64_t footprintBytes = 0;   //!< sum of stream footprints
    uint64_t l1CapacityBytes = 0;  //!< sets * ways * line
    uint64_t l2CapacityBytes = 0;

    // Access-pattern classification from the stream mix.
    double randomWeight = 0.0; //!< weight share of Random streams
    bool randomDominated = false;
    bool prefetcherCovers = false; //!< streaming mix + HW prefetcher on

    /**
     * True when Little's-law analysis of this config cannot say
     * anything: the effective MLP loads the memory system to under 5%
     * of peak (LLL-LINT-102) or the footprint fits in the L1
     * (LLL-LINT-106).  Experiment::create refuses such configs.
     */
    bool vacuous() const
    {
        return mlpCeilingGBs < 0.05 * peakGBs ||
               footprintBytes <= l1CapacityBytes;
    }
};

/** Derive the bounds above; pure arithmetic, no validation. */
SpecBounds deriveBounds(const sim::SystemParams &sys,
                        const sim::KernelSpec &spec);

/** JSON object with every SpecBounds field ({"idle_latency_ns": ...}). */
std::string boundsJson(const SpecBounds &bounds, int indent = 0);

} // namespace lll::core

#endif // LLL_CORE_BOUNDS_HH
