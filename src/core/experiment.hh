/**
 * @file
 * Experiment runner: executes a workload's optimization walk on a
 * platform and produces the rows of the paper's Tables IV–IX.
 *
 * Each unique optimization state is simulated once (results are cached
 * by label); rows report the paper's columns — observed bandwidth with
 * percent of peak, loaded latency from the X-Mem profile, the Little's-
 * law n_avg — plus the measured speedup of the optimization tried on top.
 */

#ifndef LLL_CORE_EXPERIMENT_HH
#define LLL_CORE_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "core/analyzer.hh"
#include "core/recipe.hh"
#include "counters/counter_bank.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "platforms/platform.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"
#include "xmem/latency_profile.hh"

namespace lll::core
{

class ResultCache;

/** One simulated optimization state of a workload. */
struct StageMetrics
{
    workloads::OptSet opts;
    std::string label;
    sim::RunResult run;
    counters::RoutineProfile profile;
    Analysis analysis;
    /** Work units per second — the speedup basis. */
    double throughput = 0.0;
};

/** One rendered table row (paper Tables IV–IX shape). */
struct TableRow
{
    std::string source;        //!< variant label
    double bwGBs = 0.0;
    double pctPeak = 0.0;
    double latencyNs = 0.0;
    double nAvg = 0.0;
    std::string optLabel;      //!< optimization tried ("-" for none)
    double speedup = 0.0;      //!< measured; 0 when none tried
    double paperSpeedup = 0.0; //!< the paper's number for comparison
};

/**
 * Runs one (platform, workload) experiment.
 */
class Experiment
{
  public:
    struct Params
    {
        /** Zero means "use the workload's own window lengths". */
        double warmupUs = 0.0;
        double measureUs = 0.0;
        int coresUsed = 0;      //!< 0 = all cores (paper's loaded run)
        uint64_t seed = 7;

        /**
         * When set, every simulated stage attaches its telemetry here
         * (System::attachObservability) and the analyzer publishes its
         * per-variant verdicts; each stage runs under a span
         * `stage[<label>]` with `simulate`/`profile`/`analyze` phases
         * nested inside.
         */
        obs::MetricRegistry *registry = nullptr;
        obs::Sampler::Params sampler;

        /**
         * Cross-experiment memo table (core/sweep.hh).  A stage whose
         * key is cached is returned without simulating — its
         * simulate/profile/analyze spans never open — and a simulated
         * stage is inserted for the next experiment or process.
         */
        ResultCache *resultCache = nullptr;
    };

    Experiment(const platforms::Platform &platform,
               const workloads::Workload &workload,
               xmem::LatencyProfile profile);
    Experiment(const platforms::Platform &platform,
               const workloads::Workload &workload,
               xmem::LatencyProfile profile, Params params);

    /**
     * Checked factory: verifies the profile matches the platform, the
     * requested core count is within the platform's range, and the
     * window lengths are usable, instead of asserting mid-run.  Also
     * refuses statically vacuous configs — a base variant whose derived
     * bounds (core/bounds.hh) show the memory system barely loaded
     * (LLL-LINT-102) or an L1-resident footprint (LLL-LINT-106) — with
     * a FailedPrecondition Status: the experiment would simulate fine
     * but every Little's-law conclusion drawn from it would be noise.
     */
    [[nodiscard]] static util::Result<Experiment>
    create(const platforms::Platform &platform,
           const workloads::Workload &workload,
           xmem::LatencyProfile profile);
    [[nodiscard]] static util::Result<Experiment>
    create(const platforms::Platform &platform,
           const workloads::Workload &workload, xmem::LatencyProfile profile,
           Params params);

    /** Simulate (or fetch the cached) state @p opts. */
    const StageMetrics &stage(const workloads::OptSet &opts);

    /** Measured speedup of @p to over @p from (throughput ratio). */
    double speedup(const workloads::OptSet &from,
                   const workloads::OptSet &to);

    /** Run the workload's full paper walk and render the rows. */
    std::vector<TableRow> paperTable();

    const platforms::Platform &platform() const { return platform_; }
    const workloads::Workload &workload() const { return workload_; }
    const Analyzer &analyzer() const { return analyzer_; }
    int coresUsed() const { return coresUsed_; }

  private:
    platforms::Platform platform_;
    const workloads::Workload &workload_;
    Analyzer analyzer_;
    Params params_;
    int coresUsed_;
    std::map<std::string, StageMetrics> cache_;
};

} // namespace lll::core

#endif // LLL_CORE_EXPERIMENT_HH
