/**
 * @file
 * Little's law for memory systems — Equations 1 and 2 of the paper.
 *
 * The long-term average number of outstanding memory requests equals the
 * request arrival rate times the average time each request stays in the
 * system:
 *
 *     n_avg = lat_avg * R / T                 (Equation 1)
 *     n_avg = lat_avg * BW / cls              (Equation 2)
 *
 * where BW = R * cls / T.  With BW in GB/s (= bytes/ns), lat in ns and
 * cls in bytes, n_avg comes out in cache lines — the observed MLP, i.e.
 * the average MSHR-queue occupancy the paper's whole method revolves
 * around.
 */

#ifndef LLL_CORE_LITTLES_LAW_HH
#define LLL_CORE_LITTLES_LAW_HH

namespace lll::core
{

/**
 * Equation 2: node-wide average outstanding lines.
 *
 * @param bw_gbs achieved memory bandwidth in GB/s
 * @param lat_ns average observed (loaded) memory latency in ns
 * @param line_bytes cache line size at the level of interest
 */
double littlesLaw(double bw_gbs, double lat_ns, unsigned line_bytes);

/**
 * Equation 1: node-wide average outstanding requests from raw counts.
 *
 * @param requests total memory requests R in the window
 * @param seconds window length T
 * @param lat_ns average observed latency
 */
double littlesLawFromRate(double requests, double seconds, double lat_ns);

/**
 * Per-core observed MLP — the n_avg the paper's tables report.
 *
 * @param cores_used cores driving the measured bandwidth
 */
double mlpPerCore(double bw_gbs, double lat_ns, unsigned line_bytes,
                  int cores_used);

} // namespace lll::core

#endif // LLL_CORE_LITTLES_LAW_HH
