#include "core/tma.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/stats.hh"

namespace lll::core
{

Tma::Tma(const platforms::Platform &platform)
    : Tma(platform, Params())
{
}

Tma::Tma(const platforms::Platform &platform, Params params)
    : platform_(platform), params_(params)
{
}

TmaReport
Tma::analyze(const sim::RunResult &run) const
{
    TmaReport r;
    r.memCtrlUtilization = run.memUtilization;

    // --- average load latency, the load-latency-facility way -----------
    // Averaged over every retired load.  Streaming loads hit close to
    // the core (prefetched), so the mean collapses toward the cache
    // latency even when memory is saturated — the paper's hpcg "32
    // cycles at full bandwidth" observation.
    const double ns_per_cycle = 1.0 / platform_.freqGHz;
    const double l1_hit_ns = 4.0 * ns_per_cycle;
    const double l2_hit_ns = l1_hit_ns + 14.0 * ns_per_cycle;
    // The simulator works at line granularity; real code issues several
    // word loads per touched line and all but the first hit the L1.
    // The facility averages over *those*, which is what collapses its
    // mean toward the cache latency on streaming codes.
    const double word_loads_per_line = 8.0;
    const uint64_t line_loads = run.l1DemandHits + run.l1DemandMisses;
    if (line_loads > 0) {
        uint64_t l2_hits = std::min(run.l2DemandHits, run.l1DemandMisses);
        uint64_t deep = run.l1DemandMisses - l2_hits;
        double line_ns =
            static_cast<double>(run.l1DemandHits) * l1_hit_ns +
            static_cast<double>(l2_hits) * l2_hit_ns +
            static_cast<double>(deep) * (l2_hit_ns + run.avgMemLatencyNs);
        double extra_word_hits =
            static_cast<double>(line_loads) * (word_loads_per_line - 1.0);
        double total_ns = line_ns + extra_word_hits * l1_hit_ns;
        r.avgLoadLatencyCycles =
            total_ns /
            (static_cast<double>(line_loads) * word_loads_per_line) /
            ns_per_cycle;
    }

    // --- pipeline-slot attribution --------------------------------------
    // Simplified but shaped like the real thing: memory-bound share from
    // MSHR pressure and controller load, a heuristic port-utilization
    // core-bound share, small front-end/speculation terms.
    double l1_frac = platform_.l1Mshrs
                         ? std::min(1.0, run.avgL1MshrOccupancy /
                                             platform_.l1Mshrs)
                         : 0.0;
    double mem_bound =
        std::clamp(0.5 * l1_frac + 0.5 * run.memUtilization, 0.0, 1.0);
    double core_bound = (1.0 - mem_bound) * 0.35;
    double backend = mem_bound + core_bound;
    double bad_spec = 0.02;
    double frontend = 0.08 * (1.0 - backend);
    double retiring =
        std::max(0.0, 1.0 - backend - bad_spec - frontend);

    r.memoryBoundPct = 100.0 * mem_bound;
    r.coreBoundPct = 100.0 * core_bound;
    r.backendPct = 100.0 * backend;
    r.badSpeculationPct = 100.0 * bad_spec;
    r.frontendPct = 100.0 * frontend;
    r.retiringPct = 100.0 * retiring;

    // --- bandwidth vs latency split -------------------------------------
    // Keyed on controller occupancy against a self-defined threshold,
    // like TMA; occupancy hovers within a band of the threshold, so both
    // buckets get populated — the ambiguity the paper calls out.
    double band = 0.30;
    double share = std::clamp(
        (run.memUtilization - (params_.bandwidthThreshold - band / 2)) /
            band,
        0.0, 1.0);
    r.bandwidthBoundPct = r.memoryBoundPct * share;
    r.latencyBoundPct = r.memoryBoundPct - r.bandwidthBoundPct;
    return r;
}

} // namespace lll::core
