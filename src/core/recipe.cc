#include "core/recipe.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/table.hh"

namespace lll::core
{

using workloads::Opt;
using workloads::OptSet;

std::vector<Opt>
RecipeDecision::recommendedOpts() const
{
    std::vector<Opt> out;
    for (const Recommendation &r : recommendations) {
        if (r.recommended)
            out.push_back(r.opt);
    }
    return out;
}

Recipe::Recipe(const platforms::Platform &platform) : platform_(platform)
{
}

RecipeDecision
Recipe::advise(const Analysis &a, const OptSet &applied) const
{
    RecipeDecision d;
    std::ostringstream summary;

    auto rec = [&d](Opt opt, bool yes, std::string why) {
        d.recommendations.push_back({opt, yes, std::move(why)});
    };

    const char *level = mshrLevelName(a.limitingLevel);
    const bool smt_avail = platform_.maxSmtWays > applied.smtWays();
    const unsigned next_smt = applied.smtWays() == 1 ? 2 : 4;
    const Opt smt_opt = next_smt == 2 ? Opt::Smt2 : Opt::Smt4;

    if (a.nearBandwidthLimit) {
        // Right branch of Figure 1: the wall is the memory system, not
        // the core.  Only traffic reduction can help.
        summary << "bandwidth wall: " << fmtDouble(a.bwGBs, 1)
                << " GB/s is >= " << fmtDouble(a.maxAchievableGBs, 1)
                << " GB/s peak achievable; only optimizations that reduce "
                   "memory traffic can help";
        rec(Opt::Tiling, !applied.has(Opt::Tiling),
            "reduces memory requests per unit work, lowering both "
            "bandwidth demand and MSHRQ occupancy");
        rec(Opt::Fusion, !applied.has(Opt::Fusion),
            "shortens reuse distance, cutting memory traffic");
        rec(Opt::Vectorize, false,
            "increases MLP, but achieved bandwidth is already at the "
            "peak achievable level");
        rec(smt_opt, false,
            "more threads cannot raise bandwidth past the wall and may "
            "add cache contention");
        rec(Opt::SwPrefetchL2, false,
            "prefetches add requests to an already saturated memory "
            "system");
        d.stop = applied.has(Opt::Tiling) && applied.has(Opt::Fusion);
        d.summary = summary.str();
        return d;
    }

    if (a.nearMshrLimit) {
        summary << level << " MSHRQ effectively full (n_avg "
                << fmtDouble(a.nAvg, 2) << " of " << a.limitingMshrs
                << "); MLP-increasing optimizations cannot help";
        // The ISx move: random-access routines pinned at the L1 MSHRQ
        // can shift the bottleneck to the larger, idle L2 queue with
        // prefetch-to-L2 instructions.
        if (a.limitingLevel == MshrLevel::L1 &&
            platform_.l2Mshrs > a.nAvg && !a.nearBandwidthLimit) {
            rec(Opt::SwPrefetchL2, !applied.has(Opt::SwPrefetchL2),
                "random accesses leave the larger L2 MSHRQ idle; "
                "prefetching into the L2 shifts the bottleneck there and "
                "shortens L1 MSHR residency");
        } else {
            rec(Opt::SwPrefetchL2, false,
                "every software prefetch occupies an MSHR the demand "
                "stream needs");
        }
        rec(Opt::Tiling, !applied.has(Opt::Tiling),
            "high occupancy responds to fewer memory requests, not more "
            "parallelism");
        // The fusion/distribution dual: a full MSHRQ driven by many
        // concurrent streams is stream contention — each stream holds
        // queue slots and a prefetcher table entry, so splitting the
        // loop (fission) lets each piece run with fewer streams.  With
        // few streams the queue is full of one stream's misses and
        // fusing loops to shorten reuse distance is the move instead.
        const bool stream_heavy = a.activeStreamsKnown &&
                                  a.activeStreams >= kStreamHeavy;
        if (stream_heavy) {
            rec(Opt::Distribution, !applied.has(Opt::Distribution),
                std::to_string(a.activeStreams) +
                    " concurrent streams contend for the full MSHRQ; "
                    "splitting the loop runs fewer streams at a time, "
                    "each with more queue slots");
            rec(Opt::Fusion, false,
                "fusing loops adds concurrent streams to an MSHRQ "
                "already contended by " +
                    std::to_string(a.activeStreams) + " of them");
        } else {
            rec(Opt::Fusion, !applied.has(Opt::Fusion),
                "reuse-distance reduction lowers MSHRQ occupancy");
            rec(Opt::Distribution, false,
                "few active streams; splitting the loop only forfeits "
                "reuse");
        }
        rec(Opt::Vectorize, false, "the MSHRQ cannot hold more misses");
        rec(smt_opt, false,
            "SMT threads share the full MSHRQ; no room for more "
            "in-flight misses");
        d.stop = applied.has(Opt::SwPrefetchL2) &&
                 applied.has(Opt::Tiling);
        d.summary = summary.str();
        return d;
    }

    // Headroom: the left branch — everything that raises MLP is on the
    // table.
    summary << "headroom: n_avg " << fmtDouble(a.nAvg, 2) << " of "
            << a.limitingMshrs << " " << level
            << " MSHRs and bandwidth at " << fmtDouble(a.pctPeak * 100, 0)
            << "% of peak; raise MLP";

    // High bandwidth utilization even before the wall: traffic
    // reduction already pays (the paper's MiniGhost reasoning, §IV-E).
    if (a.pctPeak >= 0.55) {
        rec(Opt::Tiling, !applied.has(Opt::Tiling),
            "bandwidth utilization is already high; cutting memory "
            "requests per unit work pays before the wall is reached");
    }

    rec(Opt::Vectorize, !applied.has(Opt::Vectorize),
        "more lanes put more independent memory requests in flight");
    if (smt_avail) {
        rec(smt_opt, true,
            "threads sharing a core multiply in-flight misses; the "
            "MSHRQ has room for them");
    } else {
        rec(smt_opt, false,
            platform_.maxSmtWays == 1
                ? "the platform does not support SMT"
                : "SMT ways exhausted");
    }
    // Software prefetch helps irregular patterns outright, and also
    // streaming codes whose hardware-prefetch coverage is only partial
    // (short trip counts, awkward strides — the paper's SNAP case,
    // §IV-F), which the demand-share counter exposes.
    bool partial_coverage = a.demandFractionKnown &&
                            a.demandFraction > 0.35;
    if (a.accessClass == AccessClass::Random) {
        rec(Opt::SwPrefetchL2, !applied.has(Opt::SwPrefetchL2),
            "the hardware prefetcher misses irregular patterns; "
            "software prefetch covers them");
    } else if (partial_coverage) {
        rec(Opt::SwPrefetchL2, !applied.has(Opt::SwPrefetchL2),
            "the hardware prefetcher covers these streams only "
            "partially (demand share " +
                fmtDouble(a.demandFraction * 100, 0) +
                "%); user-directed prefetches can fill the gap");
    } else {
        rec(Opt::SwPrefetchL2, false,
            "streaming patterns are already covered by the hardware "
            "prefetcher");
    }
    rec(Opt::UnrollJam, a.nAvg < 1.0 && !applied.has(Opt::UnrollJam),
        a.nAvg < 1.0 ? "accesses mostly hit in cache (very low MLP); "
                       "register tiling attacks the remaining latency"
                     : "useful mainly when data already sits high in the "
                       "hierarchy");
    rec(Opt::Distribution, false,
        "only helps when too many active streams contend; MLP is not "
        "stream-limited here");

    d.summary = summary.str();
    return d;
}

} // namespace lll::core
