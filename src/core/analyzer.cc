#include "core/analyzer.hh"

#include <algorithm>
#include <cmath>

#include "core/littles_law.hh"
#include "util/logging.hh"

namespace lll::core
{

const char *
accessClassName(AccessClass c)
{
    switch (c) {
      case AccessClass::Random:    return "random";
      case AccessClass::Streaming: return "streaming";
    }
    return "?";
}

const char *
mshrLevelName(MshrLevel level)
{
    switch (level) {
      case MshrLevel::L1: return "L1";
      case MshrLevel::L2: return "L2";
    }
    return "?";
}

Analyzer::Analyzer(const platforms::Platform &platform,
                   xmem::LatencyProfile profile)
    : Analyzer(platform, std::move(profile), Params())
{
}

Analyzer::Analyzer(const platforms::Platform &platform,
                   xmem::LatencyProfile profile, Params params)
    : platform_(platform), profile_(std::move(profile)), params_(params)
{
    util::Status ok = validateInputs(platform_, profile_);
    lll_assert(ok.ok(), "%s", ok.toString().c_str());
}

util::Status
Analyzer::validateInputs(const platforms::Platform &platform,
                         const xmem::LatencyProfile &profile)
{
    using util::ErrorCode;
    using util::Status;
    if (profile.empty())
        return Status::error(ErrorCode::FailedPrecondition,
                             "analyzer needs a non-empty latency profile");
    if (profile.platformName() != platform.name) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "profile is for '%s' but platform is '%s'",
                             profile.platformName().c_str(),
                             platform.name.c_str());
    }
    return Status::okStatus();
}

util::Result<Analyzer>
Analyzer::create(const platforms::Platform &platform,
                 xmem::LatencyProfile profile)
{
    return create(platform, std::move(profile), Params());
}

util::Result<Analyzer>
Analyzer::create(const platforms::Platform &platform,
                 xmem::LatencyProfile profile, Params params)
{
    LLL_RETURN_IF_ERROR(validateInputs(platform, profile));
    return Analyzer(platform, std::move(profile), params);
}

Analysis
Analyzer::analyze(const counters::RoutineProfile &routine, int cores_used,
                  std::optional<bool> random_hint) const
{
    Analysis a;
    a.routine = routine.routine;
    a.platform = platform_.name;
    a.coresUsed = cores_used;

    a.bwGBs = routine.totalGBs;
    if (!std::isfinite(a.bwGBs) || a.bwGBs < 0.0) {
        a.warnings.push_back(detail::format(
            "routine '%s': bandwidth %g GB/s is not a usable measurement; "
            "treating as 0 (idle)", routine.routine.c_str(), a.bwGBs));
        a.bwGBs = 0.0;
    }
    a.pctPeak = a.bwGBs / platform_.peakGBs;

    // The core of the method: look the loaded latency up at the
    // *observed* bandwidth, then apply Little's law.  Outside the
    // measured sweep the profile clamps to the nearest measured point
    // instead of extrapolating; flag it so the degraded fidelity is
    // visible in reports and exports.
    xmem::LatencyProfile::Lookup lat = profile_.lookup(a.bwGBs);
    a.latencyNs = lat.latencyNs;
    a.bwBelowProfileRange = lat.belowMeasuredRange;
    a.bwAboveProfileRange = lat.aboveMeasuredRange;
    if (lat.belowMeasuredRange) {
        a.warnings.push_back(detail::format(
            "routine '%s': bandwidth %.2f GB/s is below the measured "
            "profile range (min %.2f GB/s); clamped extrapolation to the "
            "idle-most point", routine.routine.c_str(), a.bwGBs,
            profile_.minMeasuredGBs()));
    } else if (lat.aboveMeasuredRange) {
        a.warnings.push_back(detail::format(
            "routine '%s': bandwidth %.2f GB/s is above the measured "
            "profile range (max %.2f GB/s); clamped extrapolation to the "
            "saturation point", routine.routine.c_str(), a.bwGBs,
            profile_.maxMeasuredGBs()));
    }
    a.idleLatencyNs = profile_.idleLatencyNs();
    a.nAvg = mlpPerCore(a.bwGBs, a.latencyNs, platform_.lineBytes,
                        cores_used);

    a.demandFraction = routine.demandFraction;
    a.demandFractionKnown = routine.demandFractionKnown;

    bool random;
    if (random_hint.has_value()) {
        random = *random_hint;
    } else if (routine.demandFractionKnown) {
        random = routine.demandFraction > params_.randomDemandFraction;
    } else {
        // No counter and no user knowledge: assume streaming, the common
        // case for HPC kernels (documented conservative default).
        random = false;
    }
    a.accessClass = random ? AccessClass::Random : AccessClass::Streaming;
    a.limitingLevel = random ? MshrLevel::L1 : MshrLevel::L2;
    a.limitingMshrs = random ? platform_.l1Mshrs : platform_.l2Mshrs;
    a.headroom = static_cast<double>(a.limitingMshrs) - a.nAvg;
    a.nearMshrLimit =
        a.nAvg >= params_.mshrFullFraction * a.limitingMshrs;

    a.maxAchievableGBs = profile_.maxMeasuredGBs();
    a.nearBandwidthLimit =
        a.bwGBs >= params_.bwWallFraction * a.maxAchievableGBs;

    for (const std::string &w : a.warnings)
        lll_warn("%s", w.c_str());

    if (registry_) {
        for (const std::string &w : a.warnings) {
            ++registry_->counter("input_warnings_total");
            registry_->annotate("analyzer.warning", w);
        }
        registry_->setGauge("analyzer.n_avg", a.nAvg);
        registry_->setGauge("analyzer.bw_gbps", a.bwGBs);
        registry_->setGauge("analyzer.pct_peak", a.pctPeak);
        registry_->setGauge("analyzer.latency_ns", a.latencyNs);
        registry_->setGauge("analyzer.limiting_mshrs", a.limitingMshrs);
        registry_->setGauge("analyzer.headroom", a.headroom);
        registry_->annotate("analyzer.limiter_level",
                            mshrLevelName(a.limitingLevel));
        registry_->annotate("analyzer.access_class",
                            accessClassName(a.accessClass));
        registry_->annotate("analyzer.routine", a.routine);
        ++registry_->counter("analyzer.analyses");
    }
    return a;
}

} // namespace lll::core
