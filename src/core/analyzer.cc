#include "core/analyzer.hh"

#include <algorithm>

#include "core/littles_law.hh"
#include "util/logging.hh"

namespace lll::core
{

const char *
accessClassName(AccessClass c)
{
    switch (c) {
      case AccessClass::Random:    return "random";
      case AccessClass::Streaming: return "streaming";
    }
    return "?";
}

const char *
mshrLevelName(MshrLevel level)
{
    switch (level) {
      case MshrLevel::L1: return "L1";
      case MshrLevel::L2: return "L2";
    }
    return "?";
}

Analyzer::Analyzer(const platforms::Platform &platform,
                   xmem::LatencyProfile profile)
    : Analyzer(platform, std::move(profile), Params())
{
}

Analyzer::Analyzer(const platforms::Platform &platform,
                   xmem::LatencyProfile profile, Params params)
    : platform_(platform), profile_(std::move(profile)), params_(params)
{
    lll_assert(!profile_.empty(), "analyzer needs a latency profile");
    lll_assert(profile_.platformName() == platform_.name,
               "profile is for '%s' but platform is '%s'",
               profile_.platformName().c_str(), platform_.name.c_str());
}

Analysis
Analyzer::analyze(const counters::RoutineProfile &routine, int cores_used,
                  std::optional<bool> random_hint) const
{
    Analysis a;
    a.routine = routine.routine;
    a.platform = platform_.name;
    a.coresUsed = cores_used;

    a.bwGBs = routine.totalGBs;
    a.pctPeak = a.bwGBs / platform_.peakGBs;

    // The core of the method: look the loaded latency up at the
    // *observed* bandwidth, then apply Little's law.
    a.latencyNs = profile_.latencyAt(a.bwGBs);
    a.idleLatencyNs = profile_.idleLatencyNs();
    a.nAvg = mlpPerCore(a.bwGBs, a.latencyNs, platform_.lineBytes,
                        cores_used);

    a.demandFraction = routine.demandFraction;
    a.demandFractionKnown = routine.demandFractionKnown;

    bool random;
    if (random_hint.has_value()) {
        random = *random_hint;
    } else if (routine.demandFractionKnown) {
        random = routine.demandFraction > params_.randomDemandFraction;
    } else {
        // No counter and no user knowledge: assume streaming, the common
        // case for HPC kernels (documented conservative default).
        random = false;
    }
    a.accessClass = random ? AccessClass::Random : AccessClass::Streaming;
    a.limitingLevel = random ? MshrLevel::L1 : MshrLevel::L2;
    a.limitingMshrs = random ? platform_.l1Mshrs : platform_.l2Mshrs;
    a.headroom = static_cast<double>(a.limitingMshrs) - a.nAvg;
    a.nearMshrLimit =
        a.nAvg >= params_.mshrFullFraction * a.limitingMshrs;

    a.maxAchievableGBs = profile_.maxMeasuredGBs();
    a.nearBandwidthLimit =
        a.bwGBs >= params_.bwWallFraction * a.maxAchievableGBs;

    if (registry_) {
        registry_->setGauge("analyzer.n_avg", a.nAvg);
        registry_->setGauge("analyzer.bw_gbps", a.bwGBs);
        registry_->setGauge("analyzer.pct_peak", a.pctPeak);
        registry_->setGauge("analyzer.latency_ns", a.latencyNs);
        registry_->setGauge("analyzer.limiting_mshrs", a.limitingMshrs);
        registry_->setGauge("analyzer.headroom", a.headroom);
        registry_->annotate("analyzer.limiter_level",
                            mshrLevelName(a.limitingLevel));
        registry_->annotate("analyzer.access_class",
                            accessClassName(a.accessClass));
        registry_->annotate("analyzer.routine", a.routine);
        ++registry_->counter("analyzer.analyses");
    }
    return a;
}

} // namespace lll::core
