#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/span.hh"
#include "obs/timer.hh"
#include "xmem/xmem_harness.hh"

namespace lll::core
{

using util::ErrorCode;
using util::Status;
using workloads::Opt;
using workloads::OptSet;

namespace
{

/**
 * On-disk spill format generation.  v2 marks the capacity-managed
 * cache (entries participate in the spill-dir byte accounting and GC);
 * v1 files written by earlier releases parse as FailedPrecondition,
 * which lookup() treats as a plain miss — the stage re-simulates and
 * overwrites the stale file in the current format.
 */
constexpr int kSpillFormatVersion = 2;

uint64_t
fnv1a(const void *data, size_t len, uint64_t h = 1469598103934665603ULL)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ULL;
    }
    return h;
}

uint64_t
mixU64(uint64_t h, uint64_t v)
{
    return fnv1a(&v, sizeof(v), h);
}

uint64_t
mixD(uint64_t h, double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return mixU64(h, bits);
}

uint64_t
mixStr(uint64_t h, const std::string &s)
{
    h = mixU64(h, s.size());
    return fnv1a(s.data(), s.size(), h);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

std::string
fmtG17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
optsToken(const OptSet &opts)
{
    std::string out;
    for (size_t i = 0; i < opts.opts().size(); ++i) {
        if (i)
            out += ' ';
        out += workloads::optShortName(opts.opts()[i]);
    }
    return out;
}

/**
 * The spill file is flat JSON — every value sits at top level under a
 * dotted key — parsed by the state machine below rather than a JSON
 * library (the repo has none).  Keys and string values alternate, so
 * the scanner always knows whether a quote opens a key or a value.
 */
struct FlatJson
{
    std::map<std::string, std::string> scalars; //!< raw unquoted tokens
    std::map<std::string, std::string> strings;
    std::map<std::string, std::vector<std::string>> arrays;
    std::vector<std::string> missing; //!< fields asked for but absent
    std::vector<std::string> bad;     //!< fields that failed to parse

    double
    getD(const std::string &key)
    {
        auto it = scalars.find(key);
        if (it == scalars.end()) {
            missing.push_back(key);
            return 0.0;
        }
        char *end = nullptr;
        double v = std::strtod(it->second.c_str(), &end);
        if (end == it->second.c_str() || *end != '\0')
            bad.push_back(key);
        return v;
    }

    uint64_t
    getU(const std::string &key)
    {
        auto it = scalars.find(key);
        if (it == scalars.end()) {
            missing.push_back(key);
            return 0;
        }
        char *end = nullptr;
        uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
        if (end == it->second.c_str() || *end != '\0')
            bad.push_back(key);
        return v;
    }

    int
    getI(const std::string &key)
    {
        return static_cast<int>(getU(key));
    }

    bool
    getB(const std::string &key)
    {
        auto it = scalars.find(key);
        if (it == scalars.end()) {
            missing.push_back(key);
            return false;
        }
        if (it->second == "true")
            return true;
        if (it->second != "false")
            bad.push_back(key);
        return false;
    }

    std::string
    getS(const std::string &key)
    {
        auto it = strings.find(key);
        if (it == strings.end()) {
            missing.push_back(key);
            return std::string();
        }
        return it->second;
    }
};

/** Read a quoted string starting at text[i] == '"'; leaves i one past
 *  the closing quote.  False on an unterminated string. */
bool
scanQuoted(const std::string &text, size_t &i, std::string *out)
{
    out->clear();
    for (++i; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\' && i + 1 < text.size()) {
            char e = text[++i];
            switch (e) {
              case 'n': out->push_back('\n'); break;
              case 't': out->push_back('\t'); break;
              default:  out->push_back(e); break;
            }
        } else if (c == '"') {
            ++i;
            return true;
        } else {
            out->push_back(c);
        }
    }
    return false;
}

util::Result<FlatJson>
scanFlatJson(const std::string &text)
{
    FlatJson out;
    size_t i = 0;
    auto skipWs = [&] {
        while (i < text.size() &&
               (text[i] == ' ' || text[i] == '\n' || text[i] == '\r' ||
                text[i] == '\t' || text[i] == ',' || text[i] == '{' ||
                text[i] == '}')) {
            ++i;
        }
    };
    while (true) {
        skipWs();
        if (i >= text.size())
            return out;
        if (text[i] != '"') {
            return Status::error(ErrorCode::CorruptData,
                                 "spill file: expected a key at offset "
                                 "%zu, found '%c'", i, text[i]);
        }
        std::string key;
        if (!scanQuoted(text, i, &key)) {
            return Status::error(ErrorCode::CorruptData,
                                 "spill file: unterminated key");
        }
        skipWs();
        if (i >= text.size() || text[i] != ':') {
            return Status::error(ErrorCode::CorruptData,
                                 "spill file: key \"%s\" has no value",
                                 key.c_str());
        }
        ++i;
        skipWs();
        if (i >= text.size()) {
            return Status::error(ErrorCode::CorruptData,
                                 "spill file: key \"%s\" has no value",
                                 key.c_str());
        }
        if (text[i] == '"') {
            std::string value;
            if (!scanQuoted(text, i, &value)) {
                return Status::error(ErrorCode::CorruptData,
                                     "spill file: unterminated string "
                                     "for \"%s\"", key.c_str());
            }
            out.strings[key] = std::move(value);
        } else if (text[i] == '[') {
            ++i;
            std::vector<std::string> items;
            while (true) {
                skipWs();
                if (i >= text.size()) {
                    return Status::error(ErrorCode::CorruptData,
                                         "spill file: unterminated array "
                                         "for \"%s\"", key.c_str());
                }
                if (text[i] == ']') {
                    ++i;
                    break;
                }
                if (text[i] != '"') {
                    return Status::error(
                        ErrorCode::CorruptData,
                        "spill file: array \"%s\" holds a non-string",
                        key.c_str());
                }
                std::string item;
                if (!scanQuoted(text, i, &item)) {
                    return Status::error(ErrorCode::CorruptData,
                                         "spill file: unterminated string "
                                         "in array \"%s\"", key.c_str());
                }
                items.push_back(std::move(item));
            }
            out.arrays[key] = std::move(items);
        } else {
            std::string token;
            while (i < text.size() && text[i] != ',' &&
                   text[i] != '\n' && text[i] != '}') {
                token.push_back(text[i++]);
            }
            while (!token.empty() && (token.back() == ' ' ||
                                      token.back() == '\r')) {
                token.pop_back();
            }
            out.scalars[key] = std::move(token);
        }
    }
}

} // namespace

uint64_t
hashKernelSpec(const sim::KernelSpec &spec)
{
    uint64_t h = 1469598103934665603ULL;
    h = mixStr(h, spec.name);
    h = mixU64(h, spec.streams.size());
    for (const sim::StreamDesc &s : spec.streams) {
        h = mixU64(h, static_cast<uint64_t>(s.kind));
        h = mixU64(h, s.footprintLines);
        h = mixD(h, s.weight);
        h = mixU64(h, static_cast<uint64_t>(s.strideLines));
        h = mixU64(h, s.store);
        h = mixU64(h, s.sharedAcrossThreads);
        h = mixD(h, s.reuseFraction);
        h = mixU64(h, s.reuseWindow);
        h = mixU64(h, s.swPrefetchable);
    }
    h = mixD(h, spec.computeCyclesPerOp);
    h = mixU64(h, spec.window);
    h = mixD(h, spec.workPerOp);
    h = mixU64(h, spec.swPrefetchL2);
    h = mixU64(h, spec.swPrefetchDistance);
    h = mixD(h, spec.swPrefetchOverheadCycles);
    return h;
}

std::string
stageMetricsJson(const StageMetrics &m, const std::string &key)
{
    std::ostringstream out;
    out << "{\n";
    auto str = [&out](const char *name, const std::string &v) {
        out << "  \"" << name << "\": \"" << jsonEscape(v) << "\",\n";
    };
    auto num = [&out](const char *name, double v) {
        out << "  \"" << name << "\": " << fmtG17(v) << ",\n";
    };
    auto uns = [&out](const char *name, uint64_t v) {
        out << "  \"" << name << "\": " << v << ",\n";
    };
    auto bol = [&out](const char *name, bool v) {
        out << "  \"" << name << "\": " << (v ? "true" : "false")
            << ",\n";
    };

    uns("version", kSpillFormatVersion);
    str("key", key);
    str("label", m.label);
    str("opts", optsToken(m.opts));
    num("throughput", m.throughput);

    const sim::RunResult &r = m.run;
    num("run.measureSeconds", r.measureSeconds);
    num("run.workDone", r.workDone);
    num("run.throughput", r.throughput);
    uns("run.opsIssued", r.opsIssued);
    num("run.readGBs", r.readGBs);
    num("run.writeGBs", r.writeGBs);
    num("run.totalGBs", r.totalGBs);
    num("run.demandFraction", r.demandFraction);
    num("run.memUtilization", r.memUtilization);
    num("run.avgMemLatencyNs", r.avgMemLatencyNs);
    num("run.p50MemLatencyNs", r.p50MemLatencyNs);
    num("run.p95MemLatencyNs", r.p95MemLatencyNs);
    num("run.p99MemLatencyNs", r.p99MemLatencyNs);
    num("run.avgMemOutstanding", r.avgMemOutstanding);
    num("run.avgL1MshrOccupancy", r.avgL1MshrOccupancy);
    num("run.avgL2MshrOccupancy", r.avgL2MshrOccupancy);
    num("run.maxL1MshrOccupancy", r.maxL1MshrOccupancy);
    num("run.maxL2MshrOccupancy", r.maxL2MshrOccupancy);
    uns("run.l1FullStalls", r.l1FullStalls);
    uns("run.l2FullStalls", r.l2FullStalls);
    uns("run.l1DemandMisses", r.l1DemandMisses);
    uns("run.l1DemandHits", r.l1DemandHits);
    uns("run.l2DemandMisses", r.l2DemandMisses);
    uns("run.l2DemandHits", r.l2DemandHits);
    uns("run.hwPrefIssued", r.hwPrefIssued);
    uns("run.hwPrefUseful", r.hwPrefUseful);
    uns("run.swPrefIssued", r.swPrefIssued);
    uns("run.l2PrefetchDropped", r.l2PrefetchDropped);
    uns("run.memReadLines", r.memReadLines);
    uns("run.memWriteLines", r.memWriteLines);
    uns("run.memHwPrefetchLines", r.memHwPrefetchLines);
    uns("run.memSwPrefetchLines", r.memSwPrefetchLines);
    uns("run.eventsProcessed", r.eventsProcessed);

    const counters::RoutineProfile &p = m.profile;
    str("profile.routine", p.routine);
    num("profile.seconds", p.seconds);
    num("profile.readGBs", p.readGBs);
    num("profile.writeGBs", p.writeGBs);
    num("profile.totalGBs", p.totalGBs);
    num("profile.demandFraction", p.demandFraction);
    bol("profile.demandFractionKnown", p.demandFractionKnown);

    const Analysis &a = m.analysis;
    str("analysis.routine", a.routine);
    str("analysis.platform", a.platform);
    num("analysis.bwGBs", a.bwGBs);
    num("analysis.pctPeak", a.pctPeak);
    num("analysis.latencyNs", a.latencyNs);
    num("analysis.idleLatencyNs", a.idleLatencyNs);
    num("analysis.nAvg", a.nAvg);
    str("analysis.accessClass", accessClassName(a.accessClass));
    str("analysis.limitingLevel", mshrLevelName(a.limitingLevel));
    uns("analysis.limitingMshrs", a.limitingMshrs);
    num("analysis.headroom", a.headroom);
    bol("analysis.nearMshrLimit", a.nearMshrLimit);
    bol("analysis.nearBandwidthLimit", a.nearBandwidthLimit);
    num("analysis.maxAchievableGBs", a.maxAchievableGBs);
    num("analysis.demandFraction", a.demandFraction);
    bol("analysis.demandFractionKnown", a.demandFractionKnown);
    uns("analysis.activeStreams", a.activeStreams);
    bol("analysis.activeStreamsKnown", a.activeStreamsKnown);
    uns("analysis.coresUsed", static_cast<uint64_t>(a.coresUsed));
    bol("analysis.bwBelowProfileRange", a.bwBelowProfileRange);
    bol("analysis.bwAboveProfileRange", a.bwAboveProfileRange);
    out << "  \"analysis.warnings\": [";
    for (size_t i = 0; i < a.warnings.size(); ++i) {
        out << (i ? ", " : "") << "\"" << jsonEscape(a.warnings[i])
            << "\"";
    }
    out << "]\n}\n";
    return out.str();
}

util::Result<StageMetrics>
parseStageMetricsJson(const std::string &text,
                      const std::string &expect_key)
{
    util::Result<FlatJson> scanned = scanFlatJson(text);
    if (!scanned.ok())
        return scanned.status();
    FlatJson &f = *scanned;

    if (f.getU("version") != kSpillFormatVersion) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "spill file: unsupported format version");
    }
    const std::string key = f.getS("key");
    if (!expect_key.empty() && key != expect_key) {
        return Status::error(ErrorCode::FailedPrecondition,
                             "spill file: key mismatch (stored \"%s\")",
                             key.c_str());
    }

    StageMetrics m;
    m.label = f.getS("label");
    for (const std::string &token : [&f] {
             std::vector<std::string> toks;
             std::istringstream in(f.getS("opts"));
             std::string t;
             while (in >> t)
                 toks.push_back(t);
             return toks;
         }()) {
        std::optional<Opt> opt = workloads::optFromShortName(token);
        if (!opt) {
            return Status::error(ErrorCode::CorruptData,
                                 "spill file: unknown optimization "
                                 "\"%s\"", token.c_str());
        }
        m.opts = m.opts.with(*opt);
    }
    m.throughput = f.getD("throughput");

    sim::RunResult &r = m.run;
    r.measureSeconds = f.getD("run.measureSeconds");
    r.workDone = f.getD("run.workDone");
    r.throughput = f.getD("run.throughput");
    r.opsIssued = f.getU("run.opsIssued");
    r.readGBs = f.getD("run.readGBs");
    r.writeGBs = f.getD("run.writeGBs");
    r.totalGBs = f.getD("run.totalGBs");
    r.demandFraction = f.getD("run.demandFraction");
    r.memUtilization = f.getD("run.memUtilization");
    r.avgMemLatencyNs = f.getD("run.avgMemLatencyNs");
    r.p50MemLatencyNs = f.getD("run.p50MemLatencyNs");
    r.p95MemLatencyNs = f.getD("run.p95MemLatencyNs");
    r.p99MemLatencyNs = f.getD("run.p99MemLatencyNs");
    r.avgMemOutstanding = f.getD("run.avgMemOutstanding");
    r.avgL1MshrOccupancy = f.getD("run.avgL1MshrOccupancy");
    r.avgL2MshrOccupancy = f.getD("run.avgL2MshrOccupancy");
    r.maxL1MshrOccupancy = f.getD("run.maxL1MshrOccupancy");
    r.maxL2MshrOccupancy = f.getD("run.maxL2MshrOccupancy");
    r.l1FullStalls = f.getU("run.l1FullStalls");
    r.l2FullStalls = f.getU("run.l2FullStalls");
    r.l1DemandMisses = f.getU("run.l1DemandMisses");
    r.l1DemandHits = f.getU("run.l1DemandHits");
    r.l2DemandMisses = f.getU("run.l2DemandMisses");
    r.l2DemandHits = f.getU("run.l2DemandHits");
    r.hwPrefIssued = f.getU("run.hwPrefIssued");
    r.hwPrefUseful = f.getU("run.hwPrefUseful");
    r.swPrefIssued = f.getU("run.swPrefIssued");
    r.l2PrefetchDropped = f.getU("run.l2PrefetchDropped");
    r.memReadLines = f.getU("run.memReadLines");
    r.memWriteLines = f.getU("run.memWriteLines");
    r.memHwPrefetchLines = f.getU("run.memHwPrefetchLines");
    r.memSwPrefetchLines = f.getU("run.memSwPrefetchLines");
    r.eventsProcessed = f.getU("run.eventsProcessed");

    counters::RoutineProfile &p = m.profile;
    p.routine = f.getS("profile.routine");
    p.seconds = f.getD("profile.seconds");
    p.readGBs = f.getD("profile.readGBs");
    p.writeGBs = f.getD("profile.writeGBs");
    p.totalGBs = f.getD("profile.totalGBs");
    p.demandFraction = f.getD("profile.demandFraction");
    p.demandFractionKnown = f.getB("profile.demandFractionKnown");

    Analysis &a = m.analysis;
    a.routine = f.getS("analysis.routine");
    a.platform = f.getS("analysis.platform");
    a.bwGBs = f.getD("analysis.bwGBs");
    a.pctPeak = f.getD("analysis.pctPeak");
    a.latencyNs = f.getD("analysis.latencyNs");
    a.idleLatencyNs = f.getD("analysis.idleLatencyNs");
    a.nAvg = f.getD("analysis.nAvg");
    const std::string cls = f.getS("analysis.accessClass");
    if (cls == "random") {
        a.accessClass = AccessClass::Random;
    } else if (cls == "streaming") {
        a.accessClass = AccessClass::Streaming;
    } else {
        return Status::error(ErrorCode::CorruptData,
                             "spill file: unknown access class \"%s\"",
                             cls.c_str());
    }
    const std::string level = f.getS("analysis.limitingLevel");
    if (level == "L1") {
        a.limitingLevel = MshrLevel::L1;
    } else if (level == "L2") {
        a.limitingLevel = MshrLevel::L2;
    } else {
        return Status::error(ErrorCode::CorruptData,
                             "spill file: unknown MSHR level \"%s\"",
                             level.c_str());
    }
    a.limitingMshrs = static_cast<unsigned>(
        f.getU("analysis.limitingMshrs"));
    a.headroom = f.getD("analysis.headroom");
    a.nearMshrLimit = f.getB("analysis.nearMshrLimit");
    a.nearBandwidthLimit = f.getB("analysis.nearBandwidthLimit");
    a.maxAchievableGBs = f.getD("analysis.maxAchievableGBs");
    a.demandFraction = f.getD("analysis.demandFraction");
    a.demandFractionKnown = f.getB("analysis.demandFractionKnown");
    a.activeStreams = static_cast<unsigned>(
        f.getU("analysis.activeStreams"));
    a.activeStreamsKnown = f.getB("analysis.activeStreamsKnown");
    a.coresUsed = f.getI("analysis.coresUsed");
    a.bwBelowProfileRange = f.getB("analysis.bwBelowProfileRange");
    a.bwAboveProfileRange = f.getB("analysis.bwAboveProfileRange");
    auto warn = f.arrays.find("analysis.warnings");
    if (warn == f.arrays.end()) {
        return Status::error(ErrorCode::CorruptData,
                             "spill file: missing analysis.warnings");
    }
    a.warnings = warn->second;

    if (!f.missing.empty()) {
        return Status::error(ErrorCode::CorruptData,
                             "spill file: missing field \"%s\" (%zu "
                             "missing in total)",
                             f.missing.front().c_str(),
                             f.missing.size());
    }
    if (!f.bad.empty()) {
        return Status::error(ErrorCode::CorruptData,
                             "spill file: malformed value for \"%s\"",
                             f.bad.front().c_str());
    }
    return m;
}

std::string
ResultCache::stageKey(const platforms::Platform &platform,
                      const sim::KernelSpec &spec, const OptSet &opts,
                      uint64_t seed, double warmupUs, double measureUs,
                      int coresUsed)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "|spec:%016llx|opts:%s|seed:%llu|warmup:%.17g"
                  "|measure:%.17g|cores:%d",
                  static_cast<unsigned long long>(hashKernelSpec(spec)),
                  optsToken(opts).c_str(),
                  static_cast<unsigned long long>(seed), warmupUs,
                  measureUs, coresUsed);
    return platform.name + buf;
}

std::string
ResultCache::spillPath(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(
                      fnv1a(key.data(), key.size())));
    return spillDir_ + "/" + name;
}

void
ResultCache::touchLocked(Entry &e)
{
    lru_.splice(lru_.begin(), lru_, e.lruIt);
}

void
ResultCache::insertLocked(const std::string &key, const StageMetrics &m)
{
    lru_.push_front(key);
    entries_.emplace(key, Entry{m, lru_.begin()});
    enforceEntryCapLocked();
}

void
ResultCache::enforceEntryCapLocked()
{
    if (maxEntries_ == 0)
        return;
    while (entries_.size() > maxEntries_) {
        // Memory-only eviction: the spill file (when configured)
        // stays, so a later lookup reloads instead of re-simulating.
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
    }
}

bool
ResultCache::lookup(const std::string &key, StageMetrics *out)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        *out = it->second.metrics;
        touchLocked(it->second);
        ++stats_.hits;
        return true;
    }
    if (!spillDir_.empty()) {
        std::ifstream in(spillPath(key));
        if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            util::Result<StageMetrics> parsed =
                parseStageMetricsJson(text.str(), key);
            // A stale, corrupt or hash-colliding file is a miss, not an
            // error: the stage simply re-simulates and overwrites it.
            if (parsed.ok()) {
                *out = *parsed;
                insertLocked(key, parsed.take());
                ++stats_.hits;
                ++stats_.diskLoads;
                return true;
            }
        }
    }
    ++stats_.misses;
    return false;
}

void
ResultCache::insert(const std::string &key, const StageMetrics &m)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.count(key))
        return;
    insertLocked(key, m);
    if (!spillDir_.empty()) {
        const std::string path = spillPath(key);
        std::error_code ec;
        const auto old_size = std::filesystem::file_size(path, ec);
        std::ofstream out(path, std::ios::out | std::ios::trunc);
        if (out) {
            const std::string text = stageMetricsJson(m, key);
            out << text;
            ++stats_.spills;
            if (!ec)
                spillBytes_ -= std::min<uint64_t>(spillBytes_, old_size);
            spillBytes_ += text.size();
            gcSpillLocked();
        }
    }
}

util::Status
ResultCache::setSpillDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (dir.empty()) {
        spillDir_.clear();
        spillBytes_ = 0;
        return Status::okStatus();
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        return Status::error(ErrorCode::IoError,
                             "cannot create cache dir '%s': %s",
                             dir.c_str(), ec.message().c_str());
    }
    spillDir_ = dir;
    rescanSpillLocked();
    gcSpillLocked();
    return Status::okStatus();
}

void
ResultCache::setMaxEntries(size_t cap)
{
    std::lock_guard<std::mutex> lock(mu_);
    maxEntries_ = cap;
    enforceEntryCapLocked();
}

size_t
ResultCache::maxEntries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return maxEntries_;
}

void
ResultCache::setSpillBudget(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    spillBudget_ = bytes;
    gcSpillLocked();
}

uint64_t
ResultCache::spillBudget() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spillBudget_;
}

uint64_t
ResultCache::spillBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spillBytes_;
}

void
ResultCache::rescanSpillLocked()
{
    spillBytes_ = 0;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(spillDir_, ec)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".json") {
            continue;
        }
        std::error_code sec;
        const auto sz = de.file_size(sec);
        if (!sec)
            spillBytes_ += sz;
    }
}

void
ResultCache::gcSpillLocked()
{
    if (spillBudget_ == 0 || spillDir_.empty() ||
        spillBytes_ <= spillBudget_) {
        return;
    }
    struct SpillFile
    {
        std::filesystem::file_time_type mtime;
        uint64_t size;
        std::filesystem::path path;
    };
    std::vector<SpillFile> files;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(spillDir_, ec)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".json") {
            continue;
        }
        std::error_code sec;
        const auto sz = de.file_size(sec);
        const auto mt = de.last_write_time(sec);
        if (!sec)
            files.push_back({mt, sz, de.path()});
    }
    // Oldest first; path breaks mtime ties so the GC order (and with
    // it the eviction counter) is deterministic on coarse clocks.
    std::sort(files.begin(), files.end(),
              [](const SpillFile &a, const SpillFile &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });
    for (const SpillFile &f : files) {
        if (spillBytes_ <= spillBudget_)
            break;
        std::error_code rec;
        if (std::filesystem::remove(f.path, rec) && !rec) {
            spillBytes_ -= std::min<uint64_t>(spillBytes_, f.size);
            ++stats_.spillEvictions;
        }
    }
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    stats_ = Stats();
}

ResultCache &
ResultCache::global()
{
    static ResultCache instance;
    return instance;
}

std::vector<SweepUnit>
sweepUnits(const std::vector<platforms::Platform> &platforms,
           const std::vector<workloads::WorkloadPtr> &workloads)
{
    std::vector<SweepUnit> units;
    units.reserve(platforms.size() * workloads.size());
    for (const workloads::WorkloadPtr &w : workloads) {
        for (const platforms::Platform &p : platforms)
            units.push_back(SweepUnit{p, w.get()});
    }
    return units;
}

util::Result<std::vector<SweepRunner::UnitResult>>
SweepRunner::run(const std::vector<SweepUnit> &units)
{
    const size_t n = units.size();
    std::vector<UnitResult> results(n);
    if (n == 0)
        return results;

    // Latency profiles are measured (and their cache files written)
    // once per distinct platform before any worker starts, so the
    // fan-out never touches profile files concurrently.
    std::map<std::string, xmem::LatencyProfile> profiles;
    for (const SweepUnit &u : units) {
        if (profiles.count(u.platform.name))
            continue;
        util::Result<xmem::LatencyProfile> prof =
            xmem::XMemHarness().measureCachedChecked(
                u.platform, xmem::defaultProfilePath(u.platform));
        if (!prof.ok()) {
            return prof.status().withContext("sweep: profile for '%s'",
                                             u.platform.name.c_str());
        }
        profiles.emplace(u.platform.name, prof.take());
    }

    std::vector<Status> statuses(n);
    std::vector<std::vector<obs::SpanTracker::Stat>> spans(n);
    std::vector<obs::MetricRegistry> registries(
        params_.registry ? n : 0);

    std::atomic<size_t> next{0};
    auto workerLoop = [&] {
        for (size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1)) {
            const SweepUnit &u = units[i];
            UnitResult &res = results[i];
            res.platform = u.platform.name;
            res.workload = u.workload->name();

            // Workers record spans into their thread-local tracker;
            // reset() brackets each unit so stats() is this unit's
            // delta even when one thread runs several units.
            obs::SpanTracker &tracker = obs::SpanTracker::global();
            tracker.reset();

            Experiment::Params ep;
            ep.warmupUs = params_.warmupUs;
            ep.measureUs = params_.measureUs;
            ep.coresUsed = params_.coresUsed;
            ep.seed = params_.seed;
            ep.resultCache = params_.cache;
            ep.sampler = params_.sampler;
            if (params_.registry)
                ep.registry = &registries[i];

            util::Result<Experiment> exp = Experiment::create(
                u.platform, *u.workload,
                profiles.find(u.platform.name)->second, ep);
            if (!exp.ok()) {
                statuses[i] = exp.status().withContext(
                    "sweep unit %s/%s", res.platform.c_str(),
                    res.workload.c_str());
            } else {
                res.rows = exp->paperTable();
            }
            spans[i] = tracker.stats();
            tracker.reset();
        }
    };

    // Workers are always threads — even --jobs 1 — so the main thread's
    // span tracker sees sweep work only through the deterministic merge
    // below and serial/parallel runs take one code path.
    const size_t jobs = std::min<size_t>(
        n, params_.jobs > 1 ? static_cast<size_t>(params_.jobs) : 1);
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (size_t j = 0; j < jobs; ++j)
        pool.emplace_back(workerLoop);
    for (std::thread &t : pool)
        t.join();

    // Merge-after-join, in unit order regardless of completion order.
    for (size_t i = 0; i < n; ++i) {
        if (params_.registry)
            params_.registry->mergeFrom(registries[i]);
        obs::SpanTracker::global().merge(spans[i]);
    }
    for (size_t i = 0; i < n; ++i) {
        if (!statuses[i].ok())
            return statuses[i];
    }
    return results;
}

std::vector<SweepRunner::StageOutcome>
SweepRunner::runStages(const std::vector<StageUnit> &units)
{
    const size_t n = units.size();
    std::vector<StageOutcome> outcomes(n);
    if (n == 0)
        return outcomes;

    // Profile preload, as in run() — but a platform whose profile
    // cannot be loaded fails *its* units, not the batch: the service
    // contract is one status per request.
    std::map<std::string, xmem::LatencyProfile> profiles;
    std::map<std::string, Status> profile_errors;
    for (const StageUnit &u : units) {
        const std::string &name = u.platform.name;
        if (profiles.count(name) || profile_errors.count(name))
            continue;
        util::Result<xmem::LatencyProfile> prof =
            xmem::XMemHarness().measureCachedChecked(
                u.platform, xmem::defaultProfilePath(u.platform));
        if (prof.ok()) {
            profiles.emplace(name, prof.take());
        } else {
            profile_errors.emplace(
                name, prof.status().withContext("profile for '%s'",
                                                name.c_str()));
        }
    }

    std::vector<std::vector<obs::SpanTracker::Stat>> spans(n);
    std::vector<obs::MetricRegistry> registries(
        params_.registry ? n : 0);

    // Per-unit host timing: queue wait is measured from the fan-out
    // start so the service can attribute end-to-end request latency.
    obs::WallTimer fanout;

    std::atomic<size_t> next{0};
    auto workerLoop = [&] {
        for (size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1)) {
            const StageUnit &u = units[i];
            StageOutcome &out = outcomes[i];
            const double picked_up_ns = fanout.elapsedNs();
            out.queueWaitNs = picked_up_ns;

            obs::SpanTracker &tracker = obs::SpanTracker::global();
            tracker.reset();

            auto perr = profile_errors.find(u.platform.name);
            if (perr != profile_errors.end()) {
                out.status = perr->second;
                spans[i] = tracker.stats();
                out.simulateNs = fanout.elapsedNs() - picked_up_ns;
                continue;
            }

            Experiment::Params ep;
            ep.warmupUs = u.warmupUs;
            ep.measureUs = u.measureUs;
            ep.coresUsed = u.coresUsed;
            ep.seed = u.seed;
            ep.resultCache = params_.cache;
            ep.sampler = params_.sampler;
            if (params_.registry)
                ep.registry = &registries[i];

            util::Result<Experiment> exp = Experiment::create(
                u.platform, *u.workload,
                profiles.find(u.platform.name)->second, ep);
            if (!exp.ok()) {
                out.status = exp.status().withContext(
                    "stage unit %s/%s", u.platform.name.c_str(),
                    u.workload->name().c_str());
            } else {
                out.metrics = exp->stage(u.opts);
            }
            spans[i] = tracker.stats();
            tracker.reset();
            out.simulateNs = fanout.elapsedNs() - picked_up_ns;
        }
    };

    const size_t jobs = std::min<size_t>(
        n, params_.jobs > 1 ? static_cast<size_t>(params_.jobs) : 1);
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (size_t j = 0; j < jobs; ++j)
        pool.emplace_back(workerLoop);
    for (std::thread &t : pool)
        t.join();
    const double wall_ns = fanout.elapsedNs();

    // Merge-after-join, in unit order regardless of completion order.
    for (size_t i = 0; i < n; ++i) {
        if (params_.registry)
            params_.registry->mergeFrom(registries[i]);
        obs::SpanTracker::global().merge(spans[i]);
    }

    // Worker-utilization gauges: busy time over jobs x wall.  Wall-
    // clock valued, so they live only on this (service) path — run()'s
    // merged telemetry is byte-compared across --jobs values.
    if (params_.registry) {
        double busy_ns = 0.0;
        for (const StageOutcome &o : outcomes)
            busy_ns += o.simulateNs;
        params_.registry->setGauge("sweep.workers",
                                   static_cast<double>(jobs));
        params_.registry->setGauge("sweep.wall_ns", wall_ns);
        params_.registry->setGauge("sweep.busy_ns", busy_ns);
        params_.registry->setGauge(
            "sweep.worker_utilization",
            wall_ns > 0.0
                ? busy_ns / (static_cast<double>(jobs) * wall_ns)
                : 0.0);
    }
    return outcomes;
}

} // namespace lll::core
