#include "core/bounds.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/stats.hh"

namespace lll::core
{

SpecBounds
deriveBounds(const sim::SystemParams &sys, const sim::KernelSpec &spec)
{
    SpecBounds b;
    b.l1Mshrs = sys.l1.mshrs;
    b.l2Mshrs = sys.l2.mshrs;

    b.exposedMlpPerThread = std::min<double>(spec.window, sys.lqSize);
    b.exposedMlpPerCore = b.exposedMlpPerThread * sys.threadsPerCore;

    double random_weight = 0.0, total_weight = 0.0;
    for (const sim::StreamDesc &s : spec.streams) {
        if (!(s.weight > 0.0) || !std::isfinite(s.weight))
            continue;
        total_weight += s.weight;
        if (s.kind == sim::StreamDesc::Kind::Random)
            random_weight += s.weight;
    }
    b.randomWeight = total_weight > 0.0 ? random_weight / total_weight
                                        : 0.0;
    b.randomDominated = b.randomWeight > 0.5;
    b.prefetcherCovers = !b.randomDominated && sys.l2PrefetcherEnabled;

    // Unloaded memory round trip: both private cache lookups plus the
    // controller's request path, one bank service and the response path.
    double idle = ticksToNs(sys.l1.accessLat + sys.l2.accessLat +
                            (sys.hasL3 ? sys.l3.accessLat : 0));
    idle += sys.mem.frontLatencyNs + sys.mem.bankServiceNs +
            sys.mem.backLatencyNs;
    b.idleLatencyNs = idle;

    // Which queue caps in-flight lines: random misses hold L1 MSHRs for
    // the full memory latency; prefetcher-covered streaming fills the
    // (larger) L2 queue independently of the demand MLP the code
    // exposes.
    if (b.randomDominated) {
        b.effectiveMlpPerCore =
            std::min(b.exposedMlpPerCore, static_cast<double>(b.l1Mshrs));
    } else if (b.prefetcherCovers || spec.swPrefetchL2) {
        b.effectiveMlpPerCore = b.l2Mshrs;
    } else {
        b.effectiveMlpPerCore = std::min(
            b.exposedMlpPerCore,
            static_cast<double>(std::min(b.l1Mshrs, b.l2Mshrs)));
    }

    // Little's law (Eq. 2) solved for bandwidth: BW = n * cls / lat.
    b.peakGBs = sys.mem.peakGBs;
    if (idle > 0.0) {
        const double per_line = sys.lineBytes / idle; // GB/s per request
        b.l1CeilingGBs = sys.cores * b.l1Mshrs * per_line;
        b.l2CeilingGBs = sys.cores * b.l2Mshrs * per_line;
        b.mlpCeilingGBs = sys.cores * b.effectiveMlpPerCore * per_line;
        if (sys.cores > 0) {
            b.nAvgAtPeakPerCore =
                b.peakGBs * idle / sys.lineBytes / sys.cores;
        }
    }

    for (const sim::StreamDesc &s : spec.streams)
        b.footprintBytes += s.footprintLines * sys.lineBytes;
    b.l1CapacityBytes =
        static_cast<uint64_t>(sys.l1.sets) * sys.l1.ways * sys.lineBytes;
    b.l2CapacityBytes =
        static_cast<uint64_t>(sys.l2.sets) * sys.l2.ways * sys.lineBytes;

    return b;
}

std::string
boundsJson(const SpecBounds &b, int indent)
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    std::ostringstream out;
    char buf[160];
    auto num = [&buf](double v) {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return std::string(buf);
    };
    out << "{\n"
        << pad << "  \"exposed_mlp_per_thread\": "
        << num(b.exposedMlpPerThread) << ",\n"
        << pad << "  \"exposed_mlp_per_core\": "
        << num(b.exposedMlpPerCore) << ",\n"
        << pad << "  \"l1_mshrs\": " << b.l1Mshrs << ",\n"
        << pad << "  \"l2_mshrs\": " << b.l2Mshrs << ",\n"
        << pad << "  \"effective_mlp_per_core\": "
        << num(b.effectiveMlpPerCore) << ",\n"
        << pad << "  \"idle_latency_ns\": " << num(b.idleLatencyNs)
        << ",\n"
        << pad << "  \"peak_gbs\": " << num(b.peakGBs) << ",\n"
        << pad << "  \"l1_ceiling_gbs\": " << num(b.l1CeilingGBs)
        << ",\n"
        << pad << "  \"l2_ceiling_gbs\": " << num(b.l2CeilingGBs)
        << ",\n"
        << pad << "  \"mlp_ceiling_gbs\": " << num(b.mlpCeilingGBs)
        << ",\n"
        << pad << "  \"n_avg_at_peak_per_core\": "
        << num(b.nAvgAtPeakPerCore) << ",\n"
        << pad << "  \"footprint_bytes\": " << b.footprintBytes << ",\n"
        << pad << "  \"l1_capacity_bytes\": " << b.l1CapacityBytes
        << ",\n"
        << pad << "  \"l2_capacity_bytes\": " << b.l2CapacityBytes
        << ",\n"
        << pad << "  \"random_weight\": " << num(b.randomWeight) << ",\n"
        << pad << "  \"random_dominated\": "
        << (b.randomDominated ? "true" : "false") << ",\n"
        << pad << "  \"prefetcher_covers\": "
        << (b.prefetcherCovers ? "true" : "false") << ",\n"
        << pad << "  \"vacuous\": " << (b.vacuous() ? "true" : "false")
        << "\n"
        << pad << "}";
    return out.str();
}

} // namespace lll::core
