/**
 * @file
 * Roofline model with the paper's extra MSHR-imposed ceiling (Fig. 2).
 *
 * Beyond the classic min(peak FLOPs, BW * intensity) envelope, the paper
 * adds a bandwidth ceiling implied by a bounded MSHR queue: with at most
 * n_max misses in flight per core, achievable bandwidth cannot exceed
 *
 *     BW_mshr = cores * n_max * cls / lat(BW_mshr)
 *
 * a fixed point because the loaded latency itself rises with bandwidth.
 * For ISx on KNL this L1-MSHR ceiling (~256 GB/s) explains why the code
 * stalls far below the 400 GB/s roof and why prefetch-to-L2 — which
 * moves n_max from 12 to 32 — breaks through.
 */

#ifndef LLL_CORE_ROOFLINE_HH
#define LLL_CORE_ROOFLINE_HH

#include <vector>

#include "core/analyzer.hh"
#include "platforms/platform.hh"
#include "xmem/latency_profile.hh"

namespace lll::core
{

/**
 * Roofline calculator for one platform.
 */
class Roofline
{
  public:
    Roofline(const platforms::Platform &platform,
             xmem::LatencyProfile profile);

    double peakGFlops() const { return platform_.peakGFlops; }
    double peakGBs() const { return platform_.peakGBs; }

    /**
     * Bandwidth ceiling imposed by @p mshrs outstanding lines per core
     * (solves the loaded-latency fixed point).
     */
    double mshrCeilingGBs(unsigned mshrs, int cores_used) const;

    /** Convenience: ceiling of the given MSHR level's queue. */
    double mshrCeilingGBs(MshrLevel level, int cores_used) const;

    /**
     * Attainable GFlop/s at @p intensity (flops/byte) under the classic
     * roofline, optionally capped by an MSHR ceiling.
     */
    double attainableGFlops(double intensity, double bw_ceiling_gbs) const;
    double attainableGFlops(double intensity) const;

    /** Machine balance: intensity where bandwidth meets peak FLOPs. */
    double ridgeIntensity() const;

    struct SeriesPoint
    {
        double intensity;
        double classicGFlops;
        double l1CeilingGFlops;
        double l2CeilingGFlops;
    };

    /**
     * Log-spaced roofline series between two intensities, with the
     * classic roof and both MSHR-capped roofs (bench/plot fodder).
     */
    std::vector<SeriesPoint> series(double min_intensity,
                                    double max_intensity, int points,
                                    int cores_used) const;

  private:
    platforms::Platform platform_;
    xmem::LatencyProfile profile_;
};

} // namespace lll::core

#endif // LLL_CORE_ROOFLINE_HH
