/**
 * @file
 * A simplified Top-Down Microarchitectural Analysis (TMA) classifier —
 * the baseline the paper critiques (§I, §II).
 *
 * Reproduces the *kind* of output VTune's microarchitecture exploration
 * gives: pipeline-slot percentages, a memory-bound split into bandwidth-
 * vs latency-bound via a memory-controller occupancy threshold, and the
 * average load latency derived the way the load-latency facility sees it
 * (averaged over all loads, so prefetched streaming loads drag it to a
 * misleadingly small number — the paper's hpcg and SNAP anecdotes).
 */

#ifndef LLL_CORE_TMA_HH
#define LLL_CORE_TMA_HH

#include "platforms/platform.hh"
#include "sim/system.hh"

namespace lll::core
{

/** TMA-style classification of one measurement window. */
struct TmaReport
{
    // Top level, in percent of pipeline slots.
    double retiringPct = 0.0;
    double frontendPct = 0.0;
    double badSpeculationPct = 0.0;
    double backendPct = 0.0;

    // Backend split.
    double coreBoundPct = 0.0;
    double memoryBoundPct = 0.0;

    // Memory-bound split via the controller-occupancy heuristic.
    double bandwidthBoundPct = 0.0;
    double latencyBoundPct = 0.0;

    /** Average load latency in core cycles, averaged over *all* loads
     *  (the misleading small number the paper dissects). */
    double avgLoadLatencyCycles = 0.0;

    /** The controller occupancy the bw/lat split keyed on. */
    double memCtrlUtilization = 0.0;
};

/**
 * The baseline analyzer.
 */
class Tma
{
  public:
    struct Params
    {
        /** Controller utilization above which memory-bound cycles are
         *  attributed to "bandwidth bound". */
        double bandwidthThreshold = 0.45;
    };

    explicit Tma(const platforms::Platform &platform);
    Tma(const platforms::Platform &platform, Params params);

    TmaReport analyze(const sim::RunResult &run) const;

  private:
    platforms::Platform platform_;
    Params params_;
};

} // namespace lll::core

#endif // LLL_CORE_TMA_HH
