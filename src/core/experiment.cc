#include "core/experiment.hh"

#include "util/logging.hh"

namespace lll::core
{

Experiment::Experiment(const platforms::Platform &platform,
                       const workloads::Workload &workload,
                       xmem::LatencyProfile profile)
    : Experiment(platform, workload, std::move(profile), Params())
{
}

Experiment::Experiment(const platforms::Platform &platform,
                       const workloads::Workload &workload,
                       xmem::LatencyProfile profile, Params params)
    : platform_(platform), workload_(workload),
      analyzer_(platform, std::move(profile)), params_(params),
      coresUsed_(params.coresUsed > 0 ? params.coresUsed
                                      : platform.totalCores)
{
}

const StageMetrics &
Experiment::stage(const workloads::OptSet &opts)
{
    const std::string label = opts.label();
    auto it = cache_.find(label);
    if (it != cache_.end())
        return it->second;

    sim::KernelSpec spec = workload_.spec(platform_, opts);
    sim::SystemParams sp = platform_.sysParams(coresUsed_, opts.smtWays());
    sp.seed = params_.seed;
    sim::System sys(sp, spec);
    double warmup = params_.warmupUs > 0 ? params_.warmupUs
                                         : workload_.warmupUs();
    double measure = params_.measureUs > 0 ? params_.measureUs
                                           : workload_.measureUs();
    sim::RunResult run = sys.run(warmup, measure);

    counters::RoutineProfiler profiler(platform_);
    counters::RoutineProfile profile =
        profiler.profile(run, workload_.routine());

    StageMetrics m;
    m.opts = opts;
    m.label = label;
    m.run = run;
    m.profile = profile;
    // Prefetch-to-L2 moves a random routine's outstanding misses into
    // the L2 MSHR queue, so the analysis tracks the limiting level the
    // way the paper reasons about ISx after software prefetching.
    bool random = workload_.randomDominated() &&
                  !opts.has(workloads::Opt::SwPrefetchL2);
    m.analysis = analyzer_.analyze(profile, coresUsed_, random);
    m.throughput = run.throughput;

    return cache_.emplace(label, std::move(m)).first->second;
}

double
Experiment::speedup(const workloads::OptSet &from,
                    const workloads::OptSet &to)
{
    double base = stage(from).throughput;
    double opt = stage(to).throughput;
    lll_assert(base > 0.0, "zero baseline throughput");
    return opt / base;
}

std::vector<TableRow>
Experiment::paperTable()
{
    std::vector<TableRow> rows;
    for (const workloads::ExperimentRow &er :
         workload_.paperRows(platform_)) {
        const StageMetrics &src = stage(er.source);
        TableRow row;
        row.source = src.label;
        row.bwGBs = src.analysis.bwGBs;
        row.pctPeak = src.analysis.pctPeak;
        row.latencyNs = src.analysis.latencyNs;
        row.nAvg = src.analysis.nAvg;
        row.optLabel = er.optLabel;
        row.paperSpeedup = er.paperSpeedup;
        row.speedup = er.applied ? speedup(er.source, *er.applied) : 0.0;
        rows.push_back(row);
    }
    return rows;
}

} // namespace lll::core
