#include "core/experiment.hh"

#include "core/bounds.hh"
#include "core/sweep.hh"
#include "obs/span.hh"
#include "util/logging.hh"

namespace lll::core
{

Experiment::Experiment(const platforms::Platform &platform,
                       const workloads::Workload &workload,
                       xmem::LatencyProfile profile)
    : Experiment(platform, workload, std::move(profile), Params())
{
}

Experiment::Experiment(const platforms::Platform &platform,
                       const workloads::Workload &workload,
                       xmem::LatencyProfile profile, Params params)
    : platform_(platform), workload_(workload),
      analyzer_(platform, std::move(profile)), params_(params),
      coresUsed_(params.coresUsed > 0 ? params.coresUsed
                                      : platform.totalCores)
{
    analyzer_.setRegistry(params_.registry);
}

util::Result<Experiment>
Experiment::create(const platforms::Platform &platform,
                   const workloads::Workload &workload,
                   xmem::LatencyProfile profile)
{
    return create(platform, workload, std::move(profile), Params());
}

util::Result<Experiment>
Experiment::create(const platforms::Platform &platform,
                   const workloads::Workload &workload,
                   xmem::LatencyProfile profile, Params params)
{
    using util::ErrorCode;
    using util::Status;
    LLL_RETURN_IF_ERROR(
        Analyzer::validateInputs(platform, profile)
            .withContext("experiment '%s' on '%s'",
                         workload.name().c_str(), platform.name.c_str()));
    int cores = params.coresUsed > 0 ? params.coresUsed
                                     : platform.totalCores;
    util::Result<sim::SystemParams> sp = platform.trySysParams(cores, 1);
    if (!sp.ok())
        return sp.status().withContext("experiment '%s'",
                                       workload.name().c_str());
    if (params.warmupUs < 0.0 || params.measureUs < 0.0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "experiment '%s': negative window "
                             "(warmup %g us, measure %g us)",
                             workload.name().c_str(), params.warmupUs,
                             params.measureUs);
    }

    // The lint gate: a config the static analyzer calls vacuous
    // (LLL-LINT-102/106) would simulate without error and then corrupt
    // every conclusion drawn from the numbers, so refuse it here the
    // same way `lll lint` flags it.  The base variant decides — the
    // optimization walk only ever starts from it.
    const sim::KernelSpec base_spec =
        workload.spec(platform, workloads::OptSet());
    const SpecBounds b = deriveBounds(*sp, base_spec);
    if (b.vacuous()) {
        if (b.footprintBytes <= b.l1CapacityBytes) {
            return Status::error(
                ErrorCode::FailedPrecondition,
                "experiment '%s' on '%s' is vacuous (LLL-LINT-106): "
                "the %llu-byte footprint fits in the %llu-byte L1, so "
                "the kernel never exercises the memory system; run "
                "`lll lint %s %s` for the full report",
                workload.name().c_str(), platform.name.c_str(),
                static_cast<unsigned long long>(b.footprintBytes),
                static_cast<unsigned long long>(b.l1CapacityBytes),
                workload.name().c_str(), platform.name.c_str());
        }
        return Status::error(
            ErrorCode::FailedPrecondition,
            "experiment '%s' on '%s' with %d cores is vacuous "
            "(LLL-LINT-102): effective MLP %.1f/core sustains at most "
            "%.1f of %.0f GB/s peak (%.1f%%); run `lll lint %s %s` for "
            "the full report",
            workload.name().c_str(), platform.name.c_str(), cores,
            b.effectiveMlpPerCore, b.mlpCeilingGBs, b.peakGBs,
            100.0 * b.mlpCeilingGBs / b.peakGBs, workload.name().c_str(),
            platform.name.c_str());
    }
    return Experiment(platform, workload, std::move(profile), params);
}

const StageMetrics &
Experiment::stage(const workloads::OptSet &opts)
{
    const std::string label = opts.label();
    auto it = cache_.find(label);
    if (it != cache_.end())
        return it->second;

    obs::ScopedSpan stage_span("stage[" + label + "]");

    sim::KernelSpec spec = workload_.spec(platform_, opts);
    double warmup = params_.warmupUs > 0 ? params_.warmupUs
                                         : workload_.warmupUs();
    double measure = params_.measureUs > 0 ? params_.measureUs
                                           : workload_.measureUs();

    // The cross-experiment memo table: a hit replays the stored
    // StageMetrics — no System, no event queue, no simulate/profile/
    // analyze spans — because the key captures every input the
    // simulation is a pure function of.
    std::string key;
    if (params_.resultCache) {
        key = ResultCache::stageKey(platform_, spec, opts, params_.seed,
                                    warmup, measure, coresUsed_);
        StageMetrics cached;
        if (params_.resultCache->lookup(key, &cached)) {
            if (params_.registry) {
                params_.registry->setGauge(
                    "analyzer.variant." + label + ".n_avg",
                    cached.analysis.nAvg);
                params_.registry->setGauge(
                    "analyzer.variant." + label + ".bw_gbps",
                    cached.analysis.bwGBs);
            }
            return cache_.emplace(label, std::move(cached))
                .first->second;
        }
    }

    sim::SystemParams sp = platform_.sysParams(coresUsed_, opts.smtWays());
    sp.seed = params_.seed;
    sim::System sys(sp, spec);
    if (params_.registry)
        sys.attachObservability(*params_.registry, params_.sampler);
    sim::RunResult run;
    {
        obs::ScopedSpan sim_span("simulate");
        run = sys.run(warmup, measure);
    }

    counters::RoutineProfiler profiler(platform_);
    counters::RoutineProfile profile;
    {
        LLL_SPAN("profile");
        profile = profiler.profile(run, workload_.routine());
    }

    StageMetrics m;
    m.opts = opts;
    m.label = label;
    m.run = run;
    m.profile = profile;
    // Prefetch-to-L2 moves a random routine's outstanding misses into
    // the L2 MSHR queue, so the analysis tracks the limiting level the
    // way the paper reasons about ISx after software prefetching.
    bool random = workload_.randomDominated() &&
                  !opts.has(workloads::Opt::SwPrefetchL2);
    {
        LLL_SPAN("analyze");
        m.analysis = analyzer_.analyze(profile, coresUsed_, random);
    }
    // The analyzer only sees counters; the spec knows how many
    // concurrent streams the routine drives, which the recipe's
    // fusion/distribution dual branches on.
    m.analysis.activeStreams = static_cast<unsigned>(spec.streams.size());
    m.analysis.activeStreamsKnown = true;
    m.throughput = run.throughput;

    if (params_.resultCache)
        params_.resultCache->insert(key, m);

    if (params_.registry) {
        params_.registry->setGauge("analyzer.variant." + label + ".n_avg",
                                   m.analysis.nAvg);
        params_.registry->setGauge(
            "analyzer.variant." + label + ".bw_gbps", m.analysis.bwGBs);
    }

    return cache_.emplace(label, std::move(m)).first->second;
}

double
Experiment::speedup(const workloads::OptSet &from,
                    const workloads::OptSet &to)
{
    double base = stage(from).throughput;
    double opt = stage(to).throughput;
    lll_assert(base > 0.0, "zero baseline throughput");
    return opt / base;
}

std::vector<TableRow>
Experiment::paperTable()
{
    std::vector<TableRow> rows;
    for (const workloads::ExperimentRow &er :
         workload_.paperRows(platform_)) {
        const StageMetrics &src = stage(er.source);
        TableRow row;
        row.source = src.label;
        row.bwGBs = src.analysis.bwGBs;
        row.pctPeak = src.analysis.pctPeak;
        row.latencyNs = src.analysis.latencyNs;
        row.nAvg = src.analysis.nAvg;
        row.optLabel = er.optLabel;
        row.paperSpeedup = er.paperSpeedup;
        row.speedup = er.applied ? speedup(er.source, *er.applied) : 0.0;
        rows.push_back(row);
    }
    return rows;
}

} // namespace lll::core
