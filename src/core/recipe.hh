/**
 * @file
 * The optimization recipe — paper Figure 1 as an explicit decision
 * engine.
 *
 * Given an Analysis (observed MLP vs the limiting MSHR queue, bandwidth
 * vs peak achievable), the recipe says which program optimizations can
 * still pay off, which cannot, and why — the "concrete actionable steps"
 * the paper finds missing from existing tools.
 */

#ifndef LLL_CORE_RECIPE_HH
#define LLL_CORE_RECIPE_HH

#include <string>
#include <vector>

#include "core/analyzer.hh"
#include "workloads/optimization.hh"

namespace lll::core
{

/** One piece of advice about one optimization. */
struct Recommendation
{
    workloads::Opt opt;
    bool recommended = false;
    std::string rationale;
};

/** The recipe's verdict for one routine state. */
struct RecipeDecision
{
    /** Headline situation, e.g. "L1 MSHRQ effectively full". */
    std::string summary;

    /** Per-optimization advice, recommended entries first. */
    std::vector<Recommendation> recommendations;

    /** True when the recipe says stop (no MLP headroom anywhere and no
     *  occupancy-reducing option left untried). */
    bool stop = false;

    /** Convenience: recommended opts in priority order. */
    std::vector<workloads::Opt> recommendedOpts() const;
};

/**
 * The Figure 1 flowchart.
 */
class Recipe
{
  public:
    /**
     * Active-stream count at which a full MSHR queue is treated as
     * stream contention: fission (Opt::Distribution) is advised instead
     * of fusion, which would add concurrent streams to an already
     * contended queue.  The dual case (few streams) keeps fusion.
     */
    static constexpr unsigned kStreamHeavy = 4;

    explicit Recipe(const platforms::Platform &platform);

    /**
     * Advise on the next optimization for a routine in state @p applied
     * with measurements @p analysis.
     */
    RecipeDecision advise(const Analysis &analysis,
                          const workloads::OptSet &applied) const;

  private:
    platforms::Platform platform_;
};

} // namespace lll::core

#endif // LLL_CORE_RECIPE_HH
