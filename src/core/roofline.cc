#include "core/roofline.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lll::core
{

Roofline::Roofline(const platforms::Platform &platform,
                   xmem::LatencyProfile profile)
    : platform_(platform), profile_(std::move(profile))
{
    lll_assert(!profile_.empty(), "roofline needs a latency profile");
}

double
Roofline::mshrCeilingGBs(unsigned mshrs, int cores_used) const
{
    lll_assert(mshrs > 0 && cores_used > 0, "bad MSHR ceiling query");
    // Fixed point of bw = cores * mshrs * cls / lat(bw); the right side
    // is decreasing in bw, so simple damped iteration converges fast.
    const double lines =
        static_cast<double>(mshrs) * cores_used * platform_.lineBytes;
    double bw = platform_.peakGBs * 0.5;
    for (int i = 0; i < 64; ++i) {
        double next = lines / profile_.latencyAt(bw);
        bw = 0.5 * (bw + next);
    }
    return std::min(bw, platform_.peakGBs);
}

double
Roofline::mshrCeilingGBs(MshrLevel level, int cores_used) const
{
    unsigned mshrs = level == MshrLevel::L1 ? platform_.l1Mshrs
                                            : platform_.l2Mshrs;
    return mshrCeilingGBs(mshrs, cores_used);
}

double
Roofline::attainableGFlops(double intensity, double bw_ceiling_gbs) const
{
    lll_assert(intensity > 0.0, "intensity must be positive");
    return std::min(platform_.peakGFlops, bw_ceiling_gbs * intensity);
}

double
Roofline::attainableGFlops(double intensity) const
{
    return attainableGFlops(intensity, platform_.peakGBs);
}

double
Roofline::ridgeIntensity() const
{
    return platform_.peakGFlops / platform_.peakGBs;
}

std::vector<Roofline::SeriesPoint>
Roofline::series(double min_intensity, double max_intensity, int points,
                 int cores_used) const
{
    lll_assert(points >= 2 && min_intensity > 0.0 &&
                   max_intensity > min_intensity,
               "bad roofline series request");
    const double l1_bw = mshrCeilingGBs(MshrLevel::L1, cores_used);
    const double l2_bw = mshrCeilingGBs(MshrLevel::L2, cores_used);

    std::vector<SeriesPoint> out;
    out.reserve(points);
    const double log_min = std::log2(min_intensity);
    const double log_max = std::log2(max_intensity);
    for (int i = 0; i < points; ++i) {
        double t = static_cast<double>(i) / (points - 1);
        double intensity = std::exp2(log_min + t * (log_max - log_min));
        SeriesPoint pt;
        pt.intensity = intensity;
        pt.classicGFlops = attainableGFlops(intensity);
        pt.l1CeilingGFlops = attainableGFlops(intensity, l1_bw);
        pt.l2CeilingGFlops = attainableGFlops(intensity, l2_bw);
        out.push_back(pt);
    }
    return out;
}

} // namespace lll::core
