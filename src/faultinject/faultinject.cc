#include "faultinject/faultinject.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/analyzer.hh"
#include "counters/counter_bank.hh"
#include "obs/export.hh"
#include "obs/registry.hh"
#include "platforms/platform.hh"
#include "sim/validator.hh"
#include "util/logging.hh"
#include "util/status.hh"
#include "workloads/workload.hh"
#include "xmem/latency_profile.hh"

namespace lll::faultinject
{

using util::ErrorCode;
using util::Status;

bool
Report::allPassed() const
{
    return failures() == 0;
}

int
Report::failures() const
{
    int n = 0;
    for (const ScenarioResult &r : entries)
        n += r.passed ? 0 : 1;
    return n;
}

std::string
Report::render(bool verbose) const
{
    std::ostringstream out;
    for (const ScenarioResult &r : entries) {
        out << (r.passed ? "PASS" : "FAIL") << "  " << r.scenario;
        if (!r.passed || verbose)
            out << "\n      " << r.detail;
        out << "\n";
    }
    out << entries.size() - failures() << "/" << entries.size()
        << " scenarios passed\n";
    return out.str();
}

// --- Corruptors ------------------------------------------------------

std::string
truncateMidLine(const std::string &text)
{
    size_t last = text.find_last_of('\n', text.size() - 2);
    if (last == std::string::npos)
        return text.substr(0, text.size() / 2);
    // Keep roughly half of the final line.
    size_t keep = last + 1 + (text.size() - last - 1) / 2;
    return text.substr(0, keep);
}

std::string
injectGarbageLine(const std::string &text, Rng &rng)
{
    std::vector<size_t> starts{0};
    for (size_t i = 0; i + 1 < text.size(); ++i) {
        if (text[i] == '\n')
            starts.push_back(i + 1);
    }
    size_t at = starts[rng.below(static_cast<uint32_t>(starts.size()))];
    return text.substr(0, at) + "bogus_key 42 nonsense\n" + text.substr(at);
}

std::string
negatePoint(const std::string &text)
{
    size_t at = text.find("point ");
    if (at == std::string::npos)
        return text;
    return text.substr(0, at) + "point 1.0 -5.0\n" +
           text.substr(text.find('\n', at) + 1);
}

std::string
flipRandomBytes(const std::string &text, Rng &rng, int flips)
{
    std::string out = text;
    for (int i = 0; i < flips && !out.empty(); ++i) {
        size_t at = rng.below(static_cast<uint32_t>(out.size()));
        out[at] = static_cast<char>(rng.below(256));
    }
    return out;
}

// --- Scenario helpers ------------------------------------------------

namespace
{

/** A small, fast platform for the simulator-driven scenarios. */
platforms::Platform
fiPlatform()
{
    platforms::Platform p = platforms::skl();
    p.name = "fi";
    p.totalCores = 2;
    p.peakGBs = 24.0;
    p.peakGFlops = 100.0;
    p.proto.name = "fi";
    p.proto.mem.peakGBs = 24.0;
    return p;
}

xmem::LatencyProfile
fiProfile()
{
    std::vector<xmem::LatencyProfile::Point> pts;
    for (double frac : {0.05, 0.2, 0.5, 0.8, 0.92}) {
        pts.push_back({frac * 24.0, 80.0 + 120.0 * frac * frac});
    }
    return xmem::LatencyProfile("fi", 24.0, std::move(pts));
}

sim::KernelSpec
fiKernel()
{
    sim::KernelSpec k;
    k.name = "fi-kernel";
    sim::StreamDesc s;
    s.kind = sim::StreamDesc::Kind::Random;
    s.footprintLines = 1 << 14;
    k.streams.push_back(s);
    k.window = 4;
    k.computeCyclesPerOp = 2.0;
    return k;
}

/** Expect @p result's status to carry @p want. */
template <typename T>
ScenarioResult
expectCode(std::string scenario, const util::Result<T> &result,
           ErrorCode want)
{
    ScenarioResult r;
    r.scenario = std::move(scenario);
    if (result.ok()) {
        r.detail = lll::detail::format("expected %s, got a value",
                                       util::errorCodeName(want));
    } else {
        r.passed = result.status().code() == want;
        r.detail = result.status().toString();
        if (!r.passed) {
            r.detail = lll::detail::format("expected %s, got: %s",
                                           util::errorCodeName(want),
                                           r.detail.c_str());
        }
    }
    return r;
}

ScenarioResult
expectStatusCode(std::string scenario, const Status &status, ErrorCode want)
{
    ScenarioResult r;
    r.scenario = std::move(scenario);
    r.passed = status.code() == want;
    r.detail = status.toString();
    if (!r.passed) {
        r.detail = lll::detail::format("expected %s, got: %s",
                                       util::errorCodeName(want),
                                       r.detail.c_str());
    }
    return r;
}

/** Write @p text under the scratch dir and load it as a profile. */
util::Result<xmem::LatencyProfile>
loadCorrupted(const std::filesystem::path &dir, const char *name,
              const std::string &text)
{
    std::filesystem::path p = dir / name;
    std::ofstream out(p);
    out << text;
    out.close();
    return xmem::LatencyProfile::load(p.string());
}

ScenarioResult
outOfRangeBwScenario(bool above)
{
    ScenarioResult r;
    r.scenario = above ? "analyzer-bw-above-range"
                       : "analyzer-bw-below-range";
    obs::MetricRegistry reg;
    core::Analyzer analyzer(fiPlatform(), fiProfile());
    analyzer.setRegistry(&reg);

    counters::RoutineProfile routine;
    routine.routine = above ? "too-hot" : "too-cold";
    routine.totalGBs = above ? 500.0 : 0.01;

    core::Analysis a = analyzer.analyze(routine, 2);
    bool flagged = above ? a.bwAboveProfileRange : a.bwBelowProfileRange;
    uint64_t warned = reg.counter("input_warnings_total").value();
    std::string json = obs::exportJson(reg);
    bool exported = json.find("clamped extrapolation") != std::string::npos;

    r.passed = flagged && !a.warnings.empty() && warned >= 1 && exported;
    r.detail = lll::detail::format(
        "flagged=%d warnings=%zu input_warnings_total=%llu in_json=%d "
        "latency=%.1f ns",
        flagged, a.warnings.size(),
        static_cast<unsigned long long>(warned), exported, a.latencyNs);
    return r;
}

ScenarioResult
wedgedSimScenario()
{
    ScenarioResult r;
    r.scenario = "watchdog-wedged-sim";

    sim::SystemParams sp = fiPlatform().sysParams(1, 1);
    sp.watchdog.cadenceUs = 1.0;
    sp.watchdog.maxStrikes = 2;

    // A "kernel" that computes for a simulated millisecond between
    // memory ops: from the event queue's point of view the run is
    // wedged — exactly the hang signature the watchdog exists for.
    sim::KernelSpec wedge = fiKernel();
    wedge.computeCyclesPerOp = 1e12;

    obs::MetricRegistry reg;
    sim::System sys(sp, wedge);
    sys.attachObservability(reg);
    util::Result<sim::RunResult> run = sys.runChecked(2.0, 5.0);

    uint64_t errors = reg.counter("sim_errors_total").value();
    if (run.ok()) {
        r.detail = "wedged run completed instead of tripping the watchdog";
        return r;
    }
    bool code_ok = run.status().code() == ErrorCode::DeadlineExceeded;
    bool has_diag =
        run.status().message().find("events=") != std::string::npos;
    r.passed = code_ok && has_diag && errors >= 1;
    r.detail = lll::detail::format("sim_errors_total=%llu status: %s",
                                   static_cast<unsigned long long>(errors),
                                   run.status().toString().c_str());
    return r;
}

ScenarioResult
configFuzzScenario(const Options &opts)
{
    ScenarioResult r;
    r.scenario = "config-fuzz";
    Rng rng(opts.seed, 0x51e57e57);
    int rejected = 0;
    int simulated = 0;

    for (int i = 0; i < opts.fuzzIterations; ++i) {
        sim::SystemParams sp = fiPlatform().sysParams(1, 1);
        sim::KernelSpec spec = fiKernel();
        spec.streams.front().footprintLines = 1 << 12;

        // A few random mutations per iteration, drawn from the knobs a
        // config file (or a hostile user) could reach.
        int mutations = 1 + rng.below(4);
        for (int m = 0; m < mutations; ++m) {
            switch (rng.below(12)) {
              case 0: sp.l1.sets = rng.below(300); break;
              case 1: sp.l1.mshrs = rng.below(6); break;
              case 2: sp.l2.ways = rng.below(4); break;
              case 3: sp.lqSize = rng.below(8); break;
              case 4: sp.threadsPerCore = rng.below(6); break;
              case 5: sp.mem.peakGBs = rng.uniform() * 60.0 - 10.0; break;
              case 6: sp.mem.bankServiceNs = rng.uniform() * 40.0 - 5.0;
                      break;
              case 7: sp.mem.banksOverride = rng.below(4); break;
              case 8: spec.window = rng.below(20); break;
              case 9: spec.streams.front().weight =
                          rng.uniform() * 3.0 - 1.0;
                      break;
              case 10: spec.streams.front().reuseFraction =
                           rng.uniform() * 2.0 - 0.5;
                       break;
              case 11: spec.computeCyclesPerOp = rng.uniform() * 8.0;
                       break;
            }
        }

        Status sp_ok = sim::validateSystemParams(sp);
        Status spec_ok = sim::validateKernelSpec(spec);
        if (!sp_ok.ok() || !spec_ok.ok()) {
            ++rejected;
            continue;
        }
        // The validator accepted it, so construction and a short run
        // must be safe (errors are fine; aborts are not).
        sim::System sys(sp, spec);
        util::Result<sim::RunResult> run = sys.runChecked(0.5, 1.0);
        (void)run;
        ++simulated;
    }

    r.passed = true;
    r.detail = lll::detail::format(
        "%d iterations: %d rejected by the validator, %d simulated "
        "without aborting", opts.fuzzIterations, rejected, simulated);
    return r;
}

ScenarioResult
profileByteFuzzScenario(const Options &opts)
{
    ScenarioResult r;
    r.scenario = "profile-byte-fuzz";
    Rng rng(opts.seed, 0xf00df00d);
    const std::string clean = fiProfile().serialize();
    int ok = 0;
    int corrupt = 0;

    for (int i = 0; i < opts.fuzzIterations; ++i) {
        std::string mangled = clean;
        if (rng.chance(0.3))
            mangled = mangled.substr(
                0, rng.below(static_cast<uint32_t>(mangled.size() + 1)));
        mangled = flipRandomBytes(mangled, rng, 1 + rng.below(8));

        util::Result<xmem::LatencyProfile> parsed =
            xmem::LatencyProfile::parse(mangled);
        if (parsed.ok())
            ++ok;
        else
            ++corrupt;
    }

    // Reaching this line is the assertion: no mangled input crashed.
    r.passed = true;
    r.detail = lll::detail::format(
        "%d iterations: %d still parsed, %d rejected as corrupt, 0 "
        "crashes", opts.fuzzIterations, ok, corrupt);
    return r;
}

} // namespace

Report
runAll(const Options &opts)
{
    Report report;
    Rng rng(opts.seed);

    std::filesystem::path dir =
        opts.scratchDir.empty()
            ? std::filesystem::temp_directory_path() /
                  ("lll-selftest-" + std::to_string(opts.seed))
            : std::filesystem::path(opts.scratchDir);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    // Missing and damaged profile files.
    report.entries.push_back(expectCode(
        "profile-missing",
        xmem::LatencyProfile::load((dir / "does-not-exist.profile")
                                       .string()),
        ErrorCode::NotFound));
    const std::string clean = fiProfile().serialize();
    report.entries.push_back(
        expectCode("profile-truncated",
                   loadCorrupted(dir, "truncated.profile",
                                 truncateMidLine(clean)),
                   ErrorCode::CorruptData));
    report.entries.push_back(
        expectCode("profile-garbage-key",
                   loadCorrupted(dir, "garbage.profile",
                                 injectGarbageLine(clean, rng)),
                   ErrorCode::CorruptData));
    report.entries.push_back(
        expectCode("profile-negative-point",
                   loadCorrupted(dir, "negative.profile",
                                 negatePoint(clean)),
                   ErrorCode::CorruptData));
    report.entries.push_back(expectCode(
        "profile-empty-file",
        loadCorrupted(dir, "empty.profile", ""), ErrorCode::CorruptData));

    // Unknown names.
    report.entries.push_back(expectCode(
        "platform-unknown", platforms::findPlatform("vax11"),
        ErrorCode::NotFound));
    report.entries.push_back(expectCode(
        "workload-unknown", workloads::findWorkload("lulesh"),
        ErrorCode::NotFound));

    // The shipped platforms must satisfy their own validator.
    {
        ScenarioResult r;
        r.scenario = "platforms-self-validate";
        r.passed = true;
        for (const platforms::Platform &p : platforms::allPlatforms()) {
            Status s = platforms::validatePlatform(p);
            if (!s.ok()) {
                r.passed = false;
                r.detail = s.toString();
                break;
            }
        }
        if (r.passed)
            r.detail = "skl, knl, a64fx all validate";
        report.entries.push_back(r);
    }

    // Inconsistent configurations.
    {
        sim::SystemParams sp = fiPlatform().sysParams(1, 1);
        sp.l1.mshrs = 0;
        report.entries.push_back(expectStatusCode(
            "config-zero-mshrs", sim::validateSystemParams(sp),
            ErrorCode::FailedPrecondition));
    }
    {
        sim::SystemParams sp = fiPlatform().sysParams(1, 1);
        sp.l2.sets = 3;
        report.entries.push_back(expectStatusCode(
            "config-non-pow2-sets", sim::validateSystemParams(sp),
            ErrorCode::FailedPrecondition));
    }
    {
        sim::SystemParams sp = fiPlatform().sysParams(1, 1);
        sp.mem.banksOverride = 1;   // one bank cannot sustain the peak
        report.entries.push_back(expectStatusCode(
            "config-bank-math", sim::validateSystemParams(sp),
            ErrorCode::FailedPrecondition));
    }
    {
        sim::KernelSpec spec = fiKernel();
        spec.streams.clear();
        report.entries.push_back(expectStatusCode(
            "kernel-no-streams", sim::validateKernelSpec(spec),
            ErrorCode::FailedPrecondition));
    }
    {
        sim::KernelSpec spec = fiKernel();
        spec.streams.front().kind = sim::StreamDesc::Kind::Strided;
        spec.streams.front().strideLines = 0;
        report.entries.push_back(expectStatusCode(
            "kernel-zero-stride", sim::validateKernelSpec(spec),
            ErrorCode::FailedPrecondition));
    }

    // Graceful degradation and the watchdog.
    report.entries.push_back(outOfRangeBwScenario(/*above=*/true));
    report.entries.push_back(outOfRangeBwScenario(/*above=*/false));
    report.entries.push_back(wedgedSimScenario());

    // Randomized stages.
    report.entries.push_back(configFuzzScenario(opts));
    report.entries.push_back(profileByteFuzzScenario(opts));

    // The socket front-end under hostile clients.
    for (ScenarioResult &r : listenerScenarios(opts))
        report.entries.push_back(std::move(r));

    std::filesystem::remove_all(dir, ec);
    return report;
}

} // namespace lll::faultinject
