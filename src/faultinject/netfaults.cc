/**
 * @file
 * Listener fault scenarios for the selftest harness: each one points a
 * deliberately broken client at an in-process socket front-end and
 * asserts the DESIGN.md §14 contract — a structured error or a reaped
 * connection for the offender, uninterrupted service for everyone
 * else.  Split out of faultinject.cc so only this translation unit
 * pulls in the net layer.
 */

#include "faultinject/faultinject.hh"

#include <memory>
#include <thread>

#include "core/sweep.hh"
#include "net/client.hh"
#include "net/listener.hh"
#include "net/serve_handler.hh"
#include "obs/registry.hh"
#include "util/status.hh"

namespace lll::faultinject
{
namespace
{

using net::BlockingClient;
using util::ErrorCode;
using util::Status;

/** The same fast request shape the service tests use. */
const char *kQuickRequest =
    "{\"schema_version\": 1, \"id\": \"ctl\", \"platform\": \"skl\", "
    "\"workload\": \"isx\", \"cores\": 6, \"warmup_us\": 5, "
    "\"measure_us\": 10}";

/** An in-process listener on an ephemeral loopback port. */
class NetServer
{
  public:
    explicit NetServer(net::ListenerParams params)
    {
        net::ServeHandlerParams hp;
        hp.cache = &cache_;
        params.tcpPort = 0;
        if (!params.handler)
            params.handler = net::ServeHandler(hp);
        params.registry = &registry_;
        listener_ =
            std::make_unique<net::Listener>(std::move(params));
        startStatus_ = listener_->start();
        if (startStatus_.ok()) {
            thread_ = std::thread(
                [this] { runStatus_ = listener_->run(); });
        }
    }

    ~NetServer()
    {
        if (thread_.joinable())
            stop();
    }

    Status stop()
    {
        listener_->requestShutdown();
        thread_.join();
        return runStatus_;
    }

    const Status &startStatus() const { return startStatus_; }
    int port() const { return listener_->tcpPort(); }

  private:
    core::ResultCache cache_;
    obs::MetricRegistry registry_;
    std::unique_ptr<net::Listener> listener_;
    std::thread thread_;
    Status startStatus_;
    Status runStatus_;
};

/** The cross-scenario invariant: a fresh, polite connection is still
 *  answered (any structured response line counts — with admission
 *  disabled the answer is a well-formed `unavailable`). */
bool
controlStillServed(NetServer &server, std::string *detail)
{
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    if (!client.ok()) {
        *detail = "control connect failed: " +
                  client.status().toString();
        return false;
    }
    Status sent = client->sendAll(std::string(kQuickRequest) + "\n");
    if (!sent.ok()) {
        *detail = "control send failed: " + sent.toString();
        return false;
    }
    util::Result<std::string> line = client->recvLine(30000);
    if (!line.ok()) {
        *detail = "control response missing: " +
                  line.status().toString();
        return false;
    }
    if (line->find("\"status\"") == std::string::npos) {
        *detail = "control response unstructured: " + *line;
        return false;
    }
    return true;
}

ScenarioResult
malformedFrameScenario()
{
    ScenarioResult r;
    r.scenario = "listener-malformed-frame";
    NetServer server((net::ListenerParams()));
    if (!server.startStatus().ok()) {
        r.detail = server.startStatus().toString();
        return r;
    }
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    if (!client.ok()) {
        r.detail = client.status().toString();
        return r;
    }
    // A length prefix that is not DIGITS ':' poisons the stream.
    if (!client->sendAll("123xyz\n").ok()) {
        r.detail = "send failed";
        return r;
    }
    util::Result<std::string> line = client->recvLine(15000);
    if (!line.ok()) {
        r.detail = "no error response: " + line.status().toString();
        return r;
    }
    if (line->find("\"invalid-argument\"") == std::string::npos) {
        r.detail = "expected invalid-argument, got: " + *line;
        return r;
    }
    // The connection must be closed after the error...
    util::Result<std::string> eof = client->recvLine(15000);
    if (eof.ok()) {
        r.detail = "connection stayed open after framing error";
        return r;
    }
    // ...and the server must keep serving.
    if (!controlStillServed(server, &r.detail))
        return r;
    r.passed = true;
    r.detail = "one invalid-argument response, then close; control "
               "connection served";
    return r;
}

ScenarioResult
oversizedLineScenario()
{
    ScenarioResult r;
    r.scenario = "listener-oversized-line";
    net::ListenerParams params;
    params.maxFrameBytes = 256;
    NetServer server(params);
    if (!server.startStatus().ok()) {
        r.detail = server.startStatus().toString();
        return r;
    }
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    if (!client.ok()) {
        r.detail = client.status().toString();
        return r;
    }
    if (!client->sendAll(std::string(4096, 'x') + "\n").ok()) {
        r.detail = "send failed";
        return r;
    }
    util::Result<std::string> line = client->recvLine(15000);
    if (!line.ok()) {
        r.detail = "no error response: " + line.status().toString();
        return r;
    }
    if (line->find("\"invalid-argument\"") == std::string::npos ||
        line->find("limit") == std::string::npos) {
        r.detail = "expected a limit error, got: " + *line;
        return r;
    }
    if (!controlStillServed(server, &r.detail))
        return r;
    r.passed = true;
    r.detail = "4 KiB line rejected at a 256-byte limit without "
               "buffering it; control connection served";
    return r;
}

ScenarioResult
slowLorisScenario()
{
    ScenarioResult r;
    r.scenario = "listener-slow-loris";
    net::ListenerParams params;
    params.readTimeoutMs = 150;
    NetServer server(params);
    if (!server.startStatus().ok()) {
        r.detail = server.startStatus().toString();
        return r;
    }
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    if (!client.ok()) {
        r.detail = client.status().toString();
        return r;
    }
    // A frame that never completes: a few bytes, then silence.
    if (!client->sendAll("{\"schema_version\":").ok()) {
        r.detail = "send failed";
        return r;
    }
    util::Result<std::string> eof = client->recvLine(15000);
    if (eof.ok()) {
        r.detail = "slow-loris connection was answered instead of "
                   "reaped: " + *eof;
        return r;
    }
    if (eof.status().code() != ErrorCode::IoError) {
        r.detail = "expected the server to close, got: " +
                   eof.status().toString();
        return r;
    }
    if (!controlStillServed(server, &r.detail))
        return r;
    r.passed = true;
    r.detail = "partial frame reaped by the read timeout; control "
               "connection served";
    return r;
}

ScenarioResult
midRequestDisconnectScenario()
{
    ScenarioResult r;
    r.scenario = "listener-mid-request-disconnect";
    NetServer server((net::ListenerParams()));
    if (!server.startStatus().ok()) {
        r.detail = server.startStatus().toString();
        return r;
    }
    {
        util::Result<BlockingClient> rude =
            BlockingClient::connectTcp("127.0.0.1", server.port());
        if (!rude.ok()) {
            r.detail = rude.status().toString();
            return r;
        }
        if (!rude->sendAll(std::string(kQuickRequest) + "\n").ok()) {
            r.detail = "send failed";
            return r;
        }
        rude->close(); // gone before the response exists
    }
    if (!controlStillServed(server, &r.detail))
        return r;
    r.passed = true;
    r.detail = "request orphaned by disconnect; control connection "
               "served";
    return r;
}

ScenarioResult
neverReadsScenario()
{
    ScenarioResult r;
    r.scenario = "listener-client-never-reads";
    net::ListenerParams params;
    // Admission disabled: every request becomes an instant shed
    // response, so output piles up without simulating.  Once the
    // kernel buffers fill, the server's writes stall, lastActivity
    // freezes, and the idle (or read-timeout, if a partial frame is
    // buffered) clock must reap the connection.
    params.maxInflight = 0;
    params.maxWriteBuffer = 4096;
    params.maxPipelined = 64;
    params.readTimeoutMs = 400;
    params.idleTimeoutMs = 400;
    NetServer server(params);
    if (!server.startStatus().ok()) {
        r.detail = server.startStatus().toString();
        return r;
    }
    util::Result<BlockingClient> client =
        BlockingClient::connectTcp("127.0.0.1", server.port());
    if (!client.ok()) {
        r.detail = client.status().toString();
        return r;
    }
    // Flood requests without ever reading a byte back.  The loop ends
    // when the server resets us: a blocked send() is released by the
    // RST from the server-side close, so the reap bounds the loop.
    std::string batch;
    for (int i = 0; i < 20; ++i) {
        batch += kQuickRequest;
        batch += '\n';
    }
    bool closed = false;
    for (int i = 0; i < 100000 && !closed; ++i)
        closed = !client->sendAll(batch).ok();
    if (!closed) {
        r.detail = "server never reaped a client that floods "
                   "requests and reads nothing";
        return r;
    }
    if (!controlStillServed(server, &r.detail))
        return r;
    r.passed = true;
    r.detail = "flooding non-reader stalled and was reaped; control "
               "connection served";
    return r;
}

} // namespace

std::vector<ScenarioResult>
listenerScenarios(const Options &opts)
{
    (void)opts; // deterministic scenarios; no fuzz stage yet
    std::vector<ScenarioResult> results;
    results.push_back(malformedFrameScenario());
    results.push_back(oversizedLineScenario());
    results.push_back(slowLorisScenario());
    results.push_back(midRequestDisconnectScenario());
    results.push_back(neverReadsScenario());
    return results;
}

} // namespace lll::faultinject
