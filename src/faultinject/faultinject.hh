/**
 * @file
 * Fault-injection harness: deliberately break every user-facing input
 * and assert that the library degrades the way DESIGN.md §9 promises —
 * structured errors for bad input, clamped-with-warning extrapolation
 * for out-of-range lookups, a watchdog trip (never a hang) for wedged
 * simulations, and no aborts anywhere on the user-input path.
 *
 * Used by the unit tests and by the `lll selftest` CLI subcommand; a
 * deployment can run the same scenarios against an installed binary as
 * a smoke test.
 */

#ifndef LLL_FAULTINJECT_FAULTINJECT_HH
#define LLL_FAULTINJECT_FAULTINJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace lll::faultinject
{

/** Harness knobs (CLI: `lll selftest --iterations N --seed S`). */
struct Options
{
    uint64_t seed = 1234;
    /** Iterations for the randomized stages (config fuzz, profile
     *  byte-fuzz); the deterministic scenarios always run once. */
    int fuzzIterations = 50;
    bool verbose = false;
    /** Where corrupted profile files are written; empty picks a
     *  seed-keyed directory under the system temp dir. */
    std::string scratchDir;
};

/** Outcome of one scenario. */
struct ScenarioResult
{
    std::string scenario;
    bool passed = false;
    std::string detail;   //!< what was observed (error text, counts)
};

/** All scenario outcomes of one harness run. */
struct Report
{
    std::vector<ScenarioResult> entries;

    bool allPassed() const;
    int failures() const;
    /** Human-readable per-scenario PASS/FAIL listing. */
    std::string render(bool verbose) const;
};

// --- Profile corruptors (exposed for the unit tests) ----------------

/** Cut the text in the middle of its last point line. */
std::string truncateMidLine(const std::string &text);

/** Insert a line with an unknown key at a random position. */
std::string injectGarbageLine(const std::string &text, Rng &rng);

/** Negate the latency of the first point (physically impossible). */
std::string negatePoint(const std::string &text);

/** Flip @p flips random bytes (may hit digits, keys or newlines). */
std::string flipRandomBytes(const std::string &text, Rng &rng, int flips);

/**
 * The socket front-end under deliberately hostile clients (DESIGN.md
 * §14): malformed frame, oversized line, slow-loris partial request,
 * mid-request disconnect, and a client that never reads its responses.
 * Every scenario asserts the same invariant — the listener answers
 * with a structured error or reaps the connection, and *keeps serving
 * other connections*.  Implemented in netfaults.cc so the core harness
 * stays free of the net layer.
 */
std::vector<ScenarioResult> listenerScenarios(const Options &opts);

/** Run every scenario; never aborts on user-input errors by design. */
Report runAll(const Options &opts = Options());

} // namespace lll::faultinject

#endif // LLL_FAULTINJECT_FAULTINJECT_HH
