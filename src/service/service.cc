#include "service/service.hh"

#include <cstdio>
#include <map>
#include <sstream>

#include "core/analyzer.hh"
#include "obs/export.hh"
#include "obs/span.hh"
#include "obs/timer.hh"
#include "platforms/platform.hh"
#include "search/axes.hh"
#include "util/json.hh"
#include "util/names.hh"
#include "workloads/spec_workload.hh"
#include "workloads/workload.hh"

namespace lll::service
{

using util::ErrorCode;
using util::JsonValue;
using util::Status;
using workloads::OptSet;

namespace
{

std::string
fmtG17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Reject member keys outside @p known — a typo'd field silently
 *  ignored is an analysis the caller did not ask for. */
Status
rejectUnknownFields(const JsonValue &obj,
                    const std::vector<std::string> &known,
                    const char *what)
{
    for (const auto &[k, v] : obj.object) {
        (void)v;
        bool found = false;
        for (const std::string &name : known) {
            if (k == name) {
                found = true;
                break;
            }
        }
        if (!found) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "unknown %s field \"%s\"", what,
                                 k.c_str());
        }
    }
    return Status::okStatus();
}

util::Result<uint64_t>
getCount(const JsonValue &obj, const std::string &key, uint64_t fallback)
{
    util::Result<double> v = obj.getNumberOr(key, double(fallback));
    if (!v.ok())
        return v.status();
    if (*v < 0 || *v != double(uint64_t(*v))) {
        return Status::error(ErrorCode::InvalidArgument,
                             "field \"%s\" must be a non-negative "
                             "integer", key.c_str());
    }
    return uint64_t(*v);
}

util::Result<sim::StreamDesc>
parseStream(const JsonValue &v, size_t index)
{
    if (!v.isObject()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "spec stream %zu must be an object, got %s",
                             index, v.typeName());
    }
    LLL_RETURN_IF_ERROR(rejectUnknownFields(
        v,
        {"kind", "footprint_lines", "weight", "stride_lines", "store",
         "shared_across_threads", "reuse_fraction", "reuse_window",
         "sw_prefetchable"},
        "spec stream"));

    sim::StreamDesc s;
    util::Result<std::string> kind = v.getStringOr("kind", "sequential");
    if (!kind.ok())
        return kind.status();
    if (*kind == "sequential") {
        s.kind = sim::StreamDesc::Kind::Sequential;
    } else if (*kind == "strided") {
        s.kind = sim::StreamDesc::Kind::Strided;
    } else if (*kind == "random") {
        s.kind = sim::StreamDesc::Kind::Random;
    } else {
        return Status::error(ErrorCode::InvalidArgument,
                             "spec stream %zu: unknown kind \"%s\"",
                             index, kind->c_str());
    }
    util::Result<uint64_t> fp =
        getCount(v, "footprint_lines", s.footprintLines);
    if (!fp.ok())
        return fp.status();
    s.footprintLines = *fp;
    util::Result<double> weight = v.getNumberOr("weight", s.weight);
    if (!weight.ok())
        return weight.status();
    s.weight = *weight;
    util::Result<double> stride =
        v.getNumberOr("stride_lines", s.strideLines);
    if (!stride.ok())
        return stride.status();
    s.strideLines = int(*stride);
    util::Result<bool> store = v.getBoolOr("store", s.store);
    if (!store.ok())
        return store.status();
    s.store = *store;
    util::Result<bool> shared =
        v.getBoolOr("shared_across_threads", s.sharedAcrossThreads);
    if (!shared.ok())
        return shared.status();
    s.sharedAcrossThreads = *shared;
    util::Result<double> reuse =
        v.getNumberOr("reuse_fraction", s.reuseFraction);
    if (!reuse.ok())
        return reuse.status();
    s.reuseFraction = *reuse;
    util::Result<uint64_t> rw = getCount(v, "reuse_window", s.reuseWindow);
    if (!rw.ok())
        return rw.status();
    s.reuseWindow = unsigned(*rw);
    util::Result<bool> pref =
        v.getBoolOr("sw_prefetchable", s.swPrefetchable);
    if (!pref.ok())
        return pref.status();
    s.swPrefetchable = *pref;
    return s;
}

util::Result<sim::KernelSpec>
parseSpec(const JsonValue &v)
{
    if (!v.isObject()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "field \"spec\" must be an object, got %s",
                             v.typeName());
    }
    LLL_RETURN_IF_ERROR(rejectUnknownFields(
        v,
        {"name", "streams", "compute_cycles_per_op", "window",
         "work_per_op", "sw_prefetch_l2", "sw_prefetch_distance",
         "sw_prefetch_overhead_cycles"},
        "spec"));

    sim::KernelSpec spec;
    util::Result<std::string> name = v.getStringOr("name", "inline");
    if (!name.ok())
        return name.status();
    spec.name = *name;

    const JsonValue *streams = v.find("streams");
    if (!streams || !streams->isArray() || streams->array.empty()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "spec needs a non-empty \"streams\" array");
    }
    for (size_t i = 0; i < streams->array.size(); ++i) {
        util::Result<sim::StreamDesc> s =
            parseStream(streams->array[i], i);
        if (!s.ok())
            return s.status();
        spec.streams.push_back(s.take());
    }

    util::Result<double> cycles =
        v.getNumberOr("compute_cycles_per_op", spec.computeCyclesPerOp);
    if (!cycles.ok())
        return cycles.status();
    spec.computeCyclesPerOp = *cycles;
    util::Result<uint64_t> window = getCount(v, "window", spec.window);
    if (!window.ok())
        return window.status();
    spec.window = unsigned(*window);
    util::Result<double> work =
        v.getNumberOr("work_per_op", spec.workPerOp);
    if (!work.ok())
        return work.status();
    spec.workPerOp = *work;
    util::Result<bool> pl2 =
        v.getBoolOr("sw_prefetch_l2", spec.swPrefetchL2);
    if (!pl2.ok())
        return pl2.status();
    spec.swPrefetchL2 = *pl2;
    util::Result<uint64_t> dist =
        getCount(v, "sw_prefetch_distance", spec.swPrefetchDistance);
    if (!dist.ok())
        return dist.status();
    spec.swPrefetchDistance = unsigned(*dist);
    util::Result<double> overhead = v.getNumberOr(
        "sw_prefetch_overhead_cycles", spec.swPrefetchOverheadCycles);
    if (!overhead.ok())
        return overhead.status();
    spec.swPrefetchOverheadCycles = *overhead;
    return spec;
}

} // namespace

util::JsonLimits
requestJsonLimits()
{
    util::JsonLimits limits;
    limits.maxDepth = kMaxRequestDepth;
    limits.maxBytes = kMaxRequestBytes;
    return limits;
}

util::Result<RunRequest>
parseRunRequest(const std::string &line, size_t line_no)
{
    util::Result<JsonValue> doc = util::parseJson(line,
                                                  requestJsonLimits());
    if (!doc.ok()) {
        return doc.status().withContext("request %zu", line_no);
    }
    auto fail = [line_no](const Status &s) -> Status {
        return s.withContext("request %zu", line_no);
    };
    if (!doc->isObject()) {
        return fail(Status::error(ErrorCode::InvalidArgument,
                                  "request must be a JSON object, "
                                  "got %s", doc->typeName()));
    }
    util::Result<double> version = doc->getNumber("schema_version");
    if (!version.ok())
        return fail(version.status());
    if (*version != kServiceSchemaVersionV1 &&
        *version != kServiceSchemaVersion) {
        return fail(Status::error(
            ErrorCode::InvalidArgument,
            "unsupported schema_version %g (this build speaks 1-%d)",
            *version, kServiceSchemaVersion));
    }
    const bool v2 = *version == kServiceSchemaVersion;

    // Per-version field lists: a v1 line must behave exactly as it did
    // on a v1-only build, so the v2-only fields stay unknown to it.
    std::vector<std::string> known_fields = {
        "schema_version", "id",   "platform",  "workload",
        "spec",           "random_dominated", "opts", "cores",
        "seed",           "warmup_us",        "measure_us"};
    if (v2) {
        known_fields.insert(known_fields.end(),
                            {"kind", "axes", "points", "bank_weight",
                             "max_candidates", "no_prune"});
    }
    Status known = rejectUnknownFields(*doc, known_fields, "request");
    if (!known.ok())
        return fail(known);

    RunRequest req;
    req.schemaVersion = int(*version);

    std::string kind = "run";
    if (v2) {
        util::Result<std::string> k = doc->getStringOr("kind", "run");
        if (!k.ok())
            return fail(k.status());
        kind = k.take();
        if (kind != "run" && kind != "search") {
            return fail(Status::error(
                ErrorCode::InvalidArgument,
                "unknown request kind \"%s\" (this build speaks "
                "\"run\" and \"search\")",
                kind.c_str()));
        }
    }
    req.isSearch = kind == "search";
    if (!req.isSearch) {
        for (const char *f :
             {"axes", "points", "bank_weight", "max_candidates",
              "no_prune"}) {
            if (doc->find(f)) {
                return fail(Status::error(
                    ErrorCode::InvalidArgument,
                    "field \"%s\" is only valid on kind \"search\"",
                    f));
            }
        }
    }
    char default_id[32];
    std::snprintf(default_id, sizeof(default_id), "#%zu", line_no);
    util::Result<std::string> id = doc->getStringOr("id", default_id);
    if (!id.ok())
        return fail(id.status());
    req.id = id.take();

    util::Result<std::string> platform = doc->getString("platform");
    if (!platform.ok())
        return fail(platform.status());
    req.platformName = platform.take();

    const JsonValue *workload = doc->find("workload");
    const JsonValue *spec = doc->find("spec");
    if ((workload == nullptr) == (spec == nullptr)) {
        return fail(Status::error(ErrorCode::InvalidArgument,
                                  "request needs exactly one of "
                                  "\"workload\" and \"spec\""));
    }
    if (workload) {
        if (!workload->isString()) {
            return fail(Status::error(
                ErrorCode::InvalidArgument,
                "field \"workload\" must be a string, got %s",
                workload->typeName()));
        }
        req.workloadName = workload->string;
    } else {
        util::Result<sim::KernelSpec> parsed = parseSpec(*spec);
        if (!parsed.ok())
            return fail(parsed.status());
        req.hasSpec = true;
        req.spec = parsed.take();
        util::Result<bool> random =
            doc->getBoolOr("random_dominated", false);
        if (!random.ok())
            return fail(random.status());
        req.randomDominated = *random;
    }

    const JsonValue *opts = doc->find("opts");
    if (opts) {
        if (!opts->isArray()) {
            return fail(Status::error(
                ErrorCode::InvalidArgument,
                "field \"opts\" must be an array, got %s",
                opts->typeName()));
        }
        if (req.hasSpec && !opts->array.empty()) {
            return fail(Status::error(
                ErrorCode::InvalidArgument,
                "inline-spec requests take no \"opts\" (the spec "
                "already describes the optimized kernel)"));
        }
        for (const JsonValue &o : opts->array) {
            if (!o.isString()) {
                return fail(Status::error(
                    ErrorCode::InvalidArgument,
                    "\"opts\" entries must be strings, got %s",
                    o.typeName()));
            }
            std::optional<workloads::Opt> opt =
                workloads::optFromShortName(o.string);
            if (!opt) {
                return fail(Status::error(ErrorCode::InvalidArgument,
                                          "unknown optimization '%s'",
                                          o.string.c_str()));
            }
            req.opts = req.opts.with(*opt);
        }
    }

    util::Result<double> cores = doc->getNumberOr("cores", 0.0);
    if (!cores.ok())
        return fail(cores.status());
    if (*cores != double(int(*cores)) || int(*cores) < 0) {
        return fail(Status::error(ErrorCode::InvalidArgument,
                                  "field \"cores\" must be a "
                                  "non-negative integer"));
    }
    req.cores = int(*cores);

    util::Result<uint64_t> seed = getCount(*doc, "seed", req.seed);
    if (!seed.ok())
        return fail(seed.status());
    req.seed = *seed;

    util::Result<double> warmup = doc->getNumberOr("warmup_us", 0.0);
    if (!warmup.ok())
        return fail(warmup.status());
    util::Result<double> measure = doc->getNumberOr("measure_us", 0.0);
    if (!measure.ok())
        return fail(measure.status());
    if (*warmup < 0.0 || *measure < 0.0) {
        return fail(Status::error(ErrorCode::InvalidArgument,
                                  "window lengths must be >= 0"));
    }
    req.warmupUs = *warmup;
    req.measureUs = *measure;

    if (req.isSearch) {
        search::SearchSpec &space = req.search;
        const JsonValue *axes = doc->find("axes");
        if (axes) {
            if (!axes->isArray()) {
                return fail(Status::error(
                    ErrorCode::InvalidArgument,
                    "field \"axes\" must be an array, got %s",
                    axes->typeName()));
            }
            for (const JsonValue &a : axes->array) {
                if (!a.isString()) {
                    return fail(Status::error(
                        ErrorCode::InvalidArgument,
                        "\"axes\" entries must be \"name=spec\" "
                        "strings, got %s",
                        a.typeName()));
                }
                util::Result<search::Axis> axis =
                    search::parseAxis(a.string);
                if (!axis.ok())
                    return fail(axis.status());
                space.axes.push_back(axis.take());
            }
        }
        const JsonValue *points = doc->find("points");
        if (points) {
            if (!points->isArray()) {
                return fail(Status::error(
                    ErrorCode::InvalidArgument,
                    "field \"points\" must be an array, got %s",
                    points->typeName()));
            }
            for (const JsonValue &p : points->array) {
                if (!p.isString()) {
                    return fail(Status::error(
                        ErrorCode::InvalidArgument,
                        "\"points\" entries must be "
                        "\"name=value,...\" strings, got %s",
                        p.typeName()));
                }
                util::Result<search::Assignment> point =
                    search::parsePoint(p.string);
                if (!point.ok())
                    return fail(point.status());
                space.points.push_back(point.take());
            }
        }
        if (space.axes.empty() && space.points.empty()) {
            return fail(Status::error(
                ErrorCode::InvalidArgument,
                "search request needs a non-empty \"axes\" array "
                "(or explicit \"points\")"));
        }
        util::Result<double> weight =
            doc->getNumberOr("bank_weight", space.bankWeight);
        if (!weight.ok())
            return fail(weight.status());
        if (!(*weight >= 0.0) || *weight > 1e9) {
            return fail(Status::error(
                ErrorCode::InvalidArgument,
                "field \"bank_weight\" must be in [0, 1e9]"));
        }
        space.bankWeight = *weight;
        util::Result<uint64_t> max_cand =
            getCount(*doc, "max_candidates", space.maxCandidates);
        if (!max_cand.ok())
            return fail(max_cand.status());
        if (*max_cand == 0) {
            return fail(Status::error(
                ErrorCode::InvalidArgument,
                "field \"max_candidates\" must be >= 1"));
        }
        space.maxCandidates = *max_cand;
        util::Result<bool> no_prune = doc->getBoolOr("no_prune", false);
        if (!no_prune.ok())
            return fail(no_prune.status());
        space.disablePruning = *no_prune;

        // Mirror the shared fields so the searcher sees one object.
        space.platformName = req.platformName;
        space.workloadName = req.workloadName;
        space.hasSpec = req.hasSpec;
        space.spec = req.spec;
        space.randomDominated = req.randomDominated;
        space.opts = req.opts;
        space.cores = req.cores;
        space.seed = req.seed;
        space.warmupUs = req.warmupUs;
        space.measureUs = req.measureUs;
    }
    return req;
}

std::string
renderRunResponse(const RunResponse &r, bool include_timing)
{
    std::ostringstream out;
    out << "{\"schema_version\": " << r.schemaVersion
        << ", \"id\": \"" << obs::jsonEscape(r.id)
        << "\", \"status\": {\"code\": \""
        << util::errorCodeName(r.status.code())
        << "\", \"exit\": " << util::exitCodeFor(r.status.code())
        << ", \"message\": \"" << obs::jsonEscape(r.status.message())
        << "\"}, ";
    if (include_timing) {
        const StageTiming &t = r.timing;
        out << "\"timing\": {\"parse_ns\": " << fmtG17(t.parseNs)
            << ", \"coalesce_ns\": " << fmtG17(t.coalesceNs)
            << ", \"queue_wait_ns\": " << fmtG17(t.queueWaitNs)
            << ", \"simulate_ns\": " << fmtG17(t.simulateNs)
            << ", \"respond_ns\": " << fmtG17(t.respondNs)
            << ", \"total_ns\": " << fmtG17(t.totalNs) << "}, ";
    }
    out << "\"data\": ";
    if (!r.status.ok()) {
        out << "null}";
        return out.str();
    }
    if (r.isSearch) {
        out << search::searchDataJson(r.search, false) << "}";
        return out.str();
    }
    out << stageDataJson(r.metrics, r.platform, r.workload, r.optsLabel)
        << "}";
    return out.str();
}

std::string
stageDataJson(const core::StageMetrics &m, const std::string &platform,
              const std::string &workload,
              const std::string &opts_label)
{
    const core::Analysis &a = m.analysis;
    std::ostringstream out;
    out << "{\"platform\": \"" << obs::jsonEscape(platform)
        << "\", \"workload\": \"" << obs::jsonEscape(workload)
        << "\", \"opts\": \"" << obs::jsonEscape(opts_label)
        << "\", \"throughput\": " << fmtG17(m.throughput)
        << ", \"bw_gbs\": " << fmtG17(a.bwGBs)
        << ", \"pct_peak\": " << fmtG17(a.pctPeak)
        << ", \"latency_ns\": " << fmtG17(a.latencyNs)
        << ", \"n_avg\": " << fmtG17(a.nAvg) << ", \"access_class\": \""
        << core::accessClassName(a.accessClass)
        << "\", \"limiting_level\": \""
        << core::mshrLevelName(a.limitingLevel)
        << "\", \"limiting_mshrs\": " << a.limitingMshrs
        << ", \"headroom\": " << fmtG17(a.headroom)
        << ", \"max_achievable_gbs\": " << fmtG17(a.maxAchievableGBs)
        << ", \"cores_used\": " << a.coresUsed << ", \"warnings\": [";
    for (size_t i = 0; i < a.warnings.size(); ++i) {
        out << (i ? ", " : "") << "\"" << obs::jsonEscape(a.warnings[i])
            << "\"";
    }
    out << "]}";
    return out.str();
}

std::vector<RunResponse>
RunService::serveLines(const std::vector<std::string> &lines,
                       size_t first_line_no)
{
    obs::ScopedSpan batch_span("serve.batch");

    /** One request's place in the batch while it is in flight. */
    struct Slot
    {
        RunRequest req;
        Status status;       //!< first error on the request's path
        size_t unit = SIZE_MAX; //!< index into the coalesced units
        StageTiming timing;  //!< host wall time per stage
        search::SearchResult search; //!< kind:"search" outcome
    };
    std::vector<Slot> slots;

    {
        obs::ScopedSpan span("serve.parse");
        size_t line_no = first_line_no > 0 ? first_line_no - 1 : 0;
        for (const std::string &line : lines) {
            ++line_no;
            bool blank = true;
            for (char c : line) {
                if (c != ' ' && c != '\t' && c != '\r') {
                    blank = false;
                    break;
                }
            }
            if (blank)
                continue;
            obs::WallTimer parse_timer;
            Slot slot;
            util::Result<RunRequest> req =
                parseRunRequest(line, line_no);
            if (req.ok()) {
                slot.req = req.take();
            } else {
                char fallback[32];
                std::snprintf(fallback, sizeof(fallback), "#%zu",
                              line_no);
                slot.req.id = fallback;
                slot.status = req.status();
            }
            slot.timing.parseNs = parse_timer.elapsedNs();
            slots.push_back(std::move(slot));
        }
    }

    // Resolve names and coalesce duplicate units: requests that hash
    // to the same stage key — same platform, spec, opts, seed, windows
    // and cores — share one StageUnit and therefore one simulation.
    std::vector<core::SweepRunner::StageUnit> units;
    std::vector<workloads::WorkloadPtr> owned; //!< outlive the runner
    std::map<std::string, size_t> by_key;
    // Records the coalesce time on every exit path of the loop body
    // (several `continue`s bail out on per-request errors).
    struct CoalesceDone
    {
        Slot &slot;
        obs::WallTimer &timer;
        ~CoalesceDone() { slot.timing.coalesceNs = timer.elapsedNs(); }
    };
    {
        obs::ScopedSpan span("serve.coalesce");
        for (Slot &slot : slots) {
            if (!slot.status.ok())
                continue;
            // Search requests resolve their own names inside the
            // searcher and never share a stage unit.
            if (slot.req.isSearch)
                continue;
            obs::WallTimer coalesce_timer;
            CoalesceDone record_coalesce{slot, coalesce_timer};
            RunRequest &req = slot.req;
            util::Result<platforms::Platform> plat =
                platforms::findPlatform(req.platformName);
            if (!plat.ok()) {
                slot.status = plat.status();
                continue;
            }
            workloads::WorkloadPtr wl;
            if (req.hasSpec) {
                wl = workloads::inlineSpecWorkload(req.spec,
                                                   req.randomDominated);
            } else {
                util::Result<workloads::WorkloadPtr> found =
                    workloads::findWorkload(req.workloadName);
                if (!found.ok()) {
                    slot.status = found.status();
                    continue;
                }
                wl = found.take();
            }
            const int cores =
                req.cores > 0 ? req.cores : plat->totalCores;
            // Infeasible (platform, cores, smt) combinations fail here
            // per-request instead of aborting inside the simulator.
            util::Result<sim::SystemParams> sp =
                plat->trySysParams(cores, req.opts.smtWays());
            if (!sp.ok()) {
                slot.status = sp.status();
                continue;
            }
            const double warmup = req.warmupUs > 0.0
                                      ? req.warmupUs
                                      : wl->warmupUs();
            const double measure = req.measureUs > 0.0
                                       ? req.measureUs
                                       : wl->measureUs();
            const std::string key = core::ResultCache::stageKey(
                *plat, wl->spec(*plat, req.opts), req.opts, req.seed,
                warmup, measure, cores);
            auto [it, fresh] = by_key.emplace(key, units.size());
            if (fresh) {
                units.push_back({*plat, wl.get(), req.opts, warmup,
                                 measure, cores, req.seed});
                owned.push_back(std::move(wl));
            }
            slot.unit = it->second;
        }
    }

    const core::ResultCache::Stats before =
        params_.cache ? params_.cache->stats()
                      : core::ResultCache::Stats();

    std::vector<core::SweepRunner::StageOutcome> outcomes;
    {
        obs::ScopedSpan span("serve.run");
        core::SweepRunner::Params rp;
        rp.jobs = params_.jobs;
        rp.cache = params_.cache;
        rp.registry = params_.registry;
        core::SweepRunner runner(rp);
        outcomes = runner.runStages(units);

        // Search requests run after the stage units, in request order,
        // each through its own bounds-pruned wave pipeline (the
        // searcher shares this service's jobs/cache/registry, so warm
        // neighborhoods still coalesce through the stage memo).
        for (Slot &slot : slots) {
            if (!slot.status.ok() || !slot.req.isSearch)
                continue;
            obs::WallTimer search_timer;
            search::Searcher searcher(
                {params_.jobs, params_.cache, params_.registry});
            util::Result<search::SearchResult> result =
                searcher.run(slot.req.search);
            slot.timing.simulateNs = search_timer.elapsedNs();
            if (result.ok())
                slot.search = result.take();
            else
                slot.status = result.status();
        }
    }

    std::vector<RunResponse> responses;
    size_t failed = 0;
    {
        obs::ScopedSpan span("serve.respond");
        responses.reserve(slots.size());
        for (Slot &slot : slots) {
            obs::WallTimer respond_timer;
            RunResponse resp;
            resp.schemaVersion = slot.req.schemaVersion;
            resp.id = slot.req.id;
            if (!slot.status.ok()) {
                resp.status = slot.status;
            } else if (slot.req.isSearch) {
                resp.isSearch = true;
                resp.search = std::move(slot.search);
            } else {
                const core::SweepRunner::StageOutcome &out =
                    outcomes[slot.unit];
                resp.status = out.status;
                if (out.status.ok())
                    resp.metrics = out.metrics;
                // Coalesced requests share their unit's queue-wait and
                // simulation time: each of them did wait on that work.
                slot.timing.queueWaitNs = out.queueWaitNs;
                slot.timing.simulateNs = out.simulateNs;
            }
            if (resp.status.ok()) {
                if (resp.isSearch) {
                    resp.platform = resp.search.platform;
                    resp.workload = resp.search.workload;
                    resp.optsLabel = resp.search.optsLabel;
                } else {
                    resp.platform = units[slot.unit].platform.name;
                    resp.workload = units[slot.unit].workload->name();
                    resp.optsLabel = slot.req.opts.label();
                }
            } else {
                ++failed;
            }
            slot.timing.respondNs = respond_timer.elapsedNs();
            slot.timing.totalNs = slot.timing.sum();
            resp.timing = slot.timing;
            responses.push_back(std::move(resp));
        }
    }

    if (params_.registry) {
        obs::MetricRegistry &reg = *params_.registry;
        reg.counter(util::names::kServiceBatchesTotal)++;
        reg.counter(util::names::kServiceRequestsTotal)
            .increment(slots.size());
        reg.counter(util::names::kServiceRequestsFailedTotal).increment(failed);
        reg.counter(util::names::kServiceUnitsTotal).increment(units.size());
        // Requests that resolved to an already-seen unit.
        size_t resolved = 0;
        for (const Slot &slot : slots) {
            if (slot.unit != SIZE_MAX)
                ++resolved;
        }
        reg.counter(util::names::kServiceCoalescedRequestsTotal)
            .increment(resolved - units.size());
        reg.setGauge(util::names::kServiceBatchSize, double(slots.size()));
        // Per-request end-to-end latency, one sample per request per
        // stage; percentiles come out via Log2Histogram::percentile.
        for (const RunResponse &resp : responses) {
            const StageTiming &t = resp.timing;
            reg.histogram(util::names::kServiceLatencyParseNs).sample(t.parseNs);
            reg.histogram(util::names::kServiceLatencyCoalesceNs)
                .sample(t.coalesceNs);
            reg.histogram(util::names::kServiceLatencyQueueWaitNs)
                .sample(t.queueWaitNs);
            reg.histogram(util::names::kServiceLatencySimulateNs)
                .sample(t.simulateNs);
            reg.histogram(util::names::kServiceLatencyRespondNs)
                .sample(t.respondNs);
            reg.histogram(util::names::kServiceLatencyTotalNs).sample(t.totalNs);
        }
        if (params_.cache) {
            const core::ResultCache::Stats after =
                params_.cache->stats();
            reg.counter(util::names::kServiceCacheHitsTotal)
                .increment(after.hits - before.hits);
            reg.counter(util::names::kServiceCacheMissesTotal)
                .increment(after.misses - before.misses);
            reg.counter(util::names::kServiceCacheEvictionsTotal)
                .increment(after.evictions - before.evictions);
            reg.counter(util::names::kServiceCacheSpillEvictionsTotal)
                .increment(after.spillEvictions -
                           before.spillEvictions);
        }
    }
    return responses;
}

} // namespace lll::service
