/**
 * @file
 * The batched run service behind `lll serve` (DESIGN.md §12).
 *
 * A batch is JSON-lines: one versioned RunRequest per line, answered by
 * one RunResponse line in the *same order*, each carrying its own
 * util::Status — a malformed or infeasible request fails alone, never
 * the batch.  Before anything simulates, the service coalesces
 * requests that resolve to the same ResultCache stage key, shards the
 * distinct units onto core::SweepRunner, and fans every response out
 * from the shared outcome; with the process-wide ResultCache engaged a
 * warm batch is served entirely from memo.
 *
 * Request schema.  The service speaks two versions; a response echoes
 * the version of the request it answers, so v1 clients on a v2 server
 * see byte-identical lines.
 *
 * schema_version 1 — exactly one of "workload" / "spec" must be
 * present:
 *
 *   {"schema_version": 1, "id": "r1", "platform": "bdx",
 *    "workload": "isx", "opts": ["vect", "2-ht"], "cores": 4,
 *    "seed": 7, "warmup_us": 15.0, "measure_us": 40.0}
 *
 *   {"schema_version": 1, "platform": "bdx", "random_dominated": true,
 *    "spec": {"name": "mykernel", "window": 12, "streams": [
 *      {"kind": "random", "footprint_lines": 4000000}]}}
 *
 * schema_version 2 adds a "kind" discriminator.  kind "run" (the
 * default) is the v1 request unchanged; kind "search" carries a
 * design-space spec (DESIGN.md §17) and answers with the Pareto
 * frontier instead of one stage's metrics:
 *
 *   {"schema_version": 2, "kind": "search", "id": "s1",
 *    "platform": "skl", "workload": "isx", "cores": 6,
 *    "axes": ["l2_mshrs=8:64:*2", "banks=4:20:+4"],
 *    "points": ["l2_mshrs=48,banks=10"], "bank_weight": 0.5,
 *    "max_candidates": 4096, "no_prune": false}
 *
 * An unknown v2 kind fails that request alone (per-request
 * invalid-argument status), never the batch.
 *
 * Response lines reuse the CLI's JSON envelope status shape:
 *
 *   {"schema_version": 1, "id": "r1",
 *    "status": {"code": "ok", "exit": 0, "message": ""},
 *    "data": {"platform": ..., "workload": ..., "opts": ...,
 *             "throughput": ..., "bw_gbs": ..., "n_avg": ...}}
 *
 * A search response's "data" is search::searchDataJson — accounting
 * plus the frontier rows.  Lines that fail before a version is known
 * (malformed JSON, missing schema_version) are answered with the v1
 * envelope, which every client must accept.
 */

#ifndef LLL_SERVICE_SERVICE_HH
#define LLL_SERVICE_SERVICE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "obs/registry.hh"
#include "search/search.hh"
#include "sim/kernel_spec.hh"
#include "util/json.hh"
#include "util/status.hh"
#include "workloads/optimization.hh"

namespace lll::service
{

/** Newest request/response line schema this build speaks.  Every
 *  version down to 1 stays accepted; responses echo the request's
 *  version (the serve byte-compat contract). */
constexpr int kServiceSchemaVersion = 2;

/** The original run-only schema (no "kind" field). */
constexpr int kServiceSchemaVersionV1 = 1;

/**
 * Resource bounds on one request line.  A request is a small, shallow
 * object (the deepest legitimate path is request > spec > streams >
 * stream, four levels), so a deeply nested or multi-megabyte line is
 * hostile by construction and fails as InvalidArgument — per request,
 * before the parser recurses into it.  The socket listener enforces
 * kMaxRequestBytes again at the framing layer so an oversized line
 * never even reaches the parser.
 */
constexpr size_t kMaxRequestBytes = 1u << 20;
constexpr int kMaxRequestDepth = 16;

/** The service's JSON parse limits (see kMaxRequestBytes). */
util::JsonLimits requestJsonLimits();

/**
 * One normalized request.  Exactly one of workloadName / spec is set
 * (hasSpec discriminates).  isSearch (v2 kind "search") carries the
 * fully-resolved design-space spec; the shared fields (platform,
 * workload/spec, opts, cores, seed, windows) are mirrored into it at
 * parse time so the searcher sees one coherent object.
 */
struct RunRequest
{
    int schemaVersion = kServiceSchemaVersionV1; //!< echoed back
    std::string id;           //!< echoes back; defaults to "#<line>"
    std::string platformName;
    std::string workloadName; //!< empty for inline-spec requests
    bool hasSpec = false;
    sim::KernelSpec spec;
    bool randomDominated = false; //!< inline-spec analyzer class
    workloads::OptSet opts;
    int cores = 0;      //!< 0 = all of the platform's cores
    uint64_t seed = 7;
    double warmupUs = 0.0;  //!< 0 = the workload's default window
    double measureUs = 0.0; //!< 0 = the workload's default window

    bool isSearch = false;    //!< v2 kind "search"
    search::SearchSpec search; //!< meaningful only when isSearch
};

/**
 * Parse one JSON request line.  @p line_no (1-based) supplies the
 * default id and appears in error context.
 */
[[nodiscard]] util::Result<RunRequest> parseRunRequest(const std::string &line,
                                         size_t line_no);

/**
 * Host wall time one request spent in each service stage.  All fields
 * are nanoseconds; queue-wait and simulate come from the coalesced
 * unit the request resolved to (coalesced requests share them), and
 * total is the sum of the stages, so queue_wait <= total always.
 */
struct StageTiming
{
    double parseNs = 0.0;     //!< JSON line -> RunRequest
    double coalesceNs = 0.0;  //!< name resolution + stage-key dedup
    double queueWaitNs = 0.0; //!< fan-out start -> worker pickup
    double simulateNs = 0.0;  //!< the unit's simulation wall time
    double respondNs = 0.0;   //!< outcome -> RunResponse
    double totalNs = 0.0;     //!< sum of the above

    double sum() const
    {
        return parseNs + coalesceNs + queueWaitNs + simulateNs +
               respondNs;
    }
};

/** One response line: per-request status plus (on success) either the
 *  stage's analysis payload or, for search requests, the frontier. */
struct RunResponse
{
    int schemaVersion = kServiceSchemaVersionV1; //!< request's version
    std::string id;
    util::Status status;
    core::StageMetrics metrics; //!< meaningful only when status.ok()
    std::string platform;
    std::string workload;
    std::string optsLabel;
    StageTiming timing; //!< always populated by serveLines()

    bool isSearch = false;       //!< response to a kind:"search"
    search::SearchResult search; //!< meaningful when isSearch && ok
};

/**
 * Serialize @p r as one JSON line (no trailing newline).
 * @p include_timing adds the per-request "timing" object; it defaults
 * off because timing is wall-clock — cold and warm reruns must stay
 * byte-identical on the default path (the serve contract).
 */
std::string renderRunResponse(const RunResponse &r,
                              bool include_timing = false);

/**
 * Just the "data" object of a successful response — the analysis
 * payload for one stage.  Shared with `lll analyze --json` so the CLI
 * envelope and the service speak the same schema.
 */
std::string stageDataJson(const core::StageMetrics &m,
                          const std::string &platform,
                          const std::string &workload,
                          const std::string &opts_label);

/**
 * The batched front-end.  Construct once, serve many batches; the
 * ResultCache (and its capacity policy) persists across batches.
 */
class RunService
{
  public:
    struct Params
    {
        /** Worker threads for the distinct-unit fan-out. */
        int jobs = 1;

        /** Stage memo table; nullptr runs every unit uncached (no
         *  coalescing is lost — duplicates still simulate once). */
        core::ResultCache *cache = nullptr;

        /**
         * When set, receives the service counters
         * (service.requests_total, service.requests_failed_total,
         * service.units_total, service.coalesced_requests_total,
         * service.cache_{hits,misses,evictions,spill_evictions}_total,
         * gauge service.batch_size), per-request stage-latency
         * histograms (service.latency.{parse,coalesce,queue_wait,
         * simulate,respond,total}_ns), the sweep worker-utilization
         * gauges and the merged per-unit telemetry.
         */
        obs::MetricRegistry *registry = nullptr;
    };

    explicit RunService(Params params) : params_(params) {}

    /**
     * Serve one batch: parse every line (blank lines are skipped),
     * coalesce, run, and return responses in request order.  Never
     * fails as a whole — per-request errors ride in the responses.
     * Runs under a `serve.batch` span with parse/coalesce/run/respond
     * phases nested inside.
     *
     * @p first_line_no numbers the first entry of @p lines — default
     * ids and error context count from it, so the socket listener can
     * serve one line at a time while keeping per-connection request
     * numbering ("#7" is the connection's 7th request, not "#1" over
     * and over).
     */
    std::vector<RunResponse>
    serveLines(const std::vector<std::string> &lines,
               size_t first_line_no = 1);

  private:
    Params params_;
};

} // namespace lll::service

#endif // LLL_SERVICE_SERVICE_HH
