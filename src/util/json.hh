/**
 * @file
 * A minimal JSON document parser for request-shaped input.
 *
 * The repo deliberately carries no third-party JSON dependency; the
 * exporters (obs/export.hh) only ever *emit* JSON and the result-cache
 * spill format is flat by construction.  The run service, however,
 * accepts nested request objects (`lll serve` JSON-lines), so this
 * header adds the read side: a small recursive-descent parser into a
 * JsonValue tree plus typed accessors with field-level error reporting.
 *
 * Scope is deliberately narrow — UTF-8 pass-through, doubles for all
 * numbers, objects keep insertion order — enough for the versioned
 * service schema, not a general-purpose library.
 */

#ifndef LLL_UTIL_JSON_HH
#define LLL_UTIL_JSON_HH

#include <string>
#include <utility>
#include <vector>

#include "util/status.hh"

namespace lll::util
{

/**
 * One parsed JSON value.  A tagged union kept simple (vectors instead
 * of maps so object key order survives for diagnostics).
 */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Stable lower-case type name ("object", "number", ...). */
    const char *typeName() const;

    /** Member lookup on an object; nullptr when absent (or not an
     *  object).  First occurrence wins on duplicate keys. */
    const JsonValue *find(const std::string &key) const;

    // Typed member accessors: the field as Result, with the offending
    // key in the error message.  *Or variants return @p fallback when
    // the key is absent (but still fail on a type mismatch).
    [[nodiscard]] util::Result<std::string> getString(const std::string &key) const;
    [[nodiscard]] util::Result<std::string> getStringOr(const std::string &key,
                                          std::string fallback) const;
    [[nodiscard]] util::Result<double> getNumber(const std::string &key) const;
    [[nodiscard]] util::Result<double> getNumberOr(const std::string &key,
                                     double fallback) const;
    [[nodiscard]] util::Result<bool> getBoolOr(const std::string &key,
                                 bool fallback) const;
};

/**
 * Resource bounds enforced while parsing.  A hostile document — one
 * crafted to exhaust the parser rather than to describe a request —
 * must fail with InvalidArgument *before* it costs anything: maxBytes
 * is checked up front, maxDepth caps the recursion the nesting can
 * drive.  Both limits are policy violations, not syntax errors, so
 * they report InvalidArgument where true malformations report
 * CorruptData.
 */
struct JsonLimits
{
    /** Deepest permitted object/array nesting (root = depth 0). */
    int maxDepth = 64;
    /** Largest accepted input in bytes; 0 = unlimited. */
    size_t maxBytes = 0;
};

/**
 * Parse @p text as one JSON document.  Trailing non-whitespace after
 * the document, unterminated strings, bad escapes and malformed
 * numbers are CorruptData errors carrying the byte offset; @p limits
 * violations (input too large, nesting too deep) are InvalidArgument.
 */
[[nodiscard]] util::Result<JsonValue> parseJson(const std::string &text,
                                  const JsonLimits &limits = JsonLimits());

} // namespace lll::util

#endif // LLL_UTIL_JSON_HH
