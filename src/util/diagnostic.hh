/**
 * @file
 * Structured diagnostics: the finding currency of `lll lint`.
 *
 * A Diagnostic is one finding about a configuration or a simulation —
 * an error ("this spec cannot run"), a warning ("this spec runs but the
 * analysis will be vacuous") or a note ("this is the regime you are
 * in") — carrying a *stable identifier* (e.g. `LLL-SPEC-002`) that
 * tools, CI greps and golden tests can key on while the human text
 * stays free to improve.  DESIGN.md §10 tables every ID.
 *
 * The sim validators (sim/validator.hh) and the static analyzer
 * (analysis/spec_lint.hh) both emit Diagnostics, so `lll lint` and
 * System construction report the same finding identically; the legacy
 * util::Status surface is derived via DiagnosticList::toStatus().
 */

#ifndef LLL_UTIL_DIAGNOSTIC_HH
#define LLL_UTIL_DIAGNOSTIC_HH

#include <cstdarg>
#include <string>
#include <vector>

#include "util/status.hh"

namespace lll::util
{

/** How bad a finding is.  Only Error makes a config unusable. */
enum class Severity
{
    Error,   //!< infeasible: a System built from this config is invalid
    Warning, //!< feasible but suspect: results will likely mislead
    Note,    //!< informational: derived bounds, regime classification
};

/** Stable lower-case name ("error", "warning", "note"). */
const char *severityName(Severity s);

/**
 * One finding.  `id` is stable across releases (new checks get new
 * IDs; retired checks retire their ID); `subject` names what was
 * examined ("skl", "kernel 'isx'", "skl/isx [+ vect]").
 */
struct Diagnostic
{
    std::string id;
    Severity severity = Severity::Error;
    std::string subject;
    std::string message;

    /** "error LLL-SPEC-002 [skl]: threadsPerCore (4) outside 1..2" */
    std::string toString() const;
};

/**
 * An ordered collection of findings with printf-style emit helpers and
 * renderers for the two `lll lint` output formats.
 */
class DiagnosticList
{
  public:
    void add(Diagnostic d) { diags_.push_back(std::move(d)); }

    void error(const char *id, std::string subject, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)));
    void warning(const char *id, std::string subject, const char *fmt,
                 ...) __attribute__((format(printf, 4, 5)));
    void note(const char *id, std::string subject, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)));

    /** Append every finding of @p other, keeping order. */
    void append(const DiagnosticList &other);

    /** Re-label every finding with @p subject (used when merging
     *  per-component lists into a per-config report). */
    void setSubjects(const std::string &subject);

    const std::vector<Diagnostic> &all() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    size_t size() const { return diags_.size(); }

    size_t errorCount() const { return count(Severity::Error); }
    size_t warningCount() const { return count(Severity::Warning); }
    size_t noteCount() const { return count(Severity::Note); }
    bool hasErrors() const { return errorCount() != 0; }

    /**
     * The legacy Status view: OK when no Error-severity finding exists;
     * otherwise @p code with the first error's "ID: message" text (the
     * format the pre-lint validators reported).  Warnings and notes do
     * not surface here — they are a lint-only concept.
     */
    [[nodiscard]] Status
    toStatus(ErrorCode code = ErrorCode::FailedPrecondition) const;

    /** One finding per line, `Diagnostic::toString()` format. */
    std::string renderText() const;

    /** A JSON array of {id, severity, subject, message} objects. */
    std::string renderJson(int indent = 0) const;

  private:
    size_t count(Severity s) const;
    void vadd(Severity sev, const char *id, std::string subject,
              const char *fmt, va_list ap);

    std::vector<Diagnostic> diags_;
};

} // namespace lll::util

#endif // LLL_UTIL_DIAGNOSTIC_HH
