#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace lll
{

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    lll_assert(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    lll_assert(row.size() == header_.size(),
               "row arity %zu != header arity %zu", row.size(),
               header_.size());
    rows_.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&] {
        std::string s = "+";
        for (size_t w : widths)
            s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            s += " " + v + std::string(widths[c] - v.size(), ' ') + " |";
        }
        s += "\n";
        return s;
    };

    std::ostringstream out;
    if (!caption_.empty())
        out << caption_ << "\n";
    out << rule() << line(header_) << rule();
    for (const auto &row : rows_) {
        if (row.empty())
            out << rule();
        else
            out << line(row);
    }
    out << rule();
    return out.str();
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtBwPct(double bw_gbs, double peak_gbs)
{
    char buf[64];
    int pct = static_cast<int>(bw_gbs / peak_gbs * 100.0 + 0.5);
    std::snprintf(buf, sizeof(buf), "%.1f (%d%%)", bw_gbs, pct);
    return buf;
}

std::string
fmtSpeedup(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", s);
    return buf;
}

} // namespace lll
