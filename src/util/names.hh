/**
 * @file
 * The checked-in name registry: every metric, span and diagnostic-ID
 * string the repo emits, in one header.
 *
 * Little's-law recipes are computed from *named* counters and spans, so
 * a typo'd metric string or a drifted diagnostic ID silently corrupts
 * an analysis rather than failing it.  This header is the single
 * source of truth the source auditor (`lll audit`, src/audit) enforces:
 *
 *  - code SHOULD reference names through the constants below (a typo
 *    is then a compile error);
 *  - any metric-shaped string literal left in src/ or tools/ must
 *    match a registered name or family prefix exactly, or the auditor
 *    reports LLL-SRC-110;
 *  - any `LLL-XXX-NNN` literal must appear in kDiagIds, or the auditor
 *    reports LLL-SRC-111; a registry entry duplicated with a different
 *    meaning is LLL-SRC-112.
 *
 * ID allocation rules (DESIGN.md §15): IDs are never reused or
 * renumbered; new checks take the next free number in their group;
 * retiring a check retires its ID (the registry entry stays, marked in
 * the title).  Name constants follow the `layer.noun[_unit]` scheme;
 * counters end in `_total`, histograms in `_ns`, families end in `.`
 * and get an index or kernel name appended at runtime.
 */

#ifndef LLL_UTIL_NAMES_HH
#define LLL_UTIL_NAMES_HH

namespace lll::util::names
{

// ---------------------------------------------------------------------
// obs: the observability layer's own telemetry.
// ---------------------------------------------------------------------

/** Host-time cost of the observability layer itself (sampler snapshots,
 *  profiler tree builds); wall-clock valued, excluded from determinism
 *  comparisons. */
inline constexpr char kObsSelfOverheadNs[] = "obs.self.overhead_ns";

// ---------------------------------------------------------------------
// sim: simulator metric families (prefix + component index) and spans.
// ---------------------------------------------------------------------

inline constexpr char kSimMemctrlPrefix[] = "sim.memctrl";
inline constexpr char kSimCacheL1Prefix[] = "sim.cache.l1.";
inline constexpr char kSimCacheL2Prefix[] = "sim.cache.l2.";
inline constexpr char kSimCacheL3Prefix[] = "sim.cache.l3";
inline constexpr char kSimMshrL1Prefix[] = "sim.mshr.l1.";
inline constexpr char kSimMshrL2Prefix[] = "sim.mshr.l2.";
inline constexpr char kSimMshrL3Prefix[] = "sim.mshr.l3";
inline constexpr char kSimCorePrefix[] = "sim.core.";
inline constexpr char kSimEventqEventsPerNs[] = "sim.eventq.events_per_ns";
inline constexpr char kSimWarmupSpan[] = "sim.warmup";
inline constexpr char kSimMeasureSpan[] = "sim.measure";
inline constexpr char kSimWatchdogStall[] = "sim.watchdog.stall";

// ---------------------------------------------------------------------
// service: the batched run service (DESIGN.md §12).
// ---------------------------------------------------------------------

inline constexpr char kServiceBatchesTotal[] = "service.batches_total";
inline constexpr char kServiceRequestsTotal[] = "service.requests_total";
inline constexpr char kServiceRequestsFailedTotal[] =
    "service.requests_failed_total";
inline constexpr char kServiceUnitsTotal[] = "service.units_total";
inline constexpr char kServiceCoalescedRequestsTotal[] =
    "service.coalesced_requests_total";
inline constexpr char kServiceBatchSize[] = "service.batch_size";
inline constexpr char kServiceCacheHitsTotal[] =
    "service.cache_hits_total";
inline constexpr char kServiceCacheMissesTotal[] =
    "service.cache_misses_total";
inline constexpr char kServiceCacheEvictionsTotal[] =
    "service.cache_evictions_total";
inline constexpr char kServiceCacheSpillEvictionsTotal[] =
    "service.cache_spill_evictions_total";
inline constexpr char kServiceLatencyParseNs[] =
    "service.latency.parse_ns";
inline constexpr char kServiceLatencyCoalesceNs[] =
    "service.latency.coalesce_ns";
inline constexpr char kServiceLatencyQueueWaitNs[] =
    "service.latency.queue_wait_ns";
inline constexpr char kServiceLatencySimulateNs[] =
    "service.latency.simulate_ns";
inline constexpr char kServiceLatencyRespondNs[] =
    "service.latency.respond_ns";
inline constexpr char kServiceLatencyTotalNs[] =
    "service.latency.total_ns";

// ---------------------------------------------------------------------
// search: the design-space autotuner (DESIGN.md §17).
// ---------------------------------------------------------------------

inline constexpr char kSearchEnumeratedTotal[] =
    "search.enumerated_total";
inline constexpr char kSearchPrunedAnalyticTotal[] =
    "search.pruned_analytic_total";
inline constexpr char kSearchPrunedInfeasibleTotal[] =
    "search.pruned_infeasible_total";
inline constexpr char kSearchSimulatedTotal[] =
    "search.simulated_total";
inline constexpr char kSearchWavesTotal[] = "search.waves_total";
inline constexpr char kSearchFrontierSize[] = "search.frontier_size";

// ---------------------------------------------------------------------
// net: the socket front-end (DESIGN.md §14).
// ---------------------------------------------------------------------

inline constexpr char kNetBytesReadTotal[] = "net.bytes_read_total";
inline constexpr char kNetBytesWrittenTotal[] = "net.bytes_written_total";
inline constexpr char kNetConnsAcceptedTotal[] = "net.conns_accepted_total";
inline constexpr char kNetConnsRejectedTotal[] = "net.conns_rejected_total";
inline constexpr char kNetConnsActive[] = "net.conns_active";
inline constexpr char kNetConnsClosedTotal[] = "net.conns_closed_total";
inline constexpr char kNetConnsClosedEofTotal[] =
    "net.conns_closed_eof_total";
inline constexpr char kNetConnsClosedErrorTotal[] =
    "net.conns_closed_error_total";
inline constexpr char kNetConnsClosedIdleTotal[] =
    "net.conns_closed_idle_total";
inline constexpr char kNetConnsClosedOverflowTotal[] =
    "net.conns_closed_overflow_total";
inline constexpr char kNetConnsClosedProtocolTotal[] =
    "net.conns_closed_protocol_total";
inline constexpr char kNetConnsClosedReadTimeoutTotal[] =
    "net.conns_closed_read_timeout_total";
inline constexpr char kNetInflight[] = "net.inflight";
inline constexpr char kNetRequestsReceivedTotal[] =
    "net.requests_received_total";
inline constexpr char kNetRequestsAdmittedTotal[] =
    "net.requests_admitted_total";
inline constexpr char kNetRequestsShedTotal[] = "net.requests_shed_total";
inline constexpr char kNetRequestsMalformedTotal[] =
    "net.requests_malformed_total";
inline constexpr char kNetRequestsFailedTotal[] =
    "net.requests_failed_total";
inline constexpr char kNetResponsesTotal[] = "net.responses_total";
inline constexpr char kNetResponsesOrphanedTotal[] =
    "net.responses_orphaned_total";
inline constexpr char kNetWatchdogTripsTotal[] =
    "net.watchdog_trips_total";
inline constexpr char kNetLatencyRequestNs[] = "net.latency.request_ns";
inline constexpr char kNetLatencyQueueWaitNs[] =
    "net.latency.queue_wait_ns";
inline constexpr char kNetLatencyHandlerNs[] = "net.latency.handler_ns";

// ---------------------------------------------------------------------
// perf / CLI span families.
// ---------------------------------------------------------------------

/** `lll bench` per-kernel item-latency histograms: kPerfKernelPrefix +
 *  kernel + ".item_ns". */
inline constexpr char kPerfKernelPrefix[] = "perf.";
/** `lll bench` per-kernel spans: kBenchSpanPrefix + kernel. */
inline constexpr char kBenchSpanPrefix[] = "bench.";
/** `lll profile` root spans: kCmdSpanPrefix + subcommand. */
inline constexpr char kCmdSpanPrefix[] = "cmd.";

/**
 * Every registered metric/span name and family prefix, for the
 * auditor's literal check.  A literal matches when it equals an entry
 * byte-for-byte (families are registered as their literal prefix).
 */
inline constexpr const char *kRegisteredNames[] = {
    kObsSelfOverheadNs,
    kSimMemctrlPrefix,
    kSimCacheL1Prefix,
    kSimCacheL2Prefix,
    kSimCacheL3Prefix,
    kSimMshrL1Prefix,
    kSimMshrL2Prefix,
    kSimMshrL3Prefix,
    kSimCorePrefix,
    kSimEventqEventsPerNs,
    kSimWarmupSpan,
    kSimMeasureSpan,
    kSimWatchdogStall,
    kServiceBatchesTotal,
    kServiceRequestsTotal,
    kServiceRequestsFailedTotal,
    kServiceUnitsTotal,
    kServiceCoalescedRequestsTotal,
    kServiceBatchSize,
    kServiceCacheHitsTotal,
    kServiceCacheMissesTotal,
    kServiceCacheEvictionsTotal,
    kServiceCacheSpillEvictionsTotal,
    kServiceLatencyParseNs,
    kServiceLatencyCoalesceNs,
    kServiceLatencyQueueWaitNs,
    kServiceLatencySimulateNs,
    kServiceLatencyRespondNs,
    kServiceLatencyTotalNs,
    kSearchEnumeratedTotal,
    kSearchPrunedAnalyticTotal,
    kSearchPrunedInfeasibleTotal,
    kSearchSimulatedTotal,
    kSearchWavesTotal,
    kSearchFrontierSize,
    kNetBytesReadTotal,
    kNetBytesWrittenTotal,
    kNetConnsAcceptedTotal,
    kNetConnsRejectedTotal,
    kNetConnsActive,
    kNetConnsClosedTotal,
    kNetConnsClosedEofTotal,
    kNetConnsClosedErrorTotal,
    kNetConnsClosedIdleTotal,
    kNetConnsClosedOverflowTotal,
    kNetConnsClosedProtocolTotal,
    kNetConnsClosedReadTimeoutTotal,
    kNetInflight,
    kNetRequestsReceivedTotal,
    kNetRequestsAdmittedTotal,
    kNetRequestsShedTotal,
    kNetRequestsMalformedTotal,
    kNetRequestsFailedTotal,
    kNetResponsesTotal,
    kNetResponsesOrphanedTotal,
    kNetWatchdogTripsTotal,
    kNetLatencyRequestNs,
    kNetLatencyQueueWaitNs,
    kNetLatencyHandlerNs,
    kPerfKernelPrefix,
    kBenchSpanPrefix,
    kCmdSpanPrefix,
};

// ---------------------------------------------------------------------
// Diagnostic IDs (DESIGN.md §10.1 and §15).
// ---------------------------------------------------------------------

/** One registered diagnostic ID: the ID string plus its one-line
 *  meaning.  The meaning here is authoritative — reusing an ID for a
 *  different check is the drift LLL-SRC-112 exists to catch. */
struct DiagId
{
    const char *id;
    const char *title;
};

/** Every diagnostic ID any LLL tool may emit, grouped as allocated. */
inline constexpr DiagId kDiagIds[] = {
    // sim::lintSystemParams (system/platform parameter validation).
    {"LLL-SPEC-001", "cores must be >= 1"},
    {"LLL-SPEC-002", "threadsPerCore outside the supported SMT range"},
    {"LLL-SPEC-003", "zero capacity at the requested SMT way count"},
    {"LLL-SPEC-004", "freqGHz not positive/finite"},
    {"LLL-SPEC-005", "lineBytes not a power of two >= 8"},
    {"LLL-SPEC-006", "load-queue size must be >= 1"},
    {"LLL-SPEC-007", "cache sets not a nonzero power of two"},
    {"LLL-SPEC-008", "cache ways must be >= 1"},
    {"LLL-SPEC-009", "MSHR count must be >= 1"},
    {"LLL-SPEC-010", "prefetchReserve leaves no demand MSHRs"},
    {"LLL-SPEC-011", "prefetcher enabled with zero tableSize"},
    {"LLL-SPEC-012", "prefetcher enabled with zero degree"},
    {"LLL-SPEC-013", "prefetcher enabled with zero distance"},
    {"LLL-SPEC-014", "memory controller peak BW not positive-finite"},
    {"LLL-SPEC-015", "bank service time not positive-finite"},
    {"LLL-SPEC-016", "front/back latencies not positive-finite"},
    {"LLL-SPEC-017", "bank math cannot sustain the declared peak BW"},
    {"LLL-SPEC-018", "watchdog cadence invalid"},
    {"LLL-SPEC-019", "watchdog maxStrikes invalid"},
    // sim::lintKernelSpec (kernel spec validation).
    {"LLL-KRN-001", "kernel has no streams"},
    {"LLL-KRN-002", "stream has zero footprint"},
    {"LLL-KRN-003", "stream has non-positive weight"},
    {"LLL-KRN-004", "stream has zero stride"},
    {"LLL-KRN-005", "stream reuseFraction outside [0, 1]"},
    {"LLL-KRN-006", "stream weights sum to zero"},
    {"LLL-KRN-007", "window out of range"},
    {"LLL-KRN-008", "computeCyclesPerOp out of range"},
    {"LLL-KRN-009", "workPerOp out of range"},
    {"LLL-KRN-010", "software prefetch enabled with distance 0"},
    // Platform / config assembly.
    {"LLL-PLAT-001", "platform cannot build the requested configuration"},
    // analysis::lintSpec analytic bounds (core::deriveBounds).
    {"LLL-LINT-101", "exposed window exceeds the load queue"},
    {"LLL-LINT-102", "MLP ceiling under 5% of peak BW (vacuous config)"},
    {"LLL-LINT-103", "peak BW needs more lines than the L2 MSHRQ holds"},
    {"LLL-LINT-104", "stream-mix classification and predicted ceiling"},
    {"LLL-LINT-105", "software prefetch with no prefetchable stream"},
    {"LLL-LINT-106", "footprint fits in L1; memory system unexercised"},
    {"LLL-LINT-107", "footprint fits in L2; cache-resident behaviour"},
    {"LLL-LINT-108", "declared access class disagrees with stream mix"},
    // core::Recipe reachability.
    {"LLL-RCP-001", "recipe state statically unreachable on platform"},
    {"LLL-RCP-002", "recipe never recommends an optimization"},
    // analysis::checkRunDeterminism.
    {"LLL-DET-001", "metric value differs across tie-break seeds"},
    {"LLL-DET-002", "metric set changes shape across tie-break seeds"},
    // analysis::lintProfileFile (X-Mem latency profiles).
    {"LLL-PROF-101", "latency-profile file missing or corrupt"},
    {"LLL-PROF-102", "profile bandwidth->latency curve not monotone"},
    {"LLL-PROF-103", "profile idle latency disagrees with platform"},
    {"LLL-PROF-104", "profile declared peak differs from platform table"},
    {"LLL-PROF-105", "profile platform unknown; cross-checks impossible"},
    // Reserved for unit tests exercising the Diagnostic machinery.
    {"LLL-TST-001", "reserved: test-only diagnostic"},
    {"LLL-TST-002", "reserved: test-only diagnostic"},
    // src/audit source auditor (`lll audit`, DESIGN.md §15).
    {"LLL-SRC-101", "include violates the declared layering DAG"},
    {"LLL-SRC-102", "module dependency cycle"},
    {"LLL-SRC-103", "include of a module missing from the layer table"},
    {"LLL-SRC-110", "unregistered metric/span name literal"},
    {"LLL-SRC-111", "unregistered diagnostic ID literal"},
    {"LLL-SRC-112", "diagnostic ID registered with conflicting meanings"},
    {"LLL-SRC-120", "Status/Result declaration missing [[nodiscard]]"},
    {"LLL-SRC-121", "banned API (raw clock, rand, time, exit)"},
    {"LLL-SRC-122", "deprecated symbol referenced from non-test code"},
};

} // namespace lll::util::names

#endif // LLL_UTIL_NAMES_HH
