#include "util/logging.hh"

#include <atomic>
#include <cstdio>

namespace lll
{

namespace
{

std::atomic<LogSink> g_sink{nullptr};
std::atomic<unsigned long> g_warn_count{0};
std::atomic<bool> g_debug_cats[static_cast<int>(DebugCat::NumCats)]{};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:  return "panic";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Inform: return "info";
      case LogLevel::Debug:  return "debug";
    }
    return "?";
}

} // namespace

void
setDebugCategory(DebugCat cat, bool enabled)
{
    g_debug_cats[static_cast<int>(cat)].store(enabled);
}

void
setDebugCategory(const std::string &name, bool enabled)
{
    if (name == "mshr")
        setDebugCategory(DebugCat::mshr, enabled);
    else if (name == "memctrl")
        setDebugCategory(DebugCat::memctrl, enabled);
    else if (name == "prefetch")
        setDebugCategory(DebugCat::prefetch, enabled);
    else
        lll_fatal("unknown debug category '%s'", name.c_str());
}

bool
debugEnabled(DebugCat cat)
{
    return g_debug_cats[static_cast<int>(cat)].load(
        std::memory_order_relaxed);
}

LogSink
setLogSink(LogSink sink)
{
    return g_sink.exchange(sink);
}

unsigned long
warnCount()
{
    return g_warn_count.load();
}

namespace detail
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
emit(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Warn)
        g_warn_count.fetch_add(1);
    if (LogSink sink = g_sink.load()) {
        sink(level, msg);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", levelName(level), msg.c_str());
}

void
terminate(LogLevel level, const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "%s: %s\n  at %s:%d\n", levelName(level),
                 msg.c_str(), file, line);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace lll
