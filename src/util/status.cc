#include "util/status.hh"

#include <cstdarg>

namespace lll::util
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:                 return "ok";
      case ErrorCode::InvalidArgument:    return "invalid-argument";
      case ErrorCode::NotFound:           return "not-found";
      case ErrorCode::CorruptData:        return "corrupt-data";
      case ErrorCode::FailedPrecondition: return "failed-precondition";
      case ErrorCode::OutOfRange:         return "out-of-range";
      case ErrorCode::IoError:            return "io-error";
      case ErrorCode::DeadlineExceeded:   return "deadline-exceeded";
      case ErrorCode::Internal:           return "internal";
      case ErrorCode::Unavailable:        return "unavailable";
    }
    return "?";
}

int
exitCodeFor(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return 0;
      case ErrorCode::InvalidArgument:
        return 2;                       // usage error
      case ErrorCode::NotFound:
      case ErrorCode::CorruptData:
      case ErrorCode::FailedPrecondition:
      case ErrorCode::OutOfRange:
      case ErrorCode::IoError:
        return 3;                       // bad input data
      case ErrorCode::DeadlineExceeded:
      case ErrorCode::Internal:
        return 4;                       // simulation failure
      case ErrorCode::Unavailable:
        return 1;                       // transient overload; retry
    }
    return 1;
}

Status
Status::error(ErrorCode code, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    return Status(code, std::move(msg));
}

Status
Status::withContext(const char *fmt, ...) const
{
    if (ok())
        return *this;
    va_list ap;
    va_start(ap, fmt);
    std::string frame = detail::vformat(fmt, ap);
    va_end(ap);
    return Status(code_, frame + ": " + message_);
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(errorCodeName(code_)) + ": " + message_;
}

} // namespace lll::util
