/**
 * @file
 * Statistics primitives used throughout the simulator.
 *
 * The key structure for this project is TimeWeightedStat: the paper's
 * n_avg is the *time-weighted* average occupancy of an MSHR queue, so the
 * simulator integrates occupancy over simulated time rather than averaging
 * samples.
 */

#ifndef LLL_UTIL_STATS_HH
#define LLL_UTIL_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace lll
{

/** Simulated time in picoseconds. */
using Tick = uint64_t;

/** Ticks per nanosecond; the global time base of the simulator. */
constexpr Tick ticksPerNs = 1000;

/** Convert nanoseconds (possibly fractional) to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs) + 0.5);
}

/** Convert ticks to nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/**
 * A simple monotonically increasing event count.
 */
class Counter
{
  public:
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(uint64_t n) { value_ += n; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * Sample-weighted mean/min/max accumulator.
 */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    double sum_ = 0.0;
    uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Integrates a piecewise-constant level over simulated time.
 *
 * Used for MSHR queue occupancy: the time-weighted mean over a measurement
 * window is exactly the paper's n_avg for that queue.
 */
class TimeWeightedStat
{
  public:
    /** Record that the level changes to @p level at time @p now. */
    void
    set(Tick now, double level)
    {
        lll_assert(now >= last_, "time ran backwards in TimeWeightedStat");
        area_ += current_ * static_cast<double>(now - last_);
        last_ = now;
        current_ = level;
        max_ = std::max(max_, level);
    }

    /** Adjust the level by @p delta at time @p now. */
    void add(Tick now, double delta) { set(now, current_ + delta); }

    /** Current level. */
    double current() const { return current_; }

    /** Highest level seen since reset. */
    double max() const { return max_; }

    /**
     * Time-weighted mean over [start, now].  Call after set()/add() have
     * recorded every change; integrates the trailing segment to @p now.
     */
    double
    mean(Tick start, Tick now) const
    {
        lll_assert(now >= last_, "bad window");
        if (now <= start)
            return current_;
        double area = area_ + current_ * static_cast<double>(now - last_);
        // area_ integrates from time 0; the caller resets at window start,
        // so 'start' is the reset point.
        return area / static_cast<double>(now - start);
    }

    /** Restart integration at @p now, keeping the current level. */
    void
    reset(Tick now)
    {
        area_ = 0.0;
        last_ = now;
        max_ = current_;
    }

  private:
    double current_ = 0.0;
    double area_ = 0.0;
    Tick last_ = 0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram for latency distributions.
 */
class Histogram
{
  public:
    /** @param bucket_width width of each bucket; @param buckets count. */
    explicit Histogram(double bucket_width = 10.0, size_t buckets = 128)
        : width_(bucket_width), counts_(buckets, 0)
    {
    }

    void
    sample(double v)
    {
        size_t idx = v <= 0.0 ? 0 : static_cast<size_t>(v / width_);
        idx = std::min(idx, counts_.size() - 1);
        ++counts_[idx];
        ++total_;
        sum_ += v;
    }

    uint64_t total() const { return total_; }
    double mean() const
    {
        return total_ ? sum_ / static_cast<double>(total_) : 0.0;
    }

    /** Value below which @p frac of samples fall (bucket resolution). */
    double
    percentile(double frac) const
    {
        if (total_ == 0)
            return 0.0;
        uint64_t target =
            static_cast<uint64_t>(frac * static_cast<double>(total_));
        uint64_t seen = 0;
        for (size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= target)
                return (static_cast<double>(i) + 0.5) * width_;
        }
        return static_cast<double>(counts_.size()) * width_;
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
        sum_ = 0.0;
    }

  private:
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace lll

#endif // LLL_UTIL_STATS_HH
