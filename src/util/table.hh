/**
 * @file
 * Minimal ASCII table renderer used by the bench harnesses to print
 * paper-style tables (Tables I, III–IX of the paper).
 */

#ifndef LLL_UTIL_TABLE_HH
#define LLL_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace lll
{

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"Proc", "Source", "BW (GB/s)"});
 *   t.addRow({"SKL", "base", "106.9 (84%)"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator between row groups. */
    void addSeparator();

    /** Optional caption printed above the table. */
    void setCaption(std::string caption) { caption_ = std::move(caption); }

    /** Render the full table to a string. */
    std::string render() const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    /** Empty vector encodes a separator row. */
    std::vector<std::vector<std::string>> rows_;
    std::string caption_;
};

/** Format a double with @p decimals fractional digits. */
std::string fmtDouble(double v, int decimals = 2);

/** Format "value (pct%)" the way the paper's BW column reads. */
std::string fmtBwPct(double bw_gbs, double peak_gbs);

/** Format a speedup like "1.4x". */
std::string fmtSpeedup(double s);

} // namespace lll

#endif // LLL_UTIL_TABLE_HH
