/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant of the library was violated (a bug in
 *            LLL itself).  Aborts so a debugger or core dump can be used.
 * fatal()  — the simulation cannot continue because of a user error (bad
 *            configuration, invalid arguments).  Exits with status 1.
 * warn()   — something works well enough but might surprise the user.
 * inform() — normal operating messages.
 */

#ifndef LLL_UTIL_LOGGING_HH
#define LLL_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace lll
{

/** Severity of a log message. */
enum class LogLevel
{
    Panic,
    Fatal,
    Warn,
    Inform,
    Debug,
};

/**
 * Debug-log categories for LLL_DEBUG.  Lower-case names so call sites
 * read `LLL_DEBUG(mshr, ...)`.
 */
enum class DebugCat
{
    mshr,
    memctrl,
    prefetch,
    NumCats,
};

/** Enable/disable a debug category at runtime (all start disabled). */
void setDebugCategory(DebugCat cat, bool enabled);

/** By-name variant ("mshr", "memctrl", "prefetch"); fatal if unknown. */
void setDebugCategory(const std::string &name, bool enabled);

/** Whether @p cat is currently enabled. */
bool debugEnabled(DebugCat cat);

namespace detail
{

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** Emit a message and, for Panic/Fatal, terminate the process. */
[[noreturn]] void terminate(LogLevel level, const std::string &msg,
                            const char *file, int line);

/** Emit a non-fatal message. */
void emit(LogLevel level, const std::string &msg);

std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Hook allowing tests to capture warn()/inform() output.  Returns the
 * previously installed sink.  Pass nullptr to restore stderr output.
 */
using LogSink = void (*)(LogLevel, const std::string &);
LogSink setLogSink(LogSink sink);

/** Number of warnings emitted since process start (test aid). */
unsigned long warnCount();

} // namespace lll

#define lll_panic(...)                                                      \
    ::lll::detail::terminate(::lll::LogLevel::Panic,                        \
                             ::lll::detail::format(__VA_ARGS__),            \
                             __FILE__, __LINE__)

#define lll_fatal(...)                                                      \
    ::lll::detail::terminate(::lll::LogLevel::Fatal,                        \
                             ::lll::detail::format(__VA_ARGS__),            \
                             __FILE__, __LINE__)

#define lll_warn(...)                                                       \
    ::lll::detail::emit(::lll::LogLevel::Warn,                              \
                        ::lll::detail::format(__VA_ARGS__))

#define lll_inform(...)                                                     \
    ::lll::detail::emit(::lll::LogLevel::Inform,                            \
                        ::lll::detail::format(__VA_ARGS__))

/**
 * Category-gated debug logging, routed through the LogSink so tests can
 * assert on it:
 *
 *     LLL_DEBUG(mshr, "%s: allocate line %llu", name, line);
 *
 * Categories (lll::DebugCat) are runtime toggles; the whole statement
 * compiles away when the build defines LLL_DEBUG_DISABLED (CMake option
 * -DLLL_DEBUG_LOG=OFF).
 */
#ifdef LLL_DEBUG_DISABLED
#define LLL_DEBUG(cat, ...)                                                 \
    do {                                                                    \
    } while (0)
#else
#define LLL_DEBUG(cat, ...)                                                 \
    do {                                                                    \
        if (::lll::debugEnabled(::lll::DebugCat::cat)) {                    \
            ::lll::detail::emit(::lll::LogLevel::Debug,                     \
                                std::string("[" #cat "] ") +                \
                                    ::lll::detail::format(__VA_ARGS__));    \
        }                                                                   \
    } while (0)
#endif

/** Panic when an internal invariant fails. */
#define lll_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            lll_panic("assertion '%s' failed: %s", #cond,                   \
                      ::lll::detail::format(__VA_ARGS__).c_str());          \
        }                                                                   \
    } while (0)

/**
 * Expensive runtime invariant checks on simulator hot paths (MSHR
 * occupancy vs capacity, event-queue tick monotonicity, request
 * conservation).  Compiled in only with -DLLL_INVARIANTS=ON; the
 * invariants-ON CI job keeps them honest.  Violation is always a
 * library bug, so failures panic.
 */
#ifdef LLL_INVARIANTS_ENABLED
#define LLL_INVARIANT(cond, ...) lll_assert(cond, __VA_ARGS__)
#else
#define LLL_INVARIANT(cond, ...)                                            \
    do {                                                                    \
    } while (0)
#endif

#endif // LLL_UTIL_LOGGING_HH
