/**
 * @file
 * Shared subcommand flag parsing for the `lll` CLI.
 *
 * Before this header every subcommand hand-rolled its own flag loop,
 * and the edges drifted: some rejected a repeated `--json`, some kept
 * the first, some the last; unknown flags exited through three
 * different messages.  ArgParser centralizes the contract once:
 *
 *   - flags are extracted destructively in any order, leaving
 *     positional operands (workload names, optimization tokens) behind
 *     for the subcommand to interpret;
 *   - a valued flag without its value is "FLAG needs an argument";
 *   - a flag given twice is "FLAG given more than once" (never a
 *     silent first/last-wins);
 *   - finish() rejects anything left over that the subcommand did not
 *     claim: "unknown flag '-x'" / "unexpected argument 'x'".
 *
 * All failures are InvalidArgument, which util::exitCodeFor maps to
 * the CLI's usage exit code (2) — so `--jobs`, `--cache-dir`,
 * `--json`, `--cores` behave identically across every subcommand.
 */

#ifndef LLL_UTIL_ARGPARSE_HH
#define LLL_UTIL_ARGPARSE_HH

#include <string>
#include <vector>

#include "util/status.hh"

namespace lll::util
{

class ArgParser
{
  public:
    /** Parse over @p args (typically argv[first..argc)). */
    explicit ArgParser(std::vector<std::string> args)
        : args_(std::move(args))
    {
    }

    ArgParser(int argc, char **argv, int first)
        : args_(argv + (first < argc ? first : argc), argv + argc)
    {
    }

    /**
     * Extract `FLAG VALUE`; empty string when the flag is absent.
     * Errors on a missing value or a repeated flag.
     */
    [[nodiscard]] util::Result<std::string> stringFlag(const std::string &flag);

    /**
     * Extract `FLAG N` as a strictly positive integer; @p fallback
     * when absent ("--jobs", "--cores", "--iterations"...).
     */
    [[nodiscard]] util::Result<int> intFlag(const std::string &flag, int fallback);

    /**
     * Extract `FLAG N` as an unsigned 64-bit value; @p fallback when
     * absent ("--seed").
     */
    [[nodiscard]] util::Result<uint64_t> uint64Flag(const std::string &flag,
                                      uint64_t fallback);

    /**
     * Extract `FLAG X` as a finite non-negative double; @p fallback
     * when absent ("--tolerance", "--measure-ms").
     */
    [[nodiscard]] util::Result<double> doubleFlag(const std::string &flag,
                                    double fallback);

    /** Extract a bare `FLAG`; false when absent, error on repeats. */
    [[nodiscard]] util::Result<bool> boolFlag(const std::string &flag);

    /** Positional operands left after flag extraction. */
    const std::vector<std::string> &rest() const { return args_; }

    /**
     * Reject anything still unconsumed: "unknown flag '-x'" for
     * dash-prefixed leftovers, "unexpected argument 'x'" otherwise.
     * Call after all flags *and* positionals have been claimed.
     */
    [[nodiscard]] util::Status finish() const;

    /** Drop the first @p n positional operands (claimed by caller). */
    void consumePositional(size_t n);

  private:
    [[nodiscard]] util::Result<size_t> findOnce(const std::string &flag) const;

    std::vector<std::string> args_;
};

} // namespace lll::util

#endif // LLL_UTIL_ARGPARSE_HH
