/**
 * @file
 * Shared subcommand flag parsing for the `lll` CLI.
 *
 * Before this header every subcommand hand-rolled its own flag loop,
 * and the edges drifted: some rejected a repeated `--json`, some kept
 * the first, some the last; unknown flags exited through three
 * different messages.  ArgParser centralizes the contract once:
 *
 *   - flags are extracted destructively in any order, leaving
 *     positional operands (workload names, optimization tokens) behind
 *     for the subcommand to interpret;
 *   - a valued flag without its value is "FLAG needs an argument";
 *   - a flag given twice is "FLAG given more than once" (never a
 *     silent first/last-wins);
 *   - finish() rejects anything left over that the subcommand did not
 *     claim: "unknown flag '-x'" / "unexpected argument 'x'".
 *
 * All failures are InvalidArgument, which util::exitCodeFor maps to
 * the CLI's usage exit code (2) — so `--jobs`, `--cache-dir`,
 * `--json`, `--cores` behave identically across every subcommand.
 *
 * The parser is also the single source of `--help` truth: the
 * constructor strips `--help` / `-h`, every accessor registers its
 * flag (name, value shape, one-line help), and helpText() renders the
 * one usage format every subcommand shares.  In help mode accessors
 * return their fallbacks without validating anything — the command
 * checks helpRequested() once its flags are registered, prints, and
 * exits 0 — so `lll <cmd> --help` never fails on the arguments around
 * it.
 */

#ifndef LLL_UTIL_ARGPARSE_HH
#define LLL_UTIL_ARGPARSE_HH

#include <string>
#include <vector>

#include "util/status.hh"

namespace lll::util
{

/** One flag as a subcommand registered it, for the help renderer. */
struct FlagInfo
{
    std::string flag;
    const char *metavar;    //!< nullptr for bare (boolean) flags
    const char *help;       //!< optional one-liner (may be nullptr)
    bool repeatable = false;
};

class ArgParser
{
  public:
    /** Parse over @p args (typically argv[first..argc)).  `--help` /
     *  `-h` anywhere in the list is stripped and latched. */
    explicit ArgParser(std::vector<std::string> args)
        : args_(std::move(args))
    {
        stripHelp();
    }

    ArgParser(int argc, char **argv, int first)
        : args_(argv + (first < argc ? first : argc), argv + argc)
    {
        stripHelp();
    }

    /**
     * Extract `FLAG VALUE`; empty string when the flag is absent.
     * Errors on a missing value or a repeated flag.
     */
    [[nodiscard]] util::Result<std::string> stringFlag(const std::string &flag,
                                         const char *help = nullptr);

    /**
     * Extract every `FLAG VALUE` occurrence, in argument order
     * (repeatable flags: "--axis a=1,2 --axis b=3,4").
     */
    [[nodiscard]] util::Result<std::vector<std::string>>
    stringList(const std::string &flag, const char *help = nullptr);

    /**
     * Extract `FLAG N` as a strictly positive integer; @p fallback
     * when absent ("--jobs", "--cores", "--iterations"...).
     */
    [[nodiscard]] util::Result<int> intFlag(const std::string &flag, int fallback,
                              const char *help = nullptr);

    /**
     * Extract `FLAG N` as an unsigned 64-bit value; @p fallback when
     * absent ("--seed").
     */
    [[nodiscard]] util::Result<uint64_t> uint64Flag(const std::string &flag,
                                      uint64_t fallback,
                                      const char *help = nullptr);

    /**
     * Extract `FLAG X` as a finite non-negative double; @p fallback
     * when absent ("--tolerance", "--measure-ms").
     */
    [[nodiscard]] util::Result<double> doubleFlag(const std::string &flag,
                                    double fallback,
                                    const char *help = nullptr);

    /** Extract a bare `FLAG`; false when absent, error on repeats. */
    [[nodiscard]] util::Result<bool> boolFlag(const std::string &flag,
                                const char *help = nullptr);

    /** Positional operands left after flag extraction. */
    const std::vector<std::string> &rest() const { return args_; }

    /**
     * Reject anything still unconsumed: "unknown flag '-x'" for
     * dash-prefixed leftovers, "unexpected argument 'x'" otherwise.
     * Call after all flags *and* positionals have been claimed.
     * Always ok in help mode.
     */
    [[nodiscard]] util::Status finish() const;

    /** Drop the first @p n positional operands (claimed by caller). */
    void consumePositional(size_t n);

    /** `--help` / `-h` was present.  Check once every flag accessor
     *  has run (registration is what fills the help text). */
    bool helpRequested() const { return helpRequested_; }

    /** Every flag registered so far, in registration order. */
    const std::vector<FlagInfo> &flags() const { return flags_; }

    /**
     * The one shared help format: "usage: lll <usage_tail>" plus one
     * line per registered flag.  @p summary is the subcommand's
     * one-line description (omitted when empty).
     */
    std::string helpText(const std::string &usage_tail,
                         const std::string &summary = "") const;

  private:
    [[nodiscard]] util::Result<size_t> findOnce(const std::string &flag) const;
    [[nodiscard]] util::Result<std::string> extractValue(const std::string &flag);
    void stripHelp();
    void record(const std::string &flag, const char *metavar,
                const char *help, bool repeatable);

    std::vector<std::string> args_;
    std::vector<FlagInfo> flags_;
    bool helpRequested_ = false;
};

} // namespace lll::util

#endif // LLL_UTIL_ARGPARSE_HH
