#include "util/diagnostic.hh"

#include <sstream>

#include "util/logging.hh"

namespace lll::util
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      case Severity::Note:
        return "note";
    }
    return "unknown";
}

std::string
Diagnostic::toString() const
{
    std::string out = severityName(severity);
    out += " ";
    out += id;
    if (!subject.empty()) {
        out += " [";
        out += subject;
        out += "]";
    }
    out += ": ";
    out += message;
    return out;
}

void
DiagnosticList::vadd(Severity sev, const char *id, std::string subject,
                     const char *fmt, va_list ap)
{
    Diagnostic d;
    d.id = id;
    d.severity = sev;
    d.subject = std::move(subject);
    d.message = detail::vformat(fmt, ap);
    diags_.push_back(std::move(d));
}

void
DiagnosticList::error(const char *id, std::string subject,
                      const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vadd(Severity::Error, id, std::move(subject), fmt, ap);
    va_end(ap);
}

void
DiagnosticList::warning(const char *id, std::string subject,
                        const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vadd(Severity::Warning, id, std::move(subject), fmt, ap);
    va_end(ap);
}

void
DiagnosticList::note(const char *id, std::string subject, const char *fmt,
                     ...)
{
    va_list ap;
    va_start(ap, fmt);
    vadd(Severity::Note, id, std::move(subject), fmt, ap);
    va_end(ap);
}

void
DiagnosticList::append(const DiagnosticList &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

void
DiagnosticList::setSubjects(const std::string &subject)
{
    for (Diagnostic &d : diags_)
        d.subject = subject;
}

size_t
DiagnosticList::count(Severity s) const
{
    size_t n = 0;
    for (const Diagnostic &d : diags_) {
        if (d.severity == s)
            ++n;
    }
    return n;
}

Status
DiagnosticList::toStatus(ErrorCode code) const
{
    for (const Diagnostic &d : diags_) {
        if (d.severity == Severity::Error)
            return Status(code, d.id + ": " + d.message);
    }
    return Status::okStatus();
}

std::string
DiagnosticList::renderText() const
{
    std::string out;
    for (const Diagnostic &d : diags_) {
        out += d.toString();
        out += "\n";
    }
    return out;
}

namespace
{

/** Minimal JSON string escape (the exporters in obs/ have their own;
 *  diagnostics must stay usable without the obs library). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
DiagnosticList::renderJson(int indent) const
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    std::ostringstream out;
    out << "[";
    for (size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &d = diags_[i];
        out << (i ? "," : "") << "\n"
            << pad << "  {\"id\": \"" << jsonEscape(d.id)
            << "\", \"severity\": \"" << severityName(d.severity)
            << "\", \"subject\": \"" << jsonEscape(d.subject)
            << "\", \"message\": \"" << jsonEscape(d.message) << "\"}";
    }
    if (!diags_.empty())
        out << "\n" << pad;
    out << "]";
    return out.str();
}

} // namespace lll::util
