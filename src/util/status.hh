/**
 * @file
 * Structured error types for the user-facing library surface.
 *
 * The library distinguishes three failure regimes (see DESIGN.md §9):
 *
 *  - recoverable, user-caused errors (corrupt input files, unknown
 *    names, inconsistent configurations) travel as Status / Result<T>
 *    return values so callers — above all the `lll` CLI — can report
 *    them and exit with a meaningful code instead of aborting;
 *  - lll_fatal() remains only as a convenience for quick scripts and
 *    the pre-validated legacy wrappers (e.g. Platform::sysParams)
 *    that prefer to die on bad input;
 *  - lll_panic()/lll_assert() stay reserved for violated *internal*
 *    invariants — bugs in LLL itself, never reachable from bad input.
 *
 * A Status carries an ErrorCode plus a context chain built up with
 * withContext() as the error propagates ("while loading 'x.profile':
 * line 7: malformed point").
 */

#ifndef LLL_UTIL_STATUS_HH
#define LLL_UTIL_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace lll::util
{

/** Coarse error taxonomy; each code maps to a CLI exit code. */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument,    //!< malformed user request (usage error)
    NotFound,           //!< named entity / file does not exist
    CorruptData,        //!< input exists but cannot be parsed
    FailedPrecondition, //!< configuration is internally inconsistent
    OutOfRange,         //!< value outside the supported domain
    IoError,            //!< file could not be read/written
    DeadlineExceeded,   //!< forward-progress watchdog tripped
    Internal,           //!< library bug surfaced as an error
    Unavailable,        //!< transient overload — retry later
};

/** Stable lower-case name ("corrupt-data", ...). */
const char *errorCodeName(ErrorCode code);

/**
 * Process exit code for a failure of @p code, following the CLI
 * convention documented in README "Robustness": 2 usage error, 3 bad
 * input data, 4 simulation failure, 1 anything else.
 */
int exitCodeFor(ErrorCode code);

/**
 * An error code plus a human-readable message with context chain.
 * A default-constructed Status is OK.
 */
class Status
{
  public:
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    [[nodiscard]] static Status okStatus() { return Status(); }

    /** printf-style constructor for error statuses. */
    [[nodiscard]] static Status error(ErrorCode code, const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /**
     * Prepend a context frame: `status.withContext("loading '%s'", p)`
     * turns "malformed point" into "loading 'x': malformed point".
     * No-op on an OK status.
     */
    [[nodiscard]] Status withContext(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));

    /** "corrupt-data: loading 'x': malformed point" (or "ok"). */
    std::string toString() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * Either a value or an error Status (a minimal absl::StatusOr).
 *
 * Construction from T is implicit so `return LatencyProfile(...)`
 * works; construction from a non-OK Status is implicit so
 * `return Status::error(...)` propagates.  Constructing a Result from
 * an OK Status is a bug (panics).
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}

    Result(Status status) : status_(std::move(status))
    {
        lll_assert(!status_.ok(),
                   "Result constructed from OK status without a value");
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    T &value()
    {
        lll_assert(ok(), "Result::value() on error: %s",
                   status_.toString().c_str());
        return *value_;
    }

    const T &value() const
    {
        lll_assert(ok(), "Result::value() on error: %s",
                   status_.toString().c_str());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** Move the value out (for non-copyable payloads). */
    T take()
    {
        lll_assert(ok(), "Result::take() on error: %s",
                   status_.toString().c_str());
        return std::move(*value_);
    }

    /** The value, or @p fallback when this Result holds an error. */
    T valueOr(T fallback) const { return ok() ? *value_ : fallback; }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace lll::util

/** Propagate a non-OK Status out of a Status/Result-returning function. */
#define LLL_RETURN_IF_ERROR(expr)                                           \
    do {                                                                    \
        ::lll::util::Status lll_status_ = (expr);                           \
        if (!lll_status_.ok())                                              \
            return lll_status_;                                             \
    } while (0)

#endif // LLL_UTIL_STATUS_HH
