#include "util/argparse.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace lll::util
{

void ArgParser::stripHelp()
{
    for (size_t i = 0; i < args_.size();) {
        if (args_[i] == "--help" || args_[i] == "-h") {
            helpRequested_ = true;
            args_.erase(args_.begin() + static_cast<long>(i));
        } else {
            ++i;
        }
    }
}

void ArgParser::record(const std::string &flag, const char *metavar,
                       const char *help, bool repeatable)
{
    for (const FlagInfo &f : flags_) {
        if (f.flag == flag)
            return; // shared helpers may re-register; keep the first
    }
    flags_.push_back({flag, metavar, help, repeatable});
}

util::Result<size_t> ArgParser::findOnce(const std::string &flag) const
{
    size_t found = args_.size();
    for (size_t i = 0; i < args_.size(); ++i) {
        if (args_[i] != flag)
            continue;
        if (found != args_.size()) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "%s given more than once", flag.c_str());
        }
        found = i;
    }
    return found;
}

util::Result<std::string> ArgParser::extractValue(const std::string &flag)
{
    util::Result<size_t> at = findOnce(flag);
    if (!at.ok())
        return at.status();
    if (*at == args_.size())
        return std::string();
    if (*at + 1 >= args_.size()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "%s needs an argument", flag.c_str());
    }
    std::string value = args_[*at + 1];
    args_.erase(args_.begin() + static_cast<long>(*at),
                args_.begin() + static_cast<long>(*at) + 2);
    return value;
}

util::Result<std::string> ArgParser::stringFlag(const std::string &flag,
                                                const char *help)
{
    record(flag, "S", help, false);
    if (helpRequested_)
        return std::string();
    return extractValue(flag);
}

util::Result<std::vector<std::string>>
ArgParser::stringList(const std::string &flag, const char *help)
{
    record(flag, "S", help, true);
    std::vector<std::string> values;
    if (helpRequested_)
        return values;
    for (size_t i = 0; i < args_.size();) {
        if (args_[i] != flag) {
            ++i;
            continue;
        }
        if (i + 1 >= args_.size()) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "%s needs an argument", flag.c_str());
        }
        values.push_back(args_[i + 1]);
        args_.erase(args_.begin() + static_cast<long>(i),
                    args_.begin() + static_cast<long>(i) + 2);
    }
    return values;
}

util::Result<int> ArgParser::intFlag(const std::string &flag, int fallback,
                                     const char *help)
{
    record(flag, "N", help, false);
    if (helpRequested_)
        return fallback;
    util::Result<std::string> raw = extractValue(flag);
    if (!raw.ok())
        return raw.status();
    if (raw->empty())
        return fallback;
    char *end = nullptr;
    const long n = std::strtol(raw->c_str(), &end, 10);
    if (*end != '\0' || n < 1) {
        return Status::error(ErrorCode::InvalidArgument,
                             "%s wants a positive integer, got '%s'",
                             flag.c_str(), raw->c_str());
    }
    return static_cast<int>(n);
}

util::Result<uint64_t> ArgParser::uint64Flag(const std::string &flag,
                                             uint64_t fallback,
                                             const char *help)
{
    record(flag, "N", help, false);
    if (helpRequested_)
        return fallback;
    util::Result<std::string> raw = extractValue(flag);
    if (!raw.ok())
        return raw.status();
    if (raw->empty())
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(raw->c_str(), &end, 10);
    if (raw->empty() || *end != '\0') {
        return Status::error(ErrorCode::InvalidArgument,
                             "%s wants an unsigned integer, got '%s'",
                             flag.c_str(), raw->c_str());
    }
    return static_cast<uint64_t>(n);
}

util::Result<double> ArgParser::doubleFlag(const std::string &flag,
                                           double fallback,
                                           const char *help)
{
    record(flag, "X", help, false);
    if (helpRequested_)
        return fallback;
    util::Result<std::string> raw = extractValue(flag);
    if (!raw.ok())
        return raw.status();
    if (raw->empty())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(raw->c_str(), &end);
    if (*end != '\0' || !(v >= 0.0) || v > 1e300) {
        return Status::error(ErrorCode::InvalidArgument,
                             "%s wants a non-negative number, got '%s'",
                             flag.c_str(), raw->c_str());
    }
    return v;
}

util::Result<bool> ArgParser::boolFlag(const std::string &flag,
                                       const char *help)
{
    record(flag, nullptr, help, false);
    if (helpRequested_)
        return false;
    util::Result<size_t> at = findOnce(flag);
    if (!at.ok())
        return at.status();
    if (*at == args_.size())
        return false;
    args_.erase(args_.begin() + static_cast<long>(*at));
    return true;
}

util::Status ArgParser::finish() const
{
    if (helpRequested_ || args_.empty())
        return Status::okStatus();
    const std::string &arg = args_.front();
    return Status::error(ErrorCode::InvalidArgument,
                         !arg.empty() && arg[0] == '-'
                             ? "unknown flag '%s'"
                             : "unexpected argument '%s'",
                         arg.c_str());
}

void ArgParser::consumePositional(size_t n)
{
    if (n > args_.size())
        n = args_.size();
    args_.erase(args_.begin(), args_.begin() + static_cast<long>(n));
}

std::string ArgParser::helpText(const std::string &usage_tail,
                                const std::string &summary) const
{
    std::ostringstream out;
    out << "usage: lll " << usage_tail << "\n";
    if (!summary.empty())
        out << "\n" << summary << "\n";
    if (flags_.empty())
        return out.str();
    out << "\nflags:\n";
    size_t width = 0;
    auto head = [](const FlagInfo &f) {
        std::string h = f.flag;
        if (f.metavar) {
            h += " ";
            h += f.metavar;
        }
        return h;
    };
    for (const FlagInfo &f : flags_)
        width = std::max(width, head(f).size());
    for (const FlagInfo &f : flags_) {
        std::string h = head(f);
        out << "  " << h;
        const bool note = (f.help && *f.help) || f.repeatable;
        if (note)
            out << std::string(width - h.size() + 2, ' ');
        if (f.help && *f.help)
            out << f.help;
        if (f.repeatable)
            out << ((f.help && *f.help) ? " (repeatable)"
                                        : "(repeatable)");
        out << "\n";
    }
    return out.str();
}

} // namespace lll::util
