#include "util/argparse.hh"

#include <cstdlib>

namespace lll::util
{

util::Result<size_t> ArgParser::findOnce(const std::string &flag) const
{
    size_t found = args_.size();
    for (size_t i = 0; i < args_.size(); ++i) {
        if (args_[i] != flag)
            continue;
        if (found != args_.size()) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "%s given more than once", flag.c_str());
        }
        found = i;
    }
    return found;
}

util::Result<std::string> ArgParser::stringFlag(const std::string &flag)
{
    util::Result<size_t> at = findOnce(flag);
    if (!at.ok())
        return at.status();
    if (*at == args_.size())
        return std::string();
    if (*at + 1 >= args_.size()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "%s needs an argument", flag.c_str());
    }
    std::string value = args_[*at + 1];
    args_.erase(args_.begin() + static_cast<long>(*at),
                args_.begin() + static_cast<long>(*at) + 2);
    return value;
}

util::Result<int> ArgParser::intFlag(const std::string &flag, int fallback)
{
    util::Result<std::string> raw = stringFlag(flag);
    if (!raw.ok())
        return raw.status();
    if (raw->empty())
        return fallback;
    char *end = nullptr;
    const long n = std::strtol(raw->c_str(), &end, 10);
    if (*end != '\0' || n < 1) {
        return Status::error(ErrorCode::InvalidArgument,
                             "%s wants a positive integer, got '%s'",
                             flag.c_str(), raw->c_str());
    }
    return static_cast<int>(n);
}

util::Result<uint64_t> ArgParser::uint64Flag(const std::string &flag,
                                             uint64_t fallback)
{
    util::Result<std::string> raw = stringFlag(flag);
    if (!raw.ok())
        return raw.status();
    if (raw->empty())
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(raw->c_str(), &end, 10);
    if (raw->empty() || *end != '\0') {
        return Status::error(ErrorCode::InvalidArgument,
                             "%s wants an unsigned integer, got '%s'",
                             flag.c_str(), raw->c_str());
    }
    return static_cast<uint64_t>(n);
}

util::Result<double> ArgParser::doubleFlag(const std::string &flag,
                                           double fallback)
{
    util::Result<std::string> raw = stringFlag(flag);
    if (!raw.ok())
        return raw.status();
    if (raw->empty())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(raw->c_str(), &end);
    if (*end != '\0' || !(v >= 0.0) || v > 1e300) {
        return Status::error(ErrorCode::InvalidArgument,
                             "%s wants a non-negative number, got '%s'",
                             flag.c_str(), raw->c_str());
    }
    return v;
}

util::Result<bool> ArgParser::boolFlag(const std::string &flag)
{
    util::Result<size_t> at = findOnce(flag);
    if (!at.ok())
        return at.status();
    if (*at == args_.size())
        return false;
    args_.erase(args_.begin() + static_cast<long>(*at));
    return true;
}

util::Status ArgParser::finish() const
{
    if (args_.empty())
        return Status::okStatus();
    const std::string &arg = args_.front();
    return Status::error(ErrorCode::InvalidArgument,
                         !arg.empty() && arg[0] == '-'
                             ? "unknown flag '%s'"
                             : "unexpected argument '%s'",
                         arg.c_str());
}

void ArgParser::consumePositional(size_t n)
{
    if (n > args_.size())
        n = args_.size();
    args_.erase(args_.begin(), args_.begin() + static_cast<long>(n));
}

} // namespace lll::util
