#include "util/json.hh"

#include <cctype>
#include <cstdlib>

namespace lll::util
{

namespace
{

/** Recursive-descent parser over a borrowed buffer. */
class Parser
{
  public:
    Parser(const std::string &text, const JsonLimits &limits)
        : text_(text), limits_(limits)
    {
    }

    util::Result<JsonValue> parse()
    {
        if (limits_.maxBytes > 0 && text_.size() > limits_.maxBytes) {
            return util::Status::error(
                util::ErrorCode::InvalidArgument,
                "json: input is %zu bytes (limit %zu)", text_.size(),
                limits_.maxBytes);
        }
        JsonValue root;
        auto st = parseValue(&root, 0);
        if (!st.ok())
            return st;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content after JSON document");
        return root;
    }

  private:
    util::Status fail(const char *what) const
    {
        return util::Status::error(util::ErrorCode::CorruptData,
                                   "json: %s at byte %zu", what, pos_);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool consumeWord(const char *word)
    {
        size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    util::Status parseValue(JsonValue *out, int depth)
    {
        if (depth > limits_.maxDepth) {
            return util::Status::error(
                util::ErrorCode::InvalidArgument,
                "json: nesting deeper than %d levels at byte %zu",
                limits_.maxDepth, pos_);
        }
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case '{':
            return parseObject(out, depth);
        case '[':
            return parseArray(out, depth);
        case '"':
            out->type = JsonValue::Type::String;
            return parseString(&out->string);
        case 't':
            if (!consumeWord("true"))
                return fail("invalid literal");
            out->type = JsonValue::Type::Bool;
            out->boolean = true;
            return util::Status::okStatus();
        case 'f':
            if (!consumeWord("false"))
                return fail("invalid literal");
            out->type = JsonValue::Type::Bool;
            out->boolean = false;
            return util::Status::okStatus();
        case 'n':
            if (!consumeWord("null"))
                return fail("invalid literal");
            out->type = JsonValue::Type::Null;
            return util::Status::okStatus();
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail("unexpected character");
        }
    }

    util::Status parseObject(JsonValue *out, int depth)
    {
        ++pos_; // '{'
        out->type = JsonValue::Type::Object;
        skipWs();
        if (consume('}'))
            return util::Status::okStatus();
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            auto st = parseString(&key);
            if (!st.ok())
                return st;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            JsonValue member;
            st = parseValue(&member, depth + 1);
            if (!st.ok())
                return st;
            out->object.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return util::Status::okStatus();
            return fail("expected ',' or '}' in object");
        }
    }

    util::Status parseArray(JsonValue *out, int depth)
    {
        ++pos_; // '['
        out->type = JsonValue::Type::Array;
        skipWs();
        if (consume(']'))
            return util::Status::okStatus();
        while (true) {
            JsonValue element;
            auto st = parseValue(&element, depth + 1);
            if (!st.ok())
                return st;
            out->array.push_back(std::move(element));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return util::Status::okStatus();
            return fail("expected ',' or ']' in array");
        }
    }

    util::Status parseString(std::string *out)
    {
        ++pos_; // '"'
        out->clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return util::Status::okStatus();
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_];
                switch (e) {
                case '"': out->push_back('"'); break;
                case '\\': out->push_back('\\'); break;
                case '/': out->push_back('/'); break;
                case 'b': out->push_back('\b'); break;
                case 'f': out->push_back('\f'); break;
                case 'n': out->push_back('\n'); break;
                case 'r': out->push_back('\r'); break;
                case 't': out->push_back('\t'); break;
                case 'u': {
                    // \uXXXX: decode the BMP code point to UTF-8.
                    // Surrogate pairs are passed through as two
                    // 3-byte sequences (requests never need them).
                    if (pos_ + 4 >= text_.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 1; i <= 4; ++i) {
                        char h = text_[pos_ + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    pos_ += 4;
                    if (cp < 0x80) {
                        out->push_back(char(cp));
                    } else if (cp < 0x800) {
                        out->push_back(char(0xC0 | (cp >> 6)));
                        out->push_back(char(0x80 | (cp & 0x3F)));
                    } else {
                        out->push_back(char(0xE0 | (cp >> 12)));
                        out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
                        out->push_back(char(0x80 | (cp & 0x3F)));
                    }
                    break;
                }
                default:
                    return fail("unknown escape");
                }
                ++pos_;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            out->push_back(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    util::Status parseNumber(JsonValue *out)
    {
        size_t start = pos_;
        if (consume('-')) {
        }
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            return fail("malformed number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return fail("malformed number");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return fail("malformed number");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        out->type = JsonValue::Type::Number;
        out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                  nullptr);
        return util::Status::okStatus();
    }

    const std::string &text_;
    JsonLimits limits_;
    size_t pos_ = 0;
};

} // namespace

const char *JsonValue::typeName() const
{
    switch (type) {
    case Type::Null: return "null";
    case Type::Bool: return "bool";
    case Type::Number: return "number";
    case Type::String: return "string";
    case Type::Array: return "array";
    case Type::Object: return "object";
    }
    return "unknown";
}

const JsonValue *JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

util::Result<std::string> JsonValue::getString(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        return util::Status::error(util::ErrorCode::InvalidArgument,
                                   "missing required field \"%s\"",
                                   key.c_str());
    if (!v->isString())
        return util::Status::error(util::ErrorCode::InvalidArgument,
                                   "field \"%s\" must be a string, got %s",
                                   key.c_str(), v->typeName());
    return v->string;
}

util::Result<std::string>
JsonValue::getStringOr(const std::string &key, std::string fallback) const
{
    const JsonValue *v = find(key);
    if (!v)
        return fallback;
    if (!v->isString())
        return util::Status::error(util::ErrorCode::InvalidArgument,
                                   "field \"%s\" must be a string, got %s",
                                   key.c_str(), v->typeName());
    return v->string;
}

util::Result<double> JsonValue::getNumber(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        return util::Status::error(util::ErrorCode::InvalidArgument,
                                   "missing required field \"%s\"",
                                   key.c_str());
    if (!v->isNumber())
        return util::Status::error(util::ErrorCode::InvalidArgument,
                                   "field \"%s\" must be a number, got %s",
                                   key.c_str(), v->typeName());
    return v->number;
}

util::Result<double>
JsonValue::getNumberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    if (!v)
        return fallback;
    if (!v->isNumber())
        return util::Status::error(util::ErrorCode::InvalidArgument,
                                   "field \"%s\" must be a number, got %s",
                                   key.c_str(), v->typeName());
    return v->number;
}

util::Result<bool> JsonValue::getBoolOr(const std::string &key,
                                        bool fallback) const
{
    const JsonValue *v = find(key);
    if (!v)
        return fallback;
    if (!v->isBool())
        return util::Status::error(util::ErrorCode::InvalidArgument,
                                   "field \"%s\" must be a bool, got %s",
                                   key.c_str(), v->typeName());
    return v->boolean;
}

util::Result<JsonValue> parseJson(const std::string &text,
                                  const JsonLimits &limits)
{
    return Parser(text, limits).parse();
}

} // namespace lll::util
