/**
 * @file
 * A small, fast, deterministic random number generator (PCG32).
 *
 * The simulator must be reproducible run-to-run, so all stochastic choices
 * (random access addresses, bank hashing jitter, load-generator think time)
 * flow through explicitly seeded Rng instances rather than std::rand or
 * a global generator.
 */

#ifndef LLL_UTIL_RNG_HH
#define LLL_UTIL_RNG_HH

#include <cstdint>

namespace lll
{

/**
 * PCG32 generator (O'Neill, pcg-random.org; XSH-RR variant).
 *
 * Deliberately tiny: 16 bytes of state, no allocation, value semantics.
 */
class Rng
{
  public:
    /** Construct with a seed and an optional stream selector. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next uniformly distributed 32-bit value. */
    uint32_t
    next()
    {
        uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
        uint32_t rot = static_cast<uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Next 64-bit value. */
    uint64_t
    next64()
    {
        return (static_cast<uint64_t>(next()) << 32) | next();
    }

    /** Uniform integer in [0, bound) using Lemire's multiply-shift. */
    uint32_t
    below(uint32_t bound)
    {
        if (bound == 0)
            return 0;
        uint64_t m = static_cast<uint64_t>(next()) * bound;
        return static_cast<uint32_t>(m >> 32);
    }

    /** Uniform integer in [0, bound) for 64-bit bounds. */
    uint64_t
    below64(uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection-free approximation via 128-bit multiply.
        __uint128_t m = static_cast<__uint128_t>(next64()) * bound;
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 8) * (1.0 / 16777216.0);
    }

    /** True with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t state_;
    uint64_t inc_;
};

} // namespace lll

#endif // LLL_UTIL_RNG_HH
