/**
 * @file
 * DGEMM — dense matrix-matrix multiplication (extension workload).
 *
 * Not one of the paper's six case studies, but the optimization the
 * paper keeps citing as the canonical unroll-and-jam + tiling target
 * ("this could be done in addition to loop tiling as in dgemm",
 * §III-C) and the §IV-G example of a code that becomes FLOP bound once
 * prefetching, cache and register tiling are applied.  The model walks
 * exactly that arc: the naive triple loop re-streams B from memory and
 * looks bandwidth-hungry; cache tiling collapses traffic; unroll-and-
 * jam (register tiling) and vectorization then raise the FLOP rate
 * until the MSHR occupancy — near zero with most data in cache — says
 * "compute bound", which per §IV-G is the reliable way to call it.
 */

#include "workloads/workload.hh"

#include "workloads/tuning.hh"

namespace lll::workloads
{

namespace
{

class Dgemm : public Workload
{
  public:
    std::string name() const override { return "dgemm"; }

    std::string
    description() const override
    {
        return "Dense matrix-matrix multiplication (extension)";
    }

    std::string
    problemSize() const override
    {
        return "m=n=k=2048";
    }

    std::string routine() const override { return "dgemm_kernel"; }

    bool randomDominated() const override { return false; }

    double warmupUs() const override { return 40.0; }
    double measureUs() const override { return 80.0; }

    sim::KernelSpec
    spec(const platforms::Platform &p, const OptSet &opts) const override
    {
        sim::KernelSpec k;
        k.name = "dgemm/" + opts.label();
        const unsigned ways = opts.smtWays();
        const bool tiled = opts.has(Opt::Tiling);
        const bool jam = opts.has(Opt::UnrollJam);
        const bool vect = opts.has(Opt::Vectorize);

        // A row panel: streamed, reused across the j loop.
        sim::StreamDesc a;
        a.kind = sim::StreamDesc::Kind::Sequential;
        a.footprintLines = (1ULL << 15) * 64 / p.lineBytes / ways;
        a.weight = 1.0;
        a.reuseFraction = tiled ? 0.9 : 0.3;
        a.reuseWindow = 512;
        k.streams.push_back(a);

        // B panel: the traffic hog.  Untiled, every k-step walks the
        // whole panel and falls out of cache; tiled, the block stays
        // resident.
        sim::StreamDesc b;
        b.kind = sim::StreamDesc::Kind::Sequential;
        b.footprintLines =
            (tiled ? (1ULL << 12) : (1ULL << 19)) * 64 / p.lineBytes;
        b.weight = 2.0;
        b.sharedAcrossThreads = true;
        k.streams.push_back(b);

        // C accumulator stores.
        sim::StreamDesc c;
        c.kind = sim::StreamDesc::Kind::Sequential;
        c.footprintLines = (1ULL << 13) * 64 / p.lineBytes / ways;
        c.weight = 0.2;
        c.store = true;
        c.reuseFraction = 0.6;
        c.reuseWindow = 128;
        k.streams.push_back(c);

        // FLOPs per memory op: the whole point of GEMM.  Unroll-and-jam
        // buys register reuse (fewer loads per FLOP -> more work per
        // op); vectorization shortens the arithmetic itself.
        k.window = 6;
        k.computeCyclesPerOp = pick(p, 24.0, 40.0, 36.0);
        k.workPerOp = 1.0;

        if (tiled)
            k.workPerOp *= 2.2;   // same FLOPs, far fewer memory ops
        if (jam) {
            k.workPerOp *= 1.6;   // register reuse removes panel reloads
            k.computeCyclesPerOp *= 1.25;   // denser op bodies
        }
        if (vect)
            k.computeCyclesPerOp *= pick(p, 0.30, 0.35, 0.32);
        return k;
    }

    std::vector<ExperimentRow>
    paperRows(const platforms::Platform &p) const override
    {
        // Extension walk (no paper reference numbers): the §IV-G arc.
        using O = Opt;
        OptSet base;
        OptSet t = base.with(O::Tiling);
        OptSet tj = t.with(O::UnrollJam);
        OptSet tjv = tj.with(O::Vectorize);
        std::vector<ExperimentRow> rows = {
            {base, t, "Tiling", 0.0},
            {t, tj, "Unroll+jam", 0.0},
            {tj, tjv, "Vect", 0.0},
            {tjv, std::nullopt, "-", 0.0},
        };
        (void)p;
        return rows;
    }
};

} // namespace

WorkloadPtr
makeDgemm()
{
    return std::make_unique<Dgemm>();
}

} // namespace lll::workloads
