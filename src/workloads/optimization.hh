/**
 * @file
 * Program optimizations (paper §III-C) and sets of them.
 *
 * An OptSet names the state of a code variant: which optimizations have
 * been applied on top of the base source.  Workload models translate an
 * OptSet into a concrete KernelSpec; the recipe engine reasons about
 * which Opt to try next.
 */

#ifndef LLL_WORKLOADS_OPTIMIZATION_HH
#define LLL_WORKLOADS_OPTIMIZATION_HH

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

namespace lll::workloads
{

/** The program optimizations the paper's recipe reasons about. */
enum class Opt : uint8_t
{
    Vectorize,      //!< SIMD (incl. gather/scatter + predication)
    Smt2,           //!< 2-way SMT / hyperthreading
    Smt4,           //!< 4-way SMT (KNL)
    SwPrefetchL2,   //!< software prefetch into the L2
    Tiling,         //!< loop tiling / cache blocking
    UnrollJam,      //!< register tiling
    Fusion,         //!< loop fusion
    Distribution,   //!< loop distribution (anti-fusion)
};

const char *optName(Opt opt);

/** Short label used in table rows ("vect", "2-ht", "l2-pref", ...). */
const char *optShortName(Opt opt);

/** Inverse of optShortName(); nullopt for an unknown token.  The CLI
 *  variant parser and the result-cache deserializer share it. */
std::optional<Opt> optFromShortName(const std::string &name);

/** True if applying @p opt tends to increase MLP (paper §III-C). */
bool increasesMlp(Opt opt);

/** True if applying @p opt tends to reduce MSHRQ occupancy. */
bool reducesOccupancy(Opt opt);

/**
 * An ordered set of applied optimizations.
 */
class OptSet
{
  public:
    OptSet() = default;
    OptSet(std::initializer_list<Opt> opts);

    bool has(Opt opt) const;

    /** A copy with @p opt added (idempotent; Smt2/Smt4 replace each
     *  other). */
    OptSet with(Opt opt) const;

    /** SMT ways implied by the set (1, 2 or 4). */
    unsigned smtWays() const;

    /** Paper-style label: "base", "+ vect", "+ vect, 2-ht", ... */
    std::string label() const;

    bool empty() const { return opts_.empty(); }
    const std::vector<Opt> &opts() const { return opts_; }

    bool operator==(const OptSet &o) const { return opts_ == o.opts_; }

  private:
    std::vector<Opt> opts_;   //!< in application order, no duplicates
};

} // namespace lll::workloads

#endif // LLL_WORKLOADS_OPTIMIZATION_HH
