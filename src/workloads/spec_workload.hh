/**
 * @file
 * Adapter presenting a fixed sim::KernelSpec as a Workload, so the
 * experiment/sweep machinery runs user-supplied inline kernels (the
 * service's `"spec"` requests, `lll search` over an inline spec)
 * unchanged.  The spec is taken as-is: optimizations are not modelled
 * on top of it, so callers reject opts at their own parse layer.
 */

#ifndef LLL_WORKLOADS_SPEC_WORKLOAD_HH
#define LLL_WORKLOADS_SPEC_WORKLOAD_HH

#include "sim/kernel_spec.hh"
#include "workloads/workload.hh"

namespace lll::workloads
{

/**
 * Wrap @p spec as a Workload named after the spec.  @p random_dominated
 * declares the analyzer class (paper: whether L1 or L2 MSHRs limit).
 */
WorkloadPtr inlineSpecWorkload(sim::KernelSpec spec,
                               bool random_dominated);

} // namespace lll::workloads

#endif // LLL_WORKLOADS_SPEC_WORKLOAD_HH
