/**
 * @file
 * PENNANT — unstructured mesh physics (paper §IV-C, Table VI).
 *
 * setCornerDiv walks mesh corners through pointer-indexed arrays: the
 * compiler assumes aliasing and leaves the long loop scalar, so the base
 * variant exposes very little MLP.  Forcing vectorization (the accesses
 * are in fact independent) unlocks gather/scatter parallelism — the
 * biggest single-optimization jumps in the paper, especially on the
 * weakly out-of-order KNL and A64FX cores.  Irregular accesses keep the
 * L1 MSHR queue the limiter, which is what finally caps KNL at 58% of
 * peak bandwidth.
 */

#include "workloads/workload.hh"

#include "workloads/tuning.hh"

namespace lll::workloads
{

namespace
{

class Pennant : public Workload
{
  public:
    std::string name() const override { return "pennant"; }

    std::string
    description() const override
    {
        return "Unstructured mesh physics miniapp";
    }

    std::string
    problemSize() const override
    {
        return "meshparams = 960, 1080, 1.0, 1.125";
    }

    std::string routine() const override { return "setCornerDiv"; }

    bool randomDominated() const override { return true; }

    sim::KernelSpec
    spec(const platforms::Platform &p, const OptSet &opts) const override
    {
        sim::KernelSpec k;
        k.name = "pennant/" + opts.label();
        const unsigned ways = opts.smtWays();
        const bool vect = opts.has(Opt::Vectorize);

        // Corner-indexed gathers over several mesh arrays.  Mesh
        // numbering gives some locality (reuse) but no streams the
        // prefetcher can latch onto.
        sim::StreamDesc corners;
        corners.kind = sim::StreamDesc::Kind::Random;
        corners.footprintLines = (1ULL << 20) * 64 / p.lineBytes / ways;
        corners.weight = 0.8;
        corners.reuseFraction = 0.3;
        corners.reuseWindow = 256;
        k.streams.push_back(corners);

        // Scatter of per-corner results.
        sim::StreamDesc out = corners;
        out.store = true;
        out.weight = 0.12;
        out.reuseFraction = 0.0;
        k.streams.push_back(out);

        // Small sequential side stream (zone arrays).
        sim::StreamDesc zones;
        zones.kind = sim::StreamDesc::Kind::Sequential;
        zones.footprintLines = (1ULL << 17) * 64 / p.lineBytes / ways;
        zones.weight = 0.08;
        k.streams.push_back(zones);

        // Scalar pointer-chasing body: the dependence chains keep only a
        // couple of loads in flight, and the loop body is long (divides,
        // conditionals).
        k.window = pick(p, 3u, 3u, 2u);
        k.computeCyclesPerOp = pick(p, 59.5, 26.0, 175.0);
        k.workPerOp = 1.0;

        if (vect) {
            // Forced SIMD with gather/scatter + predication: ~a vector's
            // worth of corners in flight, and the vector body also
            // coalesces multiple element accesses per line (mesh
            // neighbours share lines), so traffic per unit work drops.
            k.window = pick(p, 5u, 6u, 10u);
            k.computeCyclesPerOp *= pick(p, 0.63, 0.55, 0.68);
            k.workPerOp = pick(p, 1.62, 3.45, 2.6);
        }
        return k;
    }

    std::vector<ExperimentRow>
    paperRows(const platforms::Platform &p) const override
    {
        using O = Opt;
        OptSet base;
        OptSet vect = base.with(O::Vectorize);
        if (p.baseName() == "skl") {
            OptSet v2 = vect.with(O::Smt2);
            return {
                {base, vect, "Vect", 2.0},
                {vect, v2, "2-way HT", 1.4},
                {v2, std::nullopt, "-", 0.0},
            };
        }
        if (p.baseName() == "knl") {
            OptSet v2 = vect.with(O::Smt2);
            return {
                {base, vect, "Vect", 5.76},
                {vect, v2, "2-way HT", 1.17},
                {v2, vect.with(O::Smt4), "4-way HT", 1.0},
            };
        }
        return {
            {base, vect, "Vect", 3.83},
            {vect, std::nullopt, "-", 0.0},
        };
    }
};

} // namespace

WorkloadPtr
makePennant()
{
    return std::make_unique<Pennant>();
}

} // namespace lll::workloads
