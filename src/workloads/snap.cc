/**
 * @file
 * SNAP — discrete ordinates transport proxy (paper §IV-F, Table IX).
 *
 * dim3_sweep nests many short innermost loops (angles per cell) over
 * wavefront-ordered cells: trip counts are too short for the hardware
 * prefetcher to get ahead, there is heavy temporary reuse (flux
 * registers), and real compute interleaves the accesses — so SNAP sits
 * mid-bandwidth with modest MLP.  User-directed software prefetching is
 * the fitting optimization; on A64FX an extra pathology (compiler loop
 * fusion creating store-to-load forwarding stalls) makes loop
 * *distribution* the surprise winner, the paper's example that user
 * intuition still matters.
 */

#include "workloads/workload.hh"

#include "workloads/tuning.hh"

namespace lll::workloads
{

namespace
{

class Snap : public Workload
{
  public:
    std::string name() const override { return "snap"; }

    std::string
    description() const override
    {
        return "Discrete ordinates neutral particle transport";
    }

    std::string
    problemSize() const override
    {
        return "nx=64, ny=16, nz=24, nang=48, ng=54, cor_swp=1";
    }

    std::string routine() const override { return "dim3_sweep"; }

    bool randomDominated() const override { return false; }

    sim::KernelSpec
    spec(const platforms::Platform &p, const OptSet &opts) const override
    {
        sim::KernelSpec k;
        k.name = "snap/" + opts.label();
        const unsigned ways = opts.smtWays();

        // Angular flux arrays: short sequential bursts per cell.  A
        // coarse stride between bursts defeats stream training often
        // enough that prefetch coverage is only partial — modelled as a
        // strided stream beyond the prefetcher's match window plus
        // genuine sequential streams.
        sim::StreamDesc flux;
        flux.kind = sim::StreamDesc::Kind::Strided;
        flux.strideLines = 7;
        flux.footprintLines = (1ULL << 19) * 64 / p.lineBytes / ways;
        flux.weight = 2.0;
        flux.swPrefetchable = true;
        k.streams.push_back(flux);

        for (int i = 0; i < 3; ++i) {
            sim::StreamDesc s;
            s.kind = sim::StreamDesc::Kind::Sequential;
            s.footprintLines = (1ULL << 18) * 64 / p.lineBytes / ways;
            s.weight = 0.6;
            k.streams.push_back(s);
        }

        // Outgoing flux stores with reuse (cell temporaries).
        sim::StreamDesc out;
        out.kind = sim::StreamDesc::Kind::Sequential;
        out.footprintLines = (1ULL << 17) * 64 / p.lineBytes / ways;
        out.weight = 0.6;
        out.store = true;
        out.reuseFraction = 0.4;
        out.reuseWindow = 64;
        k.streams.push_back(out);

        // Small trip counts limit exposed MLP; sweep recurrences add
        // real compute between accesses.
        k.window = pick(p, 6u, 3u, 3u);
        k.computeCyclesPerOp = pick(p, 47.0, 16.0, 104.0);
        k.workPerOp = 1.0;

        // A64FX base suffers the automatic-loop-fusion store-to-load
        // hazard the paper describes; distributing the loops removes it.
        if (p.baseName() == "a64fx" && !opts.has(Opt::Distribution))
            k.computeCyclesPerOp *= 1.25;

        // Hyperthreads of a sweep share flux temporaries and thrash the
        // private caches; the paper attributes SNAP's muted SMT gains to
        // exactly this.  Calibrated as extra stall cycles per op.
        if (ways == 2)
            k.computeCyclesPerOp *= pick(p, 1.165, 1.33, 1.0);
        else if (ways == 4)
            k.computeCyclesPerOp *= pick(p, 1.165, 1.63, 1.0);

        if (opts.has(Opt::SwPrefetchL2)) {
            k.swPrefetchL2 = true;
            k.swPrefetchDistance = pick(p, 24u, 2u, 12u);
            // Prefetch instructions in short loops cost real issue slots
            // (the paper's explanation for the tiny SKL gain).
            k.swPrefetchOverheadCycles = pick(p, 0.8, 1.6, 1.0);
        }
        return k;
    }

    std::vector<ExperimentRow>
    paperRows(const platforms::Platform &p) const override
    {
        using O = Opt;
        OptSet base;
        OptSet pref = base.with(O::SwPrefetchL2);
        if (p.baseName() == "skl") {
            return {
                {base, pref, "Pref", 1.01},
                {pref, pref.with(O::Smt2), "2-way HT", 1.03},
            };
        }
        if (p.baseName() == "knl") {
            OptSet p2 = pref.with(O::Smt2);
            return {
                {base, pref, "Pref", 1.08},
                {pref, p2, "2-way HT", 1.14},
                {p2, pref.with(O::Smt4), "4-way HT", 1.02},
            };
        }
        return {
            {base, pref, "Pref", 1.07},
            {pref, pref.with(O::Distribution), "No-fusion", 1.2},
            {pref.with(O::Distribution), std::nullopt, "-", 0.0},
        };
    }
};

} // namespace

WorkloadPtr
makeSnap()
{
    return std::make_unique<Snap>();
}

} // namespace lll::workloads
