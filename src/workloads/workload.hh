/**
 * @file
 * Workload model interface: the six applications of paper Table II.
 *
 * Each model describes the *dominant routine* the paper analyzes, as a
 * function from (platform, applied optimizations) to a simulator
 * KernelSpec.  The mapping encodes how each optimization transforms the
 * routine — how vectorization widens the exposed MLP, how tiling trades
 * memory traffic for request rate, how SMT partitions the working set —
 * with per-platform coefficients documented inline and summarized in
 * DESIGN.md.
 */

#ifndef LLL_WORKLOADS_WORKLOAD_HH
#define LLL_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "platforms/platform.hh"
#include "sim/kernel_spec.hh"
#include "workloads/optimization.hh"

namespace lll::workloads
{

/**
 * One row of a paper results table: the measured Source variant and the
 * optimization tried on top of it.
 */
struct ExperimentRow
{
    OptSet source;                 //!< variant the row's metrics describe
    std::optional<OptSet> applied; //!< source + tried optimization
    std::string optLabel;          //!< paper's "Opt" column text
    /** Paper's reported speedup for the tried optimization (for
     *  EXPERIMENTS.md comparison; 0 when not applicable). */
    double paperSpeedup = 0.0;
};

/**
 * A modelled application.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short id: "isx", "hpcg", ... */
    virtual std::string name() const = 0;

    /** Paper Table II description. */
    virtual std::string description() const = 0;

    /** Paper Table II problem size. */
    virtual std::string problemSize() const = 0;

    /** The dominant routine the paper analyzes. */
    virtual std::string routine() const = 0;

    /** Build the kernel for @p platform with @p opts applied. */
    virtual sim::KernelSpec
    spec(const platforms::Platform &platform, const OptSet &opts) const = 0;

    /** The optimization walk of the paper's table for @p platform. */
    virtual std::vector<ExperimentRow>
    paperRows(const platforms::Platform &platform) const = 0;

    /** True if the routine's accesses are dominated by random/irregular
     *  patterns (paper: decides whether L1 or L2 MSHRs limit). */
    virtual bool randomDominated() const = 0;

    /**
     * Simulated warmup/measurement window (µs).  Compute-bound kernels
     * touch memory so slowly that they need longer windows to reach the
     * steady state the paper measures.
     */
    virtual double warmupUs() const { return 15.0; }
    virtual double measureUs() const { return 40.0; }
};

using WorkloadPtr = std::unique_ptr<Workload>;

WorkloadPtr makeIsx();
WorkloadPtr makeHpcg();
WorkloadPtr makePennant();
WorkloadPtr makeComd();
WorkloadPtr makeMinighost();
WorkloadPtr makeSnap();

/** Extension workload (not in the paper's Table II): the dgemm of
 *  SIII-C/SIV-G, exercising unroll-and-jam and the compute-bound path. */
WorkloadPtr makeDgemm();

/** All six, in paper Table II order. */
std::vector<WorkloadPtr> allWorkloads();

/** The full registry `lll lint` walks: Table II plus extensions
 *  (currently dgemm). */
std::vector<WorkloadPtr> allWorkloadsAndExtensions();

/** Look up by short id; NotFound (listing valid ids) if unknown. */
[[nodiscard]] util::Result<WorkloadPtr> findWorkload(const std::string &name);

} // namespace lll::workloads

#endif // LLL_WORKLOADS_WORKLOAD_HH
