/**
 * @file
 * HPCG — sparse matrix-vector multiplication (paper §IV-B, Table V).
 *
 * ComputeSPMV_ref streams the matrix values and column indices (several
 * long unit-stride streams the L2 prefetcher covers well) and gathers
 * the x vector (indexed, but with strong reuse since the 27-point
 * stencil matrix keeps neighbours close).  Streaming dominates, so the
 * L2 MSHR queue — fed mostly by the hardware prefetcher — is the
 * relevant limiter, and on SKL the peak-achievable-bandwidth wall is hit
 * before the queue fills.
 */

#include "workloads/workload.hh"

#include "workloads/tuning.hh"

namespace lll::workloads
{

namespace
{

class Hpcg : public Workload
{
  public:
    std::string name() const override { return "hpcg"; }

    std::string
    description() const override
    {
        return "Sparse matrix-vector multiplication";
    }

    std::string problemSize() const override { return "40^3"; }

    std::string routine() const override { return "ComputeSPMV_ref"; }

    bool randomDominated() const override { return false; }

    sim::KernelSpec
    spec(const platforms::Platform &p, const OptSet &opts) const override
    {
        sim::KernelSpec k;
        k.name = "hpcg/" + opts.label();
        const unsigned ways = opts.smtWays();

        // Matrix values + indices: long unit-stride streams.  Eight to
        // ten streams per thread is what the paper counts when it argues
        // the KNL prefetcher's 16-stream table saturates at 4-way SMT.
        const int nstreams = 6;
        for (int i = 0; i < nstreams; ++i) {
            sim::StreamDesc s;
            s.kind = sim::StreamDesc::Kind::Sequential;
            s.footprintLines = (1ULL << 20) * 64 / p.lineBytes / ways;
            s.weight = 1.33;
            k.streams.push_back(s);
        }

        // x-vector gather: indexed but local (reuse), shared by the
        // threads of a core.
        sim::StreamDesc x;
        x.kind = sim::StreamDesc::Kind::Random;
        x.footprintLines = (1ULL << 17) * 64 / p.lineBytes;
        x.weight = 2.0;
        x.sharedAcrossThreads = true;
        x.reuseFraction = 0.5;
        x.reuseWindow = 512;
        k.streams.push_back(x);

        // y-vector store.
        sim::StreamDesc y;
        y.kind = sim::StreamDesc::Kind::Sequential;
        y.footprintLines = (1ULL << 16) * 64 / p.lineBytes / ways;
        y.weight = 0.5;
        y.store = true;
        k.streams.push_back(y);

        // Scalar inner product over each row: modest exposed MLP, real
        // multiply-add work per element.
        k.window = pick(p, 10u, 5u, 5u);
        k.computeCyclesPerOp = pick(p, 5.0, 11.8, 44.6);

        if (opts.has(Opt::Vectorize)) {
            // AVX-512/SVE gathers vectorize the row product: more rows'
            // accesses in flight, fewer instructions per element.
            k.window = pick(p, 14u, 8u, 8u);
            k.computeCyclesPerOp *= pick(p, 0.75, 0.82, 0.59);
        }

        k.workPerOp = 1.0;
        return k;
    }

    std::vector<ExperimentRow>
    paperRows(const platforms::Platform &p) const override
    {
        using O = Opt;
        OptSet base;
        OptSet vect = base.with(O::Vectorize);
        if (p.baseName() == "skl") {
            return {
                {base, vect, "Vect", 1.0},
                {vect, vect.with(O::Smt2), "2-way HT", 0.98},
            };
        }
        if (p.baseName() == "knl") {
            OptSet v2 = vect.with(O::Smt2);
            return {
                {base, vect, "Vect", 1.15},
                {vect, v2, "2-way HT", 1.26},
                {v2, vect.with(O::Smt4), "4-way HT", 1.03},
            };
        }
        return {
            {base, vect, "Vect", 1.7},
            {vect, std::nullopt, "-", 0.0},
        };
    }
};

} // namespace

WorkloadPtr
makeHpcg()
{
    return std::make_unique<Hpcg>();
}

} // namespace lll::workloads
