/**
 * @file
 * Small helpers shared by the workload models.
 */

#ifndef LLL_WORKLOADS_TUNING_HH
#define LLL_WORKLOADS_TUNING_HH

#include "platforms/platform.hh"
#include "util/logging.hh"

namespace lll::workloads
{

/**
 * Pick a per-platform coefficient by platform id.  Workload models keep
 * their calibration knobs in one visible place with this.
 */
template <typename T>
T
pick(const platforms::Platform &p, T skl, T knl, T a64fx)
{
    const std::string base = p.baseName();
    if (base == "skl")
        return skl;
    if (base == "knl")
        return knl;
    if (base == "a64fx")
        return a64fx;
    lll_fatal("workload has no tuning for platform '%s'", p.name.c_str());
}

} // namespace lll::workloads

#endif // LLL_WORKLOADS_TUNING_HH
