/**
 * @file
 * CoMD — classical molecular dynamics (paper §IV-D, Table VII).
 *
 * eamForce is compute dominated: neighbour-list force evaluation with a
 * small resident working set, so only a trickle of accesses reaches
 * memory and the observed MLP is far below every MSHR bound.  The recipe
 * therefore green-lights everything that raises parallelism —
 * vectorization and then SMT — and the gains follow (largest on KNL,
 * whose weak core a single thread cannot fill).
 */

#include "workloads/workload.hh"

#include "workloads/tuning.hh"

namespace lll::workloads
{

namespace
{

class Comd : public Workload
{
  public:
    std::string name() const override { return "comd"; }

    std::string
    description() const override
    {
        return "Classical molecular dynamics";
    }

    std::string
    problemSize() const override
    {
        return "x=y=z=24, T=4000";
    }

    std::string routine() const override { return "eamForce"; }

    bool randomDominated() const override { return true; }

    // Compute-bound: a thread touches a line only every ~50-150 cycles,
    // so residency and steady state need longer simulated windows.
    double warmupUs() const override { return 80.0; }
    double measureUs() const override { return 120.0; }

    sim::KernelSpec
    spec(const platforms::Platform &p, const OptSet &opts) const override
    {
        sim::KernelSpec k;
        k.name = "comd/" + opts.label();
        const unsigned ways = opts.smtWays();
        const bool vect = opts.has(Opt::Vectorize);

        // Neighbour gathers over the particle arrays: overwhelmingly
        // cache resident; only halo/neighbour-cell traffic reaches
        // memory (the per-platform nonresident share below).
        sim::StreamDesc atoms;
        atoms.kind = sim::StreamDesc::Kind::Random;
        atoms.footprintLines = (1ULL << 9) * 64 / p.lineBytes;
        atoms.weight = 0.84;
        atoms.reuseFraction = 0.5;
        atoms.reuseWindow = 256;
        k.streams.push_back(atoms);

        sim::StreamDesc halo;
        halo.kind = sim::StreamDesc::Kind::Random;
        halo.footprintLines = (1ULL << 20) * 64 / p.lineBytes / ways;
        halo.weight = pick(p, 0.13, 0.377, 0.119);
        k.streams.push_back(halo);

        // Force accumulation writes (resident).
        sim::StreamDesc forces = atoms;
        forces.store = true;
        forces.weight = 0.04;
        forces.reuseFraction = 0.4;
        k.streams.push_back(forces);

        // Long arithmetic body (interpolation, square roots) between
        // accesses; the loop-carried dependence keeps scalar MLP tiny.
        k.window = pick(p, 2u, 3u, 2u);
        k.computeCyclesPerOp = pick(p, 103.0, 26.9, 135.0);
        k.workPerOp = 1.0;

        if (vect) {
            // Vectorizing the next-to-innermost loop shortens the body;
            // the gains are bounded by the gather/predication overhead
            // the paper notes.
            k.window = pick(p, 4u, 6u, 4u);
            k.computeCyclesPerOp *= pick(p, 0.71, 0.74, 0.81);
        }
        return k;
    }

    std::vector<ExperimentRow>
    paperRows(const platforms::Platform &p) const override
    {
        using O = Opt;
        OptSet base;
        OptSet vect = base.with(O::Vectorize);
        if (p.baseName() == "skl") {
            OptSet v2 = vect.with(O::Smt2);
            return {
                {base, vect, "Vect", 1.4},
                {vect, v2, "2-way HT", 1.22},
                {v2, std::nullopt, "-", 0.0},
            };
        }
        if (p.baseName() == "knl") {
            OptSet v2 = vect.with(O::Smt2);
            OptSet v4 = vect.with(O::Smt4);
            return {
                {base, vect, "Vect", 1.35},
                {vect, v2, "2-way HT", 1.52},
                {v2, v4, "4-way HT", 1.25},
                {v4, std::nullopt, "-", 0.0},
            };
        }
        return {
            {base, vect, "Vect", 1.24},
            {vect, std::nullopt, "-", 0.0},
        };
    }
};

} // namespace

WorkloadPtr
makeComd()
{
    return std::make_unique<Comd>();
}

} // namespace lll::workloads
