/**
 * @file
 * ISx — scalable integer sort (paper §IV-A, Table IV).
 *
 * The dominant routine, count_local_keys, scatters uniformly random keys
 * into per-bucket regions: a large random-access structure dominates
 * traffic, with a small contiguous key-read stream on the side (the
 * paper's footnote 5).  Hardware prefetching is ineffective, so the L1
 * MSHR queue is the limiter; prefetching the random structure into the
 * L2 with software prefetch instructions shifts the bottleneck to the
 * (larger) L2 MSHR queue — the paper's headline case study.
 */

#include "workloads/workload.hh"

#include "obs/span.hh"
#include "workloads/tuning.hh"

namespace lll::workloads
{

namespace
{

class Isx : public Workload
{
  public:
    std::string name() const override { return "isx"; }

    std::string
    description() const override
    {
        return "Scalable Integer Sort";
    }

    std::string
    problemSize() const override
    {
        return "Keys per PE = 25165824";
    }

    std::string routine() const override { return "count_local_keys"; }

    bool randomDominated() const override { return true; }

    sim::KernelSpec
    spec(const platforms::Platform &p, const OptSet &opts) const override
    {
        LLL_SPAN("isx.count_local_keys.spec");
        sim::KernelSpec k;
        k.name = "isx/" + opts.label();
        const unsigned ways = opts.smtWays();

        // Random scatter target: ~128 MiB of bucket space per rank,
        // split across SMT ranks sharing a core.
        sim::StreamDesc buckets;
        buckets.kind = sim::StreamDesc::Kind::Random;
        buckets.footprintLines = (1ULL << 21) * 64 / p.lineBytes / ways;
        buckets.weight = 0.83;
        buckets.swPrefetchable = true;
        k.streams.push_back(buckets);

        // The scattered keys are also written (counts/offsets update).
        sim::StreamDesc scatter = buckets;
        scatter.store = true;
        scatter.weight = 0.07;
        scatter.swPrefetchable = false;
        k.streams.push_back(scatter);

        // Contiguous key read: small share of traffic (footnote 5 — it
        // nudges occupancy slightly above the L1 MSHR count).
        sim::StreamDesc keys;
        keys.kind = sim::StreamDesc::Kind::Sequential;
        keys.footprintLines = (1ULL << 19) * 64 / p.lineBytes / ways;
        keys.weight = 0.10;
        k.streams.push_back(keys);

        // Scalar histogramming exposes plenty of independent accesses:
        // the OoO window keeps more random misses in flight than the L1
        // MSHR queue can hold, so the queue is the limiter everywhere.
        k.window = pick(p, 16u, 10u, 9u);
        k.computeCyclesPerOp = pick(p, 3.0, 7.0, 14.45);

        if (opts.has(Opt::Vectorize)) {
            // Gathers widen exposed MLP a little, but the vectorized
            // histogram needs conflict detection, so the body barely
            // shrinks; with the L1 MSHRQ already full this cannot buy
            // bandwidth anyway (the paper's point on SKL).
            k.window += pick(p, 8u, 0u, 1u);
            k.computeCyclesPerOp *= pick(p, 0.9, 0.98, 0.95);
        }

        if (opts.has(Opt::SwPrefetchL2)) {
            k.swPrefetchL2 = true;
            k.swPrefetchDistance = pick(p, 32u, 32u, 24u);
            k.swPrefetchOverheadCycles = pick(p, 1.0, 2.0, 1.0);
        }

        k.workPerOp = 1.0;
        return k;
    }

    std::vector<ExperimentRow>
    paperRows(const platforms::Platform &p) const override
    {
        using O = Opt;
        OptSet base;
        if (p.baseName() == "skl") {
            OptSet vect = base.with(O::Vectorize);
            return {
                {base, vect, "Vect", 1.0},
                {vect, vect.with(O::Smt2), "2-way HT", 1.0},
            };
        }
        if (p.baseName() == "knl") {
            OptSet vect = base.with(O::Vectorize);
            OptSet v2 = vect.with(O::Smt2);
            OptSet v2p = v2.with(O::SwPrefetchL2);
            return {
                {base, vect, "Vect", 1.02},
                {vect, v2, "2-way HT", 1.04},
                {v2, vect.with(O::Smt4), "4-way HT", 0.98},
                {v2, v2p, "L2 Pref", 1.4},
                {v2p, std::nullopt, "-", 0.0},
            };
        }
        OptSet pref = base.with(O::SwPrefetchL2);
        return {
            {base, pref, "L2 Pref", 1.3},
            {pref, std::nullopt, "-", 0.0},
        };
    }
};

} // namespace

WorkloadPtr
makeIsx()
{
    return std::make_unique<Isx>();
}

} // namespace lll::workloads
