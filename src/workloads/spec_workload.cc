#include "workloads/spec_workload.hh"

#include <utility>

namespace lll::workloads
{

namespace
{

class SpecWorkload : public Workload
{
  public:
    SpecWorkload(sim::KernelSpec spec, bool random_dominated)
        : spec_(std::move(spec)), randomDominated_(random_dominated)
    {
    }

    std::string name() const override { return spec_.name; }
    std::string description() const override
    {
        return "inline kernel spec";
    }
    std::string problemSize() const override { return "-"; }
    std::string routine() const override { return spec_.name; }

    sim::KernelSpec spec(const platforms::Platform &,
                         const OptSet &) const override
    {
        return spec_;
    }

    std::vector<ExperimentRow>
    paperRows(const platforms::Platform &) const override
    {
        return {};
    }

    bool randomDominated() const override { return randomDominated_; }

  private:
    sim::KernelSpec spec_;
    bool randomDominated_;
};

} // namespace

WorkloadPtr
inlineSpecWorkload(sim::KernelSpec spec, bool random_dominated)
{
    return std::make_unique<SpecWorkload>(std::move(spec),
                                          random_dominated);
}

} // namespace lll::workloads
