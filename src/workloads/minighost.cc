/**
 * @file
 * MiniGhost — 27-point difference stencil (paper §IV-E, Table VIII).
 *
 * mg_stencil_3d27pt sweeps a 3D grid reading nine distinct row streams
 * (the 3x3 neighbourhood of rows in adjacent planes) and writing one.
 * Untiled, planes fall out of cache between uses and each row is read
 * from memory for three consecutive z iterations; loop tiling keeps the
 * tile's planes resident so each row is fetched once — less traffic for
 * the same work, the occupancy-*reducing* optimization of the paper's
 * recipe.  SMT mostly disappoints here because the hyperthreads' tiles
 * contend for the same L2/LLC capacity.
 */

#include "workloads/workload.hh"

#include "workloads/tuning.hh"

namespace lll::workloads
{

namespace
{

class Minighost : public Workload
{
  public:
    std::string name() const override { return "minighost"; }

    std::string
    description() const override
    {
        return "Difference stencil miniapp";
    }

    std::string
    problemSize() const override
    {
        return "nx=504, ny=126, nz=768, num_vars=40";
    }

    std::string routine() const override { return "mg_stencil_3d27pt"; }

    bool randomDominated() const override { return false; }

    sim::KernelSpec
    spec(const platforms::Platform &p, const OptSet &opts) const override
    {
        sim::KernelSpec k;
        k.name = "minighost/" + opts.label();
        const unsigned ways = opts.smtWays();
        const bool tiled = opts.has(Opt::Tiling);

        // Nine read streams (3 rows x 3 planes).  Untiled, the redundant
        // re-reads show up as extra stream traffic; tiled, the tile's
        // rows stay in the L2 and the kernel's bytes-per-point drop —
        // expressed as higher workPerOp with fewer effective streams.
        const int read_streams = tiled ? 4 : 9;
        for (int i = 0; i < read_streams; ++i) {
            sim::StreamDesc s;
            s.kind = sim::StreamDesc::Kind::Sequential;
            s.footprintLines = (1ULL << 19) * 64 / p.lineBytes / ways;
            s.weight = 1.0;
            k.streams.push_back(s);
        }

        // Result store stream.
        sim::StreamDesc out;
        out.kind = sim::StreamDesc::Kind::Sequential;
        out.footprintLines = (1ULL << 19) * 64 / p.lineBytes / ways;
        out.weight = tiled ? 1.6 : 1.3;
        out.store = true;
        k.streams.push_back(out);

        // The compiler vectorizes the innermost loop already (base);
        // plenty of independent adds, moderate arithmetic per point.
        k.window = pick(p, 10u, 8u, 10u);
        k.computeCyclesPerOp = pick(p, 29.4, 10.0, 21.2);
        k.workPerOp = 1.0;

        if (tiled) {
            // Same grid-point work from fewer memory ops; the request
            // rate rises (shorter bodies per op), matching the paper's
            // observation that bandwidth goes *up* after tiling.  On
            // SKL the paper's own numbers show traffic per point nearly
            // unchanged (tiling removed conflict-miss re-reads but the
            // DRAM-line traffic stayed), hence the 1.0.
            k.workPerOp = pick(p, 1.0, 1.31, 1.57);
            k.computeCyclesPerOp *= pick(p, 0.87, 0.92, 1.04);
            k.window += 2;

            // SMT threads' tiles contend for the same L2/LLC capacity
            // and claw back part of tiling's traffic saving (the paper's
            // explanation for flat KNL SMT gains).  Line-granular
            // streams cannot reproduce intra-tile thrashing, so it is a
            // calibrated coefficient.
            if (ways > 1)
                k.workPerOp *= pick(p, 1.0, 0.786, 1.0);
        }
        return k;
    }

    std::vector<ExperimentRow>
    paperRows(const platforms::Platform &p) const override
    {
        using O = Opt;
        OptSet base;
        OptSet tiled = base.with(O::Tiling);
        if (p.baseName() == "skl") {
            return {
                {base, tiled, "Tiling", 1.14},
                {tiled, tiled.with(O::Smt2), "2-way HT", 1.02},
            };
        }
        if (p.baseName() == "knl") {
            OptSet t2 = tiled.with(O::Smt2);
            return {
                {base, tiled, "Tiling", 1.47},
                {tiled, t2, "2-way HT", 1.0},
                {t2, tiled.with(O::Smt4), "4-way HT", 1.0},
            };
        }
        return {
            {base, tiled, "Tiling", 1.51},
            {tiled, std::nullopt, "-", 0.0},
        };
    }
};

} // namespace

WorkloadPtr
makeMinighost()
{
    return std::make_unique<Minighost>();
}

} // namespace lll::workloads
