#include "workloads/optimization.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lll::workloads
{

const char *
optName(Opt opt)
{
    switch (opt) {
      case Opt::Vectorize:    return "Vectorization";
      case Opt::Smt2:         return "2-way HT";
      case Opt::Smt4:         return "4-way HT";
      case Opt::SwPrefetchL2: return "L2 software prefetch";
      case Opt::Tiling:       return "Loop tiling";
      case Opt::UnrollJam:    return "Unroll and jam";
      case Opt::Fusion:       return "Loop fusion";
      case Opt::Distribution: return "Loop distribution";
    }
    return "?";
}

const char *
optShortName(Opt opt)
{
    switch (opt) {
      case Opt::Vectorize:    return "vect";
      case Opt::Smt2:         return "2-ht";
      case Opt::Smt4:         return "4-ht";
      case Opt::SwPrefetchL2: return "l2-pref";
      case Opt::Tiling:       return "tiling";
      case Opt::UnrollJam:    return "unroll-jam";
      case Opt::Fusion:       return "fusion";
      case Opt::Distribution: return "distr";
    }
    return "?";
}

std::optional<Opt>
optFromShortName(const std::string &name)
{
    static constexpr Opt kAll[] = {
        Opt::Vectorize,  Opt::Smt2,      Opt::Smt4,   Opt::SwPrefetchL2,
        Opt::Tiling,     Opt::UnrollJam, Opt::Fusion, Opt::Distribution,
    };
    for (Opt o : kAll) {
        if (name == optShortName(o))
            return o;
    }
    return std::nullopt;
}

bool
increasesMlp(Opt opt)
{
    switch (opt) {
      case Opt::Vectorize:
      case Opt::Smt2:
      case Opt::Smt4:
      case Opt::SwPrefetchL2:
        return true;
      default:
        return false;
    }
}

bool
reducesOccupancy(Opt opt)
{
    switch (opt) {
      case Opt::Tiling:
      case Opt::Fusion:
      case Opt::UnrollJam:
        return true;
      default:
        return false;
    }
}

OptSet::OptSet(std::initializer_list<Opt> opts)
{
    for (Opt o : opts)
        *this = with(o);
}

bool
OptSet::has(Opt opt) const
{
    return std::find(opts_.begin(), opts_.end(), opt) != opts_.end();
}

OptSet
OptSet::with(Opt opt) const
{
    OptSet out = *this;
    if (out.has(opt))
        return out;
    // SMT levels are states, not layers: 4-way replaces 2-way and vice
    // versa.
    auto drop = [&out](Opt o) {
        out.opts_.erase(std::remove(out.opts_.begin(), out.opts_.end(), o),
                        out.opts_.end());
    };
    if (opt == Opt::Smt2)
        drop(Opt::Smt4);
    if (opt == Opt::Smt4)
        drop(Opt::Smt2);
    out.opts_.push_back(opt);
    return out;
}

unsigned
OptSet::smtWays() const
{
    if (has(Opt::Smt4))
        return 4;
    if (has(Opt::Smt2))
        return 2;
    return 1;
}

std::string
OptSet::label() const
{
    if (opts_.empty())
        return "base";
    std::string out = "+ ";
    for (size_t i = 0; i < opts_.size(); ++i) {
        if (i)
            out += ", ";
        out += optShortName(opts_[i]);
    }
    return out;
}

} // namespace lll::workloads
