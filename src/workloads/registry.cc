#include "workloads/workload.hh"

#include "util/logging.hh"

namespace lll::workloads
{

std::vector<WorkloadPtr>
allWorkloads()
{
    std::vector<WorkloadPtr> all;
    all.push_back(makeIsx());
    all.push_back(makeHpcg());
    all.push_back(makePennant());
    all.push_back(makeComd());
    all.push_back(makeMinighost());
    all.push_back(makeSnap());
    return all;
}

std::vector<WorkloadPtr>
allWorkloadsAndExtensions()
{
    std::vector<WorkloadPtr> all = allWorkloads();
    all.push_back(makeDgemm());
    return all;
}

util::Result<WorkloadPtr>
findWorkload(const std::string &name)
{
    std::string known;
    for (WorkloadPtr &w : allWorkloads()) {
        if (w->name() == name)
            return std::move(w);
        if (!known.empty())
            known += ", ";
        known += w->name();
    }
    // Extensions outside the paper's Table II.
    if (name == "dgemm")
        return makeDgemm();
    return util::Status::error(util::ErrorCode::NotFound,
                               "unknown workload '%s' (expected %s or dgemm)",
                               name.c_str(), known.c_str());
}

} // namespace lll::workloads
