#include "workloads/workload.hh"

#include "util/logging.hh"

namespace lll::workloads
{

std::vector<WorkloadPtr>
allWorkloads()
{
    std::vector<WorkloadPtr> all;
    all.push_back(makeIsx());
    all.push_back(makeHpcg());
    all.push_back(makePennant());
    all.push_back(makeComd());
    all.push_back(makeMinighost());
    all.push_back(makeSnap());
    return all;
}

WorkloadPtr
workloadByName(const std::string &name)
{
    for (WorkloadPtr &w : allWorkloads()) {
        if (w->name() == name)
            return std::move(w);
    }
    // Extensions outside the paper's Table II.
    if (name == "dgemm")
        return makeDgemm();
    lll_fatal("unknown workload '%s'", name.c_str());
}

} // namespace lll::workloads
