/**
 * @file
 * Microbenchmark kernels + trial runner behind `lll bench`.
 *
 * The kernels mirror bench/bench_sim_micro.cc — event-queue
 * throughput, MSHR allocate/deallocate, stateless op generation, warm
 * cache hits, and an end-to-end system microstep — so the CLI harness
 * and the google-benchmark binary measure the same hot paths.  Each
 * kernel processes one *batch* per call; the runner times batches with
 * the obs wall clock (timer.hh), folds per-item latency into a
 * Log2Histogram, and reports events/sec per trial with min/median/IQR
 * statistics.  The numbers feed the BENCH_<rev>.json trajectory and
 * the CI perf ratchet (bench_report.hh).
 */

#ifndef LLL_PERF_MICROBENCH_HH
#define LLL_PERF_MICROBENCH_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metric.hh"

namespace lll::perf
{

/**
 * One kernel's mutable benchmark state.  runBatch() executes one batch
 * of work and returns the number of items (events, ops, requests)
 * processed, so the runner can derive events/sec without knowing the
 * kernel's shape.
 */
class KernelInstance
{
  public:
    virtual ~KernelInstance() = default;
    virtual uint64_t runBatch() = 0;
};

/** A registered kernel: stable name, one-line description, factory. */
struct KernelInfo
{
    std::string name;
    std::string description;
    std::unique_ptr<KernelInstance> (*make)();
};

/** The built-in kernel registry, in fixed report order. */
const std::vector<KernelInfo> &kernels();

/** Look up a kernel by name; nullptr when unknown. */
const KernelInfo *findKernel(const std::string &name);

/** Trial-loop configuration. */
struct TrialParams
{
    int trials = 5;          //!< measured repetitions per kernel
    double warmupMs = 20.0;  //!< untimed warm-up before trial 1
    double measureMs = 50.0; //!< wall-time floor per trial
};

/** One kernel's measured result across all trials. */
struct KernelStats
{
    std::string name;
    int trials = 0;
    uint64_t batches = 0; //!< total batches across trials
    uint64_t items = 0;   //!< total items across trials

    /** Per-trial throughput, in trial order. */
    std::vector<double> trialEventsPerSec;

    // Trial statistics over trialEventsPerSec.
    double minEps = 0.0;
    double medianEps = 0.0;
    double maxEps = 0.0;
    double iqrEps = 0.0; //!< interquartile range (p75 - p25)

    /** Per-item latency distribution (batch wall ns / batch items). */
    obs::Log2Histogram itemNs;

    // Extracted from itemNs by runKernel(); plain fields so a report
    // parsed back from JSON (no histogram) carries them too.
    double p50ItemNs = 0.0;
    double p90ItemNs = 0.0;
    double p99ItemNs = 0.0;
};

/**
 * Linearly interpolated quantile of @p sorted (ascending).  Exposed
 * for the trial statistics and their tests; returns 0 when empty.
 */
double quantileSorted(const std::vector<double> &sorted, double q);

/** Run @p kernel under @p params and collect its statistics. */
KernelStats runKernel(const KernelInfo &kernel,
                      const TrialParams &params);

} // namespace lll::perf

#endif // LLL_PERF_MICROBENCH_HH
