#include "perf/microbench.hh"

#include <algorithm>
#include <cmath>

#include "obs/timer.hh"
#include "platforms/platform.hh"
#include "sim/cache.hh"
#include "sim/event_queue.hh"
#include "sim/mshr_queue.hh"
#include "sim/op_stream.hh"
#include "sim/system.hh"

namespace lll::perf
{

namespace
{

/** Keep the compiler from discarding a benchmark result. */
volatile uint64_t g_sink; // NOLINT: the sink must be a mutable global

class EventQueueKernel : public KernelInstance
{
  public:
    uint64_t
    runBatch() override
    {
        for (int i = 0; i < 64; ++i) {
            eq_.scheduleIn(static_cast<Tick>(i * 7 % 97),
                           [this] { ++fired_; });
        }
        eq_.runUntil(eq_.now() + 100);
        g_sink = fired_;
        return 64;
    }

  private:
    sim::EventQueue eq_;
    uint64_t fired_ = 0;
};

class EventDispatchKernel : public KernelInstance
{
  public:
    /**
     * Same-tick batches: eight ticks each carrying eight events across
     * the scheduling bands, so this times the bucket sort + batched
     * class dispatch rather than schedule/fire of lone events.
     */
    uint64_t
    runBatch() override
    {
        for (int t = 0; t < 8; ++t) {
            const Tick when = eq_.now() + static_cast<Tick>(t * 13 + 1);
            for (uint64_t k = 0; k < 8; ++k) {
                eq_.schedule(when,
                             sim::schedPrio(sim::SchedBand::Thread, k / 2),
                             [this] { ++fired_; });
            }
        }
        eq_.runUntil(eq_.now() + 120);
        g_sink = fired_;
        return 64;
    }

  private:
    sim::EventQueue eq_;
    uint64_t fired_ = 0;
};

class MshrKernel : public KernelInstance
{
  public:
    MshrKernel() : q_("bench", 16) {}

    uint64_t
    runBatch() override
    {
        for (int i = 0; i < 12; ++i)
            q_.allocate(line_ + i, sim::ReqType::DemandLoad, now_++);
        for (int i = 0; i < 12; ++i)
            q_.deallocate(q_.lookup(line_ + i), now_++);
        line_ += 64;
        return 24;
    }

  private:
    sim::MshrQueue q_;
    Tick now_ = 0;
    uint64_t line_ = 0;
};

class OpStreamKernel : public KernelInstance
{
  public:
    OpStreamKernel() : ops_(makeSpec(), 1, 1) {}

    uint64_t
    runBatch() override
    {
        uint64_t sum = 0;
        for (int i = 0; i < 256; ++i)
            sum += ops_.at(n_++).lineAddr;
        g_sink = sum;
        return 256;
    }

  private:
    static sim::KernelSpec
    makeSpec()
    {
        sim::KernelSpec spec;
        sim::StreamDesc a;
        a.kind = sim::StreamDesc::Kind::Random;
        a.footprintLines = 1 << 20;
        spec.streams.push_back(a);
        sim::StreamDesc b;
        b.kind = sim::StreamDesc::Kind::Sequential;
        b.footprintLines = 1 << 18;
        b.weight = 0.4;
        spec.streams.push_back(b);
        return spec;
    }

    sim::OpStream ops_;
    uint64_t n_ = 0;
};

class CacheHitKernel : public KernelInstance
{
  public:
    CacheHitKernel()
        : l2_(cacheParams(), eq_, pool_), l1_(cacheParams(), eq_, pool_),
          mem_(sim::MemCtrl::Params(), eq_, pool_)
    {
        l1_.setDownstream(&l2_);
        l2_.setDownstream(&mem_);
        // Warm a small set of lines via writebacks (installs directly).
        for (uint64_t line = 0; line < 256; ++line) {
            sim::MemRequest *wb = pool_.alloc();
            wb->lineAddr = line;
            wb->type = sim::ReqType::Writeback;
            l1_.tryAccess(wb);
        }
    }

    uint64_t
    runBatch() override
    {
        for (int i = 0; i < 256; ++i) {
            sim::MemRequest *req = pool_.alloc();
            req->lineAddr = line_;
            req->type = sim::ReqType::DemandLoad;
            g_sink = static_cast<uint64_t>(l1_.tryAccess(req));
            line_ = (line_ + 1) % 256;
            eq_.runUntil(eq_.now() + 10000);
        }
        return 256;
    }

  private:
    static sim::Cache::Params
    cacheParams()
    {
        sim::Cache::Params cp;
        cp.sets = 64;
        cp.ways = 8;
        cp.mshrs = 10;
        return cp;
    }

    sim::EventQueue eq_;
    sim::RequestPool pool_;
    sim::Cache l2_;
    sim::Cache l1_;
    sim::MemCtrl mem_;
    uint64_t line_ = 0;
};

class SystemStepKernel : public KernelInstance
{
  public:
    SystemStepKernel() : sys_(sysParams(), makeSpec())
    {
        sys_.run(2.0, 2.0); // warm start
    }

    uint64_t
    runBatch() override
    {
        const sim::RunResult r = sys_.run(0.0001, 1.0);
        g_sink = r.opsIssued;
        // opsIssued can legitimately be 0 in a tiny window; count the
        // microstep itself so throughput never divides by zero items.
        return r.opsIssued > 0 ? r.opsIssued : 1;
    }

  private:
    static sim::KernelSpec
    makeSpec()
    {
        sim::KernelSpec spec;
        sim::StreamDesc s;
        s.kind = sim::StreamDesc::Kind::Random;
        s.footprintLines = 1 << 18;
        spec.streams.push_back(s);
        spec.window = 8;
        spec.computeCyclesPerOp = 4.0;
        return spec;
    }

    static sim::SystemParams
    sysParams()
    {
        return platforms::skl().sysParams(4, 1);
    }

    sim::System sys_;
};

template <typename T>
std::unique_ptr<KernelInstance>
make()
{
    return std::make_unique<T>();
}

} // namespace

const std::vector<KernelInfo> &
kernels()
{
    static const std::vector<KernelInfo> registry = {
        {"event_queue", "event queue schedule/fire throughput",
         make<EventQueueKernel>},
        {"event_dispatch", "same-tick batch dispatch across bands",
         make<EventDispatchKernel>},
        {"mshr", "MSHR allocate/lookup/deallocate cycle",
         make<MshrKernel>},
        {"op_stream", "stateless op generation (random + sequential)",
         make<OpStreamKernel>},
        {"cache_hit", "warm L1 hits through the cache hierarchy",
         make<CacheHitKernel>},
        {"system_step", "end-to-end system microstep (skl, 4 cores)",
         make<SystemStepKernel>},
    };
    return registry;
}

const KernelInfo *
findKernel(const std::string &name)
{
    for (const KernelInfo &k : kernels()) {
        if (k.name == name)
            return &k;
    }
    return nullptr;
}

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    const double pos =
        std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

KernelStats
runKernel(const KernelInfo &kernel, const TrialParams &params)
{
    KernelStats stats;
    stats.name = kernel.name;
    stats.trials = std::max(1, params.trials);

    std::unique_ptr<KernelInstance> instance = kernel.make();

    // Untimed warm-up: first-touch allocation, cache warming.
    {
        obs::WallTimer warm;
        while (warm.elapsedNs() < params.warmupMs * 1e6)
            instance->runBatch();
    }

    const double trial_ns = std::max(1.0, params.measureMs * 1e6);
    for (int trial = 0; trial < stats.trials; ++trial) {
        uint64_t trial_items = 0;
        obs::WallTimer timer;
        double elapsed = 0.0;
        do {
            obs::WallTimer batch_timer;
            const uint64_t items = instance->runBatch();
            const double batch_ns = batch_timer.elapsedNs();
            ++stats.batches;
            stats.items += items;
            trial_items += items;
            stats.itemNs.sample(batch_ns /
                                static_cast<double>(items ? items : 1));
            elapsed = timer.elapsedNs();
        } while (elapsed < trial_ns);
        stats.trialEventsPerSec.push_back(
            static_cast<double>(trial_items) / (elapsed / 1e9));
    }

    std::vector<double> sorted = stats.trialEventsPerSec;
    std::sort(sorted.begin(), sorted.end());
    stats.minEps = sorted.front();
    stats.maxEps = sorted.back();
    stats.medianEps = quantileSorted(sorted, 0.50);
    stats.iqrEps =
        quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25);
    stats.p50ItemNs = stats.itemNs.percentile(0.50);
    stats.p90ItemNs = stats.itemNs.percentile(0.90);
    stats.p99ItemNs = stats.itemNs.percentile(0.99);
    return stats;
}

} // namespace lll::perf
