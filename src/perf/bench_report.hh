/**
 * @file
 * The BENCH_<rev>.json perf-trajectory format: serialize a bench run,
 * parse a committed baseline back, and compare the two for the CI
 * ratchet (README "Perf trajectory").
 *
 * The report rides inside the standard `--json` envelope as the
 * "data" object; parseBenchReport() accepts either the bare data
 * object or a full envelope, so `lll bench --compare` works on
 * baselines produced by any `lll bench --json` invocation.
 */

#ifndef LLL_PERF_BENCH_REPORT_HH
#define LLL_PERF_BENCH_REPORT_HH

#include <string>
#include <vector>

#include "perf/microbench.hh"
#include "util/status.hh"

namespace lll::perf
{

/** Version of the BENCH_*.json "data" schema. */
constexpr int kBenchSchemaVersion = 1;

/** One full bench run: configuration + per-kernel statistics. */
struct BenchReport
{
    int schemaVersion = kBenchSchemaVersion;
    std::string rev;        //!< source revision label ("dev" default)
    int trials = 0;
    double warmupMs = 0.0;
    double measureMs = 0.0;
    std::vector<KernelStats> kernels;
};

/** Serialize @p report as the envelope's "data" JSON object. */
std::string benchReportJson(const BenchReport &report);

/** Parse a report from JSON text (bare data object or envelope). */
[[nodiscard]] util::Result<BenchReport> parseBenchReport(const std::string &text);

/** Read and parse @p path. */
[[nodiscard]] util::Result<BenchReport> parseBenchReportFile(const std::string &path);

/**
 * The ratchet verdict for one kernel: current median events/sec
 * against the baseline's, with ratio = current / baseline.
 */
struct BenchComparison
{
    struct Row
    {
        std::string kernel;
        double baselineEps = 0.0;
        double currentEps = 0.0;
        double ratio = 0.0;
        bool regressed = false; //!< ratio < 1 - tolerance, or missing
        bool missing = false;   //!< kernel absent from the current run
    };

    std::vector<Row> rows; //!< one per baseline kernel, in order
    double tolerance = 0.0;

    bool ok() const
    {
        for (const Row &r : rows) {
            if (r.regressed)
                return false;
        }
        return true;
    }

    /** Human-readable verdict table (one line per kernel). */
    std::string render() const;
};

/**
 * Compare @p current against @p baseline: a kernel regresses when its
 * median events/sec falls below baseline * (1 - tolerance); a kernel
 * missing from the current run also regresses (lost coverage).
 * Kernels new in @p current are ignored — adding a kernel must not
 * fail the ratchet.
 */
BenchComparison compareBenchReports(const BenchReport &baseline,
                                    const BenchReport &current,
                                    double tolerance);

} // namespace lll::perf

#endif // LLL_PERF_BENCH_REPORT_HH
