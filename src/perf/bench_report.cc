#include "perf/bench_report.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.hh"

namespace lll::perf
{

using util::ErrorCode;
using util::JsonValue;
using util::Status;

namespace
{

std::string
fmtG17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

util::Result<double>
numberField(const JsonValue &obj, const char *key)
{
    util::Result<double> v = obj.getNumber(key);
    if (!v.ok())
        return v.status().withContext("bench report");
    return v;
}

} // namespace

std::string
benchReportJson(const BenchReport &report)
{
    std::ostringstream out;
    out << "{\n  \"schema_version\": " << report.schemaVersion
        << ",\n  \"rev\": \"" << report.rev << "\",\n  \"trials\": "
        << report.trials << ",\n  \"warmup_ms\": "
        << fmtG17(report.warmupMs) << ",\n  \"measure_ms\": "
        << fmtG17(report.measureMs) << ",\n  \"kernels\": [";
    bool first = true;
    for (const KernelStats &k : report.kernels) {
        out << (first ? "" : ",") << "\n    {\"name\": \"" << k.name
            << "\", \"trials\": " << k.trials << ", \"batches\": "
            << k.batches << ", \"items\": " << k.items
            << ",\n     \"events_per_sec\": {\"median\": "
            << fmtG17(k.medianEps) << ", \"min\": " << fmtG17(k.minEps)
            << ", \"max\": " << fmtG17(k.maxEps) << ", \"iqr\": "
            << fmtG17(k.iqrEps) << ", \"trials\": [";
        for (size_t i = 0; i < k.trialEventsPerSec.size(); ++i) {
            out << (i ? ", " : "") << fmtG17(k.trialEventsPerSec[i]);
        }
        out << "]},\n     \"item_latency_ns\": {\"p50\": "
            << fmtG17(k.p50ItemNs) << ", \"p90\": " << fmtG17(k.p90ItemNs)
            << ", \"p99\": " << fmtG17(k.p99ItemNs) << "}}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "]\n}";
    return out.str();
}

util::Result<BenchReport>
parseBenchReport(const std::string &text)
{
    util::Result<JsonValue> doc = util::parseJson(text);
    if (!doc.ok())
        return doc.status().withContext("bench report");
    if (!doc->isObject()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "bench report must be a JSON object, "
                             "got %s", doc->typeName());
    }

    // A full `lll bench --json` envelope wraps the report in "data".
    const JsonValue *root = &*doc;
    if (!root->find("kernels")) {
        const JsonValue *data = root->find("data");
        if (data && data->isObject() && data->find("kernels"))
            root = data;
    }

    BenchReport report;
    util::Result<double> version = numberField(*root, "schema_version");
    if (!version.ok())
        return version.status();
    if (*version != kBenchSchemaVersion) {
        return Status::error(
            ErrorCode::InvalidArgument,
            "unsupported bench schema_version %g (this build speaks %d)",
            *version, kBenchSchemaVersion);
    }
    report.schemaVersion = static_cast<int>(*version);

    util::Result<std::string> rev = root->getStringOr("rev", "");
    if (!rev.ok())
        return rev.status();
    report.rev = rev.take();

    util::Result<double> trials = root->getNumberOr("trials", 0.0);
    if (!trials.ok())
        return trials.status();
    report.trials = static_cast<int>(*trials);
    util::Result<double> warmup = root->getNumberOr("warmup_ms", 0.0);
    if (!warmup.ok())
        return warmup.status();
    report.warmupMs = *warmup;
    util::Result<double> measure = root->getNumberOr("measure_ms", 0.0);
    if (!measure.ok())
        return measure.status();
    report.measureMs = *measure;

    const JsonValue *kernels_v = root->find("kernels");
    if (!kernels_v || !kernels_v->isArray()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "bench report needs a \"kernels\" array");
    }
    for (const JsonValue &kv : kernels_v->array) {
        if (!kv.isObject()) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "bench kernel entries must be objects, "
                                 "got %s", kv.typeName());
        }
        KernelStats k;
        util::Result<std::string> name = kv.getString("name");
        if (!name.ok())
            return name.status().withContext("bench report");
        k.name = name.take();

        const JsonValue *eps = kv.find("events_per_sec");
        if (!eps || !eps->isObject()) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "kernel \"%s\" needs an "
                                 "\"events_per_sec\" object",
                                 k.name.c_str());
        }
        util::Result<double> median = numberField(*eps, "median");
        if (!median.ok())
            return median.status();
        k.medianEps = *median;
        util::Result<double> mn = eps->getNumberOr("min", k.medianEps);
        if (!mn.ok())
            return mn.status();
        k.minEps = *mn;
        util::Result<double> mx = eps->getNumberOr("max", k.medianEps);
        if (!mx.ok())
            return mx.status();
        k.maxEps = *mx;
        util::Result<double> iqr = eps->getNumberOr("iqr", 0.0);
        if (!iqr.ok())
            return iqr.status();
        k.iqrEps = *iqr;
        const JsonValue *trial_list = eps->find("trials");
        if (trial_list && trial_list->isArray()) {
            for (const JsonValue &t : trial_list->array) {
                if (t.isNumber())
                    k.trialEventsPerSec.push_back(t.number);
            }
        }
        k.trials = static_cast<int>(k.trialEventsPerSec.size());

        const JsonValue *lat = kv.find("item_latency_ns");
        if (lat && lat->isObject()) {
            util::Result<double> p50 = lat->getNumberOr("p50", 0.0);
            util::Result<double> p90 = lat->getNumberOr("p90", 0.0);
            util::Result<double> p99 = lat->getNumberOr("p99", 0.0);
            if (!p50.ok())
                return p50.status();
            if (!p90.ok())
                return p90.status();
            if (!p99.ok())
                return p99.status();
            k.p50ItemNs = *p50;
            k.p90ItemNs = *p90;
            k.p99ItemNs = *p99;
        }
        report.kernels.push_back(std::move(k));
    }
    return report;
}

util::Result<BenchReport>
parseBenchReportFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return Status::error(ErrorCode::IoError, "cannot read '%s'",
                             path.c_str());
    }
    std::ostringstream text;
    text << in.rdbuf();
    util::Result<BenchReport> report = parseBenchReport(text.str());
    if (!report.ok())
        return report.status().withContext("%s", path.c_str());
    return report;
}

std::string
BenchComparison::render() const
{
    std::ostringstream out;
    for (const Row &r : rows) {
        char line[160];
        if (r.missing) {
            std::snprintf(line, sizeof(line),
                          "  %-12s MISSING from current run\n",
                          r.kernel.c_str());
        } else {
            std::snprintf(line, sizeof(line),
                          "  %-12s %12.3g -> %12.3g ev/s  (%+6.1f%%) %s\n",
                          r.kernel.c_str(), r.baselineEps, r.currentEps,
                          (r.ratio - 1.0) * 100.0,
                          r.regressed ? "REGRESSED" : "ok");
        }
        out << line;
    }
    char verdict[96];
    std::snprintf(verdict, sizeof(verdict),
                  "ratchet: %s (tolerance %.0f%%)\n",
                  ok() ? "ok" : "REGRESSION", tolerance * 100.0);
    out << verdict;
    return out.str();
}

BenchComparison
compareBenchReports(const BenchReport &baseline,
                    const BenchReport &current, double tolerance)
{
    BenchComparison cmp;
    cmp.tolerance = tolerance;
    for (const KernelStats &base : baseline.kernels) {
        BenchComparison::Row row;
        row.kernel = base.name;
        row.baselineEps = base.medianEps;
        const KernelStats *cur = nullptr;
        for (const KernelStats &k : current.kernels) {
            if (k.name == base.name) {
                cur = &k;
                break;
            }
        }
        if (!cur) {
            row.missing = true;
            row.regressed = true;
        } else {
            row.currentEps = cur->medianEps;
            row.ratio = base.medianEps > 0.0
                            ? cur->medianEps / base.medianEps
                            : 0.0;
            row.regressed =
                cur->medianEps < base.medianEps * (1.0 - tolerance);
        }
        cmp.rows.push_back(std::move(row));
    }
    return cmp;
}

} // namespace lll::perf
