/**
 * @file
 * The load generator behind `lll bench-serve`: N persistent client
 * connections driving a socket front-end at a target rate, measuring
 * what the paper's framework says to measure — throughput λ, latency W
 * and their product — from the *client* side of the listener's
 * admission bound.
 *
 * Each connection runs on its own thread with a non-blocking socket:
 * it keeps up to `pipeline` requests in flight, paces sends to its
 * share of the target QPS (qps 0 floods), and matches responses to
 * requests positionally (the listener guarantees per-connection
 * response order).  Latencies land in Log2Histograms, split by
 * response class — ok, shed (`unavailable`) and failed — because under
 * deliberate overload the shed p99 and the admitted p99 are different
 * stories and averaging them hides both.
 */

#ifndef LLL_NET_LOADGEN_HH
#define LLL_NET_LOADGEN_HH

#include <string>
#include <vector>

#include "obs/metric.hh"
#include "util/status.hh"

namespace lll::net
{

struct LoadGenParams
{
    /** TCP target (used when unixPath is empty). */
    std::string host = "127.0.0.1";
    int port = 0;

    /** Unix-socket target; non-empty wins over host:port. */
    std::string unixPath;

    /** Concurrent persistent connections. */
    int connections = 4;

    /** Max requests in flight per connection. */
    int pipeline = 4;

    /** Aggregate target request rate; 0 floods (send whenever the
     *  pipeline window has room). */
    double qps = 0.0;

    /** Sending phase length in seconds. */
    double durationS = 5.0;

    /** Request lines (no trailing newline), cycled per send across
     *  each connection.  Must not be empty. */
    std::vector<std::string> requestLines;

    /** After the sending phase, wait this long for stragglers. */
    int drainTimeoutMs = 5000;
};

struct LoadGenReport
{
    uint64_t sent = 0;
    uint64_t received = 0;
    uint64_t ok = 0;          //!< status.code == "ok"
    uint64_t unavailable = 0; //!< shed by admission control
    uint64_t failed = 0;      //!< any other status code
    uint64_t connectionErrors = 0;

    double wallS = 0.0;        //!< send phase + drain, wall time
    double achievedQps = 0.0;  //!< received / wallS

    obs::Log2Histogram latencyNs;     //!< all responses
    obs::Log2Histogram okLatencyNs;   //!< admitted + succeeded only
    obs::Log2Histogram shedLatencyNs; //!< unavailable only

    /** First few per-connection errors, for diagnostics. */
    std::vector<std::string> errors;
};

/**
 * Run one load-generation session.  Fails (rather than reporting)
 * only when *no* connection could be established or the parameters
 * are unusable; individual connection failures ride in the report.
 */
[[nodiscard]] util::Result<LoadGenReport> runLoadGen(const LoadGenParams &params);

} // namespace lll::net

#endif // LLL_NET_LOADGEN_HH
