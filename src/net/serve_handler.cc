#include "net/serve_handler.hh"

#include "service/service.hh"

namespace lll::net
{

HandlerResult
ServeHandler::operator()(const std::string &line, uint64_t req_no) const
{
    HandlerResult out;
    out.telemetry = std::make_unique<obs::MetricRegistry>();

    service::RunService::Params sp;
    sp.jobs = 1; // concurrency lives in the listener's worker pool
    sp.cache = params_.cache;
    sp.registry = out.telemetry.get();
    service::RunService svc(sp);

    std::vector<service::RunResponse> responses =
        svc.serveLines({line}, req_no);
    if (responses.size() != 1) {
        // The frame decoder never emits blank frames, so this is a
        // service invariant violation, not a client error.
        service::RunResponse resp;
        resp.id = "#" + std::to_string(req_no);
        resp.status = util::Status::error(
            util::ErrorCode::Internal,
            "service returned %zu responses for one request line",
            responses.size());
        out.line = service::renderRunResponse(resp);
        out.failed = true;
        return out;
    }
    out.line = service::renderRunResponse(responses.front(),
                                          params_.requestTelemetry);
    out.failed = !responses.front().status.ok();
    return out;
}

} // namespace lll::net
