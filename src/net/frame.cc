#include "net/frame.hh"

namespace lll::net
{

using util::ErrorCode;
using util::Status;

void
FrameDecoder::feed(const char *data, size_t n)
{
    // Compact before growing: everything before off_ is consumed.
    if (off_ > 0) {
        buf_.erase(0, off_);
        off_ = 0;
    }
    buf_.append(data, n);
}

bool
FrameDecoder::hasPartial() const
{
    for (size_t i = off_; i < buf_.size(); ++i) {
        if (buf_[i] != '\n' && buf_[i] != '\r')
            return true;
    }
    return false;
}

util::Status
FrameDecoder::poison(util::Status s)
{
    failed_ = true;
    return s;
}

FrameDecoder::Next
FrameDecoder::next(std::string *frame, util::Status *error)
{
    if (failed_) {
        *error = Status::error(ErrorCode::InvalidArgument,
                               "frame stream already failed");
        return Next::Error;
    }
    for (;;) {
        // Bare separators between frames are keep-alives.
        while (off_ < buf_.size() &&
               (buf_[off_] == '\n' || buf_[off_] == '\r'))
            ++off_;
        if (off_ >= buf_.size())
            return Next::NeedMore;

        const char c = buf_[off_];
        if (c >= '0' && c <= '9') {
            // Length framing: LEN:PAYLOAD, LEN at most 8 digits.
            size_t p = off_;
            size_t len = 0;
            size_t digits = 0;
            while (p < buf_.size() && buf_[p] >= '0' && buf_[p] <= '9') {
                len = len * 10 + size_t(buf_[p] - '0');
                ++digits;
                ++p;
                if (digits > 8) {
                    *error = poison(Status::error(
                        ErrorCode::InvalidArgument,
                        "frame length prefix exceeds 8 digits"));
                    return Next::Error;
                }
            }
            if (p >= buf_.size())
                return Next::NeedMore; // prefix still arriving
            if (buf_[p] != ':') {
                *error = poison(Status::error(
                    ErrorCode::InvalidArgument,
                    "frame length prefix must be DIGITS ':', got "
                    "'%c' after %zu digits", buf_[p], digits));
                return Next::Error;
            }
            if (len > maxFrameBytes_) {
                *error = poison(Status::error(
                    ErrorCode::InvalidArgument,
                    "frame of %zu bytes exceeds the %zu-byte limit",
                    len, maxFrameBytes_));
                return Next::Error;
            }
            ++p; // ':'
            if (buf_.size() - p < len)
                return Next::NeedMore;
            frame->assign(buf_, p, len);
            off_ = p + len;
        } else {
            // Newline framing.
            const size_t nl = buf_.find('\n', off_);
            if (nl == std::string::npos) {
                // +2 leaves room for a limit-sized line's CRLF.
                if (buf_.size() - off_ > maxFrameBytes_ + 2) {
                    *error = poison(Status::error(
                        ErrorCode::InvalidArgument,
                        "request line exceeds the %zu-byte limit",
                        maxFrameBytes_));
                    return Next::Error;
                }
                return Next::NeedMore;
            }
            size_t end = nl;
            if (end > off_ && buf_[end - 1] == '\r')
                --end;
            if (end - off_ > maxFrameBytes_) {
                *error = poison(Status::error(
                    ErrorCode::InvalidArgument,
                    "request line exceeds the %zu-byte limit",
                    maxFrameBytes_));
                return Next::Error;
            }
            frame->assign(buf_, off_, end - off_);
            off_ = nl + 1;
        }

        // Whitespace-only frames are keep-alives, not requests.
        if (frame->find_first_not_of(" \t") != std::string::npos)
            return Next::Frame;
    }
}

} // namespace lll::net
