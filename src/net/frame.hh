/**
 * @file
 * Incremental frame decoding for the socket front-end (DESIGN.md §14).
 *
 * The wire protocol is JSON-lines with two interchangeable framings,
 * distinguished by the first byte of each frame:
 *
 *  - newline framing: the frame is everything up to the next '\n'
 *    (a trailing '\r' is stripped).  JSON requests start with '{', so
 *    this is the common case and what `lll serve --batch` files use
 *    unchanged.
 *  - length framing: `LEN:PAYLOAD` where LEN is the decimal payload
 *    byte count (at most 8 digits).  Needed when a payload may contain
 *    raw newlines; also what a binary client naturally emits.
 *
 * The decoder is fed raw socket bytes and hands back complete frames;
 * it never copies more than one compaction per read and never buffers
 * beyond the configured frame limit — an over-limit or malformed frame
 * is an InvalidArgument error that poisons the decoder, because the
 * stream cannot be re-synchronized after it.
 */

#ifndef LLL_NET_FRAME_HH
#define LLL_NET_FRAME_HH

#include <string>

#include "util/status.hh"

namespace lll::net
{

class FrameDecoder
{
  public:
    explicit FrameDecoder(size_t max_frame_bytes)
        : maxFrameBytes_(max_frame_bytes)
    {
    }

    /** Append @p n raw bytes from the socket. */
    void feed(const char *data, size_t n);

    enum class Next
    {
        Frame,    //!< one complete frame extracted
        NeedMore, //!< no complete frame buffered yet
        Error,    //!< framing violation; the stream is unrecoverable
    };

    /**
     * Extract the next complete frame into @p frame.  Whitespace-only
     * frames (bare newlines, keep-alive blanks) are swallowed, so a
     * returned frame always has content.  On Error, @p error carries
     * the InvalidArgument describing the violation and every further
     * call returns Error again.
     */
    Next next(std::string *frame, util::Status *error);

    /** True when bytes of an incomplete frame are buffered — the
     *  read-timeout (slow-loris) clock runs only while this holds. */
    bool hasPartial() const;

    /** Bytes currently buffered (diagnostics). */
    size_t buffered() const { return buf_.size() - off_; }

  private:
    [[nodiscard]] util::Status poison(util::Status s);

    size_t maxFrameBytes_;
    std::string buf_;
    size_t off_ = 0;
    bool failed_ = false;
};

} // namespace lll::net

#endif // LLL_NET_FRAME_HH
