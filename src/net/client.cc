#include "net/client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/timer.hh"

namespace lll::net
{

using util::ErrorCode;
using util::Result;
using util::Status;

BlockingClient::~BlockingClient()
{
    close();
}

BlockingClient::BlockingClient(BlockingClient &&other) noexcept
    : fd_(other.fd_), rxbuf_(std::move(other.rxbuf_))
{
    other.fd_ = -1;
}

BlockingClient &
BlockingClient::operator=(BlockingClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        rxbuf_ = std::move(other.rxbuf_);
        other.fd_ = -1;
    }
    return *this;
}

Result<BlockingClient>
BlockingClient::connectTcp(const std::string &host, int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status::error(ErrorCode::IoError, "socket: %s",
                             strerror(errno));
    }
    sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(uint16_t(port));
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
        ::close(fd);
        return Status::error(ErrorCode::InvalidArgument,
                             "bad host '%s'", host.c_str());
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa)) <
        0) {
        Status s = Status::error(ErrorCode::IoError,
                                 "connect %s:%d: %s", host.c_str(),
                                 port, strerror(errno));
        ::close(fd);
        return s;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return BlockingClient(fd);
}

Result<BlockingClient>
BlockingClient::connectUnix(const std::string &path)
{
    sockaddr_un sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa.sun_path)) {
        return Status::error(ErrorCode::InvalidArgument,
                             "unix socket path longer than %zu bytes",
                             sizeof(sa.sun_path) - 1);
    }
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status::error(ErrorCode::IoError, "socket: %s",
                             strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa)) <
        0) {
        Status s = Status::error(ErrorCode::IoError, "connect %s: %s",
                                 path.c_str(), strerror(errno));
        ::close(fd);
        return s;
    }
    return BlockingClient(fd);
}

Status
BlockingClient::sendAll(const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::error(ErrorCode::IoError, "send: %s",
                                 strerror(errno));
        }
        off += size_t(n);
    }
    return Status::okStatus();
}

Result<std::string>
BlockingClient::recvLine(int timeout_ms)
{
    const obs::WallClock::time_point start = obs::WallClock::now();
    for (;;) {
        const size_t nl = rxbuf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = rxbuf_.substr(0, nl);
            rxbuf_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }

        const double elapsed_ms =
            obs::wallDeltaNs(start, obs::WallClock::now()) / 1e6;
        const int remaining = timeout_ms - int(elapsed_ms);
        if (remaining <= 0) {
            return Status::error(ErrorCode::DeadlineExceeded,
                                 "no response line within %d ms",
                                 timeout_ms);
        }
        pollfd pfd{fd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, remaining);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return Status::error(ErrorCode::IoError, "poll: %s",
                                 strerror(errno));
        }
        if (rc == 0)
            continue; // loop re-checks the deadline
        char buf[65536];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::error(ErrorCode::IoError, "recv: %s",
                                 strerror(errno));
        }
        if (n == 0) {
            return Status::error(ErrorCode::IoError,
                                 "server closed the connection");
        }
        rxbuf_.append(buf, size_t(n));
    }
}

void
BlockingClient::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
BlockingClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace lll::net
