/**
 * @file
 * The bridge from the socket listener to the run service: a Handler
 * (listener.hh) that serves exactly one request line per call on
 * whatever worker thread the listener picked.
 *
 * Byte-identity contract: admitted responses are rendered by the same
 * service::serveLines() + renderRunResponse() pair as the
 * `lll serve --batch` stdin path, with the connection's request number
 * as the line number — so a response observed over a socket is
 * byte-identical to the one the same request yields in a batch file
 * (tests/test_net.cc asserts this).
 *
 * Thread safety: each call builds its own RunService over the shared
 * core::ResultCache (which is internally synchronized) and a private
 * MetricRegistry, returned in HandlerResult::telemetry for the event
 * loop to merge — the registry type itself is not thread-safe, so no
 * shared registry is ever touched from a worker.
 */

#ifndef LLL_NET_SERVE_HANDLER_HH
#define LLL_NET_SERVE_HANDLER_HH

#include "core/sweep.hh"
#include "net/listener.hh"

namespace lll::net
{

struct ServeHandlerParams
{
    /** Shared stage memo (thread-safe); nullptr serves uncached. */
    core::ResultCache *cache = nullptr;

    /** Render per-request "timing" objects into response lines.
     *  Breaks cold/warm byte-identity, so it defaults off (mirrors
     *  `lll serve --request-telemetry`). */
    bool requestTelemetry = false;
};

/** Copyable callable satisfying net::Handler. */
class ServeHandler
{
  public:
    explicit ServeHandler(ServeHandlerParams params) : params_(params) {}

    HandlerResult operator()(const std::string &line,
                             uint64_t req_no) const;

  private:
    ServeHandlerParams params_;
};

} // namespace lll::net

#endif // LLL_NET_SERVE_HANDLER_HH
